// Scenario: the full lifecycle of an unattended device.
//
// Exercises the operational APIs around the core protocol:
//   1. provisioning -- per-device keys derived from a fleet master secret
//      with HKDF (no key database needed);
//   2. steady state -- the Collector daemon gathers history every T_C over
//      a lossy link and feeds the AuditLog;
//   3. software update -- attest-before / install / attest-after, golden-
//      digest epoch rotation (pre-update history keeps verifying);
//   4. incident -- malware detected through the daemon path;
//   5. decommissioning -- authenticated secure erasure + proof of erasure.
#include <cstdio>

#include "attest/collector.h"
#include "attest/maintenance.h"
#include "attest/prover.h"
#include "crypto/hkdf.h"

using namespace erasmus;
using sim::Duration;
using sim::Time;

int main() {
  constexpr size_t kRecordBytes = 1 + 8 + 32 + 32;

  // --- 1. Provisioning ---------------------------------------------------------
  const Bytes master = bytes_of("fleet master secret: keep in HSM!");
  const Bytes k_device = crypto::hkdf(master, bytes_of("device-0042"),
                                      bytes_of("erasmus/device-key"), 32);
  std::printf("provisioned device-0042 with K = HKDF(master, id) "
              "(%zu-byte key)\n", k_device.size());

  sim::EventQueue sim;
  hw::SmartPlusArch device(k_device, 8 * 1024, 4 * 1024, 32 * kRecordBytes);
  attest::Prover prover(sim, device, device.app_region(),
                        device.store_region(),
                        std::make_unique<attest::RegularScheduler>(
                            Duration::minutes(10)),
                        attest::ProverConfig{});

  attest::VerifierConfig vc;
  vc.key = k_device;
  vc.golden_digest = crypto::Hash::digest(
      crypto::HashAlgo::kSha256,
      device.memory().view(device.app_region(), true));
  attest::Verifier verifier(std::move(vc));

  // --- 2. Steady state: collector daemon over a lossy link --------------------
  net::Network network(sim, Duration::millis(20), /*loss=*/0.15, /*seed=*/3);
  const net::NodeId hq = network.add_node({});
  const net::NodeId dev_node = network.add_node({});
  prover.bind(network, dev_node);

  attest::AuditLog log;
  attest::CollectorConfig cc;
  cc.tc = Duration::hours(1);
  cc.k = 8;
  cc.response_timeout = Duration::seconds(5);
  cc.max_retries = 3;
  attest::Collector collector(sim, network, hq, dev_node, verifier, log, cc);

  prover.start();
  collector.start();
  sim.run_until(Time::zero() + Duration::hours(24));
  std::printf("day 1: %llu rounds, %llu responses, %llu retries "
              "(15%% packet loss), trustworthy %.0f%%\n",
              static_cast<unsigned long long>(collector.stats().rounds),
              static_cast<unsigned long long>(collector.stats().responses),
              static_cast<unsigned long long>(collector.stats().retries),
              100.0 * log.trustworthy_fraction());

  // --- 3. Software update --------------------------------------------------------
  attest::MaintenanceAuthority authority(verifier, sim);
  const auto update =
      authority.run_update(prover, bytes_of("firmware v2.0 image"));
  std::printf("software update: attest-before=%s install=%s attest-after=%s "
              "(golden digest rotated)\n",
              update.pre_attestation_ok ? "ok" : "FAIL",
              update.request_accepted ? "ok" : "FAIL",
              update.post_attestation_ok ? "ok" : "FAIL");

  // --- 4. Incident ------------------------------------------------------------------
  sim.schedule_at(sim.now() + Duration::hours(5), [&] {
    prover.memory().write(prover.attested_region(), 99, bytes_of("IMPLANT"),
                          false);
  });
  sim.run_until(sim.now() + Duration::hours(24));
  if (const auto first = log.first_infection_seen()) {
    std::printf("incident: infection first reported at t=%.1f h "
                "(empirical mean freshness %s over %zu rounds)\n",
                first->to_seconds() / 3600.0,
                sim::to_string(log.empirical_qoa().mean_freshness).c_str(),
                log.empirical_qoa().rounds);
  } else {
    std::printf("incident: NOT detected (unexpected)\n");
  }

  // --- 5. Decommissioning --------------------------------------------------------------
  // Note the asymmetry: updates require a healthy device (attest-before),
  // but secure erasure is exactly what you do to a COMPROMISED device --
  // it needs only an authentic command, and the erased state is then
  // proven with a fresh on-demand measurement.
  collector.stop();
  const auto blocked =
      authority.run_update(prover, bytes_of("recovery image"));
  const auto erase = authority.run_erase(prover);
  std::printf("decommission: update on infected device blocked=%s "
              "(attest-before failed), erase accepted=%s, erased state "
              "proven=%s\n",
              blocked.pre_attestation_ok ? "NO (!)" : "yes",
              erase.request_accepted ? "yes" : "no",
              erase.erased_state_proven ? "yes" : "no");
  return 0;
}
