// erasmus_run: the unified scenario CLI.
//
//   erasmus_run list
//   erasmus_run describe <scenario>
//   erasmus_run run <scenario> [key=value ...]
//
// Every workload in the library is a registered Scenario (see
// src/scenario/). `run` accepts scenario parameters as key=value tokens
// plus reserved keys and flags:
//
//   out=<path>       write metrics there; .json selects the JSON sink,
//                    anything else CSV. Default: CSV to stdout.
//   --trace=<path>   record a deterministic flight-recorder trace of the
//                    run; .jsonl writes one event per line, anything else
//                    Chrome trace-event JSON (open in Perfetto /
//                    chrome://tracing).
//   --trace-filter=<subsystems>
//                    comma-separated categories to record
//                    (runner,service,window,overlay,device,energy; default all).
//
// Exit code is the scenario's own (0 = success / expected property held).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "scenario/scenario.h"

using namespace erasmus::scenario;

namespace {

int cmd_list(bool names_only) {
  const auto scenarios = ScenarioRegistry::instance().list();
  if (names_only) {
    // One bare name per line: stable output for scripts/CI loops.
    for (const Scenario* s : scenarios) {
      std::printf("%s\n", s->name().c_str());
    }
    return 0;
  }
  std::printf("%zu registered scenarios:\n\n", scenarios.size());
  for (const Scenario* s : scenarios) {
    std::printf("  %-18s %s\n", s->name().c_str(), s->description().c_str());
  }
  std::printf("\nrun one with: erasmus_run run <name> [key=value ...]\n");
  return 0;
}

int cmd_describe(const std::string& name) {
  const Scenario* s = ScenarioRegistry::instance().find(name);
  if (s == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (see: erasmus_run list)\n",
                 name.c_str());
    return 2;
  }
  std::printf("%s: %s\n\nparameters:\n", s->name().c_str(),
              s->description().c_str());
  for (const auto& spec : s->param_specs()) {
    std::printf("  %-16s (default %-6s) %s\n", spec.key.c_str(),
                spec.default_value.c_str(), spec.help.c_str());
  }
  std::printf("  %-16s (default %-6s) %s\n", "out", "-",
              "metrics file; .json = JSON sink, else CSV (default: CSV to "
              "stdout)");
  std::printf("  %-16s (default %-6s) %s\n", "--trace=PATH", "-",
              "flight-recorder trace; .jsonl = JSONL, else Chrome "
              "trace-event JSON");
  std::printf("  %-16s (default %-6s) %s\n", "--trace-filter=L", "all",
              "trace categories: runner,service,window,overlay,device,energy");
  return 0;
}

int cmd_run(const std::string& name, const std::vector<std::string>& args) {
  const Scenario* s = ScenarioRegistry::instance().find(name);
  if (s == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (see: erasmus_run list)\n",
                 name.c_str());
    return 2;
  }

  // Peel the --trace flags off before ParamMap parsing: they are CLI
  // concerns, not scenario parameters.
  std::string trace_path;
  std::string trace_filter;
  std::vector<std::string> param_args;
  param_args.reserve(args.size());
  for (const std::string& arg : args) {
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--trace-filter=", 0) == 0) {
      trace_filter = arg.substr(15);
    } else {
      param_args.push_back(arg);
    }
  }
  if (trace_path.empty() && !trace_filter.empty()) {
    std::fprintf(stderr, "--trace-filter requires --trace=<path>\n");
    return 2;
  }

  ParamMap params;
  try {
    params = ParamMap::from_args(param_args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  const std::string out_path = params.get_str("out", "");
  ParamMap scenario_params;
  for (const auto& [key, value] : params.entries()) {
    if (key != "out") scenario_params.set(key, value);
  }

  const auto unknown = scenario_params.unknown_keys(s->param_specs());
  if (!unknown.empty()) {
    for (const auto& key : unknown) {
      std::fprintf(stderr, "unknown parameter '%s' for scenario '%s'\n",
                   key.c_str(), name.c_str());
    }
    std::fprintf(stderr, "(see: erasmus_run describe %s)\n", name.c_str());
    return 2;
  }

  std::ofstream file;
  std::unique_ptr<MetricsSink> sink;
  if (!out_path.empty()) {
    file.open(out_path, std::ios::binary);  // binary: byte-stable output
    if (!file) {
      std::fprintf(stderr, "cannot open '%s' for writing\n",
                   out_path.c_str());
      return 2;
    }
    if (out_path.size() >= 5 &&
        out_path.compare(out_path.size() - 5, 5, ".json") == 0) {
      sink = std::make_unique<JsonSink>(file);
    } else {
      sink = std::make_unique<CsvSink>(file);
    }
  } else {
    sink = std::make_unique<CsvSink>(std::cout);
  }

  // Install the process-global flight recorder; the sharded runner (and
  // anything else obs-aware) picks it up without a signature change.
  std::unique_ptr<erasmus::obs::TraceRecorder> recorder;
  if (!trace_path.empty()) {
    erasmus::obs::TraceConfig tc;
    if (!trace_filter.empty()) {
      try {
        tc.subsystems = erasmus::obs::parse_subsystem_filter(trace_filter);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    }
    recorder = std::make_unique<erasmus::obs::TraceRecorder>(tc);
    erasmus::obs::set_global_trace(recorder.get());
  }

  sink->begin_run(s->name());
  int code = 0;
  try {
    code = s->run(scenario_params, *sink);
  } catch (const std::exception& e) {
    erasmus::obs::set_global_trace(nullptr);
    std::fprintf(stderr, "scenario '%s' failed: %s\n", name.c_str(),
                 e.what());
    return 1;
  }
  sink->end_run();
  if (recorder) {
    erasmus::obs::set_global_trace(nullptr);
    std::ofstream trace_file(trace_path, std::ios::binary);
    if (!trace_file) {
      std::fprintf(stderr, "cannot open '%s' for writing\n",
                   trace_path.c_str());
      return 2;
    }
    if (trace_path.size() >= 6 &&
        trace_path.compare(trace_path.size() - 6, 6, ".jsonl") == 0) {
      recorder->write_jsonl(trace_file);
    } else {
      recorder->write_chrome_trace(trace_file);
    }
    trace_file.flush();
    if (!trace_file) {
      std::fprintf(stderr, "failed writing trace to '%s'\n",
                   trace_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "wrote trace %s (%zu events, %llu dropped)\n",
                 trace_path.c_str(), recorder->size(),
                 static_cast<unsigned long long>(recorder->dropped()));
  }
  if (!out_path.empty()) {
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    std::printf(
        "usage:\n"
        "  erasmus_run list [--names]\n"
        "  erasmus_run describe <scenario>\n"
        "  erasmus_run run <scenario> [key=value ...] [out=metrics.json]\n"
        "              [--trace=trace.json] [--trace-filter=service,window]\n");
    return args.empty() ? 2 : 0;
  }
  if (args[0] == "list" &&
      (args.size() == 1 || (args.size() == 2 && args[1] == "--names"))) {
    return cmd_list(args.size() == 2);
  }
  if (args[0] == "describe" && args.size() == 2) return cmd_describe(args[1]);
  if (args[0] == "run" && args.size() >= 2) {
    return cmd_run(args[1], {args.begin() + 2, args.end()});
  }
  std::fprintf(stderr, "unknown command; try: erasmus_run help\n");
  return 2;
}
