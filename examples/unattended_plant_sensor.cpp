// Scenario: a safety-critical, time-sensitive industrial sensor (§5).
//
// A pressure controller on an 8 MHz MSP430-class MCU runs a hard-real-time
// control task every 15 minutes. A full self-measurement of its 10 KB
// memory takes ~7 s (Fig. 6) -- unacceptable inside a control window. This
// example contrasts the three conflict policies over a simulated week and
// shows why the paper proposes lenient scheduling (w * T_M windows), then
// demonstrates that QoA survives: an infection striking mid-week is still
// caught.
#include <cstdio>

#include "attest/prover.h"
#include "attest/verifier.h"
#include "malware/malware.h"

using namespace erasmus;
using sim::Duration;
using sim::Time;

namespace {

constexpr size_t kRecordBytes = 1 + 8 + 32 + 32;
const Bytes kKey = bytes_of("plant-sensor-key-0123456789abcde");

struct PlantRun {
  uint64_t measurements = 0;
  uint64_t deferred = 0;
  uint64_t skipped = 0;
  double interference_s = 0.0;
  bool infection_detected = false;
};

PlantRun run_week(attest::ConflictPolicy policy, double window_factor) {
  sim::EventQueue sim;
  hw::SmartPlusArch device(kKey, 8 * 1024, 10 * 1024, 64 * kRecordBytes);

  attest::ProverConfig pc;
  pc.conflict_policy = policy;

  std::unique_ptr<attest::Scheduler> sched =
      std::make_unique<attest::RegularScheduler>(Duration::minutes(20));
  if (policy == attest::ConflictPolicy::kAbortAndReschedule) {
    sched = std::make_unique<attest::LenientScheduler>(std::move(sched),
                                                       window_factor);
  }
  attest::Prover prover(sim, device, device.app_region(),
                        device.store_region(), std::move(sched), pc);

  attest::VerifierConfig vc;
  vc.key = kKey;
  vc.golden_digest = crypto::Hash::digest(
      crypto::HashAlgo::kSha256,
      device.memory().view(device.app_region(), true));
  attest::Verifier verifier(std::move(vc));

  prover.start();

  // Control task: 2 minutes of hard-real-time work every 20 minutes,
  // phased so the nominal measurement instants (multiples of 20 min) land
  // inside the control windows [19, 21) -- the worst case for a strict
  // schedule.
  const Duration horizon = Duration::hours(24 * 7);
  for (Time at = Time::zero() + Duration::minutes(19);
       at < Time::zero() + horizon; at = at + Duration::minutes(20)) {
    prover.add_critical_task(at, Duration::minutes(2));
  }

  // Mid-week infection: persistent for 90 minutes, then covers its tracks.
  malware::MobileMalware intruder(sim, prover);
  intruder.schedule(Time::zero() + Duration::hours(80),
                    Duration::minutes(90));

  // Maintenance crew collects twice a day.
  PlantRun result;
  for (Time at = Time::zero() + Duration::hours(12);
       at <= Time::zero() + horizon; at = at + Duration::hours(12)) {
    sim.schedule_at(at, [&] {
      const auto res = prover.handle_collect(attest::CollectRequest{40});
      const auto report =
          verifier.verify_collection(res.response, sim.now());
      result.infection_detected |= report.infection_detected;
    });
  }

  sim.run_until(Time::zero() + horizon);
  result.measurements = prover.stats().measurements;
  result.deferred = prover.stats().aborted;
  result.skipped = prover.stats().skipped;
  result.interference_s = prover.stats().task_interference.to_seconds();
  return result;
}

const char* policy_name(attest::ConflictPolicy p) {
  switch (p) {
    case attest::ConflictPolicy::kMeasureAnyway:
      return "measure-anyway (strict)";
    case attest::ConflictPolicy::kSkip:
      return "skip";
    case attest::ConflictPolicy::kAbortAndReschedule:
      return "lenient (w=2)";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("Industrial sensor, one simulated week: T_M = 20 min, 2-min "
              "control task every 20 min\n(phased onto the measurement "
              "instants), 10 KB memory @ 8 MHz (~7 s per\nmeasurement), "
              "collections every 12 h.\n\n");
  std::printf("%-24s %13s %9s %8s %18s %10s\n", "policy", "measurements",
              "deferred", "skipped", "interference (s)", "infection");
  for (const auto policy : {attest::ConflictPolicy::kMeasureAnyway,
                            attest::ConflictPolicy::kSkip,
                            attest::ConflictPolicy::kAbortAndReschedule}) {
    const auto r = run_week(policy, 2.0);
    std::printf("%-24s %13llu %9llu %8llu %18.1f %10s\n", policy_name(policy),
                static_cast<unsigned long long>(r.measurements),
                static_cast<unsigned long long>(r.deferred),
                static_cast<unsigned long long>(r.skipped),
                r.interference_s, r.infection_detected ? "DETECTED" : "-");
  }
  std::printf(
      "\nTakeaway: the lenient window removes every second of interference\n"
      "with the control loop while keeping the measurement count -- and the\n"
      "mid-week 90-minute infection is still caught at the next collection.\n");
  return 0;
}
