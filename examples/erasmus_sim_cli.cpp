// erasmus_sim_cli: a scriptable scenario driver for the library.
//
//   ./erasmus_sim_cli [--tm MIN] [--tc MIN] [--horizon HOURS]
//                     [--infections N] [--dwell MIN] [--seed S]
//                     [--irregular LO,HI] [--loss P] [--slots N]
//
// Builds one SMART+ device + collector daemon over a (optionally lossy)
// network, runs a mobile-malware campaign, and prints the audit summary --
// a quick way to explore QoA parameter choices without writing code.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "attest/collector.h"
#include "attest/prover.h"
#include "attest/qoa.h"
#include "malware/campaign.h"

using namespace erasmus;
using sim::Duration;
using sim::Time;

namespace {

struct Options {
  uint64_t tm_min = 10;
  uint64_t tc_min = 60;
  uint64_t horizon_hours = 48;
  size_t infections = 20;
  uint64_t dwell_min = 15;
  uint64_t seed = 1;
  bool irregular = false;
  uint64_t irr_lo_min = 5;
  uint64_t irr_hi_min = 15;
  double loss = 0.0;
  size_t slots = 64;
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](uint64_t& out) {
      if (i + 1 >= argc) return false;
      out = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    if (arg == "--tm" && next(opt.tm_min)) continue;
    if (arg == "--tc" && next(opt.tc_min)) continue;
    if (arg == "--horizon" && next(opt.horizon_hours)) continue;
    if (arg == "--dwell" && next(opt.dwell_min)) continue;
    if (arg == "--seed" && next(opt.seed)) continue;
    if (arg == "--infections") {
      uint64_t v;
      if (next(v)) {
        opt.infections = static_cast<size_t>(v);
        continue;
      }
    }
    if (arg == "--slots") {
      uint64_t v;
      if (next(v)) {
        opt.slots = static_cast<size_t>(v);
        continue;
      }
    }
    if (arg == "--loss" && i + 1 < argc) {
      opt.loss = std::strtod(argv[++i], nullptr);
      continue;
    }
    if (arg == "--irregular" && i + 1 < argc) {
      opt.irregular = true;
      const std::string spec = argv[++i];
      const auto comma = spec.find(',');
      if (comma == std::string::npos) return false;
      opt.irr_lo_min = std::strtoull(spec.substr(0, comma).c_str(), nullptr,
                                     10);
      opt.irr_hi_min = std::strtoull(spec.substr(comma + 1).c_str(), nullptr,
                                     10);
      continue;
    }
    std::fprintf(stderr, "unknown or malformed argument: %s\n", arg.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: %s [--tm MIN] [--tc MIN] [--horizon HOURS] "
                 "[--infections N]\n          [--dwell MIN] [--seed S] "
                 "[--irregular LO,HI] [--loss P] [--slots N]\n",
                 argv[0]);
    return 2;
  }

  constexpr size_t kRecordBytes = 1 + 8 + 32 + 32;
  const Bytes key = bytes_of("cli-device-key-0123456789abcdef!");

  sim::EventQueue sim;
  hw::SmartPlusArch device(key, 8 * 1024, 4 * 1024,
                           opt.slots * kRecordBytes);
  std::unique_ptr<attest::Scheduler> sched;
  if (opt.irregular) {
    sched = std::make_unique<attest::IrregularScheduler>(
        key, Duration::minutes(opt.irr_lo_min),
        Duration::minutes(opt.irr_hi_min));
  } else {
    sched = std::make_unique<attest::RegularScheduler>(
        Duration::minutes(opt.tm_min));
  }
  attest::Prover prover(sim, device, device.app_region(),
                        device.store_region(), std::move(sched),
                        attest::ProverConfig{});
  attest::VerifierConfig vc;
  vc.key = key;
  vc.golden_digest = crypto::Hash::digest(
      crypto::HashAlgo::kSha256,
      device.memory().view(device.app_region(), true));
  attest::Verifier verifier(std::move(vc));
  prover.start();

  const attest::QoAParams qoa{Duration::minutes(opt.tm_min),
                              Duration::minutes(opt.tc_min)};
  std::printf("ERASMUS scenario: T_M=%llu min (%s), T_C=%llu min, "
              "horizon=%llu h, %zu infections of %llu min, loss=%.0f%%\n",
              static_cast<unsigned long long>(opt.tm_min),
              opt.irregular ? "irregular" : "regular",
              static_cast<unsigned long long>(opt.tc_min),
              static_cast<unsigned long long>(opt.horizon_hours),
              opt.infections,
              static_cast<unsigned long long>(opt.dwell_min),
              100.0 * opt.loss);
  std::printf("QoA: k=%zu records/collection, expected freshness %s, "
              "min buffer %zu slots (configured %zu)\n",
              qoa.measurements_per_collection(),
              sim::to_string(qoa.expected_freshness()).c_str(),
              qoa.min_buffer_slots(), opt.slots);
  if (!qoa.buffer_safe(opt.slots)) {
    std::printf("WARNING: T_C > n*T_M -- measurements will be overwritten "
                "before collection!\n");
  }

  malware::CampaignConfig cc;
  cc.horizon = Duration::hours(opt.horizon_hours);
  cc.tc = Duration::minutes(opt.tc_min);
  cc.infection_count = opt.infections;
  cc.dwell = Duration::minutes(opt.dwell_min);
  cc.seed = opt.seed;
  const auto result = malware::run_mobile_campaign(sim, prover, verifier, cc);

  std::printf("\nresults over %llu h:\n",
              static_cast<unsigned long long>(opt.horizon_hours));
  std::printf("  measurements taken:    %llu\n",
              static_cast<unsigned long long>(prover.stats().measurements));
  std::printf("  collections:           %zu\n", result.collections);
  std::printf("  infections (ground):   %zu\n", result.infections);
  std::printf("  measured while present:%zu\n", result.measured);
  std::printf("  detected by verifier:  %zu  (rate %.2f)\n", result.detected,
              result.detection_rate());
  std::printf("  mean detection latency:%s\n",
              sim::to_string(result.mean_detection_latency()).c_str());
  const double analytic = attest::detection_prob_regular(
      Duration::minutes(opt.dwell_min), Duration::minutes(opt.tm_min));
  std::printf("  analytic d/T_M bound:  %.2f\n",
              analytic > 1.0 ? 1.0 : analytic);
  return 0;
}
