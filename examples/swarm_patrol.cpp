// Scenario: a mobile drone swarm patrolling a field (§6).
//
// Twenty devices move at vehicle speeds; a maintenance rover (co-located
// with device 0) passes through periodically and collects stored
// self-measurements from whatever part of the swarm is momentarily
// reachable. The example contrasts this with an on-demand swarm
// attestation (SEDA-style) attempt over the same mobility, shows staggered
// scheduling keeping the swarm available, and renders QoSA reports.
#include <cstdio>

#include "swarm/fleet.h"
#include "swarm/protocols.h"

using namespace erasmus;
using sim::Duration;
using sim::Time;

int main() {
  sim::EventQueue sim;

  swarm::FleetConfig cfg;
  cfg.devices = 20;
  cfg.tm = Duration::minutes(10);
  cfg.app_ram_bytes = 2 * 1024;
  cfg.store_slots = 64;
  cfg.staggered = true;
  cfg.mobility.field_size = 200.0;
  cfg.mobility.radio_range = 60.0;
  cfg.mobility.speed_min = 6.0;   // brisk drones
  cfg.mobility.speed_max = 12.0;
  cfg.mobility.seed = 2024;

  swarm::Fleet fleet(sim, cfg);
  fleet.start();

  // Device 13 picks up persistent malware early in the patrol.
  sim.schedule_at(Time::zero() + Duration::minutes(42), [&] {
    fleet.prover(13).memory().write(fleet.prover(13).attested_region(), 64,
                                    bytes_of("IMPLANT"), false);
  });

  std::printf("20-drone patrol, T_M = 10 min (staggered), rover collection "
              "every 30 min:\n\n");
  std::printf("  round  time    reachable  healthy  infected-flagged\n");

  size_t rounds_flagging_13 = 0;
  for (int round = 1; round <= 6; ++round) {
    sim.run_until(Time::zero() + Duration::minutes(30) * round);
    const auto statuses = fleet.collect_round(/*root=*/0, /*k=*/8);
    size_t reachable = 0, healthy = 0;
    bool flagged13 = false;
    for (const auto& s : statuses) {
      reachable += s.attested;
      healthy += s.healthy;
      if (s.device == 13 && s.attested && !s.healthy) flagged13 = true;
    }
    rounds_flagging_13 += flagged13;
    std::printf("  %5d  %3d min %9zu %8zu  %s\n", round, 30 * round,
                reachable, healthy, flagged13 ? "device-13" : "-");
  }
  std::printf("\nDevice 13 flagged in %zu of the rounds it was reachable -- "
              "collection needs only MOMENTARY connectivity.\n\n",
              rounds_flagging_13);

  // Contrast: one SEDA-style on-demand round over the same swarm state.
  swarm::SwarmProtocolConfig pc;
  pc.measurement_time = Duration::seconds(7);
  auto& mobility = fleet.mobility();
  const auto od = swarm::run_ondemand_round(mobility, sim.now(), 0, pc);
  const auto er =
      swarm::run_erasmus_collection_round(mobility, sim.now(), 0, pc);
  std::printf("on-demand swarm RA right now: %zu/%zu devices in %s\n",
              od.attested, od.devices, sim::to_string(od.duration).c_str());
  std::printf("ERASMUS collection right now: %zu/%zu devices in %s\n\n",
              er.attested, er.devices, sim::to_string(er.duration).c_str());

  // Staggering keeps the swarm available (§6, last paragraph).
  const size_t aligned = swarm::max_concurrent_busy(
      cfg.devices, cfg.tm, Duration::seconds(7), false);
  const size_t staggered = swarm::max_concurrent_busy(
      cfg.devices, cfg.tm, Duration::seconds(7), true);
  std::printf("max drones measuring at once: %zu aligned vs %zu staggered\n",
              aligned, staggered);
  return 0;
}
