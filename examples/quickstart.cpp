// Quickstart: the smallest complete ERASMUS deployment.
//
// One SMART+ device self-measures every 10 minutes; a verifier collects
// once an hour, validates the history, and reports Quality of Attestation.
//
//   $ ./quickstart
//
// Walks through the library's core API in ~80 lines:
//   1. build a device (security architecture + prover),
//   2. let it run unattended,
//   3. collect + verify, 4. read the QoA numbers.
#include <cstdio>

#include "attest/prover.h"
#include "attest/qoa.h"
#include "attest/verifier.h"

using namespace erasmus;
using sim::Duration;
using sim::Time;

int main() {
  // --- 1. Provision a device --------------------------------------------------
  // The device key K is shared with the verifier at manufacture. The
  // SMART+ model gives us ROM, a protected key region, app RAM and an
  // (intentionally) unprotected measurement store.
  const Bytes device_key = bytes_of("quickstart-key-0123456789abcdef!");
  constexpr size_t kAppRam = 8 * 1024;
  constexpr size_t kStoreSlots = 16;
  constexpr size_t kRecordBytes = 1 + 8 + 32 + 32;  // HMAC-SHA256 records

  sim::EventQueue sim;  // all timing below is virtual (deterministic)
  hw::SmartPlusArch device(device_key, /*rom=*/8 * 1024, kAppRam,
                           kStoreSlots * kRecordBytes);

  // --- 2. Start the prover: self-measurement every T_M = 10 min ---------------
  attest::ProverConfig prover_config;  // MSP430 @ 8 MHz profile by default
  attest::Prover prover(sim, device, device.app_region(),
                        device.store_region(),
                        std::make_unique<attest::RegularScheduler>(
                            Duration::minutes(10)),
                        prover_config);
  prover.start();

  // --- 3. Set up the verifier --------------------------------------------------
  attest::VerifierConfig verifier_config;
  verifier_config.key = device_key;
  verifier_config.golden_digest = crypto::Hash::digest(
      crypto::HashAlgo::kSha256,
      device.memory().view(device.app_region(), /*privileged=*/true));
  attest::Verifier verifier(std::move(verifier_config));
  verifier.set_schedule(&prover.scheduler(), /*t0_ticks=*/600);

  // --- 4. The device runs unattended for an hour ------------------------------
  // (collect one minute past the last measurement so the device is idle;
  // a request landing DURING a measurement simply queues behind it)
  sim.run_until(Time::zero() + Duration::minutes(61));
  std::printf("after 1 h unattended: %llu self-measurements taken, "
              "%.2f s total busy time\n",
              static_cast<unsigned long long>(prover.stats().measurements),
              prover.stats().total_measurement_time.to_seconds());

  // --- 5. Collect and verify (Fig. 2 protocol) --------------------------------
  const attest::QoAParams qoa{Duration::minutes(10), Duration::hours(1)};
  const auto k = qoa.measurements_per_collection();  // ceil(T_C / T_M) = 6
  const auto res = prover.handle_collect(
      attest::CollectRequest{static_cast<uint32_t>(k)});
  const auto report = verifier.verify_collection(res.response, sim.now(), k);

  std::printf("collection of k=%zu records took %s on the prover "
              "(no cryptography!)\n",
              k, sim::to_string(res.processing).c_str());
  std::printf("verdict: %s; infection=%s tampering=%s missing=%zu\n",
              report.device_trustworthy() ? "device trustworthy"
                                          : "ANOMALY DETECTED",
              report.infection_detected ? "yes" : "no",
              report.tampering_detected ? "yes" : "no", report.missing);

  // --- 6. QoA facts -------------------------------------------------------------
  std::printf("QoA: T_M=10 min, T_C=60 min, expected freshness %s, "
              "worst-case detection delay %s, min buffer %zu slots\n",
              sim::to_string(qoa.expected_freshness()).c_str(),
              sim::to_string(qoa.worst_case_detection_delay()).c_str(),
              qoa.min_buffer_slots());
  if (report.freshness) {
    std::printf("freshness of this collection: %s\n",
                sim::to_string(*report.freshness).c_str());
  }
  return report.device_trustworthy() ? 0 : 1;
}
