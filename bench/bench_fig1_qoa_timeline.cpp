// Reproduces paper Fig. 1: the QoA illustration. Two infections hit an
// unattended prover that self-measures every T_M and is collected every
// T_C:
//   * infection 1 (mobile): enters and leaves between two measurements --
//     undetected (the fundamental limit that smaller T_M narrows);
//   * infection 2 (persistent until after a measurement): measured soon
//     after entry, but corrective action waits for the next collection --
//     illustrating why small T_C matters.
//
// The bench then generalises the picture with a Monte-Carlo campaign over
// random infections, reporting detection rate and latency vs. (T_M, T_C).
#include <cstdio>

#include "analysis/bench_report.h"
#include "analysis/table.h"
#include "attest/prover.h"
#include "attest/qoa.h"
#include "attest/directory.h"
#include "common/hex.h"
#include "malware/campaign.h"
#include "malware/malware.h"

using namespace erasmus;
using sim::Duration;
using sim::Time;

namespace {

constexpr size_t kRecord = 1 + 8 + 32 + 32;

struct Device {
  sim::EventQueue queue;
  hw::SmartPlusArch arch;
  attest::Prover prover;
  attest::DeviceRecord record;

  Device(Duration tm)
      : arch(bytes_of("fig1-device-key-0123456789abcdef"), 4096, 2048,
             64 * kRecord),
        prover(queue, arch, arch.app_region(), arch.store_region(),
               std::make_unique<attest::RegularScheduler>(tm),
               attest::ProverConfig{}),
        record([&] {
          attest::DeviceRecord r;
          r.key = bytes_of("fig1-device-key-0123456789abcdef");
          r.set_golden(crypto::Hash::digest(
              crypto::HashAlgo::kSha256,
              arch.memory().view(arch.app_region(), true)));
          return r;
        }()) {}
};

void timeline_demo() {
  const Duration tm = Duration::minutes(10);
  const Duration tc = Duration::hours(1);
  Device dev(tm);
  dev.prover.start();

  malware::MobileMalware infection1(dev.queue, dev.prover);
  // Infection 1: 12:00 -> 17:00 past the hour (between measurements).
  infection1.schedule(Time::zero() + Duration::minutes(12),
                      Duration::minutes(5));

  std::printf("=== Fig. 1: QoA timeline (T_M = 10 min, T_C = 60 min) ===\n\n");
  std::printf("  time   event\n");
  std::printf("  -----  -----------------------------------------------\n");
  std::printf("  12:00  infection 1 enters (mobile malware)\n");
  std::printf("  17:00  infection 1 covers tracks and leaves\n");
  std::printf("  35:00  infection 2 enters\n");
  std::printf("  52:00  infection 2 leaves (after the 40:00 and 50:00 "
              "measurements)\n\n");

  // We reuse one Infector per prover (observer slot); infection 2 runs on
  // the same object after infection 1 finished.
  infection1.schedule(Time::zero() + Duration::minutes(35),
                      Duration::minutes(17));

  dev.queue.run_until(Time::zero() + tc);
  const auto res = dev.prover.handle_collect(attest::CollectRequest{6});
  const auto report =
      attest::verify_collection(dev.record, res.response, dev.queue.now());

  std::printf("Collection at 60:00 returned %zu measurements:\n",
              report.verdicts.size());
  for (auto it = report.verdicts.rbegin(); it != report.verdicts.rend();
       ++it) {
    std::printf("  t=%5llu s  digest=%-12s  -> %s\n",
                static_cast<unsigned long long>(it->m.timestamp),
                hex_abbrev(it->m.digest).c_str(),
                attest::to_string(it->status).c_str());
  }

  const auto& infections = infection1.history();
  std::printf("\nGround truth vs. verifier:\n");
  std::printf("  infection 1 measured while present: %s (paper: undetected)\n",
              infections[0].was_measured() ? "YES" : "no");
  std::printf("  infection 2 measured while present: %s (paper: detected at "
              "next collection)\n",
              infections[1].was_measured() ? "YES" : "no");
  std::printf("  verifier detected an infection:     %s\n",
              report.infection_detected ? "YES" : "no");
  std::printf("  freshness f at collection:          %s (expected <= T_M)\n\n",
              report.freshness ? sim::to_string(*report.freshness).c_str()
                               : "n/a");
}

void campaign_sweep(analysis::BenchReport& bench) {
  std::printf("=== QoA generalisation: random mobile-malware campaigns ===\n");
  std::printf("(240 h horizon, 60 infections of 5 min dwell; detection rate "
              "~ dwell/T_M, latency bounded by T_M + T_C)\n\n");
  analysis::Table table({"T_M (min)", "T_C (min)", "detected/total",
                         "rate", "mean latency (min)", "analytic d/T_M"});
  for (const auto& [tm_min, tc_min] :
       {std::pair{5, 30}, {10, 60}, {20, 60}, {30, 120}, {60, 240}}) {
    Device dev(Duration::minutes(tm_min));
    dev.prover.start();
    malware::CampaignConfig cfg;
    cfg.horizon = Duration::hours(240);
    cfg.tc = Duration::minutes(tc_min);
    cfg.infection_count = 60;
    cfg.dwell = Duration::minutes(5);
    cfg.seed = 1000 + tm_min;
    const auto result = malware::run_mobile_campaign(dev.queue, dev.prover,
                                                     dev.record, cfg);
    const double analytic = attest::detection_prob_regular(
        cfg.dwell, Duration::minutes(tm_min));
    bench.sample("detection_rate", result.detection_rate());
    for (const auto& latency : result.detection_latencies) {
      bench.sample("detection_latency_min", latency.to_seconds() / 60.0);
    }
    table.add_row(
        {std::to_string(tm_min), std::to_string(tc_min),
         std::to_string(result.detected) + "/" +
             std::to_string(result.infections),
         analysis::fmt(result.detection_rate(), 2),
         analysis::fmt(result.mean_detection_latency().to_seconds() / 60.0, 1),
         analysis::fmt(analytic > 1.0 ? 1.0 : analytic, 2)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // Already sub-minute at full size: --quick is accepted (CI runs every
  // bench uniformly) and by contract never changes the simulated
  // configuration, so all emitted quantities keep their full-mode values.
  (void)analysis::bench_quick_mode(argc, argv);

  timeline_demo();
  analysis::BenchReport bench("fig1_qoa_timeline");
  campaign_sweep(bench);
  // A missing BENCH json would silently weaken the CI baseline gate.
  if (bench.write().empty()) return 1;
  return 0;
}
