// Reproduces paper Fig. 8: "Measurement Run-Time on I.MX6 Sabre Lite @ 1GHz"
// -- run-time (seconds) vs. memory size (MB), on-demand vs. ERASMUS with
// HMAC-SHA256 and keyed BLAKE2s, on the HYDRA (seL4) architecture model.
#include <cstdio>

#include "analysis/bench_report.h"
#include "analysis/table.h"
#include "attest/prover.h"
#include "sim/device_profile.h"

using namespace erasmus;

namespace {

Bytes key() { return bytes_of("fig8-device-key-0123456789abcdef"); }

double device_measurement_seconds(crypto::MacAlgo algo, size_t mem_bytes) {
  sim::EventQueue queue;
  hw::HydraArch arch(key(), mem_bytes, 4096);
  arch.secure_boot();
  attest::ProverConfig pc;
  pc.algo = algo;
  pc.profile = sim::DeviceProfile::imx6_1ghz();
  attest::Prover prover(queue, arch, arch.app_region(), arch.store_region(),
                        std::make_unique<attest::RegularScheduler>(
                            sim::Duration::minutes(10)),
                        pc);
  prover.start();
  queue.run_until(sim::Time::zero() + sim::Duration::minutes(10));
  return prover.stats().total_measurement_time.to_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  // Already sub-minute at full size: --quick is accepted (CI runs every
  // bench uniformly) and by contract never changes the simulated
  // configuration, so all emitted quantities keep their full-mode values.
  (void)analysis::bench_quick_mode(argc, argv);

  const auto profile = sim::DeviceProfile::imx6_1ghz();
  std::printf("=== Fig. 8: Measurement run-time on I.MX6 Sabre Lite @ 1 GHz "
              "(HYDRA) ===\n");
  std::printf("(paper shows linear growth to ~0.55 s (HMAC-SHA256) and\n"
              " ~0.29 s (BLAKE2S) at 10 MB; ERASMUS ~= on-demand)\n\n");

  analysis::Series series(
      "Memory (MB)",
      {"OnDemand HMAC-SHA256 (s)", "OnDemand BLAKE2S (s)",
       "ERASMUS HMAC-SHA256 (s)", "ERASMUS BLAKE2S (s)"});
  for (int mb = 0; mb <= 10; ++mb) {
    const uint64_t bytes = static_cast<uint64_t>(mb) * 1024 * 1024;
    series.add_point(
        mb, {profile.ondemand_time(crypto::MacAlgo::kHmacSha256, bytes)
                 .to_seconds(),
             profile.ondemand_time(crypto::MacAlgo::kKeyedBlake2s, bytes)
                 .to_seconds(),
             profile.measurement_time(crypto::MacAlgo::kHmacSha256, bytes)
                 .to_seconds(),
             profile.measurement_time(crypto::MacAlgo::kKeyedBlake2s, bytes)
                 .to_seconds()});
  }
  std::printf("%s\n", series.render().c_str());

  std::printf("End-to-end device validation (full HYDRA prover stack, "
              "secure boot + one self-measurement):\n");
  analysis::BenchReport report("fig8_hydra_runtime");
  for (int mb = 0; mb <= 10; ++mb) {
    const uint64_t bytes = static_cast<uint64_t>(mb) * 1024 * 1024;
    report.sample("erasmus_hmac_sha256_s",
                  profile.measurement_time(crypto::MacAlgo::kHmacSha256,
                                           bytes).to_seconds());
    report.sample("erasmus_blake2s_s",
                  profile.measurement_time(crypto::MacAlgo::kKeyedBlake2s,
                                           bytes).to_seconds());
  }
  analysis::Table check({"Memory (MB)", "Algo", "Device (s)", "Model (s)"});
  for (size_t mb : {2, 10}) {
    for (auto algo :
         {crypto::MacAlgo::kHmacSha256, crypto::MacAlgo::kKeyedBlake2s}) {
      const size_t bytes = mb * 1024 * 1024;
      const double device_s = device_measurement_seconds(algo, bytes);
      report.sample(algo == crypto::MacAlgo::kHmacSha256
                        ? "device_hmac_sha256_s"
                        : "device_blake2s_s",
                    device_s);
      check.add_row({std::to_string(mb), crypto::to_string(algo),
                     analysis::fmt(device_s, 4),
                     analysis::fmt(
                         profile.measurement_time(algo, bytes).to_seconds(),
                         4)});
    }
  }
  std::printf("%s\n", check.render().c_str());
  std::printf("Paper anchor (Table 2): 285.6 ms at 10 MB with keyed BLAKE2S. "
              "Model: %.1f ms\n\n",
              profile.mac_time(crypto::MacAlgo::kKeyedBlake2s,
                               10ull * 1024 * 1024).to_millis());
  // A missing BENCH json would silently weaken the CI baseline gate.
  if (report.write().empty()) return 1;
  return 0;
}
