// Ablation for the §3.1 trade-off: "though low values [T_M, T_C] increase
// QoA, they also increase Prv's overall burden, in terms of computation,
// power consumption and communication."
//
// Sweeps T_M on the MSP430-class device and reports, side by side, the QoA
// quantities (detection probability for a 30-min dwell, expected freshness)
// against the burden quantities (measurement duty cycle, energy per day,
// battery life on 2xAA). Then runs the QoA planner on three operator goals
// and prints the chosen configurations.
#include <cstdio>

#include "analysis/bench_report.h"
#include "analysis/qoa_planner.h"
#include "analysis/table.h"
#include "attest/qoa.h"
#include "sim/energy.h"

using namespace erasmus;
using sim::Duration;

int main(int argc, char** argv) {
  // Already sub-minute at full size: --quick is accepted (CI runs every
  // bench uniformly) and by contract never changes the simulated
  // configuration, so all emitted quantities keep their full-mode values.
  (void)analysis::bench_quick_mode(argc, argv);

  const auto device = sim::DeviceProfile::msp430_8mhz();
  const auto energy = sim::EnergyProfile::msp430();
  const auto algo = crypto::MacAlgo::kHmacSha256;
  constexpr uint64_t kMem = 10 * 1024;
  constexpr size_t kRecord = 1 + 8 + 32 + 32;
  const Duration tc = Duration::hours(2);
  const Duration dwell = Duration::minutes(30);

  std::printf("=== Ablation: QoA vs energy burden (MSP430 @ 8 MHz, 10 KB, "
              "HMAC-SHA256, T_C = 2 h, 2xAA battery) ===\n\n");
  analysis::Table table({"T_M (min)", "P(detect 30-min dwell)",
                         "E[freshness] (min)", "duty (%)", "mJ/day",
                         "battery (days)"});
  analysis::BenchReport bench("ablation_energy");
  for (const uint64_t tm_min : {1ull, 2ull, 5ull, 10ull, 20ull, 30ull, 60ull,
                                120ull}) {
    const Duration tm = Duration::minutes(tm_min);
    const attest::QoAParams qoa{tm, tc};
    const auto ledger = sim::attestation_energy(
        device, energy, algo, kMem, kRecord, tm, tc, Duration::hours(24));
    const double duty =
        100.0 * static_cast<double>(device.measurement_time(algo, kMem).ns()) /
        static_cast<double>(tm.ns());
    bench.sample("duty_pct", duty);
    bench.sample("mj_per_day", ledger.total().millijoules());
    bench.sample("battery_days",
                 sim::battery_life_days(device, energy, algo, kMem, kRecord,
                                        tm, tc, 2400.0));
    table.add_row(
        {std::to_string(tm_min),
         analysis::fmt(attest::detection_prob_regular(dwell, tm), 2),
         analysis::fmt(qoa.expected_freshness().to_seconds() / 60.0, 1),
         analysis::fmt(duty, 2),
         analysis::fmt(ledger.total().millijoules(), 1),
         analysis::fmt(
             sim::battery_life_days(device, energy, algo, kMem, kRecord, tm,
                                    tc, 2400.0),
             0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected shape: detection probability and freshness improve "
              "as T_M shrinks\nwhile duty cycle and energy grow ~1/T_M -- "
              "the paper's stated burden trade-off.\n\n");

  std::printf("=== QoA planner: cheapest configuration meeting each goal "
              "===\n\n");
  analysis::Table plans({"Goal", "T_M", "T_C", "n", "P(detect)",
                         "battery (days)"});
  struct NamedGoal {
    const char* name;
    analysis::QoAGoal goal;
  };
  std::vector<NamedGoal> goals;
  {
    analysis::QoAGoal g;
    g.min_dwell = Duration::minutes(30);
    g.min_detection_prob = 0.9;
    g.max_detection_latency = Duration::hours(4);
    goals.push_back({"catch 30-min dwell p>=0.9, latency<=4h", g});
  }
  {
    analysis::QoAGoal g;
    g.min_dwell = Duration::hours(2);
    g.min_detection_prob = 0.5;
    g.max_detection_latency = Duration::hours(24);
    g.min_battery_days = 365.0;
    goals.push_back({"catch 2-h dwell p>=0.5, 1-year battery", g});
  }
  {
    analysis::QoAGoal g;
    g.min_dwell = Duration::minutes(10);
    g.min_detection_prob = 0.95;
    g.max_detection_latency = Duration::hours(1);
    goals.push_back({"catch 10-min dwell p>=0.95, latency<=1h", g});
  }
  for (const auto& [name, goal] : goals) {
    const auto plan = analysis::plan_qoa(goal, analysis::DeviceSpec{});
    if (!plan) {
      plans.add_row({name, "-", "-", "-", "infeasible", "-"});
      continue;
    }
    plans.add_row({name, sim::to_string(plan->tm), sim::to_string(plan->tc),
                   std::to_string(plan->buffer_slots),
                   analysis::fmt(plan->detection_prob, 2),
                   analysis::fmt(plan->battery_days, 0)});
  }
  std::printf("%s\n", plans.render().c_str());
  // A missing BENCH json would silently weaken the CI baseline gate.
  if (bench.write().empty()) return 1;
  return 0;
}
