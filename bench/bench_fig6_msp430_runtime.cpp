// Reproduces paper Fig. 6: "Measurement Run-Time on MSP430-based Device
// @ 8MHz" -- run-time (seconds) vs. memory size (KB), four curves:
// on-demand and ERASMUS, each with HMAC-SHA256 and keyed BLAKE2s.
//
// Two modes per point:
//  * model: the DeviceProfile cost model (continuous sweep, 0-10 KB);
//  * device: a REAL simulated prover is built at that size, performs one
//    scheduled self-measurement end-to-end (ROM code path, protected key
//    access, store write) and the virtual busy time is reported -- this
//    validates that the full device stack charges exactly the model cost.
#include <cstdio>

#include "analysis/bench_report.h"
#include "analysis/table.h"
#include "attest/prover.h"
#include "sim/device_profile.h"

using namespace erasmus;

namespace {

Bytes key() { return bytes_of("fig6-device-key-0123456789abcdef"); }

// One full prover measurement at `mem_bytes`; returns busy time in seconds.
double device_measurement_seconds(crypto::MacAlgo algo, size_t mem_bytes) {
  sim::EventQueue queue;
  hw::SmartPlusArch arch(key(), 8 * 1024, mem_bytes, 2048);
  attest::ProverConfig pc;
  pc.algo = algo;
  pc.profile = sim::DeviceProfile::msp430_8mhz();
  attest::Prover prover(queue, arch, arch.app_region(), arch.store_region(),
                        std::make_unique<attest::RegularScheduler>(
                            sim::Duration::minutes(10)),
                        pc);
  prover.start();
  queue.run_until(sim::Time::zero() + sim::Duration::minutes(10));
  return prover.stats().total_measurement_time.to_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  // Already sub-minute at full size: --quick is accepted (CI runs every
  // bench uniformly) and by contract never changes the simulated
  // configuration, so all emitted quantities keep their full-mode values.
  (void)analysis::bench_quick_mode(argc, argv);

  const auto profile = sim::DeviceProfile::msp430_8mhz();
  std::printf("=== Fig. 6: Measurement run-time on MSP430 @ 8 MHz ===\n");
  std::printf("(model sweep; paper shows linear growth to ~7s at 10 KB,\n"
              " ERASMUS ~= on-demand, BLAKE2s below HMAC-SHA256)\n\n");

  analysis::Series series(
      "Memory (KB)",
      {"OnDemand HMAC-SHA256 (s)", "OnDemand BLAKE2S (s)",
       "ERASMUS HMAC-SHA256 (s)", "ERASMUS BLAKE2S (s)"});
  for (int kb = 0; kb <= 10; ++kb) {
    const uint64_t bytes = static_cast<uint64_t>(kb) * 1024;
    series.add_point(
        kb, {profile.ondemand_time(crypto::MacAlgo::kHmacSha256, bytes)
                 .to_seconds(),
             profile.ondemand_time(crypto::MacAlgo::kKeyedBlake2s, bytes)
                 .to_seconds(),
             profile.measurement_time(crypto::MacAlgo::kHmacSha256, bytes)
                 .to_seconds(),
             profile.measurement_time(crypto::MacAlgo::kKeyedBlake2s, bytes)
                 .to_seconds()});
  }
  std::printf("%s\n", series.render().c_str());

  std::printf("End-to-end device validation (full prover stack, one "
              "self-measurement):\n");
  analysis::BenchReport report("fig6_msp430_runtime");
  for (int kb = 0; kb <= 10; ++kb) {
    const uint64_t bytes = static_cast<uint64_t>(kb) * 1024;
    report.sample("erasmus_hmac_sha256_s",
                  profile.measurement_time(crypto::MacAlgo::kHmacSha256,
                                           bytes).to_seconds());
    report.sample("erasmus_blake2s_s",
                  profile.measurement_time(crypto::MacAlgo::kKeyedBlake2s,
                                           bytes).to_seconds());
  }
  analysis::Table check({"Memory (KB)", "Algo", "Device (s)", "Model (s)"});
  for (size_t kb : {2, 6, 10}) {
    for (auto algo :
         {crypto::MacAlgo::kHmacSha256, crypto::MacAlgo::kKeyedBlake2s}) {
      const double device_s = device_measurement_seconds(algo, kb * 1024);
      const double model_s =
          profile.measurement_time(algo, kb * 1024).to_seconds();
      report.sample(algo == crypto::MacAlgo::kHmacSha256
                        ? "device_hmac_sha256_s"
                        : "device_blake2s_s",
                    device_s);
      check.add_row({std::to_string(kb), crypto::to_string(algo),
                     analysis::fmt(device_s, 3), analysis::fmt(model_s, 3)});
    }
  }
  std::printf("%s\n", check.render().c_str());
  std::printf("Paper anchor: ~7 s at 10 KB (HMAC-SHA256). Model at 10 KB: "
              "%.2f s\n\n",
              profile.mac_time(crypto::MacAlgo::kHmacSha256, 10 * 1024)
                  .to_seconds());
  // A missing BENCH json would silently weaken the CI baseline gate.
  if (report.write().empty()) return 1;
  return 0;
}
