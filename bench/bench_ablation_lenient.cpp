// Ablation for §5 (availability in time-sensitive applications): what a
// measurement schedule does to a device running periodic time-critical
// tasks, under the three conflict policies:
//
//   * measure-anyway (strict schedule; steals task time -- the paper's
//     "making Prv unavailable for 7 s is not appropriate"),
//   * skip (preserves the task, loses QoA),
//   * lenient window w*T_M (paper's proposal: defer within the window).
//
// Reported: task interference time, measurements kept/lost, worst schedule
// slip -- the security/availability trade-off, swept over w.
#include <cstdio>

#include "analysis/bench_report.h"
#include "analysis/table.h"
#include "attest/prover.h"

using namespace erasmus;
using sim::Duration;
using sim::Time;

namespace {

constexpr size_t kRecord = 1 + 8 + 32 + 32;

struct Outcome {
  uint64_t measurements = 0;
  uint64_t skipped = 0;
  uint64_t aborted = 0;
  Duration interference;
  Duration worst_slip;
};

Outcome run(attest::ConflictPolicy policy, double window_factor,
            Duration horizon) {
  const Bytes key = bytes_of("lenient-ablation-key-0123456789a");
  sim::EventQueue queue;
  // 10 KB of attested memory on the 8 MHz MSP430 profile: a measurement
  // takes ~7 s (Fig. 6), which is what makes conflicts hurt.
  hw::SmartPlusArch arch(key, 4096, 10 * 1024, 32 * kRecord);
  attest::ProverConfig pc;
  pc.conflict_policy = policy;
  std::unique_ptr<attest::Scheduler> sched =
      std::make_unique<attest::RegularScheduler>(Duration::minutes(10));
  if (policy == attest::ConflictPolicy::kAbortAndReschedule) {
    sched = std::make_unique<attest::LenientScheduler>(std::move(sched),
                                                       window_factor);
  }
  attest::Prover prover(queue, arch, arch.app_region(), arch.store_region(),
                        std::move(sched), pc);
  prover.start();

  // Time-critical task workload: a 3-minute control task every 20 minutes,
  // phase-shifted so every other measurement lands inside one.
  for (Time at = Time::zero() + Duration::minutes(9);
       at < Time::zero() + horizon; at = at + Duration::minutes(20)) {
    prover.add_critical_task(at, Duration::minutes(3));
  }

  queue.run_until(Time::zero() + horizon);
  const auto& s = prover.stats();
  return Outcome{s.measurements, s.skipped, s.aborted, s.task_interference,
                 s.max_schedule_slip};
}

}  // namespace

int main(int argc, char** argv) {
  // Already sub-minute at full size: --quick is accepted (CI runs every
  // bench uniformly) and by contract never changes the simulated
  // configuration, so all emitted quantities keep their full-mode values.
  (void)analysis::bench_quick_mode(argc, argv);

  const Duration horizon = Duration::hours(24);

  std::printf("=== Ablation (Sect. 5): availability under time-critical "
              "tasks ===\n");
  std::printf("MSP430 @ 8 MHz, 10 KB memory (~7 s per measurement), T_M = 10 "
              "min,\n3-min critical task every 20 min, 24 h horizon.\n\n");

  analysis::Table table({"Policy", "w", "measurements", "skipped", "deferred",
                         "task interference (s)", "worst slip (min)"});

  const auto strict = run(attest::ConflictPolicy::kMeasureAnyway, 1.0,
                          horizon);
  table.add_row({"measure-anyway", "-", std::to_string(strict.measurements),
                 std::to_string(strict.skipped),
                 std::to_string(strict.aborted),
                 analysis::fmt(strict.interference.to_seconds(), 1),
                 analysis::fmt(strict.worst_slip.to_seconds() / 60.0, 2)});

  const auto skip = run(attest::ConflictPolicy::kSkip, 1.0, horizon);
  table.add_row({"skip", "-", std::to_string(skip.measurements),
                 std::to_string(skip.skipped), std::to_string(skip.aborted),
                 analysis::fmt(skip.interference.to_seconds(), 1),
                 analysis::fmt(skip.worst_slip.to_seconds() / 60.0, 2)});

  analysis::BenchReport bench("ablation_lenient");
  bench.sample("strict_interference_s", strict.interference.to_seconds());
  bench.sample("skip_lost_measurements", static_cast<double>(skip.skipped));
  for (const double w : {1.2, 1.5, 2.0, 3.0}) {
    const auto lenient =
        run(attest::ConflictPolicy::kAbortAndReschedule, w, horizon);
    bench.sample("lenient_interference_s",
                 lenient.interference.to_seconds());
    bench.sample("lenient_worst_slip_min",
                 lenient.worst_slip.to_seconds() / 60.0);
    bench.sample("lenient_measurements",
                 static_cast<double>(lenient.measurements));
    table.add_row({"lenient", analysis::fmt(w, 1),
                   std::to_string(lenient.measurements),
                   std::to_string(lenient.skipped),
                   std::to_string(lenient.aborted),
                   analysis::fmt(lenient.interference.to_seconds(), 1),
                   analysis::fmt(lenient.worst_slip.to_seconds() / 60.0, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected shape: measure-anyway maximises measurements but steals "
      "task\ntime; skip zeroes interference but loses measurements; lenient "
      "keeps\nboth by deferring within w*T_M (slip bounded by (w-1)*T_M).\n\n");
  // A missing BENCH json would silently weaken the CI baseline gate.
  if (bench.write().empty()) return 1;
  return 0;
}
