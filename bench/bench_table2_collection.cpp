// Reproduces paper Table 2: "Run-Time (in ms) of Collection Phase on
// I.MX6-Sabre Lite" -- the breakdown of ERASMUS vs. ERASMUS+OD collection:
//
//            Operation            ERASMUS   ERASMUS+OD
//            Verify Request       N/A       0.005
//            Compute Measurement  N/A       285.6      (10 MB, BLAKE2S)
//            Construct UDP        0.003     0.003
//            Send UDP             0.012     0.012
//            Total                0.015     285.6
//
// The numbers come from driving the REAL prover stack (HYDRA architecture,
// 10 MB attested memory, keyed BLAKE2s) through both protocol paths and
// decomposing the charged virtual time.
#include <cstdio>

#include "analysis/bench_report.h"
#include "analysis/table.h"
#include "attest/prover.h"
#include "attest/verifier.h"
#include "sim/device_profile.h"

using namespace erasmus;

int main(int argc, char** argv) {
  // Already sub-minute at full size: --quick is accepted (CI runs every
  // bench uniformly) and by contract never changes the simulated
  // configuration, so all emitted quantities keep their full-mode values.
  (void)analysis::bench_quick_mode(argc, argv);

  const Bytes key = bytes_of("table2-device-key-0123456789abcd");
  const auto profile = sim::DeviceProfile::imx6_1ghz();
  constexpr size_t kMemBytes = 10ull * 1024 * 1024;  // paper: 10 MB

  sim::EventQueue queue;
  hw::HydraArch arch(key, kMemBytes, 4096);
  arch.secure_boot();
  attest::ProverConfig pc;
  pc.algo = crypto::MacAlgo::kKeyedBlake2s;
  pc.profile = profile;
  attest::Prover prover(queue, arch, arch.app_region(), arch.store_region(),
                        std::make_unique<attest::RegularScheduler>(
                            sim::Duration::minutes(10)),
                        pc);
  attest::DeviceRecord record;
  record.algo = pc.algo;
  record.key = key;
  record.set_golden(crypto::Hash::digest(
      attest::hash_for(pc.algo),
      arch.memory().view(arch.app_region(), true)));

  prover.start();
  // Let a few scheduled self-measurements accumulate; stop on an idle
  // instant so the collection does not queue behind a measurement.
  queue.run_until(sim::Time::zero() + sim::Duration::minutes(45));

  // --- ERASMUS collection ----------------------------------------------------
  const auto collect = prover.handle_collect(attest::CollectRequest{4});
  const auto report =
      attest::verify_collection(record, collect.response, queue.now());

  // --- ERASMUS+OD --------------------------------------------------------------
  const auto req = attest::make_od_request(record, prover.rroc().read(), 4);
  const auto od = prover.handle_od(req);

  const double verify_req_ms = profile.request_auth_time().to_millis();
  const double measure_ms =
      profile.mac_time(pc.algo, kMemBytes).to_millis();
  const double construct_ms = profile.packet_construct.to_millis();
  const double send_ms = profile.packet_send.to_millis();

  std::printf("=== Table 2: Collection-phase run-time (ms) on I.MX6 ===\n");
  std::printf("(10 MB attested memory, keyed BLAKE2S)\n\n");
  analysis::Table table({"Operations", "ERASMUS", "ERASMUS+OD"});
  table.add_row({"Verify Request", "N/A", analysis::fmt(verify_req_ms, 3)});
  table.add_row({"Compute Measurement", "N/A", analysis::fmt(measure_ms, 1)});
  table.add_row({"Construct UDP Packet", analysis::fmt(construct_ms, 3),
                 analysis::fmt(construct_ms, 3)});
  table.add_row({"Send UDP Packet", analysis::fmt(send_ms, 3),
                 analysis::fmt(send_ms, 3)});
  table.add_row({"Total Collection Run-time",
                 analysis::fmt(collect.processing.to_millis(), 3),
                 analysis::fmt(od.processing.to_millis(), 1)});
  std::printf("%s\n", table.render().c_str());

  std::printf("Paper reference: totals 0.015 (ERASMUS) vs 285.6 (ERASMUS+OD); "
              "factor >= 3000.\n");
  std::printf("Measured factor: %.0fx\n\n",
              od.processing.to_millis() / collect.processing.to_millis());

  std::printf("Verifier-side check of the collected history: %s "
              "(%zu records, freshness %s)\n",
              report.device_trustworthy() ? "trustworthy" : "ANOMALOUS",
              report.verdicts.size(),
              report.freshness
                  ? sim::to_string(*report.freshness).c_str()
                  : "n/a");
  const bool od_ok = od.response.has_value();
  std::printf("ERASMUS+OD response: %s (fresh measurement + %zu stored)\n\n",
              od_ok ? "accepted" : "rejected",
              od_ok ? od.response->history.size() : 0);

  analysis::BenchReport bench("table2_collection");
  bench.sample("erasmus_collection_ms", collect.processing.to_millis());
  bench.sample("erasmus_od_ms", od.processing.to_millis());
  bench.sample("verify_request_ms", verify_req_ms);
  bench.sample("compute_measurement_ms", measure_ms);
  bench.sample("speedup_factor",
               od.processing.to_millis() / collect.processing.to_millis());
  // A missing BENCH json would silently weaken the CI baseline gate.
  if (bench.write().empty()) return 1;
  return 0;
}
