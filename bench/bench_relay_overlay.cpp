// Perf baseline for the multi-hop collection overlay: a 1000-device
// mobile swarm collected through overlay::RelayTransport behind the
// AttestationService.
//
// The ShardedFleetRunner drives 3 collection rounds with the kOverlay
// backend at 1/8 threads: every round is a real packet-level flood +
// store-and-forward harvest over the instantaneous topology. Reported per
// thread count: fleet build time, wall time per collection round, and
// device-collections per second; plus the hop-count distribution of all
// accepted reports (how deep collection actually reached) and the relay
// economy (floods forwarded, reports relayed/dropped, route repairs).
// Metrics must stay byte-identical across thread counts -- the bench
// aborts otherwise. Emits BENCH_relay_overlay.json so later overlay work
// (smarter flood scoping, per-subtree retries, queue-aware routing) has a
// baseline to beat.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/bench_report.h"
#include "analysis/table.h"
#include "scenario/metrics.h"
#include "scenario/sharded_runner.h"

using namespace erasmus;
using sim::Duration;

namespace {

constexpr size_t kDevices = 1000;
constexpr size_t kRounds = 3;

scenario::ShardedFleetConfig make_config(size_t threads) {
  swarm::DeviceSpec base;
  base.arch = hw::ArchKind::kSmartPlus;
  base.profile = swarm::default_profile_for(base.arch);
  base.app_ram_bytes = 1024;
  base.store_slots = 32;

  scenario::ShardedFleetConfig cfg;
  cfg.plan = swarm::FleetPlan::uniform(kDevices, /*key_seed=*/42, base);
  // ~70 neighbours average, diameter ~10 hops: the first flood covers the
  // swarm and retries stay what they are meant to be (loss recovery), not
  // a TTL crutch -- each targeted retry re-floods the whole field.
  cfg.plan.mobility.field_size = 450.0;
  cfg.plan.mobility.radio_range = 60.0;
  cfg.plan.mobility.speed_min = 6.0;
  cfg.plan.mobility.speed_max = 12.0;
  cfg.plan.mobility.seed = 42;
  cfg.threads = threads;
  cfg.rounds = kRounds;
  cfg.round_interval = Duration::minutes(30);
  cfg.k = 8;
  cfg.backend = scenario::CollectionBackend::kOverlay;
  cfg.overlay.ttl = 14;
  // Root-adjacent relays each carry a whole-subtree's reports (~fleet /
  // degree, with hotspots well above the mean). An undersized buffer
  // turns into mass drops -> per-device retry floods -> an N^2-send storm
  // per retry (measured: depth 64 at 700 devices = 200 drops and 200x the
  // flood traffic of depth 256 with zero drops). Provision for the fleet.
  cfg.overlay.queue_depth = 256;
  cfg.overlay.collect_deadline = Duration::seconds(30);
  return cfg;
}

// --- Hierarchical collection cell: 10k devices -------------------------------
//
// The aggregation payoff only shows at scale: a 2 km field keeps the
// parent trees ~40 hops deep, so per-device relaying pays
// O(devices x hops) radio bytes while cluster heads collapse whole
// depth bands into single authenticated frames. Both cells run ONE
// round over the identical topology/seed; the gate is physical radio
// tx bytes per device (counted once per transmission, like the energy
// tap) at equal-or-better coverage.

constexpr size_t kCellDevices = 10000;

scenario::ShardedFleetConfig cell_config(bool aggregated) {
  swarm::DeviceSpec base;
  base.arch = hw::ArchKind::kSmartPlus;
  base.profile = swarm::default_profile_for(base.arch);
  base.app_ram_bytes = 1024;
  base.store_slots = 32;

  scenario::ShardedFleetConfig cfg;
  cfg.plan = swarm::FleetPlan::uniform(kCellDevices, /*key_seed=*/42, base);
  cfg.plan.staggered = true;
  // ~28 neighbours average and a ~40-hop diameter: deep trees, the
  // regime hierarchical collection exists for. Near-walking speeds keep
  // the topology stable across the (single) 2-minute listening window.
  cfg.plan.mobility.field_size = 2000.0;
  cfg.plan.mobility.radio_range = 60.0;
  cfg.plan.mobility.speed_min = 1.0;
  cfg.plan.mobility.speed_max = 3.0;
  cfg.plan.mobility.seed = 42;
  cfg.threads = 8;
  cfg.rounds = 1;
  cfg.round_interval = Duration::minutes(30);
  cfg.k = 8;
  cfg.backend = scenario::CollectionBackend::kOverlay;
  cfg.overlay.ttl = 80;
  cfg.overlay.queue_depth = 1024;
  cfg.overlay.collect_deadline = Duration::seconds(120);
  cfg.overlay.response_timeout = Duration::seconds(5);
  cfg.overlay.max_retries = 2;
  cfg.window = scenario::WindowSpec::parse("fleet");
  if (aggregated) {
    cfg.overlay.aggregation.enabled = true;
    cfg.overlay.aggregation.election = {aggregate::ElectionMode::kDepthBand,
                                        2};
    cfg.overlay.aggregation.window = Duration::millis(200);
  }
  return cfg;
}

struct CellRun {
  size_t collected = 0;
  size_t healthy = 0;
  double tx_bytes_per_device = 0.0;
  uint64_t clusters = 0;
  uint64_t aggregated_sessions = 0;
  uint64_t demand_fetches = 0;
  double wall_ms = 0.0;
};

CellRun run_cell(bool aggregated) {
  const auto t0 = std::chrono::steady_clock::now();
  scenario::ShardedFleetRunner runner(cell_config(aggregated));
  std::ostringstream out;
  scenario::JsonSink sink(out);
  sink.begin_run("bench_relay_overlay_10k");
  const auto rounds = runner.run(sink);
  sink.end_run();

  CellRun r;
  for (const auto& round : rounds) {
    r.collected += round.reachable;
    r.healthy += round.healthy;
  }
  r.tx_bytes_per_device =
      static_cast<double>(runner.overlay_network()->stats().phys_tx_bytes) /
      static_cast<double>(kCellDevices);
  r.clusters = runner.overlay_totals().aggregates_received;
  r.aggregated_sessions = runner.service().stats().aggregated_sessions;
  r.demand_fetches = runner.service().stats().demand_fetches;
  r.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return r;
}

struct BenchRun {
  double build_ms = 0.0;
  double round_ms = 0.0;           // wall per collection round
  double collections_per_s = 0.0;  // device-collections per wall second
  size_t collected = 0;
  scenario::ShardedFleetRunner::OverlayTotals totals;
  std::string metrics_json;
};

BenchRun run_at(size_t threads) {
  const auto t0 = std::chrono::steady_clock::now();
  scenario::ShardedFleetConfig cfg = make_config(threads);
  scenario::ShardedFleetRunner runner(cfg);
  const auto t1 = std::chrono::steady_clock::now();

  std::ostringstream out;
  scenario::JsonSink sink(out);
  sink.begin_run("bench_relay_overlay");
  const auto rounds = runner.run(sink);
  sink.end_run();
  const auto t2 = std::chrono::steady_clock::now();

  BenchRun result;
  for (const auto& r : rounds) result.collected += r.reachable;
  result.build_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double run_ms =
      std::chrono::duration<double, std::milli>(t2 - t1).count();
  result.round_ms = run_ms / static_cast<double>(kRounds);
  result.collections_per_s =
      run_ms == 0.0
          ? 0.0
          : static_cast<double>(result.collected) / (run_ms / 1000.0);
  result.totals = runner.overlay_totals();
  result.metrics_json = out.str();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // Quick mode runs the single-thread leg only: every simulation-derived
  // quantity is thread-count independent (the full run asserts exactly
  // that), so the baseline-gated numbers are unchanged.
  const bool quick = analysis::bench_quick_mode(argc, argv);

  std::printf("=== Relay overlay: %zu-device mobile swarm "
              "(450 m field, 60 m radios, 6-12 m/s), %zu multi-hop "
              "collection rounds ===\n\n",
              kDevices, kRounds);

  analysis::BenchReport bench("relay_overlay");
  analysis::Table table({"threads", "build ms", "round ms",
                         "device-collections/s", "collected"});

  std::string reference_metrics;
  bool deterministic = true;
  BenchRun last;
  const std::vector<size_t> thread_counts =
      quick ? std::vector<size_t>{1} : std::vector<size_t>{1, 8};
  for (const size_t threads : thread_counts) {
    const BenchRun r = run_at(threads);
    if (reference_metrics.empty()) {
      reference_metrics = r.metrics_json;
    } else if (r.metrics_json != reference_metrics) {
      deterministic = false;
    }
    table.add_row({std::to_string(threads), analysis::fmt(r.build_ms, 1),
                   analysis::fmt(r.round_ms, 1),
                   analysis::fmt(r.collections_per_s, 0),
                   std::to_string(r.collected)});
    const std::string prefix = "t" + std::to_string(threads) + "_";
    bench.sample(prefix + "build_ms", r.build_ms);
    bench.sample(prefix + "round_wall_ms", r.round_ms);
    bench.sample(prefix + "collections_per_s", r.collections_per_s);
    last = r;
  }
  std::printf("%s\n", table.render().c_str());

  // Hop-count distribution: the §6 payoff made visible -- most of the
  // swarm is only reachable through relays.
  uint64_t reports = 0;
  for (const uint64_t n : last.totals.hops) reports += n;
  std::printf("hop-count distribution (%llu accepted reports):\n",
              static_cast<unsigned long long>(reports));
  for (size_t h = 0; h < last.totals.hops.size(); ++h) {
    if (last.totals.hops[h] == 0) continue;
    std::printf("  %2zu relays: %6llu (%.1f%%)\n", h,
                static_cast<unsigned long long>(last.totals.hops[h]),
                100.0 * static_cast<double>(last.totals.hops[h]) /
                    static_cast<double>(reports));
    bench.sample("hops_" + std::to_string(h),
                 static_cast<double>(last.totals.hops[h]));
  }
  uint64_t weighted = 0;
  for (size_t h = 0; h < last.totals.hops.size(); ++h) {
    weighted += last.totals.hops[h] * h;
  }
  const double mean_hops =
      reports == 0 ? 0.0
                   : static_cast<double>(weighted) /
                         static_cast<double>(reports);
  std::printf("\nmean relay hops: %.2f\n", mean_hops);
  std::printf("floods forwarded: %llu, reports relayed: %llu, dropped: "
              "%llu, route repairs: %llu\n\n",
              static_cast<unsigned long long>(last.totals.floods_forwarded),
              static_cast<unsigned long long>(last.totals.reports_relayed),
              static_cast<unsigned long long>(last.totals.reports_dropped),
              static_cast<unsigned long long>(last.totals.route_repairs));
  bench.sample("mean_relay_hops", mean_hops);
  bench.sample("reports_relayed", static_cast<double>(last.totals.reports_relayed));
  bench.sample("route_repairs", static_cast<double>(last.totals.route_repairs));

  std::printf("metrics byte-identical across thread counts: %s\n\n",
              deterministic ? "yes" : "NO (BUG)");
  if (!deterministic) return 1;

  // --- The 10k hierarchical-collection cell (runs in --quick too: its
  // quantities are simulation-derived, and the gate fails missing
  // quantities BY NAME). -------------------------------------------------
  std::printf("=== Hierarchical collection: %zu devices, 2 km field, one "
              "round, per-device vs cluster-head aggregated ===\n\n",
              kCellDevices);
  const CellRun noagg = run_cell(/*aggregated=*/false);
  const CellRun agg = run_cell(/*aggregated=*/true);
  const double compression =
      agg.tx_bytes_per_device == 0.0
          ? 0.0
          : noagg.tx_bytes_per_device / agg.tx_bytes_per_device;

  analysis::Table cell_table({"mode", "radio tx B/device", "collected",
                              "healthy", "clusters", "demand fetches",
                              "wall ms"});
  cell_table.add_row({"per-device", analysis::fmt(noagg.tx_bytes_per_device, 0),
                      std::to_string(noagg.collected),
                      std::to_string(noagg.healthy), "-", "-",
                      analysis::fmt(noagg.wall_ms, 0)});
  cell_table.add_row({"aggregated", analysis::fmt(agg.tx_bytes_per_device, 0),
                      std::to_string(agg.collected),
                      std::to_string(agg.healthy),
                      std::to_string(agg.clusters),
                      std::to_string(agg.demand_fetches),
                      analysis::fmt(agg.wall_ms, 0)});
  std::printf("%s\n", cell_table.render().c_str());
  std::printf("radio bytes/device compression: %.2fx\n\n", compression);

  bench.sample("noagg10k_radio_tx_bytes_per_device",
               noagg.tx_bytes_per_device);
  bench.sample("agg10k_radio_tx_bytes_per_device", agg.tx_bytes_per_device);
  bench.sample("agg10k_compression", compression);
  bench.sample("noagg10k_collected", static_cast<double>(noagg.collected));
  bench.sample("agg10k_collected", static_cast<double>(agg.collected));
  bench.sample("agg10k_healthy", static_cast<double>(agg.healthy));
  bench.sample("agg10k_clusters", static_cast<double>(agg.clusters));
  bench.sample("agg10k_aggregated_sessions",
               static_cast<double>(agg.aggregated_sessions));
  bench.sample("agg10k_demand_fetches",
               static_cast<double>(agg.demand_fetches));
  bench.sample("noagg10k_wall_ms", noagg.wall_ms);
  bench.sample("agg10k_wall_ms", agg.wall_ms);

  // The tentpole claim, self-gated: aggregation must cut radio bytes per
  // device >= 5x at equal-or-better coverage.
  if (compression < 5.0) {
    std::printf("FAIL: compression %.2fx < 5x\n", compression);
    return 1;
  }
  if (agg.collected < noagg.collected || agg.healthy < noagg.healthy) {
    std::printf("FAIL: aggregated coverage regressed (%zu/%zu collected, "
                "%zu/%zu healthy)\n",
                agg.collected, noagg.collected, agg.healthy, noagg.healthy);
    return 1;
  }

  const std::string path = bench.write();
  // A missing BENCH json would silently weaken the CI baseline gate.
  if (path.empty()) return 1;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
