// Perf baseline for heterogeneous provisioning: collection-round
// throughput over a mixed-architecture 1000-device fleet.
//
// One FleetPlan mixes 70% SMART+-on-MSP430 with 30% HYDRA-on-ARM and two
// T_M classes (5/20 min), then the ShardedFleetRunner drives 4 collection
// rounds at 1/2/8 threads. Reported per thread count: fleet build time
// (1000 heterogeneous stacks, HYDRA secure boot included), wall time per
// collection round, and end-to-end device-collections per second. The runs
// must stay byte-identical across thread counts -- the bench aborts
// otherwise, so the perf baseline can never drift away from the
// determinism guarantee. Emits BENCH_heterogeneous_fleet.json so later
// work on mixed fleets (per-arch batching, shard-parallel verification)
// has a baseline to beat.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/bench_report.h"
#include "analysis/table.h"
#include "obs/phase.h"
#include "scenario/metrics.h"
#include "scenario/sharded_runner.h"

using namespace erasmus;
using sim::Duration;

namespace {

constexpr size_t kDevices = 1000;
constexpr size_t kRounds = 4;

scenario::ShardedFleetConfig make_config(size_t threads) {
  swarm::DeviceSpec smart;
  smart.arch = hw::ArchKind::kSmartPlus;
  smart.profile = swarm::default_profile_for(smart.arch);
  smart.app_ram_bytes = 1024;
  smart.store_slots = 32;
  swarm::DeviceSpec hydra = smart;
  hydra.arch = hw::ArchKind::kHydra;
  hydra.profile = swarm::default_profile_for(hydra.arch);

  scenario::ShardedFleetConfig cfg;
  cfg.plan = swarm::FleetPlan(kDevices, /*key_seed=*/42);
  cfg.plan.add_mix(0.7, smart).add_mix(0.3, hydra);
  cfg.plan.cycle_tm({Duration::minutes(5), Duration::minutes(20)});
  cfg.plan.mobility.field_size = 400.0;
  cfg.plan.mobility.radio_range = 60.0;
  cfg.plan.mobility.speed_min = 1.0;
  cfg.plan.mobility.speed_max = 3.0;
  cfg.plan.mobility.seed = 42;
  cfg.threads = threads;
  cfg.rounds = kRounds;
  cfg.round_interval = Duration::minutes(30);
  cfg.k = 8;
  return cfg;
}

struct BenchRun {
  double build_ms = 0.0;
  double round_ms = 0.0;          // wall per collection round
  double collections_per_s = 0.0; // device-collections per wall second
  size_t collected = 0;           // device-collections (deterministic)
  size_t healthy = 0;             // verified-healthy judgements
  obs::PhaseProfiler::Report phases;  // shard work / barrier wait / drain
  std::string metrics_json;
};

BenchRun run_at(size_t threads) {
  const auto t0 = std::chrono::steady_clock::now();
  scenario::ShardedFleetConfig cfg = make_config(threads);
  scenario::ShardedFleetRunner runner(cfg);
  const auto t1 = std::chrono::steady_clock::now();

  std::ostringstream out;
  scenario::JsonSink sink(out);
  sink.begin_run("bench_heterogeneous_fleet");
  const auto rounds = runner.run(sink);
  sink.end_run();
  const auto t2 = std::chrono::steady_clock::now();

  size_t collected = 0;
  size_t healthy = 0;
  for (const auto& r : rounds) {
    collected += r.reachable;
    healthy += r.healthy;
  }

  BenchRun result;
  result.collected = collected;
  result.healthy = healthy;
  result.build_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double run_ms =
      std::chrono::duration<double, std::milli>(t2 - t1).count();
  result.round_ms = run_ms / static_cast<double>(kRounds);
  result.collections_per_s =
      run_ms == 0.0 ? 0.0
                    : static_cast<double>(collected) / (run_ms / 1000.0);
  result.phases = runner.phases().report();
  result.metrics_json = out.str();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // Quick mode runs the single-thread leg only; the simulation-derived
  // quantities (collected, healthy) are thread-count independent, so the
  // baseline-gated numbers are unchanged.
  const bool quick = analysis::bench_quick_mode(argc, argv);

  std::printf("=== Heterogeneous fleet: %zu devices "
              "(70%% SMART+/MSP430 + 30%% HYDRA/i.MX6, T_M 5m/20m), "
              "%zu collection rounds ===\n\n",
              kDevices, kRounds);

  analysis::BenchReport bench("heterogeneous_fleet");
  analysis::Table table({"threads", "build ms", "round ms",
                         "device-collections/s", "barrier-wait share"});

  std::string reference_metrics;
  bool deterministic = true;
  BenchRun last;
  const std::vector<size_t> thread_counts =
      quick ? std::vector<size_t>{1} : std::vector<size_t>{1, 2, 8};
  for (const size_t threads : thread_counts) {
    const BenchRun r = run_at(threads);
    if (reference_metrics.empty()) {
      reference_metrics = r.metrics_json;
    } else if (r.metrics_json != reference_metrics) {
      deterministic = false;
    }
    table.add_row({std::to_string(threads), analysis::fmt(r.build_ms, 1),
                   analysis::fmt(r.round_ms, 1),
                   analysis::fmt(r.collections_per_s, 0),
                   analysis::fmt(r.phases.barrier_wait_share, 3)});
    const std::string prefix = "t" + std::to_string(threads) + "_";
    bench.sample(prefix + "build_ms", r.build_ms);
    bench.sample(prefix + "round_wall_ms", r.round_ms);
    bench.sample(prefix + "collections_per_s", r.collections_per_s);
    // Phase split of the runner's wall clock: where worker thread-time
    // goes (advancing shards vs parked at barriers vs idled by the
    // single-threaded coordinator drain). Informational, never gated --
    // this is the visibility the coordinator-bottleneck work needs.
    bench.sample(prefix + "shard_work_ms", r.phases.shard_work_ms);
    bench.sample(prefix + "barrier_wait_ms", r.phases.barrier_wait_ms);
    bench.sample(prefix + "coord_drain_ms", r.phases.coordinator_ms);
    last = r;
  }
  bench.sample("collected", static_cast<double>(last.collected));
  bench.sample("healthy", static_cast<double>(last.healthy));
  // Headline: fraction of available worker thread-time NOT spent advancing
  // shards, at the widest thread count this run exercised.
  bench.sample("barrier_wait_share", last.phases.barrier_wait_share);
  std::printf("%s\n", table.render().c_str());
  std::printf("metrics byte-identical across thread counts: %s\n\n",
              deterministic ? "yes" : "NO (BUG)");
  if (!deterministic) return 1;

  const std::string path = bench.write();
  // A missing BENCH json would silently weaken the CI baseline gate.
  if (path.empty()) return 1;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
