// Perf baseline for the unified verifier-side AttestationService: one
// collection round over a 1000-device fleet, driven through the
// NetworkTransport on a lossy link (10 ms latency, 10% loss) so the
// session state machine does real timeout/retry work.
//
// Sweeps the bounded in-flight window to expose the dispatch-batching
// trade: a small window serialises the round (virtual time grows), a large
// one floods the link. Emits BENCH_attestation_service.json so future
// batching work (request coalescing, adaptive windows, shard-parallel
// dispatch) has a baseline to beat.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/bench_report.h"
#include "analysis/table.h"
#include "attest/directory.h"
#include "attest/service.h"
#include "attest/transport.h"
#include "swarm/fleet.h"

using namespace erasmus;
using sim::Duration;
using sim::Time;

namespace {

constexpr size_t kDevices = 1000;
constexpr uint32_t kRecordsPerDevice = 4;

struct RoundResult {
  double wall_ms = 0.0;
  double virtual_s = 0.0;
  attest::AttestationService::Stats stats;
};

RoundResult run_round(const attest::WindowConfig& window) {
  sim::EventQueue queue;
  net::Network network(queue, Duration::millis(10), /*loss=*/0.10,
                       /*seed=*/42);
  const net::NodeId verifier_node = network.add_node({});

  swarm::DeviceSpec base;
  base.app_ram_bytes = 1024;
  base.store_slots = 16;
  base.tm = Duration::minutes(10);
  const swarm::FleetPlan plan =
      swarm::FleetPlan::uniform(kDevices, /*key_seed=*/42, base);
  const std::vector<swarm::DeviceSpec> specs = plan.expand();

  std::vector<swarm::DeviceStack> stacks;
  attest::DeviceDirectory directory;
  stacks.reserve(kDevices);
  for (swarm::DeviceId id = 0; id < kDevices; ++id) {
    stacks.push_back(swarm::build_device_stack(queue, specs[id]));
    const net::NodeId node = network.add_node({});
    stacks[id].prover->bind(network, node);
    directory.add(node, swarm::build_device_record(specs[id], stacks[id]));
    stacks[id].prover->start(
        swarm::stagger_offset(specs[id].tm, id, kDevices));
  }

  // Accumulate a few self-measurements per device before collecting.
  queue.run_until(Time::zero() + Duration::minutes(45));

  attest::NetworkTransport transport(network, verifier_node);
  attest::ServiceConfig sc;
  sc.k = kRecordsPerDevice;
  sc.response_timeout = Duration::millis(100);
  sc.max_retries = 3;
  sc.window = window;
  sc.keep_audit = false;
  attest::AttestationService service(queue, transport, directory, sc);

  Time last_completion = Time::zero();
  service.set_observer(
      [&](const attest::AttestationService::SessionOutcome& o) {
        last_completion = o.at;
      });

  std::vector<attest::DeviceId> targets(kDevices);
  for (attest::DeviceId id = 0; id < kDevices; ++id) targets[id] = id;

  const Time round_start = queue.now();
  const auto wall_start = std::chrono::steady_clock::now();
  service.collect_now(targets);
  queue.run_until(round_start + Duration::minutes(10));
  const auto wall_end = std::chrono::steady_clock::now();

  RoundResult result;
  result.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();
  result.virtual_s = (last_completion - round_start).to_seconds();
  result.stats = service.stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // Already sub-minute at full size: --quick is accepted (CI runs every
  // bench uniformly) and by contract never changes the simulated
  // configuration, so all emitted quantities keep their full-mode values.
  (void)analysis::bench_quick_mode(argc, argv);

  std::printf("=== AttestationService: 1000-device collection round ===\n");
  std::printf("(NetworkTransport, 10 ms latency, 10%% loss, k=%u, "
              "3 retries)\n\n",
              kRecordsPerDevice);

  analysis::BenchReport bench("attestation_service");
  analysis::Table table({"window", "wall ms", "virtual s", "responses",
                         "retries", "unreachable", "peak in-flight"});

  const auto emit = [&](const std::string& label, const RoundResult& r) {
    table.add_row({label, analysis::fmt(r.wall_ms, 1),
                   analysis::fmt(r.virtual_s, 2),
                   std::to_string(r.stats.responses),
                   std::to_string(r.stats.retries),
                   std::to_string(r.stats.unreachable_sessions),
                   std::to_string(r.stats.max_in_flight_seen)});
    const std::string prefix = "window_" + label + "_";
    bench.sample(prefix + "wall_ms", r.wall_ms);
    bench.sample(prefix + "virtual_round_s", r.virtual_s);
    bench.sample(prefix + "responses",
                 static_cast<double>(r.stats.responses));
    bench.sample(prefix + "retries", static_cast<double>(r.stats.retries));
    bench.sample(prefix + "unreachable",
                 static_cast<double>(r.stats.unreachable_sessions));
  };
  for (const size_t window : {32ul, 128ul, 1024ul}) {
    attest::WindowConfig wc;
    wc.fixed = window;
    emit(std::to_string(window), run_round(wc));
  }
  // The AIMD controller on the same lossy link: discovers a workable
  // window instead of having one guessed for it.
  attest::WindowConfig adaptive;
  adaptive.adaptive = true;
  adaptive.ceiling = kDevices;
  emit("adaptive", run_round(adaptive));
  std::printf("%s\n", table.render().c_str());
  std::printf("All %zu sessions resolve each run; loss is absorbed by "
              "retries, stragglers land in the audit trail as "
              "unreachable.\n\n",
              kDevices);

  const std::string path = bench.write();
  // A missing BENCH json would silently weaken the CI baseline gate.
  if (path.empty()) return 1;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
