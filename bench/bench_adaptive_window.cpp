// Fixed vs adaptive in-flight windows for multi-hop swarm collection,
// under three network regimes.
//
// A 300-device mobile swarm is collected through the overlay for 3 rounds
// per configuration:
//
//  * fixed64        -- the pre-adaptive default window (64 sessions in
//                      flight; every dispatch batch is one scoped flood).
//  * adaptive       -- the AIMD WindowController (slow start, additive
//                      growth, multiplicative backoff on timeouts and on
//                      relay-queue congestion reports).
//  * adaptive+scoped -- adaptive window plus scoped retries (a retry for
//                      a device with a fresh recorded path unicasts down
//                      that path instead of re-flooding the field).
//
// Regimes: clean (no loss), lossy (10% per-hop loss -- the §6 radio), and
// congested (shallow relay queues + slow serialization, where the
// piggybacked queue-occupancy signal must damp the window).
//
// Headline quantities per (regime, config): device-collections (QoA),
// relay flood transmissions (duplicate-flood work), radio bytes offered,
// store-and-forward drops, and the final window. The bench FAILS (exit 1)
// unless, in the lossy regime, adaptive collection control (adaptive
// window + scoped retries) collects at least as much as fixed64 with
// fewer relay flood transmissions. Emits BENCH_adaptive_window.json.
//
// All quantities except wall-clock are deterministic for the fixed seed,
// so CI gates them against the committed baseline (tools/check_bench.py).
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/bench_report.h"
#include "analysis/table.h"
#include "scenario/metrics.h"
#include "scenario/sharded_runner.h"

using namespace erasmus;
using sim::Duration;

namespace {

constexpr size_t kDevices = 300;
constexpr size_t kRounds = 3;

struct Regime {
  const char* name;
  double loss;
  size_t queue_depth;
  Duration forward_spacing;
};

struct WindowCase {
  const char* name;
  scenario::WindowSpec window;
  bool scoped;
};

scenario::ShardedFleetConfig make_config(const Regime& regime,
                                         const WindowCase& wcase) {
  swarm::DeviceSpec base;
  base.arch = hw::ArchKind::kSmartPlus;
  base.profile = swarm::default_profile_for(base.arch);
  base.app_ram_bytes = 1024;
  base.store_slots = 32;

  scenario::ShardedFleetConfig cfg;
  cfg.plan = swarm::FleetPlan::uniform(kDevices, /*key_seed=*/42, base);
  // ~40 neighbours average, diameter ~6 hops: deep enough that relaying
  // carries most of the fleet, dense enough that one flood covers it.
  cfg.plan.mobility.field_size = 260.0;
  cfg.plan.mobility.radio_range = 60.0;
  cfg.plan.mobility.speed_min = 6.0;
  cfg.plan.mobility.speed_max = 12.0;
  cfg.plan.mobility.seed = 42;
  cfg.threads = 8;
  cfg.rounds = kRounds;
  cfg.round_interval = Duration::minutes(30);
  cfg.k = 8;
  cfg.backend = scenario::CollectionBackend::kOverlay;
  cfg.overlay.ttl = 12;
  cfg.overlay.net_loss = regime.loss;
  cfg.overlay.queue_depth = regime.queue_depth;
  cfg.overlay.forward_spacing = regime.forward_spacing;
  cfg.overlay.response_timeout = Duration::seconds(2);
  cfg.overlay.max_retries = 2;
  cfg.overlay.collect_deadline = Duration::seconds(30);
  cfg.overlay.scoped_retries = wcase.scoped;
  cfg.window = wcase.window;
  return cfg;
}

struct CaseResult {
  size_t collected = 0;     // device-collections over all rounds (QoA)
  uint64_t flood_tx = 0;    // relay flood transmissions (forwarded floods)
  uint64_t bytes = 0;       // radio payload bytes offered
  uint64_t drops = 0;       // store-and-forward overflow drops
  uint64_t scoped = 0;      // retries that rode a cached route
  uint64_t window_final = 0;
  uint64_t loss_backoffs = 0;
  uint64_t congestion_backoffs = 0;
};

CaseResult run_case(const Regime& regime, const WindowCase& wcase) {
  scenario::ShardedFleetRunner runner(make_config(regime, wcase));
  scenario::NullSink sink;
  const auto rounds = runner.run(sink);

  CaseResult r;
  for (const auto& round : rounds) r.collected += round.reachable;
  const auto totals = runner.overlay_totals();
  r.flood_tx = totals.floods_forwarded;
  r.drops = totals.reports_dropped;
  r.scoped = totals.scoped_sent;
  r.bytes = runner.overlay_network()->stats().bytes_sent;
  r.window_final = runner.service().round_stats().window_final;
  r.loss_backoffs = runner.service().stats().loss_backoffs;
  r.congestion_backoffs = runner.service().stats().congestion_backoffs;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  // The simulated configuration is identical in quick mode: every
  // gated quantity is deterministic either way, quick just labels the
  // CI invocation.
  (void)analysis::bench_quick_mode(argc, argv);

  std::printf("=== Adaptive in-flight window: %zu-device swarm, %zu rounds "
              "per case ===\n\n",
              kDevices, kRounds);

  const Regime regimes[] = {
      {"clean", 0.0, 256, Duration::millis(1)},
      {"lossy", 0.10, 256, Duration::millis(1)},
      {"congested", 0.02, 32, Duration::millis(4)},
  };
  scenario::WindowSpec fixed64;
  fixed64.mode = scenario::WindowSpec::Mode::kFixed;
  fixed64.fixed = 64;
  scenario::WindowSpec adaptive;
  adaptive.mode = scenario::WindowSpec::Mode::kAdaptive;
  const WindowCase cases[] = {
      {"fixed64", fixed64, false},
      {"adaptive", adaptive, false},
      {"adaptive_scoped", adaptive, true},
  };

  analysis::BenchReport bench("adaptive_window");
  bool gate_ok = true;

  for (const Regime& regime : regimes) {
    analysis::Table table({"config", "collected", "flood tx", "radio MB",
                           "drops", "scoped", "window end", "loss bk",
                           "cong bk"});
    CaseResult fixed_result;
    for (const WindowCase& wcase : cases) {
      const CaseResult r = run_case(regime, wcase);
      if (std::string(wcase.name) == "fixed64") fixed_result = r;
      table.add_row({wcase.name, std::to_string(r.collected),
                     std::to_string(r.flood_tx),
                     analysis::fmt(static_cast<double>(r.bytes) / 1e6, 1),
                     std::to_string(r.drops), std::to_string(r.scoped),
                     std::to_string(r.window_final),
                     std::to_string(r.loss_backoffs),
                     std::to_string(r.congestion_backoffs)});
      const std::string prefix =
          std::string(regime.name) + "_" + wcase.name + "_";
      bench.sample(prefix + "collected", static_cast<double>(r.collected));
      bench.sample(prefix + "flood_tx", static_cast<double>(r.flood_tx));
      bench.sample(prefix + "radio_bytes", static_cast<double>(r.bytes));
      bench.sample(prefix + "drops", static_cast<double>(r.drops));
      bench.sample(prefix + "window_final",
                   static_cast<double>(r.window_final));

      if (std::string(wcase.name) == "adaptive_scoped" &&
          std::string(regime.name) == "lossy") {
        if (r.collected < fixed_result.collected) {
          std::printf("GATE: adaptive+scoped QoA %zu < fixed64 %zu in "
                      "lossy regime\n",
                      r.collected, fixed_result.collected);
          gate_ok = false;
        }
        if (r.flood_tx >= fixed_result.flood_tx) {
          std::printf("GATE: adaptive+scoped flood tx %llu >= fixed64 "
                      "%llu in lossy regime\n",
                      static_cast<unsigned long long>(r.flood_tx),
                      static_cast<unsigned long long>(fixed_result.flood_tx));
          gate_ok = false;
        }
      }
    }
    std::printf("--- %s (loss %.0f%%, queue depth %zu) ---\n%s\n",
                regime.name, regime.loss * 100.0, regime.queue_depth,
                table.render().c_str());
  }

  std::printf("adaptive+scoped >= fixed64 QoA with fewer flood "
              "transmissions (lossy): %s\n\n",
              gate_ok ? "yes" : "NO (GATE FAILED)");
  if (!gate_ok) return 1;

  const std::string path = bench.write();
  // A missing BENCH json would silently weaken the CI baseline gate.
  if (path.empty()) return 1;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
