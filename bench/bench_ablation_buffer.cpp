// Ablation for §3.2 (rolling measurement storage): measurement-loss rate as
// a function of buffer capacity n and collection period T_C.
//
// The paper's safety condition is T_C <= n * T_M: collect at least as fast
// as the window wraps, or uncollected measurements are overwritten. This
// bench sweeps both sides of that boundary with a real prover+verifier loop
// and reports the fraction of measurements that never reached the verifier.
#include <cstdio>
#include <set>

#include "analysis/bench_report.h"
#include "analysis/table.h"
#include "attest/prover.h"
#include "attest/qoa.h"
#include "attest/directory.h"

using namespace erasmus;
using sim::Duration;
using sim::Time;

namespace {

constexpr size_t kRecord = 1 + 8 + 32 + 32;

struct LossResult {
  uint64_t produced = 0;
  uint64_t collected_unique = 0;

  double loss_rate() const {
    return produced == 0
               ? 0.0
               : 1.0 - static_cast<double>(collected_unique) /
                           static_cast<double>(produced);
  }
};

LossResult run(size_t n_slots, Duration tm, Duration tc, Duration horizon) {
  const Bytes key = bytes_of("buffer-ablation-key-0123456789ab");
  sim::EventQueue queue;
  hw::SmartPlusArch arch(key, 4096, 1024, n_slots * kRecord);
  attest::Prover prover(queue, arch, arch.app_region(), arch.store_region(),
                        std::make_unique<attest::RegularScheduler>(tm),
                        attest::ProverConfig{});
  attest::DeviceRecord record;
  record.key = key;
  record.set_golden(crypto::Hash::digest(
      crypto::HashAlgo::kSha256,
      arch.memory().view(arch.app_region(), true)));

  prover.start();
  std::set<uint64_t> unique_timestamps;
  const size_t k = attest::QoAParams{tm, tc}.measurements_per_collection();
  for (Time at = Time::zero() + tc; at <= Time::zero() + horizon;
       at = at + tc) {
    queue.schedule_at(at, [&] {
      const auto res = prover.handle_collect(
          attest::CollectRequest{static_cast<uint32_t>(k)});
      const auto report =
          attest::verify_collection(record, res.response, queue.now());
      for (const auto& v : report.verdicts) {
        if (v.status != attest::MeasurementStatus::kBadMac) {
          unique_timestamps.insert(v.m.timestamp);
        }
      }
    });
  }
  queue.run_until(Time::zero() + horizon);

  LossResult result;
  result.produced = prover.stats().measurements;
  result.collected_unique = unique_timestamps.size();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // Already sub-minute at full size: --quick is accepted (CI runs every
  // bench uniformly) and by contract never changes the simulated
  // configuration, so all emitted quantities keep their full-mode values.
  (void)analysis::bench_quick_mode(argc, argv);

  const Duration tm = Duration::minutes(10);
  const Duration horizon = Duration::hours(48);

  std::printf("=== Ablation (Sect. 3.2): rolling buffer sizing ===\n");
  std::printf("T_M = 10 min, 48 h horizon. Safety condition: T_C <= n*T_M\n"
              "(k = ceil(T_C/T_M) collected per round).\n\n");

  analysis::BenchReport bench("ablation_buffer");
  analysis::Table table({"n (slots)", "T_C (min)", "n*T_M (min)", "safe?",
                         "produced", "collected", "loss rate"});
  for (const size_t n : {4, 6, 8, 12}) {
    for (const uint64_t tc_min : {30ull, 60ull, 90ull, 120ull}) {
      const Duration tc = Duration::minutes(tc_min);
      const attest::QoAParams qoa{tm, tc};
      const auto result = run(n, tm, tc, horizon);
      bench.sample(qoa.buffer_safe(n) ? "loss_rate_safe" : "loss_rate_unsafe",
                   result.loss_rate());
      table.add_row({std::to_string(n), std::to_string(tc_min),
                     std::to_string(n * 10), qoa.buffer_safe(n) ? "yes" : "NO",
                     std::to_string(result.produced),
                     std::to_string(result.collected_unique),
                     analysis::fmt(result.loss_rate(), 3)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected shape: loss ~0 whenever T_C <= n*T_M, growing once "
              "the window wraps faster than the verifier collects.\n\n");
  // A missing BENCH json would silently weaken the CI baseline gate.
  if (bench.write().empty()) return 1;
  return 0;
}
