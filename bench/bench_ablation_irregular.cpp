// Ablation for §3.5 (irregular intervals): detection probability of mobile
// malware vs. dwell time, under three schedule/adversary pairings:
//
//   1. regular schedule, random-phase malware      (closed form: d / T_M)
//   2. regular schedule, schedule-AWARE malware    (0 until d >= T_M)
//   3. irregular schedule U[L,U], schedule-aware   ((d-L)/(U-L))
//
// Each point is reported three ways: closed form, Monte-Carlo estimator,
// and a full-device simulation (real prover + ScheduleAwareMalware +
// verifier collections), demonstrating all three layers agree.
#include <cmath>
#include <cstdio>

#include "analysis/bench_report.h"
#include "analysis/detection.h"
#include "analysis/table.h"
#include "attest/prover.h"
#include "attest/qoa.h"
#include "attest/verifier.h"
#include "malware/malware.h"

using namespace erasmus;
using sim::Duration;
using sim::Time;

namespace {

constexpr size_t kRecord = 1 + 8 + 32 + 32;

Bytes key() { return bytes_of("ablation-device-key-0123456789ab"); }

// Full-device simulation: schedule-aware malware against the given
// scheduler; returns the fraction of dwell cycles captured by >= 1
// measurement.
double simulate_schedule_aware(std::unique_ptr<attest::Scheduler> sched,
                               Duration dwell, Duration horizon) {
  sim::EventQueue queue;
  hw::SmartPlusArch arch(key(), 4096, 1024, 64 * kRecord);
  attest::Prover prover(queue, arch, arch.app_region(), arch.store_region(),
                        std::move(sched), attest::ProverConfig{});
  prover.start();
  malware::ScheduleAwareMalware malware(queue, prover, dwell);
  malware.activate(Time::zero(), Time::zero() + horizon);
  queue.run_until(Time::zero() + horizon);
  const auto& history = malware.history();
  if (history.empty()) return 0.0;
  size_t measured = 0;
  for (const auto& rec : history) measured += rec.was_measured();
  return static_cast<double>(measured) / static_cast<double>(history.size());
}

}  // namespace

int main(int argc, char** argv) {
  // Already sub-minute at full size: --quick is accepted (CI runs every
  // bench uniformly) and by contract never changes the simulated
  // configuration, so all emitted quantities keep their full-mode values.
  (void)analysis::bench_quick_mode(argc, argv);

  const Duration tm = Duration::minutes(10);
  const Duration lo = Duration::minutes(5);
  const Duration hi = Duration::minutes(15);
  const size_t kTrials = 200'000;

  std::printf("=== Ablation (Sect. 3.5): regular vs irregular scheduling ===\n");
  std::printf("T_M = 10 min; irregular intervals U[5 min, 15 min) (same "
              "mean).\n\n");

  analysis::BenchReport bench("ablation_irregular");
  analysis::Series series(
      "Dwell (min)",
      {"reg/random-phase", "reg/schedule-aware", "irreg/schedule-aware",
       "irreg/aware MC", "irreg/aware device-sim"});
  for (uint64_t dwell_min : {2ull, 4ull, 6ull, 8ull, 10ull, 12ull, 14ull}) {
    const Duration dwell = Duration::minutes(dwell_min);
    const double analytic =
        attest::detection_prob_schedule_aware_irregular(dwell, lo, hi);
    const double mc = analysis::mc_detection_schedule_aware_irregular(
        dwell, lo, hi, kTrials, /*seed=*/dwell_min);
    const double device_sim = simulate_schedule_aware(
        std::make_unique<attest::IrregularScheduler>(key(), lo, hi), dwell,
        Duration::hours(24 * 14));
    bench.sample("irregular_aware_analytic", analytic);
    bench.sample("irregular_aware_mc", mc);
    bench.sample("irregular_aware_device_sim", device_sim);
    bench.sample("mc_vs_analytic_abs_err", std::abs(mc - analytic));
    series.add_point(
        static_cast<double>(dwell_min),
        {attest::detection_prob_regular(dwell, tm),
         attest::detection_prob_schedule_aware_regular(dwell, tm), analytic,
         mc, device_sim});
  }
  std::printf("%s\n", series.render().c_str());

  std::printf("Headline: schedule-aware malware with dwell < T_M dodges a "
              "regular schedule forever\n");
  const double regular_sim = simulate_schedule_aware(
      std::make_unique<attest::RegularScheduler>(tm), Duration::minutes(8),
      Duration::hours(24 * 14));
  const double irregular_sim = simulate_schedule_aware(
      std::make_unique<attest::IrregularScheduler>(key(), lo, hi),
      Duration::minutes(8), Duration::hours(24 * 14));
  std::printf("  device-sim capture rate, dwell 8 min: regular %.3f vs "
              "irregular %.3f (analytic 0.0 vs 0.3)\n\n",
              regular_sim, irregular_sim);
  bench.sample("regular_aware_device_sim_8min", regular_sim);
  bench.sample("irregular_aware_device_sim_8min", irregular_sim);
  // A missing BENCH json would silently weaken the CI baseline gate.
  if (bench.write().empty()) return 1;
  return 0;
}
