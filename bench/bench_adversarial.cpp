// Adversarial detection: the paper's T_M-vs-dwell claim under attack.
//
// A 48-device swarm runs a measurement-aware roaming-malware campaign
// (dwell 12m, 6 chains) while T_M sweeps from 30m down to 4m. The paper's
// claim (§3.5, §7): once T_M drops below the malware's useful-work dwell,
// an aware adversary runs out of evasion slack and detection probability
// climbs toward 1. The bench FAILS (exit 1) unless the measured curve is
// monotonically non-decreasing as T_M shrinks, stays low while T_M is
// comfortably above the dwell, and saturates once T_M is well below it.
//
// Two extra panels commit the rest of the adversarial suite to the
// baseline: the same infected campaign collected direct vs overlay vs
// overlay+aggregate (detection must survive the collection backend), and
// the relay-layer attackers (drop/corrupt/sybil) with their split
// counters -- adversarial drops must never masquerade as congestion.
//
// Everything is deterministic for the fixed seed at any thread count, so
// CI gates the quantities against the committed baseline via
// tools/check_bench.py.
#include <cstdio>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "analysis/bench_report.h"
#include "analysis/table.h"
#include "scenario/metrics.h"
#include "scenario/sharded_runner.h"

using namespace erasmus;
using sim::Duration;

namespace {

constexpr size_t kDevices = 48;
constexpr size_t kRounds = 4;
constexpr size_t kChains = 6;
const Duration kDwell = Duration::minutes(12);
const Duration kInterval = Duration::minutes(30);

scenario::ShardedFleetConfig base_config(Duration tm) {
  swarm::DeviceSpec base;
  base.arch = hw::ArchKind::kSmartPlus;
  base.profile = swarm::default_profile_for(base.arch);
  base.tm = tm;
  base.app_ram_bytes = 2 * 1024;
  base.store_slots = 64;

  scenario::ShardedFleetConfig cfg;
  cfg.plan = swarm::FleetPlan::uniform(kDevices, /*key_seed=*/42, base);
  cfg.plan.staggered = true;
  cfg.plan.mobility.field_size = 300.0;
  cfg.plan.mobility.radio_range = 60.0;
  cfg.plan.mobility.seed = 42;
  cfg.threads = 8;
  cfg.rounds = kRounds;
  cfg.round_interval = kInterval;
  cfg.k = 8;

  cfg.adversary.mode = adversary::Mode::kRoaming;
  cfg.adversary.migration = adversary::Migration::kAware;
  cfg.adversary.dwell = kDwell;
  cfg.adversary.chains = kChains;
  cfg.adversary.seed = 42;
  return cfg;
}

void use_overlay(scenario::ShardedFleetConfig& cfg, bool aggregate) {
  cfg.backend = scenario::CollectionBackend::kOverlay;
  cfg.overlay.ttl = 8;
  cfg.overlay.queue_depth = 16;
  cfg.overlay.forward_spacing = Duration::millis(1);
  cfg.overlay.net_latency = Duration::millis(2);
  cfg.overlay.collect_deadline = Duration::seconds(30);
  cfg.overlay.response_timeout = Duration::seconds(10);
  cfg.overlay.max_retries = 1;
  if (aggregate) {
    cfg.overlay.aggregation.enabled = true;
    cfg.overlay.aggregation.election.mode = aggregate::ElectionMode::kDepthBand;
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Deterministic quantities; quick mode just labels the CI invocation.
  (void)analysis::bench_quick_mode(argc, argv);

  std::printf("=== Adversarial detection: aware roaming malware "
              "(dwell %.0fm, %zu chains) vs T_M, %zu devices ===\n\n",
              kDwell.to_seconds() / 60.0, kChains, kDevices);

  analysis::BenchReport bench("adversarial");
  bool gate_ok = true;

  // --- Panel 1: detection probability vs T_M (the paper's curve) ---
  const Duration tms[] = {Duration::minutes(30), Duration::minutes(20),
                          Duration::minutes(15), Duration::minutes(10),
                          Duration::minutes(6), Duration::minutes(4)};
  analysis::Table curve({"T_M", "detected", "p_detect", "latency min",
                         "migrations", "evasions", "captures"});
  std::vector<double> probs;
  double latency_below_dwell = 0.0;
  size_t latency_points = 0;
  for (const Duration tm : tms) {
    scenario::ShardedFleetRunner runner(base_config(tm));
    scenario::NullSink sink;
    runner.run(sink);
    const adversary::Engine& e = *runner.adversary_engine();
    const double p = e.detection_probability();
    probs.push_back(p);
    const double latency_min =
        e.mean_detection_latency().to_seconds() / 60.0;
    if (e.detected_chains() > 0 && tm < kDwell) {
      latency_below_dwell += latency_min;
      ++latency_points;
    }
    curve.add_row({analysis::fmt(tm.to_seconds() / 60.0, 0) + "m",
                   std::to_string(e.detected_chains()), analysis::fmt(p, 2),
                   analysis::fmt(latency_min, 1),
                   std::to_string(e.migrations_total()),
                   std::to_string(e.evasions_total()),
                   std::to_string(e.captures_total())});
    const std::string tag =
        "tm" + std::to_string(static_cast<int>(tm.to_seconds() / 60));
    bench.sample("detect_prob_" + tag, p);
    bench.sample("migrations_" + tag, static_cast<double>(e.migrations_total()));
  }
  std::printf("%s\n", curve.render().c_str());

  // Gate: the curve must be non-decreasing as T_M shrinks, low while the
  // adversary has slack (T_M well above dwell) and saturated once it has
  // none (T_M well below dwell).
  for (size_t i = 1; i < probs.size(); ++i) {
    if (probs[i] + 1e-9 < probs[i - 1]) {
      std::printf("GATE: p_detect fell from %.2f to %.2f as T_M shrank\n",
                  probs[i - 1], probs[i]);
      gate_ok = false;
    }
  }
  if (probs.front() > 0.5) {
    std::printf("GATE: p_detect %.2f at T_M=30m -- aware adversary should "
                "evade a sparse schedule\n",
                probs.front());
    gate_ok = false;
  }
  if (probs.back() < 0.9) {
    std::printf("GATE: p_detect %.2f at T_M=4m -- the curve must saturate "
                "below the dwell\n",
                probs.back());
    gate_ok = false;
  }
  // Gated latency quantity (minutes; "_min" is a unit here, and the name
  // avoids the reported-only *_ms pattern on purpose).
  bench.sample("detection_latency_min",
               latency_points > 0 ? latency_below_dwell / latency_points
                                  : 0.0);

  // --- Panel 2: same campaign, three collection backends (T_M = 6m) ---
  analysis::Table backends({"backend", "reachable", "p_detect",
                            "latency min"});
  const char* names[] = {"direct", "overlay", "overlay_agg"};
  for (int b = 0; b < 3; ++b) {
    scenario::ShardedFleetConfig cfg = base_config(Duration::minutes(6));
    if (b > 0) use_overlay(cfg, b == 2);
    scenario::ShardedFleetRunner runner(cfg);
    scenario::NullSink sink;
    const auto rounds = runner.run(sink);
    size_t reachable = 0;
    for (const auto& r : rounds) reachable += r.reachable;
    const adversary::Engine& e = *runner.adversary_engine();
    backends.add_row({names[b], std::to_string(reachable),
                      analysis::fmt(e.detection_probability(), 2),
                      analysis::fmt(
                          e.mean_detection_latency().to_seconds() / 60.0,
                          1)});
    bench.sample(std::string("detect_prob_") + names[b],
                 e.detection_probability());
    bench.sample(std::string("reachable_") + names[b],
                 static_cast<double>(reachable));
  }
  std::printf("%s\n", backends.render().c_str());

  // --- Panel 3: relay-layer attackers and their split counters ---
  analysis::Table relay({"attack", "dropped_adv", "corrupted_adv",
                         "sybil_injected", "spoofed_rejected",
                         "congestion_drops"});
  struct RelayCase {
    const char* name;
    adversary::Mode mode;
    bool corrupt;
  };
  const RelayCase relay_cases[] = {
      {"relay_drop", adversary::Mode::kRelay, false},
      {"relay_corrupt", adversary::Mode::kRelay, true},
      {"sybil", adversary::Mode::kSybil, false},
  };
  for (const RelayCase& rc : relay_cases) {
    scenario::ShardedFleetConfig cfg = base_config(Duration::minutes(6));
    use_overlay(cfg, false);
    cfg.adversary.mode = rc.mode;
    cfg.adversary.corrupt_frames = rc.corrupt;
    cfg.adversary.compromised_fraction = 0.15;
    scenario::ShardedFleetRunner runner(cfg);
    scenario::NullSink sink;
    runner.run(sink);
    const auto totals = runner.overlay_totals();
    relay.add_row({rc.name, std::to_string(totals.dropped_adversarial),
                   std::to_string(totals.corrupted_adversarial),
                   std::to_string(totals.sybil_injected),
                   std::to_string(totals.spoofed_rejected),
                   std::to_string(totals.reports_dropped)});
    const std::string prefix = std::string(rc.name) + "_";
    bench.sample(prefix + "dropped_adv",
                 static_cast<double>(totals.dropped_adversarial));
    bench.sample(prefix + "corrupted_adv",
                 static_cast<double>(totals.corrupted_adversarial));
    bench.sample(prefix + "sybil_injected",
                 static_cast<double>(totals.sybil_injected));
    bench.sample(prefix + "spoofed_rejected",
                 static_cast<double>(totals.spoofed_rejected));
  }
  std::printf("%s\n", relay.render().c_str());

  std::printf("T_M-vs-dwell gate: %s\n\n",
              gate_ok ? "ok" : "FAILED");
  if (!gate_ok) return 1;

  const std::string path = bench.write();
  // A missing BENCH json would silently weaken the CI baseline gate.
  if (path.empty()) return 1;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
