// Host-side crypto microbenchmarks (google-benchmark).
//
// These do not reproduce a paper artifact directly; they measure the real
// primitives behind every simulated measurement and give the cycles/byte
// ratios that the DeviceProfile cost model scales from (the BLAKE2s-vs-
// HMAC-SHA256 ordering in Figs. 6/8 should reproduce on the host too).
#include <benchmark/benchmark.h>

#include "crypto/blake2s.h"
#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/hmac_drbg.h"
#include "crypto/mac.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

using namespace erasmus;
using namespace erasmus::crypto;

namespace {

Bytes make_buffer(size_t n) {
  Bytes buf(n);
  uint32_t x = 0x1234567;
  for (auto& b : buf) {
    x = x * 1664525u + 1013904223u;
    b = static_cast<uint8_t>(x >> 24);
  }
  return buf;
}

const Bytes kKey = bytes_of("bench-key-0123456789abcdef012345");

void BM_Sha256(benchmark::State& state) {
  const Bytes buf = make_buffer(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hash::digest(HashAlgo::kSha256, buf));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_Sha1(benchmark::State& state) {
  const Bytes buf = make_buffer(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hash::digest(HashAlgo::kSha1, buf));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64 * 1024);

void BM_Blake2s(benchmark::State& state) {
  const Bytes buf = make_buffer(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hash::digest(HashAlgo::kBlake2s, buf));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Blake2s)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_MacCompute(benchmark::State& state) {
  const auto algo = static_cast<MacAlgo>(state.range(0));
  const Bytes buf = make_buffer(static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Mac::compute(algo, kKey, buf));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(1));
  state.SetLabel(to_string(algo));
}
BENCHMARK(BM_MacCompute)
    ->Args({static_cast<int>(MacAlgo::kHmacSha1), 64 * 1024})
    ->Args({static_cast<int>(MacAlgo::kHmacSha256), 64 * 1024})
    ->Args({static_cast<int>(MacAlgo::kKeyedBlake2s), 64 * 1024});

// The full measurement primitive: H(mem) then MAC(t, digest) -- the unit of
// work Figs. 6/8 sweep.
void BM_FullMeasurement(benchmark::State& state) {
  const auto algo = static_cast<MacAlgo>(state.range(0));
  const Bytes mem = make_buffer(static_cast<size_t>(state.range(1)));
  uint64_t t = 0;
  for (auto _ : state) {
    const Bytes digest = Hash::digest(
        algo == MacAlgo::kKeyedBlake2s ? HashAlgo::kBlake2s
                                       : HashAlgo::kSha256,
        mem);
    Bytes input(8 + digest.size());
    for (int i = 0; i < 8; ++i) input[i] = static_cast<uint8_t>(t >> (8 * i));
    std::copy(digest.begin(), digest.end(), input.begin() + 8);
    benchmark::DoNotOptimize(Mac::compute(algo, kKey, input));
    ++t;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(1));
  state.SetLabel(to_string(algo));
}
BENCHMARK(BM_FullMeasurement)
    ->Args({static_cast<int>(MacAlgo::kHmacSha256), 1024 * 1024})
    ->Args({static_cast<int>(MacAlgo::kKeyedBlake2s), 1024 * 1024});

void BM_HmacDrbgNextInterval(benchmark::State& state) {
  // The per-measurement cost of irregular scheduling (§3.5).
  HmacDrbg drbg(kKey, bytes_of("sched"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(drbg.next_below(600));
  }
}
BENCHMARK(BM_HmacDrbgNextInterval);

void BM_ChaCha20Stream(benchmark::State& state) {
  ChaCha20Rng rng(kKey);
  Bytes out(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    rng.generate(std::span<uint8_t>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20Stream)->Arg(64 * 1024);

}  // namespace
