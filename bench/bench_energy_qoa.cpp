// QoA-per-joule: the energy planner vs fixed (T_M, backend) grids.
//
// A 60-device metered swarm hunts an 8-minute-dwell implant for 4 rounds
// across five deployment cells:
//
//  * infra            -- direct backhaul, mains power (kDirect regime);
//  * lossy_{slow,fast}_mains  -- 12% per-hop loss field swarm at walking /
//                                vehicle speeds, mains power;
//  * lossy_{slow,fast}_budget -- same radio, but an 80 mJ per-device
//                                battery for the whole mission: a T_M that
//                                measures too eagerly browns out mid-run
//                                and its devices go DARK.
//
// In each cell a fixed grid bracketing the dwell (T_M = 4m / 20m, flood
// and scoped-retry collection where applicable) is raced against
// energy::plan(), which sees only the deployment model -- never the
// simulation. QoA is dwell-detection-weighted healthy collections
// (min(1, dwell/T_M) per healthy report); joules are the FleetMeter's
// measured fleet total. The bench FAILS (exit 1) unless the planner's
// QoA/J beats EVERY fixed configuration in EVERY lossy cell -- the
// closed-form optimum (T_M = dwell, scoped under loss) must actually
// cash out against the packet-level simulation.
//
// All quantities are deterministic for the fixed seed (the meter is
// integer-nanojoule, the runner byte-identical at any thread count), so
// CI gates them against the committed baseline via tools/check_bench.py.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/bench_report.h"
#include "analysis/table.h"
#include "energy/planner.h"
#include "scenario/metrics.h"
#include "scenario/sharded_runner.h"

using namespace erasmus;
using sim::Duration;

namespace {

constexpr size_t kDevices = 60;
constexpr size_t kRounds = 4;
constexpr double kFieldSize = 300.0;
constexpr double kRadioRange = 60.0;
const Duration kDwell = Duration::minutes(8);
const Duration kInterval = Duration::minutes(30);

enum class Collect { kDirect, kFlood, kScoped };

struct Cell {
  const char* name;
  double loss;
  bool infrastructure;
  double speed_min, speed_max;
  sim::Energy battery;  // 0 = mains (metered-unlimited)
};

struct CaseResult {
  double qoa = 0.0;
  double spent_mj = 0.0;
  double qpj = 0.0;
  size_t dark = 0;
  size_t collected = 0;
};

scenario::ShardedFleetConfig make_config(const Cell& cell, Duration tm,
                                         Collect collect, bool adaptive) {
  swarm::DeviceSpec base;
  base.arch = hw::ArchKind::kSmartPlus;
  base.profile = swarm::default_profile_for(base.arch);
  base.tm = tm;
  base.app_ram_bytes = 2 * 1024;
  base.store_slots = 64;

  scenario::ShardedFleetConfig cfg;
  cfg.plan = swarm::FleetPlan::uniform(kDevices, /*key_seed=*/42, base);
  cfg.plan.staggered = true;
  cfg.plan.mobility.field_size = kFieldSize;
  cfg.plan.mobility.radio_range = kRadioRange;
  cfg.plan.mobility.speed_min = cell.speed_min;
  cfg.plan.mobility.speed_max = cell.speed_max;
  cfg.plan.mobility.seed = 42;
  cfg.threads = 8;
  cfg.rounds = kRounds;
  cfg.round_interval = kInterval;
  cfg.k = 8;
  cfg.energy.metered = true;
  cfg.energy.battery = cell.battery;
  if (collect == Collect::kDirect) {
    cfg.backend = scenario::CollectionBackend::kDirect;
  } else {
    cfg.backend = scenario::CollectionBackend::kOverlay;
    cfg.overlay.ttl = 10;
    cfg.overlay.net_loss = cell.loss;
    cfg.overlay.response_timeout = Duration::seconds(2);
    cfg.overlay.max_retries = 2;
    cfg.overlay.collect_deadline = Duration::seconds(30);
    cfg.overlay.scoped_retries = collect == Collect::kScoped;
  }
  cfg.window = scenario::WindowSpec::parse(adaptive ? "adaptive"
                                                    : "default");
  return cfg;
}

CaseResult run_case(const Cell& cell, Duration tm, Collect collect,
                    bool adaptive) {
  scenario::ShardedFleetRunner runner(
      make_config(cell, tm, collect, adaptive));
  scenario::NullSink sink;
  const auto rounds = runner.run(sink);

  const double p_detect =
      std::min(1.0, kDwell.to_seconds() / tm.to_seconds());
  CaseResult r;
  for (const auto& round : rounds) {
    r.qoa += static_cast<double>(round.healthy) * p_detect;
    r.collected += round.reachable;
  }
  const energy::FleetMeter& meter = *runner.energy_meter();
  r.spent_mj = meter.totals().spent_mj();
  r.dark = meter.dark_count();
  r.qpj = r.spent_mj > 0.0 ? r.qoa / (r.spent_mj / 1e3) : 0.0;
  return r;
}

/// The deployment model the planner sees: geometry-derived degree/depth,
/// never anything read back out of the simulation.
energy::Decision plan_for(const Cell& cell) {
  energy::FleetModel fleet;
  fleet.devices = kDevices;
  fleet.attested_bytes = 2 * 1024;
  fleet.k = 8;
  fleet.mean_degree = std::max(
      1.0, kDevices * 3.14159265358979 * kRadioRange * kRadioRange /
               (kFieldSize * kFieldSize) -
           1.0);
  fleet.mean_hops = std::max(1.0, kFieldSize / (1.4142135624 * kRadioRange));

  energy::Mission mission;
  mission.dwell = kDwell;
  mission.round_interval = kInterval;
  mission.rounds = kRounds;
  mission.loss = cell.loss;
  mission.infrastructure = cell.infrastructure;
  mission.device_budget = cell.battery;
  return energy::plan(fleet, mission);
}

Collect to_collect(energy::BackendChoice b) {
  switch (b) {
    case energy::BackendChoice::kDirect: return Collect::kDirect;
    case energy::BackendChoice::kOverlay: return Collect::kFlood;
    case energy::BackendChoice::kScoped: return Collect::kScoped;
  }
  return Collect::kFlood;
}

const char* collect_name(Collect c) {
  switch (c) {
    case Collect::kDirect: return "direct";
    case Collect::kFlood: return "flood";
    case Collect::kScoped: return "scoped";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  // Every gated quantity is deterministic; quick mode just labels the CI
  // invocation (same cells, same seeds, identical samples).
  (void)analysis::bench_quick_mode(argc, argv);

  std::printf("=== QoA per joule: planner vs fixed (T_M, backend) grid, "
              "%zu devices, %zu rounds ===\n\n",
              kDevices, kRounds);

  const Cell cells[] = {
      {"infra", 0.0, true, 8.0, 16.0, sim::Energy{}},
      {"lossy_slow_mains", 0.12, false, 2.0, 6.0, sim::Energy{}},
      {"lossy_fast_mains", 0.12, false, 8.0, 16.0, sim::Energy{}},
      {"lossy_slow_budget", 0.12, false, 2.0, 6.0, sim::Energy{80e3}},
      {"lossy_fast_budget", 0.12, false, 8.0, 16.0, sim::Energy{80e3}},
  };
  const Duration grid_tms[] = {Duration::minutes(4), Duration::minutes(20)};

  analysis::BenchReport bench("energy_qoa");
  bool gate_ok = true;
  size_t planner_wins = 0;
  size_t lossy_cells = 0;
  double min_margin = 1e300;

  for (const Cell& cell : cells) {
    const bool lossy = !cell.infrastructure;
    // Fixed grid: both collection styles of the cell's regime x both T_Ms.
    std::vector<Collect> collects;
    if (cell.infrastructure) {
      collects = {Collect::kDirect};
    } else {
      collects = {Collect::kFlood, Collect::kScoped};
    }

    analysis::Table table({"config", "tm", "QoA", "spent mJ", "QoA/J",
                           "dark", "collected"});
    double best_fixed_qpj = 0.0;
    const auto record = [&](const std::string& config, Duration tm,
                            const CaseResult& r) {
      table.add_row({config, analysis::fmt(tm.to_seconds() / 60.0, 0) + "m",
                     analysis::fmt(r.qoa, 1), analysis::fmt(r.spent_mj, 1),
                     analysis::fmt(r.qpj, 2), std::to_string(r.dark),
                     std::to_string(r.collected)});
      const std::string prefix = std::string(cell.name) + "_" + config + "_";
      bench.sample(prefix + "qpj", r.qpj);
      bench.sample(prefix + "qoa", r.qoa);
      bench.sample(prefix + "spent_mj", r.spent_mj);
      bench.sample(prefix + "dark", static_cast<double>(r.dark));
    };

    for (const Collect collect : collects) {
      for (const Duration tm : grid_tms) {
        const CaseResult r = run_case(cell, tm, collect, /*adaptive=*/false);
        record(std::string("tm") +
                   std::to_string(static_cast<int>(tm.to_seconds() / 60)) +
                   "_" + collect_name(collect),
               tm, r);
        best_fixed_qpj = std::max(best_fixed_qpj, r.qpj);
      }
    }

    const energy::Decision d = plan_for(cell);
    const CaseResult pr =
        run_case(cell, d.tm, to_collect(d.backend), d.adaptive_window);
    record("planner", d.tm, pr);

    std::printf("--- %s (loss %.0f%%, %s, %s) ---\n", cell.name,
                cell.loss * 100.0,
                cell.infrastructure ? "infrastructure" : "field",
                cell.battery.microjoules > 0.0 ? "80 mJ battery" : "mains");
    std::printf("planner chose: tm=%.0fm backend=%s window=%s (%s)\n",
                d.tm.to_seconds() / 60.0, energy::to_string(d.backend),
                d.adaptive_window ? "adaptive" : "default",
                d.reasons.c_str());
    std::printf("%s\n", table.render().c_str());

    if (lossy) {
      ++lossy_cells;
      const double margin =
          best_fixed_qpj > 0.0 ? pr.qpj / best_fixed_qpj : 1e300;
      min_margin = std::min(min_margin, margin);
      if (pr.qpj > best_fixed_qpj) {
        ++planner_wins;
      } else {
        std::printf("GATE: planner QoA/J %.3f <= best fixed %.3f in %s\n",
                    pr.qpj, best_fixed_qpj, cell.name);
        gate_ok = false;
      }
    }
  }

  bench.sample("planner_wins_lossy", static_cast<double>(planner_wins));
  bench.sample("planner_min_margin_lossy", min_margin);
  std::printf("planner beats every fixed (T_M, backend) config in all %zu "
              "lossy cells: %s (min margin %.2fx)\n\n",
              lossy_cells, gate_ok ? "yes" : "NO (GATE FAILED)", min_margin);
  if (!gate_ok) return 1;

  const std::string path = bench.write();
  // A missing BENCH json would silently weaken the CI baseline gate.
  if (path.empty()) return 1;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
