// Reproduces paper Table 1 ("Size of Attestation Executable"), the §4.1
// hardware-cost numbers (registers/LUTs) and prints the Fig. 5 / Fig. 7
// memory organisation the sizes correspond to.
//
// Substitution note (see DESIGN.md): the paper compiles with msp430-gcc and
// seL4 toolchains; we reproduce the component inventory calibrated to the
// paper's totals, preserving every ordering the paper highlights.
#include <cstdio>

#include "analysis/bench_report.h"
#include "analysis/table.h"
#include "hw/arch.h"
#include "hw/code_size.h"
#include "hw/synthesis.h"

using namespace erasmus;

namespace {

std::string cell(hw::ArchKind arch, hw::AttestMode mode,
                 crypto::MacAlgo algo) {
  const auto v = hw::CodeSizeModel::for_arch(arch).executable_kb(mode, algo);
  if (!v) return "-";
  return analysis::fmt(*v, 2) + "KB";
}

void print_memory_organisation() {
  std::printf("Memory organisation (Fig. 5 / Fig. 7 reproduction)\n");
  std::printf("---------------------------------------------------\n");
  const Bytes key(32, 0x11);
  hw::SmartPlusArch smart(key, 8 * 1024, 10 * 1024, 1024);
  std::printf("SMART+ (Fig. 5b): regions and run-time policies\n");
  for (size_t r = 0; r < smart.memory().region_count(); ++r) {
    std::printf("  %-18s %8zu bytes\n", smart.memory().region_name(r).c_str(),
                smart.memory().region_size(r));
  }
  hw::HydraArch hydra(key, 10 * 1024, 1024);
  std::printf("HYDRA (Fig. 7b): regions (seL4-enforced rules)\n");
  for (size_t r = 0; r < hydra.memory().region_count(); ++r) {
    std::printf("  %-18s %8zu bytes\n", hydra.memory().region_name(r).c_str(),
                hydra.memory().region_size(r));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  // Already sub-minute at full size: --quick is accepted (CI runs every
  // bench uniformly) and by contract never changes the simulated
  // configuration, so all emitted quantities keep their full-mode values.
  (void)analysis::bench_quick_mode(argc, argv);

  std::printf("=== Table 1: Size of Attestation Executable ===\n\n");

  analysis::Table table({"MAC Impl.", "SMART+ On-Demand", "SMART+ ERASMUS",
                         "HYDRA On-Demand", "HYDRA ERASMUS"});
  for (auto algo : crypto::all_mac_algos()) {
    table.add_row({crypto::to_string(algo),
                   cell(hw::ArchKind::kSmartPlus, hw::AttestMode::kOnDemand,
                        algo),
                   cell(hw::ArchKind::kSmartPlus, hw::AttestMode::kErasmus,
                        algo),
                   cell(hw::ArchKind::kHydra, hw::AttestMode::kOnDemand,
                        algo),
                   cell(hw::ArchKind::kHydra, hw::AttestMode::kErasmus,
                        algo)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reference: 4.9/4.7, 5.1/4.9, 28.9/28.7 KB (SMART+);\n"
      "                 -, 231.96/233.84, 239.29/241.17 KB (HYDRA)\n\n");

  std::printf("=== Sect. 4.1 hardware cost (Xilinx ISE synthesis model) ===\n\n");
  const auto base = hw::unmodified_msp430();
  const auto mod = hw::modified_msp430();
  analysis::Table synth({"Core", "Registers", "LUTs"});
  synth.add_row({"Unmodified OpenMSP430", std::to_string(base.registers),
                 std::to_string(base.luts)});
  synth.add_row({"ERASMUS / On-Demand (modified)", std::to_string(mod.registers),
                 std::to_string(mod.luts)});
  std::printf("%s", synth.render().c_str());
  std::printf("Overhead: +%.1f%% registers, +%.1f%% LUTs "
              "(paper: ~13%% / ~14%%; 655 vs 579, 1969 vs 1731)\n",
              hw::register_overhead_pct(), hw::lut_overhead_pct());
  std::printf("Component breakdown of the additions:\n");
  for (const auto& c : hw::smartplus_additions()) {
    std::printf("  %-28s +%3d regs, +%3d LUTs\n", c.name.c_str(),
                c.cost.registers, c.cost.luts);
  }
  std::printf("\n");

  print_memory_organisation();

  analysis::BenchReport bench("table1_code_size");
  for (auto algo : crypto::all_mac_algos()) {
    for (const auto arch : {hw::ArchKind::kSmartPlus, hw::ArchKind::kHydra}) {
      const auto kb = hw::CodeSizeModel::for_arch(arch).executable_kb(
          hw::AttestMode::kErasmus, algo);
      if (kb) bench.sample("erasmus_executable_kb", *kb);
    }
  }
  bench.sample("register_overhead_pct", hw::register_overhead_pct());
  bench.sample("lut_overhead_pct", hw::lut_overhead_pct());
  // A missing BENCH json would silently weaken the CI baseline gate.
  if (bench.write().empty()) return 1;
  return 0;
}
