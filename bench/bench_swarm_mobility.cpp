// Reproduces the paper's §6 swarm argument quantitatively:
//
//   1. coverage of on-demand swarm RA (SEDA-style, fresh measurement per
//      device) vs. ERASMUS collection (LISA-alpha-style relay of stored
//      measurements) as node speed grows -- on-demand needs the spanning
//      tree to survive the whole (measurement-dominated) protocol, ERASMUS
//      only needs instantaneous per-hop connectivity;
//   2. round duration for both protocols vs. swarm size;
//   3. the staggered-schedule guarantee: max fraction of the swarm busy
//      measuring at once, aligned vs. staggered (last paragraph of §6);
//   4. an end-to-end Fleet round: real provers, per-device keys, verifier
//      checks, over the mobility model.
#include <cmath>
#include <cstdio>

#include "analysis/bench_report.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "swarm/fleet.h"
#include "swarm/protocols.h"

using namespace erasmus;
using sim::Duration;
using sim::Time;

namespace {

// Averages protocol coverage over several mobility seeds.
std::pair<double, double> coverage_at_speed(double speed, size_t devices) {
  swarm::SwarmProtocolConfig pc;
  pc.hop_latency = Duration::millis(5);
  pc.measurement_time = Duration::seconds(7);  // Fig. 6 low-end device
  pc.collection_reply_time = Duration::micros(15);  // Table 2

  double od = 0, er = 0;
  const int kSeeds = 10;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    swarm::MobilityConfig mc;
    mc.devices = devices;
    mc.field_size = 150.0;
    mc.radio_range = 45.0;
    mc.speed_min = speed * 0.8;
    mc.speed_max = speed * 1.2 + 0.001;
    mc.seed = static_cast<uint64_t>(seed);
    swarm::RandomWaypointMobility mobility(mc);
    const Time t0 = Time::zero() + Duration::minutes(2);
    od += swarm::run_ondemand_round(mobility, t0, 0, pc).coverage();
    er += swarm::run_erasmus_collection_round(mobility, t0, 0, pc).coverage();
  }
  return {od / kSeeds, er / kSeeds};
}

}  // namespace

int main(int argc, char** argv) {
  // Already sub-minute at full size: --quick is accepted (CI runs every
  // bench uniformly) and by contract never changes the simulated
  // configuration, so all emitted quantities keep their full-mode values.
  (void)analysis::bench_quick_mode(argc, argv);

  std::printf("=== Sect. 6: swarm attestation under mobility ===\n\n");
  analysis::BenchReport bench("swarm_mobility");

  std::printf("--- Coverage vs node speed (30 devices, 7 s per on-demand "
              "measurement) ---\n");
  analysis::Series cov("Speed (m/s)",
                       {"on-demand coverage", "ERASMUS coverage"});
  for (const double speed : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    const auto [od, er] = coverage_at_speed(speed, 30);
    bench.sample("ondemand_coverage", od);
    bench.sample("erasmus_coverage", er);
    cov.add_point(speed, {od, er});
  }
  std::printf("%s\n", cov.render().c_str());
  std::printf("Expected shape: both near the static-reachability ceiling at "
              "speed 0;\non-demand collapses with speed, ERASMUS degrades "
              "slowly.\n\n");

  std::printf("--- Round duration vs swarm size (static topology) ---\n");
  analysis::Table dur({"Devices", "on-demand (s)", "ERASMUS (ms)",
                       "speedup"});
  for (const size_t n : {10, 20, 40, 80}) {
    swarm::MobilityConfig mc;
    mc.devices = n;
    mc.field_size = 30.0 * std::sqrt(static_cast<double>(n));
    mc.radio_range = 50.0;
    mc.speed_min = 0.0;
    mc.speed_max = 0.0;
    mc.seed = 5;
    swarm::RandomWaypointMobility mobility(mc);
    swarm::SwarmProtocolConfig pc;
    pc.measurement_time = Duration::seconds(7);
    const auto od = swarm::run_ondemand_round(mobility, Time::zero(), 0, pc);
    const auto er =
        swarm::run_erasmus_collection_round(mobility, Time::zero(), 0, pc);
    bench.sample("ondemand_round_s", od.duration.to_seconds());
    bench.sample("erasmus_round_ms", er.duration.to_millis());
    dur.add_row({std::to_string(n),
                 analysis::fmt(od.duration.to_seconds(), 2),
                 analysis::fmt(er.duration.to_millis(), 1),
                 analysis::fmt(od.duration.to_seconds() * 1000.0 /
                                   std::max(er.duration.to_millis(), 1e-9),
                               0) + "x"});
  }
  std::printf("%s\n", dur.render().c_str());

  std::printf("--- Staggered schedules: max fraction busy (T_M = 10 min, "
              "7 s measurement) ---\n");
  analysis::Table stag({"Devices", "aligned busy", "staggered busy"});
  for (const size_t n : {10, 20, 50, 100}) {
    stag.add_row(
        {std::to_string(n),
         std::to_string(swarm::max_concurrent_busy(
             n, Duration::minutes(10), Duration::seconds(7), false)),
         std::to_string(swarm::max_concurrent_busy(
             n, Duration::minutes(10), Duration::seconds(7), true))});
  }
  std::printf("%s\n", stag.render().c_str());

  std::printf("--- End-to-end Fleet round (real provers, per-device keys) "
              "---\n");
  sim::EventQueue queue;
  swarm::DeviceSpec base;
  base.tm = Duration::minutes(10);
  base.app_ram_bytes = 1024;
  swarm::FleetPlan plan =
      swarm::FleetPlan::uniform(12, /*key_seed=*/7, base);
  plan.mobility.field_size = 80.0;
  plan.mobility.radio_range = 45.0;
  plan.mobility.speed_min = 1.0;
  plan.mobility.speed_max = 3.0;
  swarm::Fleet fleet(queue, plan);
  fleet.start();
  // One infected straggler.
  queue.schedule_at(Time::zero() + Duration::minutes(25), [&] {
    fleet.prover(7).memory().write(fleet.prover(7).attested_region(), 0,
                                   bytes_of("EVIL"), false);
  });
  queue.run_until(Time::zero() + Duration::hours(2));
  const auto statuses = fleet.collect_round(0, 12);
  size_t attested = 0, healthy = 0;
  for (const auto& s : statuses) {
    attested += s.attested;
    healthy += s.healthy;
  }
  const auto report = swarm::make_report(swarm::QosaLevel::kList, statuses,
                                         fleet.mobility().snapshot(queue.now()));
  std::printf("collected %zu/%zu devices, %zu healthy, device 7 flagged: %s, "
              "QoSA(all-healthy)=%s\n\n",
              attested, statuses.size(), healthy,
              statuses[7].attested && !statuses[7].healthy ? "YES" : "no",
              report.all_healthy ? "true" : "false");
  bench.sample("fleet_round_attested", static_cast<double>(attested));
  bench.sample("fleet_round_healthy", static_cast<double>(healthy));
  // A missing BENCH json would silently weaken the CI baseline gate.
  if (bench.write().empty()) return 1;
  return 0;
}
