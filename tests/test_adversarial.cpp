// Adversarial property tests: the §3.2/§3.4 security argument, tested by
// fuzzing. The claim under test: measurements live in UNPROTECTED storage,
// yet *any* tampering a key-less adversary can perform is detected at the
// next collection -- because forging requires K.
#include <gtest/gtest.h>

#include "attest/prover.h"
#include "attest/verifier.h"
#include "sim/rng.h"

namespace erasmus::attest {
namespace {

using crypto::MacAlgo;
using sim::Duration;
using sim::Time;

Bytes test_key() { return bytes_of("0123456789abcdef0123456789abcdef"); }

constexpr size_t kRecordBytes = 1 + 8 + 32 + 32;

struct Rig {
  sim::EventQueue queue;
  hw::SmartPlusArch arch;
  Prover prover;
  Verifier verifier;

  Rig()
      : arch(test_key(), 4096, 2048, 16 * kRecordBytes),
        prover(queue, arch, arch.app_region(), arch.store_region(),
               std::make_unique<RegularScheduler>(Duration::minutes(10)),
               ProverConfig{}),
        verifier([&] {
          VerifierConfig vc;
          vc.key = test_key();
          vc.golden_digest = crypto::Hash::digest(
              crypto::HashAlgo::kSha256,
              arch.memory().view(arch.app_region(), true));
          return vc;
        }()) {
    prover.start();
    const uint64_t t0 =
        prover.scheduler().next_interval(0) / Duration::seconds(1);
    verifier.set_schedule(&prover.scheduler(), t0);
    queue.run_until(Time::zero() + Duration::hours(1));
  }

  CollectionReport collect(size_t k) {
    const auto res =
        prover.handle_collect(CollectRequest{static_cast<uint32_t>(k)});
    return verifier.verify_collection(res.response, queue.now(), k);
  }
};

// Property: flipping ANY single byte of ANY stored record is detected.
// (Byte 0 is the validity flag -- flipping it erases the record, visible as
// a gap; any other byte breaks MAC verification or the schedule check.)
class StoreByteFlip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoreByteFlip, AnySingleByteFlipDetected) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    Rig rig;
    const uint64_t slot =
        rig.prover.latest_index() - rng.next_below(6);  // any of the 6
    const size_t offset = static_cast<size_t>(rng.next_below(kRecordBytes));
    const uint8_t mask = static_cast<uint8_t>(1u << rng.next_below(8));
    rig.prover.store().tamper_corrupt(slot, offset, mask);

    const auto report = rig.collect(6);
    EXPECT_TRUE(report.tampering_detected)
        << "slot=" << slot << " offset=" << offset << " mask=" << int(mask);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreByteFlip, ::testing::Values(1, 2, 3, 4));

// Property: multi-byte random scribbles over the store are detected.
class StoreScribble : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoreScribble, RandomScribbleDetected) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    Rig rig;
    const size_t store_bytes = 16 * kRecordBytes;
    const size_t n_writes = 1 + rng.next_below(8);
    for (size_t w = 0; w < n_writes; ++w) {
      const size_t offset = static_cast<size_t>(
          rng.next_below(store_bytes - 4));
      Bytes junk(1 + rng.next_below(4));
      for (auto& b : junk) b = static_cast<uint8_t>(rng.next_u64());
      rig.prover.memory().write(rig.arch.store_region(), offset, junk,
                                /*privileged=*/false);
    }
    // The scribble could, with ~2^-8 probability per write, rewrite a byte
    // to its existing value; detect that and skip (no tampering happened).
    const auto res = rig.prover.handle_collect(CollectRequest{6});
    bool all_records_genuine =
        res.response.measurements.size() == 6;
    for (const auto& m : res.response.measurements) {
      all_records_genuine &= verify_measurement(MacAlgo::kHmacSha256,
                                                test_key(), m);
    }
    if (all_records_genuine) continue;

    const auto report =
        rig.verifier.verify_collection(res.response, rig.queue.now(), 6);
    EXPECT_TRUE(report.tampering_detected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreScribble, ::testing::Values(10, 20, 30));

TEST(Adversarial, ReplayedOldRecordIsOffSchedule) {
  // Malware copies yesterday's (healthy) record over today's (infected)
  // slot. The MAC verifies -- but the timestamp lands where the schedule
  // says no measurement happened, or duplicates an existing one.
  Rig rig;
  auto& store = rig.prover.store();
  const auto old_record = store.get(rig.prover.latest_index() - 3);
  ASSERT_TRUE(old_record.has_value());
  store.tamper_overwrite(rig.prover.latest_index(), *old_record);

  const auto report = rig.collect(6);
  EXPECT_TRUE(report.tampering_detected)
      << "duplicate timestamps / reordering must be flagged";
}

TEST(Adversarial, RecordFromAnotherDeviceRejected) {
  // Splicing in a record from a different device (different K) fails MAC.
  Rig rig;
  const Bytes other_key = bytes_of("a-different-device-key-01234567!");
  const Measurement foreign = compute_measurement(
      MacAlgo::kHmacSha256, other_key, bytes_of("healthy-looking"), 3600);
  rig.prover.store().tamper_overwrite(rig.prover.latest_index(), foreign);

  const auto report = rig.collect(6);
  EXPECT_TRUE(report.tampering_detected);
}

TEST(Adversarial, TimestampOnlyEditBreaksMac) {
  // The timestamp is inside the MAC: sliding a record to a different
  // schedule slot without K is impossible.
  Rig rig;
  auto& store = rig.prover.store();
  const uint64_t slot = rig.prover.latest_index();
  // Record layout: flag(1) | t(8) | digest | mac -- bump t's low byte.
  store.tamper_corrupt(slot, 1, 0x01);
  const auto report = rig.collect(6);
  EXPECT_TRUE(report.tampering_detected);
}

TEST(Adversarial, WholeStoreWipeLeavesNothingAuthentic) {
  Rig rig;
  for (uint64_t s = 0; s < rig.prover.store().capacity(); ++s) {
    rig.prover.store().tamper_erase(s);
  }
  const auto report = rig.collect(6);
  EXPECT_TRUE(report.tampering_detected);
  EXPECT_FALSE(report.freshness.has_value());
}

TEST(Adversarial, ForgeryNeedsTheKey_PositiveControl) {
  // Sanity check of the whole argument: WITH the key, a forged "healthy"
  // record at a scheduled timestamp IS accepted. This is why K's hardware
  // protection (SMART+/HYDRA) carries the entire scheme.
  Rig rig;
  const auto latest = rig.prover.store().get(rig.prover.latest_index());
  ASSERT_TRUE(latest.has_value());
  const Measurement forged_with_key = compute_measurement(
      MacAlgo::kHmacSha256, test_key(),
      rig.arch.memory().view(rig.arch.app_region(), true),
      latest->timestamp);
  rig.prover.store().tamper_overwrite(rig.prover.latest_index(),
                                      forged_with_key);
  const auto report = rig.collect(6);
  EXPECT_FALSE(report.tampering_detected)
      << "a key-holding adversary defeats the scheme by construction";
}

TEST(Adversarial, CollectionOfGarbageResponse) {
  // A compromised network peer answers the verifier with random bytes:
  // deserialization or verification must reject, never crash.
  Rig rig;
  sim::Rng rng(777);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes junk(rng.next_below(200));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.next_u64());
    const auto resp = CollectResponse::deserialize(junk);
    if (!resp) continue;
    const auto report =
        rig.verifier.verify_collection(*resp, rig.queue.now(), 6);
    EXPECT_TRUE(report.tampering_detected || resp->measurements.empty());
  }
}

}  // namespace
}  // namespace erasmus::attest
