// Tests for the runtime energy meter: per-arch charge tables, go-dark
// transition semantics, saturating integer accumulation, fleet totals,
// and thread-count invariance of a metered ShardedFleetRunner.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <stdexcept>

#include "energy/meter.h"
#include "scenario/metrics.h"
#include "scenario/sharded_runner.h"

namespace erasmus {
namespace {

using energy::CostModel;
using energy::DeviceMeter;
using energy::FleetMeter;
using sim::Duration;
using sim::Time;

CostModel model_for(hw::ArchKind arch) {
  return CostModel::for_device(sim::DeviceProfile::msp430_8mhz(),
                               energy::profile_for(arch),
                               crypto::MacAlgo::kHmacSha256,
                               /*attested_bytes=*/2 * 1024);
}

// The runtime charge table must be the analytic ledger's numbers, nJ for
// nJ -- one shared profile_for() so the two models cannot drift.
TEST(EnergyCostModel, MatchesAnalyticLedgerPerArch) {
  const auto device = sim::DeviceProfile::msp430_8mhz();
  for (const hw::ArchKind arch :
       {hw::ArchKind::kSmartPlus, hw::ArchKind::kHydra,
        hw::ArchKind::kTrustLite}) {
    const sim::EnergyProfile& p = energy::profile_for(arch);
    const CostModel m = model_for(arch);
    EXPECT_EQ(m.measurement_nj,
              energy::to_nanojoules(p.active_energy(device.measurement_time(
                  crypto::MacAlgo::kHmacSha256, 2 * 1024))))
        << p.name;
    EXPECT_EQ(m.tx_nj_per_byte,
              energy::to_nanojoules(p.tx_energy_per_byte()))
        << p.name;
    EXPECT_EQ(m.rx_nj_per_byte,
              energy::to_nanojoules(p.rx_energy_per_byte()))
        << p.name;
    EXPECT_EQ(m.sleep_nj_per_s,
              energy::to_nanojoules(p.sleep_energy(Duration::seconds(1))))
        << p.name;
    EXPECT_GT(m.measurement_nj, 0u) << p.name;
    EXPECT_GT(m.tx_nj_per_byte, 0u) << p.name;
  }
  // The application-class Hydra core burns more per measurement than the
  // MSP430-class SMART+ device on the same cycle count.
  EXPECT_GT(model_for(hw::ArchKind::kHydra).measurement_nj,
            model_for(hw::ArchKind::kSmartPlus).measurement_nj);
}

TEST(EnergyUnits, SaturatingConversion) {
  EXPECT_EQ(energy::to_nanojoules(sim::Energy{-5.0}), 0u);
  EXPECT_EQ(energy::to_nanojoules(sim::Energy{0.0}), 0u);
  EXPECT_EQ(energy::to_nanojoules(sim::Energy{1.0}), 1000u);
  EXPECT_EQ(energy::to_nanojoules(sim::Energy{1e300}),
            std::numeric_limits<uint64_t>::max());
  EXPECT_NEAR(energy::from_nanojoules(1234567).microjoules, 1234.567, 1e-9);
}

TEST(DeviceMeter, GoDarkTransitionFiresExactlyOnce) {
  CostModel cost;
  cost.measurement_nj = 400;
  DeviceMeter m(cost, /*capacity_nj=*/1000);

  EXPECT_FALSE(m.charge_measurement(Time::zero()));  // 400
  EXPECT_FALSE(m.charge_measurement(Time::zero()));  // 800
  EXPECT_FALSE(m.dark());
  const Time t = Time::zero() + Duration::seconds(5);
  EXPECT_TRUE(m.charge_measurement(t));  // 1200 >= 1000: the transition
  EXPECT_TRUE(m.dark());
  EXPECT_EQ(m.dark_at(), t);

  // A dark meter absorbs nothing: no further transition, no further spend.
  const uint64_t spent = m.spent_nj();
  EXPECT_FALSE(m.charge_measurement(t + Duration::seconds(1)));
  EXPECT_FALSE(m.charge_tx(1000, t + Duration::seconds(1)));
  EXPECT_FALSE(m.charge_sleep(Duration::hours(10), t));
  EXPECT_EQ(m.spent_nj(), spent);
  EXPECT_EQ(m.dark_at(), t) << "dark_at pinned to the exhausting charge";
}

TEST(DeviceMeter, ZeroCapacityMetersButNeverDarkens) {
  CostModel cost;
  cost.measurement_nj = 1000;
  cost.tx_nj_per_byte = 3;
  cost.rx_nj_per_byte = 2;
  cost.sleep_nj_per_s = 10;
  DeviceMeter m(cost, /*capacity_nj=*/0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(m.charge_measurement(Time::zero()));
  }
  EXPECT_FALSE(m.charge_tx(64, Time::zero()));
  EXPECT_FALSE(m.charge_rx(64, Time::zero()));
  EXPECT_FALSE(m.charge_sleep(Duration::minutes(30), Time::zero()));
  EXPECT_FALSE(m.dark());
  EXPECT_EQ(m.cpu_nj(), 1000u * 1000u);
  EXPECT_EQ(m.tx_nj(), 64u * 3u);
  EXPECT_EQ(m.rx_nj(), 64u * 2u);
  EXPECT_EQ(m.sleep_nj(), 30u * 60u * 10u);
  EXPECT_DOUBLE_EQ(m.remaining_fraction(), 1.0);
}

TEST(DeviceMeter, AccumulationSaturatesInsteadOfWrapping) {
  CostModel cost;
  cost.tx_nj_per_byte = std::numeric_limits<uint64_t>::max() / 2;
  DeviceMeter m(cost, /*capacity_nj=*/0);
  m.charge_tx(2, Time::zero());
  m.charge_tx(2, Time::zero());  // would wrap; must pin at max
  EXPECT_EQ(m.tx_nj(), std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(m.spent_nj(), std::numeric_limits<uint64_t>::max());
}

TEST(DeviceMeter, RemainingFraction) {
  CostModel cost;
  cost.measurement_nj = 250;
  DeviceMeter m(cost, /*capacity_nj=*/1000);
  m.charge_measurement(Time::zero());
  EXPECT_DOUBLE_EQ(m.remaining_fraction(), 0.75);
  m.charge_measurement(Time::zero());
  m.charge_measurement(Time::zero());
  m.charge_measurement(Time::zero());  // exhausted exactly
  EXPECT_TRUE(m.dark());
  EXPECT_DOUBLE_EQ(m.remaining_fraction(), 0.0);
}

TEST(FleetMeter, TotalsAndDarkCount) {
  CostModel cost;
  cost.measurement_nj = 600;
  cost.tx_nj_per_byte = 1;
  std::vector<DeviceMeter> meters;
  meters.emplace_back(cost, /*capacity_nj=*/1000);
  meters.emplace_back(cost, /*capacity_nj=*/0);
  FleetMeter fleet(std::move(meters));

  EXPECT_TRUE(fleet.device(0).charge_measurement(
      Time::zero() + Duration::seconds(2)) ||
              fleet.device(0).charge_measurement(
                  Time::zero() + Duration::seconds(2)));
  fleet.device(1).charge_tx(500, Time::zero());
  EXPECT_EQ(fleet.dark_count(), 1u);
  EXPECT_TRUE(fleet.dark(0));
  EXPECT_FALSE(fleet.dark(1));

  const FleetMeter::Totals t = fleet.totals();
  EXPECT_DOUBLE_EQ(t.cpu_mj, 1200.0 / 1e6);
  EXPECT_DOUBLE_EQ(t.tx_mj, 500.0 / 1e6);
  EXPECT_DOUBLE_EQ(t.spent_mj(), (1200.0 + 500.0) / 1e6);
  EXPECT_NEAR(fleet.spent_total().microjoules, 1.7, 1e-9);

  EXPECT_THROW(fleet.device(2), std::out_of_range);
}

// The acceptance-criteria surface: a metered overlay fleet where devices
// actually go dark mid-run must still produce byte-identical JSON metrics
// at 1, 2 and 8 threads.
scenario::ShardedFleetConfig metered_config(size_t threads) {
  swarm::DeviceSpec base;
  base.arch = hw::ArchKind::kSmartPlus;
  base.profile = swarm::default_profile_for(base.arch);
  base.tm = Duration::minutes(4);
  base.app_ram_bytes = 2 * 1024;
  base.store_slots = 64;

  scenario::ShardedFleetConfig cfg;
  cfg.plan = swarm::FleetPlan::uniform(24, /*key_seed=*/7, base);
  cfg.plan.staggered = true;
  cfg.plan.mobility.field_size = 200.0;
  cfg.plan.mobility.radio_range = 60.0;
  cfg.plan.mobility.seed = 7;
  cfg.threads = threads;
  cfg.rounds = 3;
  cfg.round_interval = Duration::minutes(30);
  cfg.k = 8;
  cfg.backend = scenario::CollectionBackend::kOverlay;
  cfg.overlay.ttl = 8;
  cfg.overlay.net_loss = 0.1;
  cfg.overlay.response_timeout = Duration::seconds(2);
  cfg.overlay.collect_deadline = Duration::seconds(30);
  cfg.energy.metered = true;
  cfg.energy.battery = sim::Energy{30e3};  // 30 mJ: browns out mid-run
  return cfg;
}

TEST(MeteredShardedRunner, DevicesGoDarkDeterministically) {
  auto run_with_threads = [](size_t threads) {
    std::ostringstream out;
    scenario::JsonSink sink(out);
    sink.begin_run("metered");
    scenario::ShardedFleetRunner runner(metered_config(threads));
    const auto rounds = runner.run(sink);
    sink.end_run();
    EXPECT_GT(rounds.back().dark, 0u) << "battery sized to brown out";
    EXPECT_EQ(runner.energy_meter()->dark_count(), rounds.back().dark);
    EXPECT_GT(runner.energy_meter()->totals().spent_mj(), 0.0);
    return out.str();
  };
  const std::string t1 = run_with_threads(1);
  EXPECT_EQ(t1, run_with_threads(2));
  EXPECT_EQ(t1, run_with_threads(8));
  EXPECT_NE(t1.find("\"energy\""), std::string::npos)
      << "metered runs emit the per-round energy table";
}

// Unmetered runs must not change: no meter, no energy rows, no dark column.
TEST(MeteredShardedRunner, UnmeteredRunsStayEnergySilent) {
  scenario::ShardedFleetConfig cfg = metered_config(1);
  cfg.energy = {};
  std::ostringstream out;
  scenario::JsonSink sink(out);
  sink.begin_run("unmetered");
  scenario::ShardedFleetRunner runner(cfg);
  runner.run(sink);
  sink.end_run();
  EXPECT_EQ(runner.energy_meter(), nullptr);
  EXPECT_EQ(out.str().find("\"energy\""), std::string::npos);
}

}  // namespace
}  // namespace erasmus
