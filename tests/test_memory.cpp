// Tests for the access-controlled device memory model (Fig. 5 / Fig. 7
// memory organisation and access rules).
#include <gtest/gtest.h>

#include "hw/memory.h"

namespace erasmus::hw {
namespace {

TEST(DeviceMemory, RegionsAreZeroInitialised) {
  DeviceMemory mem;
  const RegionId app = mem.add_region("app", 16, policy::kAppRam);
  EXPECT_EQ(mem.read(app, 0, 16, false), Bytes(16, 0));
}

TEST(DeviceMemory, AppRamReadWriteForEveryone) {
  DeviceMemory mem;
  const RegionId app = mem.add_region("app", 8, policy::kAppRam);
  mem.write(app, 2, Bytes{0xaa, 0xbb}, /*privileged=*/false);
  EXPECT_EQ(mem.read(app, 2, 2, /*privileged=*/false), (Bytes{0xaa, 0xbb}));
  EXPECT_EQ(mem.read(app, 2, 2, /*privileged=*/true), (Bytes{0xaa, 0xbb}));
}

TEST(DeviceMemory, RomIsWriteProtectedEvenForPrivileged) {
  DeviceMemory mem;
  const RegionId rom = mem.add_region("rom", 8, policy::kRom);
  EXPECT_THROW(mem.write(rom, 0, Bytes{1}, false), AccessViolation);
  EXPECT_THROW(mem.write(rom, 0, Bytes{1}, true), AccessViolation);
  EXPECT_NO_THROW(mem.read(rom, 0, 8, false));
}

TEST(DeviceMemory, KeyRegionInvisibleToUnprivileged) {
  DeviceMemory mem;
  const RegionId key = mem.add_region("key", 32, policy::kKey);
  EXPECT_THROW(mem.read(key, 0, 32, /*privileged=*/false), AccessViolation);
  EXPECT_THROW(mem.write(key, 0, Bytes{1}, /*privileged=*/false),
               AccessViolation);
  EXPECT_NO_THROW(mem.read(key, 0, 32, /*privileged=*/true));
  // Even privileged code cannot overwrite K (provisioned at manufacture).
  EXPECT_THROW(mem.write(key, 0, Bytes{1}, /*privileged=*/true),
               AccessViolation);
}

TEST(DeviceMemory, MeasurementStoreIsDeliberatelyUnprotected) {
  // §3.2: malware may modify/reorder/delete measurements; protection is
  // unnecessary because tampering is self-incriminating.
  DeviceMemory mem;
  const RegionId store = mem.add_region("store", 64,
                                        policy::kMeasurementStore);
  EXPECT_NO_THROW(mem.write(store, 0, Bytes{0xff}, /*privileged=*/false));
  EXPECT_NO_THROW(mem.read(store, 0, 1, /*privileged=*/false));
}

TEST(DeviceMemory, ProvisionBypassesPolicyOnce) {
  DeviceMemory mem;
  const RegionId key = mem.add_region("key", 4, policy::kKey);
  mem.provision(key, 0, Bytes{1, 2, 3, 4});
  EXPECT_EQ(mem.read(key, 0, 4, /*privileged=*/true), (Bytes{1, 2, 3, 4}));
}

TEST(DeviceMemory, OutOfBoundsAccessThrows) {
  DeviceMemory mem;
  const RegionId app = mem.add_region("app", 8, policy::kAppRam);
  EXPECT_THROW(mem.read(app, 8, 1, false), AccessViolation);
  EXPECT_THROW(mem.read(app, 4, 8, false), AccessViolation);
  EXPECT_THROW(mem.write(app, 7, Bytes{1, 2}, false), AccessViolation);
  EXPECT_THROW(mem.provision(app, 8, Bytes{1}), AccessViolation);
}

TEST(DeviceMemory, BadRegionIdThrows) {
  DeviceMemory mem;
  EXPECT_THROW(mem.read(0, 0, 1, false), std::out_of_range);
  EXPECT_THROW(mem.write(3, 0, Bytes{1}, false), std::out_of_range);
  EXPECT_THROW(mem.region_size(1), std::out_of_range);
}

TEST(DeviceMemory, ViewRespectsPolicy) {
  DeviceMemory mem;
  const RegionId key = mem.add_region("key", 4, policy::kKey);
  EXPECT_THROW(mem.view(key, /*privileged=*/false), AccessViolation);
  EXPECT_EQ(mem.view(key, /*privileged=*/true).size(), 4u);
}

TEST(DeviceMemory, MetadataAccessors) {
  DeviceMemory mem;
  const RegionId a = mem.add_region("alpha", 10, policy::kAppRam);
  const RegionId b = mem.add_region("beta", 6, policy::kAppRam);
  EXPECT_EQ(mem.region_name(a), "alpha");
  EXPECT_EQ(mem.region_size(b), 6u);
  EXPECT_EQ(mem.region_count(), 2u);
  EXPECT_EQ(mem.total_size(), 16u);
}

TEST(DeviceMemory, ZeroLengthAccessAtEndIsAllowed) {
  DeviceMemory mem;
  const RegionId app = mem.add_region("app", 4, policy::kAppRam);
  EXPECT_EQ(mem.read(app, 4, 0, false), Bytes{});
  EXPECT_NO_THROW(mem.write(app, 4, Bytes{}, false));
}

// Access-policy matrix, parameterised: every (policy, privilege, op) cell.
struct PolicyCase {
  RegionPolicy policy;
  bool privileged;
  bool write;
  bool allowed;
};

class PolicyMatrix : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(PolicyMatrix, EnforcesCell) {
  const auto& p = GetParam();
  DeviceMemory mem;
  const RegionId r = mem.add_region("r", 4, p.policy);
  const auto access = [&] {
    if (p.write) {
      mem.write(r, 0, Bytes{1}, p.privileged);
    } else {
      (void)mem.read(r, 0, 1, p.privileged);
    }
  };
  if (p.allowed) {
    EXPECT_NO_THROW(access());
  } else {
    EXPECT_THROW(access(), AccessViolation);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, PolicyMatrix,
    ::testing::Values(
        // ROM: read yes / write no, both privilege levels.
        PolicyCase{policy::kRom, false, false, true},
        PolicyCase{policy::kRom, false, true, false},
        PolicyCase{policy::kRom, true, false, true},
        PolicyCase{policy::kRom, true, true, false},
        // Key: unprivileged nothing; privileged read-only.
        PolicyCase{policy::kKey, false, false, false},
        PolicyCase{policy::kKey, false, true, false},
        PolicyCase{policy::kKey, true, false, true},
        PolicyCase{policy::kKey, true, true, false},
        // App RAM: everything allowed.
        PolicyCase{policy::kAppRam, false, false, true},
        PolicyCase{policy::kAppRam, false, true, true},
        PolicyCase{policy::kAppRam, true, false, true},
        PolicyCase{policy::kAppRam, true, true, true},
        // Measurement store: everything allowed (unprotected by design).
        PolicyCase{policy::kMeasurementStore, false, true, true},
        PolicyCase{policy::kMeasurementStore, false, false, true}));

}  // namespace
}  // namespace erasmus::hw
