// Tests for the AIMD dispatch-window controller (attest/window.h): fixed
// mode, slow-start and congestion-avoidance growth, multiplicative
// backoff with floor/ceiling clamping, recovery-epoch loss guarding (one
// cut per dispatch wave, however correlated the timeouts), and the
// per-round min/max trackers the scenario metric tables report.
#include <gtest/gtest.h>

#include <vector>

#include "attest/window.h"

namespace erasmus::attest {
namespace {

WindowConfig adaptive_config() {
  WindowConfig wc;
  wc.adaptive = true;
  wc.initial = 8;
  wc.floor = 2;
  wc.ceiling = 64;
  // Symmetric halving keeps the arithmetic below exact; the production
  // defaults cut loss more gently than congestion (see window.h).
  wc.loss_decrease = 0.5;
  wc.congestion_decrease = 0.5;
  return wc;
}

TEST(WindowController, FixedModeNeverMoves) {
  WindowConfig wc;
  wc.fixed = 16;
  WindowController ctl(wc);
  EXPECT_EQ(ctl.window(), 16u);
  EXPECT_FALSE(ctl.adaptive());
  for (int i = 0; i < 100; ++i) ctl.on_response();
  EXPECT_EQ(ctl.window(), 16u);
  EXPECT_FALSE(ctl.on_loss(ctl.on_send())) << "fixed windows never back off";
  EXPECT_FALSE(ctl.on_congestion());
  EXPECT_EQ(ctl.window(), 16u);
  EXPECT_EQ(ctl.round_min(), 16u);
  EXPECT_EQ(ctl.round_max(), 16u);
}

TEST(WindowController, SlowStartGrowsPerResponseUntilCeiling) {
  WindowController ctl(adaptive_config());
  EXPECT_EQ(ctl.window(), 8u);
  // Below ssthresh (= ceiling before any loss) every response adds one.
  ctl.on_response();
  EXPECT_EQ(ctl.window(), 9u);
  for (int i = 0; i < 200; ++i) ctl.on_response();
  EXPECT_EQ(ctl.window(), 64u) << "growth clamps at the ceiling";
}

TEST(WindowController, LossHalvesAndEntersCongestionAvoidance) {
  WindowController ctl(adaptive_config());
  for (int i = 0; i < 24; ++i) ctl.on_response();  // slow start to 32
  ASSERT_EQ(ctl.window(), 32u);

  EXPECT_TRUE(ctl.on_loss(ctl.on_send()));
  EXPECT_EQ(ctl.window(), 16u);

  // Past the (lowered) threshold, growth is additive: one full window of
  // responses buys one slot.
  for (size_t i = 0; i < 15; ++i) {
    ctl.on_response();
    EXPECT_EQ(ctl.window(), 16u) << "additive step needs a full window";
  }
  ctl.on_response();
  EXPECT_EQ(ctl.window(), 17u);
}

TEST(WindowController, BackoffClampsAtFloor) {
  WindowController ctl(adaptive_config());
  ASSERT_EQ(ctl.window(), 8u);
  EXPECT_TRUE(ctl.on_loss(ctl.on_send()));  // 8 -> 4
  EXPECT_EQ(ctl.window(), 4u);
  EXPECT_TRUE(ctl.on_loss(ctl.on_send()));  // 4 -> 2 (floor)
  EXPECT_EQ(ctl.window(), 2u);
  EXPECT_TRUE(ctl.on_loss(ctl.on_send()));
  EXPECT_EQ(ctl.window(), 2u) << "floor must hold";
}

TEST(WindowController, CorrelatedTimeoutWaveIsOneCut) {
  WindowController ctl(adaptive_config());
  for (int i = 0; i < 56; ++i) ctl.on_response();  // slow start to 64
  ASSERT_EQ(ctl.window(), 64u);

  // A whole window's worth of attempts goes out, then the flood carrying
  // them is lost: 64 correlated timeouts. Only the first may cut -- the
  // rest belong to the same recovery epoch.
  std::vector<uint64_t> wave;
  for (int i = 0; i < 64; ++i) wave.push_back(ctl.on_send());
  EXPECT_TRUE(ctl.on_loss(wave[0]));
  EXPECT_EQ(ctl.window(), 32u);
  for (size_t i = 1; i < wave.size(); ++i) {
    EXPECT_FALSE(ctl.on_loss(wave[i])) << "wave timeout " << i
                                       << " double-charged";
  }
  EXPECT_EQ(ctl.window(), 32u);

  // An attempt dispatched AFTER the cut is fresh evidence: its timeout
  // cuts again.
  const uint64_t retry = ctl.on_send();
  EXPECT_TRUE(ctl.on_loss(retry));
  EXPECT_EQ(ctl.window(), 16u);
}

TEST(WindowController, CongestionBacksOffRateLimited) {
  WindowController ctl(adaptive_config());
  for (int i = 0; i < 24; ++i) ctl.on_response();
  ASSERT_EQ(ctl.window(), 32u);
  EXPECT_TRUE(ctl.on_congestion());
  EXPECT_EQ(ctl.window(), 16u);
  EXPECT_FALSE(ctl.on_congestion())
      << "saturation repeats within one window are one event";
  // After a window's worth of traffic the limiter re-opens.
  for (int i = 0; i < 16; ++i) ctl.on_response();
  EXPECT_TRUE(ctl.on_congestion());
  EXPECT_LT(ctl.window(), 16u);
}

TEST(WindowController, RoundTrackersFollowTrajectory) {
  WindowController ctl(adaptive_config());
  for (int i = 0; i < 8; ++i) ctl.on_response();  // 8 -> 16
  EXPECT_TRUE(ctl.on_loss(ctl.on_send()));        // -> 8
  EXPECT_EQ(ctl.round_min(), 8u);
  EXPECT_EQ(ctl.round_max(), 16u);

  // A new round starts its trackers from the carried-over window.
  ctl.begin_round();
  EXPECT_EQ(ctl.round_min(), 8u);
  EXPECT_EQ(ctl.round_max(), 8u);
  for (int i = 0; i < 100; ++i) ctl.on_response();
  EXPECT_EQ(ctl.round_max(), ctl.window());
}

}  // namespace
}  // namespace erasmus::attest
