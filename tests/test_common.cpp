// Tests for common utilities: hex codec, byte helpers, checked serde.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/hex.h"
#include "common/serde.h"

namespace erasmus {
namespace {

TEST(Hex, EncodesKnownBytes) {
  EXPECT_EQ(to_hex(Bytes{0xde, 0xad, 0xbe, 0xef}), "deadbeef");
  EXPECT_EQ(to_hex(Bytes{0x00}), "00");
  EXPECT_EQ(to_hex(Bytes{}), "");
}

TEST(Hex, DecodesLowerUpperAndPrefixed) {
  EXPECT_EQ(from_hex("deadbeef").value(), (Bytes{0xde, 0xad, 0xbe, 0xef}));
  EXPECT_EQ(from_hex("DEADBEEF").value(), (Bytes{0xde, 0xad, 0xbe, 0xef}));
  EXPECT_EQ(from_hex("0xDeAdBeEf").value(), (Bytes{0xde, 0xad, 0xbe, 0xef}));
  EXPECT_EQ(from_hex("").value(), Bytes{});
}

TEST(Hex, RejectsMalformedInput) {
  EXPECT_FALSE(from_hex("abc").has_value());   // odd length
  EXPECT_FALSE(from_hex("zz").has_value());    // non-hex
  EXPECT_FALSE(from_hex("0x1").has_value());   // odd after prefix
}

TEST(Hex, RoundTripsRandomishBuffers) {
  Bytes buf;
  for (int i = 0; i < 257; ++i) buf.push_back(static_cast<uint8_t>(i * 37));
  EXPECT_EQ(from_hex(to_hex(buf)).value(), buf);
}

TEST(Hex, AbbreviatesLikeThePaperFigures) {
  // Fig. 3 shows digests as 0xe4b...ce.
  const Bytes b = from_hex("e4b1223344556677ce").value();
  EXPECT_EQ(hex_abbrev(b), "0xe4b...ce");
  EXPECT_EQ(hex_abbrev(Bytes{0xab}), "0xab");
}

TEST(Bytes, ConcatAndAppend) {
  const Bytes a{1, 2}, b{3};
  EXPECT_EQ(concat(a, b), (Bytes{1, 2, 3}));
  Bytes c{9};
  append(c, a);
  EXPECT_EQ(c, (Bytes{9, 1, 2}));
}

TEST(Bytes, EqualComparesContent) {
  EXPECT_TRUE(equal(Bytes{1, 2}, Bytes{1, 2}));
  EXPECT_FALSE(equal(Bytes{1, 2}, Bytes{1, 3}));
  EXPECT_FALSE(equal(Bytes{1, 2}, Bytes{1, 2, 3}));
  EXPECT_TRUE(equal(Bytes{}, Bytes{}));
}

TEST(Bytes, BytesOfString) {
  EXPECT_EQ(bytes_of("ab"), (Bytes{'a', 'b'}));
  EXPECT_TRUE(bytes_of("").empty());
}

TEST(Serde, WritesLittleEndian) {
  ByteWriter w;
  w.u16(0x0102);
  w.u32(0x03040506);
  w.u64(0x0708090a0b0c0d0eULL);
  const Bytes expected = {0x02, 0x01, 0x06, 0x05, 0x04, 0x03,
                          0x0e, 0x0d, 0x0c, 0x0b, 0x0a, 0x09, 0x08, 0x07};
  EXPECT_EQ(w.bytes(), expected);
}

TEST(Serde, ReaderRoundTripsAllWidths) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.var_bytes(Bytes{1, 2, 3});

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.var_bytes(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.done());
}

TEST(Serde, ReaderDetectsTruncation) {
  ByteWriter w;
  w.u32(42);
  Bytes data = w.take();
  data.pop_back();
  ByteReader r(data);
  (void)r.u32();
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
}

TEST(Serde, ReaderStaysFailedAfterFirstError) {
  ByteReader r(Bytes{0x01});
  (void)r.u32();  // fails
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0);  // subsequent reads return zero
  EXPECT_FALSE(r.ok());
}

TEST(Serde, VarBytesWithHugeLengthPrefixFails) {
  ByteWriter w;
  w.u32(0xffffffffu);  // length prefix far beyond the buffer
  w.u8(1);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.var_bytes().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Serde, EmptyVarBytesRoundTrip) {
  ByteWriter w;
  w.var_bytes({});
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.var_bytes().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serde, RemainingTracksConsumption) {
  ByteWriter w;
  w.u64(1);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

// Property: round-trip of every u64 bit pattern sampled at byte boundaries.
class SerdeU64Property : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerdeU64Property, RoundTrips) {
  ByteWriter w;
  w.u64(GetParam());
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u64(), GetParam());
  EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, SerdeU64Property,
    ::testing::Values(0ull, 1ull, 0xffull, 0xff00ull, 0xffffffffull,
                      0x8000000000000000ull, 0xffffffffffffffffull,
                      0x0123456789abcdefull, 1492453673ull));

}  // namespace
}  // namespace erasmus
