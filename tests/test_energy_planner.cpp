// Tests for the energy model and the QoA planner (the "burden" axis of
// §3.1: lower T_M/T_C buy QoA with computation, power and communication).
#include <gtest/gtest.h>

#include "analysis/qoa_planner.h"
#include "sim/energy.h"

namespace erasmus {
namespace {

using analysis::DeviceSpec;
using analysis::QoAGoal;
using sim::Duration;

TEST(Energy, PowerTimesTime) {
  sim::EnergyProfile p{"test", /*active=*/10.0, /*radio=*/100.0,
                       /*sleep=*/0.1};
  EXPECT_NEAR(p.active_energy(Duration::seconds(2)).millijoules(), 20.0,
              1e-9);
  EXPECT_NEAR(p.radio_energy(Duration::millis(10)).millijoules(), 1.0, 1e-9);
  EXPECT_NEAR(p.sleep_energy(Duration::hours(1)).joules(), 0.36, 1e-9);
}

TEST(Energy, MeasurementDominatedByTmOnLowEnd) {
  const auto device = sim::DeviceProfile::msp430_8mhz();
  const auto energy = sim::EnergyProfile::msp430();
  const auto at = [&](uint64_t tm_min) {
    return sim::attestation_energy(
               device, energy, crypto::MacAlgo::kHmacSha256, 10 * 1024, 73,
               Duration::minutes(tm_min), Duration::hours(1),
               Duration::hours(24))
        .measurement.millijoules();
  };
  EXPECT_GT(at(5), at(10) * 1.8) << "halving T_M ~doubles measurement energy";
  EXPECT_GT(at(10), at(60) * 5.0);
}

TEST(Energy, CommunicationScalesWithCollectionRate) {
  const auto device = sim::DeviceProfile::msp430_8mhz();
  const auto energy = sim::EnergyProfile::msp430();
  const auto comm = [&](uint64_t tc_hours) {
    return sim::attestation_energy(device, energy,
                                   crypto::MacAlgo::kHmacSha256, 10 * 1024,
                                   73, Duration::minutes(10),
                                   Duration::hours(tc_hours),
                                   Duration::hours(24))
        .communication.microjoules;
  };
  EXPECT_GT(comm(1), comm(12) * 2.0);
}

TEST(Energy, BatteryLifeMonotoneInTm) {
  const auto device = sim::DeviceProfile::msp430_8mhz();
  const auto energy = sim::EnergyProfile::msp430();
  double prev = 0.0;
  for (uint64_t tm_min : {1ull, 5ull, 15ull, 60ull}) {
    const double days = sim::battery_life_days(
        device, energy, crypto::MacAlgo::kHmacSha256, 10 * 1024, 73,
        Duration::minutes(tm_min), Duration::hours(1), 2400.0);
    EXPECT_GT(days, prev) << "tm=" << tm_min;
    prev = days;
  }
}

TEST(Energy, RejectsZeroPeriods) {
  const auto device = sim::DeviceProfile::msp430_8mhz();
  const auto energy = sim::EnergyProfile::msp430();
  EXPECT_THROW(sim::attestation_energy(device, energy,
                                       crypto::MacAlgo::kHmacSha256, 1024, 73,
                                       Duration(0), Duration::hours(1),
                                       Duration::hours(24)),
               std::invalid_argument);
}

TEST(Planner, MeetsDetectionGoal) {
  QoAGoal goal;
  goal.min_dwell = Duration::minutes(30);
  goal.min_detection_prob = 0.9;
  goal.max_detection_latency = Duration::hours(4);
  const auto plan = analysis::plan_qoa(goal, DeviceSpec{});
  ASSERT_TRUE(plan.has_value());
  EXPECT_GE(plan->detection_prob, 0.9);
  EXPECT_LE(plan->worst_case_latency.ns(), Duration::hours(4).ns());
  EXPECT_GE(plan->buffer_slots * plan->tm.ns(), plan->tc.ns())
      << "buffer sizing satisfies T_C <= n*T_M";
}

TEST(Planner, PrefersCheaperConfigurationsWithinGoal) {
  // With a lax goal the planner should pick large T_M/T_C (less energy).
  QoAGoal lax;
  lax.min_dwell = Duration::hours(12);
  lax.min_detection_prob = 0.5;
  lax.max_detection_latency = Duration::hours(48);
  const auto lax_plan = analysis::plan_qoa(lax, DeviceSpec{});
  QoAGoal strict = lax;
  strict.min_dwell = Duration::minutes(10);
  strict.min_detection_prob = 0.95;
  strict.max_detection_latency = Duration::hours(2);
  const auto strict_plan = analysis::plan_qoa(strict, DeviceSpec{});
  ASSERT_TRUE(lax_plan.has_value());
  ASSERT_TRUE(strict_plan.has_value());
  EXPECT_GT(lax_plan->tm.ns(), strict_plan->tm.ns());
  EXPECT_GT(lax_plan->battery_days, strict_plan->battery_days);
}

TEST(Planner, InfeasibleGoalReturnsNothing) {
  QoAGoal impossible;
  impossible.min_dwell = Duration::minutes(1);
  impossible.min_detection_prob = 0.99;  // needs T_M ~ 1 min
  impossible.min_battery_days = 10000.0; // but battery must last 27 years
  impossible.battery_mwh = 100.0;
  EXPECT_FALSE(analysis::plan_qoa(impossible, DeviceSpec{}).has_value());
}

TEST(Planner, LatencyBoundRespected) {
  QoAGoal goal;
  goal.min_dwell = Duration::hours(2);
  goal.min_detection_prob = 0.8;
  goal.max_detection_latency = Duration::hours(1);
  const auto plan = analysis::plan_qoa(goal, DeviceSpec{});
  if (plan) {
    EXPECT_LE((plan->tm + plan->tc).ns(), Duration::hours(1).ns());
  }
}

TEST(Planner, EvaluateReportsDuty) {
  const auto plan =
      analysis::evaluate_qoa(Duration::minutes(10), Duration::hours(1),
                             DeviceSpec{});
  EXPECT_EQ(plan.buffer_slots, 6u);
  EXPECT_GT(plan.measurement_duty, 0.0);
  EXPECT_LT(plan.measurement_duty, 0.05)
      << "7 s of hashing per 10 min is ~1.2% duty";
  EXPECT_GT(plan.battery_days, 0.0);
}

// Property sweep: planner output always satisfies its own goal.
struct GoalCase {
  uint64_t dwell_min;
  double prob;
  uint64_t latency_hours;
};

class PlannerSoundness : public ::testing::TestWithParam<GoalCase> {};

TEST_P(PlannerSoundness, PlanSatisfiesGoal) {
  const auto& p = GetParam();
  QoAGoal goal;
  goal.min_dwell = Duration::minutes(p.dwell_min);
  goal.min_detection_prob = p.prob;
  goal.max_detection_latency = Duration::hours(p.latency_hours);
  const auto plan = analysis::plan_qoa(goal, DeviceSpec{});
  if (!plan) return;  // infeasible is acceptable; soundness is what matters
  EXPECT_GE(attest::detection_prob_regular(goal.min_dwell, plan->tm),
            goal.min_detection_prob);
  EXPECT_LE((plan->tm + plan->tc).ns(), goal.max_detection_latency.ns());
}

INSTANTIATE_TEST_SUITE_P(
    Goals, PlannerSoundness,
    ::testing::Values(GoalCase{30, 0.9, 4}, GoalCase{60, 0.5, 8},
                      GoalCase{10, 0.99, 2}, GoalCase{120, 0.8, 24},
                      GoalCase{5, 0.5, 1}));

}  // namespace
}  // namespace erasmus
