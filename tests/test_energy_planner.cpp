// Tests for the energy model and the QoA planner (the "burden" axis of
// §3.1: lower T_M/T_C buy QoA with computation, power and communication).
#include <gtest/gtest.h>

#include <limits>

#include "analysis/qoa_planner.h"
#include "energy/planner.h"
#include "sim/energy.h"

namespace erasmus {
namespace {

using analysis::DeviceSpec;
using analysis::QoAGoal;
using sim::Duration;

TEST(Energy, PowerTimesTime) {
  sim::EnergyProfile p{"test", /*active=*/10.0, /*radio=*/100.0,
                       /*sleep=*/0.1};
  EXPECT_NEAR(p.active_energy(Duration::seconds(2)).millijoules(), 20.0,
              1e-9);
  EXPECT_NEAR(p.radio_energy(Duration::millis(10)).millijoules(), 1.0, 1e-9);
  EXPECT_NEAR(p.sleep_energy(Duration::hours(1)).joules(), 0.36, 1e-9);
}

TEST(Energy, MeasurementDominatedByTmOnLowEnd) {
  const auto device = sim::DeviceProfile::msp430_8mhz();
  const auto energy = sim::EnergyProfile::msp430();
  const auto at = [&](uint64_t tm_min) {
    return sim::attestation_energy(
               device, energy, crypto::MacAlgo::kHmacSha256, 10 * 1024, 73,
               Duration::minutes(tm_min), Duration::hours(1),
               Duration::hours(24))
        .measurement.millijoules();
  };
  EXPECT_GT(at(5), at(10) * 1.8) << "halving T_M ~doubles measurement energy";
  EXPECT_GT(at(10), at(60) * 5.0);
}

TEST(Energy, CommunicationScalesWithCollectionRate) {
  const auto device = sim::DeviceProfile::msp430_8mhz();
  const auto energy = sim::EnergyProfile::msp430();
  const auto comm = [&](uint64_t tc_hours) {
    return sim::attestation_energy(device, energy,
                                   crypto::MacAlgo::kHmacSha256, 10 * 1024,
                                   73, Duration::minutes(10),
                                   Duration::hours(tc_hours),
                                   Duration::hours(24))
        .communication.microjoules;
  };
  EXPECT_GT(comm(1), comm(12) * 2.0);
}

TEST(Energy, BatteryLifeMonotoneInTm) {
  const auto device = sim::DeviceProfile::msp430_8mhz();
  const auto energy = sim::EnergyProfile::msp430();
  double prev = 0.0;
  for (uint64_t tm_min : {1ull, 5ull, 15ull, 60ull}) {
    const double days = sim::battery_life_days(
        device, energy, crypto::MacAlgo::kHmacSha256, 10 * 1024, 73,
        Duration::minutes(tm_min), Duration::hours(1), 2400.0);
    EXPECT_GT(days, prev) << "tm=" << tm_min;
    prev = days;
  }
}

TEST(Energy, RejectsZeroPeriods) {
  const auto device = sim::DeviceProfile::msp430_8mhz();
  const auto energy = sim::EnergyProfile::msp430();
  EXPECT_THROW(sim::attestation_energy(device, energy,
                                       crypto::MacAlgo::kHmacSha256, 1024, 73,
                                       Duration(0), Duration::hours(1),
                                       Duration::hours(24)),
               std::invalid_argument);
}

TEST(Planner, MeetsDetectionGoal) {
  QoAGoal goal;
  goal.min_dwell = Duration::minutes(30);
  goal.min_detection_prob = 0.9;
  goal.max_detection_latency = Duration::hours(4);
  const auto plan = analysis::plan_qoa(goal, DeviceSpec{});
  ASSERT_TRUE(plan.has_value());
  EXPECT_GE(plan->detection_prob, 0.9);
  EXPECT_LE(plan->worst_case_latency.ns(), Duration::hours(4).ns());
  EXPECT_GE(plan->buffer_slots * plan->tm.ns(), plan->tc.ns())
      << "buffer sizing satisfies T_C <= n*T_M";
}

TEST(Planner, PrefersCheaperConfigurationsWithinGoal) {
  // With a lax goal the planner should pick large T_M/T_C (less energy).
  QoAGoal lax;
  lax.min_dwell = Duration::hours(12);
  lax.min_detection_prob = 0.5;
  lax.max_detection_latency = Duration::hours(48);
  const auto lax_plan = analysis::plan_qoa(lax, DeviceSpec{});
  QoAGoal strict = lax;
  strict.min_dwell = Duration::minutes(10);
  strict.min_detection_prob = 0.95;
  strict.max_detection_latency = Duration::hours(2);
  const auto strict_plan = analysis::plan_qoa(strict, DeviceSpec{});
  ASSERT_TRUE(lax_plan.has_value());
  ASSERT_TRUE(strict_plan.has_value());
  EXPECT_GT(lax_plan->tm.ns(), strict_plan->tm.ns());
  EXPECT_GT(lax_plan->battery_days, strict_plan->battery_days);
}

TEST(Planner, InfeasibleGoalReturnsNothing) {
  QoAGoal impossible;
  impossible.min_dwell = Duration::minutes(1);
  impossible.min_detection_prob = 0.99;  // needs T_M ~ 1 min
  impossible.min_battery_days = 10000.0; // but battery must last 27 years
  impossible.battery_mwh = 100.0;
  EXPECT_FALSE(analysis::plan_qoa(impossible, DeviceSpec{}).has_value());
}

TEST(Planner, LatencyBoundRespected) {
  QoAGoal goal;
  goal.min_dwell = Duration::hours(2);
  goal.min_detection_prob = 0.8;
  goal.max_detection_latency = Duration::hours(1);
  const auto plan = analysis::plan_qoa(goal, DeviceSpec{});
  if (plan) {
    EXPECT_LE((plan->tm + plan->tc).ns(), Duration::hours(1).ns());
  }
}

TEST(Planner, EvaluateReportsDuty) {
  const auto plan =
      analysis::evaluate_qoa(Duration::minutes(10), Duration::hours(1),
                             DeviceSpec{});
  EXPECT_EQ(plan.buffer_slots, 6u);
  EXPECT_GT(plan.measurement_duty, 0.0);
  EXPECT_LT(plan.measurement_duty, 0.05)
      << "7 s of hashing per 10 min is ~1.2% duty";
  EXPECT_GT(plan.battery_days, 0.0);
}

// Property sweep: planner output always satisfies its own goal.
struct GoalCase {
  uint64_t dwell_min;
  double prob;
  uint64_t latency_hours;
};

class PlannerSoundness : public ::testing::TestWithParam<GoalCase> {};

TEST_P(PlannerSoundness, PlanSatisfiesGoal) {
  const auto& p = GetParam();
  QoAGoal goal;
  goal.min_dwell = Duration::minutes(p.dwell_min);
  goal.min_detection_prob = p.prob;
  goal.max_detection_latency = Duration::hours(p.latency_hours);
  const auto plan = analysis::plan_qoa(goal, DeviceSpec{});
  if (!plan) return;  // infeasible is acceptable; soundness is what matters
  EXPECT_GE(attest::detection_prob_regular(goal.min_dwell, plan->tm),
            goal.min_detection_prob);
  EXPECT_LE((plan->tm + plan->tc).ns(), goal.max_detection_latency.ns());
}

INSTANTIATE_TEST_SUITE_P(
    Goals, PlannerSoundness,
    ::testing::Values(GoalCase{30, 0.9, 4}, GoalCase{60, 0.5, 8},
                      GoalCase{10, 0.99, 2}, GoalCase{120, 0.8, 24},
                      GoalCase{5, 0.5, 1}));

// ---------------------------------------------------------------------------
// Runtime QoA-per-joule planner (energy::plan): the field operator's dual
// question -- not "cheapest config meeting a goal" but "most QoA per joule
// for the deployment I have".

energy::FleetModel field_fleet() {
  energy::FleetModel f;
  f.devices = 50;
  f.mean_degree = 6.0;
  f.mean_hops = 3.0;
  return f;
}

energy::Mission field_mission() {
  energy::Mission m;
  m.dwell = Duration::minutes(8);
  m.round_interval = Duration::minutes(30);
  m.rounds = 4;
  return m;
}

TEST(EnergyPlan, TmLandsOnDwell) {
  // QoA/J = reach * p(tm) / (a/tm + b) peaks exactly at tm = dwell
  // (planner.h header comment); a mains mission with a sane dwell must
  // pick it.
  const auto d = energy::plan(field_fleet(), field_mission());
  EXPECT_EQ(d.tm, Duration::minutes(8));
  EXPECT_NE(d.reasons.find("tm_matched_dwell"), std::string::npos)
      << d.reasons;
  EXPECT_DOUBLE_EQ(d.detection_prob, 1.0);
}

TEST(EnergyPlan, TmClampsToSaneRange) {
  energy::Mission m = field_mission();
  m.dwell = Duration::seconds(5);  // sub-floor dwell: nothing catches this
  auto d = energy::plan(field_fleet(), m);
  EXPECT_EQ(d.tm, Duration::minutes(1));
  EXPECT_NE(d.reasons.find("tm_clamped_floor"), std::string::npos);

  m.dwell = Duration::hours(4);  // dwell past the collection interval
  d = energy::plan(field_fleet(), m);
  EXPECT_EQ(d.tm, m.round_interval);
  EXPECT_NE(d.reasons.find("tm_clamped_interval"), std::string::npos);
}

TEST(EnergyPlan, BackendFollowsDeployment) {
  energy::Mission m = field_mission();
  m.infrastructure = true;
  EXPECT_EQ(energy::plan(field_fleet(), m).backend,
            energy::BackendChoice::kDirect);

  m.infrastructure = false;
  m.loss = 0.12;
  EXPECT_EQ(energy::plan(field_fleet(), m).backend,
            energy::BackendChoice::kScoped)
      << "lossy field: retries must not re-flood";

  m.loss = 0.0;
  EXPECT_EQ(energy::plan(field_fleet(), m).backend,
            energy::BackendChoice::kOverlay);
}

TEST(EnergyPlan, AdaptiveWindowOnlyForCongestionScaleFleets) {
  // AIMD manages relay-queue congestion, not loss -- and a small adaptive
  // window dispatches a round as many batches, each one a swarm-wide
  // flood. A small lossy fleet must keep the default window.
  energy::Mission m = field_mission();
  m.loss = 0.12;
  energy::FleetModel f = field_fleet();
  auto d = energy::plan(f, m);
  EXPECT_FALSE(d.adaptive_window);
  EXPECT_NE(d.reasons.find("window_default"), std::string::npos);

  f.devices = 200;
  d = energy::plan(f, m);
  EXPECT_TRUE(d.adaptive_window);
  EXPECT_NE(d.reasons.find("window_adaptive_fleet"), std::string::npos);
}

TEST(EnergyPlan, BudgetRaisesTm) {
  energy::Mission m = field_mission();
  m.loss = 0.12;
  const auto unconstrained = energy::plan(field_fleet(), m);

  // A budget below the tm=dwell bill forces fewer measurements: tm walks
  // up from the dwell until the predicted bill fits.
  m.device_budget = energy::predict_device_energy(
                        field_fleet(), m, unconstrained.tm,
                        unconstrained.backend) *
                    0.8;
  const auto d = energy::plan(field_fleet(), m);
  EXPECT_GT(d.tm, unconstrained.tm);
  EXPECT_NE(d.reasons.find("tm_raised_for_budget"), std::string::npos)
      << d.reasons;
  EXPECT_EQ(d.reasons.find("budget_infeasible"), std::string::npos)
      << "a 0.8x budget is reachable by raising tm: " << d.reasons;
  EXPECT_LE(energy::to_nanojoules(d.predicted_device_energy),
            energy::to_nanojoules(m.device_budget));
}

TEST(EnergyPlan, ImpossibleBudgetIsCalledOut) {
  energy::Mission m = field_mission();
  m.device_budget = sim::Energy{1.0};  // 1 uJ: even sleeping costs more
  const auto d = energy::plan(field_fleet(), m);
  EXPECT_NE(d.reasons.find("budget_infeasible"), std::string::npos)
      << d.reasons;
}

TEST(EnergyPredict, EnergyFallsAsTmRises) {
  // E(tm) = a/tm + b: each tm doubling sheds measurement AND report bytes
  // (a report carries only what the store accumulated since last round).
  const auto fleet = field_fleet();
  const auto m = field_mission();
  uint64_t prev = std::numeric_limits<uint64_t>::max();
  for (uint64_t tm_min : {2ull, 4ull, 8ull, 16ull}) {
    const uint64_t nj = energy::to_nanojoules(energy::predict_device_energy(
        fleet, m, Duration::minutes(tm_min), energy::BackendChoice::kScoped));
    EXPECT_LT(nj, prev) << "tm=" << tm_min;
    prev = nj;
  }
}

TEST(EnergyPredict, QoaPerJoulePeaksAtDwell) {
  const auto fleet = field_fleet();
  const auto m = field_mission();
  const auto qpj = [&](uint64_t tm_min) {
    return energy::predict_qoa_per_joule(fleet, m, Duration::minutes(tm_min),
                                         energy::BackendChoice::kScoped);
  };
  EXPECT_GT(qpj(8), qpj(4)) << "tm < dwell: same detections, more joules";
  EXPECT_GT(qpj(8), qpj(16)) << "tm > dwell: detection prob decays faster";
}

TEST(EnergyPredict, ReachDegradesWithLossButRetriesHelp) {
  const auto fleet = field_fleet();
  energy::Mission m = field_mission();
  EXPECT_DOUBLE_EQ(
      energy::predict_reach(fleet, m, energy::BackendChoice::kDirect), 1.0);
  EXPECT_DOUBLE_EQ(
      energy::predict_reach(fleet, m, energy::BackendChoice::kScoped), 1.0)
      << "lossless radio reaches everyone";
  m.loss = 0.12;
  const double lossy =
      energy::predict_reach(fleet, m, energy::BackendChoice::kScoped);
  EXPECT_LT(lossy, 1.0);
  m.loss = 0.3;
  EXPECT_LT(energy::predict_reach(fleet, m, energy::BackendChoice::kScoped),
            lossy);
}

}  // namespace
}  // namespace erasmus
