// Tests for the measurement record M_t = <t, H(mem_t), MAC_K(t, H(mem_t))>.
#include <gtest/gtest.h>

#include "attest/measurement.h"
#include "crypto/hmac.h"

namespace erasmus::attest {
namespace {

using crypto::MacAlgo;

Bytes test_key() { return bytes_of("0123456789abcdef0123456789abcdef"); }

TEST(Measurement, StructureMatchesPaperDefinition) {
  const Bytes mem = bytes_of("device memory contents at time t");
  const uint64_t t = 1492453673;  // Fig. 3's example timestamp
  const Measurement m =
      compute_measurement(MacAlgo::kHmacSha256, test_key(), mem, t);

  EXPECT_EQ(m.timestamp, t);
  EXPECT_EQ(m.digest, crypto::Hash::digest(crypto::HashAlgo::kSha256, mem));
  EXPECT_EQ(m.mac, crypto::Hmac::compute(crypto::HashAlgo::kSha256, test_key(),
                                         measurement_mac_input(t, m.digest)));
}

TEST(Measurement, VerifyAcceptsGenuine) {
  const Measurement m = compute_measurement(MacAlgo::kHmacSha256, test_key(),
                                            bytes_of("mem"), 100);
  EXPECT_TRUE(verify_measurement(MacAlgo::kHmacSha256, test_key(), m));
}

TEST(Measurement, VerifyRejectsAnyFieldTamper) {
  const Measurement base = compute_measurement(
      MacAlgo::kHmacSha256, test_key(), bytes_of("mem"), 100);

  Measurement t_changed = base;
  t_changed.timestamp = 101;  // the timestamp is MAC-bound
  EXPECT_FALSE(verify_measurement(MacAlgo::kHmacSha256, test_key(), t_changed));

  Measurement d_changed = base;
  d_changed.digest[0] ^= 1;
  EXPECT_FALSE(verify_measurement(MacAlgo::kHmacSha256, test_key(), d_changed));

  Measurement m_changed = base;
  m_changed.mac[0] ^= 1;
  EXPECT_FALSE(verify_measurement(MacAlgo::kHmacSha256, test_key(), m_changed));
}

TEST(Measurement, VerifyRejectsWrongKey) {
  const Measurement m = compute_measurement(MacAlgo::kHmacSha256, test_key(),
                                            bytes_of("mem"), 100);
  EXPECT_FALSE(
      verify_measurement(MacAlgo::kHmacSha256, bytes_of("wrong key"), m));
}

TEST(Measurement, SerializeRoundTrips) {
  for (auto algo : crypto::all_mac_algos()) {
    const Measurement m =
        compute_measurement(algo, test_key(), bytes_of("mem"), 42);
    const auto back = Measurement::deserialize(m.serialize());
    ASSERT_TRUE(back.has_value()) << crypto::to_string(algo);
    EXPECT_EQ(*back, m);
  }
}

TEST(Measurement, DeserializeRejectsTruncationAndTrailing) {
  const Measurement m = compute_measurement(MacAlgo::kHmacSha256, test_key(),
                                            bytes_of("mem"), 42);
  Bytes wire = m.serialize();
  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_FALSE(Measurement::deserialize(truncated).has_value());
  Bytes padded = wire;
  padded.push_back(0);
  EXPECT_FALSE(Measurement::deserialize(padded).has_value());
  EXPECT_FALSE(Measurement::deserialize(Bytes{}).has_value());
}

TEST(Measurement, WireSizeMatchesSerializedLength) {
  for (auto algo : crypto::all_mac_algos()) {
    const Measurement m =
        compute_measurement(algo, test_key(), bytes_of("mem"), 1);
    EXPECT_EQ(m.serialize().size(), Measurement::wire_size(algo))
        << crypto::to_string(algo);
  }
}

TEST(Measurement, HashPairingFollowsConstruction) {
  EXPECT_EQ(hash_for(MacAlgo::kHmacSha1), crypto::HashAlgo::kSha1);
  EXPECT_EQ(hash_for(MacAlgo::kHmacSha256), crypto::HashAlgo::kSha256);
  EXPECT_EQ(hash_for(MacAlgo::kKeyedBlake2s), crypto::HashAlgo::kBlake2s);
}

TEST(Measurement, MacInputBindsTimestampLittleEndian) {
  const Bytes digest(32, 0xaa);
  const Bytes input = measurement_mac_input(0x0102030405060708ull, digest);
  ASSERT_EQ(input.size(), 8 + 32u);
  EXPECT_EQ(input[0], 0x08);
  EXPECT_EQ(input[7], 0x01);
  EXPECT_EQ(Bytes(input.begin() + 8, input.end()), digest);
}

TEST(MeasurementProtected, MatchesHostComputation) {
  hw::SmartPlusArch arch(test_key(), 4096, 1024, 512);
  arch.memory().write(arch.app_region(), 0, bytes_of("application image"),
                      /*privileged=*/false);
  const Measurement via_arch = compute_measurement_protected(
      arch, MacAlgo::kHmacSha256, arch.app_region(), 7);

  const ByteView mem = arch.memory().view(arch.app_region(), true);
  const Measurement direct =
      compute_measurement(MacAlgo::kHmacSha256, test_key(), mem, 7);
  EXPECT_EQ(via_arch, direct);
}

TEST(MeasurementProtected, SeesFullAttestedRegion) {
  hw::SmartPlusArch arch(test_key(), 4096, 1024, 512);
  const Measurement before = compute_measurement_protected(
      arch, MacAlgo::kHmacSha256, arch.app_region(), 1);
  // Flip one byte at the END of the region; the digest must change.
  arch.memory().write(arch.app_region(), 1023, Bytes{0xff}, false);
  const Measurement after = compute_measurement_protected(
      arch, MacAlgo::kHmacSha256, arch.app_region(), 1);
  EXPECT_NE(before.digest, after.digest);
}

TEST(MeasurementProtected, WorksOnHydraAfterBoot) {
  hw::HydraArch arch(test_key(), 2048, 512);
  arch.secure_boot();
  const Measurement m = compute_measurement_protected(
      arch, MacAlgo::kKeyedBlake2s, arch.app_region(), 9);
  EXPECT_TRUE(verify_measurement(MacAlgo::kKeyedBlake2s, test_key(), m));
}

// Property: measurements over distinct (memory, t, key) tuples are unique
// -- the paper relies on this ("unique for every device and every
// timestamp value").
class MeasurementUniqueness : public ::testing::TestWithParam<MacAlgo> {};

TEST_P(MeasurementUniqueness, DistinctAcrossTimeMemoryAndKey) {
  const auto algo = GetParam();
  const Measurement a =
      compute_measurement(algo, test_key(), bytes_of("mem"), 1);
  const Measurement b =
      compute_measurement(algo, test_key(), bytes_of("mem"), 2);
  const Measurement c =
      compute_measurement(algo, test_key(), bytes_of("mem!"), 1);
  const Measurement d = compute_measurement(
      algo, bytes_of("other-device-key!"), bytes_of("mem"), 1);
  EXPECT_NE(a.mac, b.mac);
  EXPECT_NE(a.mac, c.mac);
  EXPECT_NE(a.mac, d.mac);
  EXPECT_NE(a.digest, c.digest);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, MeasurementUniqueness,
                         ::testing::ValuesIn(crypto::all_mac_algos()));

}  // namespace
}  // namespace erasmus::attest
