// Paper-claims integration suite: one test per falsifiable claim the paper
// makes, each exercised end-to-end through the public API. This is the
// repository's executable summary of EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "analysis/detection.h"
#include "attest/prover.h"
#include "attest/qoa.h"
#include "attest/verifier.h"
#include "hw/code_size.h"
#include "hw/synthesis.h"
#include "malware/campaign.h"
#include "malware/malware.h"
#include "swarm/mobility.h"
#include "swarm/protocols.h"

namespace erasmus {
namespace {

using attest::CollectRequest;
using attest::Prover;
using attest::ProverConfig;
using attest::RegularScheduler;
using attest::Verifier;
using attest::VerifierConfig;
using crypto::MacAlgo;
using sim::Duration;
using sim::Time;

Bytes test_key() { return bytes_of("0123456789abcdef0123456789abcdef"); }

constexpr size_t kRecordBytes = 1 + 8 + 32 + 32;

struct Rig {
  sim::EventQueue queue;
  hw::SmartPlusArch arch;
  Prover prover;
  Verifier verifier;

  explicit Rig(ProverConfig pc = {}, size_t app_bytes = 2048)
      : arch(test_key(), 4096, app_bytes, 32 * kRecordBytes),
        prover(queue, arch, arch.app_region(), arch.store_region(),
               std::make_unique<RegularScheduler>(Duration::minutes(10)),
               pc),
        verifier([&] {
          VerifierConfig vc;
          vc.algo = pc.algo;
          vc.key = test_key();
          vc.golden_digest = crypto::Hash::digest(
              attest::hash_for(pc.algo),
              arch.memory().view(arch.app_region(), true));
          return vc;
        }()) {}
};

// §Abstract/§3: "verifier imposes only negligible real-time burden on
// prover" -- collection costs no cryptography and finishes in microseconds
// even while measurement costs hundreds of ms.
TEST(PaperClaims, CollectionBurdenNegligible) {
  ProverConfig pc;
  pc.profile = sim::DeviceProfile::imx6_1ghz();
  pc.algo = MacAlgo::kKeyedBlake2s;
  Rig rig(pc, 1 << 20);
  rig.prover.start();
  rig.queue.run_until(Time::zero() + Duration::minutes(61));

  const auto collect = rig.prover.handle_collect(CollectRequest{6});
  const auto measurement_cost = pc.profile.measurement_time(pc.algo, 1 << 20);
  EXPECT_LT(collect.processing.ns() * 100, measurement_cost.ns());
}

// §Abstract: "strictly better quality-of-service than prior attestation
// techniques, because verifier obtains prover's entire history" -- one
// collection sees every measurement since the last one.
TEST(PaperClaims, CollectionReturnsEntireHistorySinceLast) {
  Rig rig;
  rig.prover.start();
  rig.queue.run_until(Time::zero() + Duration::hours(2));
  const auto res = rig.prover.handle_collect(CollectRequest{12});
  ASSERT_EQ(res.response.measurements.size(), 12u);
  for (size_t i = 0; i + 1 < 12; ++i) {
    EXPECT_EQ(res.response.measurements[i].timestamp,
              res.response.measurements[i + 1].timestamp + 600);
  }
}

// §3: ERASMUS "de-couples frequency of prover checking from frequency of
// prover measurements" -- changing T_C does not change what the prover does.
TEST(PaperClaims, TcIndependentOfProverBehaviour) {
  Rig a, b;
  a.prover.start();
  b.prover.start();
  // a collected every 30 min, b once at the end.
  for (int i = 1; i <= 4; ++i) {
    a.queue.run_until(Time::zero() + Duration::minutes(30) * i);
    (void)a.prover.handle_collect(CollectRequest{4});
  }
  b.queue.run_until(Time::zero() + Duration::hours(2));
  EXPECT_EQ(a.prover.stats().measurements, b.prover.stats().measurements);
  EXPECT_EQ(a.prover.stats().total_measurement_time.ns(),
            b.prover.stats().total_measurement_time.ns());
}

// §3: "no need to authenticate verifier's requests" for plain collection --
// an unauthenticated (even attacker-sent) collect triggers no computation,
// so there is no DoS amplification.
TEST(PaperClaims, CollectionHasNoDosSurface) {
  Rig rig;
  rig.prover.start();
  rig.queue.run_until(Time::zero() + Duration::minutes(61));
  const auto before = rig.prover.stats().total_measurement_time;
  for (int i = 0; i < 1000; ++i) {
    (void)rig.prover.handle_collect(CollectRequest{16});
  }
  EXPECT_EQ(rig.prover.stats().total_measurement_time.ns(), before.ns())
      << "1000 unauthenticated collects triggered zero crypto work";
}

// §3.1: freshness f in [0, T_M], expected T_M/2 over random collection
// phases.
TEST(PaperClaims, FreshnessAveragesHalfTm) {
  Rig rig;
  rig.prover.start();
  const uint64_t t0 =
      rig.prover.scheduler().next_interval(0) / Duration::seconds(1);
  rig.verifier.set_schedule(&rig.prover.scheduler(), t0);

  sim::Rng rng(5);
  uint64_t freshness_sum = 0;
  size_t samples = 0;
  Time at = Time::zero() + Duration::hours(1);
  for (int i = 0; i < 200; ++i) {
    at = at + Duration(rng.next_below(Duration::minutes(30).ns()));
    rig.queue.run_until(at);
    const auto res = rig.prover.handle_collect(CollectRequest{4});
    const auto report =
        rig.verifier.verify_collection(res.response, rig.queue.now());
    ASSERT_TRUE(report.freshness.has_value());
    EXPECT_LE(report.freshness->ns(), Duration::minutes(10).ns());
    freshness_sum += report.freshness->ns();
    ++samples;
  }
  const double mean = static_cast<double>(freshness_sum) / samples;
  EXPECT_NEAR(mean, static_cast<double>(Duration::minutes(5).ns()),
              static_cast<double>(Duration::minutes(1).ns()));
}

// §4.1/Fig. 6: measurement run-time linear in memory, ERASMUS ~= on-demand
// (difference is exactly the request-authentication overhead).
TEST(PaperClaims, Fig6ShapeLinearAndErasmusNoSlower) {
  const auto p = sim::DeviceProfile::msp430_8mhz();
  for (auto algo : {MacAlgo::kHmacSha256, MacAlgo::kKeyedBlake2s}) {
    const double t2 = p.measurement_time(algo, 2048).to_seconds();
    const double t4 = p.measurement_time(algo, 4096).to_seconds();
    const double t8 = p.measurement_time(algo, 8192).to_seconds();
    EXPECT_NEAR(t8 - t4, 2 * (t4 - t2), 0.05 * t8);  // linear
    EXPECT_LE(p.measurement_time(algo, 8192).ns(),
              p.ondemand_time(algo, 8192).ns());
  }
}

// Table 1: "ERASMUS requires slightly less ROM than on-demand attestation"
// (SMART+), and ~1% more on HYDRA (timer driver).
TEST(PaperClaims, Table1RomOrderings) {
  using hw::ArchKind;
  using hw::AttestMode;
  const auto& smart = hw::CodeSizeModel::for_arch(ArchKind::kSmartPlus);
  for (auto algo : crypto::all_mac_algos()) {
    EXPECT_LT(*smart.executable_kb(AttestMode::kErasmus, algo),
              *smart.executable_kb(AttestMode::kOnDemand, algo));
  }
  const auto& hydra = hw::CodeSizeModel::for_arch(ArchKind::kHydra);
  const double od =
      *hydra.executable_kb(AttestMode::kOnDemand, MacAlgo::kHmacSha256);
  const double er =
      *hydra.executable_kb(AttestMode::kErasmus, MacAlgo::kHmacSha256);
  EXPECT_NEAR((er - od) / od, 0.01, 0.005);
}

// §4.1: "ERASMUS utilizes the same amount of registers and look-up tables
// as the on-demand attestation" and ~13%/14% over the unmodified core.
TEST(PaperClaims, SynthesisOverheads) {
  EXPECT_NEAR(hw::register_overhead_pct(), 13.0, 1.0);
  EXPECT_NEAR(hw::lut_overhead_pct(), 14.0, 1.0);
}

// Table 2: collection >= 3000x cheaper than the measurement it replaces
// (10 MB, BLAKE2s, i.MX6).
TEST(PaperClaims, Table2Factor3000) {
  const auto p = sim::DeviceProfile::imx6_1ghz();
  const auto collection = p.packet_construct + p.packet_send;
  const auto measurement =
      p.mac_time(MacAlgo::kKeyedBlake2s, 10ull << 20);
  EXPECT_GE(measurement.ns() / collection.ns(), 3000u);
}

// §1/§3: mobile malware that leaves before the next measurement escapes;
// with dwell > T_M it cannot.
TEST(PaperClaims, MobileMalwareDetectionBoundary) {
  for (const auto& [dwell_min, expect_detect] :
       std::vector<std::pair<uint64_t, bool>>{{3, false}, {25, true}}) {
    Rig rig;
    rig.prover.start();
    malware::MobileMalware mw(rig.queue, rig.prover);
    mw.schedule(Time::zero() + Duration::minutes(11),
                Duration::minutes(dwell_min));
    rig.queue.run_until(Time::zero() + Duration::hours(1));
    const auto res = rig.prover.handle_collect(CollectRequest{6});
    const auto report =
        rig.verifier.verify_collection(res.response, rig.queue.now());
    EXPECT_EQ(report.infection_detected, expect_detect)
        << "dwell=" << dwell_min << " min";
  }
}

// §3.5: irregular intervals strictly improve detection of schedule-aware
// malware (analytics + Monte Carlo agree).
TEST(PaperClaims, IrregularBeatsRegularForAwareMalware) {
  const Duration dwell = Duration::minutes(8);
  const double reg = attest::detection_prob_schedule_aware_regular(
      dwell, Duration::minutes(10));
  const double irr = attest::detection_prob_schedule_aware_irregular(
      dwell, Duration::minutes(5), Duration::minutes(15));
  const double irr_mc = analysis::mc_detection_schedule_aware_irregular(
      dwell, Duration::minutes(5), Duration::minutes(15), 100'000, 3);
  EXPECT_EQ(reg, 0.0);
  EXPECT_GT(irr, 0.25);
  EXPECT_NEAR(irr, irr_mc, 0.01);
}

// §6: ERASMUS tolerates mobility that breaks on-demand swarm attestation.
TEST(PaperClaims, SwarmMobilityAdvantage) {
  double od_total = 0, er_total = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    swarm::MobilityConfig mc;
    mc.devices = 20;
    mc.field_size = 100.0;
    mc.radio_range = 40.0;
    mc.speed_min = 6.0;
    mc.speed_max = 12.0;
    mc.seed = seed;
    swarm::RandomWaypointMobility mob(mc);
    swarm::SwarmProtocolConfig pc;
    pc.measurement_time = Duration::seconds(7);
    const Time t0 = Time::zero() + Duration::minutes(1);
    od_total += swarm::run_ondemand_round(mob, t0, 0, pc).coverage();
    er_total += swarm::run_erasmus_collection_round(mob, t0, 0, pc).coverage();
  }
  EXPECT_GT(er_total, od_total * 1.3);
}

// §5: a 10 KB measurement at 8 MHz takes ~7 s -- the availability concern
// motivating lenient scheduling is real in our model.
TEST(PaperClaims, SevenSecondMeasurementAt8Mhz) {
  const auto p = sim::DeviceProfile::msp430_8mhz();
  const double secs =
      p.mac_time(MacAlgo::kHmacSha256, 10 * 1024).to_seconds();
  EXPECT_GT(secs, 6.0);
  EXPECT_LT(secs, 8.0);
}

}  // namespace
}  // namespace erasmus
