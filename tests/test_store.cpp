// Tests for the rolling measurement store (paper §3.2, Fig. 3).
#include <gtest/gtest.h>

#include "attest/measurement_store.h"

namespace erasmus::attest {
namespace {

using crypto::MacAlgo;

Bytes test_key() { return bytes_of("0123456789abcdef0123456789abcdef"); }

Measurement make_m(uint64_t t) {
  return compute_measurement(MacAlgo::kHmacSha256, test_key(),
                             bytes_of("mem"), t);
}

struct StoreFixture {
  hw::DeviceMemory mem;
  hw::RegionId region;
  MeasurementStore store;

  explicit StoreFixture(size_t slots)
      : region(mem.add_region("store",
                              slots * (1 + 8 + 32 + 32),
                              hw::policy::kMeasurementStore)),
        store(mem, region, MacAlgo::kHmacSha256) {}
};

TEST(Store, CapacityFromRegionSize) {
  StoreFixture f(12);  // Fig. 3 example: n = 12
  EXPECT_EQ(f.store.capacity(), 12u);
  EXPECT_EQ(f.store.record_size(), 1 + 8 + 32 + 32u);
}

TEST(Store, RejectsTooSmallRegion) {
  hw::DeviceMemory mem;
  const auto tiny = mem.add_region("tiny", 8, hw::policy::kMeasurementStore);
  EXPECT_THROW(MeasurementStore(mem, tiny, MacAlgo::kHmacSha256),
               std::invalid_argument);
}

TEST(Store, PutGetRoundTrip) {
  StoreFixture f(4);
  const Measurement m = make_m(10);
  f.store.put(2, m);
  const auto back = f.store.get(2);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(Store, EmptySlotsReadAsNullopt) {
  StoreFixture f(4);
  EXPECT_FALSE(f.store.get(0).has_value());
  EXPECT_FALSE(f.store.get(3).has_value());
}

TEST(Store, IndicesWrapModuloN) {
  StoreFixture f(4);
  f.store.put(0, make_m(0));
  f.store.put(4, make_m(100));  // wraps onto slot 0
  const auto back = f.store.get(0);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->timestamp, 100u);
}

TEST(Store, LatestReturnsNewestFirst) {
  StoreFixture f(8);
  for (uint64_t i = 0; i < 5; ++i) f.store.put(i, make_m(i * 10));
  const auto latest = f.store.latest(4, 3);
  ASSERT_EQ(latest.size(), 3u);
  EXPECT_EQ(latest[0].timestamp, 40u);
  EXPECT_EQ(latest[1].timestamp, 30u);
  EXPECT_EQ(latest[2].timestamp, 20u);
}

TEST(Store, LatestClampsKToCapacity) {
  // Fig. 2: "if k > n: k = n".
  StoreFixture f(4);
  for (uint64_t i = 0; i < 4; ++i) f.store.put(i, make_m(i));
  EXPECT_EQ(f.store.latest(3, 100).size(), 4u);
}

TEST(Store, LatestStopsAtDeviceStart) {
  StoreFixture f(8);
  f.store.put(0, make_m(0));
  f.store.put(1, make_m(10));
  // Only 2 measurements ever taken; asking for 5 returns 2.
  EXPECT_EQ(f.store.latest(1, 5).size(), 2u);
}

TEST(Store, LatestSkipsErasedSlots) {
  StoreFixture f(8);
  for (uint64_t i = 0; i < 4; ++i) f.store.put(i, make_m(i));
  f.store.tamper_erase(2);
  const auto latest = f.store.latest(3, 4);
  ASSERT_EQ(latest.size(), 3u) << "erased record is absent, not garbage";
}

TEST(Store, SlotForTimeImplementsPaperFormula) {
  // i = floor(t / T_M) mod n.
  StoreFixture f(12);
  EXPECT_EQ(f.store.slot_for_time(0, 60), 0u);
  EXPECT_EQ(f.store.slot_for_time(59, 60), 0u);
  EXPECT_EQ(f.store.slot_for_time(60, 60), 1u);
  EXPECT_EQ(f.store.slot_for_time(60 * 12, 60), 0u);     // wraps
  EXPECT_EQ(f.store.slot_for_time(60 * 15, 60), 3u);
  EXPECT_THROW(f.store.slot_for_time(1, 0), std::invalid_argument);
}

TEST(Store, WrapAroundOverwritesOldest) {
  StoreFixture f(3);
  for (uint64_t i = 0; i < 5; ++i) f.store.put(i, make_m(i * 10));
  // Slots now hold indices 3, 4 (wrapped) and 2.
  EXPECT_EQ(f.store.get(3)->timestamp, 30u);
  EXPECT_EQ(f.store.get(4)->timestamp, 40u);
  EXPECT_EQ(f.store.get(2)->timestamp, 20u);
  // Index 0's record (slot 0) was overwritten by index 3.
  EXPECT_EQ(f.store.get(0)->timestamp, 30u);
}

TEST(Store, BytesForCollectionCostModel) {
  StoreFixture f(8);
  EXPECT_EQ(f.store.bytes_for(3), 3 * f.store.record_size());
  EXPECT_EQ(f.store.bytes_for(100), 8 * f.store.record_size());
}

TEST(Store, TamperCorruptBreaksMacVerification) {
  StoreFixture f(4);
  f.store.put(1, make_m(10));
  f.store.tamper_corrupt(1, f.store.record_size() - 1, 0x80);
  const auto m = f.store.get(1);
  ASSERT_TRUE(m.has_value()) << "record still parses";
  EXPECT_FALSE(verify_measurement(MacAlgo::kHmacSha256, test_key(), *m))
      << "but its MAC no longer verifies";
}

TEST(Store, TamperSwapReordersRecords) {
  StoreFixture f(4);
  f.store.put(1, make_m(10));
  f.store.put(2, make_m(20));
  f.store.tamper_swap(1, 2);
  EXPECT_EQ(f.store.get(1)->timestamp, 20u);
  EXPECT_EQ(f.store.get(2)->timestamp, 10u);
  // The records themselves still verify -- reordering is only visible to
  // the verifier through the schedule check.
  EXPECT_TRUE(
      verify_measurement(MacAlgo::kHmacSha256, test_key(), *f.store.get(1)));
}

TEST(Store, TamperOverwriteForgesUnverifiableRecord) {
  StoreFixture f(4);
  f.store.put(1, make_m(10));
  const Measurement forged = compute_measurement(
      MacAlgo::kHmacSha256, bytes_of("guessed key"), bytes_of("clean"), 10);
  f.store.tamper_overwrite(1, forged);
  const auto m = f.store.get(1);
  ASSERT_TRUE(m.has_value());
  EXPECT_FALSE(verify_measurement(MacAlgo::kHmacSha256, test_key(), *m));
}

TEST(Store, TamperCorruptOutsideRecordThrows) {
  StoreFixture f(4);
  EXPECT_THROW(f.store.tamper_corrupt(0, f.store.record_size(), 1),
               std::out_of_range);
}

TEST(Store, RecordSizeMismatchRejected) {
  StoreFixture f(4);
  Measurement bad = make_m(1);
  bad.digest.pop_back();
  EXPECT_THROW(f.store.put(0, bad), std::invalid_argument);
}

TEST(Store, Sha1RecordsAreSmaller) {
  hw::DeviceMemory mem;
  const auto region =
      mem.add_region("store", 1024, hw::policy::kMeasurementStore);
  MeasurementStore s1(mem, region, MacAlgo::kHmacSha1);
  MeasurementStore s256(mem, region, MacAlgo::kHmacSha256);
  EXPECT_LT(s1.record_size(), s256.record_size());
  EXPECT_GT(s1.capacity(), s256.capacity());
}

// Property sweep: for every capacity, writing 2n sequential indices leaves
// exactly the last n readable with correct timestamps.
class StoreWrapProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(StoreWrapProperty, KeepsExactlyLastN) {
  const size_t n = GetParam();
  StoreFixture f(n);
  const uint64_t total = 2 * n;
  for (uint64_t i = 0; i < total; ++i) f.store.put(i, make_m(i));
  const auto latest = f.store.latest(total - 1, n);
  ASSERT_EQ(latest.size(), n);
  for (size_t j = 0; j < n; ++j) {
    EXPECT_EQ(latest[j].timestamp, total - 1 - j);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, StoreWrapProperty,
                         ::testing::Values(1, 2, 3, 7, 12, 32));

}  // namespace
}  // namespace erasmus::attest
