// Cross-domain message channels (net/shard_channels.h) and the kDirect
// batch serve built on them (attest/transport.h).
//
// The property under test is the load-bearing one for the 1/2/8-thread
// byte-identity invariant: the order a drain replays frames is a pure
// function of (source domain, per-channel sequence) -- NEVER of the wall
// order producers pushed in, and never of which worker served which
// domain. See docs/DETERMINISM.md rule R2.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "attest/directory.h"
#include "attest/prover.h"
#include "attest/transport.h"
#include "common/parallel.h"
#include "net/shard_channels.h"

namespace erasmus::net {
namespace {

ChannelFrame frame_from(NodeId src, uint64_t aux = 0) {
  ChannelFrame f;
  f.src = src;
  f.tag = 1;
  f.aux = aux;
  f.payload = bytes_of("payload");
  return f;
}

/// Replays `pushes` (src_domain, frame) pairs in the given order, then
/// drains `dst` and returns the delivered (src domain stamp via node id,
/// seq) order.
std::vector<std::pair<NodeId, uint64_t>> drained_order(
    const std::vector<std::pair<size_t, NodeId>>& pushes, size_t domains,
    size_t dst) {
  ShardChannels channels(domains);
  for (const auto& [src_domain, node] : pushes) {
    channels.push(src_domain, dst, frame_from(node));
  }
  std::vector<std::pair<NodeId, uint64_t>> out;
  channels.drain(dst, [&](const ChannelFrame& f) {
    out.emplace_back(f.src, f.seq);
  });
  return out;
}

TEST(ShardChannels, DrainOrderIsPureFunctionOfDomainAndSequence) {
  // Every frame crosses a domain boundary (sink domain 0 never produces).
  // Two adversarial global push interleavings -- workers racing in
  // opposite wall orders -- with the SAME per-channel subsequences.
  const std::vector<std::pair<size_t, NodeId>> schedule_a = {
      {2, 20}, {1, 10}, {2, 21}, {1, 11}, {2, 22}, {1, 12}};
  const std::vector<std::pair<size_t, NodeId>> schedule_b = {
      {1, 10}, {1, 11}, {1, 12}, {2, 20}, {2, 21}, {2, 22}};

  const auto order_a = drained_order(schedule_a, /*domains=*/3, /*dst=*/0);
  const auto order_b = drained_order(schedule_b, /*domains=*/3, /*dst=*/0);

  // Identical delivery regardless of interleaving: domain 1's frames
  // first (in its push order: seq 0,1,2), then domain 2's.
  const std::vector<std::pair<NodeId, uint64_t>> expected = {
      {10, 0}, {11, 1}, {12, 2}, {20, 0}, {21, 1}, {22, 2}};
  EXPECT_EQ(order_a, expected);
  EXPECT_EQ(order_b, expected);
}

TEST(ShardChannels, SequencesArePerChannelAndDrainClears) {
  ShardChannels channels(3);
  // Same source domain, two different destinations: independent lanes,
  // each sequence starts at 0.
  channels.push(1, 0, frame_from(100));
  channels.push(1, 2, frame_from(101));
  channels.push(1, 0, frame_from(102));
  EXPECT_EQ(channels.pending(0), 2u);
  EXPECT_EQ(channels.pending(2), 1u);

  std::vector<uint64_t> seqs;
  channels.drain(0, [&](const ChannelFrame& f) { seqs.push_back(f.seq); });
  EXPECT_EQ(seqs, (std::vector<uint64_t>{0, 1}));
  EXPECT_EQ(channels.pending(0), 0u);

  seqs.clear();
  channels.drain(2, [&](const ChannelFrame& f) { seqs.push_back(f.seq); });
  EXPECT_EQ(seqs, (std::vector<uint64_t>{0}));

  // A later lane refill continues the lane's sequence (cumulative stamp,
  // not per-drain).
  channels.push(1, 0, frame_from(103));
  seqs.clear();
  channels.drain(0, [&](const ChannelFrame& f) { seqs.push_back(f.seq); });
  EXPECT_EQ(seqs, (std::vector<uint64_t>{2}));
}

TEST(ShardChannels, CountersSplitLocalFromCrossAtDrainTime) {
  ShardChannels channels(2);
  channels.push(0, 0, frame_from(1));  // local (src == dst)
  channels.push(1, 0, frame_from(2));  // cross
  channels.push(1, 0, frame_from(3));  // cross
  // Nothing counted until the consumer drains.
  EXPECT_EQ(channels.counters().frames_local, 0u);
  EXPECT_EQ(channels.counters().frames_cross, 0u);

  channels.drain(0, [](const ChannelFrame&) {});
  EXPECT_EQ(channels.counters().frames_local, 1u);
  EXPECT_EQ(channels.counters().frames_cross, 2u);
  EXPECT_EQ(channels.counters().drains, 1u);

  // An empty drain is not a drain event.
  channels.drain(1, [](const ChannelFrame&) {});
  EXPECT_EQ(channels.counters().drains, 1u);
}

TEST(ShardChannels, RejectsBadGeometry) {
  EXPECT_THROW(ShardChannels(0), std::invalid_argument);
  ShardChannels channels(2);
  EXPECT_THROW(channels.push(2, 0, frame_from(1)), std::out_of_range);
  EXPECT_THROW(channels.push(0, 2, frame_from(1)), std::out_of_range);
  EXPECT_THROW(channels.pending(2), std::out_of_range);
}

}  // namespace
}  // namespace erasmus::net

// --- DirectTransport batch serve over the channels ---------------------------

namespace erasmus::attest {
namespace {

using sim::Duration;
using sim::Time;

constexpr size_t kRecordBytes = 1 + 8 + 32 + 32;

Bytes device_key(uint32_t id) {
  Bytes key = bytes_of("channel-test-key-0123456789abcd");
  key.push_back(static_cast<uint8_t>(id));
  return key;
}

struct Device {
  hw::SmartPlusArch arch;
  Prover prover;

  Device(sim::EventQueue& queue, uint32_t id)
      : arch(device_key(id), 4096, 2048, 32 * kRecordBytes),
        prover(queue, arch, arch.app_region(), arch.store_region(),
               std::make_unique<RegularScheduler>(Duration::minutes(10)),
               ProverConfig{}) {}
};

struct Delivery {
  net::NodeId src;
  MsgType type;
  Bytes body;
  bool operator==(const Delivery& o) const {
    return src == o.src && type == o.type && body == o.body;
  }
};

TEST(DirectTransportBatchServe, CrossDomainFleetMatchesSequentialServe) {
  // 6 devices over 3 radio domains (contiguous blocks of 2), verifier
  // co-located with device 0 (domain 0). Collecting {2..5} means EVERY
  // response crosses a domain boundary -- the worst case for ordering.
  sim::EventQueue queue;
  common::ParallelExecutor executor(4);
  std::vector<std::unique_ptr<Device>> devices;
  DirectTransport batched;
  DirectTransport sequential;
  for (uint32_t id = 0; id < 6; ++id) {
    devices.push_back(std::make_unique<Device>(queue, id));
    batched.attach(id, devices[id]->prover);
    sequential.attach(id, devices[id]->prover);
  }
  batched.enable_batch_serve(executor, /*domains=*/3, /*sink=*/0);
  for (auto& d : devices) d->prover.start();
  queue.run_until(Time::zero() + Duration::minutes(45));

  ASSERT_NE(batched.channels(), nullptr);
  EXPECT_EQ(batched.domain_of(0), 0u);
  EXPECT_EQ(batched.domain_of(1), 0u);
  EXPECT_EQ(batched.domain_of(2), 1u);
  EXPECT_EQ(batched.domain_of(5), 2u);

  std::vector<Delivery> batched_log;
  std::vector<Delivery> sequential_log;
  batched.set_receiver([&](net::NodeId src, MsgType type, ByteView body) {
    batched_log.push_back({src, type, Bytes(body.begin(), body.end())});
  });
  sequential.set_receiver([&](net::NodeId src, MsgType type, ByteView body) {
    sequential_log.push_back({src, type, Bytes(body.begin(), body.end())});
  });

  const std::vector<net::NodeId> peers = {2, 3, 4, 5};
  const Bytes body = CollectRequest{4}.serialize();
  batched.broadcast(peers, MsgType::kCollectRequest, body);
  for (const net::NodeId peer : peers) {
    sequential.send(peer, MsgType::kCollectRequest, body);
  }

  // Same responses, same id order, byte for byte -- the channel drain
  // reproduced the sequential delivery exactly.
  ASSERT_EQ(batched_log.size(), 4u);
  EXPECT_EQ(batched_log, sequential_log);
  EXPECT_EQ(batched.last_processing().ns(), sequential.last_processing().ns());

  // All four frames crossed domains (sink domain produced none).
  const net::ShardChannels::Counters& c = batched.channels()->counters();
  EXPECT_EQ(c.frames_cross, 4u);
  EXPECT_EQ(c.frames_local, 0u);
  EXPECT_EQ(c.drains, 1u);

  // A batch inside the sink's own domain counts as local traffic.
  batched.broadcast({0, 1}, MsgType::kCollectRequest, body);
  EXPECT_EQ(batched.channels()->counters().frames_local, 2u);
  EXPECT_EQ(batched.channels()->counters().frames_cross, 4u);
  EXPECT_EQ(batched_log.size(), 6u);
}

TEST(DirectTransportBatchServe, RepeatedRunsAreIdenticalAcrossPoolWidths) {
  // The same fleet served through 1-wide and 4-wide pools must deliver
  // identical bytes: worker count is wall-clock only. (This is the
  // transport-level slice of the CI cmp jobs.)
  const Bytes body = CollectRequest{3}.serialize();
  std::vector<std::vector<Delivery>> logs;
  for (const size_t width : {size_t{1}, size_t{4}}) {
    sim::EventQueue queue;
    common::ParallelExecutor executor(width);
    std::vector<std::unique_ptr<Device>> devices;
    DirectTransport transport;
    for (uint32_t id = 0; id < 9; ++id) {
      devices.push_back(std::make_unique<Device>(queue, id));
      transport.attach(id, devices[id]->prover);
    }
    transport.enable_batch_serve(executor, /*domains=*/3, /*sink=*/0);
    for (auto& d : devices) d->prover.start();
    queue.run_until(Time::zero() + Duration::minutes(45));

    std::vector<Delivery>& log = logs.emplace_back();
    transport.set_receiver([&](net::NodeId src, MsgType type, ByteView b) {
      log.push_back({src, type, Bytes(b.begin(), b.end())});
    });
    transport.broadcast({0, 1, 2, 3, 4, 5, 6, 7, 8},
                        MsgType::kCollectRequest, body);
    EXPECT_EQ(transport.channels()->counters().frames_local, 3u);
    EXPECT_EQ(transport.channels()->counters().frames_cross, 6u);
  }
  ASSERT_EQ(logs.size(), 2u);
  EXPECT_EQ(logs[0], logs[1]);
}

}  // namespace
}  // namespace erasmus::attest
