// Tests for the heterogeneous provisioning API: DeviceSpec/FleetPlan
// expansion, the arch factory behind it, and the acceptance property of
// the redesign -- one FleetPlan mixing architectures AND measurement
// periods, collected through the shared AttestationService, byte-identical
// at 1/2/8 threads.
#include <gtest/gtest.h>

#include <sstream>

#include "scenario/scenario.h"
#include "scenario/sharded_runner.h"
#include "swarm/fleet.h"
#include "swarm/provision.h"

namespace erasmus::swarm {
namespace {

using sim::Duration;
using sim::Time;

TEST(ArchFactory, BuildsEveryKindReadyToMeasure) {
  for (const hw::ArchKind kind :
       {hw::ArchKind::kSmartPlus, hw::ArchKind::kHydra,
        hw::ArchKind::kTrustLite}) {
    sim::EventQueue queue;
    DeviceSpec spec;
    spec.arch = kind;
    spec.profile = default_profile_for(kind);
    spec.app_ram_bytes = 512;
    spec.key = fleet_device_key(1, 0);
    DeviceStack stack = build_device_stack(queue, spec);
    // Ready to measure: no secure-boot / rule-lock left to the caller.
    stack.prover->start();
    queue.run_until(Time::zero() + Duration::minutes(11));
    EXPECT_EQ(stack.prover->stats().measurements, 1u)
        << hw::to_string(kind);
  }
}

TEST(ArchFactory, KindNamesRoundTrip) {
  for (const hw::ArchKind kind :
       {hw::ArchKind::kSmartPlus, hw::ArchKind::kHydra,
        hw::ArchKind::kTrustLite}) {
    EXPECT_EQ(hw::arch_kind_from_string(hw::to_string(kind)), kind);
  }
  EXPECT_EQ(hw::arch_kind_from_string("smart+"), hw::ArchKind::kSmartPlus);
  EXPECT_THROW(hw::arch_kind_from_string("sgx"), std::invalid_argument);
}

TEST(FleetPlan, UniformExpansionDerivesDistinctKeys) {
  DeviceSpec base;
  base.app_ram_bytes = 1024;
  const auto specs = FleetPlan::uniform(4, /*key_seed=*/9, base).expand();
  ASSERT_EQ(specs.size(), 4u);
  for (DeviceId id = 0; id < 4; ++id) {
    EXPECT_EQ(specs[id].arch, hw::ArchKind::kSmartPlus);
    EXPECT_EQ(specs[id].key, fleet_device_key(9, id));
    for (DeviceId other = 0; other < id; ++other) {
      EXPECT_NE(specs[id].key, specs[other].key);
    }
  }
}

TEST(FleetPlan, ExpansionIsDeterministic) {
  auto make = [] {
    FleetPlan plan(50, 7);
    DeviceSpec hydra;
    hydra.arch = hw::ArchKind::kHydra;
    plan.add_mix(0.3, hydra).add_mix(0.7, DeviceSpec{});
    plan.cycle_tm({Duration::minutes(5), Duration::minutes(20)});
    return plan.expand();
  };
  const auto a = make();
  const auto b = make();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arch, b[i].arch) << i;
    EXPECT_EQ(a[i].tm, b[i].tm) << i;
    EXPECT_EQ(a[i].key, b[i].key) << i;
  }
}

TEST(FleetPlan, MixIsProportionalAndInterleaved) {
  FleetPlan plan(10, 7);
  DeviceSpec hydra;
  hydra.arch = hw::ArchKind::kHydra;
  plan.add_mix(0.3, hydra).add_mix(0.7, DeviceSpec{});
  const auto specs = plan.expand();

  size_t hydras = 0;
  size_t hydras_in_first_half = 0;
  for (DeviceId id = 0; id < specs.size(); ++id) {
    if (specs[id].arch != hw::ArchKind::kHydra) continue;
    ++hydras;
    if (id < specs.size() / 2) ++hydras_in_first_half;
  }
  EXPECT_EQ(hydras, 3u) << "30% of 10";
  // Interleaved, not concatenated: the minority class is not bunched in
  // either half.
  EXPECT_GE(hydras_in_first_half, 1u);
  EXPECT_LE(hydras_in_first_half, 2u);
}

TEST(FleetPlan, CycleTmAndRangeOverridesApply) {
  FleetPlan plan(6, 7);
  plan.cycle_tm({Duration::minutes(5), Duration::minutes(40)});
  plan.override_range(2, 2, [](DeviceSpec& s) {
    s.conflict_policy = attest::ConflictPolicy::kSkip;
  });
  const auto specs = plan.expand();
  EXPECT_EQ(specs[0].tm, Duration::minutes(5));
  EXPECT_EQ(specs[1].tm, Duration::minutes(40));
  EXPECT_EQ(specs[4].tm, Duration::minutes(5));
  for (DeviceId id = 0; id < 6; ++id) {
    const auto expected = (id == 2 || id == 3)
                              ? attest::ConflictPolicy::kSkip
                              : attest::ConflictPolicy::kMeasureAnyway;
    EXPECT_EQ(specs[id].conflict_policy, expected) << id;
  }
}

TEST(FleetPlan, RejectsBadInput) {
  FleetPlan plan(4, 7);
  EXPECT_THROW(plan.add_mix(0.0, DeviceSpec{}), std::invalid_argument);
  EXPECT_THROW(plan.add_mix(-1.0, DeviceSpec{}), std::invalid_argument);
  EXPECT_THROW(plan.spec(4), std::out_of_range);

  sim::EventQueue queue;
  DeviceSpec keyless;
  EXPECT_THROW(build_device_stack(queue, keyless), std::invalid_argument);
  DeviceSpec bad_irregular;
  bad_irregular.key = fleet_device_key(1, 0);
  bad_irregular.scheduler = SchedulerKind::kIrregular;
  bad_irregular.irregular_lower = Duration::minutes(10);
  bad_irregular.irregular_upper = Duration::minutes(10);
  EXPECT_THROW(build_device_stack(queue, bad_irregular),
               std::invalid_argument);
}

TEST(ParseArchMix, GrammarAndErrors) {
  const auto mix = parse_arch_mix("smartplus:0.7,hydra:0.3");
  ASSERT_EQ(mix.size(), 2u);
  EXPECT_EQ(mix[0].first, hw::ArchKind::kSmartPlus);
  EXPECT_DOUBLE_EQ(mix[0].second, 0.7);
  EXPECT_EQ(mix[1].first, hw::ArchKind::kHydra);
  EXPECT_DOUBLE_EQ(mix[1].second, 0.3);

  EXPECT_THROW(parse_arch_mix(""), std::invalid_argument);
  EXPECT_THROW(parse_arch_mix("hydra"), std::invalid_argument);
  EXPECT_THROW(parse_arch_mix("hydra:"), std::invalid_argument);
  EXPECT_THROW(parse_arch_mix("hydra:0"), std::invalid_argument);
  EXPECT_THROW(parse_arch_mix("hydra:0.5,"), std::invalid_argument);
  EXPECT_THROW(parse_arch_mix("sgx:1"), std::invalid_argument);
  EXPECT_THROW(parse_arch_mix("hydra:x"), std::invalid_argument);
}

TEST(Fleet, ProverIsBoundsChecked) {
  sim::EventQueue queue;
  DeviceSpec base;
  base.app_ram_bytes = 512;
  Fleet fleet(queue, FleetPlan::uniform(3, 7, base));
  EXPECT_NO_THROW(fleet.prover(2));
  EXPECT_THROW(fleet.prover(3), std::out_of_range);
  EXPECT_THROW(fleet.spec(3), std::out_of_range);
}

scenario::ShardedFleetConfig heterogeneous_config(size_t threads) {
  // At least two architectures and two T_M values from ONE plan (the
  // acceptance criterion of the provisioning redesign), plus a conflict-
  // policy override for good measure.
  DeviceSpec smart;
  smart.app_ram_bytes = 1024;
  smart.store_slots = 32;
  DeviceSpec hydra = smart;
  hydra.arch = hw::ArchKind::kHydra;
  hydra.profile = default_profile_for(hydra.arch);

  scenario::ShardedFleetConfig cfg;
  cfg.plan = FleetPlan(24, /*key_seed=*/42);
  cfg.plan.add_mix(0.7, smart).add_mix(0.3, hydra);
  cfg.plan.cycle_tm({Duration::minutes(5), Duration::minutes(20)});
  cfg.plan.override_range(20, 4, [](DeviceSpec& s) {
    s.conflict_policy = attest::ConflictPolicy::kAbortAndReschedule;
  });
  cfg.plan.mobility.field_size = 120.0;
  cfg.plan.mobility.radio_range = 50.0;
  cfg.plan.mobility.speed_min = 2.0;
  cfg.plan.mobility.speed_max = 6.0;
  cfg.plan.mobility.seed = 42;
  cfg.threads = threads;
  cfg.rounds = 4;
  cfg.round_interval = Duration::minutes(30);
  cfg.k = 6;
  return cfg;
}

std::string run_heterogeneous(size_t threads) {
  std::ostringstream out;
  scenario::JsonSink sink(out);
  sink.begin_run("heterogeneous");
  scenario::ShardedFleetRunner runner(heterogeneous_config(threads));
  // Infect one HYDRA device: detection through the shared service must be
  // architecture-independent.
  swarm::DeviceId hydra_id = 0;
  for (swarm::DeviceId id = 0; id < runner.size(); ++id) {
    if (runner.spec(id).arch == hw::ArchKind::kHydra) {
      hydra_id = id;
      break;
    }
  }
  runner.schedule_on_device(
      hydra_id, Time::zero() + Duration::minutes(42), [](attest::Prover& p) {
        p.memory().write(p.attested_region(), 8, bytes_of("IMPLANT"), false);
      });
  runner.run(sink);
  sink.end_run();
  return out.str();
}

// The acceptance criterion: a mixed-arch, mixed-T_M plan through the
// sharded runner produces byte-identical metrics at 1/2/8 threads.
TEST(FleetPlan, HeterogeneousFleetDeterministicAcross1_2_8Threads) {
  const std::string t1 = run_heterogeneous(1);
  const std::string t2 = run_heterogeneous(2);
  const std::string t8 = run_heterogeneous(8);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
  // And the run is not trivially empty: the infected device gets flagged.
  EXPECT_NE(t1.find("\"flagged\": 1"), std::string::npos) << t1;
}

TEST(ShardedRunner, AccessorsAreBoundsChecked) {
  scenario::ShardedFleetRunner runner(heterogeneous_config(1));
  EXPECT_NO_THROW(runner.prover(23));
  EXPECT_THROW(runner.prover(24), std::out_of_range);
  EXPECT_THROW(runner.spec(24), std::out_of_range);
  EXPECT_THROW(runner.set_present(24, false), std::out_of_range);
  EXPECT_THROW(
      runner.schedule_on_device(24, Time::zero(), [](attest::Prover&) {}),
      std::out_of_range);
}

// The fleet mixes architectures as planned and every class is actually
// collected through the one shared AttestationService directory.
TEST(FleetPlan, MixedFleetSharesOneDirectory) {
  scenario::ShardedFleetRunner runner(heterogeneous_config(1));
  size_t hydras = 0;
  std::vector<Duration> tms;
  for (swarm::DeviceId id = 0; id < runner.size(); ++id) {
    hydras += runner.spec(id).arch == hw::ArchKind::kHydra;
    tms.push_back(runner.spec(id).tm);
  }
  EXPECT_EQ(hydras, 7u);  // ~30% of 24
  EXPECT_NE(tms[0], tms[1]);  // two T_M classes really present
  EXPECT_EQ(runner.directory().size(), 24u);
}

}  // namespace
}  // namespace erasmus::swarm
