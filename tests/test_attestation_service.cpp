// Tests for the unified verifier-side stack: DeviceDirectory (+ shared
// verifier core), Transport backends, and the AttestationService session
// state machine -- multiplexed sessions, bounded dispatch window, retry /
// unreachable handling, and above all the response-path hardening: spoofed
// sources, wrong message types and undecodable payloads must be dropped
// without disturbing the session they tried to hijack.
#include <gtest/gtest.h>

#include <vector>

#include "attest/directory.h"
#include "attest/prover.h"
#include "attest/service.h"
#include "attest/transport.h"

namespace erasmus::attest {
namespace {

using sim::Duration;
using sim::Time;

constexpr size_t kRecordBytes = 1 + 8 + 32 + 32;

Bytes device_key(uint32_t id) {
  Bytes key = bytes_of("service-test-key-0123456789abcd");
  key.push_back(static_cast<uint8_t>(id));
  return key;
}

/// One real prover device plus its directory record.
struct Device {
  hw::SmartPlusArch arch;
  Prover prover;

  Device(sim::EventQueue& queue, uint32_t id,
         Duration tm = Duration::minutes(10))
      : arch(device_key(id), 4096, 2048, 32 * kRecordBytes),
        prover(queue, arch, arch.app_region(), arch.store_region(),
               std::make_unique<RegularScheduler>(tm), ProverConfig{}) {}

  DeviceRecord record(uint32_t id) {
    DeviceRecord rec;
    rec.key = device_key(id);
    rec.set_golden(crypto::Hash::digest(
        crypto::HashAlgo::kSha256, arch.memory().view(arch.app_region(),
                                                      /*privileged=*/true)));
    return rec;
  }
};

/// N provers behind a simulated network, one verifier endpoint.
struct NetRig {
  sim::EventQueue queue;
  net::Network network;
  net::NodeId verifier_node;
  std::vector<std::unique_ptr<Device>> devices;
  DeviceDirectory directory;
  NetworkTransport transport;

  explicit NetRig(size_t n, double loss = 0.0, uint64_t seed = 7)
      : network(queue, Duration::millis(5), loss, seed),
        verifier_node(network.add_node({})),
        transport(network, verifier_node) {
    for (size_t i = 0; i < n; ++i) {
      devices.push_back(
          std::make_unique<Device>(queue, static_cast<uint32_t>(i)));
      const net::NodeId node = network.add_node({});
      devices[i]->prover.bind(network, node);
      directory.add(node, devices[i]->record(static_cast<uint32_t>(i)));
    }
  }

  std::vector<DeviceId> all_ids() const {
    std::vector<DeviceId> ids(devices.size());
    for (DeviceId id = 0; id < devices.size(); ++id) ids[id] = id;
    return ids;
  }
};

// --- DeviceDirectory ---------------------------------------------------------

TEST(DeviceDirectory, AddLinkAndLookup) {
  DeviceDirectory dir;
  DeviceRecord rec;
  rec.key = device_key(0);
  rec.set_golden(bytes_of("golden"));
  const DeviceId a = dir.add(10, rec);
  DeviceRecord live = rec;
  const DeviceId b = dir.link(11, &live);

  EXPECT_EQ(dir.size(), 2u);
  EXPECT_EQ(dir.node(a), 10u);
  EXPECT_EQ(dir.node(b), 11u);
  EXPECT_EQ(dir.by_node(10), std::optional<DeviceId>(a));
  EXPECT_EQ(dir.by_node(99), std::nullopt);

  // Owned records are mutable through the directory; linked ones track the
  // live source and refuse directory-side mutation.
  dir.owned_record(a).rotate_golden(bytes_of("golden2"), 100);
  EXPECT_EQ(dir.record(a).golden(), bytes_of("golden2"));
  EXPECT_THROW(dir.owned_record(b), std::logic_error);
  live.rotate_golden(bytes_of("golden3"), 50);
  EXPECT_EQ(dir.record(b).golden(), bytes_of("golden3"));
}

TEST(DeviceDirectory, RejectsInvalidEnrollment) {
  DeviceDirectory dir;
  EXPECT_THROW(dir.add(0, DeviceRecord{}), std::invalid_argument);
  DeviceRecord rec;
  rec.key = device_key(0);
  rec.set_golden(bytes_of("g"));
  dir.add(0, rec);
  EXPECT_THROW(dir.add(0, rec), std::invalid_argument)
      << "one device per endpoint";
  EXPECT_THROW(dir.link(1, nullptr), std::invalid_argument);
}

// --- DirectTransport ---------------------------------------------------------

TEST(DirectTransport, BroadcastMatchesSendLoopExactly) {
  // The real broadcast() override (decode once, single dispatch loop)
  // must be observably identical to the per-peer send() loop it
  // replaces: same deliveries, same order, same skip of unattached
  // endpoints, same last_processing semantics.
  sim::EventQueue queue;
  std::vector<std::unique_ptr<Device>> devices;
  DirectTransport via_broadcast;
  DirectTransport via_send;
  for (uint32_t id = 0; id < 3; ++id) {
    devices.push_back(std::make_unique<Device>(queue, id));
    via_broadcast.attach(id, devices[id]->prover);
    via_send.attach(id, devices[id]->prover);
  }
  for (auto& d : devices) d->prover.start();
  queue.run_until(Time::zero() + Duration::minutes(45));

  using Delivery = std::tuple<net::NodeId, MsgType, Bytes>;
  std::vector<Delivery> broadcast_log;
  std::vector<Delivery> send_log;
  via_broadcast.set_receiver(
      [&](net::NodeId src, MsgType type, ByteView body) {
        broadcast_log.emplace_back(src, type, Bytes(body.begin(), body.end()));
      });
  via_send.set_receiver([&](net::NodeId src, MsgType type, ByteView body) {
    send_log.emplace_back(src, type, Bytes(body.begin(), body.end()));
  });

  const std::vector<net::NodeId> peers = {0, 1, 2, 99};  // 99: unattached
  const Bytes body = CollectRequest{4}.serialize();
  via_broadcast.broadcast(peers, MsgType::kCollectRequest, body);
  for (const net::NodeId peer : peers) {
    via_send.send(peer, MsgType::kCollectRequest, body);
  }

  ASSERT_EQ(broadcast_log.size(), 3u) << "unknown endpoint silently skipped";
  EXPECT_EQ(broadcast_log, send_log);
  // Final peer (99) produced no reply on both paths.
  EXPECT_EQ(via_broadcast.last_processing().ns(),
            via_send.last_processing().ns());

  // A non-request type is dropped without touching any prover.
  via_broadcast.broadcast(peers, MsgType::kCollectResponse, body);
  EXPECT_EQ(broadcast_log.size(), 3u);
}

// --- Single-shot over DirectTransport ---------------------------------------

TEST(AttestationService, DirectSingleShotCompletesSynchronously) {
  sim::EventQueue queue;
  std::vector<std::unique_ptr<Device>> devices;
  DeviceDirectory directory;
  DirectTransport transport;
  for (uint32_t i = 0; i < 3; ++i) {
    devices.push_back(std::make_unique<Device>(queue, i));
    devices[i]->prover.start();
    directory.add(i, devices[i]->record(i));
    transport.attach(i, devices[i]->prover);
  }
  AttestationService service(queue, transport, directory, ServiceConfig{});
  queue.run_until(Time::zero() + Duration::minutes(35));

  const auto outcomes = service.collect_now({0, 1, 2}, /*k=*/3);
  ASSERT_EQ(outcomes.size(), 3u);
  for (DeviceId id = 0; id < 3; ++id) {
    EXPECT_EQ(outcomes[id].device, id);
    EXPECT_TRUE(outcomes[id].reachable);
    EXPECT_EQ(outcomes[id].attempts, 1);
    EXPECT_TRUE(outcomes[id].report.device_trustworthy());
    EXPECT_TRUE(outcomes[id].report.freshness.has_value());
    EXPECT_EQ(service.log(id).size(), 1u);
  }
  EXPECT_FALSE(service.round_in_progress());
  EXPECT_EQ(service.stats().responses, 3u);
  EXPECT_EQ(service.stats().retries, 0u);
}

TEST(AttestationService, DirectRoundFlagsInfectedDevice) {
  sim::EventQueue queue;
  std::vector<std::unique_ptr<Device>> devices;
  DeviceDirectory directory;
  DirectTransport transport;
  for (uint32_t i = 0; i < 2; ++i) {
    devices.push_back(std::make_unique<Device>(queue, i));
    devices[i]->prover.start();
    directory.add(i, devices[i]->record(i));
    transport.attach(i, devices[i]->prover);
  }
  AttestationService service(queue, transport, directory, ServiceConfig{});
  queue.schedule_at(Time::zero() + Duration::minutes(12), [&] {
    devices[1]->prover.memory().write(devices[1]->arch.app_region(), 7,
                                      bytes_of("EVIL"), false);
  });
  queue.run_until(Time::zero() + Duration::minutes(45));

  const auto outcomes = service.collect_now({0, 1}, /*k=*/4);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].report.device_trustworthy());
  EXPECT_TRUE(outcomes[1].report.infection_detected);
}

// --- Periodic policy over the network ----------------------------------------

TEST(AttestationService, PeriodicRoundsMultiplexTheWholeDirectory) {
  NetRig rig(4);
  for (auto& d : rig.devices) d->prover.start();
  ServiceConfig sc;
  sc.tc = Duration::hours(1);
  sc.k = 4;
  sc.response_timeout = Duration::seconds(30);
  AttestationService service(rig.queue, rig.transport, rig.directory, sc);
  service.start();
  rig.queue.run_until(Time::zero() + Duration::hours(3) +
                      Duration::minutes(1));

  EXPECT_EQ(service.stats().rounds, 3u);
  EXPECT_EQ(service.stats().sessions, 12u);
  EXPECT_EQ(service.stats().responses, 12u);
  EXPECT_EQ(service.stats().unreachable_sessions, 0u);
  for (DeviceId id = 0; id < 4; ++id) {
    EXPECT_EQ(service.log(id).size(), 3u);
    EXPECT_DOUBLE_EQ(service.log(id).trustworthy_fraction(), 1.0);
  }
}

TEST(AttestationService, StopCancelsFutureRounds) {
  NetRig rig(2);
  for (auto& d : rig.devices) d->prover.start();
  ServiceConfig sc;
  sc.tc = Duration::hours(1);
  AttestationService service(rig.queue, rig.transport, rig.directory, sc);
  service.start();
  rig.queue.run_until(Time::zero() + Duration::hours(1) +
                      Duration::minutes(1));
  service.stop();
  const uint64_t rounds = service.stats().rounds;
  rig.queue.run_until(Time::zero() + Duration::hours(6));
  EXPECT_EQ(service.stats().rounds, rounds);
}

// --- Loss, retries, bounded window -------------------------------------------

TEST(AttestationService, LossyFleetRecoversThroughRetries) {
  NetRig rig(20, /*loss=*/0.25, /*seed=*/99);
  for (auto& d : rig.devices) d->prover.start();
  ServiceConfig sc;
  sc.k = 4;
  sc.response_timeout = Duration::seconds(10);
  sc.max_retries = 3;
  sc.window.fixed = 4;
  AttestationService service(rig.queue, rig.transport, rig.directory, sc);
  rig.queue.run_until(Time::zero() + Duration::minutes(30));
  service.collect_now(rig.all_ids());
  rig.queue.run_until(Time::zero() + Duration::hours(1));

  const auto& stats = service.stats();
  EXPECT_EQ(stats.sessions, 20u);
  EXPECT_EQ(stats.responses + stats.unreachable_sessions, 20u);
  EXPECT_GT(stats.retries, 0u) << "25% loss must trigger retries";
  EXPECT_GT(stats.responses, 15u) << "retries recover most sessions";
  EXPECT_LE(stats.max_in_flight_seen, 4u) << "window must be respected";
  EXPECT_FALSE(service.round_in_progress());
}

TEST(AttestationService, DeadDevicesReportedUnreachable) {
  NetRig rig(3);
  // Device 1 is dead: bound handler removed, never started.
  rig.devices[0]->prover.start();
  rig.devices[2]->prover.start();
  rig.network.set_handler(rig.directory.node(1), {});
  ServiceConfig sc;
  sc.response_timeout = Duration::seconds(2);
  sc.max_retries = 2;
  AttestationService service(rig.queue, rig.transport, rig.directory, sc);
  rig.queue.run_until(Time::zero() + Duration::minutes(30));
  service.collect_now(rig.all_ids());
  rig.queue.run_until(Time::zero() + Duration::hours(1));

  EXPECT_EQ(service.stats().responses, 2u);
  EXPECT_EQ(service.stats().unreachable_sessions, 1u);
  EXPECT_EQ(service.log(1).size(), 1u);
  EXPECT_FALSE(service.log(1).entries()[0].reachable);
  EXPECT_DOUBLE_EQ(service.log(0).reachable_fraction(), 1.0);
}

// --- Response-path hardening (regression: spoofed/stray datagrams) -----------

TEST(AttestationService, SpoofedSourceCannotHijackSession) {
  NetRig rig(1);
  rig.devices[0]->prover.start();
  const net::NodeId attacker = rig.network.add_node({});
  ServiceConfig sc;
  sc.response_timeout = Duration::seconds(30);
  AttestationService service(rig.queue, rig.transport, rig.directory, sc);
  rig.queue.run_until(Time::zero() + Duration::minutes(30));

  // A forged "everything is fine"-shaped response from a node the session
  // is NOT awaiting, landing before the genuine response (the attacker is
  // 4 ms closer than the 5+5 ms round trip).
  rig.queue.schedule_at(rig.queue.now() + Duration::millis(1), [&] {
    CollectResponse forged;
    forged.measurements.push_back(compute_measurement(
        crypto::MacAlgo::kHmacSha256, bytes_of("wrong-key-entirely........."),
        bytes_of("mem"), 1));
    rig.network.send(attacker, rig.verifier_node,
                     frame(MsgType::kCollectResponse, forged.serialize()));
  });
  service.collect_now({0}, /*k=*/2);
  rig.queue.run_until(rig.queue.now() + Duration::minutes(1));

  // The forgery was counted and dropped; the genuine response (and only
  // it) completed the session.
  EXPECT_GE(service.stats().stray_datagrams, 1u);
  EXPECT_EQ(service.stats().responses, 1u);
  ASSERT_EQ(service.log(0).size(), 1u);
  EXPECT_TRUE(service.log(0).entries()[0].report.device_trustworthy())
      << "the bad-MAC forgery must not have been judged as device 0";
}

TEST(AttestationService, WrongMsgTypeFromExpectedSourceIgnored) {
  NetRig rig(1);
  rig.devices[0]->prover.start();
  const net::NodeId dev_node = rig.directory.node(0);
  ServiceConfig sc;
  sc.response_timeout = Duration::seconds(30);
  AttestationService service(rig.queue, rig.transport, rig.directory, sc);
  rig.queue.run_until(Time::zero() + Duration::minutes(30));

  // Correct source, wrong message types: a reflected request frame and an
  // OD response. Neither may complete (or kill) the collect session.
  rig.queue.schedule_at(rig.queue.now() + Duration::millis(1), [&] {
    rig.network.send(dev_node, rig.verifier_node,
                     frame(MsgType::kCollectRequest,
                           CollectRequest{2}.serialize()));
    rig.network.send(dev_node, rig.verifier_node,
                     frame(MsgType::kOdResponse, bytes_of("junk")));
  });
  service.collect_now({0}, /*k=*/2);
  rig.queue.run_until(rig.queue.now() + Duration::minutes(1));

  EXPECT_EQ(service.stats().stray_datagrams, 2u);
  EXPECT_EQ(service.stats().responses, 1u);
  ASSERT_EQ(service.log(0).size(), 1u);
  EXPECT_TRUE(service.log(0).entries()[0].reachable);
}

TEST(AttestationService, MalformedResponseBodyFallsBackToRetry) {
  NetRig rig(1);
  // Replace the prover with a byzantine endpoint answering every request
  // with a truncated CollectResponse.
  const net::NodeId dev_node = rig.directory.node(0);
  rig.network.set_handler(dev_node, [&](const net::Datagram& d) {
    Bytes valid = frame(MsgType::kCollectResponse,
                        CollectResponse{}.serialize());
    valid.pop_back();  // truncate: deserialize must fail
    rig.network.send(dev_node, d.src, std::move(valid));
  });
  ServiceConfig sc;
  sc.response_timeout = Duration::seconds(2);
  sc.max_retries = 2;
  AttestationService service(rig.queue, rig.transport, rig.directory, sc);
  service.collect_now({0});
  rig.queue.run_until(Time::zero() + Duration::minutes(5));

  // Every attempt got a garbage reply: all counted stray, the session ran
  // its full retry budget and was recorded unreachable -- never crashed,
  // never accepted garbage.
  EXPECT_EQ(service.stats().stray_datagrams, 3u);
  EXPECT_EQ(service.stats().retries, 2u);
  EXPECT_EQ(service.stats().responses, 0u);
  EXPECT_EQ(service.stats().unreachable_sessions, 1u);
  ASSERT_EQ(service.log(0).size(), 1u);
  EXPECT_FALSE(service.log(0).entries()[0].reachable);
}

TEST(AttestationService, LateDuplicateResponseCountedStray) {
  NetRig rig(1, /*loss=*/0.0);
  rig.devices[0]->prover.start();
  const net::NodeId dev_node = rig.directory.node(0);
  ServiceConfig sc;
  sc.response_timeout = Duration::millis(8);  // < 10 ms round trip: timeout
  sc.max_retries = 1;                         // fires, then the retry lands
  AttestationService service(rig.queue, rig.transport, rig.directory, sc);
  // An idle instant: at a T_M multiple the prover is busy measuring and
  // would delay both responses past the whole retry budget.
  rig.queue.run_until(Time::zero() + Duration::minutes(25));
  service.collect_now({0});
  rig.queue.run_until(rig.queue.now() + Duration::minutes(1));

  // Both the original and the retry response arrive; the second one finds
  // no session and is dropped as stray.
  EXPECT_EQ(service.stats().retries, 1u);
  EXPECT_EQ(service.stats().responses, 1u);
  EXPECT_EQ(service.stats().stray_datagrams, 1u);
  EXPECT_EQ(service.log(0).size(), 1u);
  (void)dev_node;
}

// --- Round admission (regression: throws must not corrupt state) -------------

TEST(AttestationService, CollectNowDuringInFlightRoundThrowsCleanly) {
  NetRig rig(3);
  for (auto& d : rig.devices) d->prover.start();
  ServiceConfig sc;
  sc.response_timeout = Duration::seconds(30);
  AttestationService service(rig.queue, rig.transport, rig.directory, sc);
  rig.queue.run_until(Time::zero() + Duration::minutes(30));

  service.collect_now(rig.all_ids());
  ASSERT_TRUE(service.round_in_progress());
  // The second round is refused BEFORE any state is touched: once the
  // first round's responses arrive they must land normally (a stale
  // sync-outcome pointer or clobbered round flag would corrupt here).
  EXPECT_THROW(service.collect_now({0}), std::logic_error);
  rig.queue.run_until(rig.queue.now() + Duration::minutes(1));

  EXPECT_FALSE(service.round_in_progress());
  EXPECT_EQ(service.stats().rounds, 1u);
  EXPECT_EQ(service.stats().responses, 3u);
  // And the service is still usable for the next round.
  rig.queue.run_until(rig.queue.now() + Duration::minutes(9));
  service.collect_now({0});
  rig.queue.run_until(rig.queue.now() + Duration::minutes(1));
  EXPECT_EQ(service.stats().responses, 4u);
}

TEST(AttestationService, DuplicateTargetRejectedBeforeDispatch) {
  NetRig rig(2);
  for (auto& d : rig.devices) d->prover.start();
  AttestationService service(rig.queue, rig.transport, rig.directory,
                             ServiceConfig{});
  rig.queue.run_until(Time::zero() + Duration::minutes(30));

  EXPECT_THROW(service.collect_now({0, 1, 0}), std::logic_error);
  // Rejected up front: nothing was dispatched, nothing is in flight, and
  // the service is not wedged mid-round.
  EXPECT_EQ(service.stats().sessions, 0u);
  EXPECT_FALSE(service.round_in_progress());
  service.collect_now({0, 1});
  rig.queue.run_until(rig.queue.now() + Duration::minutes(1));
  EXPECT_EQ(service.stats().responses, 2u);
}

TEST(AttestationService, PeriodicRoundDefersWhileSingleShotDrains) {
  NetRig rig(2);
  rig.devices[0]->prover.start();
  rig.devices[1]->prover.start();
  rig.network.set_handler(rig.directory.node(1), {});  // device 1 dead
  ServiceConfig sc;
  sc.tc = Duration::hours(1);
  sc.response_timeout = Duration::seconds(30);
  sc.max_retries = 2;
  AttestationService service(rig.queue, rig.transport, rig.directory, sc);
  service.start();
  // A single-shot round issued just before the T_C timer fires is still
  // draining (the dead device burns ~90 s of retries) when the periodic
  // round comes due; the periodic round must defer, not abort the run.
  rig.queue.schedule_at(
      Time::zero() + Duration::hours(1) - Duration::seconds(10),
      [&] { service.collect_now({0, 1}); });
  rig.queue.run_until(Time::zero() + Duration::hours(2) +
                      Duration::minutes(1));

  EXPECT_FALSE(service.round_in_progress());
  EXPECT_GE(service.stats().rounds, 2u)
      << "the deferred periodic round must eventually run";
  EXPECT_EQ(service.stats().unreachable_sessions, 2u)
      << "device 1 unreachable in both the single-shot and periodic round";
}

TEST(AttestationService, StopMidRoundQuiescesImmediately) {
  NetRig rig(2);
  rig.devices[0]->prover.start();
  rig.network.set_handler(rig.directory.node(1), {});  // device 1 dead
  ServiceConfig sc;
  sc.response_timeout = Duration::seconds(5);
  sc.max_retries = 3;
  AttestationService service(rig.queue, rig.transport, rig.directory, sc);
  rig.queue.run_until(Time::zero() + Duration::minutes(30));
  service.collect_now(rig.all_ids());
  ASSERT_TRUE(service.round_in_progress());
  service.stop();  // the dead device's session is mid-retry

  // Quiescence: the round is over NOW, no retransmissions go out and no
  // unreachable verdict is recorded minutes after the caller stopped us.
  EXPECT_FALSE(service.round_in_progress());
  rig.queue.run_until(rig.queue.now() + Duration::hours(1));
  EXPECT_EQ(service.stats().retries, 0u)
      << "the dead device's session must not keep retrying after stop()";
  EXPECT_EQ(service.stats().unreachable_sessions, 0u);
  EXPECT_EQ(service.log(1).size(), 0u);
  EXPECT_EQ(service.stats().stray_datagrams, 1u)
      << "device 0's in-flight response lands after stop(): stray";
  // And a fresh round afterwards works normally.
  service.collect_now({0});
  rig.queue.run_until(rig.queue.now() + Duration::minutes(1));
  EXPECT_GE(service.stats().responses, 1u);
}

TEST(AttestationService, DestructionWithInFlightSessionsIsSafe) {
  NetRig rig(2);
  for (auto& d : rig.devices) d->prover.start();
  rig.queue.run_until(Time::zero() + Duration::minutes(30));
  {
    ServiceConfig sc;
    sc.response_timeout = Duration::seconds(5);
    AttestationService service(rig.queue, rig.transport, rig.directory, sc);
    service.start();
    service.collect_now(rig.all_ids());
  }
  // The service died with session timeouts pending, a periodic round
  // armed, and responses en route. Running on must touch none of it
  // (timeouts cancelled, transport receiver severed) -- ASan verifies.
  rig.queue.run_until(rig.queue.now() + Duration::hours(2));
}

TEST(DeviceDirectory, LinkValidatesLikeAdd) {
  DeviceDirectory dir;
  DeviceRecord incomplete;  // no key, no golden epoch
  EXPECT_THROW(dir.link(5, &incomplete), std::invalid_argument);
  incomplete.key = device_key(0);
  EXPECT_THROW(dir.link(5, &incomplete), std::invalid_argument)
      << "a linked record without a golden epoch would be UB to judge";
}

TEST(AttestationService, LogIsEmptyNotThrowingWhenAuditOffOrUntouched) {
  NetRig rig(1);
  rig.devices[0]->prover.start();
  ServiceConfig sc;
  sc.keep_audit = false;
  AttestationService service(rig.queue, rig.transport, rig.directory, sc);
  EXPECT_EQ(service.log(0).size(), 0u) << "before any round";
  rig.queue.run_until(Time::zero() + Duration::minutes(30));
  service.collect_now({0});
  rig.queue.run_until(rig.queue.now() + Duration::minutes(1));
  EXPECT_EQ(service.stats().responses, 1u);
  EXPECT_EQ(service.log(0).size(), 0u) << "audit off: log stays empty";
  EXPECT_EQ(service.log(999).size(), 0u) << "unknown id: empty, not throw";
}

// --- On-demand round kind ----------------------------------------------------

TEST(AttestationService, OnDemandRoundsAuthenticateAndVerifyFreshness) {
  sim::EventQueue queue;
  std::vector<std::unique_ptr<Device>> devices;
  DeviceDirectory directory;
  DirectTransport transport;
  for (uint32_t i = 0; i < 2; ++i) {
    devices.push_back(std::make_unique<Device>(queue, i));
    devices[i]->prover.start();
    directory.add(i, devices[i]->record(i));
    transport.attach(i, devices[i]->prover);
  }
  ServiceConfig sc;
  sc.kind = RoundKind::kOnDemand;
  AttestationService service(queue, transport, directory, sc);
  queue.run_until(Time::zero() + Duration::minutes(25));

  const auto outcomes = service.collect_now({0, 1}, /*k=*/2);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.reachable);
    EXPECT_TRUE(o.fresh_valid) << "authenticated OD must yield a fresh M_0";
    EXPECT_TRUE(o.report.device_trustworthy());
  }
  EXPECT_EQ(devices[0]->prover.stats().od_accepted, 1u);
}

// --- Per-round stats & adaptive window ---------------------------------------

TEST(AttestationService, RoundStatsArePerRoundNotPerLifetime) {
  NetRig rig(8);
  for (auto& d : rig.devices) d->prover.start();
  ServiceConfig sc;
  sc.window.fixed = 4;
  AttestationService service(rig.queue, rig.transport, rig.directory, sc);
  rig.queue.run_until(Time::zero() + Duration::minutes(30));

  service.collect_now(rig.all_ids());
  rig.queue.run_until(rig.queue.now() + Duration::minutes(1));
  EXPECT_EQ(service.round_stats().sessions, 8u);
  EXPECT_EQ(service.round_stats().responses, 8u);
  EXPECT_EQ(service.round_stats().max_in_flight, 4u);

  // A small second round: every per-round counter must restart from
  // zero. (Regression: max_in_flight_seen was only ever a lifetime
  // high-water mark, so a quiet round inherited the busiest round's
  // value.)
  service.collect_now({0, 1});
  rig.queue.run_until(rig.queue.now() + Duration::minutes(1));
  EXPECT_EQ(service.round_stats().sessions, 2u);
  EXPECT_EQ(service.round_stats().responses, 2u);
  EXPECT_LE(service.round_stats().max_in_flight, 2u);
  EXPECT_EQ(service.round_stats().window_final, 4u);

  // Lifetime stats keep accumulating alongside.
  EXPECT_EQ(service.stats().sessions, 10u);
  EXPECT_EQ(service.stats().max_in_flight_seen, 4u);
}

TEST(AttestationService, AdaptiveWindowGrowsOnCleanNetwork) {
  NetRig rig(24);
  for (auto& d : rig.devices) d->prover.start();
  ServiceConfig sc;
  sc.window.adaptive = true;
  sc.window.initial = 4;
  sc.window.floor = 2;
  sc.window.ceiling = 64;
  AttestationService service(rig.queue, rig.transport, rig.directory, sc);
  rig.queue.run_until(Time::zero() + Duration::minutes(30));

  service.collect_now(rig.all_ids());
  rig.queue.run_until(rig.queue.now() + Duration::minutes(1));
  EXPECT_EQ(service.stats().responses, 24u);
  EXPECT_EQ(service.stats().loss_backoffs, 0u);
  EXPECT_GT(service.round_stats().window_final,
            service.round_stats().window_min)
      << "loss-free responses must have grown the window";
  EXPECT_GT(service.round_stats().max_in_flight, 4u)
      << "the grown window must actually admit more sessions";
}

TEST(AttestationService, AdaptiveWindowBacksOffUnderLoss) {
  NetRig rig(30, /*loss=*/0.3, /*seed=*/17);
  for (auto& d : rig.devices) d->prover.start();
  ServiceConfig sc;
  sc.response_timeout = Duration::seconds(5);
  sc.max_retries = 3;
  sc.window.adaptive = true;
  sc.window.initial = 16;
  sc.window.floor = 2;
  sc.window.ceiling = 30;
  AttestationService service(rig.queue, rig.transport, rig.directory, sc);
  rig.queue.run_until(Time::zero() + Duration::minutes(30));

  service.collect_now(rig.all_ids());
  rig.queue.run_until(rig.queue.now() + Duration::hours(1));

  const auto& rs = service.round_stats();
  EXPECT_EQ(rs.sessions, 30u);
  EXPECT_GT(service.stats().loss_backoffs, 0u)
      << "30% loss must trigger multiplicative backoff";
  EXPECT_LT(rs.window_min, 16u) << "backoff must have cut the window";
  EXPECT_GE(rs.window_min, 2u) << "floor must hold";
  EXPECT_EQ(service.stats().loss_backoffs, rs.loss_backoffs);
  // Retries still recover the fleet -- adaptivity must not break
  // correctness.
  EXPECT_GT(service.stats().responses, 25u);
}

}  // namespace
}  // namespace erasmus::attest
