// Tests for the SMART+ and HYDRA security-architecture models: the three
// §3.4 guarantees (exclusive key access, atomic execution, cleanup) plus
// HYDRA's secure boot and process-priority rules.
#include <gtest/gtest.h>

#include <optional>

#include "hw/arch.h"

namespace erasmus::hw {
namespace {

Bytes test_key() { return bytes_of("0123456789abcdef0123456789abcdef"); }

SmartPlusArch make_smart() {
  return SmartPlusArch(test_key(), /*rom_bytes=*/4096,
                       /*app_ram_bytes=*/1024, /*store_bytes=*/512);
}

TEST(SmartPlus, KeyReadableOnlyInsideProtectedCode) {
  auto arch = make_smart();
  Bytes seen;
  arch.run_protected([&](SecurityArch::ProtectedContext& ctx) {
    const ByteView k = ctx.key();
    seen.assign(k.begin(), k.end());
  });
  EXPECT_EQ(seen, test_key());
}

TEST(SmartPlus, KeyAccessOutsideProtectedThrows) {
  auto arch = make_smart();
  // Smuggle a copy of the capability out of the protected section and use
  // it later: the architecture revokes access at section exit.
  std::optional<SecurityArch::ProtectedContext> leaked;
  arch.run_protected(
      [&](SecurityArch::ProtectedContext& ctx) { leaked.emplace(ctx); });
  ASSERT_TRUE(leaked.has_value());
  EXPECT_THROW((void)leaked->key(), SecurityViolation);
}

TEST(SmartPlus, AtomicSectionIsNotReentrant) {
  auto arch = make_smart();
  EXPECT_THROW(
      arch.run_protected([&](SecurityArch::ProtectedContext&) {
        arch.run_protected([](SecurityArch::ProtectedContext&) {});
      }),
      SecurityViolation);
}

TEST(SmartPlus, ProtectedFlagClearedOnException) {
  auto arch = make_smart();
  EXPECT_THROW(arch.run_protected([](SecurityArch::ProtectedContext&) {
    throw std::runtime_error("fault inside attestation code");
  }),
               std::runtime_error);
  EXPECT_FALSE(arch.in_protected());
  // Architecture is reusable afterwards (cleanup guarantee).
  EXPECT_NO_THROW(
      arch.run_protected([](SecurityArch::ProtectedContext&) {}));
}

TEST(SmartPlus, InterruptsDisabledDuringMeasurement) {
  auto arch = make_smart();
  EXPECT_FALSE(arch.interrupts_allowed_during_measurement());
  EXPECT_EQ(arch.name(), "SMART+");
}

TEST(SmartPlus, MemoryRegionsFollowFig5) {
  auto arch = make_smart();
  auto& mem = arch.memory();
  // ROM: read-only for everyone.
  EXPECT_THROW(mem.write(arch.rom_region(), 0, Bytes{1}, false),
               AccessViolation);
  // K: invisible to normal software.
  EXPECT_THROW(mem.read(arch.key_region(), 0, 1, false), AccessViolation);
  // App RAM and the measurement store: unprotected.
  EXPECT_NO_THROW(mem.write(arch.app_region(), 0, Bytes{1}, false));
  EXPECT_NO_THROW(mem.write(arch.store_region(), 0, Bytes{1}, false));
}

TEST(SmartPlus, RomImageIsNonTrivial) {
  auto arch = make_smart();
  const Bytes rom = arch.memory().read(arch.rom_region(), 0, 64, false);
  EXPECT_NE(rom, Bytes(64, 0)) << "ROM should contain a burned-in image";
}

TEST(Hydra, RequiresSecureBootBeforeAttestation) {
  HydraArch arch(test_key(), 1024, 512);
  EXPECT_THROW(
      arch.run_protected([](SecurityArch::ProtectedContext&) {}),
      SecurityViolation);
  arch.secure_boot();
  EXPECT_NO_THROW(
      arch.run_protected([](SecurityArch::ProtectedContext&) {}));
}

TEST(Hydra, SecureBootDetectsCorruptedPrAtt) {
  HydraArch arch(test_key(), 1024, 512);
  arch.secure_boot();
  arch.corrupt_pratt_image();
  EXPECT_THROW(arch.secure_boot(), SecurityViolation);
  EXPECT_THROW(
      arch.run_protected([](SecurityArch::ProtectedContext&) {}),
      SecurityViolation);
}

TEST(Hydra, PrAttIsInitialTopPriorityProcess) {
  HydraArch arch(test_key(), 1024, 512);
  ASSERT_FALSE(arch.processes().empty());
  EXPECT_EQ(arch.processes().front().name, "pratt");
  EXPECT_EQ(arch.processes().front().priority, 255);
  EXPECT_FALSE(arch.processes().front().spawned_by_pratt);
}

TEST(Hydra, UserProcessesMustRunBelowPrAtt) {
  HydraArch arch(test_key(), 1024, 512);
  arch.spawn_process("sensor-app", 100);
  EXPECT_EQ(arch.processes().size(), 2u);
  EXPECT_TRUE(arch.processes().back().spawned_by_pratt);
  EXPECT_THROW(arch.spawn_process("evil", 255), SecurityViolation);
  EXPECT_THROW(arch.spawn_process("evil", 300), SecurityViolation);
}

TEST(Hydra, InterruptsAllowedUnderSeL4) {
  HydraArch arch(test_key(), 1024, 512);
  EXPECT_TRUE(arch.interrupts_allowed_during_measurement());
  EXPECT_EQ(arch.name(), "HYDRA");
}

TEST(Hydra, KernelAndPrAttImagesAreWriteProtectedFromUserland) {
  HydraArch arch(test_key(), 1024, 512);
  arch.secure_boot();
  auto& mem = arch.memory();
  EXPECT_NO_THROW(mem.read(arch.kernel_region(), 0, 16, false));
  EXPECT_THROW(mem.write(arch.kernel_region(), 0, Bytes{1}, false),
               AccessViolation);
  EXPECT_THROW(mem.write(arch.pratt_region(), 0, Bytes{1}, false),
               AccessViolation);
}

TEST(Hydra, KeyAccessWorksAfterBoot) {
  HydraArch arch(test_key(), 1024, 512);
  arch.secure_boot();
  Bytes seen;
  arch.run_protected([&](SecurityArch::ProtectedContext& ctx) {
    seen.assign(ctx.key().begin(), ctx.key().end());
  });
  EXPECT_EQ(seen, test_key());
}

}  // namespace
}  // namespace erasmus::hw
