// Tests for the CSPRNGs behind irregular scheduling: HMAC-DRBG (SP 800-90A)
// and the ChaCha20-based stream RNG.
#include <gtest/gtest.h>

#include <set>

#include "crypto/chacha20.h"
#include "crypto/hmac_drbg.h"

namespace erasmus::crypto {
namespace {

TEST(HmacDrbg, DeterministicForSameSeed) {
  HmacDrbg a(bytes_of("seed"), bytes_of("pers"));
  HmacDrbg b(bytes_of("seed"), bytes_of("pers"));
  EXPECT_EQ(a.generate(64), b.generate(64));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(HmacDrbg, DifferentSeedsDiverge) {
  HmacDrbg a(bytes_of("seed-1"));
  HmacDrbg b(bytes_of("seed-2"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, PersonalizationSeparatesStreams) {
  HmacDrbg a(bytes_of("seed"), bytes_of("schedule"));
  HmacDrbg b(bytes_of("seed"), bytes_of("other-use"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, OutputAdvances) {
  HmacDrbg drbg(bytes_of("seed"));
  EXPECT_NE(drbg.generate(32), drbg.generate(32));
}

TEST(HmacDrbg, ReseedChangesFuture) {
  HmacDrbg a(bytes_of("seed"));
  HmacDrbg b(bytes_of("seed"));
  (void)a.generate(16);
  (void)b.generate(16);
  b.reseed(bytes_of("fresh entropy"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, NextBelowRespectsBound) {
  HmacDrbg drbg(bytes_of("seed"));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(drbg.next_below(17), 17u);
  }
  EXPECT_THROW(drbg.next_below(0), std::invalid_argument);
}

TEST(HmacDrbg, NextBelowCoversRange) {
  HmacDrbg drbg(bytes_of("seed"));
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(drbg.next_below(8));
  EXPECT_EQ(seen.size(), 8u) << "all residues should appear in 200 draws";
}

TEST(HmacDrbg, LargeRequestSpansMultipleHmacBlocks) {
  HmacDrbg drbg(bytes_of("seed"));
  const Bytes out = drbg.generate(1000);  // > 31 SHA-256 outputs
  EXPECT_EQ(out.size(), 1000u);
  // Should not be trivially repeating in 32-byte strides.
  EXPECT_NE(Bytes(out.begin(), out.begin() + 32),
            Bytes(out.begin() + 32, out.begin() + 64));
}

TEST(ChaCha20Rng, DeterministicForSameKeyNonce) {
  ChaCha20Rng a(bytes_of("0123456789abcdef0123456789abcdef"), bytes_of("n"));
  ChaCha20Rng b(bytes_of("0123456789abcdef0123456789abcdef"), bytes_of("n"));
  EXPECT_EQ(a.generate(128), b.generate(128));
}

TEST(ChaCha20Rng, NonceSeparatesStreams) {
  const Bytes key = bytes_of("0123456789abcdef0123456789abcdef");
  ChaCha20Rng a(key, bytes_of("nonce-a"));
  ChaCha20Rng b(key, bytes_of("nonce-b"));
  EXPECT_NE(a.generate(64), b.generate(64));
}

TEST(ChaCha20Rng, RejectsOversizedInputs) {
  EXPECT_THROW(ChaCha20Rng(Bytes(33, 1)), std::invalid_argument);
  EXPECT_THROW(ChaCha20Rng(Bytes(32, 1), Bytes(13, 1)), std::invalid_argument);
}

TEST(ChaCha20Rng, NextBelowBound) {
  ChaCha20Rng rng(bytes_of("k"));
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(1000), 1000u);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(ChaCha20Rng, CrossBlockReadsAreContiguous) {
  ChaCha20Rng a(bytes_of("key"));
  ChaCha20Rng b(bytes_of("key"));
  const Bytes big = a.generate(200);
  Bytes pieced;
  for (int i = 0; i < 8; ++i) append(pieced, b.generate(25));
  EXPECT_EQ(big, pieced);
}

// Distribution smoke test, parameterised over bounds: mean of uniform draws
// in [0, bound) should be near bound/2.
class RngDistribution : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngDistribution, MeanNearHalfBound) {
  const uint64_t bound = GetParam();
  HmacDrbg drbg(bytes_of("distribution-seed"));
  const int kDraws = 4000;
  double sum = 0;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(drbg.next_below(bound));
  }
  const double mean = sum / kDraws;
  const double expected = static_cast<double>(bound - 1) / 2.0;
  EXPECT_NEAR(mean, expected, expected * 0.10 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngDistribution,
                         ::testing::Values(2, 10, 100, 3600, 1u << 20));

}  // namespace
}  // namespace erasmus::crypto
