// Golden-output tests for the CSV and JSON metrics sinks: the sharded
// runner's determinism guarantee is "byte-identical metrics", so the byte
// layout itself is contract, not implementation detail.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "scenario/metrics.h"

namespace erasmus::scenario {
namespace {

void feed(MetricsSink& sink) {
  sink.begin_run("demo");
  sink.note("devices", static_cast<uint64_t>(20));
  sink.note("rate", 0.5);
  sink.note("label", "fleet \"A\"");
  sink.note("ok", true);
  sink.row("rounds", {{"round", static_cast<uint64_t>(1)},
                      {"healthy", static_cast<uint64_t>(19)}});
  sink.row("rounds", {{"round", static_cast<uint64_t>(2)},
                      {"healthy", static_cast<uint64_t>(20)}});
  sink.row("classes", {{"name", "fast"}, {"mean", 2.25}});
  sink.end_run();
}

TEST(CsvSink, GoldenOutput) {
  std::ostringstream out;
  CsvSink sink(out);
  feed(sink);
  EXPECT_EQ(out.str(),
            "# scenario=demo\n"
            "# note devices=20\n"
            "# note rate=0.5\n"
            "# note label=\"fleet \"\"A\"\"\"\n"
            "# note ok=true\n"
            "table,round,healthy\n"
            "rounds,1,19\n"
            "rounds,2,20\n"
            "table,name,mean\n"
            "classes,fast,2.25\n");
}

TEST(JsonSink, GoldenOutput) {
  std::ostringstream out;
  JsonSink sink(out);
  feed(sink);
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"scenario\": \"demo\",\n"
            "  \"notes\": {\n"
            "    \"devices\": 20,\n"
            "    \"rate\": 0.5,\n"
            "    \"label\": \"fleet \\\"A\\\"\",\n"
            "    \"ok\": true\n"
            "  },\n"
            "  \"tables\": {\n"
            "    \"rounds\": [\n"
            "      {\"round\": 1, \"healthy\": 19},\n"
            "      {\"round\": 2, \"healthy\": 20}\n"
            "    ],\n"
            "    \"classes\": [\n"
            "      {\"name\": \"fast\", \"mean\": 2.25}\n"
            "    ]\n"
            "  }\n"
            "}\n");
}

TEST(JsonSink, EmptyRun) {
  std::ostringstream out;
  JsonSink sink(out);
  sink.begin_run("empty");
  sink.end_run();
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"scenario\": \"empty\",\n"
            "  \"notes\": {},\n"
            "  \"tables\": {}\n"
            "}\n");
}

TEST(ValueFormatting, DoublesAreShortestRoundTrip) {
  EXPECT_EQ(Value(0.1).to_plain(), "0.1");
  EXPECT_EQ(Value(1.0).to_plain(), "1.0");
  EXPECT_EQ(Value(1e21).to_plain(), "1e+21");
  EXPECT_EQ(Value(1.0 / 3.0).to_plain(), "0.3333333333333333");
  EXPECT_EQ(Value(-2.5).to_plain(), "-2.5");
}

TEST(ValueFormatting, JsonQuotesAndEscapesStringsOnly) {
  EXPECT_EQ(Value("a\nb").to_json(), "\"a\\nb\"");
  EXPECT_EQ(Value(static_cast<uint64_t>(7)).to_json(), "7");
  EXPECT_EQ(Value(false).to_json(), "false");
  EXPECT_EQ(Value(-3).to_json(), "-3");
}

TEST(ValueFormatting, NonFiniteDoublesStayValidJson) {
  EXPECT_EQ(Value(std::nan("")).to_json(), "null");
  // Infinities overflow any JSON number parser back to infinity, so the
  // document round-trips without becoming a string.
  EXPECT_EQ(Value(INFINITY).to_json(), "1e999");
  EXPECT_EQ(Value(-INFINITY).to_json(), "-1e999");
  EXPECT_EQ(Value(std::nan("")).to_plain(), "null");
  EXPECT_EQ(Value(INFINITY).to_plain(), "1e999");
  EXPECT_EQ(Value(-INFINITY).to_plain(), "-1e999");
}

TEST(CsvSink, QuotesCellsWithEmbeddedSeparators) {
  // RFC 4180: a cell containing a comma, quote, or newline is quoted with
  // inner quotes doubled; plain cells stay raw so historical output is
  // byte-identical.
  std::ostringstream out;
  CsvSink sink(out);
  sink.begin_run("edge");
  sink.note("msg", "a,b");
  sink.row("t", {{"label", "x\ny"}, {"quote", "say \"hi\""}, {"plain", "ok"}});
  sink.end_run();
  EXPECT_EQ(out.str(),
            "# scenario=edge\n"
            "# note msg=\"a,b\"\n"
            "table,label,quote,plain\n"
            "t,\"x\ny\",\"say \"\"hi\"\"\",ok\n");
}

TEST(JsonSink, EscapesEmbeddedSeparators) {
  std::ostringstream out;
  JsonSink sink(out);
  sink.begin_run("edge");
  sink.row("t", {{"label", "x\ny"}, {"quote", "say \"hi\""}, {"comma", "a,b"}});
  sink.end_run();
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"scenario\": \"edge\",\n"
            "  \"notes\": {},\n"
            "  \"tables\": {\n"
            "    \"t\": [\n"
            "      {\"label\": \"x\\ny\", \"quote\": \"say \\\"hi\\\"\", "
            "\"comma\": \"a,b\"}\n"
            "    ]\n"
            "  }\n"
            "}\n");
}

TEST(CsvSink, EmptyRun) {
  std::ostringstream out;
  CsvSink sink(out);
  sink.begin_run("empty");
  sink.end_run();
  EXPECT_EQ(out.str(), "# scenario=empty\n");
}

TEST(MetricsSinks, NonFiniteDoublesInBothSinks) {
  std::ostringstream csv_out;
  CsvSink csv(csv_out);
  csv.begin_run("nonfinite");
  csv.row("t", {{"nan", std::nan("")}, {"inf", INFINITY}});
  csv.end_run();
  EXPECT_EQ(csv_out.str(),
            "# scenario=nonfinite\n"
            "table,nan,inf\n"
            "t,null,1e999\n");

  std::ostringstream json_out;
  JsonSink json(json_out);
  json.begin_run("nonfinite");
  json.row("t", {{"nan", std::nan("")}, {"inf", INFINITY}});
  json.end_run();
  EXPECT_NE(json_out.str().find("{\"nan\": null, \"inf\": 1e999}"),
            std::string::npos);
}

TEST(MetricsSinks, ReRenderingIsByteIdentical) {
  // The determinism guarantee the sharded runner leans on: the same feed
  // yields the same bytes, every time, for both sinks.
  const auto render_csv = [] {
    std::ostringstream out;
    CsvSink sink(out);
    feed(sink);
    return out.str();
  };
  const auto render_json = [] {
    std::ostringstream out;
    JsonSink sink(out);
    feed(sink);
    return out.str();
  };
  EXPECT_EQ(render_csv(), render_csv());
  EXPECT_EQ(render_json(), render_json());
}

}  // namespace
}  // namespace erasmus::scenario
