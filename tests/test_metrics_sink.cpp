// Golden-output tests for the CSV and JSON metrics sinks: the sharded
// runner's determinism guarantee is "byte-identical metrics", so the byte
// layout itself is contract, not implementation detail.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "scenario/metrics.h"

namespace erasmus::scenario {
namespace {

void feed(MetricsSink& sink) {
  sink.begin_run("demo");
  sink.note("devices", static_cast<uint64_t>(20));
  sink.note("rate", 0.5);
  sink.note("label", "fleet \"A\"");
  sink.note("ok", true);
  sink.row("rounds", {{"round", static_cast<uint64_t>(1)},
                      {"healthy", static_cast<uint64_t>(19)}});
  sink.row("rounds", {{"round", static_cast<uint64_t>(2)},
                      {"healthy", static_cast<uint64_t>(20)}});
  sink.row("classes", {{"name", "fast"}, {"mean", 2.25}});
  sink.end_run();
}

TEST(CsvSink, GoldenOutput) {
  std::ostringstream out;
  CsvSink sink(out);
  feed(sink);
  EXPECT_EQ(out.str(),
            "# scenario=demo\n"
            "# note devices=20\n"
            "# note rate=0.5\n"
            "# note label=fleet \"A\"\n"
            "# note ok=true\n"
            "table,round,healthy\n"
            "rounds,1,19\n"
            "rounds,2,20\n"
            "table,name,mean\n"
            "classes,fast,2.25\n");
}

TEST(JsonSink, GoldenOutput) {
  std::ostringstream out;
  JsonSink sink(out);
  feed(sink);
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"scenario\": \"demo\",\n"
            "  \"notes\": {\n"
            "    \"devices\": 20,\n"
            "    \"rate\": 0.5,\n"
            "    \"label\": \"fleet \\\"A\\\"\",\n"
            "    \"ok\": true\n"
            "  },\n"
            "  \"tables\": {\n"
            "    \"rounds\": [\n"
            "      {\"round\": 1, \"healthy\": 19},\n"
            "      {\"round\": 2, \"healthy\": 20}\n"
            "    ],\n"
            "    \"classes\": [\n"
            "      {\"name\": \"fast\", \"mean\": 2.25}\n"
            "    ]\n"
            "  }\n"
            "}\n");
}

TEST(JsonSink, EmptyRun) {
  std::ostringstream out;
  JsonSink sink(out);
  sink.begin_run("empty");
  sink.end_run();
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"scenario\": \"empty\",\n"
            "  \"notes\": {},\n"
            "  \"tables\": {}\n"
            "}\n");
}

TEST(ValueFormatting, DoublesAreShortestRoundTrip) {
  EXPECT_EQ(Value(0.1).to_plain(), "0.1");
  EXPECT_EQ(Value(1.0).to_plain(), "1.0");
  EXPECT_EQ(Value(1e21).to_plain(), "1e+21");
  EXPECT_EQ(Value(1.0 / 3.0).to_plain(), "0.3333333333333333");
  EXPECT_EQ(Value(-2.5).to_plain(), "-2.5");
}

TEST(ValueFormatting, JsonQuotesAndEscapesStringsOnly) {
  EXPECT_EQ(Value("a\nb").to_json(), "\"a\\nb\"");
  EXPECT_EQ(Value(static_cast<uint64_t>(7)).to_json(), "7");
  EXPECT_EQ(Value(false).to_json(), "false");
  EXPECT_EQ(Value(-3).to_json(), "-3");
}

TEST(ValueFormatting, NonFiniteDoublesStayValidJson) {
  EXPECT_EQ(Value(std::nan("")).to_json(), "null");
}

}  // namespace
}  // namespace erasmus::scenario
