// End-to-end prover/verifier integration: the ERASMUS measurement and
// collection phases (Fig. 2), ERASMUS+OD (Fig. 4), timing behaviour
// (Table 2), availability policies (§5) and the network binding.
#include <gtest/gtest.h>

#include "attest/prover.h"
#include "attest/verifier.h"

namespace erasmus::attest {
namespace {

using crypto::MacAlgo;
using sim::Duration;
using sim::Time;

Bytes test_key() { return bytes_of("0123456789abcdef0123456789abcdef"); }

constexpr size_t kRecordBytes = 1 + 8 + 32 + 32;  // HMAC-SHA256 records

struct Rig {
  sim::EventQueue queue;
  hw::SmartPlusArch arch;
  Prover prover;
  Verifier verifier;

  explicit Rig(Duration tm = Duration::minutes(10), size_t slots = 16,
               ProverConfig config = {},
               std::unique_ptr<Scheduler> sched = nullptr)
      : arch(test_key(), 4096, /*app_ram=*/2048, slots * kRecordBytes),
        prover(queue, arch, arch.app_region(), arch.store_region(),
               sched ? std::move(sched)
                     : std::make_unique<RegularScheduler>(tm),
               config),
        verifier([&] {
          VerifierConfig vc;
          vc.algo = config.algo;
          vc.key = test_key();
          vc.golden_digest = crypto::Hash::digest(
              hash_for(config.algo),
              arch.memory().view(arch.app_region(), true));
          return vc;
        }()) {}

  void start_and_track_schedule() {
    prover.start();
    const uint64_t t0 =
        prover.scheduler().next_interval(0) / Duration::seconds(1);
    verifier.set_schedule(&prover.scheduler(), t0);
  }

  void run_for(Duration d) { queue.run_until(queue.now() + d); }
};

TEST(ProverMeasurement, FollowsRegularSchedule) {
  Rig rig;
  rig.prover.start();
  rig.run_for(Duration::hours(1));
  EXPECT_EQ(rig.prover.stats().measurements, 6u);  // T_M = 10 min
  const auto latest = rig.prover.store().latest(rig.prover.latest_index(), 6);
  ASSERT_EQ(latest.size(), 6u);
  EXPECT_EQ(latest[0].timestamp, 3600u);
  EXPECT_EQ(latest[5].timestamp, 600u);
}

TEST(ProverMeasurement, InitialOffsetStaggersStart) {
  Rig rig;
  rig.prover.start(Duration::minutes(3));
  rig.run_for(Duration::minutes(5));
  EXPECT_EQ(rig.prover.stats().measurements, 1u);
  EXPECT_EQ(rig.prover.store().latest(rig.prover.latest_index(), 1)[0]
                .timestamp,
            180u);
}

TEST(ProverMeasurement, StopCancelsFutureMeasurements) {
  Rig rig;
  rig.prover.start();
  rig.run_for(Duration::minutes(25));
  rig.prover.stop();
  rig.run_for(Duration::hours(2));
  EXPECT_EQ(rig.prover.stats().measurements, 2u);
}

TEST(Collection, HealthyDeviceVerifiesClean) {
  Rig rig;
  rig.start_and_track_schedule();
  rig.run_for(Duration::hours(1));

  const auto res = rig.prover.handle_collect(CollectRequest{6});
  const auto report =
      rig.verifier.verify_collection(res.response, rig.queue.now(), 6);
  EXPECT_FALSE(report.infection_detected);
  EXPECT_FALSE(report.tampering_detected);
  EXPECT_TRUE(report.device_trustworthy());
  ASSERT_TRUE(report.freshness.has_value());
  EXPECT_EQ(report.freshness->ns(), 0u)
      << "collection lands exactly on the measurement instant here";
  EXPECT_EQ(report.missing, 0u);
}

TEST(Collection, FreshnessBoundedByTm) {
  Rig rig;
  rig.start_and_track_schedule();
  rig.run_for(Duration::minutes(65));  // 5 min past the 6th measurement

  const auto res = rig.prover.handle_collect(CollectRequest{3});
  const auto report =
      rig.verifier.verify_collection(res.response, rig.queue.now());
  ASSERT_TRUE(report.freshness.has_value());
  EXPECT_EQ(report.freshness->ns(), Duration::minutes(5).ns());
  EXPECT_LE(report.freshness->ns(), Duration::minutes(10).ns());
}

TEST(Collection, RequiresNoCryptoAndIsFast) {
  // Table 2: ERASMUS collection = construct + send = 0.015 ms on i.MX6.
  ProverConfig pc;
  pc.profile = sim::DeviceProfile::imx6_1ghz();
  Rig rig(Duration::minutes(10), 16, pc);
  rig.prover.start();
  // One minute past a measurement, so the device is idle.
  rig.run_for(Duration::minutes(61));

  const auto res = rig.prover.handle_collect(CollectRequest{6});
  EXPECT_LT(res.processing.to_millis(), 0.1);
  EXPECT_GE(res.processing.to_millis(), 0.015);
}

TEST(Collection, WaitsOutInFlightMeasurement) {
  ProverConfig pc;
  pc.profile = sim::DeviceProfile::imx6_1ghz();
  Rig rig(Duration::minutes(10), 16, pc);
  rig.prover.start();
  rig.run_for(Duration::hours(1));  // collection lands ON a measurement

  const auto res = rig.prover.handle_collect(CollectRequest{6});
  const auto measure_cost = pc.profile.measurement_time(
      MacAlgo::kHmacSha256, rig.prover.attested_bytes());
  EXPECT_GE(res.processing.ns(), measure_cost.ns())
      << "request queued behind the in-flight measurement";
}

TEST(Collection, KClampedToBufferCapacity) {
  Rig rig(Duration::minutes(10), /*slots=*/4);
  rig.prover.start();
  rig.run_for(Duration::hours(2));
  const auto res = rig.prover.handle_collect(CollectRequest{1000});
  EXPECT_EQ(res.response.measurements.size(), 4u);
}

TEST(Collection, InfectionVisibleInHistoryAfterMalwareLeft) {
  // Fig. 1 "infection 2" generalised: malware present across a measurement
  // is detected at the NEXT collection even though it left before it.
  Rig rig;
  rig.start_and_track_schedule();

  rig.queue.schedule_at(Time::zero() + Duration::minutes(25), [&] {
    rig.prover.memory().write(rig.arch.app_region(), 100,
                              bytes_of("EVIL PAYLOAD"), false);
  });
  rig.queue.schedule_at(Time::zero() + Duration::minutes(35), [&] {
    // Restore: covers its tracks, but the t=30min measurement saw it.
    Bytes clean(12, 0);
    rig.prover.memory().write(rig.arch.app_region(), 100, clean, false);
  });
  rig.run_for(Duration::hours(1));

  const auto res = rig.prover.handle_collect(CollectRequest{6});
  const auto report =
      rig.verifier.verify_collection(res.response, rig.queue.now());
  EXPECT_TRUE(report.infection_detected);
  EXPECT_FALSE(report.tampering_detected);
  // Exactly one measurement (t = 30 min) is flagged.
  size_t infected = 0;
  for (const auto& v : report.verdicts) {
    if (v.status == MeasurementStatus::kInfected) {
      ++infected;
      EXPECT_EQ(v.m.timestamp, 1800u);
    }
  }
  EXPECT_EQ(infected, 1u);
}

TEST(Collection, MobileMalwareBetweenMeasurementsEscapes) {
  // Fig. 1 "infection 1": enters and leaves within one T_M window.
  Rig rig;
  rig.start_and_track_schedule();
  rig.queue.schedule_at(Time::zero() + Duration::minutes(11), [&] {
    rig.prover.memory().write(rig.arch.app_region(), 100, bytes_of("EVIL"),
                              false);
  });
  rig.queue.schedule_at(Time::zero() + Duration::minutes(14), [&] {
    rig.prover.memory().write(rig.arch.app_region(), 100, Bytes(4, 0), false);
  });
  rig.run_for(Duration::hours(1));

  const auto res = rig.prover.handle_collect(CollectRequest{6});
  const auto report =
      rig.verifier.verify_collection(res.response, rig.queue.now());
  EXPECT_FALSE(report.infection_detected)
      << "this is exactly the on-demand blind spot ERASMUS narrows via T_M";
  EXPECT_TRUE(report.device_trustworthy());
}

TEST(Collection, CorruptedRecordFlagsTampering) {
  Rig rig;
  rig.start_and_track_schedule();
  rig.run_for(Duration::hours(1));
  rig.prover.store().tamper_corrupt(rig.prover.latest_index(),
                                    kRecordBytes - 1, 0x40);
  const auto res = rig.prover.handle_collect(CollectRequest{6});
  const auto report =
      rig.verifier.verify_collection(res.response, rig.queue.now(), 6);
  EXPECT_TRUE(report.tampering_detected);
  EXPECT_FALSE(report.device_trustworthy());
}

TEST(Collection, ErasedRecordFlagsGapAndShortResponse) {
  Rig rig;
  rig.start_and_track_schedule();
  rig.run_for(Duration::hours(1));
  rig.prover.store().tamper_erase(rig.prover.latest_index() - 2);
  const auto res = rig.prover.handle_collect(CollectRequest{6});
  EXPECT_EQ(res.response.measurements.size(), 5u);
  const auto report =
      rig.verifier.verify_collection(res.response, rig.queue.now(), 6);
  EXPECT_TRUE(report.tampering_detected);
  EXPECT_GE(report.missing, 1u);
}

TEST(Collection, ReorderedRecordsFlagTampering) {
  Rig rig;
  rig.start_and_track_schedule();
  rig.run_for(Duration::hours(1));
  rig.prover.store().tamper_swap(rig.prover.latest_index(),
                                 rig.prover.latest_index() - 1);
  const auto res = rig.prover.handle_collect(CollectRequest{6});
  const auto report =
      rig.verifier.verify_collection(res.response, rig.queue.now(), 6);
  EXPECT_TRUE(report.tampering_detected);
}

TEST(Collection, EmptyResponseBeforeFirstMeasurementIsAnomalous) {
  Rig rig;
  rig.start_and_track_schedule();
  rig.run_for(Duration::minutes(5));  // before the first measurement
  const auto res = rig.prover.handle_collect(CollectRequest{3});
  EXPECT_TRUE(res.response.measurements.empty());
  const auto report =
      rig.verifier.verify_collection(res.response, rig.queue.now());
  EXPECT_FALSE(report.freshness.has_value());
  EXPECT_TRUE(report.tampering_detected) << "no authentic measurement";
}

// --- ERASMUS+OD / on-demand -------------------------------------------------

TEST(OnDemand, AuthenticRequestYieldsFreshMeasurement) {
  Rig rig;
  rig.start_and_track_schedule();
  rig.run_for(Duration::minutes(45));

  const uint64_t now_ticks = rig.prover.rroc().read();
  const OdRequest req = rig.verifier.make_od_request(now_ticks, 0);
  const auto res = rig.prover.handle_od(req);
  ASSERT_TRUE(res.response.has_value());
  const auto report = rig.verifier.verify_od_response(
      *res.response, rig.queue.now(), req.treq);
  EXPECT_TRUE(report.fresh_valid);
  EXPECT_EQ(report.fresh.status, MeasurementStatus::kHealthy);
  EXPECT_TRUE(res.response->history.empty()) << "pure on-demand: k = 0";
}

TEST(OnDemand, ErasmusOdAttachesHistory) {
  Rig rig;
  rig.start_and_track_schedule();
  rig.run_for(Duration::minutes(45));

  const OdRequest req =
      rig.verifier.make_od_request(rig.prover.rroc().read(), 4);
  const auto res = rig.prover.handle_od(req);
  ASSERT_TRUE(res.response.has_value());
  EXPECT_EQ(res.response->history.size(), 4u);
  const auto report = rig.verifier.verify_od_response(
      *res.response, rig.queue.now(), req.treq);
  EXPECT_TRUE(report.fresh_valid);
  EXPECT_FALSE(report.history.infection_detected);
}

TEST(OnDemand, ForgedRequestSilentlyAborted) {
  Rig rig;
  rig.prover.start();
  rig.run_for(Duration::minutes(45));

  OdRequest req;
  req.treq = rig.prover.rroc().read();
  req.k = 0;
  req.mac = Bytes(32, 0xab);  // attacker cannot compute MAC_K
  const auto res = rig.prover.handle_od(req);
  EXPECT_FALSE(res.response.has_value());
  EXPECT_EQ(rig.prover.stats().od_rejected, 1u);
  // Anti-DoS: the reject path never pays the measurement cost.
  EXPECT_LT(res.processing.ns(),
            rig.prover.config().profile
                .measurement_time(MacAlgo::kHmacSha256, 2048).ns());
}

TEST(OnDemand, StaleRequestRejected) {
  Rig rig;
  rig.prover.start();
  rig.run_for(Duration::hours(1));
  const uint64_t stale = rig.prover.rroc().read() - 100;
  const OdRequest req = rig.verifier.make_od_request(stale, 0);
  EXPECT_FALSE(rig.prover.handle_od(req).response.has_value());
}

TEST(OnDemand, ReplayRejected) {
  Rig rig;
  rig.prover.start();
  rig.run_for(Duration::hours(1));
  const OdRequest req =
      rig.verifier.make_od_request(rig.prover.rroc().read(), 0);
  EXPECT_TRUE(rig.prover.handle_od(req).response.has_value());
  EXPECT_FALSE(rig.prover.handle_od(req).response.has_value())
      << "t_req watermark must advance";
  EXPECT_EQ(rig.prover.stats().od_rejected, 1u);
}

TEST(OnDemand, FutureTimestampRejected) {
  Rig rig;
  rig.prover.start();
  rig.run_for(Duration::hours(1));
  const OdRequest req =
      rig.verifier.make_od_request(rig.prover.rroc().read() + 50, 0);
  EXPECT_FALSE(rig.prover.handle_od(req).response.has_value());
}

TEST(OnDemand, CostDominatedByMeasurement) {
  // Table 2: ERASMUS+OD collection ~= measurement time (285.6 ms for 10 MB
  // BLAKE2s); plain ERASMUS collection is ~0.015 ms. Factor >= 3000.
  sim::EventQueue queue;
  // 1 MiB attested memory on the HYDRA profile: measurement ~28 ms vs.
  // collection ~0.015 ms (the paper's 10 MB gives factor >3000; scaled
  // down here to keep the unit test quick, factor stays >100).
  hw::SmartPlusArch arch(test_key(), 4096, 1 << 20, 16 * kRecordBytes);
  ProverConfig pc;
  pc.profile = sim::DeviceProfile::imx6_1ghz();
  pc.algo = MacAlgo::kKeyedBlake2s;
  Prover prover(queue, arch, arch.app_region(), arch.store_region(),
                std::make_unique<RegularScheduler>(Duration::minutes(10)),
                pc);
  VerifierConfig vc;
  vc.algo = pc.algo;
  vc.key = test_key();
  vc.golden_digest = crypto::Hash::digest(
      hash_for(pc.algo), arch.memory().view(arch.app_region(), true));
  Verifier verifier(std::move(vc));

  prover.start();
  queue.run_until(Time::zero() + Duration::minutes(61));  // idle instant

  const auto collect = prover.handle_collect(CollectRequest{6});
  const OdRequest req = verifier.make_od_request(prover.rroc().read(), 6);
  const auto od = prover.handle_od(req);
  ASSERT_TRUE(od.response.has_value());
  EXPECT_GT(od.processing.ns() / collect.processing.ns(), 100u);
}

// --- Availability (§5) -------------------------------------------------------

TEST(Availability, MeasureAnywayStealsTaskTime) {
  ProverConfig pc;
  pc.conflict_policy = ConflictPolicy::kMeasureAnyway;
  Rig rig(Duration::minutes(10), 16, pc);
  rig.prover.start();
  // Critical task covering the first measurement instant.
  rig.prover.add_critical_task(Time::zero() + Duration::minutes(9),
                               Duration::minutes(2));
  rig.run_for(Duration::minutes(30));
  EXPECT_EQ(rig.prover.stats().measurements, 3u);
  EXPECT_GT(rig.prover.stats().task_interference.ns(), 0u);
}

TEST(Availability, SkipPolicyDropsConflictedMeasurement) {
  ProverConfig pc;
  pc.conflict_policy = ConflictPolicy::kSkip;
  Rig rig(Duration::minutes(10), 16, pc);
  rig.prover.start();
  rig.prover.add_critical_task(Time::zero() + Duration::minutes(9),
                               Duration::minutes(2));
  rig.run_for(Duration::minutes(30));
  EXPECT_EQ(rig.prover.stats().skipped, 1u);
  EXPECT_EQ(rig.prover.stats().measurements, 2u);
  EXPECT_EQ(rig.prover.stats().task_interference.ns(), 0u);
}

TEST(Availability, LenientPolicyReschedulesWithinWindow) {
  ProverConfig pc;
  pc.conflict_policy = ConflictPolicy::kAbortAndReschedule;
  auto lenient = std::make_unique<LenientScheduler>(
      std::make_unique<RegularScheduler>(Duration::minutes(10)), 2.0);
  Rig rig(Duration::minutes(10), 16, pc, std::move(lenient));
  rig.prover.start();
  rig.prover.add_critical_task(Time::zero() + Duration::minutes(9),
                               Duration::minutes(2));
  // Deferral shifts the whole chain by 1 min: measurements at 11/21/31.
  rig.run_for(Duration::minutes(32));
  EXPECT_EQ(rig.prover.stats().aborted, 1u);
  EXPECT_EQ(rig.prover.stats().measurements, 3u)
      << "deferred, not dropped";
  EXPECT_EQ(rig.prover.stats().task_interference.ns(), 0u);
  EXPECT_GT(rig.prover.stats().max_schedule_slip.ns(), 0u);
  EXPECT_LE(rig.prover.stats().max_schedule_slip.ns(),
            Duration::minutes(10).ns());  // within (w-1)*T_M
}

// --- Irregular schedule end-to-end -------------------------------------------

TEST(IrregularIntegration, VerifierReplaysScheduleWithoutFalseAlarms) {
  ProverConfig pc;
  auto sched = std::make_unique<IrregularScheduler>(
      test_key(), Duration::minutes(5), Duration::minutes(15));
  Rig rig(Duration::minutes(10), 32, pc, std::move(sched));
  rig.start_and_track_schedule();
  rig.run_for(Duration::hours(4));
  ASSERT_GT(rig.prover.stats().measurements, 10u);

  const auto res = rig.prover.handle_collect(CollectRequest{10});
  const auto report =
      rig.verifier.verify_collection(res.response, rig.queue.now(), 10);
  EXPECT_FALSE(report.tampering_detected) << report.note;
  EXPECT_FALSE(report.infection_detected);
}

// --- Network binding ----------------------------------------------------------

TEST(NetworkBinding, CollectOverSimulatedUdp) {
  Rig rig;
  rig.start_and_track_schedule();

  net::Network network(rig.queue, Duration::millis(2));
  const net::NodeId verifier_node = network.add_node({});
  const net::NodeId prover_node = network.add_node({});
  rig.prover.bind(network, prover_node);

  std::optional<CollectionReport> report;
  network.set_handler(verifier_node, [&](const net::Datagram& d) {
    const auto framed = unframe(d.payload);
    ASSERT_TRUE(framed.has_value());
    ASSERT_EQ(framed->first, MsgType::kCollectResponse);
    const auto resp = CollectResponse::deserialize(framed->second);
    ASSERT_TRUE(resp.has_value());
    report = rig.verifier.verify_collection(*resp, rig.queue.now());
  });

  rig.queue.schedule_at(Time::zero() + Duration::hours(1), [&] {
    network.send(verifier_node, prover_node,
                 frame(MsgType::kCollectRequest,
                       CollectRequest{6}.serialize()));
  });
  // The prover's timer re-arms forever; run a bounded window that covers
  // request latency + prover processing + response latency.
  rig.queue.run_until(Time::zero() + Duration::hours(1) +
                      Duration::seconds(10));

  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->device_trustworthy());
  EXPECT_EQ(network.stats().delivered, 2u);
}

TEST(NetworkBinding, MalformedDatagramIgnored) {
  Rig rig;
  rig.prover.start();
  net::Network network(rig.queue, Duration::millis(2));
  const net::NodeId sender = network.add_node({});
  const net::NodeId prover_node = network.add_node({});
  rig.prover.bind(network, prover_node);
  network.send(sender, prover_node, Bytes{0xff, 0x00, 0x01});
  rig.queue.run_until(Time::zero() + Duration::hours(1));
  EXPECT_EQ(rig.prover.stats().collections, 0u);
}

}  // namespace
}  // namespace erasmus::attest
