// Tests for the sharded fleet runner, above all its headline guarantee:
// for a fixed seed, metrics are bit-for-bit identical at any thread count.
#include <gtest/gtest.h>

#include <sstream>

#include "scenario/scenario.h"
#include "scenario/sharded_runner.h"

namespace erasmus::scenario {
namespace {

using sim::Duration;
using sim::Time;

ShardedFleetConfig small_config(size_t threads) {
  swarm::DeviceSpec base;
  base.tm = Duration::minutes(10);
  base.app_ram_bytes = 1024;
  base.store_slots = 16;

  ShardedFleetConfig cfg;
  cfg.plan = swarm::FleetPlan::uniform(24, /*key_seed=*/42, base);
  cfg.plan.mobility.field_size = 120.0;
  cfg.plan.mobility.radio_range = 50.0;
  cfg.plan.mobility.speed_min = 4.0;
  cfg.plan.mobility.speed_max = 9.0;
  cfg.plan.mobility.seed = 42;
  cfg.threads = threads;
  cfg.rounds = 4;
  cfg.round_interval = Duration::minutes(30);
  cfg.k = 4;
  return cfg;
}

std::string run_to_json(ShardedFleetConfig cfg, bool infect = true) {
  std::ostringstream out;
  JsonSink sink(out);
  sink.begin_run("determinism");
  ShardedFleetRunner runner(cfg);
  if (infect) {
    runner.schedule_on_device(
        7, Time::zero() + Duration::minutes(35), [](attest::Prover& p) {
          p.memory().write(p.attested_region(), 16, bytes_of("IMPLANT"),
                           false);
        });
  }
  runner.run(sink);
  sink.end_run();
  return out.str();
}

TEST(ShardedFleetRunner, DeterministicAcross1_2_8Threads) {
  const std::string t1 = run_to_json(small_config(1));
  const std::string t2 = run_to_json(small_config(2));
  const std::string t8 = run_to_json(small_config(8));
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
  // And the run is not trivially empty: the infected device gets flagged.
  EXPECT_NE(t1.find("\"flagged\": 1"), std::string::npos) << t1;
}

ShardedFleetConfig overlay_config(size_t threads) {
  ShardedFleetConfig cfg = small_config(threads);
  cfg.backend = CollectionBackend::kOverlay;
  cfg.overlay.collect_deadline = Duration::seconds(25);
  return cfg;
}

TEST(ShardedFleetRunner, OverlayBackendDeterministicAcrossThreads) {
  // The tentpole guarantee extended to packet-level collection: floods,
  // store-and-forward relays and retries all run on the coordinator
  // clock, so the radio traffic cannot see the shard layout.
  const std::string t1 = run_to_json(overlay_config(1));
  const std::string t2 = run_to_json(overlay_config(2));
  const std::string t8 = run_to_json(overlay_config(8));
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
  EXPECT_NE(t1.find("\"flagged\": 1"), std::string::npos) << t1;
  EXPECT_NE(t1.find("\"overlay\""), std::string::npos)
      << "overlay backend must emit its per-round stats table";
  EXPECT_NE(t1.find("\"hops\""), std::string::npos);
}

TEST(ShardedFleetRunner, OverlayBackendActuallyRelaysMultiHop) {
  std::ostringstream out;
  JsonSink sink(out);
  sink.begin_run("overlay");
  ShardedFleetRunner runner(overlay_config(2));
  const auto rounds = runner.run(sink);
  sink.end_run();

  size_t collected = 0;
  for (const auto& r : rounds) collected += r.reachable;
  EXPECT_GT(collected, 0u);

  const auto totals = runner.overlay_totals();
  EXPECT_GT(totals.floods_forwarded, 0u) << "flood must propagate";
  uint64_t reports = 0;
  uint64_t beyond_first_hop = 0;
  for (size_t h = 0; h < totals.hops.size(); ++h) {
    reports += totals.hops[h];
    if (h > 0) beyond_first_hop += totals.hops[h];
  }
  // >=, not ==: a slow response racing its own retry can land two
  // transport-accepted reports for one session (the second is a service
  // stray), but never fewer than one per collected device.
  EXPECT_GE(reports, collected)
      << "every accepted report lands in the hop histogram";
  EXPECT_GT(beyond_first_hop, 0u)
      << "a 120 m field with 50 m radios needs real multi-hop";
}

TEST(ShardedFleetRunner, MoreThreadsThanDevicesClampsToFleetSize) {
  ShardedFleetConfig cfg = small_config(64);
  cfg.plan.set_devices(3);
  cfg.plan.mobility.radio_range = 500.0;  // fully connected
  const std::string wide = run_to_json(cfg, /*infect=*/false);
  cfg.threads = 1;
  EXPECT_EQ(run_to_json(cfg, /*infect=*/false), wide);
}

TEST(ShardedFleetRunner, HeterogeneousTmStaysDeterministic) {
  auto with_mixed_tm = [](size_t threads) {
    ShardedFleetConfig cfg = small_config(threads);
    cfg.plan.cycle_tm({Duration::minutes(5), Duration::minutes(10),
                       Duration::minutes(15)});
    return run_to_json(cfg);
  };
  EXPECT_EQ(with_mixed_tm(1), with_mixed_tm(8));
}

TEST(ShardedFleetRunner, ChurnAtBarriersStaysDeterministic) {
  auto with_churn = [](size_t threads) {
    ShardedFleetConfig cfg = small_config(threads);
    std::ostringstream out;
    JsonSink sink(out);
    sink.begin_run("churn");
    ShardedFleetRunner runner(cfg);
    runner.set_round_hook([](ShardedFleetRunner& r, size_t round, sim::Time) {
      // Deterministic churn: device (5 * round) % size leaves, device
      // from the previous round rejoins.
      const auto leaver =
          static_cast<swarm::DeviceId>((5 * round) % r.size());
      const auto rejoiner =
          static_cast<swarm::DeviceId>((5 * (round - 1)) % r.size());
      if (round > 1) r.set_present(rejoiner, true);
      if (leaver != 0) r.set_present(leaver, false);
    });
    const auto rounds = runner.run(sink);
    sink.end_run();
    EXPECT_LT(rounds.back().present, cfg.plan.devices());
    return out.str();
  };
  EXPECT_EQ(with_churn(1), with_churn(4));
}

TEST(ShardedFleetRunner, AbsentDevicesAreNotCollected) {
  ShardedFleetConfig cfg = small_config(2);
  cfg.plan.mobility.radio_range = 500.0;  // everyone in range of root
  cfg.rounds = 1;
  NullSink sink;
  ShardedFleetRunner runner(cfg);
  runner.set_present(5, false);
  runner.set_present(6, false);
  const auto rounds = runner.run(sink);
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0].present, cfg.plan.devices() - 2);
  EXPECT_EQ(rounds[0].reachable, cfg.plan.devices() - 2);
  // Absent provers took no part: their timers were never started.
  EXPECT_EQ(runner.prover(5).stats().collections, 0u);
  EXPECT_EQ(runner.prover(5).stats().measurements, 0u);
}

TEST(ShardedFleetRunner, ValidatesConfig) {
  ShardedFleetConfig cfg = small_config(1);
  cfg.threads = 0;
  EXPECT_THROW(ShardedFleetRunner{cfg}, std::invalid_argument);
  cfg = small_config(1);
  cfg.plan.set_devices(0);
  EXPECT_THROW(ShardedFleetRunner{cfg}, std::invalid_argument);
  cfg = small_config(1);
  cfg.root = 24;
  EXPECT_THROW(ShardedFleetRunner{cfg}, std::invalid_argument);
}

TEST(ShardedFleetRunner, RunIsSingleShot) {
  ShardedFleetConfig cfg = small_config(1);
  cfg.rounds = 1;
  NullSink sink;
  ShardedFleetRunner runner(cfg);
  runner.run(sink);
  EXPECT_THROW(runner.run(sink), std::logic_error);
}

// The registered swarm_patrol scenario (the acceptance-criteria surface):
// same params, different `threads`, identical JSON bytes.
TEST(ShardedFleetRunner, SwarmPatrolScenarioThreadCountInvariant) {
  const Scenario* s = ScenarioRegistry::instance().find("swarm_patrol");
  ASSERT_NE(s, nullptr);
  auto run_with_threads = [&](const char* threads) {
    std::ostringstream out;
    JsonSink sink(out);
    sink.begin_run(s->name());
    const int code = s->run(
        ParamMap::from_args(
            {"devices=40", "seed=42", std::string("threads=") + threads}),
        sink);
    EXPECT_EQ(code, 0);
    sink.end_run();
    return out.str();
  };
  const std::string t1 = run_with_threads("1");
  EXPECT_EQ(t1, run_with_threads("2"));
  EXPECT_EQ(t1, run_with_threads("8"));
}

}  // namespace
}  // namespace erasmus::scenario
