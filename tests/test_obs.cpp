// Tests for the flight recorder (obs::TraceRecorder), the metrics registry
// (obs::Registry) and the phase profiler (obs::PhaseProfiler).
//
// The load-bearing property is partition-independence: the merged trace
// must be a pure function of the emitted events, never of how devices were
// split across shards -- that is what makes --trace output byte-identical
// at 1/2/8 threads.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/phase.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace erasmus::obs {
namespace {

using sim::Time;

TraceEvent device_event(uint64_t at_ns, uint32_t actor, const char* name) {
  return {Time(at_ns), actor, Subsystem::kDevice, TraceKind::kInstant, name,
          {}};
}

// --- subsystem filter --------------------------------------------------------

TEST(TraceFilter, ParsesKnownNames) {
  EXPECT_EQ(parse_subsystem_filter("service"),
            1u << static_cast<uint8_t>(Subsystem::kService));
  EXPECT_EQ(
      parse_subsystem_filter(
          "runner,service,window,overlay,device,energy,adversary"),
      all_subsystems());
}

TEST(TraceFilter, ThrowsOnUnknownOrEmptyName) {
  EXPECT_THROW(parse_subsystem_filter("services"), std::invalid_argument);
  EXPECT_THROW(parse_subsystem_filter("service,,window"),
               std::invalid_argument);
  EXPECT_THROW(parse_subsystem_filter(""), std::invalid_argument);
}

TEST(TraceFilter, DisabledSubsystemEventsAreDiscardedNotCounted) {
  TraceConfig config;
  config.subsystems = parse_subsystem_filter("service");
  TraceRecorder recorder(config);
  recorder.instant(Subsystem::kWindow, Time(10), "cut");
  recorder.instant(Subsystem::kService, Time(20), "dispatch");
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.events()[0].name, "dispatch");
  // Filtered events are not "dropped" -- the user asked for them to be off.
  EXPECT_EQ(recorder.dropped(), 0u);
}

// --- shard merge: partition independence -------------------------------------

TEST(TraceMerge, MergedOrderIsIndependentOfShardPartition) {
  // Four actors' events, interleaved in sim time, fed once through 1 shard
  // and once split across 2 shards: the merged event sequences must match.
  const std::vector<TraceEvent> events = {
      device_event(30, 2, "c"), device_event(10, 0, "a"),
      device_event(10, 1, "b"), device_event(20, 0, "a2"),
      device_event(30, 3, "d"), device_event(5, 3, "d0"),
  };

  const auto run = [&](size_t shards) {
    TraceRecorder recorder;
    recorder.attach_shards(shards);
    for (const auto& e : events) {
      // Actors never span shards in the runner; mimic that assignment.
      recorder.shard(e.actor % shards)->emit(e);
    }
    recorder.merge_shards();
    std::vector<std::pair<uint64_t, std::string>> merged;
    for (const auto& e : recorder.events()) {
      merged.emplace_back(e.at.ns(), e.name);
    }
    return merged;
  };

  const auto one = run(1);
  const auto two = run(2);
  EXPECT_EQ(one, two);
  ASSERT_EQ(one.size(), events.size());
  // Sorted by (time, actor): d0@5, a@10, b@10, a2@20, c@30, d@30.
  EXPECT_EQ(one.front().second, "d0");
  EXPECT_EQ(one.back().second, "d");
}

TEST(TraceMerge, PerActorEmissionOrderSurvivesTies) {
  // Two events from one actor at the SAME sim time: stable sort keeps the
  // emission order, which is deterministic because one actor lives in
  // exactly one shard.
  TraceRecorder recorder;
  recorder.attach_shards(1);
  recorder.shard(0)->emit(device_event(10, 7, "first"));
  recorder.shard(0)->emit(device_event(10, 7, "second"));
  recorder.merge_shards();
  ASSERT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.events()[0].name, "first");
  EXPECT_EQ(recorder.events()[1].name, "second");
}

TEST(TraceMerge, ShardIsNullWhenDeviceTracingDisabled) {
  TraceConfig config;
  config.subsystems = parse_subsystem_filter("runner");
  TraceRecorder recorder(config);
  recorder.attach_shards(2);
  EXPECT_EQ(recorder.shard(0), nullptr);
  EXPECT_EQ(recorder.shard(1), nullptr);
}

// --- deterministic bounding --------------------------------------------------

TEST(TraceBounding, PerActorQuotaDropsExcessDeterministically) {
  TraceConfig config;
  config.per_actor_quota = 2;
  TraceRecorder recorder(config);
  recorder.attach_shards(1);
  for (int i = 0; i < 5; ++i) {
    recorder.shard(0)->emit(device_event(static_cast<uint64_t>(i), 3, "e"));
  }
  // A second actor in the same shard has its own quota.
  recorder.shard(0)->emit(device_event(0, 4, "other"));
  recorder.merge_shards();
  EXPECT_EQ(recorder.size(), 3u);  // 2 from actor 3 + 1 from actor 4
  EXPECT_EQ(recorder.dropped(), 3u);
}

TEST(TraceBounding, QuotaResetsEachBarrierInterval) {
  TraceConfig config;
  config.per_actor_quota = 1;
  TraceRecorder recorder(config);
  recorder.attach_shards(1);
  recorder.shard(0)->emit(device_event(1, 0, "a"));
  recorder.shard(0)->emit(device_event(2, 0, "dropped"));
  recorder.merge_shards();
  recorder.shard(0)->emit(device_event(3, 0, "b"));  // fresh interval
  recorder.merge_shards();
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.dropped(), 1u);
}

TEST(TraceBounding, MaxEventsCapsTotalAndCounts) {
  TraceConfig config;
  config.max_events = 2;
  TraceRecorder recorder(config);
  recorder.instant(Subsystem::kRunner, Time(1), "a");
  recorder.instant(Subsystem::kRunner, Time(2), "b");
  recorder.instant(Subsystem::kRunner, Time(3), "c");
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.dropped(), 1u);
}

// --- exporters ---------------------------------------------------------------

TEST(TraceExport, ChromeTraceGolden) {
  TraceRecorder recorder;
  recorder.span_begin(Subsystem::kService, Time(1000), "round",
                      {{"round", uint64_t{1}}});
  recorder.span_end(Subsystem::kService, Time(2500), "round");
  recorder.attach_shards(1);
  recorder.shard(0)->emit(device_event(1500, 0, "measure"));
  recorder.merge_shards();

  std::ostringstream out;
  recorder.write_chrome_trace(out);
  const std::string trace = out.str();
  // Structural contract rather than full-file golden: header, the three
  // events with microsecond timestamps, and the dropped-event footer.
  EXPECT_NE(trace.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"B\",\"ts\":1.0,"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"E\",\"ts\":2.5,"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\",\"ts\":1.5,"), std::string::npos);
  EXPECT_NE(trace.find("\"args\":{\"round\":1}"), std::string::npos);
  EXPECT_NE(trace.find("\"dropped_events\":0"), std::string::npos);

  // Re-rendering is byte-identical.
  std::ostringstream again;
  recorder.write_chrome_trace(again);
  EXPECT_EQ(trace, again.str());
}

TEST(TraceExport, JsonlOneObjectPerLine) {
  TraceRecorder recorder;
  recorder.instant(Subsystem::kOverlay, Time(42), "flood",
                   {{"ttl", uint64_t{6}}});
  std::ostringstream out;
  recorder.write_jsonl(out);
  EXPECT_EQ(out.str(),
            "{\"at_ns\":42,\"actor\":\"coordinator\",\"sub\":\"overlay\","
            "\"kind\":\"instant\",\"name\":\"flood\",\"args\":{\"ttl\":6}}\n");
}

// --- registry ----------------------------------------------------------------

TEST(Registry, RegistrationIsIdempotent) {
  Registry registry;
  Counter& a = registry.counter("overlay", "relay_drops");
  Counter& b = registry.counter("overlay", "relay_drops");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, KindMismatchThrows) {
  Registry registry;
  registry.counter("service", "responses");
  EXPECT_THROW(registry.gauge("service", "responses"), std::logic_error);
  EXPECT_THROW(registry.histogram("service", "responses", {1.0}),
               std::logic_error);
}

TEST(Registry, SnapshotPreservesRegistrationOrder) {
  Registry registry;
  registry.counter("service", "responses").add(2);
  registry.gauge("window", "window").set(24.0);
  registry.counter("overlay", "floods").add(1);
  const auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "responses");
  EXPECT_EQ(samples[0].kind, Registry::Kind::kCounter);
  EXPECT_EQ(samples[0].value, 2.0);
  EXPECT_EQ(samples[1].subsystem, "window");
  EXPECT_EQ(samples[1].value, 24.0);
  EXPECT_EQ(samples[2].name, "floods");
}

TEST(Registry, HistogramBucketsInclusiveUpperWithOverflow) {
  Registry registry;
  Histogram& h = registry.histogram("overlay", "hop_count", {1.0, 3.0, 8.0});
  h.observe(1.0);   // inclusive: lands in le=1
  h.observe(2.0);   // le=3
  h.observe(100.0); // overflow
  const auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  const auto& buckets = samples[0].buckets;
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0].second, 1u);
  EXPECT_EQ(buckets[1].second, 1u);
  EXPECT_EQ(buckets[2].second, 0u);
  EXPECT_EQ(buckets[3].second, 1u);  // overflow, bound +inf
  EXPECT_EQ(samples[0].value, 3.0);  // total observations
  EXPECT_EQ(h.sum(), 103.0);
}

TEST(Registry, HistogramBoundsMustStrictlyIncrease) {
  Registry registry;
  EXPECT_THROW(registry.histogram("x", "bad", {1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(registry.histogram("x", "unsorted", {3.0, 1.0}),
               std::invalid_argument);
  // Empty bounds are legal: a pure event counter with one overflow bucket.
  EXPECT_EQ(registry.histogram("x", "empty", {}).counts().size(), 1u);
}

// --- phase profiler ----------------------------------------------------------

TEST(PhaseProfiler, ReportMath) {
  PhaseProfiler profiler;
  // 4 threads, 10 ms advance wall, 28 ms total busy -> 12 ms parked.
  profiler.record_advance(4, /*busy_ms_sum=*/28.0, /*wall_ms=*/10.0);
  profiler.record_coordinator(5.0);
  const auto report = profiler.report();
  EXPECT_EQ(report.rounds, 1u);
  EXPECT_EQ(report.threads, 4u);
  EXPECT_DOUBLE_EQ(report.shard_work_ms, 28.0);
  EXPECT_DOUBLE_EQ(report.barrier_wait_ms, 12.0);
  EXPECT_DOUBLE_EQ(report.coordinator_ms, 5.0);
  // (12 + 3*5) / (4 * (10 + 5)) = 27/60
  EXPECT_DOUBLE_EQ(report.barrier_wait_share, 27.0 / 60.0);
}

TEST(PhaseProfiler, BarrierWaitClampsAtZero) {
  // Timer jitter can make busy_sum exceed threads*wall; the wait must
  // clamp to zero rather than go negative.
  PhaseProfiler profiler;
  profiler.record_advance(2, /*busy_ms_sum=*/21.0, /*wall_ms=*/10.0);
  const auto report = profiler.report();
  EXPECT_DOUBLE_EQ(report.barrier_wait_ms, 0.0);
  EXPECT_GE(report.barrier_wait_share, 0.0);
}

TEST(PhaseProfiler, EmptyReportIsAllZero) {
  const auto report = PhaseProfiler().report();
  EXPECT_EQ(report.rounds, 0u);
  EXPECT_DOUBLE_EQ(report.barrier_wait_share, 0.0);
}

}  // namespace
}  // namespace erasmus::obs
