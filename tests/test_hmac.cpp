// HMAC known-answer tests (RFC 2202 for SHA-1, RFC 4231 for SHA-256) and
// tests for the Mac abstraction used by the measurement code.
#include <gtest/gtest.h>

#include "common/hex.h"
#include "crypto/hmac.h"
#include "crypto/mac.h"

namespace erasmus::crypto {
namespace {

Bytes hex(std::string_view s) { return from_hex(s).value(); }

TEST(HmacSha1, Rfc2202Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(Hmac::compute(HashAlgo::kSha1, key, bytes_of("Hi There")),
            hex("b617318655057264e28bc0b6fb378c8ef146be00"));
}

TEST(HmacSha1, Rfc2202Case2) {
  EXPECT_EQ(Hmac::compute(HashAlgo::kSha1, bytes_of("Jefe"),
                          bytes_of("what do ya want for nothing?")),
            hex("effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"));
}

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(
      Hmac::compute(HashAlgo::kSha256, key, bytes_of("Hi There")),
      hex("b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"));
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(
      Hmac::compute(HashAlgo::kSha256, bytes_of("Jefe"),
                    bytes_of("what do ya want for nothing?")),
      hex("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"));
}

TEST(HmacSha256, Rfc4231Case3FiftyAa) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(
      Hmac::compute(HashAlgo::kSha256, key, data),
      hex("773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"));
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      Hmac::compute(HashAlgo::kSha256, key,
                    bytes_of("Test Using Larger Than Block-Size Key - Hash "
                             "Key First")),
      hex("60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"));
}

TEST(Hmac, StreamingEqualsOneShot) {
  Hmac mac(HashAlgo::kSha256, bytes_of("key"));
  mac.update(bytes_of("hello "));
  mac.update(bytes_of("world"));
  EXPECT_EQ(mac.finalize(), Hmac::compute(HashAlgo::kSha256, bytes_of("key"),
                                          bytes_of("hello world")));
}

TEST(Hmac, FinalizeResetsForSameKey) {
  Hmac mac(HashAlgo::kSha256, bytes_of("key"));
  mac.update(bytes_of("m1"));
  const Bytes t1 = mac.finalize();
  mac.update(bytes_of("m1"));
  EXPECT_EQ(mac.finalize(), t1);
}

// --- Mac abstraction ---------------------------------------------------------

TEST(Mac, FactoryCoversAllAlgorithms) {
  for (auto algo : all_mac_algos()) {
    auto mac = Mac::create(algo, bytes_of("0123456789abcdef0123456789abcdef"));
    ASSERT_NE(mac, nullptr);
    EXPECT_EQ(mac->algo(), algo);
    EXPECT_GT(mac->tag_size(), 0u);
  }
}

TEST(Mac, HmacImplementationsMatchHmacClass) {
  const Bytes key = bytes_of("some key");
  const Bytes msg = bytes_of("some message");
  EXPECT_EQ(Mac::compute(MacAlgo::kHmacSha1, key, msg),
            Hmac::compute(HashAlgo::kSha1, key, msg));
  EXPECT_EQ(Mac::compute(MacAlgo::kHmacSha256, key, msg),
            Hmac::compute(HashAlgo::kSha256, key, msg));
}

TEST(Mac, VerifyAcceptsValidTag) {
  const Bytes key = bytes_of("k");
  const Bytes msg = bytes_of("m");
  for (auto algo : all_mac_algos()) {
    const Bytes tag = Mac::compute(algo, key, msg);
    EXPECT_TRUE(Mac::verify(algo, key, msg, tag)) << to_string(algo);
  }
}

TEST(Mac, VerifyRejectsTamperedTagMessageOrKey) {
  const Bytes key = bytes_of("k");
  const Bytes msg = bytes_of("m");
  for (auto algo : all_mac_algos()) {
    Bytes tag = Mac::compute(algo, key, msg);
    Bytes bad_tag = tag;
    bad_tag[0] ^= 1;
    EXPECT_FALSE(Mac::verify(algo, key, msg, bad_tag));
    EXPECT_FALSE(Mac::verify(algo, key, bytes_of("m2"), tag));
    EXPECT_FALSE(Mac::verify(algo, bytes_of("k2"), msg, tag));
    EXPECT_FALSE(Mac::verify(algo, key, msg, Bytes(tag.begin(), tag.end() - 1)));
  }
}

TEST(Mac, NamesMatchTable1) {
  EXPECT_EQ(to_string(MacAlgo::kHmacSha1), "HMAC-SHA1");
  EXPECT_EQ(to_string(MacAlgo::kHmacSha256), "HMAC-SHA256");
  EXPECT_EQ(to_string(MacAlgo::kKeyedBlake2s), "Keyed BLAKE2S");
}

TEST(Mac, Sha1IsDeprecatedForDeployment) {
  // The paper: "We exclude it in our actual implementations due to a recent
  // collision attack in SHA1."
  EXPECT_TRUE(deprecated_for_deployment(MacAlgo::kHmacSha1));
  EXPECT_FALSE(deprecated_for_deployment(MacAlgo::kHmacSha256));
  EXPECT_FALSE(deprecated_for_deployment(MacAlgo::kKeyedBlake2s));
}

TEST(CtEqual, ComparesCorrectly) {
  EXPECT_TRUE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2}, Bytes{1, 2, 3}));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

// Property: tags from different algorithms never collide structurally and
// streaming matches one-shot for every algorithm across sizes.
struct MacCase {
  MacAlgo algo;
  size_t len;
};

class MacStreamingProperty : public ::testing::TestWithParam<MacCase> {};

TEST_P(MacStreamingProperty, StreamingEqualsOneShot) {
  const auto& p = GetParam();
  const Bytes key = bytes_of("shared-device-key-K");
  Bytes msg(p.len);
  for (size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<uint8_t>(i * 17 + 3);
  }
  auto mac = Mac::create(p.algo, key);
  for (size_t off = 0; off < msg.size(); off += 37) {
    mac->update(ByteView(msg).subspan(off, std::min<size_t>(37, p.len - off)));
  }
  EXPECT_EQ(mac->finalize(), Mac::compute(p.algo, key, msg));
}

std::vector<MacCase> mac_cases() {
  std::vector<MacCase> cases;
  for (auto algo : all_mac_algos()) {
    for (size_t len : {0ul, 1ul, 64ul, 65ul, 512ul, 10000ul}) {
      cases.push_back({algo, len});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgosAndSizes, MacStreamingProperty,
                         ::testing::ValuesIn(mac_cases()));

}  // namespace
}  // namespace erasmus::crypto
