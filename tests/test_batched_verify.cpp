// Batched report verification (ServiceConfig::verify_executor) must be a
// pure wall-clock optimization: verdict-for-verdict, stat-for-stat
// identical to the inline per-session path, on a fleet that exercises
// every verdict class -- healthy, infected (authentic digest mismatch)
// and tampered (bad MACs) -- across mixed MAC algorithms (the batching
// groups work per algorithm, so the grouping must not reorder results).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "attest/directory.h"
#include "attest/measurement.h"
#include "attest/prover.h"
#include "attest/service.h"
#include "attest/transport.h"
#include "common/parallel.h"

namespace erasmus::attest {
namespace {

using sim::Duration;
using sim::Time;

constexpr size_t kRecordBytes = 1 + 8 + 32 + 32;
constexpr uint32_t kDevices = 12;
constexpr uint32_t kInfected = 3;  // app region scribbled mid-run
constexpr uint32_t kTampered = 7;  // verifier holds the wrong key

Bytes device_key(uint32_t id) {
  Bytes key = bytes_of("batched-verify-key-0123456789ab");
  key.push_back(static_cast<uint8_t>(id));
  return key;
}

crypto::MacAlgo algo_for(uint32_t id) {
  // Interleave algorithms by id so the per-algorithm grouping inside the
  // bulk pass genuinely permutes the work order.
  switch (id % 3) {
    case 0: return crypto::MacAlgo::kHmacSha256;
    case 1: return crypto::MacAlgo::kKeyedBlake2s;
    default: return crypto::MacAlgo::kHmacSha1;
  }
}

struct Device {
  hw::SmartPlusArch arch;
  Prover prover;

  static ProverConfig config_for(uint32_t id) {
    ProverConfig pc;
    pc.algo = algo_for(id);
    return pc;
  }

  Device(sim::EventQueue& queue, uint32_t id)
      : arch(device_key(id), 4096, 2048, 32 * kRecordBytes),
        prover(queue, arch, arch.app_region(), arch.store_region(),
               std::make_unique<RegularScheduler>(Duration::minutes(10)),
               config_for(id)) {}
};

/// One complete fleet + service, inline or batched verification.
struct Rig {
  sim::EventQueue queue;
  std::vector<std::unique_ptr<Device>> devices;
  DeviceDirectory directory;
  DirectTransport transport;
  std::unique_ptr<AttestationService> service;

  explicit Rig(common::ParallelExecutor* verify_executor) {
    for (uint32_t id = 0; id < kDevices; ++id) {
      devices.push_back(std::make_unique<Device>(queue, id));
      DeviceRecord rec;
      rec.algo = algo_for(id);
      rec.key = id == kTampered ? device_key(200) : device_key(id);
      rec.set_golden(crypto::Hash::digest(
          hash_for(algo_for(id)),  // H is paired with the MAC construction
          devices[id]->arch.memory().view(devices[id]->arch.app_region(),
                                          /*privileged=*/true)));
      directory.add(id, rec);
      transport.attach(id, devices[id]->prover);
      devices[id]->prover.start();
    }
    // Device kInfected is compromised mid-run: later self-measurements
    // carry the wrong digest (authentic MAC, infected verdict).
    queue.schedule_at(Time::zero() + Duration::minutes(12), [this] {
      devices[kInfected]->prover.memory().write(
          devices[kInfected]->arch.app_region(), 7, bytes_of("EVIL"), false);
    });
    ServiceConfig sc;
    sc.verify_executor = verify_executor;
    service = std::make_unique<AttestationService>(queue, transport,
                                                   directory, sc);
    queue.run_until(Time::zero() + Duration::minutes(45));
  }

  std::vector<AttestationService::SessionOutcome> collect() {
    std::vector<DeviceId> ids(kDevices);
    for (DeviceId id = 0; id < kDevices; ++id) ids[id] = id;
    return service->collect_now(ids, /*k=*/4);
  }
};

void expect_equivalent(
    const std::vector<AttestationService::SessionOutcome>& inline_out,
    const std::vector<AttestationService::SessionOutcome>& batched_out) {
  ASSERT_EQ(inline_out.size(), batched_out.size());
  for (size_t i = 0; i < inline_out.size(); ++i) {
    const auto& a = inline_out[i];
    const auto& b = batched_out[i];
    EXPECT_EQ(a.device, b.device);
    EXPECT_EQ(a.reachable, b.reachable);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.report.infection_detected, b.report.infection_detected);
    EXPECT_EQ(a.report.tampering_detected, b.report.tampering_detected);
    EXPECT_EQ(a.report.missing, b.report.missing);
    EXPECT_EQ(a.report.freshness.has_value(), b.report.freshness.has_value());
    if (a.report.freshness && b.report.freshness) {
      EXPECT_EQ(a.report.freshness->ns(), b.report.freshness->ns());
    }
    ASSERT_EQ(a.report.verdicts.size(), b.report.verdicts.size());
    for (size_t v = 0; v < a.report.verdicts.size(); ++v) {
      EXPECT_EQ(a.report.verdicts[v].status, b.report.verdicts[v].status);
      EXPECT_EQ(a.report.verdicts[v].m.timestamp,
                b.report.verdicts[v].m.timestamp);
    }
  }
}

TEST(BatchedVerify, MatchesPerSessionVerdictsOnMixedFleet) {
  Rig inline_rig(nullptr);
  common::ParallelExecutor executor(4);
  Rig batched_rig(&executor);

  const auto inline_out = inline_rig.collect();
  const auto batched_out = batched_rig.collect();

  // The fleet actually exercises all three verdict classes.
  ASSERT_EQ(inline_out.size(), kDevices);
  EXPECT_TRUE(inline_out[kInfected].report.infection_detected);
  EXPECT_TRUE(inline_out[kTampered].report.tampering_detected);
  size_t healthy = 0;
  for (const auto& o : inline_out) {
    healthy += o.report.device_trustworthy() ? 1 : 0;
  }
  EXPECT_EQ(healthy, kDevices - 2);

  expect_equivalent(inline_out, batched_out);

  // Service-level accounting is identical too.
  EXPECT_EQ(inline_rig.service->stats().sessions,
            batched_rig.service->stats().sessions);
  EXPECT_EQ(inline_rig.service->stats().responses,
            batched_rig.service->stats().responses);
  EXPECT_EQ(inline_rig.service->stats().retries,
            batched_rig.service->stats().retries);
  EXPECT_EQ(inline_rig.service->stats().stray_datagrams,
            batched_rig.service->stats().stray_datagrams);
  EXPECT_EQ(inline_rig.service->stats().unreachable_sessions,
            batched_rig.service->stats().unreachable_sessions);
  for (DeviceId id = 0; id < kDevices; ++id) {
    ASSERT_EQ(inline_rig.service->log(id).size(),
              batched_rig.service->log(id).size());
    EXPECT_EQ(inline_rig.service->log(id).trustworthy_fraction(),
              batched_rig.service->log(id).trustworthy_fraction());
  }
}

TEST(BatchedVerify, SecondRoundReusesTheIntakeCleanly) {
  // Two consecutive rounds through the same batched service: the intake
  // buffer must fully reset between rounds (a leak would duplicate
  // completions or leave sessions wedged).
  common::ParallelExecutor executor(2);
  Rig rig(&executor);

  const auto first = rig.collect();
  ASSERT_EQ(first.size(), kDevices);
  rig.queue.run_until(rig.queue.now() + Duration::minutes(30));
  const auto second = rig.collect();
  ASSERT_EQ(second.size(), kDevices);
  EXPECT_EQ(rig.service->stats().sessions, 2u * kDevices);
  EXPECT_EQ(rig.service->stats().responses, 2u * kDevices);
  EXPECT_TRUE(second[kInfected].report.infection_detected);
  EXPECT_TRUE(second[kTampered].report.tampering_detected);
  size_t healthy = 0;
  for (const auto& o : second) {
    healthy += o.report.device_trustworthy() ? 1 : 0;
  }
  EXPECT_EQ(healthy, kDevices - 2);
}

}  // namespace
}  // namespace erasmus::attest
