// Tests for the software-update and secure-erasure flows (§1 NOTE: cases
// where real-time on-demand attestation is mandatory).
#include <gtest/gtest.h>

#include "attest/maintenance.h"

namespace erasmus::attest {
namespace {

using crypto::MacAlgo;
using sim::Duration;
using sim::Time;

Bytes test_key() { return bytes_of("0123456789abcdef0123456789abcdef"); }

constexpr size_t kRecordBytes = 1 + 8 + 32 + 32;

struct Rig {
  sim::EventQueue queue;
  hw::SmartPlusArch arch;
  Prover prover;
  DeviceRecord record;
  MaintenanceAuthority authority;

  Rig()
      : arch(test_key(), 4096, 2048, 16 * kRecordBytes),
        prover(queue, arch, arch.app_region(), arch.store_region(),
               std::make_unique<RegularScheduler>(Duration::minutes(10)),
               ProverConfig{}),
        record([&] {
          DeviceRecord r;
          r.key = test_key();
          r.set_golden(crypto::Hash::digest(
              crypto::HashAlgo::kSha256,
              arch.memory().view(arch.app_region(), true)));
          return r;
        }()),
        authority(record, queue) {}

  void run_for(Duration d) { queue.run_until(queue.now() + d); }
};

MaintenanceRequest make_update_request(Rig& rig, ByteView image) {
  MaintenanceRequest req;
  req.op = MaintenanceRequest::Op::kUpdate;
  req.treq = rig.prover.rroc().read();
  req.image.assign(image.begin(), image.end());
  const Bytes digest =
      crypto::Hash::digest(crypto::HashAlgo::kSha256, req.image);
  req.mac = crypto::Mac::compute(
      MacAlgo::kHmacSha256, test_key(),
      MaintenanceRequest::mac_input(req.op, req.treq, digest,
                                    MacAlgo::kHmacSha256));
  return req;
}

TEST(MaintenanceRequest, SerializeRoundTrips) {
  MaintenanceRequest req;
  req.op = MaintenanceRequest::Op::kUpdate;
  req.treq = 1234;
  req.image = bytes_of("firmware v2");
  req.mac = Bytes(32, 0xaa);
  const auto back = MaintenanceRequest::deserialize(req.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->op, req.op);
  EXPECT_EQ(back->treq, 1234u);
  EXPECT_EQ(back->image, req.image);
  EXPECT_EQ(back->mac, req.mac);
}

TEST(MaintenanceRequest, RejectsBadOpAndTruncation) {
  MaintenanceRequest req;
  req.op = MaintenanceRequest::Op::kErase;
  req.treq = 1;
  req.mac = Bytes(32, 1);
  Bytes wire = req.serialize();
  wire[0] = 0x7f;  // unknown op
  EXPECT_FALSE(MaintenanceRequest::deserialize(wire).has_value());
  Bytes cut(req.serialize());
  cut.pop_back();
  EXPECT_FALSE(MaintenanceRequest::deserialize(cut).has_value());
}

TEST(HandleMaintenance, AuthenticUpdateInstallsImage) {
  Rig rig;
  rig.prover.start();
  rig.run_for(Duration::minutes(30));

  const Bytes image = bytes_of("firmware v2.0 payload");
  const auto cost = handle_maintenance(rig.prover, make_update_request(
                                                       rig, image));
  ASSERT_TRUE(cost.has_value());
  const Bytes installed = rig.prover.memory().read(
      rig.arch.app_region(), 0, image.size(), false);
  EXPECT_EQ(installed, image);
  // Rest of the region zero-padded.
  const Bytes tail = rig.prover.memory().read(rig.arch.app_region(),
                                              image.size(), 16, false);
  EXPECT_EQ(tail, Bytes(16, 0));
}

TEST(HandleMaintenance, ForgedMacRejected) {
  Rig rig;
  rig.prover.start();
  rig.run_for(Duration::minutes(30));
  auto req = make_update_request(rig, bytes_of("evil firmware"));
  req.mac[0] ^= 1;
  EXPECT_FALSE(handle_maintenance(rig.prover, req).has_value());
  // Memory untouched.
  EXPECT_EQ(rig.prover.memory().read(rig.arch.app_region(), 0, 4, false),
            Bytes(4, 0));
}

TEST(HandleMaintenance, SwappedImageRejected) {
  // MAC binds the image digest: a MITM replacing the payload is caught.
  Rig rig;
  rig.prover.start();
  rig.run_for(Duration::minutes(30));
  auto req = make_update_request(rig, bytes_of("genuine firmware"));
  req.image = bytes_of("swapped firmware!");
  EXPECT_FALSE(handle_maintenance(rig.prover, req).has_value());
}

TEST(HandleMaintenance, StaleRequestRejected) {
  Rig rig;
  rig.prover.start();
  rig.run_for(Duration::hours(1));
  auto req = make_update_request(rig, bytes_of("fw"));
  req.treq -= 100;  // stale; MAC recomputed to match so only freshness fails
  const Bytes digest =
      crypto::Hash::digest(crypto::HashAlgo::kSha256, req.image);
  req.mac = crypto::Mac::compute(
      MacAlgo::kHmacSha256, test_key(),
      MaintenanceRequest::mac_input(req.op, req.treq, digest,
                                    MacAlgo::kHmacSha256));
  EXPECT_FALSE(handle_maintenance(rig.prover, req).has_value());
}

TEST(HandleMaintenance, OversizedImageRejected) {
  Rig rig;
  rig.prover.start();
  rig.run_for(Duration::minutes(30));
  const Bytes huge(4096, 0xab);  // app region is 2048
  EXPECT_FALSE(
      handle_maintenance(rig.prover, make_update_request(rig, huge))
          .has_value());
}

TEST(Authority, FullUpdateFlowRotatesGolden) {
  Rig rig;
  rig.prover.start();
  rig.run_for(Duration::minutes(30));

  const Bytes old_golden = rig.record.golden();
  const auto outcome =
      rig.authority.run_update(rig.prover, bytes_of("firmware v2"));
  EXPECT_TRUE(outcome.pre_attestation_ok);
  EXPECT_TRUE(outcome.request_accepted);
  EXPECT_TRUE(outcome.post_attestation_ok);
  EXPECT_NE(rig.record.golden(), old_golden);
  EXPECT_EQ(rig.record.golden(), outcome.new_golden_digest);
}

TEST(Authority, UpdateAbortsOnInfectedDevice) {
  // Attest-before fails -> no update is pushed onto compromised firmware.
  Rig rig;
  rig.prover.start();
  rig.run_for(Duration::minutes(30));
  rig.prover.memory().write(rig.arch.app_region(), 50, bytes_of("MALWARE"),
                            false);
  const auto outcome =
      rig.authority.run_update(rig.prover, bytes_of("firmware v2"));
  EXPECT_FALSE(outcome.pre_attestation_ok);
  EXPECT_FALSE(outcome.request_accepted);
}

TEST(Authority, PostUpdateHistoryStillVerifies) {
  // Measurements taken BEFORE the update must verify against the old
  // golden epoch -- no false infections after a legitimate update.
  Rig rig;
  rig.prover.start();
  const uint64_t t0 =
      rig.prover.scheduler().next_interval(0) / Duration::seconds(1);
  rig.record.scheduler = &rig.prover.scheduler();
  rig.record.schedule_t0 = t0;
  rig.run_for(Duration::minutes(45));  // measurements at 10..40 min

  ASSERT_TRUE(rig.authority.run_update(rig.prover, bytes_of("fw v2"))
                  .post_attestation_ok);
  rig.run_for(Duration::hours(1));  // post-update measurements accumulate

  const auto res = rig.prover.handle_collect(CollectRequest{10});
  const auto report =
      verify_collection(rig.record, res.response, rig.queue.now());
  EXPECT_FALSE(report.infection_detected)
      << "pre-update history must match the old epoch, post-update the new";
  EXPECT_FALSE(report.tampering_detected);
}

TEST(Authority, SecureEraseZeroisesAndProves) {
  Rig rig;
  rig.prover.start();
  rig.prover.memory().write(rig.arch.app_region(), 0,
                            bytes_of("sensitive mission data"), false);
  rig.run_for(Duration::minutes(30));

  const auto outcome = rig.authority.run_erase(rig.prover);
  EXPECT_TRUE(outcome.request_accepted);
  EXPECT_TRUE(outcome.erased_state_proven);
  EXPECT_EQ(rig.prover.memory().read(rig.arch.app_region(), 0, 2048, false),
            Bytes(2048, 0));
  // Measurement history wiped too.
  EXPECT_TRUE(rig.prover.handle_collect(CollectRequest{16})
                  .response.measurements.empty());
}

TEST(Authority, EraseLeavesKeyIntact) {
  // Secure erase clears mission data, not the RA trust anchor: a fresh
  // OD attestation (which needs K) must still work -- that is exactly how
  // erased state is proven.
  Rig rig;
  rig.prover.start();
  rig.run_for(Duration::minutes(30));
  ASSERT_TRUE(rig.authority.run_erase(rig.prover).erased_state_proven);
  rig.run_for(Duration::seconds(2));
  const OdRequest req =
      make_od_request(rig.record, rig.prover.rroc().read(), 0);
  EXPECT_TRUE(rig.prover.handle_od(req).response.has_value());
}

}  // namespace
}  // namespace erasmus::attest
