// Tests for the scenario engine: parameter parsing, registry behavior
// (lookup, listing, duplicate rejection), and the built-in scenario set.
#include <gtest/gtest.h>

#include <sstream>

#include "scenario/scenario.h"

namespace erasmus::scenario {
namespace {

TEST(ParamMap, ParsesKeyValueTokens) {
  const auto params =
      ParamMap::from_args({"devices=100", "seed=42", "name=fleet"});
  EXPECT_EQ(params.get_u64("devices", 0), 100u);
  EXPECT_EQ(params.get_u64("seed", 0), 42u);
  EXPECT_EQ(params.get_str("name", ""), "fleet");
  EXPECT_EQ(params.get_u64("absent", 7), 7u);
  EXPECT_TRUE(params.has("devices"));
  EXPECT_FALSE(params.has("absent"));
}

TEST(ParamMap, RejectsMalformedTokens) {
  EXPECT_THROW(ParamMap::from_args({"devices"}), std::invalid_argument);
  EXPECT_THROW(ParamMap::from_args({"=5"}), std::invalid_argument);
}

TEST(ParamMap, TypedGettersValidate) {
  const auto params = ParamMap::from_args(
      {"n=12x", "f=0.25", "b1=yes", "b2=off", "bad=maybe"});
  EXPECT_THROW(params.get_u64("n", 0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(params.get_double("f", 0.0), 0.25);
  EXPECT_TRUE(params.get_bool("b1", false));
  EXPECT_FALSE(params.get_bool("b2", true));
  EXPECT_THROW(params.get_bool("bad", false), std::invalid_argument);
}

TEST(ParamMap, ParsesHumanFriendlyDurations) {
  using sim::Duration;
  const auto params = ParamMap::from_args(
      {"tm=10m", "tc=90s", "horizon=2h", "blip=250ms", "week=7d",
       "frac=1.5h"});
  EXPECT_EQ(params.get_duration("tm", Duration{}), Duration::minutes(10));
  EXPECT_EQ(params.get_duration("tc", Duration{}), Duration::seconds(90));
  EXPECT_EQ(params.get_duration("horizon", Duration{}), Duration::hours(2));
  EXPECT_EQ(params.get_duration("blip", Duration{}), Duration::millis(250));
  EXPECT_EQ(params.get_duration("week", Duration{}), Duration::hours(24 * 7));
  EXPECT_EQ(params.get_duration("frac", Duration{}), Duration::minutes(90));
  EXPECT_EQ(params.get_duration("absent", Duration::minutes(3)),
            Duration::minutes(3));
  // "min" spelling is accepted too.
  EXPECT_EQ(parse_duration("5min"), Duration::minutes(5));
}

TEST(ParamMap, RejectsBadDurations) {
  using sim::Duration;
  for (const char* bad : {"10", "m", "", "10q", "-5m", "10 m", "nanm"}) {
    const auto params = ParamMap::from_args({std::string("tm=") + bad});
    EXPECT_THROW(params.get_duration("tm", Duration{}),
                 std::invalid_argument)
        << "'" << bad << "' must be rejected";
  }
}

TEST(ParamMap, ParsesDurationLists) {
  using sim::Duration;
  const auto list = parse_duration_list("5m,10m,1h");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], Duration::minutes(5));
  EXPECT_EQ(list[2], Duration::hours(1));
  EXPECT_THROW(parse_duration_list(""), std::invalid_argument);
  EXPECT_THROW(parse_duration_list("5m,"), std::invalid_argument);
  EXPECT_THROW(parse_duration_list("5m,,10m"), std::invalid_argument);
}

TEST(ParamMap, UnknownKeysAgainstSpecs) {
  const std::vector<ParamSpec> specs = {{"devices", "10", ""},
                                        {"seed", "1", ""}};
  const auto params = ParamMap::from_args({"devices=5", "sed=42"});
  const auto unknown = params.unknown_keys(specs);
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "sed");
}

class DummyScenario : public Scenario {
 public:
  explicit DummyScenario(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  std::string description() const override { return "dummy"; }
  int run(const ParamMap&, MetricsSink&) const override { return 0; }

 private:
  std::string name_;
};

TEST(ScenarioRegistry, FindAndListSorted) {
  ScenarioRegistry registry;
  registry.add(std::make_unique<DummyScenario>("zeta"));
  registry.add(std::make_unique<DummyScenario>("alpha"));
  ASSERT_EQ(registry.size(), 2u);
  ASSERT_NE(registry.find("alpha"), nullptr);
  EXPECT_EQ(registry.find("alpha")->name(), "alpha");
  EXPECT_EQ(registry.find("nope"), nullptr);
  const auto list = registry.list();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0]->name(), "alpha");
  EXPECT_EQ(list[1]->name(), "zeta");
}

TEST(ScenarioRegistry, RejectsDuplicateName) {
  ScenarioRegistry registry;
  registry.add(std::make_unique<DummyScenario>("fleet"));
  EXPECT_THROW(registry.add(std::make_unique<DummyScenario>("fleet")),
               std::invalid_argument);
  // The failed add must not have clobbered the original.
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_NE(registry.find("fleet"), nullptr);
}

TEST(ScenarioRegistry, RejectsNullAndEmptyName) {
  ScenarioRegistry registry;
  EXPECT_THROW(registry.add(nullptr), std::invalid_argument);
  EXPECT_THROW(registry.add(std::make_unique<DummyScenario>("")),
               std::invalid_argument);
}

// The global registry carries the builtin set (this test binary links the
// builtin object library, as erasmus_run does).
TEST(ScenarioRegistry, BuiltinsRegistered) {
  auto& registry = ScenarioRegistry::instance();
  EXPECT_GE(registry.size(), 9u);
  for (const char* name :
       {"quickstart", "device_lifecycle", "malware_hunt", "plant_sensor",
        "swarm_patrol", "campaign_sweep", "mixed_tm_fleet", "churn_fleet",
        "mixed_arch_fleet"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
}

TEST(ScenarioRegistry, BuiltinsDeclareTheirParams) {
  for (const Scenario* s : ScenarioRegistry::instance().list()) {
    EXPECT_FALSE(s->description().empty()) << s->name();
    for (const auto& spec : s->param_specs()) {
      EXPECT_FALSE(spec.key.empty()) << s->name();
      EXPECT_FALSE(spec.help.empty()) << s->name() << "." << spec.key;
    }
  }
}

// End-to-end: the cheapest builtin runs to completion through a sink.
TEST(ScenarioRegistry, QuickstartRunsClean) {
  const Scenario* s = ScenarioRegistry::instance().find("quickstart");
  ASSERT_NE(s, nullptr);
  std::ostringstream out;
  JsonSink sink(out);
  sink.begin_run(s->name());
  EXPECT_EQ(s->run(ParamMap{}, sink), 0);
  sink.end_run();
  EXPECT_NE(out.str().find("\"trustworthy\": true"), std::string::npos);
}

}  // namespace
}  // namespace erasmus::scenario
