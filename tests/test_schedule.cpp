// Tests for measurement scheduling: regular, irregular (CSPRNG, §3.5) and
// lenient (§5), plus the verifier-side schedule replay.
#include <gtest/gtest.h>

#include <set>

#include "attest/schedule.h"

namespace erasmus::attest {
namespace {

using sim::Duration;

Bytes test_key() { return bytes_of("0123456789abcdef0123456789abcdef"); }

TEST(RegularScheduler, FixedInterval) {
  RegularScheduler s(Duration::minutes(10));
  EXPECT_EQ(s.next_interval(0).ns(), Duration::minutes(10).ns());
  EXPECT_EQ(s.next_interval(999).ns(), Duration::minutes(10).ns());
  EXPECT_EQ(s.nominal_period().ns(), Duration::minutes(10).ns());
  EXPECT_TRUE(s.predictable_without_key());
}

TEST(RegularScheduler, RejectsZeroPeriod) {
  EXPECT_THROW(RegularScheduler(Duration(0)), std::invalid_argument);
}

TEST(IrregularScheduler, IntervalsWithinBounds) {
  IrregularScheduler s(test_key(), Duration::minutes(5),
                       Duration::minutes(15));
  for (uint64_t t = 0; t < 500; t += 7) {
    const Duration iv = s.next_interval(t);
    EXPECT_GE(iv.ns(), Duration::minutes(5).ns()) << "t=" << t;
    EXPECT_LT(iv.ns(), Duration::minutes(15).ns()) << "t=" << t;
  }
}

TEST(IrregularScheduler, DeterministicInKeyAndTime) {
  IrregularScheduler a(test_key(), Duration::minutes(5),
                       Duration::minutes(15));
  IrregularScheduler b(test_key(), Duration::minutes(5),
                       Duration::minutes(15));
  for (uint64_t t : {0ull, 1ull, 12345ull}) {
    EXPECT_EQ(a.next_interval(t).ns(), b.next_interval(t).ns());
  }
}

TEST(IrregularScheduler, DifferentKeysProduceDifferentSchedules) {
  IrregularScheduler a(test_key(), Duration::minutes(5),
                       Duration::minutes(15));
  IrregularScheduler b(bytes_of("another-device-key-0123"),
                       Duration::minutes(5), Duration::minutes(15));
  size_t differing = 0;
  for (uint64_t t = 0; t < 50; ++t) {
    if (a.next_interval(t).ns() != b.next_interval(t).ns()) ++differing;
  }
  EXPECT_GT(differing, 40u);
}

TEST(IrregularScheduler, IntervalsActuallyVary) {
  IrregularScheduler s(test_key(), Duration::minutes(5),
                       Duration::minutes(60));
  std::set<uint64_t> seen;
  for (uint64_t t = 0; t < 64; ++t) seen.insert(s.next_interval(t).ns());
  EXPECT_GT(seen.size(), 32u) << "a CSPRNG schedule must not look regular";
}

TEST(IrregularScheduler, NominalPeriodIsMidpoint) {
  IrregularScheduler s(test_key(), Duration::minutes(10),
                       Duration::minutes(20));
  EXPECT_EQ(s.nominal_period().ns(), Duration::minutes(15).ns());
  EXPECT_FALSE(s.predictable_without_key());
}

TEST(IrregularScheduler, ValidatesParameters) {
  EXPECT_THROW(IrregularScheduler(Bytes{}, Duration::minutes(5),
                                  Duration::minutes(15)),
               std::invalid_argument);
  EXPECT_THROW(IrregularScheduler(test_key(), Duration(0),
                                  Duration::minutes(15)),
               std::invalid_argument);
  EXPECT_THROW(IrregularScheduler(test_key(), Duration::minutes(15),
                                  Duration::minutes(15)),
               std::invalid_argument);
}

TEST(LenientScheduler, DelegatesToBase) {
  LenientScheduler s(std::make_unique<RegularScheduler>(Duration::minutes(10)),
                     2.0);
  EXPECT_EQ(s.next_interval(0).ns(), Duration::minutes(10).ns());
  EXPECT_EQ(s.nominal_period().ns(), Duration::minutes(10).ns());
  EXPECT_TRUE(s.predictable_without_key());
  EXPECT_EQ(s.window_factor(), 2.0);
}

TEST(LenientScheduler, WindowSlackIsWMinusOnePeriods) {
  LenientScheduler s(std::make_unique<RegularScheduler>(Duration::minutes(10)),
                     1.5);
  EXPECT_EQ(s.window_slack().ns(), Duration::minutes(5).ns());
  LenientScheduler strict(
      std::make_unique<RegularScheduler>(Duration::minutes(10)), 1.0);
  EXPECT_EQ(strict.window_slack().ns(), 0u);
}

TEST(LenientScheduler, ValidatesParameters) {
  EXPECT_THROW(LenientScheduler(nullptr, 2.0), std::invalid_argument);
  EXPECT_THROW(
      LenientScheduler(
          std::make_unique<RegularScheduler>(Duration::minutes(10)), 0.5),
      std::invalid_argument);
}

TEST(ExpectedSchedule, RegularEnumeratesMultiples) {
  RegularScheduler s(Duration::seconds(60));
  const auto times = expected_schedule(s, 60, 300, Duration::seconds(1));
  EXPECT_EQ(times, (std::vector<uint64_t>{60, 120, 180, 240, 300}));
}

TEST(ExpectedSchedule, IrregularReplayMatchesProverSide) {
  // The verifier owns K and must reproduce the prover's exact sequence.
  IrregularScheduler sched(test_key(), Duration::seconds(30),
                           Duration::seconds(90));
  const auto times =
      expected_schedule(sched, 100, 100 + 3600, Duration::seconds(1));
  ASSERT_GT(times.size(), 2u);
  // Re-derive manually.
  uint64_t t = 100;
  for (uint64_t expected : times) {
    EXPECT_EQ(expected, t);
    t += sched.next_interval(t) / Duration::seconds(1);
  }
  // Gaps honour the bounds.
  for (size_t i = 1; i < times.size(); ++i) {
    const uint64_t gap = times[i] - times[i - 1];
    EXPECT_GE(gap, 30u);
    EXPECT_LT(gap, 90u);
  }
}

TEST(ExpectedSchedule, EmptyWhenAnchorPastEnd) {
  RegularScheduler s(Duration::seconds(60));
  EXPECT_TRUE(expected_schedule(s, 500, 400, Duration::seconds(1)).empty());
}

// Property: the empirical mean interval of an irregular schedule converges
// to the midpoint of [L, U] (uniform mapping sanity).
class IrregularMeanProperty
    : public ::testing::TestWithParam<std::pair<uint64_t, uint64_t>> {};

TEST_P(IrregularMeanProperty, MeanNearMidpoint) {
  const auto [lo_min, hi_min] = GetParam();
  IrregularScheduler s(test_key(), Duration::minutes(lo_min),
                       Duration::minutes(hi_min));
  double sum = 0;
  const int kSamples = 2000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(s.next_interval(i).ns());
  }
  const double mean = sum / kSamples;
  const double mid =
      (static_cast<double>(Duration::minutes(lo_min).ns()) +
       static_cast<double>(Duration::minutes(hi_min).ns())) / 2.0;
  EXPECT_NEAR(mean, mid, mid * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Bounds, IrregularMeanProperty,
    ::testing::Values(std::make_pair(5ull, 15ull), std::make_pair(1ull, 2ull),
                      std::make_pair(10ull, 60ull)));

}  // namespace
}  // namespace erasmus::attest
