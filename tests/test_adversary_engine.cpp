// Tests for the adversary engine: loud knob parsing, deterministic
// itinerary planning, the T_M-vs-dwell detection claim end-to-end through
// the sharded runner, thread-count byte identity with an active campaign,
// and the adversarial/generic counter split on the relay layer.
#include <gtest/gtest.h>

#include <sstream>

#include "adversary/adversary.h"
#include "scenario/scenario.h"
#include "scenario/sharded_runner.h"

namespace erasmus::scenario {
namespace {

using sim::Duration;
using sim::Time;

TEST(AdversaryParse, ModeNamesParseAndTyposThrowLoudly) {
  EXPECT_EQ(adversary::parse_mode("off"), adversary::Mode::kOff);
  EXPECT_EQ(adversary::parse_mode("roaming"), adversary::Mode::kRoaming);
  EXPECT_EQ(adversary::parse_mode("relay"), adversary::Mode::kRelay);
  EXPECT_EQ(adversary::parse_mode("sybil"), adversary::Mode::kSybil);
  try {
    adversary::parse_mode("banana");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("banana"), std::string::npos)
        << "the error must name the offending value";
  }
}

TEST(AdversaryParse, MigrationNamesParseAndTyposThrowLoudly) {
  EXPECT_EQ(adversary::parse_migration("random"),
            adversary::Migration::kRandomWalk);
  EXPECT_EQ(adversary::parse_migration("aware"),
            adversary::Migration::kAware);
  EXPECT_EQ(adversary::parse_migration("dwell"),
            adversary::Migration::kDwellBound);
  EXPECT_THROW(adversary::parse_migration("awre"), std::invalid_argument);
  EXPECT_THROW(adversary::parse_migration(""), std::invalid_argument);
}

ShardedFleetConfig adversary_config(size_t threads, Duration tm) {
  swarm::DeviceSpec base;
  base.tm = tm;
  base.app_ram_bytes = 1024;
  base.store_slots = 16;

  ShardedFleetConfig cfg;
  cfg.plan = swarm::FleetPlan::uniform(24, /*key_seed=*/42, base);
  cfg.plan.staggered = true;
  cfg.plan.mobility.field_size = 120.0;
  cfg.plan.mobility.radio_range = 50.0;
  cfg.plan.mobility.seed = 42;
  cfg.threads = threads;
  cfg.rounds = 4;
  cfg.round_interval = Duration::minutes(30);
  cfg.k = 4;

  cfg.adversary.mode = adversary::Mode::kRoaming;
  cfg.adversary.migration = adversary::Migration::kAware;
  cfg.adversary.dwell = Duration::minutes(12);
  cfg.adversary.chains = 3;
  cfg.adversary.seed = 42;
  return cfg;
}

TEST(AdversaryEngine, ItineraryIsAPureFunctionOfItsInputs) {
  const ShardedFleetConfig cfg = adversary_config(1, Duration::minutes(6));
  const auto specs = cfg.plan.expand();
  const Time horizon = Time::zero() + cfg.round_interval * cfg.rounds;
  const adversary::Engine a(cfg.adversary, specs, /*staggered=*/true,
                            /*root=*/0, horizon);
  const adversary::Engine b(cfg.adversary, specs, /*staggered=*/true,
                            /*root=*/0, horizon);
  ASSERT_EQ(a.legs().size(), b.legs().size());
  ASSERT_GT(a.legs().size(), 0u);
  for (size_t i = 0; i < a.legs().size(); ++i) {
    EXPECT_EQ(a.legs()[i].chain, b.legs()[i].chain);
    EXPECT_EQ(a.legs()[i].device, b.legs()[i].device);
    EXPECT_EQ(a.legs()[i].enter, b.legs()[i].enter);
    EXPECT_EQ(a.legs()[i].leave, b.legs()[i].leave);
  }
  for (const adversary::Leg& leg : a.legs()) {
    EXPECT_NE(leg.device, 0u) << "the root/collector is never infected";
    EXPECT_LT(leg.enter, leg.leave);
  }
}

TEST(AdversaryEngine, AwareMalwareEvadesSparseScheduleAndTightOneCatchesIt) {
  // T_M = 30m >> dwell 12m: the staggered fleet always offers a safe host.
  {
    NullSink sink;
    ShardedFleetRunner runner(adversary_config(1, Duration::minutes(30)));
    runner.run(sink);
    const adversary::Engine& e = *runner.adversary_engine();
    EXPECT_EQ(e.detected_chains(), 0u);
    EXPECT_EQ(e.captures_total(), 0u);
    EXPECT_GE(e.migrations_total(), 1u);
  }
  // T_M = 6m << dwell 12m: no host has enough slack; after the evasion
  // budget the malware sits through a measurement and is detected.
  {
    NullSink sink;
    ShardedFleetRunner runner(adversary_config(1, Duration::minutes(6)));
    runner.run(sink);
    const adversary::Engine& e = *runner.adversary_engine();
    EXPECT_GT(e.detected_chains(), 0u);
    EXPECT_GT(e.captures_total(), 0u);
    EXPECT_GT(e.mean_detection_latency().ns(), 0u);
    EXPECT_EQ(e.detection_probability(),
              static_cast<double>(e.detected_chains()) /
                  static_cast<double>(e.chain_count()));
  }
}

TEST(AdversaryEngine, CampaignMetricsByteIdenticalAcrossThreadCounts) {
  auto run_with_threads = [](size_t threads) {
    std::ostringstream out;
    JsonSink sink(out);
    sink.begin_run("adversary-determinism");
    ShardedFleetRunner runner(
        adversary_config(threads, Duration::minutes(6)));
    runner.run(sink);
    sink.end_run();
    return out.str();
  };
  const std::string t1 = run_with_threads(1);
  const std::string t3 = run_with_threads(3);
  EXPECT_EQ(t1, t3);
  // The run actually exercised the campaign path.
  EXPECT_NE(t1.find("\"adversary\""), std::string::npos);
  EXPECT_NE(t1.find("\"detections\""), std::string::npos);
}

ShardedFleetConfig relay_config(adversary::Mode mode) {
  ShardedFleetConfig cfg = adversary_config(1, Duration::minutes(10));
  cfg.backend = CollectionBackend::kOverlay;
  cfg.overlay.collect_deadline = Duration::seconds(25);
  cfg.adversary.mode = mode;
  cfg.adversary.compromised_fraction = 0.2;
  return cfg;
}

TEST(RelayAdversary, AdversarialDropsStayOutOfTheCongestionCounter) {
  NullSink sink;
  ShardedFleetRunner runner(relay_config(adversary::Mode::kRelay));
  runner.run(sink);
  const auto totals = runner.overlay_totals();
  EXPECT_GT(totals.dropped_adversarial, 0u)
      << "compromised relays must actually drop relayed reports";
  EXPECT_EQ(totals.reports_dropped, 0u)
      << "adversarial drops must not masquerade as queue overflow";
  EXPECT_EQ(totals.sybil_injected, 0u);
}

TEST(RelayAdversary, SybilFloodIsCountedAndRejectedByOriginRange) {
  NullSink sink;
  ShardedFleetRunner runner(relay_config(adversary::Mode::kSybil));
  runner.run(sink);
  const auto totals = runner.overlay_totals();
  EXPECT_GT(totals.sybil_injected, 0u);
  EXPECT_GT(totals.spoofed_rejected, 0u)
      << "forged origins lie outside the node-id range and must be "
         "rejected before touching the route cache";
  EXPECT_EQ(totals.dropped_adversarial, 0u);
}

TEST(AdversaryEngine, OffModeLeavesRunnerOutputUntouched) {
  auto run_json = [](bool with_off_adversary) {
    ShardedFleetConfig cfg = adversary_config(1, Duration::minutes(10));
    cfg.adversary = adversary::EngineConfig{};
    cfg.adversary.mode = adversary::Mode::kOff;
    if (with_off_adversary) {
      // Same config either way -- the point is that a default EngineConfig
      // is inert; engine construction is skipped entirely.
      cfg.adversary.dwell = Duration::minutes(7);  // ignored while off
    }
    std::ostringstream out;
    JsonSink sink(out);
    sink.begin_run("off");
    ShardedFleetRunner runner(cfg);
    runner.run(sink);
    sink.end_run();
    return out.str();
  };
  const std::string a = run_json(false);
  const std::string b = run_json(true);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find("\"adversary\""), std::string::npos)
      << "no adversary table when the engine is off";
}

}  // namespace
}  // namespace erasmus::scenario
