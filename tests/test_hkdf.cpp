// HKDF (RFC 5869) known-answer and property tests.
#include <gtest/gtest.h>

#include "common/hex.h"
#include "crypto/hkdf.h"

namespace erasmus::crypto {
namespace {

Bytes hex(std::string_view s) { return from_hex(s).value(); }

// RFC 5869, Appendix A, Test Case 1 (SHA-256).
TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = hex("000102030405060708090a0b0c");
  const Bytes info = hex("f0f1f2f3f4f5f6f7f8f9");

  const Bytes prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(prk, hex("077709362c2e32df0ddc3f0dc47bba63"
                     "90b6c73bb50f9c3122ec844ad7c2b3e5"));

  const Bytes okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(okm, hex("3cb25f25faacd57a90434f64d0362f2a"
                     "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
                     "34007208d5b887185865"));
}

// RFC 5869, Appendix A, Test Case 3 (zero-length salt and info).
TEST(Hkdf, Rfc5869Case3EmptySaltInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf(ikm, {}, {}, 42);
  EXPECT_EQ(okm, hex("8da4e775a563c18f715f802a063c5a31"
                     "b8a11f5c5ee1879ec3454e5f3c738d2d"
                     "9d201395faa4b61a96c8"));
}

TEST(Hkdf, ExpandRejectsOversizedRequests) {
  const Bytes prk(32, 0x01);
  EXPECT_NO_THROW(hkdf_expand(prk, {}, 255 * 32));
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), std::invalid_argument);
  EXPECT_THROW(hkdf_expand(Bytes(16, 1), {}, 32), std::invalid_argument);
}

TEST(Hkdf, InfoSeparatesKeys) {
  const Bytes master = bytes_of("fleet master secret");
  const Bytes mac_key = hkdf(master, bytes_of("device-7"),
                             bytes_of("erasmus/mac"), 32);
  const Bytes sched_key = hkdf(master, bytes_of("device-7"),
                               bytes_of("erasmus/schedule"), 32);
  EXPECT_NE(mac_key, sched_key);
  EXPECT_EQ(mac_key.size(), 32u);
}

TEST(Hkdf, SaltSeparatesDevices) {
  const Bytes master = bytes_of("fleet master secret");
  const Bytes k7 = hkdf(master, bytes_of("device-7"), bytes_of("k"), 32);
  const Bytes k8 = hkdf(master, bytes_of("device-8"), bytes_of("k"), 32);
  EXPECT_NE(k7, k8);
}

TEST(Hkdf, Deterministic) {
  const Bytes a = hkdf(bytes_of("ikm"), bytes_of("s"), bytes_of("i"), 64);
  const Bytes b = hkdf(bytes_of("ikm"), bytes_of("s"), bytes_of("i"), 64);
  EXPECT_EQ(a, b);
}

// Property: a longer output is an extension of a shorter one (streams are
// prefix-consistent per RFC construction).
class HkdfPrefixProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(HkdfPrefixProperty, ShorterOutputIsPrefix) {
  const size_t len = GetParam();
  const Bytes prk = hkdf_extract(bytes_of("salt"), bytes_of("ikm"));
  const Bytes full = hkdf_expand(prk, bytes_of("info"), 200);
  const Bytes part = hkdf_expand(prk, bytes_of("info"), len);
  EXPECT_EQ(part, Bytes(full.begin(), full.begin() + len));
}

INSTANTIATE_TEST_SUITE_P(Lengths, HkdfPrefixProperty,
                         ::testing::Values(1, 31, 32, 33, 64, 100, 199));

}  // namespace
}  // namespace erasmus::crypto
