// Cross-module integration tests beyond the per-module suites: the HYDRA
// prover end-to-end, ERASMUS+OD over the network, irregular + lenient
// composition, mobility-driven packet-level relay (the full §6 stack), and
// an event-queue stress property.
#include <gtest/gtest.h>

#include <algorithm>

#include "attest/prover.h"
#include "attest/verifier.h"
#include "crypto/hkdf.h"
#include "overlay/collector.h"
#include "overlay/relay_node.h"
#include "sim/rng.h"
#include "swarm/mobility.h"

namespace erasmus {
namespace {

using attest::CollectRequest;
using attest::OdRequest;
using attest::Prover;
using attest::ProverConfig;
using attest::Verifier;
using attest::VerifierConfig;
using crypto::MacAlgo;
using sim::Duration;
using sim::Time;

Bytes test_key() { return bytes_of("0123456789abcdef0123456789abcdef"); }

constexpr size_t kRecordBytes = 1 + 8 + 32 + 32;

TEST(HydraIntegration, FullErasmusLoopOnHydra) {
  sim::EventQueue queue;
  hw::HydraArch arch(test_key(), 64 * 1024, 32 * kRecordBytes);
  arch.secure_boot();
  arch.spawn_process("sensor-app", 100);
  ProverConfig pc;
  pc.profile = sim::DeviceProfile::imx6_1ghz();
  pc.algo = MacAlgo::kKeyedBlake2s;
  Prover prover(queue, arch, arch.app_region(), arch.store_region(),
                std::make_unique<attest::RegularScheduler>(
                    Duration::minutes(10)),
                pc);
  VerifierConfig vc;
  vc.algo = pc.algo;
  vc.key = test_key();
  vc.golden_digest = crypto::Hash::digest(
      attest::hash_for(pc.algo), arch.memory().view(arch.app_region(), true));
  Verifier verifier(std::move(vc));

  prover.start();
  queue.run_until(Time::zero() + Duration::hours(2));
  EXPECT_EQ(prover.stats().measurements, 12u);

  const auto res = prover.handle_collect(CollectRequest{12});
  const auto report = verifier.verify_collection(res.response, queue.now());
  EXPECT_TRUE(report.device_trustworthy());
  EXPECT_EQ(report.verdicts.size(), 12u);
}

TEST(HydraIntegration, UnbootedHydraCannotMeasure) {
  sim::EventQueue queue;
  hw::HydraArch arch(test_key(), 4096, 16 * kRecordBytes);
  // No secure_boot(): the first scheduled measurement must fault.
  Prover prover(queue, arch, arch.app_region(), arch.store_region(),
                std::make_unique<attest::RegularScheduler>(
                    Duration::minutes(10)),
                ProverConfig{});
  prover.start();
  EXPECT_THROW(queue.run_until(Time::zero() + Duration::hours(1)),
               hw::SecurityViolation);
}

TEST(NetworkIntegration, ErasmusOdOverSimulatedUdp) {
  sim::EventQueue queue;
  hw::SmartPlusArch arch(test_key(), 4096, 2048, 16 * kRecordBytes);
  Prover prover(queue, arch, arch.app_region(), arch.store_region(),
                std::make_unique<attest::RegularScheduler>(
                    Duration::minutes(10)),
                ProverConfig{});
  VerifierConfig vc;
  vc.key = test_key();
  vc.golden_digest = crypto::Hash::digest(
      crypto::HashAlgo::kSha256, arch.memory().view(arch.app_region(), true));
  Verifier verifier(std::move(vc));

  net::Network network(queue, Duration::millis(3));
  const net::NodeId vrf = network.add_node({});
  const net::NodeId prv = network.add_node({});
  prover.bind(network, prv);

  std::optional<Verifier::OdReport> od_report;
  uint64_t sent_treq = 0;
  network.set_handler(vrf, [&](const net::Datagram& d) {
    const auto framed = attest::unframe(d.payload);
    ASSERT_TRUE(framed.has_value());
    ASSERT_EQ(framed->first, attest::MsgType::kOdResponse);
    const auto resp = attest::OdResponse::deserialize(framed->second);
    ASSERT_TRUE(resp.has_value());
    od_report = verifier.verify_od_response(*resp, queue.now(), sent_treq);
  });

  prover.start();
  queue.schedule_at(Time::zero() + Duration::minutes(45), [&] {
    sent_treq = 45 * 60;  // RROC ticks at that moment
    const OdRequest req = verifier.make_od_request(sent_treq, 3);
    network.send(vrf, prv, attest::frame(attest::MsgType::kOdRequest,
                                         req.serialize()));
  });
  queue.run_until(Time::zero() + Duration::hours(1));

  ASSERT_TRUE(od_report.has_value());
  EXPECT_TRUE(od_report->fresh_valid);
  EXPECT_EQ(od_report->fresh.status, attest::MeasurementStatus::kHealthy);
  EXPECT_EQ(od_report->history.verdicts.size(), 3u);
}

TEST(NetworkIntegration, ForgedOdRequestGetsNoReplyAtAll) {
  // Fig. 4 "abort": rejected requests are silently dropped -- no error
  // message an attacker could use as an oracle or amplifier.
  sim::EventQueue queue;
  hw::SmartPlusArch arch(test_key(), 4096, 2048, 16 * kRecordBytes);
  Prover prover(queue, arch, arch.app_region(), arch.store_region(),
                std::make_unique<attest::RegularScheduler>(
                    Duration::minutes(10)),
                ProverConfig{});
  net::Network network(queue, Duration::millis(3));
  size_t replies = 0;
  const net::NodeId attacker =
      network.add_node([&](const net::Datagram&) { ++replies; });
  const net::NodeId prv = network.add_node({});
  prover.bind(network, prv);
  prover.start();

  queue.schedule_at(Time::zero() + Duration::minutes(30), [&] {
    OdRequest req;
    req.treq = 30 * 60;
    req.mac = Bytes(32, 0x42);  // forged
    network.send(attacker, prv,
                 attest::frame(attest::MsgType::kOdRequest, req.serialize()));
  });
  queue.run_until(Time::zero() + Duration::hours(1));
  EXPECT_EQ(replies, 0u);
}

TEST(Composition, IrregularLenientScheduleStillVerifies) {
  // Lenient wrapper around an irregular base: the verifier replays the
  // irregular sequence through the wrapper transparently.
  sim::EventQueue queue;
  hw::SmartPlusArch arch(test_key(), 4096, 1024, 64 * kRecordBytes);
  ProverConfig pc;
  pc.conflict_policy = attest::ConflictPolicy::kAbortAndReschedule;
  auto sched = std::make_unique<attest::LenientScheduler>(
      std::make_unique<attest::IrregularScheduler>(
          test_key(), Duration::minutes(5), Duration::minutes(15)),
      2.0);
  const attest::Scheduler* sched_ptr = sched.get();
  Prover prover(queue, arch, arch.app_region(), arch.store_region(),
                std::move(sched), pc);
  VerifierConfig vc;
  vc.key = test_key();
  vc.golden_digest = crypto::Hash::digest(
      crypto::HashAlgo::kSha256, arch.memory().view(arch.app_region(), true));
  Verifier verifier(std::move(vc));
  const uint64_t t0 = sched_ptr->next_interval(0) / Duration::seconds(1);
  verifier.set_schedule(sched_ptr, t0);

  prover.start();
  queue.run_until(Time::zero() + Duration::hours(6));
  ASSERT_GT(prover.stats().measurements, 20u);
  const auto res = prover.handle_collect(CollectRequest{16});
  const auto report = verifier.verify_collection(res.response, queue.now());
  EXPECT_TRUE(report.device_trustworthy()) << report.note;
}

TEST(MobilityRelay, PacketLevelCollectionOverMovingSwarm) {
  // The full §6 stack: mobility model drives the network's link filter;
  // relay agents flood/relay; the collector (co-located with device 0)
  // gathers whatever is momentarily reachable, multi-hop.
  sim::EventQueue queue;
  swarm::MobilityConfig mc;
  mc.devices = 8;
  mc.field_size = 120.0;
  mc.radio_range = 45.0;
  mc.speed_min = 2.0;
  mc.speed_max = 5.0;
  mc.seed = 17;
  swarm::RandomWaypointMobility mobility(mc);

  net::Network network(queue, Duration::millis(2));
  std::vector<std::unique_ptr<hw::SmartPlusArch>> archs;
  std::vector<std::unique_ptr<Prover>> provers;
  std::vector<std::unique_ptr<overlay::RelayNode>> relay_nodes;
  attest::DeviceDirectory directory;
  for (uint32_t id = 0; id < mc.devices; ++id) {
    Bytes salt{static_cast<uint8_t>(id)};
    const Bytes key = crypto::hkdf(bytes_of("mob-master"), salt,
                                   bytes_of("k"), 32);
    auto arch = std::make_unique<hw::SmartPlusArch>(key, 4096, 1024,
                                                    16 * kRecordBytes);
    auto prover = std::make_unique<Prover>(
        queue, *arch, arch->app_region(), arch->store_region(),
        std::make_unique<attest::RegularScheduler>(Duration::minutes(10)),
        ProverConfig{});
    attest::DeviceRecord record;
    record.key = key;
    record.set_golden(crypto::Hash::digest(
        crypto::HashAlgo::kSha256,
        arch->memory().view(arch->app_region(), true)));
    const net::NodeId node = network.add_node({});
    directory.add(node, std::move(record));
    relay_nodes.push_back(std::make_unique<overlay::RelayNode>(
        queue, network, node, *prover, mc.devices + 1));
    archs.push_back(std::move(arch));
    provers.push_back(std::move(prover));
  }
  const net::NodeId collector_node = network.add_node({});
  overlay::RelayCollector collector(queue, network, collector_node,
                                    directory, mc.devices + 1);

  // Collector rides along with device 0; link filter consults the mobility
  // model at every send.
  network.set_link_filter([&](net::NodeId a, net::NodeId b) {
    auto dev = [&](net::NodeId n) {
      return n == collector_node ? swarm::DeviceId{0}
                                 : static_cast<swarm::DeviceId>(n);
    };
    if (a == collector_node || b == collector_node) {
      // Collector hardware shares device 0's radio.
      return dev(a) == 0 || dev(b) == 0 ||
             mobility.connected(dev(a), dev(b), queue.now());
    }
    return mobility.connected(dev(a), dev(b), queue.now());
  });

  for (auto& p : provers) p->start();
  queue.run_until(Time::zero() + Duration::hours(1));

  const auto result = collector.run_round(6, Duration::seconds(30));
  const size_t reachable = mobility.snapshot(queue.now()).reachable_from(0);
  // Every device with a path at flood time should have reported (short
  // round, slow relative movement). Allow one straggler whose edge broke.
  EXPECT_GE(result.reports_received + 1, reachable);
  size_t healthy = 0;
  for (const auto& s : result.statuses) healthy += s.healthy;
  EXPECT_EQ(healthy, result.reports_received)
      << "all collected histories verify";
}

TEST(EventQueueStress, RandomWorkloadExecutesInOrder) {
  sim::EventQueue queue;
  sim::Rng rng(99);
  std::vector<uint64_t> executed;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t at = rng.next_below(1'000'000);
    ids.push_back(queue.schedule_at(
        Time(at), [&executed, at] { executed.push_back(at); }));
  }
  // Cancel a random 10%.
  size_t cancelled = 0;
  for (size_t i = 0; i < ids.size(); i += 10) {
    cancelled += queue.cancel(ids[i]);
  }
  queue.run();
  EXPECT_EQ(executed.size(), 2000u - cancelled);
  EXPECT_TRUE(std::is_sorted(executed.begin(), executed.end()));
}

}  // namespace
}  // namespace erasmus
