// Tests for the analysis helpers: summary statistics, table/series
// rendering and the Monte-Carlo detection estimators.
#include <gtest/gtest.h>

#include "analysis/detection.h"
#include "analysis/stats.h"
#include "analysis/table.h"

namespace erasmus::analysis {
namespace {

using sim::Duration;

TEST(Stats, SummaryOfKnownValues) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(Stats, SummaryOfEmptyAndSingle) {
  const auto empty = summarize({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.mean, 0.0);
  const auto one = summarize({7.0});
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
  EXPECT_DOUBLE_EQ(one.p95, 7.0);
}

TEST(Stats, QuantileInterpolates) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0) << "unsorted input";
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Stats, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(100.0, 100.0), 0.0);
  EXPECT_GT(relative_error(1.0, 0.0), 1e6) << "guards divide-by-zero";
}

TEST(Table, RendersAlignedColumns) {
  Table t({"MAC Impl.", "On-Demand", "ERASMUS"});
  t.add_row({"HMAC-SHA256", "5.1KB", "4.9KB"});
  const std::string out = t.render();
  EXPECT_NE(out.find("MAC Impl.   | On-Demand | ERASMUS"), std::string::npos);
  EXPECT_NE(out.find("HMAC-SHA256 | 5.1KB     | 4.9KB"), std::string::npos);
  EXPECT_NE(out.find("-+-"), std::string::npos);
}

TEST(Table, RejectsBadShapes) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Series, RendersPointsInOrder) {
  Series s("x", {"y1", "y2"});
  s.add_point(1.0, {10.0, 20.0});
  s.add_point(2.0, {11.0, 21.0});
  const std::string out = s.render();
  EXPECT_NE(out.find("x"), std::string::npos);
  EXPECT_NE(out.find("10.000"), std::string::npos);
  EXPECT_NE(out.find("21.000"), std::string::npos);
  EXPECT_EQ(s.xs().size(), 2u);
  EXPECT_THROW(s.add_point(3.0, {1.0}), std::invalid_argument);
}

TEST(Fmt, FormatsDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(McDetection, RegularMatchesClosedForm) {
  const double p = mc_detection_regular(Duration::minutes(4),
                                        Duration::minutes(10), 100'000, 42);
  EXPECT_NEAR(p, 0.4, 0.01);
}

TEST(McDetection, RegularSaturatesAtOne) {
  const double p = mc_detection_regular(Duration::minutes(30),
                                        Duration::minutes(10), 10'000, 42);
  EXPECT_DOUBLE_EQ(p, 1.0);
}

TEST(McDetection, ScheduleAwareIrregularLinear) {
  const double p = mc_detection_schedule_aware_irregular(
      Duration::minutes(8), Duration::minutes(5), Duration::minutes(15),
      100'000, 7);
  EXPECT_NEAR(p, 0.3, 0.01);
}

TEST(McDetection, RandomPhaseIrregularBetweenExtremes) {
  // Random-phase detection against U[5,15]-min intervals for an 8-min
  // dwell: must exceed the schedule-aware probability (0.3) -- arriving at
  // a random phase is worse for the malware than entering right after a
  // measurement -- and stay below 1.
  const double aware = mc_detection_schedule_aware_irregular(
      Duration::minutes(8), Duration::minutes(5), Duration::minutes(15),
      50'000, 7);
  const double random_phase = mc_detection_random_phase_irregular(
      Duration::minutes(8), Duration::minutes(5), Duration::minutes(15),
      50'000, 7);
  EXPECT_GT(random_phase, aware);
  EXPECT_LT(random_phase, 1.0);
}

TEST(McDetection, ValidatesParameters) {
  EXPECT_THROW(mc_detection_regular(Duration::minutes(1), Duration(0), 10, 1),
               std::invalid_argument);
  EXPECT_THROW(mc_detection_regular(Duration::minutes(1),
                                    Duration::minutes(10), 0, 1),
               std::invalid_argument);
  EXPECT_THROW(mc_detection_schedule_aware_irregular(
                   Duration::minutes(1), Duration::minutes(5),
                   Duration::minutes(5), 10, 1),
               std::invalid_argument);
}

TEST(McDetection, DeterministicPerSeed) {
  const double a = mc_detection_regular(Duration::minutes(3),
                                        Duration::minutes(10), 10'000, 5);
  const double b = mc_detection_regular(Duration::minutes(3),
                                        Duration::minutes(10), 10'000, 5);
  EXPECT_DOUBLE_EQ(a, b);
}

// Property: MC detection probability is monotone in dwell time.
class McMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(McMonotonicity, LongerDwellNeverHurtsDetection) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  double prev = -1.0;
  for (uint64_t dwell = 1; dwell <= 12; dwell += 2) {
    const double p = mc_detection_regular(Duration::minutes(dwell),
                                          Duration::minutes(10), 20'000, seed);
    EXPECT_GE(p, prev - 0.02) << "dwell=" << dwell;
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, McMonotonicity, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace erasmus::analysis
