// Tests pinning the code-size model to the paper's Table 1 and the
// synthesis model to §4.1's register/LUT counts.
#include <gtest/gtest.h>

#include "hw/code_size.h"
#include "hw/synthesis.h"

namespace erasmus::hw {
namespace {

using crypto::MacAlgo;

double kb(ArchKind arch, AttestMode mode, MacAlgo algo) {
  const auto v = CodeSizeModel::for_arch(arch).executable_kb(mode, algo);
  EXPECT_TRUE(v.has_value());
  return v.value_or(0);
}

TEST(Table1, SmartPlusColumnExact) {
  // Paper Table 1, SMART+ column (KB).
  EXPECT_NEAR(kb(ArchKind::kSmartPlus, AttestMode::kOnDemand,
                 MacAlgo::kHmacSha1), 4.9, 1e-9);
  EXPECT_NEAR(kb(ArchKind::kSmartPlus, AttestMode::kErasmus,
                 MacAlgo::kHmacSha1), 4.7, 1e-9);
  EXPECT_NEAR(kb(ArchKind::kSmartPlus, AttestMode::kOnDemand,
                 MacAlgo::kHmacSha256), 5.1, 1e-9);
  EXPECT_NEAR(kb(ArchKind::kSmartPlus, AttestMode::kErasmus,
                 MacAlgo::kHmacSha256), 4.9, 1e-9);
  EXPECT_NEAR(kb(ArchKind::kSmartPlus, AttestMode::kOnDemand,
                 MacAlgo::kKeyedBlake2s), 28.9, 1e-9);
  EXPECT_NEAR(kb(ArchKind::kSmartPlus, AttestMode::kErasmus,
                 MacAlgo::kKeyedBlake2s), 28.7, 1e-9);
}

TEST(Table1, HydraColumnExact) {
  EXPECT_NEAR(kb(ArchKind::kHydra, AttestMode::kOnDemand,
                 MacAlgo::kHmacSha256), 231.96, 1e-9);
  EXPECT_NEAR(kb(ArchKind::kHydra, AttestMode::kErasmus,
                 MacAlgo::kHmacSha256), 233.84, 1e-9);
  EXPECT_NEAR(kb(ArchKind::kHydra, AttestMode::kOnDemand,
                 MacAlgo::kKeyedBlake2s), 239.29, 1e-9);
  EXPECT_NEAR(kb(ArchKind::kHydra, AttestMode::kErasmus,
                 MacAlgo::kKeyedBlake2s), 241.17, 1e-9);
}

TEST(Table1, HydraSha1CellIsDash) {
  // Table 1 reports "-" for HMAC-SHA1 on HYDRA.
  EXPECT_FALSE(CodeSizeModel::for_arch(ArchKind::kHydra)
                   .executable_kb(AttestMode::kOnDemand, MacAlgo::kHmacSha1)
                   .has_value());
}

TEST(Table1, ErasmusSmallerThanOnDemandOnSmartPlus) {
  // The paper: "ERASMUS requires slightly less ROM than on-demand."
  for (auto algo : crypto::all_mac_algos()) {
    EXPECT_LT(kb(ArchKind::kSmartPlus, AttestMode::kErasmus, algo),
              kb(ArchKind::kSmartPlus, AttestMode::kOnDemand, algo));
  }
}

TEST(Table1, ErasmusAboutOnePercentLargerOnHydra) {
  // The paper: "ERASMUS is only about 1% higher ... mostly from the need
  // for an additional timer driver."
  for (auto algo : {MacAlgo::kHmacSha256, MacAlgo::kKeyedBlake2s}) {
    const double od = kb(ArchKind::kHydra, AttestMode::kOnDemand, algo);
    const double er = kb(ArchKind::kHydra, AttestMode::kErasmus, algo);
    const double pct = 100.0 * (er - od) / od;
    EXPECT_GT(pct, 0.0);
    EXPECT_LT(pct, 1.5);
  }
}

TEST(Table1, Blake2sCodeMuchLargerThanSha256) {
  const auto& smart = CodeSizeModel::for_arch(ArchKind::kSmartPlus);
  EXPECT_GT(smart.mac_kb(MacAlgo::kKeyedBlake2s).value(),
            5 * smart.mac_kb(MacAlgo::kHmacSha256).value());
}

TEST(Table1, HydraDominatedBySeL4Base) {
  const auto& hydra = CodeSizeModel::for_arch(ArchKind::kHydra);
  EXPECT_GT(hydra.base_kb, 200.0);
  EXPECT_GT(hydra.base_kb /
                kb(ArchKind::kHydra, AttestMode::kOnDemand,
                   MacAlgo::kHmacSha256),
            0.9);
}

TEST(Table1, Labels) {
  EXPECT_EQ(to_string(ArchKind::kSmartPlus), "SMART+");
  EXPECT_EQ(to_string(ArchKind::kHydra), "HYDRA");
  EXPECT_EQ(to_string(AttestMode::kOnDemand), "On-Demand");
  EXPECT_EQ(to_string(AttestMode::kErasmus), "ERASMUS");
}

TEST(Synthesis, MatchesPaperCounts) {
  // §4.1: 655 vs 579 registers, 1969 vs 1731 LUTs.
  EXPECT_EQ(unmodified_msp430().registers, 579);
  EXPECT_EQ(unmodified_msp430().luts, 1731);
  EXPECT_EQ(modified_msp430().registers, 655);
  EXPECT_EQ(modified_msp430().luts, 1969);
}

TEST(Synthesis, OverheadPercentagesMatchPaper) {
  // "roughly 13% and 14% additional registers and look-up tables".
  EXPECT_NEAR(register_overhead_pct(), 13.0, 0.5);
  EXPECT_NEAR(lut_overhead_pct(), 14.0, 0.5);
}

TEST(Synthesis, RrocDominatesRegisterCost) {
  // The 64-bit RROC register is the single largest register addition.
  int rroc_regs = 0, total_regs = 0;
  for (const auto& c : smartplus_additions()) {
    total_regs += c.cost.registers;
    if (c.name.find("rroc") != std::string::npos) {
      rroc_regs = c.cost.registers;
    }
  }
  EXPECT_EQ(rroc_regs, 64);
  EXPECT_GT(rroc_regs * 2, total_regs);
}

TEST(Synthesis, ComponentsSumToTotal) {
  int regs = unmodified_msp430().registers;
  int luts = unmodified_msp430().luts;
  for (const auto& c : smartplus_additions()) {
    regs += c.cost.registers;
    luts += c.cost.luts;
  }
  EXPECT_EQ(regs, modified_msp430().registers);
  EXPECT_EQ(luts, modified_msp430().luts);
}

}  // namespace
}  // namespace erasmus::hw
