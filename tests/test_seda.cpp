// Tests for the packet-level SEDA-style on-demand swarm baseline, and the
// head-to-head §6 comparison against the ERASMUS overlay collection on the
// SAME moving swarm.
#include <gtest/gtest.h>

#include "crypto/hkdf.h"
#include "overlay/collector.h"
#include "overlay/relay_node.h"
#include "swarm/mobility.h"
#include "swarm/seda.h"

namespace erasmus::swarm {
namespace {

using attest::Prover;
using attest::ProverConfig;
using sim::Duration;
using sim::Time;

constexpr size_t kRecordBytes = 1 + 8 + 32 + 32;

Bytes device_key(uint32_t id) {
  Bytes salt{static_cast<uint8_t>(id), static_cast<uint8_t>(id >> 8)};
  return crypto::hkdf(bytes_of("seda-test-master"), salt, bytes_of("k"), 32);
}

// A swarm wired for BOTH protocols: SEDA agents are installed on demand,
// overlay relay nodes likewise (they share the network handler slot, so a
// rig is built per protocol). Device records live in one directory, node
// id == device id.
struct SwarmRig {
  sim::EventQueue queue;
  net::Network network;
  std::vector<std::unique_ptr<hw::SmartPlusArch>> archs;
  std::vector<std::unique_ptr<Prover>> provers;
  attest::DeviceDirectory directory;
  net::NodeId collector_node = 0;

  explicit SwarmRig(size_t n, sim::DeviceProfile profile =
                                  sim::DeviceProfile::msp430_8mhz())
      : network(queue, Duration::millis(2)) {
    for (uint32_t id = 0; id < n; ++id) {
      auto arch = std::make_unique<hw::SmartPlusArch>(device_key(id), 4096,
                                                      10 * 1024,
                                                      16 * kRecordBytes);
      ProverConfig pc;
      pc.profile = profile;
      auto prover = std::make_unique<Prover>(
          queue, *arch, arch->app_region(), arch->store_region(),
          std::make_unique<attest::RegularScheduler>(Duration::minutes(10)),
          pc);
      attest::DeviceRecord record;
      record.key = device_key(id);
      record.set_golden(crypto::Hash::digest(
          crypto::HashAlgo::kSha256,
          arch->memory().view(arch->app_region(), true)));
      directory.add(network.add_node({}), std::move(record));
      archs.push_back(std::move(arch));
      provers.push_back(std::move(prover));
    }
    collector_node = network.add_node({});
  }

  size_t size() const { return provers.size(); }
};

TEST(Seda, StaticSwarmFullCoverage) {
  SwarmRig rig(6);
  std::vector<std::unique_ptr<SedaAgent>> agents;
  for (uint32_t id = 0; id < rig.size(); ++id) {
    agents.push_back(std::make_unique<SedaAgent>(
        rig.queue, rig.network, id, id, *rig.provers[id], rig.size(),
        SedaConfig{}));
  }
  SedaCollector collector(rig.queue, rig.network, rig.collector_node,
                          rig.directory, rig.size());
  const auto result = collector.run_round(Duration::seconds(60));
  EXPECT_EQ(result.fresh_measurements_received, 6u);
  for (const auto& s : result.statuses) {
    EXPECT_TRUE(s.attested);
    EXPECT_TRUE(s.healthy);
  }
  // Duration dominated by the 10 KB @ 8 MHz measurement (~7 s).
  EXPECT_GT(result.elapsed.to_seconds(), 6.0);
}

TEST(Seda, RoundDurationDominatedByMeasurement) {
  SwarmRig rig(4);
  std::vector<std::unique_ptr<SedaAgent>> agents;
  for (uint32_t id = 0; id < rig.size(); ++id) {
    agents.push_back(std::make_unique<SedaAgent>(
        rig.queue, rig.network, id, id, *rig.provers[id], rig.size(),
        SedaConfig{}));
  }
  SedaCollector collector(rig.queue, rig.network, rig.collector_node,
                          rig.directory, rig.size());
  const auto result = collector.run_round(Duration::seconds(60));
  const double measure_s = sim::DeviceProfile::msp430_8mhz()
                               .measurement_time(crypto::MacAlgo::kHmacSha256,
                                                 10 * 1024)
                               .to_seconds();
  EXPECT_NEAR(result.elapsed.to_seconds(), measure_s, 3.5)
      << "elapsed ~ one measurement (all devices hash in parallel) plus "
         "child-timeout chains";
}

TEST(Seda, InfectedDeviceFlaggedByFreshMeasurement) {
  SwarmRig rig(4);
  rig.provers[2]->memory().write(rig.provers[2]->attested_region(), 0,
                                 bytes_of("EVIL"), false);
  std::vector<std::unique_ptr<SedaAgent>> agents;
  for (uint32_t id = 0; id < rig.size(); ++id) {
    agents.push_back(std::make_unique<SedaAgent>(
        rig.queue, rig.network, id, id, *rig.provers[id], rig.size(),
        SedaConfig{}));
  }
  SedaCollector collector(rig.queue, rig.network, rig.collector_node,
                          rig.directory, rig.size());
  const auto result = collector.run_round(Duration::seconds(60));
  EXPECT_TRUE(result.statuses[2].attested);
  EXPECT_FALSE(result.statuses[2].healthy);
  EXPECT_TRUE(result.statuses[1].healthy);
}

TEST(Seda, BrokenUplinkLosesWholeSubtree) {
  // Line topology collector--0--1--2--3; the 1-2 edge dies while devices
  // are measuring: devices 2 and 3 vanish from the aggregate.
  SwarmRig rig(4);
  const net::NodeId c = rig.collector_node;
  bool edge_1_2_alive = true;
  rig.network.set_link_filter([&, c](net::NodeId a, net::NodeId b) {
    if (a > b) std::swap(a, b);
    if (b == c) return a == 0;
    if (a == 1 && b == 2) return edge_1_2_alive;
    return b - a == 1;
  });
  std::vector<std::unique_ptr<SedaAgent>> agents;
  for (uint32_t id = 0; id < rig.size(); ++id) {
    agents.push_back(std::make_unique<SedaAgent>(
        rig.queue, rig.network, id, id, *rig.provers[id], rig.size(),
        SedaConfig{}));
  }
  SedaCollector collector(rig.queue, rig.network, rig.collector_node,
                          rig.directory, rig.size());
  // Kill the edge two seconds into the round (mid-measurement).
  rig.queue.schedule_after(Duration::seconds(2),
                           [&] { edge_1_2_alive = false; });
  const auto result = collector.run_round(Duration::seconds(60));
  EXPECT_EQ(result.fresh_measurements_received, 2u);
  EXPECT_TRUE(result.statuses[0].attested);
  EXPECT_TRUE(result.statuses[1].attested);
  EXPECT_FALSE(result.statuses[2].attested);
  EXPECT_FALSE(result.statuses[3].attested);
}

TEST(Seda, HeadToHeadUnderMobilityErasmusWins) {
  // The §6 comparison, packet-level, same mobility trace for both: fast
  // swarm, slow devices. ERASMUS overlay collection needs ~ms of
  // connectivity per hop; SEDA needs the tree alive for ~7 s.
  double seda_cov = 0, erasmus_cov = 0;
  const size_t kSeeds = 4;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    MobilityConfig mc;
    mc.devices = 10;
    mc.field_size = 120.0;
    mc.radio_range = 45.0;
    mc.speed_min = 8.0;
    mc.speed_max = 14.0;
    mc.seed = seed;

    const auto link_filter = [](RandomWaypointMobility& mob,
                                sim::EventQueue& q, net::NodeId collector,
                                size_t n) {
      return [&mob, &q, collector, n](net::NodeId a, net::NodeId b) {
        auto dev = [collector](net::NodeId x) {
          return x == collector ? DeviceId{0} : static_cast<DeviceId>(x);
        };
        if (a == b) return true;
        if ((a == collector && dev(b) == 0) ||
            (b == collector && dev(a) == 0)) {
          return true;  // collector rides with device 0
        }
        (void)n;
        return mob.connected(dev(a), dev(b), q.now());
      };
    };

    {  // SEDA
      SwarmRig rig(10);
      RandomWaypointMobility mob(mc);
      rig.network.set_link_filter(
          link_filter(mob, rig.queue, rig.collector_node, 10));
      std::vector<std::unique_ptr<SedaAgent>> agents;
      for (uint32_t id = 0; id < 10; ++id) {
        agents.push_back(std::make_unique<SedaAgent>(
            rig.queue, rig.network, id, id, *rig.provers[id], 10,
            SedaConfig{}));
      }
      SedaCollector collector(rig.queue, rig.network, rig.collector_node,
                              rig.directory, 10);
      rig.queue.run_until(Time::zero() + Duration::minutes(1));
      const auto r = collector.run_round(Duration::seconds(30));
      seda_cov += static_cast<double>(r.fresh_measurements_received) / 10.0;
    }
    {  // ERASMUS overlay
      SwarmRig rig(10);
      RandomWaypointMobility mob(mc);
      rig.network.set_link_filter(
          link_filter(mob, rig.queue, rig.collector_node, 10));
      std::vector<std::unique_ptr<overlay::RelayNode>> nodes;
      for (uint32_t id = 0; id < 10; ++id) {
        rig.provers[id]->start(Duration::seconds(10 + id));
        nodes.push_back(std::make_unique<overlay::RelayNode>(
            rig.queue, rig.network, id, *rig.provers[id], 11));
      }
      overlay::RelayCollector collector(rig.queue, rig.network,
                                        rig.collector_node, rig.directory,
                                        11);
      rig.queue.run_until(Time::zero() + Duration::minutes(1));
      const auto r = collector.run_round(4, Duration::seconds(30));
      erasmus_cov += static_cast<double>(r.reports_received) / 10.0;
    }
  }
  seda_cov /= kSeeds;
  erasmus_cov /= kSeeds;
  EXPECT_GT(erasmus_cov, seda_cov)
      << "ERASMUS=" << erasmus_cov << " SEDA=" << seda_cov;
}

}  // namespace
}  // namespace erasmus::swarm
