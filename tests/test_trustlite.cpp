// Tests for the TrustLite/TyTAN architecture model and the paper's claim
// that ERASMUS is "equally applicable" to it: the unchanged prover/verifier
// stack runs on TrustLiteArch.
#include <gtest/gtest.h>

#include "attest/prover.h"
#include "attest/verifier.h"
#include "hw/trustlite.h"
#include "malware/malware.h"

namespace erasmus {
namespace {

using attest::CollectRequest;
using attest::Prover;
using attest::ProverConfig;
using attest::Verifier;
using attest::VerifierConfig;
using hw::Access;
using hw::TrustLiteArch;
using sim::Duration;
using sim::Time;

Bytes test_key() { return bytes_of("0123456789abcdef0123456789abcdef"); }

constexpr size_t kRecordBytes = 1 + 8 + 32 + 32;

TrustLiteArch make_arch() {
  TrustLiteArch arch(test_key(), 2048, 16 * kRecordBytes);
  arch.lock_rules();
  return arch;
}

TEST(TrustLite, RuleTableLockedAfterBoot) {
  TrustLiteArch arch(test_key(), 1024, 512);
  arch.program_rule(TrustLiteArch::Trustlet::kApplication, arch.app_region(),
                    Access::kReadWrite);
  arch.lock_rules();
  EXPECT_TRUE(arch.rules_locked());
  EXPECT_THROW(arch.program_rule(TrustLiteArch::Trustlet::kApplication,
                                 arch.key_region(), Access::kRead),
               hw::SecurityViolation)
      << "runtime reprogramming is the attack the lock prevents";
}

TEST(TrustLite, ProtectedExecutionRequiresLockedRules) {
  TrustLiteArch arch(test_key(), 1024, 512);
  EXPECT_THROW(
      arch.run_protected([](hw::SecurityArch::ProtectedContext&) {}),
      hw::SecurityViolation);
  arch.lock_rules();
  EXPECT_NO_THROW(
      arch.run_protected([](hw::SecurityArch::ProtectedContext&) {}));
}

TEST(TrustLite, DefaultRulesMatchPaperFigure) {
  auto arch = make_arch();
  using T = TrustLiteArch::Trustlet;
  EXPECT_EQ(arch.rule_for(T::kAttestation, arch.key_region()), Access::kRead);
  EXPECT_EQ(arch.rule_for(T::kApplication, arch.key_region()), Access::kNone);
  EXPECT_EQ(arch.rule_for(T::kApplication, arch.store_region()),
            Access::kReadWrite)
      << "the measurement store stays unprotected, as in SMART+";
}

TEST(TrustLite, KeyIsolationIdenticalToOtherArchitectures) {
  auto arch = make_arch();
  Bytes seen;
  arch.run_protected([&](hw::SecurityArch::ProtectedContext& ctx) {
    seen.assign(ctx.key().begin(), ctx.key().end());
  });
  EXPECT_EQ(seen, test_key());
  EXPECT_THROW((void)arch.memory().read(arch.key_region(), 0, 1, false),
               hw::AccessViolation);
}

TEST(TrustLite, InterruptsAllowedUnlikeSmartPlus) {
  auto arch = make_arch();
  EXPECT_TRUE(arch.interrupts_allowed_during_measurement());
  EXPECT_EQ(arch.name(), "TrustLite");
}

TEST(TrustLite, FullErasmusStackRunsUnchanged) {
  // The paper's applicability claim, executed: same Prover, same Verifier,
  // different architecture.
  sim::EventQueue queue;
  auto arch = make_arch();
  Prover prover(queue, arch, arch.app_region(), arch.store_region(),
                std::make_unique<attest::RegularScheduler>(
                    Duration::minutes(10)),
                ProverConfig{});
  VerifierConfig vc;
  vc.key = test_key();
  vc.golden_digest = crypto::Hash::digest(
      crypto::HashAlgo::kSha256, arch.memory().view(arch.app_region(), true));
  Verifier verifier(std::move(vc));

  prover.start();
  queue.run_until(Time::zero() + Duration::hours(1));
  EXPECT_EQ(prover.stats().measurements, 6u);
  const auto res = prover.handle_collect(CollectRequest{6});
  const auto report = verifier.verify_collection(res.response, queue.now());
  EXPECT_TRUE(report.device_trustworthy());
}

TEST(TrustLite, MalwareDetectionWorksOnTrustLite) {
  sim::EventQueue queue;
  auto arch = make_arch();
  Prover prover(queue, arch, arch.app_region(), arch.store_region(),
                std::make_unique<attest::RegularScheduler>(
                    Duration::minutes(10)),
                ProverConfig{});
  VerifierConfig vc;
  vc.key = test_key();
  vc.golden_digest = crypto::Hash::digest(
      crypto::HashAlgo::kSha256, arch.memory().view(arch.app_region(), true));
  Verifier verifier(std::move(vc));

  prover.start();
  malware::MobileMalware mw(queue, prover);
  mw.schedule(Time::zero() + Duration::minutes(12), Duration::minutes(25));
  queue.run_until(Time::zero() + Duration::hours(1));

  const auto res = prover.handle_collect(CollectRequest{6});
  EXPECT_TRUE(
      verifier.verify_collection(res.response, queue.now()).infection_detected);
}

TEST(TrustLite, ErasmusOdWorksOnTrustLite) {
  sim::EventQueue queue;
  auto arch = make_arch();
  Prover prover(queue, arch, arch.app_region(), arch.store_region(),
                std::make_unique<attest::RegularScheduler>(
                    Duration::minutes(10)),
                ProverConfig{});
  VerifierConfig vc;
  vc.key = test_key();
  vc.golden_digest = crypto::Hash::digest(
      crypto::HashAlgo::kSha256, arch.memory().view(arch.app_region(), true));
  Verifier verifier(std::move(vc));
  prover.start();
  queue.run_until(Time::zero() + Duration::minutes(45));
  const auto req = verifier.make_od_request(prover.rroc().read(), 3);
  const auto res = prover.handle_od(req);
  ASSERT_TRUE(res.response.has_value());
  EXPECT_TRUE(verifier.verify_od_response(*res.response, queue.now(), req.treq)
                  .fresh_valid);
}

}  // namespace
}  // namespace erasmus
