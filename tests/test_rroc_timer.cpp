// Tests for the RROC (reliable read-only clock) and the hardware timer,
// including the §3.4 attack surface when the write line is left intact.
#include <gtest/gtest.h>

#include "hw/rroc.h"
#include "hw/timer.h"
#include "sim/event_queue.h"

namespace erasmus::hw {
namespace {

using sim::Duration;
using sim::EventQueue;
using sim::Time;

TEST(Rroc, CountsTicksOfVirtualTime) {
  EventQueue q;
  Rroc rroc(q, Duration::seconds(1));
  EXPECT_EQ(rroc.read(), 0u);
  q.advance_to(Time::zero() + Duration::seconds(42));
  EXPECT_EQ(rroc.read(), 42u);
  q.advance_to(Time::zero() + Duration::millis(42'900));
  EXPECT_EQ(rroc.read(), 42u) << "sub-tick time must not round up";
}

TEST(Rroc, TickGranularityConfigurable) {
  EventQueue q;
  Rroc fine(q, Duration::millis(100));
  q.advance_to(Time::zero() + Duration::seconds(1));
  EXPECT_EQ(fine.read(), 10u);
}

TEST(Rroc, WritesRejectedWhenLineRemoved) {
  EventQueue q;
  Rroc rroc(q, Duration::seconds(1));  // production configuration
  q.advance_to(Time::zero() + Duration::seconds(100));
  EXPECT_TRUE(rroc.write_protected());
  EXPECT_FALSE(rroc.try_write(5));
  EXPECT_EQ(rroc.read(), 100u) << "counter unaffected by the attempt";
}

TEST(Rroc, AttackDemoConfigurationAllowsSkew) {
  EventQueue q;
  Rroc rroc(q, Duration::seconds(1),
            Rroc::WriteLine::kWritableForAttackDemo);
  q.advance_to(Time::zero() + Duration::seconds(100));
  EXPECT_FALSE(rroc.write_protected());
  EXPECT_TRUE(rroc.try_write(60));  // rewind by 40 ticks (§3.4 attack)
  EXPECT_EQ(rroc.read(), 60u);
  q.advance_to(Time::zero() + Duration::seconds(110));
  EXPECT_EQ(rroc.read(), 70u) << "skew persists, clock keeps ticking";
}

TEST(Rroc, TickToTimeRoundTrips) {
  EventQueue q;
  Rroc rroc(q, Duration::seconds(1));
  EXPECT_EQ(rroc.tick_to_time(1492453673ull).ns(),
            Duration::seconds(1492453673ull).ns());
}

TEST(HwTimer, FiresAfterProgrammedDelay) {
  EventQueue q;
  HwTimer timer(q);
  bool fired = false;
  timer.arm(Duration::seconds(5), [&] { fired = true; });
  q.run_until(Time::zero() + Duration::seconds(4));
  EXPECT_FALSE(fired);
  q.run_until(Time::zero() + Duration::seconds(5));
  EXPECT_TRUE(fired);
  EXPECT_FALSE(timer.armed());
}

TEST(HwTimer, ReArmReplacesPendingInterrupt) {
  EventQueue q;
  HwTimer timer(q);
  int which = 0;
  timer.arm(Duration::seconds(5), [&] { which = 1; });
  timer.arm(Duration::seconds(2), [&] { which = 2; });
  q.run();
  EXPECT_EQ(which, 2);
}

TEST(HwTimer, CancelDropsInterrupt) {
  EventQueue q;
  HwTimer timer(q);
  bool fired = false;
  timer.arm(Duration::seconds(1), [&] { fired = true; });
  timer.cancel();
  q.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(timer.armed());
}

TEST(HwTimer, CompareRegisterReadProtectedByDefault) {
  // §3.5: with irregular scheduling, malware must not learn when the next
  // measurement fires.
  EventQueue q;
  HwTimer timer(q);  // compare_readable defaults to false
  timer.arm(Duration::seconds(10), [] {});
  EXPECT_THROW((void)timer.remaining_unprivileged(), std::logic_error);
  EXPECT_EQ(timer.remaining_privileged().ns(), Duration::seconds(10).ns());
}

TEST(HwTimer, CompareReadableWhenConfigured) {
  EventQueue q;
  HwTimer timer(q, /*compare_readable=*/true);
  timer.arm(Duration::seconds(3), [] {});
  q.advance_to(Time::zero() + Duration::seconds(1));
  EXPECT_EQ(timer.remaining_unprivileged().ns(), Duration::seconds(2).ns());
}

TEST(HwTimer, ChainedOneShotsEmulatePeriodic) {
  EventQueue q;
  HwTimer timer(q);
  int count = 0;
  std::function<void()> isr = [&] {
    if (++count < 4) timer.arm(Duration::seconds(1), isr);
  };
  timer.arm(Duration::seconds(1), isr);
  q.run();
  EXPECT_EQ(count, 4);
  EXPECT_EQ(q.now(), Time::zero() + Duration::seconds(4));
}

}  // namespace
}  // namespace erasmus::hw
