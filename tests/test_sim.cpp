// Tests for the simulation substrate: virtual time, the event queue, the
// deterministic RNG, and the device cost profiles (incl. the paper-anchor
// calibration points).
#include <gtest/gtest.h>

#include <vector>

#include "sim/device_profile.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace erasmus::sim {
namespace {

TEST(Time, DurationFactoriesAndConversions) {
  EXPECT_EQ(Duration::seconds(2).ns(), 2'000'000'000ull);
  EXPECT_EQ(Duration::millis(3).ns(), 3'000'000ull);
  EXPECT_EQ(Duration::micros(4).ns(), 4'000ull);
  EXPECT_EQ(Duration::minutes(1).ns(), Duration::seconds(60).ns());
  EXPECT_EQ(Duration::hours(1).ns(), Duration::minutes(60).ns());
  EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::micros(1500).to_millis(), 1.5);
}

TEST(Time, Arithmetic) {
  const Time t = Time::zero() + Duration::seconds(5);
  EXPECT_EQ((t + Duration::seconds(3)).ns(), Duration::seconds(8).ns());
  EXPECT_EQ((t - Time::zero()).ns(), Duration::seconds(5).ns());
  EXPECT_EQ(Duration::seconds(10) / Duration::seconds(3), 3u);
  EXPECT_EQ((Duration::seconds(3) * 4).ns(), Duration::seconds(12).ns());
  EXPECT_LT(Time::zero(), t);
}

TEST(Time, ToStringPicksUnits) {
  EXPECT_EQ(to_string(Duration::seconds(2)), "2.000 s");
  EXPECT_EQ(to_string(Duration::millis(285) + Duration::micros(600)),
            "285.600 ms");
  EXPECT_EQ(to_string(Duration::micros(15)), "15.000 us");
  EXPECT_EQ(to_string(Duration::nanos(7)), "7 ns");
}

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(Time(30), [&] { order.push_back(3); });
  q.schedule_at(Time(10), [&] { order.push_back(1); });
  q.schedule_at(Time(20), [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), Time(30));
}

TEST(EventQueue, StableFifoWithinTimestamp) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(Time(100), [&, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule_at(Time(10), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id)) << "double cancel reports failure";
  q.run();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, RunUntilStopsAtLimit) {
  EventQueue q;
  int count = 0;
  q.schedule_at(Time(10), [&] { ++count; });
  q.schedule_at(Time(20), [&] { ++count; });
  q.schedule_at(Time(30), [&] { ++count; });
  EXPECT_EQ(q.run_until(Time(20)), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.now(), Time(20));
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(count, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents) {
  EventQueue q;
  q.run_until(Time(500));
  EXPECT_EQ(q.now(), Time(500));
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_after(Duration(10), recurse);
  };
  q.schedule_at(Time(0), recurse);
  q.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now(), Time(40));
}

// --- Cancellation bookkeeping regressions ------------------------------------
// run_until() once popped a beyond-limit event and pushed it back; these
// tests pin the peek-based rewrite: cancel/run interleavings keep pending()
// exact and never resurrect or drop events.

TEST(EventQueue, CancelThenRunUntilKeepsPendingExact) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(Time(10), [&] { ++ran; });
  const EventId mid = q.schedule_at(Time(20), [&] { ++ran; });
  q.schedule_at(Time(30), [&] { ++ran; });
  EXPECT_EQ(q.pending(), 3u);
  EXPECT_TRUE(q.cancel(mid));
  EXPECT_EQ(q.pending(), 2u);
  EXPECT_EQ(q.run_until(Time(25)), 1u);  // only the t=10 event runs
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.run(), 1u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CancelledEventBeyondLimitNeverRuns) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule_at(Time(100), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  // The cancelled entry sits beyond the limit; run_until must not count it
  // as pending work nor execute it later.
  EXPECT_EQ(q.run_until(Time(50)), 0u);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.run(), 0u);
  EXPECT_FALSE(ran);
}

TEST(EventQueue, DeferredEventSurvivesRunUntilAndCancelStillWorks) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule_at(Time(100), [&] { ran = true; });
  // run_until peeks at the t=100 event without consuming it...
  EXPECT_EQ(q.run_until(Time(50)), 0u);
  EXPECT_EQ(q.pending(), 1u);
  // ...so it can still be cancelled afterwards.
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.run(), 0u);
  EXPECT_FALSE(ran);
}

TEST(EventQueue, DeferredEventKeepsFifoOrderWithinTimestamp) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(Time(100), [&] { order.push_back(0); });
  q.schedule_at(Time(100), [&] { order.push_back(1); });
  // Stopping short must not perturb the FIFO tie-break at t=100.
  q.run_until(Time(50));
  q.schedule_at(Time(100), [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, HandlerCancellingPendingEvent) {
  EventQueue q;
  bool victim_ran = false;
  EventId victim = q.schedule_at(Time(20), [&] { victim_ran = true; });
  q.schedule_at(Time(10), [&] { EXPECT_TRUE(q.cancel(victim)); });
  EXPECT_EQ(q.run(), 1u);
  EXPECT_FALSE(victim_ran);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CancelInterleavedWithRunUntilRounds) {
  // A schedule/cancel/advance churn loop: pending() must stay exact the
  // whole way (regression for cancelled-set cleanup on pop).
  EventQueue q;
  size_t executed = 0;
  std::vector<EventId> batch;
  for (int round = 1; round <= 5; ++round) {
    const Time base = Time(static_cast<uint64_t>(round) * 100);
    batch.clear();
    for (int i = 0; i < 4; ++i) {
      batch.push_back(
          q.schedule_at(base + Duration(static_cast<uint64_t>(i)),
                        [&] { ++executed; }));
    }
    // Cancel half of them, one before and one after the barrier sweep.
    EXPECT_TRUE(q.cancel(batch[0]));
    EXPECT_EQ(q.pending(), 3u);
    q.run_until(base + Duration(1));  // runs batch[1] only
    EXPECT_EQ(q.pending(), 2u);
    EXPECT_TRUE(q.cancel(batch[3]));
    EXPECT_EQ(q.pending(), 1u);
    q.run_until(base + Duration(10));  // runs batch[2]
    EXPECT_EQ(q.pending(), 0u);
  }
  EXPECT_EQ(executed, 10u);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue q;
  q.advance_to(Time(100));
  EXPECT_THROW(q.schedule_at(Time(50), [] {}), std::invalid_argument);
  EXPECT_THROW(q.advance_to(Time(50)), std::invalid_argument);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng a2(123);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(99);
  double sum = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.2);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(1);
  Rng child = a.split();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// --- Device profiles ---------------------------------------------------------

TEST(DeviceProfile, Imx6Blake2sMatchesTable2Anchor) {
  // Table 2: computing a 10 MB measurement with keyed BLAKE2s takes
  // 285.6 ms on the 1 GHz i.MX6.
  const auto p = DeviceProfile::imx6_1ghz();
  const Duration t =
      p.mac_time(crypto::MacAlgo::kKeyedBlake2s, 10ull * 1024 * 1024);
  EXPECT_NEAR(t.to_millis(), 285.6, 3.0);
}

TEST(DeviceProfile, Msp430Sha256MatchesFig6Anchor) {
  // Fig. 6: ~7 s for 10 KB with HMAC-SHA256 at 8 MHz.
  const auto p = DeviceProfile::msp430_8mhz();
  const Duration t = p.mac_time(crypto::MacAlgo::kHmacSha256, 10 * 1024);
  EXPECT_NEAR(t.to_seconds(), 7.0, 0.5);
}

TEST(DeviceProfile, RuntimeIsLinearInMemorySize) {
  const auto p = DeviceProfile::msp430_8mhz();
  const auto at = [&](uint64_t kb) {
    return p.mac_time(crypto::MacAlgo::kHmacSha256, kb * 1024).to_seconds();
  };
  const double t2 = at(2), t4 = at(4), t8 = at(8);
  // Slope constant within 5% (setup overhead shrinks relative share).
  EXPECT_NEAR((t4 - t2) / 2.0, (t8 - t4) / 4.0, 0.05 * (t8 - t4) / 4.0);
}

TEST(DeviceProfile, Blake2sFasterThanHmacSha256OnBothTargets) {
  for (const auto& p :
       {DeviceProfile::msp430_8mhz(), DeviceProfile::imx6_1ghz()}) {
    EXPECT_LT(p.mac_time(crypto::MacAlgo::kKeyedBlake2s, 1 << 20).ns(),
              p.mac_time(crypto::MacAlgo::kHmacSha256, 1 << 20).ns())
        << p.name;
  }
}

TEST(DeviceProfile, OndemandAddsRequestAuthOverhead) {
  const auto p = DeviceProfile::imx6_1ghz();
  const uint64_t len = 1 << 20;
  const Duration erasmus = p.measurement_time(crypto::MacAlgo::kHmacSha256, len);
  const Duration ondemand = p.ondemand_time(crypto::MacAlgo::kHmacSha256, len);
  EXPECT_GT(ondemand.ns(), erasmus.ns() - p.cycles_to_time(p.timer_isr_cycles).ns());
  // Table 2: request verification is 0.005 ms.
  EXPECT_NEAR(p.request_auth_time().to_millis(), 0.005, 1e-6);
}

TEST(DeviceProfile, PacketTimesMatchTable2) {
  const auto p = DeviceProfile::imx6_1ghz();
  EXPECT_NEAR(p.packet_construct.to_millis(), 0.003, 1e-9);
  EXPECT_NEAR(p.packet_send.to_millis(), 0.012, 1e-9);
}

// Parameterised sweep: measurement_time strictly increases with memory for
// every (profile, algorithm) pair.
struct ProfileAlgoCase {
  bool msp430;
  crypto::MacAlgo algo;
};

class ProfileMonotonicity : public ::testing::TestWithParam<ProfileAlgoCase> {};

TEST_P(ProfileMonotonicity, StrictlyIncreasingInMemory) {
  const auto p = GetParam().msp430 ? DeviceProfile::msp430_8mhz()
                                   : DeviceProfile::imx6_1ghz();
  uint64_t prev = 0;
  for (uint64_t kb = 1; kb <= 64; kb *= 2) {
    const uint64_t t = p.measurement_time(GetParam().algo, kb * 1024).ns();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, ProfileMonotonicity,
    ::testing::Values(ProfileAlgoCase{true, crypto::MacAlgo::kHmacSha1},
                      ProfileAlgoCase{true, crypto::MacAlgo::kHmacSha256},
                      ProfileAlgoCase{true, crypto::MacAlgo::kKeyedBlake2s},
                      ProfileAlgoCase{false, crypto::MacAlgo::kHmacSha1},
                      ProfileAlgoCase{false, crypto::MacAlgo::kHmacSha256},
                      ProfileAlgoCase{false, crypto::MacAlgo::kKeyedBlake2s}));

}  // namespace
}  // namespace erasmus::sim
