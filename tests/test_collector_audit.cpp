// Tests for the collection daemon (retries over a lossy network) and the
// audit log (longitudinal QoA record).
#include <gtest/gtest.h>

#include "attest/collector.h"
#include "attest/prover.h"

namespace erasmus::attest {
namespace {

using crypto::MacAlgo;
using sim::Duration;
using sim::Time;

Bytes test_key() { return bytes_of("0123456789abcdef0123456789abcdef"); }

constexpr size_t kRecordBytes = 1 + 8 + 32 + 32;

struct Rig {
  sim::EventQueue queue;
  hw::SmartPlusArch arch;
  Prover prover;
  Verifier verifier;
  net::Network network;
  net::NodeId collector_node;
  net::NodeId prover_node;
  AuditLog log;

  explicit Rig(double loss = 0.0)
      : arch(test_key(), 4096, 2048, 32 * kRecordBytes),
        prover(queue, arch, arch.app_region(), arch.store_region(),
               std::make_unique<RegularScheduler>(Duration::minutes(10)),
               ProverConfig{}),
        verifier([&] {
          VerifierConfig vc;
          vc.key = test_key();
          vc.golden_digest = crypto::Hash::digest(
              crypto::HashAlgo::kSha256,
              arch.memory().view(arch.app_region(), true));
          return vc;
        }()),
        network(queue, Duration::millis(5), loss, /*seed=*/99),
        collector_node(network.add_node({})),
        prover_node(network.add_node({})) {
    prover.bind(network, prover_node);
  }
};

CollectorConfig fast_config() {
  CollectorConfig cc;
  cc.tc = Duration::hours(1);
  cc.k = 6;
  cc.response_timeout = Duration::seconds(30);
  cc.max_retries = 2;
  return cc;
}

TEST(Collector, CollectsEveryTcOnReliableNetwork) {
  Rig rig;
  rig.prover.start();
  Collector collector(rig.queue, rig.network, rig.collector_node,
                      rig.prover_node, rig.verifier, rig.log, fast_config());
  collector.start();
  rig.queue.run_until(Time::zero() + Duration::hours(12) +
                      Duration::minutes(1));

  EXPECT_EQ(collector.stats().rounds, 12u);
  EXPECT_EQ(collector.stats().responses, 12u);
  EXPECT_EQ(collector.stats().retries, 0u);
  EXPECT_EQ(collector.stats().unreachable_rounds, 0u);
  EXPECT_EQ(rig.log.size(), 12u);
  EXPECT_DOUBLE_EQ(rig.log.trustworthy_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(rig.log.reachable_fraction(), 1.0);
}

TEST(Collector, RetriesRecoverFromPacketLoss) {
  Rig rig(/*loss=*/0.3);
  rig.prover.start();
  Collector collector(rig.queue, rig.network, rig.collector_node,
                      rig.prover_node, rig.verifier, rig.log, fast_config());
  collector.start();
  rig.queue.run_until(Time::zero() + Duration::hours(48));

  EXPECT_GT(collector.stats().retries, 0u) << "30% loss must trigger retries";
  // With 2 retries, P(round lost) = (1 - 0.7^2)^3 ~= 13% worst case; most
  // rounds succeed.
  EXPECT_GT(rig.log.reachable_fraction(), 0.7);
  EXPECT_GT(collector.stats().responses, 30u);
}

TEST(Collector, DeadProverLoggedUnreachable) {
  Rig rig;
  // Prover never started and handler removed: simulates a dead device.
  rig.network.set_handler(rig.prover_node, {});
  Collector collector(rig.queue, rig.network, rig.collector_node,
                      rig.prover_node, rig.verifier, rig.log, fast_config());
  collector.start();
  rig.queue.run_until(Time::zero() + Duration::hours(6));

  EXPECT_GT(collector.stats().unreachable_rounds, 3u);
  EXPECT_EQ(collector.stats().responses, 0u);
  EXPECT_DOUBLE_EQ(rig.log.reachable_fraction(), 0.0);
}

TEST(Collector, StopCancelsPendingWork) {
  Rig rig;
  rig.prover.start();
  Collector collector(rig.queue, rig.network, rig.collector_node,
                      rig.prover_node, rig.verifier, rig.log, fast_config());
  collector.start();
  rig.queue.run_until(Time::zero() + Duration::hours(3) +
                      Duration::minutes(1));
  collector.stop();
  const auto rounds = collector.stats().rounds;
  rig.queue.run_until(Time::zero() + Duration::hours(12));
  EXPECT_EQ(collector.stats().rounds, rounds);
}

TEST(Collector, DetectsInfectionThroughTheDaemonPath) {
  Rig rig;
  rig.prover.start();
  Collector collector(rig.queue, rig.network, rig.collector_node,
                      rig.prover_node, rig.verifier, rig.log, fast_config());
  collector.start();
  // Persistent malware at 3.5 h.
  rig.queue.schedule_at(Time::zero() + Duration::minutes(210), [&] {
    rig.prover.memory().write(rig.arch.app_region(), 10, bytes_of("EVIL"),
                              false);
  });
  rig.queue.run_until(Time::zero() + Duration::hours(8));

  const auto first = rig.log.first_infection_seen();
  ASSERT_TRUE(first.has_value());
  // Infection at 3.5 h; next measurement 3:40; next collection 4 h (+net).
  EXPECT_GE(first->ns(), (Time::zero() + Duration::hours(4)).ns());
  EXPECT_LT(first->ns(), (Time::zero() + Duration::hours(5)).ns());
}

TEST(AuditLog, EmpiricalQoAMatchesConfiguration) {
  Rig rig;
  rig.prover.start();
  Collector collector(rig.queue, rig.network, rig.collector_node,
                      rig.prover_node, rig.verifier, rig.log, fast_config());
  collector.start();
  rig.queue.run_until(Time::zero() + Duration::hours(24) +
                      Duration::minutes(1));

  const auto qoa = rig.log.empirical_qoa();
  EXPECT_EQ(qoa.rounds, 24u);
  // T_M = 10 min; collections land just past the hour: freshness is the
  // network delay above 0 ~ up to T_M. Mean must stay below T_M.
  EXPECT_LT(qoa.mean_freshness.ns(), Duration::minutes(10).ns());
  EXPECT_NEAR(static_cast<double>(qoa.mean_collection_interval.ns()),
              static_cast<double>(Duration::hours(1).ns()),
              static_cast<double>(Duration::minutes(2).ns()));
}

TEST(AuditLog, QueriesOnEmptyLog) {
  AuditLog log;
  EXPECT_EQ(log.size(), 0u);
  EXPECT_FALSE(log.first_infection_seen().has_value());
  EXPECT_FALSE(log.first_tampering_seen().has_value());
  EXPECT_DOUBLE_EQ(log.trustworthy_fraction(), 0.0);
  EXPECT_EQ(log.empirical_qoa().rounds, 0u);
}

TEST(AuditLog, FirstTamperingSeen) {
  AuditLog log;
  CollectionReport clean;
  clean.freshness = Duration::minutes(3);
  log.record(Time::zero() + Duration::hours(1), clean);
  CollectionReport tampered;
  tampered.tampering_detected = true;
  log.record(Time::zero() + Duration::hours(2), tampered);
  const auto first = log.first_tampering_seen();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->ns(), (Time::zero() + Duration::hours(2)).ns());
  EXPECT_DOUBLE_EQ(log.trustworthy_fraction(), 0.5);
}

}  // namespace
}  // namespace erasmus::attest
