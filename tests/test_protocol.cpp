// Wire-format tests for the collection (Fig. 2) and on-demand (Fig. 4)
// protocols, including adversarial (malformed) inputs.
#include <gtest/gtest.h>

#include "attest/protocol.h"
#include "common/serde.h"

namespace erasmus::attest {
namespace {

using crypto::MacAlgo;

Bytes test_key() { return bytes_of("0123456789abcdef0123456789abcdef"); }

Measurement make_m(uint64_t t) {
  return compute_measurement(MacAlgo::kHmacSha256, test_key(),
                             bytes_of("mem"), t);
}

TEST(CollectRequest, RoundTrips) {
  const CollectRequest req{7};
  const auto back = CollectRequest::deserialize(req.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->k, 7u);
}

TEST(CollectRequest, RejectsWrongSize) {
  EXPECT_FALSE(CollectRequest::deserialize(Bytes{1, 2}).has_value());
  EXPECT_FALSE(CollectRequest::deserialize(Bytes(5, 0)).has_value());
}

TEST(CollectResponse, RoundTripsEmptyAndFull) {
  CollectResponse empty;
  auto back = CollectResponse::deserialize(empty.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->measurements.empty());

  CollectResponse full;
  for (uint64_t t : {30ull, 20ull, 10ull}) full.measurements.push_back(make_m(t));
  back = CollectResponse::deserialize(full.serialize());
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->measurements.size(), 3u);
  EXPECT_EQ(back->measurements[0], full.measurements[0]);
  EXPECT_EQ(back->measurements[2], full.measurements[2]);
}

TEST(CollectResponse, RejectsCountMismatch) {
  CollectResponse resp;
  resp.measurements.push_back(make_m(1));
  Bytes wire = resp.serialize();
  wire[0] = 2;  // claim two measurements but carry one
  EXPECT_FALSE(CollectResponse::deserialize(wire).has_value());
}

TEST(CollectResponse, RejectsTrailingGarbage) {
  CollectResponse resp;
  resp.measurements.push_back(make_m(1));
  Bytes wire = resp.serialize();
  wire.push_back(0xcc);
  EXPECT_FALSE(CollectResponse::deserialize(wire).has_value());
}

TEST(OdRequest, RoundTripsWithMac) {
  OdRequest req;
  req.treq = 1000;
  req.k = 5;
  req.mac = crypto::Mac::compute(MacAlgo::kHmacSha256, test_key(),
                                 OdRequest::mac_input(1000, 5));
  const auto back = OdRequest::deserialize(req.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->treq, 1000u);
  EXPECT_EQ(back->k, 5u);
  EXPECT_EQ(back->mac, req.mac);
}

TEST(OdRequest, MacInputBindsBothFields) {
  EXPECT_NE(OdRequest::mac_input(1, 0), OdRequest::mac_input(2, 0));
  EXPECT_NE(OdRequest::mac_input(1, 0), OdRequest::mac_input(1, 1))
      << "k must be bound so a MITM cannot change the history request";
}

TEST(OdResponse, RoundTripsFreshPlusHistory) {
  OdResponse resp;
  resp.fresh = make_m(100);
  resp.history = {make_m(90), make_m(80)};
  const auto back = OdResponse::deserialize(resp.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->fresh, resp.fresh);
  ASSERT_EQ(back->history.size(), 2u);
  EXPECT_EQ(back->history[1], resp.history[1]);
}

TEST(OdResponse, PureOnDemandHasEmptyHistory) {
  OdResponse resp;
  resp.fresh = make_m(100);
  const auto back = OdResponse::deserialize(resp.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->history.empty());
}

TEST(Framing, RoundTripsAllTypes) {
  for (auto type : {MsgType::kCollectRequest, MsgType::kCollectResponse,
                    MsgType::kOdRequest, MsgType::kOdResponse}) {
    const Bytes framed = frame(type, Bytes{1, 2, 3});
    const auto back = unframe(framed);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->first, type);
    EXPECT_EQ(Bytes(back->second.begin(), back->second.end()),
              (Bytes{1, 2, 3}));
  }
}

TEST(Framing, RejectsEmptyAndUnknownTags) {
  EXPECT_FALSE(unframe(Bytes{}).has_value());
  EXPECT_FALSE(unframe(Bytes{0x00, 1}).has_value());
  EXPECT_FALSE(unframe(Bytes{0x7f, 1}).has_value());
}

// Fuzz-lite property: deserializers never crash and correctly reject
// truncations of valid messages at every byte length.
class TruncationProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(TruncationProperty, EveryPrefixRejectedOrFullLength) {
  OdResponse resp;
  resp.fresh = make_m(100);
  resp.history = {make_m(90), make_m(80), make_m(70)};
  const Bytes wire = resp.serialize();
  const size_t cut = GetParam() % wire.size();
  const Bytes prefix(wire.begin(), wire.begin() + cut);
  EXPECT_FALSE(OdResponse::deserialize(prefix).has_value());
}

INSTANTIATE_TEST_SUITE_P(Cuts, TruncationProperty,
                         ::testing::Values(0, 1, 7, 8, 9, 12, 44, 80, 81, 100,
                                           150, 200, 250));

TEST(Malformed, EmptyPayloadsRejectedEverywhere) {
  const Bytes empty;
  EXPECT_FALSE(CollectRequest::deserialize(empty).has_value());
  EXPECT_FALSE(CollectResponse::deserialize(empty).has_value());
  EXPECT_FALSE(OdRequest::deserialize(empty).has_value());
  EXPECT_FALSE(OdResponse::deserialize(empty).has_value());
  EXPECT_FALSE(Measurement::deserialize(empty).has_value());
  EXPECT_FALSE(unframe(empty).has_value());
}

TEST(Malformed, TypeOnlyFramesCarryEmptyBodies) {
  // A 1-byte datagram unframes to an empty body; every body parser must
  // then reject it rather than fabricate a message.
  const auto framed = unframe(Bytes{2});  // kCollectResponse, nothing else
  ASSERT_TRUE(framed.has_value());
  EXPECT_TRUE(framed->second.empty());
  EXPECT_FALSE(CollectResponse::deserialize(framed->second).has_value());
}

TEST(Malformed, OversizedCountFieldFailsFastWithoutAllocating) {
  // Claims 2^32-1 measurements but carries none: must reject on the first
  // missing record, never pre-allocate from the attacker's header.
  ByteWriter w;
  w.u32(0xFFFFFFFFu);
  EXPECT_FALSE(CollectResponse::deserialize(w.bytes()).has_value());
}

TEST(Malformed, OversizedVarLengthFieldsRejected) {
  // A measurement whose digest claims to be 2^32-1 bytes long.
  ByteWriter w;
  w.u64(/*timestamp=*/42);
  w.u32(0xFFFFFFFFu);  // digest length prefix
  w.raw(bytes_of("short"));
  EXPECT_FALSE(Measurement::deserialize(w.bytes()).has_value());

  // The same lying record embedded in a response with a sane count.
  ByteWriter resp;
  resp.u32(1);
  resp.raw(w.bytes());
  EXPECT_FALSE(CollectResponse::deserialize(resp.bytes()).has_value());

  // And an OD request whose MAC field length overruns the frame.
  ByteWriter od;
  od.u64(/*treq=*/1000);
  od.u32(/*k=*/4);
  od.u32(0x7FFFFFFFu);  // mac length prefix
  EXPECT_FALSE(OdRequest::deserialize(od.bytes()).has_value());
}

TEST(Malformed, OversizedKRoundTripsAsData) {
  // k is data, not a length: the full u32 range must survive the wire
  // (clamping is the prover's business, not the codec's).
  const CollectRequest req{0xFFFFFFFFu};
  const auto back = CollectRequest::deserialize(req.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->k, 0xFFFFFFFFu);
}

// Truncation property for CollectResponse, mirroring the OdResponse one:
// every strict prefix of a valid wire image must be rejected.
class CollectTruncationProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(CollectTruncationProperty, EveryPrefixRejected) {
  CollectResponse resp;
  resp.measurements = {make_m(30), make_m(20), make_m(10)};
  const Bytes wire = resp.serialize();
  const size_t cut = GetParam() % wire.size();
  const Bytes prefix(wire.begin(), wire.begin() + cut);
  EXPECT_FALSE(CollectResponse::deserialize(prefix).has_value());
}

INSTANTIATE_TEST_SUITE_P(Cuts, CollectTruncationProperty,
                         ::testing::Values(0, 1, 3, 4, 5, 12, 44, 80, 84, 85,
                                           120, 160, 200, 243));

TEST(Fuzz, RandomBytesNeverCrashDeserializers) {
  uint32_t x = 0xC0FFEE;
  for (int trial = 0; trial < 200; ++trial) {
    Bytes junk((trial * 7) % 300);
    for (auto& b : junk) {
      x = x * 1664525u + 1013904223u;
      b = static_cast<uint8_t>(x >> 24);
    }
    (void)CollectRequest::deserialize(junk);
    (void)CollectResponse::deserialize(junk);
    (void)OdRequest::deserialize(junk);
    (void)OdResponse::deserialize(junk);
    (void)Measurement::deserialize(junk);
    (void)unframe(junk);
  }
  SUCCEED();
}

}  // namespace
}  // namespace erasmus::attest
