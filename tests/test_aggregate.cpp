// Tests for hierarchical collection (src/aggregate/ + its overlay and
// service wiring): aggregate frame serde and authentication, the head's
// hold-and-combine judgment, cluster-head election, end-to-end cluster
// aggregation through the RelayTransport/AttestationService stack,
// demand fetch of raw evidence on a cleared bit, dark-head recovery
// accounting, and the sharded runner's thread-count byte-identity with
// aggregation on.
#include <gtest/gtest.h>

#include <sstream>

#include "aggregate/combine.h"
#include "aggregate/election.h"
#include "attest/protocol.h"
#include "attest/service.h"
#include "crypto/hkdf.h"
#include "overlay/relay_node.h"
#include "overlay/relay_transport.h"
#include "scenario/scenario.h"
#include "scenario/sharded_runner.h"

namespace erasmus {
namespace {

using aggregate::AggregateFrame;
using aggregate::Combiner;
using aggregate::ElectionMode;
using aggregate::ElectionPolicy;
using sim::Duration;
using sim::Time;

constexpr crypto::HashAlgo kHash = crypto::HashAlgo::kSha256;
constexpr crypto::MacAlgo kMac = crypto::MacAlgo::kHmacSha256;
constexpr size_t kRecordBytes = 1 + 8 + 32 + 32;

Bytes device_key(uint32_t id) {
  Bytes salt(4);
  salt[0] = static_cast<uint8_t>(id);
  return crypto::hkdf(bytes_of("aggregate-test-master"), salt,
                      bytes_of("erasmus/device-key"), 32);
}

/// A CollectResponse whose every measurement carries `digest` -- what a
/// healthy member of a uniform fleet reports.
Bytes response_with_digest(const Bytes& digest, uint64_t t = 7) {
  attest::Measurement m;
  m.timestamp = t;
  m.digest = digest;
  m.mac = Bytes(32, 0xab);  // heads never check member MACs
  attest::CollectResponse resp;
  resp.measurements = {m};
  return resp.serialize();
}

// --- Frame serde and authentication ------------------------------------------

TEST(AggregateFrame, RoundTripPreservesEveryField) {
  AggregateFrame frame;
  frame.flood = 99;
  frame.head = 4;
  frame.members = {2, 7, 11};
  frame.bitmap = {0x05};  // members 2 and 11 healthy, 7 cleared
  frame.root = crypto::Hash::digest(kHash, bytes_of("root"));
  frame.raw_bytes = 1234;
  frame.mac = Bytes(32, 0xcd);

  const auto f = AggregateFrame::deserialize(frame.serialize());
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->flood, 99u);
  EXPECT_EQ(f->head, 4u);
  EXPECT_EQ(f->members, (std::vector<net::NodeId>{2, 7, 11}));
  EXPECT_EQ(f->bitmap, frame.bitmap);
  EXPECT_EQ(f->root, frame.root);
  EXPECT_EQ(f->raw_bytes, 1234u);
  EXPECT_EQ(f->mac, frame.mac);
  EXPECT_TRUE(f->healthy(0));
  EXPECT_FALSE(f->healthy(1));
  EXPECT_TRUE(f->healthy(2));
  EXPECT_FALSE(f->healthy(3)) << "out-of-range bits read as cleared";
}

TEST(AggregateFrame, MalformedFramesRejected) {
  AggregateFrame frame;
  frame.flood = 1;
  frame.head = 9;
  frame.members = {3, 5};
  frame.bitmap = {0x03};
  frame.root = Bytes(32, 0x11);
  frame.raw_bytes = 64;
  frame.mac = Bytes(32, 0x22);
  const Bytes good = frame.serialize();
  ASSERT_TRUE(AggregateFrame::deserialize(good).has_value());

  // Every truncation must be rejected, not read past the end.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(
        AggregateFrame::deserialize(ByteView(good.data(), cut)).has_value())
        << "accepted a " << cut << "-byte prefix";
  }
  // Trailing garbage is not canonical either.
  Bytes padded = good;
  padded.push_back(0x00);
  EXPECT_FALSE(AggregateFrame::deserialize(padded).has_value());

  // Non-canonical member lists make bitmap bits ambiguous: rejected.
  AggregateFrame unsorted = frame;
  unsorted.members = {5, 3};
  EXPECT_FALSE(AggregateFrame::deserialize(unsorted.serialize()).has_value());
  AggregateFrame dup = frame;
  dup.members = {3, 3};
  EXPECT_FALSE(AggregateFrame::deserialize(dup.serialize()).has_value());

  // Bitmap length must match the member count exactly.
  AggregateFrame wide = frame;
  wide.bitmap = {0x03, 0x00};
  EXPECT_FALSE(AggregateFrame::deserialize(wide.serialize()).has_value());
}

TEST(AggregateFrame, MacCoversEveryFieldButItself) {
  const Bytes key = device_key(4);
  AggregateFrame frame;
  frame.flood = 5;
  frame.head = 4;
  frame.members = {8, 9};
  frame.bitmap = {0x03};
  frame.root = Bytes(32, 0x44);
  frame.raw_bytes = 200;
  frame.mac = crypto::Mac::compute(kMac, key, aggregate_mac_input(frame));
  EXPECT_TRUE(verify_aggregate(frame, kMac, key));

  AggregateFrame flipped = frame;
  flipped.bitmap[0] ^= 0x02;  // whitewash attempt: set a cleared bit
  EXPECT_FALSE(verify_aggregate(flipped, kMac, key));

  AggregateFrame reroot = frame;
  reroot.root[0] ^= 0x01;
  EXPECT_FALSE(verify_aggregate(reroot, kMac, key));

  EXPECT_FALSE(verify_aggregate(frame, kMac, device_key(5)))
      << "an aggregate must only verify under its head's key";
}

// --- Hold-and-combine judgment -----------------------------------------------

TEST(Combiner, TamperedChildFlipsExactlyItsBit) {
  const Bytes reference = crypto::Hash::digest(kHash, bytes_of("golden"));
  const Bytes evil = crypto::Hash::digest(kHash, bytes_of("IMPLANT"));

  Combiner combiner(kHash, reference);
  const Bytes r5 = response_with_digest(reference);
  const Bytes r9 = response_with_digest(evil);
  const Bytes r12 = response_with_digest(reference);
  // Absorb out of member order: build() must still emit canonical form.
  combiner.absorb(12, r12);
  combiner.absorb(5, r5);
  combiner.absorb(9, r9);
  EXPECT_EQ(combiner.members(), 3u);
  EXPECT_EQ(combiner.raw_bytes(), r5.size() + r9.size() + r12.size());

  const AggregateFrame frame = combiner.build(/*flood=*/3, /*head=*/1);
  EXPECT_EQ(frame.members, (std::vector<net::NodeId>{5, 9, 12}));
  EXPECT_TRUE(frame.healthy(0));
  EXPECT_FALSE(frame.healthy(1)) << "the tampered member's bit must clear";
  EXPECT_TRUE(frame.healthy(2));

  // The root commits to the raw evidence in member order: recomputable
  // by a verifier auditing demand-fetched evidence.
  const Bytes expect_root = aggregate::hash_tree_root(
      kHash, {aggregate::evidence_leaf(kHash, 5, r5),
              aggregate::evidence_leaf(kHash, 9, r9),
              aggregate::evidence_leaf(kHash, 12, r12)});
  EXPECT_EQ(frame.root, expect_root);
}

TEST(Combiner, JudgmentEdgeCases) {
  const Bytes reference = crypto::Hash::digest(kHash, bytes_of("golden"));

  // Duplicate origins keep the first evidence (first report wins, like
  // the transport's dedup).
  Combiner dedup(kHash, reference);
  dedup.absorb(4, response_with_digest(reference));
  dedup.absorb(4, response_with_digest(Bytes(32, 0xee)));
  EXPECT_EQ(dedup.members(), 1u);
  EXPECT_TRUE(dedup.build(1, 0).healthy(0));

  // Unparsable evidence can never earn a healthy bit.
  Combiner junk(kHash, reference);
  junk.absorb(6, bytes_of("not a CollectResponse"));
  EXPECT_FALSE(junk.build(1, 0).healthy(0));

  // An empty response vouches for nothing.
  Combiner empty(kHash, reference);
  empty.absorb(6, attest::CollectResponse{}.serialize());
  EXPECT_FALSE(empty.build(1, 0).healthy(0));

  // No reference digest (head never measured) -> judge everyone
  // unhealthy; they fall back to the raw demand-fetch path.
  Combiner blind(kHash, Bytes{});
  blind.absorb(6, response_with_digest(reference));
  EXPECT_FALSE(blind.build(1, 0).healthy(0));
}

TEST(HashTree, RootShapes) {
  const Bytes a = crypto::Hash::digest(kHash, bytes_of("a"));
  const Bytes b = crypto::Hash::digest(kHash, bytes_of("b"));
  const Bytes c = crypto::Hash::digest(kHash, bytes_of("c"));

  EXPECT_EQ(aggregate::hash_tree_root(kHash, {}), Bytes(32, 0));
  EXPECT_EQ(aggregate::hash_tree_root(kHash, {a}), a);
  EXPECT_EQ(aggregate::hash_tree_root(kHash, {a, b}),
            crypto::Hash::digest(kHash, concat(a, b)));
  // Odd tail promoted unchanged: root(a,b,c) = H(H(a||b) || c).
  EXPECT_EQ(aggregate::hash_tree_root(kHash, {a, b, c}),
            crypto::Hash::digest(
                kHash, concat(crypto::Hash::digest(kHash, concat(a, b)), c)));
}

// --- Election ----------------------------------------------------------------

TEST(Election, DepthBandHeadsEveryStrideDepths) {
  const ElectionPolicy policy{ElectionMode::kDepthBand, 2};
  EXPECT_FALSE(aggregate::is_head(policy, 7, 0))
      << "depth 0 is the verifier's side of the tree";
  EXPECT_FALSE(aggregate::is_head(policy, 7, 1));
  EXPECT_TRUE(aggregate::is_head(policy, 7, 2));
  EXPECT_FALSE(aggregate::is_head(policy, 7, 3));
  EXPECT_TRUE(aggregate::is_head(policy, 7, 4));
}

TEST(Election, PlannedHeadsByIdStride) {
  const ElectionPolicy policy{ElectionMode::kPlanned, 3};
  EXPECT_TRUE(aggregate::is_head(policy, 0, 1));
  EXPECT_FALSE(aggregate::is_head(policy, 1, 2));
  EXPECT_TRUE(aggregate::is_head(policy, 3, 5));
  EXPECT_TRUE(aggregate::is_head(policy, 6, 1));
}

TEST(Election, ZeroStrideClampsToOne) {
  EXPECT_TRUE(
      aggregate::is_head({ElectionMode::kDepthBand, 0}, 9, 1));
  EXPECT_TRUE(aggregate::is_head({ElectionMode::kPlanned, 0}, 9, 1));
}

// --- Wire envelope -----------------------------------------------------------

TEST(AggregateWire, EnvelopeAndFloodFieldsRoundTrip) {
  overlay::AggregateReport env;
  env.flood = 17;
  env.head = 3;
  env.hops = 2;
  env.queue = 40;
  env.path = {3, 8, 1};
  env.payload = bytes_of("frame bytes");
  const auto e = overlay::AggregateReport::deserialize(env.serialize());
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->flood, 17u);
  EXPECT_EQ(e->head, 3u);
  EXPECT_EQ(e->hops, 2u);
  EXPECT_EQ(e->queue, 40u);
  EXPECT_EQ(e->path, (std::vector<net::NodeId>{3, 8, 1}));
  EXPECT_EQ(e->payload, bytes_of("frame bytes"));

  const Bytes full = env.serialize();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_FALSE(overlay::AggregateReport::deserialize(
                     ByteView(full.data(), cut)).has_value())
        << "accepted a " << cut << "-byte prefix";
  }

  // The flood frame carries the election inputs: depth and flags survive
  // the wire.
  overlay::CollectFlood flood;
  flood.flood = 5;
  flood.depth = 3;
  flood.flags = overlay::kFloodAggregate;
  flood.request = bytes_of("req");
  const auto f = overlay::CollectFlood::deserialize(flood.serialize());
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->depth, 3u);
  EXPECT_EQ(f->flags, overlay::kFloodAggregate);
}

// --- End to end through the transport + service ------------------------------

// A packet-level cluster rig: n devices with relay nodes, the verifier's
// RelayTransport + AttestationService, and the runner's aggregate
// delivery wiring (authenticate, complete healthy bits, demand-fetch
// cleared ones) reproduced verbatim.
struct AggRig {
  /// Roomy metered batteries: dark never fires on its own; a test kills a
  /// node by charging its full capacity in one go.
  static constexpr uint64_t kBatteryNj = 1'000'000'000'000ull;

  sim::EventQueue queue;
  net::Network network;
  std::vector<energy::DeviceMeter> meters;  // before nodes: outlives them
  std::vector<std::unique_ptr<hw::SmartPlusArch>> archs;
  std::vector<std::unique_ptr<attest::Prover>> provers;
  std::vector<std::unique_ptr<overlay::RelayNode>> nodes;
  attest::DeviceDirectory directory;
  net::NodeId verifier_node = 0;
  std::unique_ptr<overlay::RelayTransport> transport;
  std::unique_ptr<attest::AttestationService> service;
  std::vector<attest::AttestationService::SessionOutcome> outcomes;
  std::vector<AggregateFrame> frames;  // accepted + authenticated
  uint64_t auth_failures = 0;

  explicit AggRig(size_t n, overlay::RelayNodeConfig node_config = {},
                  attest::ServiceConfig sc = {}, bool metered = false)
      : network(queue, Duration::millis(2), /*loss=*/0.0, /*seed=*/7) {
    if (metered) {
      meters.assign(n, energy::DeviceMeter({}, kBatteryNj));
    }
    for (uint32_t id = 0; id < n; ++id) {
      if (metered) node_config.meter = &meters[id];
      auto arch = std::make_unique<hw::SmartPlusArch>(
          device_key(id), 4096, 1024, 16 * kRecordBytes);
      auto prover = std::make_unique<attest::Prover>(
          queue, *arch, arch->app_region(), arch->store_region(),
          std::make_unique<attest::RegularScheduler>(Duration::minutes(10)),
          attest::ProverConfig{});
      const net::NodeId node = network.add_node({});
      nodes.push_back(std::make_unique<overlay::RelayNode>(
          queue, network, node, *prover, n + 1, node_config));
      attest::DeviceRecord record;
      record.key = device_key(id);
      record.set_golden(crypto::Hash::digest(
          kHash, arch->memory().view(arch->app_region(), true)));
      directory.add(node, std::move(record));
      archs.push_back(std::move(arch));
      provers.push_back(std::move(prover));
    }
    verifier_node = network.add_node({});
    overlay::RelayTransportConfig tc;
    tc.aggregate = true;
    transport = std::make_unique<overlay::RelayTransport>(
        network, verifier_node, n + 1, tc);
    service = std::make_unique<attest::AttestationService>(
        queue, *transport, directory, sc);
    service->set_observer(
        [this](const attest::AttestationService::SessionOutcome& o) {
          outcomes.push_back(o);
        });
    // The runner's delivery path: authenticate under the head's directory
    // key, trust set bits, demand raw evidence for cleared ones.
    transport->set_aggregate_receiver(
        [this](const AggregateFrame& frame, uint8_t) {
          const attest::DeviceRecord& rec =
              directory.record(static_cast<attest::DeviceId>(frame.head));
          if (!verify_aggregate(frame, rec.algo, rec.key)) {
            ++auth_failures;
            return;
          }
          frames.push_back(frame);
          for (size_t i = 0; i < frame.members.size(); ++i) {
            if (frame.healthy(i)) {
              service->complete_aggregated(frame.members[i]);
            } else {
              service->demand_fetch(frame.members[i]);
            }
          }
        });
  }

  void start_and_run(Duration d) {
    for (auto& p : provers) p->start();
    queue.run_until(queue.now() + d);
  }

  /// One full collection round over every device, run to quiescence.
  void collect_all(size_t n) {
    std::vector<attest::DeviceId> all;
    for (attest::DeviceId id = 0; id < n; ++id) all.push_back(id);
    service->collect_now(all);
    queue.run_until(queue.now() + Duration::seconds(15));
  }

  const attest::AttestationService::SessionOutcome* outcome_for(
      attest::DeviceId device) const {
    for (const auto& o : outcomes) {
      if (o.device == device) return &o;
    }
    return nullptr;
  }
};

// verifier -- 0 -- 1 -- {2, 3}: node 1 sits at flood depth 2, so with
// depth-band stride 2 it heads the cluster whose members' reports flow
// through it.
void tree_filter(net::Network& network, net::NodeId v) {
  network.set_link_filter([v](net::NodeId a, net::NodeId b) {
    if (a > b) std::swap(a, b);
    if (b == v) return a == 0;
    if (a == 0) return b == 1;
    return a == 1 && (b == 2 || b == 3);
  });
}

TEST(AggregateEndToEnd, HeadAbsorbsClusterAndVerifierTrustsTheBits) {
  overlay::RelayNodeConfig nc;
  nc.aggregation.enabled = true;
  nc.aggregation.election = {ElectionMode::kDepthBand, 2};
  nc.aggregation.window = Duration::millis(200);
  AggRig rig(4, nc);
  tree_filter(rig.network, rig.verifier_node);
  rig.start_and_run(Duration::minutes(11));  // heads need a measurement

  rig.collect_all(4);

  // Every device attested; 2 and 3 through the head's healthy bits.
  ASSERT_EQ(rig.outcomes.size(), 4u);
  for (const auto& o : rig.outcomes) {
    EXPECT_TRUE(o.reachable) << "device " << o.device;
    EXPECT_TRUE(o.report.device_trustworthy()) << "device " << o.device;
  }
  EXPECT_FALSE(rig.outcome_for(0)->aggregated) << "depth-1 relays raw";
  EXPECT_FALSE(rig.outcome_for(1)->aggregated)
      << "a head never vouches for itself";
  EXPECT_TRUE(rig.outcome_for(2)->aggregated);
  EXPECT_TRUE(rig.outcome_for(3)->aggregated);

  const auto& head = rig.nodes[1]->stats();
  EXPECT_EQ(head.heads_elected, 1u);
  EXPECT_EQ(head.reports_absorbed, 2u);
  EXPECT_EQ(head.aggregates_built, 1u);

  ASSERT_EQ(rig.frames.size(), 1u);
  EXPECT_EQ(rig.frames[0].head, 1u);
  EXPECT_EQ(rig.frames[0].members, (std::vector<net::NodeId>{2, 3}));
  EXPECT_EQ(rig.auth_failures, 0u);

  const auto& ts = rig.transport->stats();
  EXPECT_EQ(ts.aggregates_received, 1u);
  EXPECT_EQ(ts.aggregate_members, 2u);
  EXPECT_GT(ts.aggregate_raw_bytes, ts.aggregate_wire_bytes)
      << "one frame must be smaller than the evidence it replaced";

  const auto& ss = rig.service->stats();
  EXPECT_EQ(ss.aggregated_sessions, 2u);
  EXPECT_EQ(ss.demand_fetches, 0u);
  EXPECT_EQ(ss.unreachable_sessions, 0u);
}

TEST(AggregateEndToEnd, ClearedBitDemandFetchesRawEvidenceAndFlags) {
  overlay::RelayNodeConfig nc;
  nc.aggregation.enabled = true;
  nc.aggregation.election = {ElectionMode::kDepthBand, 2};
  AggRig rig(4, nc);
  tree_filter(rig.network, rig.verifier_node);
  // Persistent malware on member 3 BEFORE its first measurement: its
  // digest diverges from the head's reference and from the golden.
  rig.provers[3]->memory().write(rig.provers[3]->attested_region(), 7,
                                 bytes_of("IMPLANT"), false);
  rig.start_and_run(Duration::minutes(11));

  rig.collect_all(4);

  // The head absorbed 3's report but cleared its bit...
  ASSERT_EQ(rig.frames.size(), 1u);
  const AggregateFrame& frame = rig.frames[0];
  ASSERT_EQ(frame.members, (std::vector<net::NodeId>{2, 3}));
  EXPECT_TRUE(frame.healthy(0));
  EXPECT_FALSE(frame.healthy(1));

  // ...which forced one demand fetch, and the raw evidence convicts.
  EXPECT_EQ(rig.service->stats().demand_fetches, 1u);
  EXPECT_EQ(rig.service->stats().aggregated_sessions, 1u);
  const auto* o3 = rig.outcome_for(3);
  ASSERT_NE(o3, nullptr);
  EXPECT_TRUE(o3->reachable);
  EXPECT_FALSE(o3->aggregated) << "a demand fetch yields raw evidence";
  EXPECT_TRUE(o3->report.infection_detected);
  EXPECT_TRUE(rig.outcome_for(2)->aggregated);
  EXPECT_TRUE(rig.outcome_for(2)->report.device_trustworthy());
}

TEST(AggregateEndToEnd, DarkHeadMembersRecoverThroughReelection) {
  // Diamond below the head band: verifier -- 0 -- {1, 2} -- 3. Both 1
  // and 2 sit at depth 2 and elect; 3's report flows through whichever
  // parent's flood arrived first (deterministically 1). Head 1 then dies
  // holding the cluster: 3's session must time out and the retry flood
  // rebuild the tree through the surviving head 2.
  overlay::RelayNodeConfig nc;
  nc.aggregation.enabled = true;
  nc.aggregation.election = {ElectionMode::kDepthBand, 2};
  nc.aggregation.window = Duration::millis(200);
  attest::ServiceConfig sc;
  sc.response_timeout = Duration::seconds(1);
  AggRig rig(4, nc, sc, /*metered=*/true);
  const net::NodeId v = rig.verifier_node;
  rig.network.set_link_filter([v](net::NodeId a, net::NodeId b) {
    if (a > b) std::swap(a, b);
    if (b == v) return a == 0;
    if (a == 0) return b == 1 || b == 2;
    return b == 3 && (a == 1 || a == 2);
  });
  rig.start_and_run(Duration::minutes(11));

  std::vector<attest::DeviceId> all{0, 1, 2, 3};
  rig.service->collect_now(all);
  // 3's report is absorbed by ~10 ms; the window flushes at ~205 ms. Kill
  // head 1 in between: the held evidence must never reach the wire.
  rig.queue.schedule_after(Duration::millis(100), [&rig] {
    rig.meters[1].charge_cpu(rig.meters[1].capacity_nj(), rig.queue.now());
  });
  rig.queue.run_until(rig.queue.now() + Duration::seconds(15));

  EXPECT_TRUE(rig.meters[1].dark());
  EXPECT_EQ(rig.nodes[1]->stats().heads_elected, 1u);
  EXPECT_EQ(rig.nodes[1]->stats().aggregates_built, 0u)
      << "the battery died before the flush";
  EXPECT_EQ(rig.nodes[1]->stats().aggregates_dark_purged, 1u)
      << "held cluster evidence dies under its own counter";

  // Recovery: the retry flood (single target, never aggregate-eligible)
  // re-treed around the corpse and 3's raw report climbed through 2.
  ASSERT_EQ(rig.outcomes.size(), 4u);
  const auto* o3 = rig.outcome_for(3);
  ASSERT_NE(o3, nullptr);
  EXPECT_TRUE(o3->reachable) << "member must recover via re-election";
  EXPECT_FALSE(o3->aggregated);
  EXPECT_GT(o3->attempts, 1) << "recovery rode the retry path";
  EXPECT_TRUE(o3->report.device_trustworthy());
  EXPECT_GT(rig.service->stats().retries, 0u);
  EXPECT_GT(rig.nodes[2]->stats().reports_relayed, 0u)
      << "the surviving branch carried the raw evidence";
  EXPECT_EQ(rig.service->stats().unreachable_sessions, 0u);
}

// --- Dark-head purge accounting (regression) ---------------------------------

TEST(AggregateDark, QueuedAggregatePurgedUnderItsOwnCounter) {
  // A head that browns out with an aggregate frame already in its
  // store-and-forward queue must account it under aggregates_dark_purged
  // (election-time recovery), NOT under dropped_dark.
  sim::EventQueue queue;
  net::Network network(queue, Duration::millis(2), 0.0, 7);

  auto arch = std::make_unique<hw::SmartPlusArch>(device_key(1), 4096, 1024,
                                                  16 * kRecordBytes);
  attest::Prover prover(queue, *arch, arch->app_region(),
                        arch->store_region(),
                        std::make_unique<attest::RegularScheduler>(
                            Duration::minutes(10)),
                        attest::ProverConfig{});

  const net::NodeId sender = network.add_node({});  // plays the verifier
  const net::NodeId head = network.add_node({});
  const net::NodeId child = network.add_node({});
  ASSERT_EQ(head, 1u);

  energy::DeviceMeter meter({}, /*capacity_nj=*/1000);
  overlay::RelayNodeConfig nc;
  nc.meter = &meter;
  nc.aggregation.enabled = true;
  nc.aggregation.election = {ElectionMode::kDepthBand, 1};  // always head
  nc.aggregation.window = Duration::millis(20);
  // Long serialization: nothing leaves the queue before the lights go out.
  nc.forward_spacing = Duration::millis(500);
  overlay::RelayNode node(queue, network, head, prover, 3, nc);

  size_t aggregates_heard = 0;
  network.set_handler(sender, [&](const net::Datagram& d) {
    const auto framed = overlay::unframe_relay(d.payload);
    if (framed && framed->first == overlay::RelayMsg::kAggregateReport) {
      ++aggregates_heard;
    }
  });

  prover.start();
  queue.run_until(queue.now() + Duration::minutes(11));  // one measurement

  // The round flood (aggregate-eligible, depth 0 -> head at depth 1).
  overlay::CollectFlood flood;
  flood.flood = 1;
  flood.ttl = 0;
  flood.flags = overlay::kFloodAggregate;
  flood.inner_type = static_cast<uint8_t>(attest::MsgType::kCollectRequest);
  flood.request = attest::CollectRequest{2}.serialize();
  network.send(sender, head,
               frame_relay(overlay::RelayMsg::kCollectFlood,
                           flood.serialize()));

  // A child report arrives inside the window and is absorbed.
  queue.schedule_after(Duration::millis(5), [&] {
    overlay::RelayReport report;
    report.flood = 1;
    report.origin = child;
    report.inner_type =
        static_cast<uint8_t>(attest::MsgType::kCollectResponse);
    report.path = {child};
    report.response = response_with_digest(Bytes(32, 0x55));
    network.send(child, head,
                 frame_relay(overlay::RelayMsg::kRelayReport,
                             report.serialize()));
  });

  // The window flushes at ~22 ms: the aggregate is built, MAC'd and
  // queued behind the head's own raw report. THEN the battery dies,
  // before the 500 ms forward spacing lets either frame out.
  queue.schedule_after(Duration::millis(100), [&] {
    meter.charge_cpu(meter.capacity_nj(), queue.now());
  });
  queue.run_until(queue.now() + Duration::seconds(2));

  const auto& stats = node.stats();
  EXPECT_EQ(stats.heads_elected, 1u);
  EXPECT_EQ(stats.reports_absorbed, 1u);
  EXPECT_EQ(stats.aggregates_built, 1u);
  EXPECT_EQ(stats.aggregates_dark_purged, 1u)
      << "the queued aggregate must die under its own counter";
  EXPECT_EQ(stats.dropped_dark, 1u)
      << "exactly the head's own raw report -- NOT the aggregate";
  EXPECT_EQ(aggregates_heard, 0u) << "nothing left the dark head";
}

TEST(AggregateDark, HeldCombinerPurgedWhenDarkBeforeFlush) {
  // Dark strikes INSIDE the window, before any frame was built: the held
  // evidence is purged at flush under aggregates_dark_purged.
  sim::EventQueue queue;
  net::Network network(queue, Duration::millis(2), 0.0, 7);
  auto arch = std::make_unique<hw::SmartPlusArch>(device_key(1), 4096, 1024,
                                                  16 * kRecordBytes);
  attest::Prover prover(queue, *arch, arch->app_region(),
                        arch->store_region(),
                        std::make_unique<attest::RegularScheduler>(
                            Duration::minutes(10)),
                        attest::ProverConfig{});
  const net::NodeId sender = network.add_node({});
  const net::NodeId head = network.add_node({});
  const net::NodeId child = network.add_node({});
  energy::DeviceMeter meter({}, /*capacity_nj=*/1000);
  overlay::RelayNodeConfig nc;
  nc.meter = &meter;
  nc.aggregation.enabled = true;
  nc.aggregation.election = {ElectionMode::kDepthBand, 1};
  nc.aggregation.window = Duration::millis(200);
  nc.forward_spacing = Duration::millis(500);
  overlay::RelayNode node(queue, network, head, prover, 3, nc);

  prover.start();
  queue.run_until(queue.now() + Duration::minutes(11));

  overlay::CollectFlood flood;
  flood.flood = 1;
  flood.ttl = 0;
  flood.flags = overlay::kFloodAggregate;
  flood.inner_type = static_cast<uint8_t>(attest::MsgType::kCollectRequest);
  flood.request = attest::CollectRequest{2}.serialize();
  network.send(sender, head,
               frame_relay(overlay::RelayMsg::kCollectFlood,
                           flood.serialize()));
  queue.schedule_after(Duration::millis(5), [&] {
    overlay::RelayReport report;
    report.flood = 1;
    report.origin = child;
    report.inner_type =
        static_cast<uint8_t>(attest::MsgType::kCollectResponse);
    report.path = {child};
    report.response = response_with_digest(Bytes(32, 0x55));
    network.send(child, head,
                 frame_relay(overlay::RelayMsg::kRelayReport,
                             report.serialize()));
  });
  // Dead at 50 ms: absorbed evidence held, window open until 200 ms.
  queue.schedule_after(Duration::millis(50), [&] {
    meter.charge_cpu(meter.capacity_nj(), queue.now());
  });
  queue.run_until(queue.now() + Duration::seconds(2));

  const auto& stats = node.stats();
  EXPECT_EQ(stats.reports_absorbed, 1u);
  EXPECT_EQ(stats.aggregates_built, 0u);
  EXPECT_EQ(stats.aggregates_dark_purged, 1u)
      << "held evidence dies with the battery, under its own counter";
}

// --- Sharded runner: byte-identity and the aggregate table -------------------

scenario::ShardedFleetConfig agg_fleet_config(size_t threads) {
  swarm::DeviceSpec base;
  base.tm = Duration::minutes(10);
  base.app_ram_bytes = 1024;
  base.store_slots = 16;

  scenario::ShardedFleetConfig cfg;
  cfg.plan = swarm::FleetPlan::uniform(24, /*key_seed=*/42, base);
  cfg.plan.mobility.field_size = 120.0;
  cfg.plan.mobility.radio_range = 50.0;
  cfg.plan.mobility.speed_min = 4.0;
  cfg.plan.mobility.speed_max = 9.0;
  cfg.plan.mobility.seed = 42;
  cfg.threads = threads;
  cfg.rounds = 4;
  cfg.round_interval = Duration::minutes(30);
  cfg.k = 4;
  cfg.backend = scenario::CollectionBackend::kOverlay;
  cfg.overlay.collect_deadline = Duration::seconds(25);
  cfg.overlay.aggregation.enabled = true;
  cfg.overlay.aggregation.election = {ElectionMode::kDepthBand, 2};
  return cfg;
}

std::string agg_run_to_json(scenario::ShardedFleetConfig cfg) {
  std::ostringstream out;
  scenario::JsonSink sink(out);
  sink.begin_run("aggregate-determinism");
  scenario::ShardedFleetRunner runner(cfg);
  runner.schedule_on_device(
      7, Time::zero() + Duration::minutes(35), [](attest::Prover& p) {
        p.memory().write(p.attested_region(), 16, bytes_of("IMPLANT"),
                         false);
      });
  runner.run(sink);
  sink.end_run();
  return out.str();
}

TEST(AggregateRunner, MetricsByteIdenticalAcross1_2_8Threads) {
  const std::string t1 = agg_run_to_json(agg_fleet_config(1));
  const std::string t2 = agg_run_to_json(agg_fleet_config(2));
  const std::string t8 = agg_run_to_json(agg_fleet_config(8));
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
  EXPECT_NE(t1.find("\"aggregate\""), std::string::npos)
      << "aggregation must emit its per-round table";
  EXPECT_NE(t1.find("\"clusters\""), std::string::npos);
  EXPECT_NE(t1.find("\"compression\""), std::string::npos);
  EXPECT_NE(t1.find("\"flagged\": 1"), std::string::npos)
      << "the infected device must still be flagged with aggregation on";
}

TEST(AggregateRunner, ClustersActuallyFormAndCompress) {
  std::ostringstream out;
  scenario::JsonSink sink(out);
  sink.begin_run("aggregate");
  scenario::ShardedFleetRunner runner(agg_fleet_config(2));
  const auto rounds = runner.run(sink);
  sink.end_run();

  size_t collected = 0;
  for (const auto& r : rounds) collected += r.reachable;
  EXPECT_GT(collected, 0u);

  const auto totals = runner.overlay_totals();
  EXPECT_GT(totals.heads_elected, 0u) << "depth-band election must fire";
  EXPECT_GT(totals.aggregates_built, 0u);
  EXPECT_GT(totals.aggregates_received, 0u);
  const auto& ts = runner.service().stats();
  EXPECT_GT(ts.aggregated_sessions, 0u)
      << "healthy bits must close sessions";
  const auto& transport_stats = runner.overlay_totals();
  EXPECT_GE(transport_stats.reports_absorbed,
            ts.aggregated_sessions)
      << "every aggregated session rode an absorbed report";
}

}  // namespace
}  // namespace erasmus
