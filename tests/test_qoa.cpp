// Tests for the QoA metric (§3.1) and the detection-probability closed
// forms, cross-validated against the Monte-Carlo estimators.
#include <gtest/gtest.h>

#include "analysis/detection.h"
#include "attest/qoa.h"

namespace erasmus::attest {
namespace {

using sim::Duration;

TEST(QoAParams, KIsCeilTcOverTm) {
  // Paper: k = ceil(T_C / T_M).
  QoAParams q{Duration::minutes(10), Duration::hours(1)};
  EXPECT_EQ(q.measurements_per_collection(), 6u);
  QoAParams q2{Duration::minutes(10), Duration::minutes(61)};
  EXPECT_EQ(q2.measurements_per_collection(), 7u);
  QoAParams q3{Duration::minutes(10), Duration::minutes(10)};
  EXPECT_EQ(q3.measurements_per_collection(), 1u);
}

TEST(QoAParams, ExpectedFreshnessIsHalfTm) {
  QoAParams q{Duration::minutes(10), Duration::hours(1)};
  EXPECT_EQ(q.expected_freshness().ns(), Duration::minutes(5).ns());
}

TEST(QoAParams, WorstCaseDetectionDelay) {
  QoAParams q{Duration::minutes(10), Duration::hours(1)};
  EXPECT_EQ(q.worst_case_detection_delay().ns(),
            Duration::minutes(70).ns());
}

TEST(QoAParams, BufferSafetyCondition) {
  // §3.2: T_C <= n * T_M.
  QoAParams q{Duration::minutes(10), Duration::hours(1)};
  EXPECT_TRUE(q.buffer_safe(6));
  EXPECT_TRUE(q.buffer_safe(12));
  EXPECT_FALSE(q.buffer_safe(5));
  EXPECT_EQ(q.min_buffer_slots(), 6u);
}

TEST(QoAParams, ZeroTmRejected) {
  QoAParams q{Duration(0), Duration::hours(1)};
  EXPECT_THROW(q.measurements_per_collection(), std::invalid_argument);
  EXPECT_THROW(q.min_buffer_slots(), std::invalid_argument);
}

TEST(DetectionProb, RegularRandomPhase) {
  EXPECT_DOUBLE_EQ(
      detection_prob_regular(Duration::minutes(5), Duration::minutes(10)),
      0.5);
  EXPECT_DOUBLE_EQ(
      detection_prob_regular(Duration::minutes(20), Duration::minutes(10)),
      1.0);
  EXPECT_DOUBLE_EQ(detection_prob_regular(Duration(0), Duration::minutes(10)),
                   0.0);
}

TEST(DetectionProb, ScheduleAwareRegularIsAllOrNothing) {
  EXPECT_EQ(detection_prob_schedule_aware_regular(Duration::minutes(9),
                                                  Duration::minutes(10)),
            0.0);
  EXPECT_EQ(detection_prob_schedule_aware_regular(Duration::minutes(10),
                                                  Duration::minutes(10)),
            1.0);
}

TEST(DetectionProb, ScheduleAwareIrregularLinearBetweenBounds) {
  const auto p = [&](uint64_t dwell_min) {
    return detection_prob_schedule_aware_irregular(
        Duration::minutes(dwell_min), Duration::minutes(5),
        Duration::minutes(15));
  };
  EXPECT_DOUBLE_EQ(p(5), 0.0);
  EXPECT_DOUBLE_EQ(p(10), 0.5);
  EXPECT_DOUBLE_EQ(p(15), 1.0);
  EXPECT_DOUBLE_EQ(p(3), 0.0);
  EXPECT_DOUBLE_EQ(p(100), 1.0);
}

TEST(DetectionProb, ParameterValidation) {
  EXPECT_THROW(detection_prob_regular(Duration::minutes(1), Duration(0)),
               std::invalid_argument);
  EXPECT_THROW(detection_prob_schedule_aware_irregular(
                   Duration::minutes(1), Duration::minutes(5),
                   Duration::minutes(5)),
               std::invalid_argument);
}

// --- Closed form vs. Monte Carlo ----------------------------------------------

struct McCase {
  uint64_t dwell_min;
  uint64_t tm_min;
};

class RegularMcAgreement : public ::testing::TestWithParam<McCase> {};

TEST_P(RegularMcAgreement, WithinTwoPercent) {
  const auto& p = GetParam();
  const double closed = detection_prob_regular(
      Duration::minutes(p.dwell_min), Duration::minutes(p.tm_min));
  const double mc = analysis::mc_detection_regular(
      Duration::minutes(p.dwell_min), Duration::minutes(p.tm_min), 50'000,
      /*seed=*/p.dwell_min * 31 + p.tm_min);
  EXPECT_NEAR(mc, closed, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegularMcAgreement,
                         ::testing::Values(McCase{1, 10}, McCase{3, 10},
                                           McCase{5, 10}, McCase{9, 10},
                                           McCase{10, 10}, McCase{15, 10},
                                           McCase{7, 60}, McCase{30, 60}));

struct IrrCase {
  uint64_t dwell_min;
  uint64_t lower_min;
  uint64_t upper_min;
};

class IrregularMcAgreement : public ::testing::TestWithParam<IrrCase> {};

TEST_P(IrregularMcAgreement, WithinTwoPercent) {
  const auto& p = GetParam();
  const double closed = detection_prob_schedule_aware_irregular(
      Duration::minutes(p.dwell_min), Duration::minutes(p.lower_min),
      Duration::minutes(p.upper_min));
  const double mc = analysis::mc_detection_schedule_aware_irregular(
      Duration::minutes(p.dwell_min), Duration::minutes(p.lower_min),
      Duration::minutes(p.upper_min), 50'000,
      /*seed=*/p.dwell_min * 101 + p.upper_min);
  EXPECT_NEAR(mc, closed, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IrregularMcAgreement,
    ::testing::Values(IrrCase{5, 5, 15}, IrrCase{8, 5, 15},
                      IrrCase{10, 5, 15}, IrrCase{12, 5, 15},
                      IrrCase{15, 5, 15}, IrrCase{30, 10, 60}));

TEST(DetectionProb, IrregularAlwaysBeatsRegularAgainstScheduleAwareDwell) {
  // The §3.5 claim: for dwell < T_M, schedule-aware malware beats a regular
  // schedule with certainty, while an irregular schedule with the same mean
  // period retains positive detection probability for dwell > L.
  const Duration tm = Duration::minutes(10);
  const Duration lo = Duration::minutes(5), hi = Duration::minutes(15);
  for (uint64_t dwell_min = 6; dwell_min <= 9; ++dwell_min) {
    const Duration dwell = Duration::minutes(dwell_min);
    EXPECT_EQ(detection_prob_schedule_aware_regular(dwell, tm), 0.0);
    EXPECT_GT(detection_prob_schedule_aware_irregular(dwell, lo, hi), 0.0);
  }
}

}  // namespace
}  // namespace erasmus::attest
