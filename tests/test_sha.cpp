// Known-answer and property tests for SHA-1 and SHA-256.
//
// KATs are the FIPS 180 / RFC examples ("abc", empty string, two-block
// message, million 'a's) plus streaming-equivalence and reuse properties.
#include <gtest/gtest.h>

#include "common/hex.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace erasmus::crypto {
namespace {

Bytes hex(std::string_view s) { return from_hex(s).value(); }

TEST(Sha1, Fips180KnownAnswers) {
  EXPECT_EQ(Hash::digest(HashAlgo::kSha1, bytes_of("abc")),
            hex("a9993e364706816aba3e25717850c26c9cd0d89d"));
  EXPECT_EQ(Hash::digest(HashAlgo::kSha1, bytes_of("")),
            hex("da39a3ee5e6b4b0d3255bfef95601890afd80709"));
  EXPECT_EQ(
      Hash::digest(HashAlgo::kSha1,
                   bytes_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmno"
                            "mnopnopq")),
      hex("84983e441c3bd26ebaae4aa1f95129e5e54670f1"));
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finalize(), hex("34aa973cd4c4daa4f61eeb2bdbad27316534016f"));
}

TEST(Sha256, Fips180KnownAnswers) {
  EXPECT_EQ(
      Hash::digest(HashAlgo::kSha256, bytes_of("abc")),
      hex("ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"));
  EXPECT_EQ(
      Hash::digest(HashAlgo::kSha256, bytes_of("")),
      hex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"));
  EXPECT_EQ(
      Hash::digest(HashAlgo::kSha256,
                   bytes_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmno"
                            "mnopnopq")),
      hex("248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"));
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(20000, 'a');
  for (int i = 0; i < 50; ++i) h.update(chunk);
  EXPECT_EQ(
      h.finalize(),
      hex("cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"));
}

TEST(Sha256, FinalizeResetsForReuse) {
  Sha256 h;
  h.update(bytes_of("abc"));
  const Bytes first = h.finalize();
  h.update(bytes_of("abc"));
  EXPECT_EQ(h.finalize(), first);
}

TEST(Sha256, ResetDiscardsPendingInput) {
  Sha256 h;
  h.update(bytes_of("garbage"));
  h.reset();
  h.update(bytes_of("abc"));
  EXPECT_EQ(h.finalize(), Hash::digest(HashAlgo::kSha256, bytes_of("abc")));
}

TEST(Sha256, MetadataMatchesSpec) {
  Sha256 h;
  EXPECT_EQ(h.digest_size(), 32u);
  EXPECT_EQ(h.block_size(), 64u);
  EXPECT_EQ(h.algo(), HashAlgo::kSha256);
}

TEST(Sha1, MetadataMatchesSpec) {
  Sha1 h;
  EXPECT_EQ(h.digest_size(), 20u);
  EXPECT_EQ(h.block_size(), 64u);
}

TEST(HashFactory, CreatesEveryAlgorithm) {
  for (auto algo :
       {HashAlgo::kSha1, HashAlgo::kSha256, HashAlgo::kBlake2s}) {
    auto h = Hash::create(algo);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->algo(), algo);
  }
}

TEST(HashNames, AreHumanReadable) {
  EXPECT_EQ(to_string(HashAlgo::kSha1), "SHA-1");
  EXPECT_EQ(to_string(HashAlgo::kSha256), "SHA-256");
  EXPECT_EQ(to_string(HashAlgo::kBlake2s), "BLAKE2s");
}

// Property: chunked streaming must equal one-shot hashing for any chunking
// and any message length straddling block boundaries.
struct StreamCase {
  HashAlgo algo;
  size_t message_len;
  size_t chunk;
};

class HashStreamingProperty : public ::testing::TestWithParam<StreamCase> {};

TEST_P(HashStreamingProperty, ChunkedEqualsOneShot) {
  const auto& p = GetParam();
  Bytes msg(p.message_len);
  for (size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  const Bytes expected = Hash::digest(p.algo, msg);

  auto h = Hash::create(p.algo);
  for (size_t off = 0; off < msg.size(); off += p.chunk) {
    const size_t len = std::min(p.chunk, msg.size() - off);
    h->update(ByteView(msg).subspan(off, len));
  }
  EXPECT_EQ(h->finalize(), expected);
}

std::vector<StreamCase> stream_cases() {
  std::vector<StreamCase> cases;
  for (auto algo : {HashAlgo::kSha1, HashAlgo::kSha256, HashAlgo::kBlake2s}) {
    for (size_t len : {0ul, 1ul, 55ul, 56ul, 63ul, 64ul, 65ul, 127ul, 128ul,
                       1000ul}) {
      for (size_t chunk : {1ul, 3ul, 64ul, 100ul}) {
        if (chunk <= len || len == 0) {
          cases.push_back({algo, len, std::max<size_t>(chunk, 1)});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgosAndBoundaries, HashStreamingProperty,
                         ::testing::ValuesIn(stream_cases()));

// Property: any single-bit flip changes the digest (avalanche smoke test).
class HashBitFlipProperty : public ::testing::TestWithParam<HashAlgo> {};

TEST_P(HashBitFlipProperty, SingleBitFlipChangesDigest) {
  Bytes msg(129);
  for (size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<uint8_t>(i);
  const Bytes base = Hash::digest(GetParam(), msg);
  for (size_t byte : {0ul, 63ul, 64ul, 128ul}) {
    Bytes mutated = msg;
    mutated[byte] ^= 0x01;
    EXPECT_NE(Hash::digest(GetParam(), mutated), base)
        << "flip at byte " << byte;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, HashBitFlipProperty,
                         ::testing::Values(HashAlgo::kSha1, HashAlgo::kSha256,
                                           HashAlgo::kBlake2s));

}  // namespace
}  // namespace erasmus::crypto
