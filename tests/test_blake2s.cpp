// Known-answer and property tests for BLAKE2s (RFC 7693), including the
// keyed mode the paper uses as its third MAC construction.
#include <gtest/gtest.h>

#include "common/hex.h"
#include "crypto/blake2s.h"

namespace erasmus::crypto {
namespace {

Bytes hex(std::string_view s) { return from_hex(s).value(); }

// Sequential key bytes 00 01 ... 1f, as used by the official blake2s KAT.
Bytes kat_key() {
  Bytes key(32);
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<uint8_t>(i);
  return key;
}

// Input of n sequential bytes 00 01 02 ..., as used by the official KAT.
Bytes kat_input(size_t n) {
  Bytes in(n);
  for (size_t i = 0; i < n; ++i) in[i] = static_cast<uint8_t>(i);
  return in;
}

TEST(Blake2s, Rfc7693AbcExample) {
  // RFC 7693 Appendix B: BLAKE2s-256("abc").
  EXPECT_EQ(
      Hash::digest(HashAlgo::kBlake2s, bytes_of("abc")),
      hex("508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982"));
}

TEST(Blake2s, EmptyStringUnkeyed) {
  EXPECT_EQ(
      Hash::digest(HashAlgo::kBlake2s, {}),
      hex("69217a3079908094e11121d042354a7c1f55b6482ca1a51e1b250dfd1ed0eef9"));
}

TEST(Blake2s, OfficialKeyedKatFirstVectors) {
  // blake2s-kat.txt: keyed with 00..1f, inputs of 0 and 1 sequential bytes.
  {
    Blake2s mac(kat_key(), 32);
    EXPECT_EQ(
        mac.finalize(),
        hex("48a8997da407876b3d79c0d92325ad3b89cbb754d86ab71aee047ad345fd2c"
            "49"));
  }
  {
    Blake2s mac(kat_key(), 32);
    mac.update(kat_input(1));
    EXPECT_EQ(
        mac.finalize(),
        hex("40d15fee7c328830166ac3f918650f807e7e01e177258cdc0a39b11f598066"
            "f1"));
  }
}

TEST(Blake2s, KeyedDiffersFromUnkeyed) {
  Blake2s keyed(bytes_of("some-key-bytes"), 32);
  keyed.update(bytes_of("message"));
  EXPECT_NE(keyed.finalize(),
            Hash::digest(HashAlgo::kBlake2s, bytes_of("message")));
}

TEST(Blake2s, DifferentKeysDifferentTags) {
  Blake2s a(bytes_of("key-a"), 32);
  Blake2s b(bytes_of("key-b"), 32);
  a.update(bytes_of("msg"));
  b.update(bytes_of("msg"));
  EXPECT_NE(a.finalize(), b.finalize());
}

TEST(Blake2s, TruncatedDigestLengths) {
  // BLAKE2s parameterises the digest length into the IV, so a truncated
  // digest is NOT a prefix of the full one.
  Blake2s h16(16);
  h16.update(bytes_of("abc"));
  const Bytes d16 = h16.finalize();
  EXPECT_EQ(d16.size(), 16u);
  const Bytes d32 = Hash::digest(HashAlgo::kBlake2s, bytes_of("abc"));
  EXPECT_NE(Bytes(d32.begin(), d32.begin() + 16), d16);
}

TEST(Blake2s, RejectsBadParameters) {
  EXPECT_THROW(Blake2s(0), std::invalid_argument);
  EXPECT_THROW(Blake2s(33), std::invalid_argument);
  EXPECT_THROW(Blake2s(Bytes{}, 32), std::invalid_argument);
  EXPECT_THROW(Blake2s(Bytes(33, 1), 32), std::invalid_argument);
}

TEST(Blake2s, FinalizeResetsKeyedState) {
  Blake2s mac(kat_key(), 32);
  mac.update(kat_input(1));
  const Bytes first = mac.finalize();
  mac.update(kat_input(1));
  EXPECT_EQ(mac.finalize(), first) << "keyed state must re-absorb the key";
}

TEST(Blake2s, ExactBlockBoundaryMessages) {
  // 64-byte message: exactly one block after the key block.
  const Bytes in = kat_input(64);
  Blake2s mac(kat_key(), 32);
  mac.update(in);
  const Bytes one_shot = mac.finalize();

  // Chunked: 63 + 1 crosses the key-block/last-block boundary.
  Blake2s chunked(kat_key(), 32);
  chunked.update(ByteView(in).subspan(0, 63));
  chunked.update(ByteView(in).subspan(63, 1));
  EXPECT_EQ(chunked.finalize(), one_shot);
}

// Property: keyed streaming equals one-shot for lengths around block
// boundaries (the last-block flag handling is the classic bug source).
class Blake2sKeyedStreaming : public ::testing::TestWithParam<size_t> {};

TEST_P(Blake2sKeyedStreaming, ChunkedEqualsOneShot) {
  const size_t len = GetParam();
  const Bytes in = kat_input(len);

  Blake2s one_shot(kat_key(), 32);
  one_shot.update(in);
  const Bytes expected = one_shot.finalize();

  for (size_t chunk : {1ul, 7ul, 64ul}) {
    Blake2s streamed(kat_key(), 32);
    for (size_t off = 0; off < in.size(); off += chunk) {
      streamed.update(ByteView(in).subspan(off, std::min(chunk, len - off)));
    }
    EXPECT_EQ(streamed.finalize(), expected) << "len=" << len
                                             << " chunk=" << chunk;
  }
}

INSTANTIATE_TEST_SUITE_P(BlockBoundaries, Blake2sKeyedStreaming,
                         ::testing::Values(0, 1, 63, 64, 65, 127, 128, 129,
                                           255));

}  // namespace
}  // namespace erasmus::crypto
