// Tests for the multi-hop collection overlay (tree-routed collection of
// self-measurements over the simulated network, §6): wire protocol,
// per-device relay nodes (store-and-forward, bounded queues, route
// repair), the RelayTransport, and the AttestationService-backed
// RelayCollector.
#include <gtest/gtest.h>

#include "crypto/hkdf.h"
#include "overlay/collector.h"
#include "overlay/relay_node.h"
#include "swarm/mobility.h"

namespace erasmus::overlay {
namespace {

using sim::Duration;
using sim::Time;

constexpr size_t kRecordBytes = 1 + 8 + 32 + 32;

Bytes device_key(uint32_t id) {
  Bytes salt(4);
  salt[0] = static_cast<uint8_t>(id);
  return crypto::hkdf(bytes_of("relay-test-master"), salt,
                      bytes_of("erasmus/device-key"), 32);
}

// A full packet-level swarm: n provers with relay nodes, a shared
// DeviceDirectory (node id == device id), one overlay collector.
struct OverlayRig {
  sim::EventQueue queue;
  net::Network network;
  std::vector<std::unique_ptr<hw::SmartPlusArch>> archs;
  std::vector<std::unique_ptr<attest::Prover>> provers;
  std::vector<std::unique_ptr<RelayNode>> nodes;
  attest::DeviceDirectory directory;
  net::NodeId collector_node = 0;
  std::unique_ptr<RelayCollector> collector;

  explicit OverlayRig(size_t n, double loss = 0.0,
                      RelayCollectorConfig config = {},
                      RelayNodeConfig node_config = {})
      : network(queue, Duration::millis(2), loss, /*seed=*/7) {
    for (uint32_t id = 0; id < n; ++id) {
      auto arch = std::make_unique<hw::SmartPlusArch>(
          device_key(id), 4096, 1024, 16 * kRecordBytes);
      auto prover = std::make_unique<attest::Prover>(
          queue, *arch, arch->app_region(), arch->store_region(),
          std::make_unique<attest::RegularScheduler>(Duration::minutes(10)),
          attest::ProverConfig{});

      const net::NodeId node = network.add_node({});
      nodes.push_back(std::make_unique<RelayNode>(queue, network, node,
                                                  *prover, n + 1,
                                                  node_config));

      attest::DeviceRecord record;
      record.key = device_key(id);
      record.set_golden(crypto::Hash::digest(
          crypto::HashAlgo::kSha256,
          arch->memory().view(arch->app_region(), true)));
      directory.add(node, std::move(record));

      archs.push_back(std::move(arch));
      provers.push_back(std::move(prover));
    }
    collector_node = network.add_node({});
    collector = std::make_unique<RelayCollector>(
        queue, network, collector_node, directory, n + 1, config);
  }

  void start_and_run(Duration d) {
    for (auto& p : provers) p->start();
    queue.run_until(queue.now() + d);
  }

  uint64_t total(uint64_t RelayNode::Stats::*field) const {
    uint64_t sum = 0;
    for (const auto& node : nodes) sum += node->stats().*field;
    return sum;
  }
};

TEST(OverlayWire, FloodAndReportRoundTrip) {
  CollectFlood flood;
  flood.flood = 42;
  flood.targets = {7, 11};
  flood.ttl = 3;
  flood.inner_type = 1;
  flood.request = bytes_of("req");
  const auto f = CollectFlood::deserialize(flood.serialize());
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->flood, 42u);
  EXPECT_EQ(f->targets, (std::vector<net::NodeId>{7, 11}));
  EXPECT_TRUE(f->serves(7));
  EXPECT_TRUE(f->serves(11));
  EXPECT_FALSE(f->serves(8));
  EXPECT_EQ(f->ttl, 3u);
  EXPECT_EQ(f->inner_type, 1u);
  EXPECT_EQ(f->request, bytes_of("req"));

  CollectFlood everyone;
  everyone.targets = {kEveryone};
  EXPECT_TRUE(everyone.serves(8));

  RelayReport report;
  report.flood = 42;
  report.origin = 9;
  report.hops = 5;
  report.inner_type = 2;
  report.queue = 37;
  report.path = {9, 4, 2};
  report.response = bytes_of("payload");
  const auto r = RelayReport::deserialize(report.serialize());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->origin, 9u);
  EXPECT_EQ(r->hops, 5u);
  EXPECT_EQ(r->queue, 37u);
  EXPECT_EQ(r->path, (std::vector<net::NodeId>{9, 4, 2}));
  EXPECT_EQ(r->response, bytes_of("payload"));

  // Truncated frames must be rejected, not read past the end.
  EXPECT_FALSE(CollectFlood::deserialize(Bytes{1, 2}).has_value());
  EXPECT_FALSE(RelayReport::deserialize(Bytes{1}).has_value());
  const Bytes full = flood.serialize();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_FALSE(CollectFlood::deserialize(
                     ByteView(full.data(), cut)).has_value())
        << "accepted a " << cut << "-byte prefix";
  }
}

TEST(Overlay, FullyConnectedSwarmAllAttested) {
  OverlayRig rig(6);  // no link filter: everyone hears everyone
  rig.start_and_run(Duration::hours(1));

  const auto result = rig.collector->run_round(6, Duration::seconds(10));
  EXPECT_EQ(result.reports_received, 6u);
  for (const auto& s : result.statuses) {
    EXPECT_TRUE(s.attested) << "device " << s.device;
    EXPECT_TRUE(s.healthy) << "device " << s.device;
  }
  EXPECT_GT(result.elapsed.ns(), 0u);
}

// collector -- 0 -- 1 -- 2 -- 3 (line): reports must hop back through the
// parents, exercising the store-and-forward relay path.
void line_filter(net::Network& network, net::NodeId c) {
  network.set_link_filter([c](net::NodeId a, net::NodeId b) {
    const auto adjacent = [&](net::NodeId x, net::NodeId y) {
      if (x > y) std::swap(x, y);
      if (y == c) return x == 0;  // collector only hears dev 0
      return y - x == 1;          // chain 0-1-2-3
    };
    return adjacent(a, b);
  });
}

TEST(Overlay, MultiHopLineTopology) {
  OverlayRig rig(4);
  line_filter(rig.network, rig.collector_node);
  rig.start_and_run(Duration::hours(1));

  const auto result = rig.collector->run_round(6, Duration::seconds(10));
  EXPECT_EQ(result.reports_received, 4u)
      << "all devices reachable through multi-hop relay";
  EXPECT_GT(rig.total(&RelayNode::Stats::reports_relayed), 0u)
      << "inner devices must have relayed reports";

  // The transport's histogram sees the depth: device 3's report crossed
  // three relays.
  const auto& hops = rig.collector->transport().hop_histogram();
  ASSERT_GE(hops.size(), 4u);
  EXPECT_EQ(hops[3], 1u);
}

TEST(Overlay, TtlBoundsFloodDepth) {
  RelayCollectorConfig config;
  config.transport.ttl = 1;
  OverlayRig rig(4, /*loss=*/0.0, config);
  line_filter(rig.network, rig.collector_node);
  rig.start_and_run(Duration::hours(1));

  // TTL 1: flood reaches device 0 (ttl 1) and device 1 (ttl 0, no
  // re-flood); 2 and 3 stay unreached and resolve through the timeout
  // path as unreachable sessions.
  const auto result = rig.collector->run_round(6, Duration::seconds(10));
  EXPECT_EQ(result.reports_received, 2u);
  EXPECT_FALSE(result.statuses[2].attested);
  EXPECT_GT(rig.collector->service().stats().unreachable_sessions, 0u);
}

TEST(Overlay, PartitionedSwarmPartialCoverage) {
  OverlayRig rig(6);
  const net::NodeId c = rig.collector_node;
  // Devices 0-2 connected to the collector side; 3-5 isolated island.
  rig.network.set_link_filter([c](net::NodeId a, net::NodeId b) {
    const auto side = [&](net::NodeId x) { return x == c || x <= 2; };
    return side(a) == side(b);
  });
  rig.start_and_run(Duration::hours(1));

  const auto result = rig.collector->run_round(6, Duration::seconds(10));
  EXPECT_EQ(result.reports_received, 3u);
  EXPECT_TRUE(result.statuses[0].attested);
  EXPECT_FALSE(result.statuses[4].attested);
}

TEST(Overlay, InfectedDeviceFlaggedThroughRelayPath) {
  OverlayRig rig(5);
  rig.start_and_run(Duration::minutes(15));
  // Persistent malware on device 3, then let a measurement catch it.
  rig.provers[3]->memory().write(rig.provers[3]->attested_region(), 7,
                                 bytes_of("EVIL"), false);
  rig.queue.run_until(rig.queue.now() + Duration::minutes(20));

  const auto result = rig.collector->run_round(4, Duration::seconds(10));
  EXPECT_TRUE(result.statuses[3].attested);
  EXPECT_FALSE(result.statuses[3].healthy);
  EXPECT_TRUE(result.statuses[1].healthy);
}

TEST(Overlay, DuplicateReportsCountedOnce) {
  // In a dense topology the same report can arrive over several paths;
  // the transport dedups per (flood, origin), so the collector counts
  // each device exactly once.
  OverlayRig rig(8);
  rig.start_and_run(Duration::hours(1));
  const auto result = rig.collector->run_round(6, Duration::seconds(10));
  EXPECT_EQ(result.reports_received, 8u);
  EXPECT_EQ(result.statuses.size(), 8u);
  const auto& stats = rig.collector->transport().stats();
  EXPECT_EQ(stats.reports_received, 8u);
}

TEST(Overlay, RoundsAreIndependent) {
  OverlayRig rig(4);
  rig.start_and_run(Duration::hours(1));
  const auto r1 = rig.collector->run_round(6, Duration::seconds(10));
  rig.queue.run_until(rig.queue.now() + Duration::minutes(30));
  const auto r2 = rig.collector->run_round(6, Duration::seconds(10));
  EXPECT_EQ(r1.reports_received, 4u);
  EXPECT_EQ(r2.reports_received, 4u);
}

TEST(Overlay, LossyNetworkDegradesGracefully) {
  OverlayRig rig(6, /*loss=*/0.2);
  rig.start_and_run(Duration::hours(1));
  const auto result = rig.collector->run_round(6, Duration::seconds(10));
  // Dense flooding provides path diversity, and the service's retries
  // (each a fresh flood) re-ask anyone whose report was lost.
  EXPECT_GE(result.reports_received, 3u);
}

TEST(Overlay, MalformedFramesCountedNotServed) {
  OverlayRig rig(2);
  rig.start_and_run(Duration::minutes(30));

  // Truncated CollectFlood: the relay tag with a short body.
  Bytes bad_flood = {static_cast<uint8_t>(RelayMsg::kCollectFlood), 1, 2};
  // Truncated RelayReport aimed at the collector.
  Bytes bad_report = {static_cast<uint8_t>(RelayMsg::kRelayReport), 9};
  // Not even a known overlay tag.
  Bytes bad_tag = {0x7f, 0x00};

  rig.network.send(rig.collector_node, 0, bad_flood);
  rig.network.send(rig.collector_node, 0, bad_tag);
  rig.network.send(0, rig.collector_node, bad_report);
  rig.network.send(0, rig.collector_node, bad_tag);
  // Bounded advance: the provers' measurement timers re-arm forever, so
  // run_until, never run().
  rig.queue.run_until(rig.queue.now() + Duration::seconds(1));

  EXPECT_EQ(rig.nodes[0]->stats().malformed_frames, 2u);
  EXPECT_EQ(rig.collector->transport().stats().malformed_frames, 2u);
  EXPECT_EQ(rig.nodes[0]->stats().requests_served, 0u)
      << "truncated floods must not reach the prover";

  // The overlay still works afterwards.
  const auto result = rig.collector->run_round(2, Duration::seconds(10));
  EXPECT_EQ(result.reports_received, 2u);
}

TEST(Overlay, BoundedRelayQueueDropsUnderConvergence) {
  // Star: collector -- hub(0) -- {1..5}. Every leaf report converges on
  // the hub within one latency, so a depth-2 store-and-forward buffer
  // must drop; the default depth in a second rig must not.
  RelayCollectorConfig config;
  config.max_retries = 0;  // no re-asks: observe the raw first flood
  RelayNodeConfig node_config;
  node_config.queue_depth = 2;
  node_config.forward_spacing = Duration::millis(50);

  const auto star = [](net::Network& network, net::NodeId c) {
    network.set_link_filter([c](net::NodeId a, net::NodeId b) {
      if (a > b) std::swap(a, b);
      if (b == c) return a == 0;       // collector hears only the hub
      return a == 0;                   // hub hears every leaf
    });
  };

  OverlayRig tight(6, 0.0, config, node_config);
  star(tight.network, tight.collector_node);
  tight.start_and_run(Duration::hours(1));
  const auto r1 = tight.collector->run_round(6, Duration::seconds(30));
  EXPECT_GT(tight.nodes[0]->stats().reports_dropped, 0u);
  EXPECT_LT(r1.reports_received, 6u);
  EXPECT_GE(r1.reports_received, 1u);

  RelayNodeConfig roomy = node_config;
  roomy.queue_depth = 16;
  OverlayRig wide(6, 0.0, config, roomy);
  star(wide.network, wide.collector_node);
  wide.start_and_run(Duration::hours(1));
  const auto r2 = wide.collector->run_round(6, Duration::seconds(30));
  EXPECT_EQ(wide.total(&RelayNode::Stats::reports_dropped), 0u);
  EXPECT_EQ(r2.reports_received, 6u);
}

TEST(Overlay, RouteRepairWhenParentChurnsMidRound) {
  // Diamond: collector -- {0, 1}, {0, 1} -- 2. Device 2 adopts 0 as its
  // parent (first flood arrival), 1 as the alternate. The 0--2 link then
  // breaks BEFORE 2's report leaves its queue: the link probe must swap
  // the uplink to 1 and the report still arrives.
  RelayNodeConfig node_config;
  node_config.forward_spacing = Duration::millis(50);  // window for churn
  OverlayRig rig(3, 0.0, {}, node_config);

  auto broken = std::make_shared<bool>(false);
  const net::NodeId c = rig.collector_node;
  const auto connected = [c, broken](net::NodeId a, net::NodeId b) {
    if (a > b) std::swap(a, b);
    if (b == c) return a <= 1;                    // collector -- {0,1}
    if (a == 0 && b == 2) return !*broken;        // churning edge
    if (a == 1 && b == 2) return true;
    return a <= 1 && b <= 1 ? false : false;      // 0 -- 1 not linked
  };
  rig.network.set_link_filter(connected);
  for (auto& node : rig.nodes) node->set_link_probe(connected);
  rig.start_and_run(Duration::hours(1));

  // Break the parent edge shortly after the flood passes but before the
  // 50 ms forward spacing elapses.
  rig.queue.schedule_after(Duration::millis(20), [broken] {
    *broken = true;
  });
  const auto result = rig.collector->run_round(6, Duration::seconds(10));

  EXPECT_TRUE(result.statuses[2].attested)
      << "report must survive the mid-round parent churn";
  EXPECT_EQ(rig.nodes[2]->stats().route_repairs, 1u);
}

// --- Scoped retries ----------------------------------------------------------

TEST(Overlay, ScopedRetryRidesCachedRouteAndBurnsIt) {
  RelayCollectorConfig config;
  config.transport.scoped_retries = true;
  OverlayRig rig(4, /*loss=*/0.0, config);
  line_filter(rig.network, rig.collector_node);
  rig.start_and_run(Duration::hours(1));

  const auto round = rig.collector->run_round(6, Duration::seconds(10));
  ASSERT_EQ(round.reports_received, 4u);
  RelayTransport& transport = rig.collector->transport();

  // Device 3's report crossed 2, 1 and 0: the recorded path vouches for
  // a route to every one of them, not just the origin.
  for (net::NodeId node = 0; node < 4; ++node) {
    EXPECT_TRUE(transport.has_fresh_route(node)) << "node " << node;
  }

  // A retry-shaped send (the service hints retries before sending)
  // unicasts down the cached parent path -- no flood.
  const uint64_t floods_before = transport.stats().targeted_floods;
  const Bytes body = attest::CollectRequest{2}.serialize();
  transport.hint_retry_wave();
  transport.send(2, attest::MsgType::kCollectRequest, body);
  EXPECT_EQ(transport.stats().scoped_sent, 1u);
  EXPECT_EQ(transport.stats().targeted_floods, floods_before);

  // The route is burned until a fresh report re-vouches for it: a second
  // retry before any response must fall back to a targeted flood.
  EXPECT_FALSE(transport.has_fresh_route(2));
  transport.hint_retry_wave();
  transport.send(2, attest::MsgType::kCollectRequest, body);
  EXPECT_EQ(transport.stats().scoped_sent, 1u);
  EXPECT_EQ(transport.stats().scoped_fallbacks, 1u);
  EXPECT_EQ(transport.stats().targeted_floods, floods_before + 1);

  // The scoped unicast still produces a served response that climbs the
  // same hops back up (and re-vouches for the route).
  const uint64_t reports_before = transport.stats().reports_received;
  rig.queue.run_until(rig.queue.now() + Duration::seconds(1));
  EXPECT_GT(transport.stats().reports_received, reports_before);
  EXPECT_TRUE(transport.has_fresh_route(2));
}

TEST(Overlay, ScopedRetryFallsBackToFloodOnStaleRoute) {
  RelayCollectorConfig config;
  config.transport.scoped_retries = true;
  config.transport.route_ttl = Duration::seconds(30);
  OverlayRig rig(4, /*loss=*/0.0, config);
  line_filter(rig.network, rig.collector_node);
  rig.start_and_run(Duration::hours(1));

  rig.collector->run_round(6, Duration::seconds(10));
  RelayTransport& transport = rig.collector->transport();
  ASSERT_TRUE(transport.has_fresh_route(3));

  // Let the route age past its TTL: at vehicle speeds yesterday's path
  // is fiction, so the retry must re-discover via a full flood.
  rig.queue.run_until(rig.queue.now() + Duration::minutes(5));
  EXPECT_FALSE(transport.has_fresh_route(3));
  const Bytes body = attest::CollectRequest{2}.serialize();
  transport.hint_retry_wave();
  transport.send(3, attest::MsgType::kCollectRequest, body);
  EXPECT_EQ(transport.stats().scoped_sent, 0u);
  EXPECT_EQ(transport.stats().scoped_fallbacks, 1u);
  EXPECT_EQ(transport.stats().targeted_floods, 1u);
}

TEST(Overlay, BrokenScopedHopNaksAndEvictsRoute) {
  RelayCollectorConfig config;
  config.transport.scoped_retries = true;
  OverlayRig rig(4, /*loss=*/0.0, config);

  // Line collector -- 0 -- 1 -- 2 -- 3 whose 1--2 edge we can sever.
  auto broken = std::make_shared<bool>(false);
  const net::NodeId c = rig.collector_node;
  const auto connected = [c, broken](net::NodeId a, net::NodeId b) {
    if (a > b) std::swap(a, b);
    if (b == c) return a == 0;
    if (a == 1 && b == 2) return !*broken;
    return b - a == 1;
  };
  rig.network.set_link_filter(connected);
  for (auto& node : rig.nodes) node->set_link_probe(connected);
  rig.start_and_run(Duration::hours(1));

  rig.collector->run_round(6, Duration::seconds(10));
  RelayTransport& transport = rig.collector->transport();
  ASSERT_TRUE(transport.has_fresh_route(3));

  // The cached route to 3 runs 0 -> 1 -> 2 -> 3; break it mid-path. The
  // hop that notices (1, probing toward 2) must NAK instead of
  // transmitting into the void, and the NAK must evict the route.
  *broken = true;
  const Bytes body = attest::CollectRequest{2}.serialize();
  transport.hint_retry_wave();
  transport.send(3, attest::MsgType::kCollectRequest, body);
  rig.queue.run_until(rig.queue.now() + Duration::seconds(1));

  EXPECT_EQ(transport.stats().scoped_sent, 1u);
  EXPECT_EQ(transport.stats().naks_received, 1u);
  EXPECT_EQ(rig.nodes[1]->stats().naks_sent, 1u);
  EXPECT_EQ(rig.nodes[0]->stats().naks_forwarded, 1u);
  EXPECT_FALSE(transport.has_fresh_route(3))
      << "a NAKed route must not be offered again";
  // The next retry re-floods (and re-discovery would route around the
  // break if the topology allowed it).
  transport.hint_retry_wave();
  transport.send(3, attest::MsgType::kCollectRequest, body);
  EXPECT_EQ(transport.stats().targeted_floods, 1u);
}

TEST(Overlay, MobileSwarmMomentaryReachability) {
  // The §6 shape end to end: a random-waypoint swarm whose instantaneous
  // topology gates every hop. Collection harvests a (deterministic, seed-
  // fixed) subset each round without any standing tree.
  OverlayRig rig(12);
  swarm::MobilityConfig mc;
  mc.devices = 12;
  mc.field_size = 220.0;
  mc.radio_range = 60.0;
  mc.seed = 5;
  auto mobility = std::make_shared<swarm::RandomWaypointMobility>(mc);
  auto& queue = rig.queue;
  const net::NodeId c = rig.collector_node;
  rig.network.set_link_filter([mobility, &queue, c](net::NodeId a,
                                                    net::NodeId b) {
    const auto dev = [c](net::NodeId n) {
      return n == c ? 0u : static_cast<swarm::DeviceId>(n);
    };
    if (dev(a) == dev(b)) return true;  // collector rides on device 0
    return mobility->connected(dev(a), dev(b), queue.now());
  });
  rig.start_and_run(Duration::hours(1));

  const auto r1 = rig.collector->run_round(6, Duration::seconds(10));
  EXPECT_GE(r1.reports_received, 1u);
  EXPECT_LE(r1.reports_received, 12u);
  // Device 0 is the collector's co-located uplink: always reachable.
  EXPECT_TRUE(r1.statuses[0].attested);
}

}  // namespace
}  // namespace erasmus::overlay
