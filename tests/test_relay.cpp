// Tests for the packet-level swarm relay protocol (LISA-alpha-style
// collection of self-measurements over the simulated network, §6).
#include <gtest/gtest.h>

#include "crypto/hkdf.h"
#include "swarm/mobility.h"
#include "swarm/relay.h"

namespace erasmus::swarm {
namespace {

using sim::Duration;
using sim::Time;

constexpr size_t kRecordBytes = 1 + 8 + 32 + 32;

Bytes device_key(uint32_t id) {
  Bytes salt(4);
  salt[0] = static_cast<uint8_t>(id);
  return crypto::hkdf(bytes_of("relay-test-master"), salt,
                      bytes_of("erasmus/device-key"), 32);
}

// A full packet-level swarm: n provers with relay agents + one collector.
struct RelayRig {
  sim::EventQueue queue;
  net::Network network;
  std::vector<std::unique_ptr<hw::SmartPlusArch>> archs;
  std::vector<std::unique_ptr<attest::Prover>> provers;
  std::vector<std::unique_ptr<attest::Verifier>> verifiers;
  std::vector<std::unique_ptr<RelayAgent>> agents;
  net::NodeId collector_node = 0;
  std::unique_ptr<RelayCollector> collector;

  explicit RelayRig(size_t n, double loss = 0.0)
      : network(queue, Duration::millis(2), loss, /*seed=*/7) {
    std::vector<attest::Verifier*> verifier_ptrs;
    for (uint32_t id = 0; id < n; ++id) {
      auto arch = std::make_unique<hw::SmartPlusArch>(
          device_key(id), 4096, 1024, 16 * kRecordBytes);
      auto prover = std::make_unique<attest::Prover>(
          queue, *arch, arch->app_region(), arch->store_region(),
          std::make_unique<attest::RegularScheduler>(Duration::minutes(10)),
          attest::ProverConfig{});
      attest::VerifierConfig vc;
      vc.key = device_key(id);
      vc.golden_digest = crypto::Hash::digest(
          crypto::HashAlgo::kSha256,
          arch->memory().view(arch->app_region(), true));
      auto verifier = std::make_unique<attest::Verifier>(std::move(vc));
      verifier_ptrs.push_back(verifier.get());

      const net::NodeId node = network.add_node({});
      auto agent = std::make_unique<RelayAgent>(queue, network, node, id,
                                                *prover, n);
      archs.push_back(std::move(arch));
      provers.push_back(std::move(prover));
      verifiers.push_back(std::move(verifier));
      agents.push_back(std::move(agent));
    }
    collector_node = network.add_node({});
    collector = std::make_unique<RelayCollector>(
        queue, network, collector_node, verifier_ptrs, n);
  }

  void start_and_run(Duration d) {
    for (auto& p : provers) p->start();
    queue.run_until(queue.now() + d);
  }
};

TEST(RelayWire, FloodAndReportRoundTrip) {
  CollectFlood flood{42, 6, 3};
  const auto f = CollectFlood::deserialize(flood.serialize());
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->round, 42u);
  EXPECT_EQ(f->k, 6u);
  EXPECT_EQ(f->ttl, 3u);

  RelayReport report{42, 7, bytes_of("payload")};
  const auto r = RelayReport::deserialize(report.serialize());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->device, 7u);
  EXPECT_EQ(r->collect_response, bytes_of("payload"));

  EXPECT_FALSE(CollectFlood::deserialize(Bytes{1, 2}).has_value());
  EXPECT_FALSE(RelayReport::deserialize(Bytes{1}).has_value());
}

TEST(Relay, FullyConnectedSwarmAllAttested) {
  RelayRig rig(6);  // no link filter: everyone hears everyone
  rig.start_and_run(Duration::hours(1));

  const auto result = rig.collector->run_round(6, Duration::seconds(10));
  EXPECT_EQ(result.reports_received, 6u);
  for (const auto& s : result.statuses) {
    EXPECT_TRUE(s.attested) << "device " << s.device;
    EXPECT_TRUE(s.healthy) << "device " << s.device;
  }
  EXPECT_GT(result.elapsed.ns(), 0u);
}

TEST(Relay, MultiHopLineTopology) {
  // collector -- 0 -- 1 -- 2 -- 3 (line): reports must hop back through
  // the parents, exercising the relay path.
  RelayRig rig(4);
  const net::NodeId c = rig.collector_node;
  rig.network.set_link_filter([c](net::NodeId a, net::NodeId b) {
    const auto adjacent = [&](net::NodeId x, net::NodeId y) {
      if (x > y) std::swap(x, y);
      if (y == c) return x == 0;                 // collector only hears dev 0
      return y - x == 1;                          // chain 0-1-2-3
    };
    return adjacent(a, b);
  });
  rig.start_and_run(Duration::hours(1));

  const auto result = rig.collector->run_round(6, Duration::seconds(10),
                                               /*ttl=*/8);
  EXPECT_EQ(result.reports_received, 4u)
      << "all devices reachable through multi-hop relay";
  size_t relayed = 0;
  for (const auto& agent : rig.agents) relayed += agent->stats().reports_relayed;
  EXPECT_GT(relayed, 0u) << "inner devices must have relayed reports";
}

TEST(Relay, TtlBoundsFloodDepth) {
  RelayRig rig(4);
  const net::NodeId c = rig.collector_node;
  rig.network.set_link_filter([c](net::NodeId a, net::NodeId b) {
    const auto adjacent = [&](net::NodeId x, net::NodeId y) {
      if (x > y) std::swap(x, y);
      if (y == c) return x == 0;
      return y - x == 1;
    };
    return adjacent(a, b);
  });
  rig.start_and_run(Duration::hours(1));

  // TTL 1: flood reaches device 0 (ttl 1) and device 1 (ttl 0, no re-flood).
  const auto result = rig.collector->run_round(6, Duration::seconds(10),
                                               /*ttl=*/1);
  EXPECT_EQ(result.reports_received, 2u);
}

TEST(Relay, PartitionedSwarmPartialCoverage) {
  RelayRig rig(6);
  const net::NodeId c = rig.collector_node;
  // Devices 0-2 connected to the collector side; 3-5 isolated island.
  rig.network.set_link_filter([c](net::NodeId a, net::NodeId b) {
    const auto side = [&](net::NodeId x) { return x == c || x <= 2; };
    return side(a) == side(b);
  });
  rig.start_and_run(Duration::hours(1));

  const auto result = rig.collector->run_round(6, Duration::seconds(10));
  EXPECT_EQ(result.reports_received, 3u);
  EXPECT_TRUE(result.statuses[0].attested);
  EXPECT_FALSE(result.statuses[4].attested);
}

TEST(Relay, InfectedDeviceFlaggedThroughRelayPath) {
  RelayRig rig(5);
  rig.start_and_run(Duration::minutes(15));
  // Persistent malware on device 3, then let a measurement catch it.
  rig.provers[3]->memory().write(rig.provers[3]->attested_region(), 7,
                                 bytes_of("EVIL"), false);
  rig.queue.run_until(rig.queue.now() + Duration::minutes(20));

  const auto result = rig.collector->run_round(4, Duration::seconds(10));
  EXPECT_TRUE(result.statuses[3].attested);
  EXPECT_FALSE(result.statuses[3].healthy);
  EXPECT_TRUE(result.statuses[1].healthy);
}

TEST(Relay, DuplicateReportsIgnored) {
  // In a dense topology the same report arrives via multiple paths; the
  // collector must count each device once.
  RelayRig rig(8);
  rig.start_and_run(Duration::hours(1));
  const auto result = rig.collector->run_round(6, Duration::seconds(10));
  EXPECT_EQ(result.reports_received, 8u);
  EXPECT_EQ(result.statuses.size(), 8u);
}

TEST(Relay, RoundsAreIndependent) {
  RelayRig rig(4);
  rig.start_and_run(Duration::hours(1));
  const auto r1 = rig.collector->run_round(6, Duration::seconds(10));
  rig.queue.run_until(rig.queue.now() + Duration::minutes(30));
  const auto r2 = rig.collector->run_round(6, Duration::seconds(10));
  EXPECT_EQ(r1.reports_received, 4u);
  EXPECT_EQ(r2.reports_received, 4u);
}

TEST(Relay, LossyNetworkDegradesGracefully) {
  RelayRig rig(6, /*loss=*/0.2);
  rig.start_and_run(Duration::hours(1));
  const auto result = rig.collector->run_round(6, Duration::seconds(10));
  // Dense flooding provides path diversity; most devices still report.
  EXPECT_GE(result.reports_received, 3u);
}

}  // namespace
}  // namespace erasmus::swarm
