// Tests for the swarm layer (§6): topology, mobility, the on-demand vs.
// ERASMUS-collection protocol comparison, staggered scheduling, QoSA and
// the full-device Fleet.
#include <gtest/gtest.h>

#include "swarm/fleet.h"
#include "swarm/mobility.h"
#include "swarm/protocols.h"
#include "swarm/qosa.h"
#include "swarm/topology.h"

namespace erasmus::swarm {
namespace {

using sim::Duration;
using sim::Time;

TEST(Topology, EdgesAreUndirected) {
  Topology t(4);
  t.add_edge(0, 1);
  EXPECT_TRUE(t.connected(0, 1));
  EXPECT_TRUE(t.connected(1, 0));
  EXPECT_FALSE(t.connected(0, 2));
  t.remove_edge(1, 0);
  EXPECT_FALSE(t.connected(0, 1));
}

TEST(Topology, SelfLoopsIgnoredAndBoundsChecked) {
  Topology t(3);
  t.add_edge(1, 1);
  EXPECT_FALSE(t.connected(1, 1));
  EXPECT_THROW(t.add_edge(0, 3), std::out_of_range);
  EXPECT_THROW(t.connected(3, 0), std::out_of_range);
}

TEST(Topology, NeighborsAndEdgeCount) {
  Topology t(5);
  t.add_edge(0, 1);
  t.add_edge(0, 2);
  t.add_edge(3, 4);
  EXPECT_EQ(t.neighbors(0), (std::vector<DeviceId>{1, 2}));
  EXPECT_EQ(t.edge_count(), 3u);
}

TEST(Topology, BfsTreeOnLine) {
  Topology t(4);
  t.add_edge(0, 1);
  t.add_edge(1, 2);
  t.add_edge(2, 3);
  const auto tree = t.bfs_tree(0);
  EXPECT_EQ(tree.reached, 4u);
  EXPECT_EQ(tree.max_depth(), 3u);
  EXPECT_EQ(*tree.parent[3], 2u);
  EXPECT_EQ(tree.children(1), (std::vector<DeviceId>{2}));
}

TEST(Topology, BfsTreeDisconnected) {
  Topology t(4);
  t.add_edge(0, 1);
  const auto tree = t.bfs_tree(0);
  EXPECT_EQ(tree.reached, 2u);
  EXPECT_FALSE(tree.parent[2].has_value());
  EXPECT_EQ(t.reachable_from(0), 2u);
  EXPECT_EQ(t.reachable_from(2), 1u);
}

TEST(Topology, SpanningTreeIgnoresUnreachableNodes) {
  // children()/max_depth() must skip nodes BFS never reached: an
  // unreachable node's depth slot is 0, which must not alias "child of
  // the root" or shrink/grow the depth.
  Topology t(6);
  t.add_edge(0, 1);
  t.add_edge(1, 2);
  // 3, 4, 5 form a separate island.
  t.add_edge(3, 4);
  t.add_edge(4, 5);
  const auto tree = t.bfs_tree(0);
  EXPECT_EQ(tree.reached, 3u);
  EXPECT_EQ(tree.max_depth(), 2u) << "island depths must not count";
  EXPECT_EQ(tree.children(0), (std::vector<DeviceId>{1}))
      << "unreachable nodes are nobody's children";
  EXPECT_EQ(tree.children(3), std::vector<DeviceId>{})
      << "an unreachable node has no children in the tree";
  for (DeviceId island : {3u, 4u, 5u}) {
    EXPECT_FALSE(tree.parent[island].has_value());
  }
}

TEST(Topology, SpanningTreeSingleNodeGraph) {
  Topology t(1);
  const auto tree = t.bfs_tree(0);
  EXPECT_EQ(tree.reached, 1u);
  EXPECT_EQ(tree.max_depth(), 0u);
  ASSERT_TRUE(tree.parent[0].has_value());
  EXPECT_EQ(*tree.parent[0], 0u) << "root is its own parent";
  EXPECT_EQ(tree.children(0), std::vector<DeviceId>{})
      << "the root must not list itself as a child";
  EXPECT_EQ(t.reachable_from(0), 1u);
  EXPECT_EQ(t.edge_count(), 0u);
}

TEST(Topology, EdgeRemovalMidTreeDropsSubtree) {
  // A tree built before churn keeps its (now stale) parents; rebuilding
  // after removing a tree edge loses exactly the severed subtree -- the
  // on-demand-protocol failure mode the overlay exists to avoid.
  Topology t(5);
  t.add_edge(0, 1);
  t.add_edge(1, 2);
  t.add_edge(2, 3);
  t.add_edge(3, 4);
  const auto before = t.bfs_tree(0);
  EXPECT_EQ(before.reached, 5u);
  EXPECT_EQ(before.max_depth(), 4u);

  t.remove_edge(1, 2);
  // The old snapshot is unchanged (it is a value, not a view)...
  EXPECT_EQ(*before.parent[2], 1u);
  // ...but a rebuild sees the severed subtree vanish.
  const auto after = t.bfs_tree(0);
  EXPECT_EQ(after.reached, 2u);
  EXPECT_EQ(after.max_depth(), 1u);
  EXPECT_FALSE(after.parent[2].has_value());
  EXPECT_FALSE(after.parent[4].has_value());
  EXPECT_EQ(after.children(1), std::vector<DeviceId>{});

  // Removing an already-absent edge is a no-op, not corruption.
  t.remove_edge(1, 2);
  EXPECT_EQ(t.bfs_tree(0).reached, 2u);
}

TEST(Mobility, DeterministicPerSeed) {
  MobilityConfig cfg;
  cfg.devices = 5;
  cfg.seed = 9;
  RandomWaypointMobility a(cfg), b(cfg);
  const Time t = Time::zero() + Duration::minutes(30);
  for (DeviceId v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(a.position(v, t).x, b.position(v, t).x);
    EXPECT_DOUBLE_EQ(a.position(v, t).y, b.position(v, t).y);
  }
}

TEST(Mobility, PositionsStayInField) {
  MobilityConfig cfg;
  cfg.devices = 8;
  cfg.field_size = 50.0;
  RandomWaypointMobility m(cfg);
  for (int minutes = 0; minutes < 120; minutes += 10) {
    for (DeviceId v = 0; v < 8; ++v) {
      const Point p = m.position(v, Time::zero() + Duration::minutes(minutes));
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 50.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 50.0);
    }
  }
}

TEST(Mobility, StationaryWhenSpeedZero) {
  MobilityConfig cfg;
  cfg.devices = 3;
  cfg.speed_min = 0.0;
  cfg.speed_max = 0.0;
  RandomWaypointMobility m(cfg);
  const Point p0 = m.position(1, Time::zero());
  const Point p1 = m.position(1, Time::zero() + Duration::hours(5));
  EXPECT_DOUBLE_EQ(p0.x, p1.x);
  EXPECT_DOUBLE_EQ(p0.y, p1.y);
}

TEST(Mobility, OutOfOrderQueriesConsistent) {
  MobilityConfig cfg;
  cfg.devices = 2;
  RandomWaypointMobility m(cfg);
  const Point late = m.position(0, Time::zero() + Duration::minutes(60));
  const Point early = m.position(0, Time::zero() + Duration::minutes(10));
  const Point late_again = m.position(0, Time::zero() + Duration::minutes(60));
  EXPECT_DOUBLE_EQ(late.x, late_again.x);
  EXPECT_DOUBLE_EQ(late.y, late_again.y);
  (void)early;
}

TEST(Mobility, SnapshotMatchesPairwiseConnectivity) {
  MobilityConfig cfg;
  cfg.devices = 6;
  cfg.radio_range = 40.0;
  RandomWaypointMobility m(cfg);
  const Time t = Time::zero() + Duration::minutes(7);
  const Topology topo = m.snapshot(t);
  for (DeviceId a = 0; a < 6; ++a) {
    for (DeviceId b = a + 1; b < 6; ++b) {
      EXPECT_EQ(topo.connected(a, b), m.connected(a, b, t));
    }
  }
}

TEST(Protocols, StaticSwarmBothProtocolsReachEveryone) {
  MobilityConfig cfg;
  cfg.devices = 12;
  cfg.field_size = 60.0;
  cfg.radio_range = 30.0;  // dense enough to be connected
  cfg.speed_min = 0.0;
  cfg.speed_max = 0.0;     // static topology
  cfg.seed = 3;
  RandomWaypointMobility m(cfg);
  const size_t reachable =
      m.snapshot(Time::zero()).reachable_from(0);

  SwarmProtocolConfig pc;
  const auto od = run_ondemand_round(m, Time::zero(), 0, pc);
  const auto er = run_erasmus_collection_round(m, Time::zero(), 0, pc);
  EXPECT_EQ(od.attested, reachable);
  EXPECT_EQ(er.attested, reachable);
}

TEST(Protocols, ErasmusCollectionOrdersOfMagnitudeFaster) {
  MobilityConfig cfg;
  cfg.devices = 12;
  cfg.speed_min = 0.0;
  cfg.speed_max = 0.0;
  RandomWaypointMobility m(cfg);
  SwarmProtocolConfig pc;
  pc.hop_latency = Duration::millis(1);
  const auto od = run_ondemand_round(m, Time::zero(), 0, pc);
  const auto er = run_erasmus_collection_round(m, Time::zero(), 0, pc);
  ASSERT_GT(od.attested, 1u);
  EXPECT_GT(od.duration.ns(), er.duration.ns() * 10)
      << "on-demand pays per-device measurement time; collection does not";
  // The gap is the per-device measurement work (minus the tiny stored-
  // measurement read the collection round pays instead).
  EXPECT_GE((od.duration - er.duration).ns(),
            (pc.measurement_time - pc.collection_reply_time).ns());
}

TEST(Protocols, MobilityHurtsOnDemandMoreThanCollection) {
  MobilityConfig cfg;
  cfg.devices = 25;
  cfg.field_size = 120.0;
  cfg.radio_range = 40.0;
  cfg.speed_min = 8.0;   // fast swarm (vehicles/drones)
  cfg.speed_max = 15.0;
  SwarmProtocolConfig pc;
  pc.measurement_time = Duration::seconds(7);  // low-end device, Fig. 6

  double od_cov = 0, er_cov = 0;
  int rounds = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    MobilityConfig c = cfg;
    c.seed = seed;
    RandomWaypointMobility m(c);
    const Time t0 = Time::zero() + Duration::minutes(5);
    const auto od = run_ondemand_round(m, t0, 0, pc);
    const auto er = run_erasmus_collection_round(m, t0, 0, pc);
    od_cov += od.coverage();
    er_cov += er.coverage();
    ++rounds;
  }
  od_cov /= rounds;
  er_cov /= rounds;
  EXPECT_GT(er_cov, od_cov + 0.05)
      << "ERASMUS collection must tolerate mobility clearly better";
}

TEST(Protocols, StaggeredScheduleBoundsConcurrentBusy) {
  // §6: with ERASMUS it is trivial to ensure only a fraction of the swarm
  // measures at any time.
  const size_t aligned = max_concurrent_busy(
      20, Duration::minutes(10), Duration::seconds(7), /*staggered=*/false);
  const size_t staggered = max_concurrent_busy(
      20, Duration::minutes(10), Duration::seconds(7), /*staggered=*/true);
  EXPECT_EQ(aligned, 20u) << "aligned schedules all measure simultaneously";
  EXPECT_EQ(staggered, 1u) << "30 s stride >> 7 s measurement";
}

TEST(Protocols, StaggeringWithLongMeasurements) {
  // When the measurement takes longer than the stride, the bound is
  // ceil(measure / stride).
  const size_t busy = max_concurrent_busy(
      10, Duration::minutes(10), Duration::minutes(3), /*staggered=*/true);
  EXPECT_EQ(busy, 3u);
}

TEST(Qosa, LevelsCarryIncreasingInformation) {
  Topology topo(3);
  topo.add_edge(0, 1);
  std::vector<DeviceStatus> statuses = {
      {0, true, true}, {1, true, true}, {2, true, false}};

  const auto binary = make_report(QosaLevel::kBinary, statuses, topo);
  EXPECT_FALSE(binary.all_healthy);
  EXPECT_TRUE(binary.devices.empty());
  EXPECT_TRUE(binary.edges.empty());

  const auto list = make_report(QosaLevel::kList, statuses, topo);
  EXPECT_EQ(list.devices.size(), 3u);
  EXPECT_TRUE(list.edges.empty());

  const auto full = make_report(QosaLevel::kFull, statuses, topo);
  EXPECT_EQ(full.devices.size(), 3u);
  EXPECT_EQ(full.edges.size(), 1u);
}

TEST(Qosa, AllHealthyRequiresEveryDevice) {
  Topology topo(2);
  const auto good = make_report(
      QosaLevel::kBinary, {{0, true, true}, {1, true, true}}, topo);
  EXPECT_TRUE(good.all_healthy);
  const auto unattested = make_report(
      QosaLevel::kBinary, {{0, true, true}, {1, false, false}}, topo);
  EXPECT_FALSE(unattested.all_healthy);
  EXPECT_EQ(to_string(QosaLevel::kFull), "full");
}

DeviceSpec small_spec() {
  DeviceSpec spec;
  spec.tm = Duration::minutes(10);
  spec.app_ram_bytes = 512;
  return spec;
}

TEST(Fleet, StaggeredMeasurementsSpreadOverPeriod) {
  sim::EventQueue queue;
  Fleet fleet(queue, FleetPlan::uniform(5, /*key_seed=*/7, small_spec()));
  fleet.start();
  queue.run_until(Time::zero() + Duration::minutes(10));
  // Offsets are i*T_M/5: all five have measured exactly once after one T_M.
  for (DeviceId id = 0; id < 5; ++id) {
    EXPECT_EQ(fleet.prover(id).stats().measurements, 1u) << "device " << id;
  }
}

TEST(Fleet, CollectRoundVerifiesHealthyDevices) {
  sim::EventQueue queue;
  FleetPlan plan = FleetPlan::uniform(6, /*key_seed=*/7, small_spec());
  plan.mobility.field_size = 40.0;   // dense: likely fully connected
  plan.mobility.radio_range = 60.0;
  Fleet fleet(queue, plan);
  fleet.start();
  queue.run_until(Time::zero() + Duration::hours(1));

  const auto statuses = fleet.collect_round(/*root=*/0, /*k=*/6);
  ASSERT_EQ(statuses.size(), 6u);
  size_t attested = 0, healthy = 0;
  for (const auto& s : statuses) {
    attested += s.attested;
    healthy += s.healthy;
  }
  EXPECT_EQ(attested, 6u) << "radio range covers the whole field";
  EXPECT_EQ(healthy, 6u);
}

TEST(Fleet, InfectedDeviceFlaggedUnhealthy) {
  sim::EventQueue queue;
  FleetPlan plan = FleetPlan::uniform(4, /*key_seed=*/7, small_spec());
  plan.mobility.field_size = 30.0;
  plan.mobility.radio_range = 60.0;
  Fleet fleet(queue, plan);
  fleet.start();
  // Persistent malware on device 2.
  queue.schedule_at(Time::zero() + Duration::minutes(15), [&] {
    fleet.prover(2).memory().write(
        fleet.prover(2).attested_region(), 10, bytes_of("EVIL"), false);
  });
  queue.run_until(Time::zero() + Duration::hours(1));

  const auto statuses = fleet.collect_round(0, 6);
  EXPECT_TRUE(statuses[0].healthy);
  EXPECT_TRUE(statuses[1].healthy);
  EXPECT_FALSE(statuses[2].healthy);
  EXPECT_TRUE(statuses[3].healthy);
}

TEST(Fleet, PerDeviceKeysAreIndependent) {
  sim::EventQueue queue;
  Fleet fleet(queue, FleetPlan::uniform(3, /*key_seed=*/7, small_spec()));
  fleet.start();
  queue.run_until(Time::zero() + Duration::minutes(15));
  // Device 1's measurement must not verify under device 0's key.
  const auto m =
      fleet.prover(1).store().latest(fleet.prover(1).latest_index(), 1);
  ASSERT_EQ(m.size(), 1u);
  attest::CollectResponse cross;
  cross.measurements = m;
  const auto report = attest::verify_collection(fleet.directory().record(0),
                                                cross, queue.now());
  EXPECT_TRUE(report.tampering_detected)
      << "cross-device measurement must fail MAC verification";
}

}  // namespace
}  // namespace erasmus::swarm
