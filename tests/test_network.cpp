// Tests for the simulated datagram network: latency, loss, link filters,
// delivery statistics.
#include <gtest/gtest.h>

#include "net/network.h"

namespace erasmus::net {
namespace {

using sim::Duration;
using sim::EventQueue;
using sim::Time;

TEST(Network, DeliversAfterLatency) {
  EventQueue q;
  Network net(q, Duration::millis(7));
  std::optional<Time> delivered_at;
  const NodeId a = net.add_node({});
  const NodeId b = net.add_node(
      [&](const Datagram&) { delivered_at = q.now(); });
  q.schedule_at(Time(0), [&] { net.send(a, b, Bytes{1, 2, 3}); });
  q.run();
  ASSERT_TRUE(delivered_at.has_value());
  EXPECT_EQ(delivered_at->ns(), Duration::millis(7).ns());
}

TEST(Network, PayloadAndAddressingPreserved) {
  EventQueue q;
  Network net(q, Duration::millis(1));
  std::optional<Datagram> got;
  const NodeId a = net.add_node({});
  const NodeId b = net.add_node([&](const Datagram& d) { got = d; });
  net.send(a, b, Bytes{0xde, 0xad});
  q.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src, a);
  EXPECT_EQ(got->dst, b);
  EXPECT_EQ(got->payload, (Bytes{0xde, 0xad}));
}

TEST(Network, LossDropsApproximatelyTheConfiguredFraction) {
  EventQueue q;
  Network net(q, Duration::millis(1), /*loss=*/0.25, /*seed=*/11);
  size_t received = 0;
  const NodeId a = net.add_node({});
  const NodeId b = net.add_node([&](const Datagram&) { ++received; });
  const int kSent = 4000;
  for (int i = 0; i < kSent; ++i) net.send(a, b, Bytes{1});
  q.run();
  EXPECT_NEAR(static_cast<double>(received) / kSent, 0.75, 0.03);
  EXPECT_EQ(net.stats().sent, static_cast<uint64_t>(kSent));
  EXPECT_EQ(net.stats().delivered, received);
  EXPECT_EQ(net.stats().dropped_loss, kSent - received);
}

TEST(Network, LinkFilterEvaluatedAtSendTime) {
  EventQueue q;
  Network net(q, Duration::millis(1));
  size_t received = 0;
  const NodeId a = net.add_node({});
  const NodeId b = net.add_node([&](const Datagram&) { ++received; });
  bool connected = false;
  net.set_link_filter([&](NodeId, NodeId) { return connected; });

  net.send(a, b, Bytes{1});  // disconnected: dropped
  connected = true;
  net.send(a, b, Bytes{2});  // connected: delivered even if the link
  connected = false;         // breaks before the delivery event fires
  q.run();
  EXPECT_EQ(received, 1u);
  EXPECT_EQ(net.stats().dropped_disconnected, 1u);
}

TEST(Network, HandlerCanBeReplaced) {
  EventQueue q;
  Network net(q, Duration::millis(1));
  int first = 0, second = 0;
  const NodeId a = net.add_node({});
  const NodeId b = net.add_node([&](const Datagram&) { ++first; });
  net.send(a, b, Bytes{1});
  q.run();
  net.set_handler(b, [&](const Datagram&) { ++second; });
  net.send(a, b, Bytes{2});
  q.run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(Network, UnknownEndpointsRejected) {
  EventQueue q;
  Network net(q, Duration::millis(1));
  const NodeId a = net.add_node({});
  EXPECT_THROW(net.send(a, 99, Bytes{1}), std::out_of_range);
  EXPECT_THROW(net.send(99, a, Bytes{1}), std::out_of_range);
  EXPECT_THROW(net.set_handler(5, {}), std::out_of_range);
}

TEST(Network, NullHandlerDropsSilently) {
  EventQueue q;
  Network net(q, Duration::millis(1));
  const NodeId a = net.add_node({});
  const NodeId b = net.add_node({});  // no handler
  net.send(a, b, Bytes{1});
  EXPECT_NO_THROW(q.run());
  EXPECT_EQ(net.stats().delivered, 1u);
}

TEST(Network, PerDestinationStatsTrackEachNode) {
  EventQueue q;
  Network net(q, Duration::millis(1));
  const NodeId a = net.add_node({});
  const NodeId b = net.add_node([](const Datagram&) {});
  const NodeId c = net.add_node([](const Datagram&) {});
  for (int i = 0; i < 3; ++i) net.send(a, b, Bytes{1});
  for (int i = 0; i < 2; ++i) net.send(a, c, Bytes{2});
  q.run();

  EXPECT_EQ(net.node_stats(b).sent, 3u);
  EXPECT_EQ(net.node_stats(b).delivered, 3u);
  EXPECT_EQ(net.node_stats(c).sent, 2u);
  EXPECT_EQ(net.node_stats(c).delivered, 2u);
  EXPECT_EQ(net.node_stats(a).sent, 0u);
  EXPECT_EQ(net.stats().sent, 5u);
  EXPECT_THROW(net.node_stats(99), std::out_of_range);
}

TEST(Network, PerDestinationStatsSplitDropCauses) {
  EventQueue q;
  Network net(q, Duration::millis(1), /*loss=*/0.5, /*seed=*/3);
  const NodeId a = net.add_node({});
  const NodeId b = net.add_node([](const Datagram&) {});
  const NodeId c = net.add_node([](const Datagram&) {});
  net.set_link_filter([&](NodeId, NodeId dst) { return dst != c; });
  for (int i = 0; i < 200; ++i) net.send(a, b, Bytes{1});
  net.send(a, c, Bytes{2});
  q.run();

  const auto& to_b = net.node_stats(b);
  EXPECT_EQ(to_b.dropped_disconnected, 0u);
  EXPECT_GT(to_b.dropped_loss, 0u);
  EXPECT_EQ(to_b.delivered + to_b.dropped_loss, 200u);
  const auto& to_c = net.node_stats(c);
  EXPECT_EQ(to_c.dropped_disconnected, 1u);
  EXPECT_EQ(to_c.delivered, 0u);
}

TEST(Network, BroadcastReachesEveryDestinationInOrder) {
  EventQueue q;
  Network net(q, Duration::millis(2));
  std::vector<NodeId> order;
  const NodeId src = net.add_node({});
  const NodeId b = net.add_node([&](const Datagram& d) {
    order.push_back(d.dst);
    EXPECT_EQ(d.src, src);
    EXPECT_EQ(d.payload, (Bytes{0xaa, 0xbb}));
  });
  const NodeId c = net.add_node([&](const Datagram& d) {
    order.push_back(d.dst);
  });
  net.broadcast(src, {c, b}, Bytes{0xaa, 0xbb});
  q.run();

  EXPECT_EQ(order, (std::vector<NodeId>{c, b}))
      << "broadcast delivers in destination-list order";
  EXPECT_EQ(net.stats().sent, 2u);
  EXPECT_EQ(net.node_stats(b).delivered, 1u);
  EXPECT_EQ(net.node_stats(c).delivered, 1u);
}

TEST(Network, BroadcastDrawsLossPerDestination) {
  EventQueue q;
  Network net(q, Duration::millis(1), /*loss=*/0.25, /*seed=*/11);
  size_t received = 0;
  const NodeId src = net.add_node({});
  std::vector<NodeId> dsts;
  for (int i = 0; i < 40; ++i) {
    dsts.push_back(net.add_node([&](const Datagram&) { ++received; }));
  }
  for (int round = 0; round < 100; ++round) {
    net.broadcast(src, dsts, Bytes{1});
  }
  q.run();
  // Independent per-destination draws: ~75% of 4000 get through.
  EXPECT_NEAR(static_cast<double>(received) / 4000.0, 0.75, 0.03);
}

TEST(Network, InFlightOrderPreservedPerLink) {
  EventQueue q;
  Network net(q, Duration::millis(3));
  std::vector<uint8_t> order;
  const NodeId a = net.add_node({});
  const NodeId b = net.add_node(
      [&](const Datagram& d) { order.push_back(d.payload[0]); });
  for (uint8_t i = 0; i < 5; ++i) net.send(a, b, Bytes{i});
  q.run();
  EXPECT_EQ(order, (std::vector<uint8_t>{0, 1, 2, 3, 4}))
      << "same-latency datagrams keep FIFO order";
}

}  // namespace
}  // namespace erasmus::net
