#!/usr/bin/env python3
"""Digest an erasmus flight-recorder trace (Chrome trace-event JSON or
JSONL) into a terminal summary.

Usage: trace_summary.py TRACE [--top N]

Reports the sim-time range, per-category event counts, the most frequent
instant events, and span statistics (count / total / mean / max sim
duration) per span name -- the quick look before opening the trace in
Perfetto. The input format is auto-detected: a `{"traceEvents": ...}`
document is parsed as Chrome trace-event JSON (as written by
`erasmus_run run ... --trace=trace.json`), anything else as
one-object-per-line JSONL (`--trace=trace.jsonl`).
"""

import argparse
import json
import sys
from collections import Counter, defaultdict


def parse_chrome(doc):
    """Yields (ts_us, cat, phase, name, tid, args) from a Chrome trace doc."""
    for e in doc.get("traceEvents", []):
        if e.get("ph") == "M":
            continue  # metadata (thread names)
        yield (float(e.get("ts", 0.0)), e.get("cat", "?"), e.get("ph", "i"),
               e.get("name", "?"), e.get("tid", 0), e.get("args", {}))


def parse_jsonl(lines):
    """Yields (ts_us, cat, phase, name, tid, args) from JSONL lines."""
    kinds = {"span_begin": "B", "span_end": "E", "instant": "i"}
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            e = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"error: line {lineno} is not valid JSON: {exc}")
        actor = e.get("actor", "coordinator")
        tid = 0 if actor == "coordinator" else int(actor) + 1
        yield (float(e.get("at_ns", 0)) / 1e3, e.get("sub", "?"),
               kinds.get(e.get("kind"), "i"), e.get("name", "?"), tid,
               e.get("args", {}))


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in text[:4096]:
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"error: {path} is not valid JSON: {exc}")
        events = list(parse_chrome(doc))
        dropped = doc.get("otherData", {}).get("dropped_events")
        return events, dropped
    return list(parse_jsonl(text.splitlines())), None


def fmt_us(us):
    """Compact sim-duration rendering from microseconds."""
    if us >= 60e6:
        return f"{us / 60e6:.1f}min"
    if us >= 1e6:
        return f"{us / 1e6:.2f}s"
    if us >= 1e3:
        return f"{us / 1e3:.2f}ms"
    return f"{us:.1f}us"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    parser.add_argument("--top", type=int, default=10,
                        help="rows per ranking (default 10)")
    args = parser.parse_args()

    events, dropped = load_events(args.trace)
    if not events:
        print(f"{args.trace}: no events")
        return 0

    ts_all = [ts for ts, *_ in events]
    cats = Counter(cat for _, cat, *_ in events)
    instants = Counter((cat, name) for _, cat, ph, name, _, _ in events
                       if ph == "i")

    # Pair B/E per (cat, tid, name), nesting-aware via a per-key stack.
    open_spans = defaultdict(list)
    durations = defaultdict(list)
    unbalanced = 0
    for ts, cat, ph, name, tid, _ in events:
        key = (cat, tid, name)
        if ph == "B":
            open_spans[key].append(ts)
        elif ph == "E":
            if open_spans[key]:
                durations[(cat, name)].append(ts - open_spans[key].pop())
            else:
                unbalanced += 1
    unbalanced += sum(len(v) for v in open_spans.values())

    print(f"{args.trace}: {len(events)} events, "
          f"sim time {fmt_us(min(ts_all))} .. {fmt_us(max(ts_all))}")
    if dropped is not None:
        print(f"dropped events: {dropped}")
    if unbalanced:
        print(f"unbalanced span begin/end pairs: {unbalanced}")

    print("\nevents by category:")
    for cat, n in cats.most_common():
        print(f"  {cat:<10} {n}")

    if instants:
        print(f"\ntop instant events (of {len(instants)} kinds):")
        for (cat, name), n in instants.most_common(args.top):
            print(f"  {cat}/{name:<24} {n}")

    if durations:
        print("\nspans (sim-time):")
        rows = sorted(durations.items(),
                      key=lambda kv: -sum(kv[1]))[:args.top]
        for (cat, name), ds in rows:
            print(f"  {cat}/{name:<24} n={len(ds):<6} "
                  f"total={fmt_us(sum(ds)):<10} "
                  f"mean={fmt_us(sum(ds) / len(ds)):<10} "
                  f"max={fmt_us(max(ds))}")

    # Hierarchical-collection digest: cluster formation, head churn and
    # the demand-fetch economy (overlay head_elected/aggregate_built/
    # aggregate instants plus the service's demand_fetch instants).
    elections = [a for _, cat, _, name, _, a in events
                 if cat == "overlay" and name == "head_elected"]
    built = [a for _, cat, _, name, _, a in events
             if cat == "overlay" and name == "aggregate_built"]
    accepted = [a for _, cat, _, name, _, a in events
                if cat == "overlay" and name == "aggregate"]
    fetches = [a for _, cat, _, name, _, a in events
               if cat == "service" and name == "demand_fetch"]
    if elections or built or accepted or fetches:
        print("\nhierarchical collection:")
        if elections:
            heads = Counter(a.get("node") for a in elections)
            floods = {a.get("flood") for a in elections}
            churn = len(heads) / len(elections)
            print(f"  head elections: {len(elections)} across "
                  f"{len(floods)} floods, {len(heads)} distinct heads "
                  f"(churn {churn:.2f})")
        if built:
            members = sum(a.get("members", 0) for a in built)
            raw = sum(a.get("raw_bytes", 0) for a in built)
            wire = sum(a.get("wire_bytes", 0) for a in built)
            ratio = f"{raw / wire:.1f}x" if wire else "n/a"
            print(f"  aggregates built: {len(built)}, "
                  f"{members} members "
                  f"(mean {members / len(built):.1f}/cluster), "
                  f"evidence {raw} B -> {wire} B wire ({ratio})")
        if accepted:
            floods = Counter(a.get("flood") for a in accepted)
            members = sum(a.get("members", 0) for a in accepted)
            print(f"  aggregates accepted: {len(accepted)} over "
                  f"{len(floods)} round floods "
                  f"({len(accepted) / len(floods):.1f} clusters/round), "
                  f"covering {members} members")
            rate = len(fetches) / members if members else 0.0
            print(f"  demand fetches: {len(fetches)} "
                  f"({rate:.1%} of aggregated members)")
        elif fetches:
            print(f"  demand fetches: {len(fetches)}")

    # Adversary digest: campaign itinerary (infections, hops, evasions),
    # what self-measurement captured, and the detection outcomes with
    # their latencies.
    adv = [(ts, name, a) for ts, cat, _, name, _, a in events
           if cat == "adversary"]
    if adv:
        kinds = Counter(name for _, name, _ in adv)
        print("\nadversary campaign:")
        print(f"  infections: {kinds.get('infect', 0)}, "
              f"migrations: {kinds.get('migrate', 0)}, "
              f"evasive hops: {kinds.get('evade', 0)}, "
              f"clean departures: {kinds.get('leave', 0)}")
        captured = kinds.get("captured", 0)
        if captured:
            print(f"  captured by self-measurement: {captured}")
        detections = [(ts, a) for ts, name, a in adv if name == "detected"]
        if detections:
            latencies = [a.get("latency_ms", 0.0) for _, a in detections]
            chains = {a.get("chain") for _, a in detections}
            print(f"  detected: {len(detections)} chains "
                  f"({sorted(chains)}), latency "
                  f"{min(latencies) / 6e4:.1f}..{max(latencies) / 6e4:.1f} "
                  f"min (mean "
                  f"{sum(latencies) / len(latencies) / 6e4:.1f} min)")
    # Relay-layer attacks surface in the overlay category (they are relay
    # behavior, just malicious): show them alongside the campaign digest.
    relay_kinds = Counter(name for _, cat, _, name, _, _ in events
                          if cat == "overlay" and name in
                          ("adversarial_drop", "adversarial_corrupt",
                           "sybil_inject", "spoofed_rejected"))
    if relay_kinds:
        if not adv:
            print("\nadversary campaign:")
        print(f"  relay layer: {relay_kinds.get('adversarial_drop', 0)} "
              f"adversarial drops, "
              f"{relay_kinds.get('adversarial_corrupt', 0)} corruptions, "
              f"{relay_kinds.get('sybil_inject', 0)} sybil floods, "
              f"{relay_kinds.get('spoofed_rejected', 0)} spoofed origins "
              f"rejected")

    # Energy digest: planner decisions (with their reason codes) and the
    # battery-exhaustion timeline recorded by the runtime meter.
    decisions = [(ts, a) for ts, cat, ph, name, _, a in events
                 if cat == "energy" and name == "planner_decision"]
    darks = [(ts, a) for ts, cat, ph, name, _, a in events
             if cat == "energy" and name == "went_dark"]
    if decisions or darks:
        print("\nenergy:")
        for ts, a in decisions:
            print(f"  planner_decision: tm={a.get('tm_s', '?')}s "
                  f"backend={a.get('backend', '?')} "
                  f"adaptive_window={a.get('adaptive_window', '?')} "
                  f"qoa_per_joule={a.get('qoa_per_joule', '?')}")
            if a.get("reasons"):
                print(f"    reasons: {a['reasons']}")
        if darks:
            spent = [a.get("spent_nj", 0) for _, a in darks]
            print(f"  went_dark: {len(darks)} devices, "
                  f"first at {fmt_us(min(ts for ts, _ in darks))}, "
                  f"last at {fmt_us(max(ts for ts, _ in darks))}, "
                  f"spent {min(spent) / 1e6:.2f}..{max(spent) / 1e6:.2f} mJ "
                  f"each")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # summary | head is a supported use
        sys.exit(0)
