#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown.

Scans every tracked .md file for [text](target) links, resolves
relative targets (optionally with #fragments) against the linking
file's directory, and reports targets that do not exist. External
(scheme://, mailto:) and pure-fragment links are skipped, as is
PAPERS.md (retrieved paper notes whose figure assets are not vendored).

Usage: tools/check_doc_links.py [root]
"""
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in {".git", "build", "build-san", "build-werror",
                         "build-bench"}
        ]
        for name in filenames:
            if name == "PAPERS.md":
                continue
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    dead = []
    for path in md_files(root):
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), rel))
            if not os.path.exists(resolved):
                dead.append((path, target))
    for path, target in dead:
        print(f"dead link in {path}: {target}", file=sys.stderr)
    if dead:
        return 1
    print("all relative markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
