#!/usr/bin/env python3
"""Gate a bench run against its committed BENCH_*.json baseline.

Usage: check_bench.py BASELINE CANDIDATE [--tolerance FRAC]

Quantities are compared by their mean. Two classes:

* Simulation-derived quantities (responses, collected, flood_tx, hop
  counts, virtual-time...) are deterministic for a fixed seed, so any
  drift beyond the tolerance -- regression OR "improvement" -- fails the
  gate: behaviour changed and the baseline must be regenerated
  deliberately (run the bench, commit the new JSON alongside the change
  that explains it).

* Wall-clock quantities (*_ms, *_per_s, anything with "wall" or "build"
  in the name) depend on the host, and committed baselines come from a
  different machine than CI runners -- they are reported with their
  deltas but never fail the gate. Machine-independent performance is
  gated through the virtual-time and traffic-count quantities instead.

A simulation-derived quantity present in the baseline but missing from
the candidate fails (silently losing gate coverage is worse than a
regression); wall-clock quantities may be absent (bench --quick skips
repeat thread-count legs).
"""

import argparse
import json
import re
import sys

WALL_CLOCK = re.compile(r"(_ms$|_per_s$|wall|build)")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    return {name: q["mean"] for name, q in doc.get("quantities", {}).items()}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative drift (default 0.10)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    candidate = load(args.candidate)

    failures = []
    print(f"gating {args.candidate} against {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    for name, base in baseline.items():
        wall = bool(WALL_CLOCK.search(name))
        if name not in candidate:
            if wall:
                print(f"  [wall ] {name}: absent in candidate (ok)")
            else:
                failures.append(f"{name}: missing from candidate")
                print(f"  [FAIL ] {name}: missing from candidate")
            continue
        cand = candidate[name]
        if base == 0.0:
            drift = 0.0 if cand == 0.0 else float("inf")
        else:
            drift = abs(cand - base) / abs(base)
        if wall:
            print(f"  [wall ] {name}: {base:g} -> {cand:g} "
                  f"({drift:+.1%} drift, informational)")
            continue
        if drift > args.tolerance:
            failures.append(f"{name}: {base:g} -> {cand:g} ({drift:.1%})")
            print(f"  [FAIL ] {name}: {base:g} -> {cand:g} ({drift:.1%})")
        else:
            print(f"  [ ok  ] {name}: {base:g} -> {cand:g}")
    for name in candidate:
        if name not in baseline and not WALL_CLOCK.search(name):
            # New quantities are fine (a bench grew coverage), but say so.
            print(f"  [ new ] {name}: {candidate[name]:g} (not in baseline)")

    if failures:
        print(f"\n{len(failures)} quantities drifted beyond tolerance:")
        for f in failures:
            print(f"  {f}")
        print("If the change is intentional, regenerate and commit the "
              "baseline JSON.")
        return 1
    print("baseline gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
