#!/usr/bin/env python3
"""Gate a bench run against its committed BENCH_*.json baseline.

Usage: check_bench.py BASELINE CANDIDATE [--tolerance FRAC]
       check_bench.py --self-test

Quantities are compared by their mean. Two classes:

* Simulation-derived quantities (responses, collected, flood_tx, hop
  counts, virtual-time...) are deterministic for a fixed seed, so any
  drift beyond the tolerance -- regression OR "improvement" -- fails the
  gate: behaviour changed and the baseline must be regenerated
  deliberately (run the bench, commit the new JSON alongside the change
  that explains it).

* Wall-clock quantities (*_ms, *_per_s, *_share, anything with "wall",
  "build" or "barrier" in the name) depend on the host, and committed
  baselines come from a different machine than CI runners -- they are
  reported with their deltas but never fail the gate. Machine-independent
  performance is gated through the virtual-time and traffic-count
  quantities instead.

A simulation-derived quantity present in the baseline but missing from
the candidate fails BY NAME (silently losing gate coverage is worse than
a regression), and the gate summary lists every missing and extra
quantity; wall-clock quantities may be absent (bench --quick skips
repeat thread-count legs).

--self-test runs the embedded unit tests (CI does this so the gate
itself is gated).
"""

import argparse
import json
import re
import sys

# Host-dependent quantities: reported, never gated. `_share`/`barrier`
# cover the phase-profile quantities (barrier_wait_share and friends),
# which are wall-clock ratios even though they do not end in _ms.
WALL_CLOCK = re.compile(r"(_ms$|_per_s$|_share$|wall|build|barrier)")


class BenchFormatError(Exception):
    """A BENCH json that cannot be gated (malformed, not a bench doc)."""


def load(path):
    """Returns {quantity: mean} from a BENCH_*.json, or raises
    BenchFormatError naming exactly what is wrong with which file."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        raise BenchFormatError(f"cannot read {path}: {e}") from e
    except json.JSONDecodeError as e:
        raise BenchFormatError(f"{path} is not valid JSON: {e}") from e
    if not isinstance(doc, dict) or "quantities" not in doc:
        raise BenchFormatError(
            f"{path} has no 'quantities' object -- not a BENCH json?")
    means = {}
    for name, q in doc["quantities"].items():
        if not isinstance(q, dict) or "mean" not in q:
            raise BenchFormatError(
                f"quantity '{name}' in {path} has no 'mean' field")
        means[name] = q["mean"]
    return means


def gate(baseline, candidate, tolerance, baseline_name="baseline",
         candidate_name="candidate", out=print):
    """Compares candidate means against baseline means. Returns the list
    of failure strings (empty = gate passed)."""
    failures = []
    missing = []
    for name, base in baseline.items():
        wall = bool(WALL_CLOCK.search(name))
        if name not in candidate:
            if wall:
                out(f"  [wall ] {name}: absent in candidate (ok)")
            else:
                missing.append(name)
                out(f"  [FAIL ] {name}: missing from {candidate_name}")
            continue
        cand = candidate[name]
        if base == 0.0:
            drift = 0.0 if cand == 0.0 else float("inf")
        else:
            drift = abs(cand - base) / abs(base)
        if wall:
            out(f"  [wall ] {name}: {base:g} -> {cand:g} "
                f"({drift:+.1%} drift, informational)")
            continue
        if drift > tolerance:
            failures.append(f"{name}: {base:g} -> {cand:g} ({drift:.1%})")
            out(f"  [FAIL ] {name}: {base:g} -> {cand:g} ({drift:.1%})")
        else:
            out(f"  [ ok  ] {name}: {base:g} -> {cand:g}")
    extra = [name for name in candidate if name not in baseline]
    for name in extra:
        if not WALL_CLOCK.search(name):
            # New quantities are fine (a bench grew coverage), but say so.
            out(f"  [ new ] {name}: {candidate[name]:g} (not in baseline)")
    if missing:
        failures.extend(
            f"quantity {name} missing from {candidate_name} vs "
            f"{baseline_name}" for name in missing)
        out(f"  missing quantities ({len(missing)}): {', '.join(missing)}")
    if extra:
        out(f"  extra quantities ({len(extra)}): {', '.join(extra)}")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("candidate", nargs="?")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative drift (default 0.10)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded unit tests and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        parser.error("BASELINE and CANDIDATE are required (or --self-test)")

    try:
        baseline = load(args.baseline)
        candidate = load(args.candidate)
    except BenchFormatError as e:
        print(f"error: {e}")
        return 1

    print(f"gating {args.candidate} against {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    failures = gate(baseline, candidate, args.tolerance,
                    baseline_name=args.baseline,
                    candidate_name=args.candidate)
    if failures:
        print(f"\n{len(failures)} gate failures:")
        for f in failures:
            print(f"  {f}")
        print("If the change is intentional, regenerate and commit the "
              "baseline JSON.")
        return 1
    print("baseline gate passed")
    return 0


# --- self tests ---------------------------------------------------------------

def self_test():
    import io
    import os
    import tempfile
    import unittest

    null = lambda *_: None  # noqa: E731  (silence gate output in tests)

    class LoadTest(unittest.TestCase):
        def write(self, text):
            fd, path = tempfile.mkstemp(suffix=".json")
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                f.write(text)
            self.addCleanup(os.unlink, path)
            return path

        def test_loads_means(self):
            path = self.write(
                '{"bench": "x", "quantities": '
                '{"responses": {"count": 1, "mean": 42.0}}}')
            self.assertEqual(load(path), {"responses": 42.0})

        def test_missing_mean_is_named_not_keyerror(self):
            path = self.write(
                '{"quantities": {"responses": {"count": 1}}}')
            with self.assertRaises(BenchFormatError) as ctx:
                load(path)
            self.assertIn("responses", str(ctx.exception))
            self.assertIn("mean", str(ctx.exception))

        def test_invalid_json_is_named(self):
            path = self.write("{not json")
            with self.assertRaises(BenchFormatError) as ctx:
                load(path)
            self.assertIn(path, str(ctx.exception))

        def test_not_a_bench_doc(self):
            path = self.write('{"tables": {}}')
            with self.assertRaises(BenchFormatError):
                load(path)

        def test_missing_file(self):
            with self.assertRaises(BenchFormatError):
                load("/nonexistent/BENCH_x.json")

    class GateTest(unittest.TestCase):
        def test_identical_passes(self):
            self.assertEqual(
                gate({"responses": 10.0}, {"responses": 10.0}, 0.1,
                     out=null), [])

        def test_drift_beyond_tolerance_fails(self):
            failures = gate({"responses": 10.0}, {"responses": 15.0}, 0.1,
                            out=null)
            self.assertEqual(len(failures), 1)
            self.assertIn("responses", failures[0])

        def test_improvement_also_fails(self):
            # Sim-derived drift fails in BOTH directions: "better" numbers
            # still mean behaviour changed under a fixed seed.
            failures = gate({"unreachable": 10.0}, {"unreachable": 0.0},
                            0.1, out=null)
            self.assertEqual(len(failures), 1)

        def test_missing_sim_quantity_named(self):
            failures = gate({"responses": 10.0}, {}, 0.1,
                            baseline_name="BENCH_a.json",
                            candidate_name="BENCH_b.json", out=null)
            self.assertEqual(len(failures), 1)
            self.assertIn("responses", failures[0])
            self.assertIn("missing from BENCH_b.json", failures[0])
            self.assertIn("BENCH_a.json", failures[0])

        def test_missing_wall_clock_ok(self):
            self.assertEqual(
                gate({"t8_round_wall_ms": 9.0}, {}, 0.1, out=null), [])

        def test_wall_clock_drift_informational(self):
            self.assertEqual(
                gate({"t1_build_ms": 10.0}, {"t1_build_ms": 99.0}, 0.1,
                     out=null), [])

        def test_barrier_wait_share_is_wall_clock(self):
            # The phase-profile headline is a wall-clock ratio: reported,
            # never gated, despite not ending in _ms.
            self.assertTrue(WALL_CLOCK.search("barrier_wait_share"))
            self.assertTrue(WALL_CLOCK.search("t8_barrier_wait_ms"))
            self.assertTrue(WALL_CLOCK.search("t8_coord_drain_ms"))
            self.assertEqual(
                gate({"barrier_wait_share": 0.2},
                     {"barrier_wait_share": 0.9}, 0.1, out=null), [])

        def test_sim_quantities_still_gated(self):
            for name in ("collected", "healthy", "responses", "flood_tx",
                         "hop_p99"):
                self.assertFalse(WALL_CLOCK.search(name), name)

        def test_extra_quantity_is_not_failure(self):
            self.assertEqual(
                gate({}, {"brand_new": 1.0}, 0.1, out=null), [])

        def test_zero_baseline_exact_match_required(self):
            self.assertEqual(
                gate({"drops": 0.0}, {"drops": 0.0}, 0.1, out=null), [])
            self.assertEqual(
                len(gate({"drops": 0.0}, {"drops": 1.0}, 0.1, out=null)), 1)

    stream = io.StringIO()
    suite = unittest.TestSuite()
    loader = unittest.TestLoader()
    suite.addTests(loader.loadTestsFromTestCase(LoadTest))
    suite.addTests(loader.loadTestsFromTestCase(GateTest))
    result = unittest.TextTestRunner(
        stream=stream, verbosity=2).run(suite)
    print(stream.getvalue(), end="")
    return 0 if result.wasSuccessful() else 1


if __name__ == "__main__":
    sys.exit(main())
