#!/bin/sh
# Checks the README knob-reference table against the live CLI:
#   tools/check_knob_table.sh <path-to-erasmus_run> [README.md]
# Fails if a knob `erasmus_run describe swarm_relay` prints is missing
# from the table, or the table lists a knob the CLI no longer has --
# the two ways a hand-written reference rots.
set -eu

run_bin=${1:?usage: check_knob_table.sh <erasmus_run> [README.md]}
readme=${2:-README.md}

# Knob names straight from the CLI: the first token of each indented
# parameter line, with any "=VALUE" placeholder stripped (--trace=PATH
# -> --trace).
cli_knobs=$("$run_bin" describe swarm_relay |
  awk '/^  /{sub(/=.*/, "", $1); print $1}' | sort -u)
[ -n "$cli_knobs" ] || { echo "describe printed no parameters" >&2; exit 1; }

# Knob names from the README table, between the knob-table markers:
# first cell of each data row, backticks stripped.
table_knobs=$(sed -n '/knob-table:begin/,/knob-table:end/p' "$readme" |
  awk -F'|' '/^\| `/{gsub(/[` ]/, "", $2); print $2}' | sort -u)
[ -n "$table_knobs" ] || { echo "no knob table found in $readme" >&2; exit 1; }

status=0
for k in $cli_knobs; do
  echo "$table_knobs" | grep -qx -- "$k" || {
    echo "knob table missing CLI knob: $k" >&2; status=1; }
done
for k in $table_knobs; do
  echo "$cli_knobs" | grep -qx -- "$k" || {
    echo "knob table lists unknown knob: $k" >&2; status=1; }
done
[ $status -eq 0 ] && echo "knob table matches describe swarm_relay"
exit $status
