// Machine-readable bench output: BENCH_<name>.json next to the text table.
//
// Each bench records named sample sets (one per measured quantity) and
// writes {"bench": ..., "quantities": {q: {count, mean, p50, p99}}} so the
// perf trajectory can be tracked across PRs by diffing/plotting the JSON
// instead of scraping stdout.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace erasmus::analysis {

/// True when "--quick" is among the arguments. Benches use it to bound
/// wall-clock in CI (skip repetition-style work: extra thread-count
/// reruns, optional sweeps) -- it must NEVER change a simulated
/// configuration, so every simulation-derived quantity keeps its
/// full-mode value and stays comparable against committed baselines.
bool bench_quick_mode(int argc, char** argv);

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Appends one sample of `quantity` (creates it on first use; insertion
  /// order is preserved in the JSON).
  void sample(const std::string& quantity, double value);
  void samples(const std::string& quantity,
               const std::vector<double>& values);

  /// The JSON document (deterministic byte layout).
  std::string to_json() const;

  /// Writes BENCH_<name>.json into `dir`; returns the path written, empty
  /// on I/O failure (after printing a warning to stderr). Benches MUST
  /// treat an empty return as fatal -- a silently missing BENCH json makes
  /// the CI baseline gate vacuous.
  std::string write(const std::string& dir = ".") const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::vector<double>>> quantities_;
};

}  // namespace erasmus::analysis
