#include "analysis/table.h"

#include <cstdio>
#include <stdexcept>

namespace erasmus::analysis {

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: at least one column required");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      std::string cell = row[c];
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < row.size()) line += " | ";
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  for (size_t c = 0; c < widths.size(); ++c) {
    out += std::string(widths[c], '-');
    if (c + 1 < widths.size()) out += "-+-";
  }
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

Series::Series(std::string x_label, std::vector<std::string> y_labels)
    : x_label_(std::move(x_label)), y_labels_(std::move(y_labels)) {}

void Series::add_point(double x, std::vector<double> ys) {
  if (ys.size() != y_labels_.size()) {
    throw std::invalid_argument("Series: point width mismatch");
  }
  xs_.push_back(x);
  ys_.push_back(std::move(ys));
}

std::string Series::render() const {
  Table t([&] {
    std::vector<std::string> headers{x_label_};
    headers.insert(headers.end(), y_labels_.begin(), y_labels_.end());
    return headers;
  }());
  for (size_t i = 0; i < xs_.size(); ++i) {
    std::vector<std::string> row{fmt(xs_[i])};
    for (double y : ys_[i]) row.push_back(fmt(y));
    t.add_row(std::move(row));
  }
  return t.render();
}

}  // namespace erasmus::analysis
