// ASCII rendering of tables and data series for the bench harness.
//
// Every bench binary prints the same rows/series the paper reports; these
// helpers keep the output uniform and machine-greppable.
#pragma once

#include <string>
#include <vector>

namespace erasmus::analysis {

/// Fixed-column table: header row + data rows, padded to column widths.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with column separators, e.g.
  ///   MAC Impl.     | On-Demand | ERASMUS
  ///   --------------+-----------+--------
  ///   HMAC-SHA256   | 5.1 KB    | 4.9 KB
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// (x, y_1..y_m) series for figure reproduction; renders a column-aligned
/// block with one line per x.
class Series {
 public:
  Series(std::string x_label, std::vector<std::string> y_labels);

  void add_point(double x, std::vector<double> ys);

  std::string render() const;

  const std::vector<double>& xs() const { return xs_; }
  const std::vector<std::vector<double>>& ys() const { return ys_; }

 private:
  std::string x_label_;
  std::vector<std::string> y_labels_;
  std::vector<double> xs_;
  std::vector<std::vector<double>> ys_;
};

/// Formats a double with `digits` decimals.
std::string fmt(double value, int digits = 3);

}  // namespace erasmus::analysis
