// Monte-Carlo detection-probability estimators.
//
// Independent validation of the closed forms in attest/qoa.h: instead of
// algebra, draw random malware arrivals/dwells against a measurement
// schedule and count captures. Tests assert the two agree; benches use both
// to plot §3.5's regular-vs-irregular comparison.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace erasmus::analysis {

/// Malware arrives at a uniformly random phase of a regular schedule with
/// period tm and dwells for `dwell`. Returns the fraction of `trials` in
/// which at least one measurement instant fell inside the dwell interval.
double mc_detection_regular(sim::Duration dwell, sim::Duration tm,
                            size_t trials, uint64_t seed);

/// Schedule-aware malware vs. an IRREGULAR schedule: it enters immediately
/// after a measurement; the next measurement fires after an interval drawn
/// uniformly from [lower, upper). Caught iff interval <= dwell.
double mc_detection_schedule_aware_irregular(sim::Duration dwell,
                                             sim::Duration lower,
                                             sim::Duration upper,
                                             size_t trials, uint64_t seed);

/// Random-phase malware vs. an IRREGULAR schedule (no closed form in the
/// paper): simulates a long run of intervals uniform on [lower, upper) and
/// drops random dwell windows onto it.
double mc_detection_random_phase_irregular(sim::Duration dwell,
                                           sim::Duration lower,
                                           sim::Duration upper,
                                           size_t trials, uint64_t seed);

}  // namespace erasmus::analysis
