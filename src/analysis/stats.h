// Summary statistics for experiment outputs.
#pragma once

#include <cstddef>
#include <vector>

namespace erasmus::analysis {

struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Computes all summary statistics in one pass (plus a sort for quantiles).
Summary summarize(const std::vector<double>& values);

/// Linear-interpolated quantile, q in [0, 1]. Empty input returns 0.
double quantile(std::vector<double> values, double q);

/// Relative error |a - b| / max(|b|, eps); used to compare measured vs.
/// paper-reported values in EXPERIMENTS.md checks.
double relative_error(double measured, double reference);

}  // namespace erasmus::analysis
