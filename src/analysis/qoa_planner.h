// QoA planning: inverse of the §3.1 metric.
//
// The paper defines QoA in terms of (T_M, T_C) but leaves choosing them to
// "specifics of Prv's mission and its deployment setting". This module
// solves the operator's actual problem:
//
//   "I must detect mobile malware that dwells >= D with probability >= p,
//    flag it within latency <= L, and the battery must last >= B days.
//    What (T_M, T_C, n) should I configure?"
//
// using the closed forms of attest/qoa.h and the energy model of
// sim/energy.h.
#pragma once

#include <optional>

#include "attest/qoa.h"
#include "crypto/mac.h"
#include "sim/device_profile.h"
#include "sim/energy.h"

namespace erasmus::analysis {

struct QoAGoal {
  /// Minimum dwell time of the malware we must catch.
  sim::Duration min_dwell = sim::Duration::minutes(30);
  /// Required detection probability for a random-phase dwell of min_dwell.
  double min_detection_prob = 0.9;
  /// Worst acceptable infection-to-detection latency (T_M + T_C bound).
  sim::Duration max_detection_latency = sim::Duration::hours(4);
  /// Required battery life in days (0 = mains powered, ignore energy).
  double min_battery_days = 0.0;
  double battery_mwh = 2400.0;  // 2x AA-ish
};

struct DeviceSpec {
  sim::DeviceProfile profile = sim::DeviceProfile::msp430_8mhz();
  sim::EnergyProfile energy = sim::EnergyProfile::msp430();
  crypto::MacAlgo algo = crypto::MacAlgo::kHmacSha256;
  uint64_t attested_bytes = 10 * 1024;
  size_t record_bytes = 1 + 8 + 32 + 32;
};

struct QoAPlan {
  sim::Duration tm;
  sim::Duration tc;
  size_t buffer_slots = 0;  // minimal n with T_C <= n * T_M
  double detection_prob = 0.0;
  sim::Duration worst_case_latency;
  double battery_days = 0.0;
  /// Fraction of wall-clock time the device spends measuring.
  double measurement_duty = 0.0;
};

/// Searches a (T_M, T_C) grid (1 min .. 24 h, geometric steps) for the
/// cheapest configuration (by total energy) meeting every goal. Returns
/// nullopt when no grid point satisfies the goal (e.g. the detection
/// probability demands a T_M whose energy cost breaks the battery bound).
std::optional<QoAPlan> plan_qoa(const QoAGoal& goal, const DeviceSpec& spec);

/// Evaluates one explicit configuration against a goal (all the derived
/// numbers, no search). Useful for what-if tables.
QoAPlan evaluate_qoa(sim::Duration tm, sim::Duration tc,
                     const DeviceSpec& spec);

}  // namespace erasmus::analysis
