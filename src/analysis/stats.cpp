#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

namespace erasmus::analysis {

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  s.p50 = quantile(values, 0.50);
  s.p95 = quantile(values, 0.95);
  return s;
}

double relative_error(double measured, double reference) {
  const double denom = std::max(std::abs(reference), 1e-12);
  return std::abs(measured - reference) / denom;
}

}  // namespace erasmus::analysis
