#include "analysis/bench_report.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "analysis/stats.h"
#include "common/strings.h"

namespace erasmus::analysis {

bool bench_quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

namespace {

std::vector<double>* find_quantity(
    std::vector<std::pair<std::string, std::vector<double>>>& quantities,
    const std::string& name) {
  for (auto& [q, values] : quantities) {
    if (q == name) return &values;
  }
  quantities.emplace_back(name, std::vector<double>{});
  return &quantities.back().second;
}

}  // namespace

void BenchReport::sample(const std::string& quantity, double value) {
  find_quantity(quantities_, quantity)->push_back(value);
}

void BenchReport::samples(const std::string& quantity,
                          const std::vector<double>& values) {
  auto* dest = find_quantity(quantities_, quantity);
  dest->insert(dest->end(), values.begin(), values.end());
}

std::string BenchReport::to_json() const {
  std::string out = "{\n  \"bench\": \"" + json_escape(name_) +
                    "\",\n  \"quantities\": {";
  for (size_t i = 0; i < quantities_.size(); ++i) {
    const auto& [name, values] = quantities_[i];
    const Summary s = summarize(values);
    const double p99 = quantile(values, 0.99);
    out += (i ? ",\n    " : "\n    ");
    out += "\"" + json_escape(name) + "\": {\"count\": " +
           std::to_string(s.count) + ", \"mean\": " + format_double(s.mean) +
           ", \"p50\": " + format_double(s.p50) +
           ", \"p99\": " + format_double(p99) + "}";
  }
  out += quantities_.empty() ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

std::string BenchReport::write(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "[bench_report] ERROR: cannot open %s for writing\n",
                 path.c_str());
    return {};
  }
  file << to_json();
  file.flush();  // surface disk-full/quota errors before claiming success
  if (!file) {
    std::fprintf(stderr,
                 "[bench_report] ERROR: write to %s failed (disk full?)\n",
                 path.c_str());
    return {};
  }
  std::fprintf(stderr, "[bench_report] wrote %s\n", path.c_str());
  return path;
}

}  // namespace erasmus::analysis
