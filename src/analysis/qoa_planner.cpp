#include "analysis/qoa_planner.h"

#include <vector>

namespace erasmus::analysis {

namespace {

const std::vector<sim::Duration>& grid() {
  static const std::vector<sim::Duration> kGrid = {
      sim::Duration::minutes(1),  sim::Duration::minutes(2),
      sim::Duration::minutes(5),  sim::Duration::minutes(10),
      sim::Duration::minutes(15), sim::Duration::minutes(20),
      sim::Duration::minutes(30), sim::Duration::minutes(45),
      sim::Duration::hours(1),    sim::Duration::hours(2),
      sim::Duration::hours(4),    sim::Duration::hours(8),
      sim::Duration::hours(12),   sim::Duration::hours(24),
  };
  return kGrid;
}

}  // namespace

QoAPlan evaluate_qoa(sim::Duration tm, sim::Duration tc,
                     const DeviceSpec& spec) {
  QoAPlan plan;
  plan.tm = tm;
  plan.tc = tc;
  const attest::QoAParams qoa{tm, tc};
  plan.buffer_slots = qoa.min_buffer_slots();
  plan.worst_case_latency = qoa.worst_case_detection_delay();
  plan.battery_days = sim::battery_life_days(
      spec.profile, spec.energy, spec.algo, spec.attested_bytes,
      spec.record_bytes, tm, tc, /*battery_mwh=*/2400.0);
  const sim::Duration measure_time =
      spec.profile.measurement_time(spec.algo, spec.attested_bytes);
  plan.measurement_duty = static_cast<double>(measure_time.ns()) /
                          static_cast<double>(tm.ns());
  return plan;
}

std::optional<QoAPlan> plan_qoa(const QoAGoal& goal, const DeviceSpec& spec) {
  std::optional<QoAPlan> best;
  double best_energy = 0.0;

  for (const sim::Duration tm : grid()) {
    const double p = attest::detection_prob_regular(goal.min_dwell, tm);
    if (p < goal.min_detection_prob) continue;
    // A measurement must fit comfortably inside T_M.
    const sim::Duration measure_time =
        spec.profile.measurement_time(spec.algo, spec.attested_bytes);
    if (measure_time * 2 > tm) continue;

    for (const sim::Duration tc : grid()) {
      if (tc < tm) continue;  // collecting faster than measuring is wasted
      if ((tm + tc) > goal.max_detection_latency) continue;

      QoAPlan plan = evaluate_qoa(tm, tc, spec);
      plan.detection_prob = p;
      plan.battery_days = sim::battery_life_days(
          spec.profile, spec.energy, spec.algo, spec.attested_bytes,
          spec.record_bytes, tm, tc, goal.battery_mwh);
      if (goal.min_battery_days > 0.0 &&
          plan.battery_days < goal.min_battery_days) {
        continue;
      }

      const double energy =
          sim::attestation_energy(spec.profile, spec.energy, spec.algo,
                                  spec.attested_bytes, spec.record_bytes, tm,
                                  tc, sim::Duration::hours(24))
              .total()
              .microjoules;
      if (!best || energy < best_energy) {
        best = plan;
        best_energy = energy;
      }
    }
  }
  return best;
}

}  // namespace erasmus::analysis
