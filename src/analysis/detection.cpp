#include "analysis/detection.h"

#include <stdexcept>
#include <vector>

#include "sim/rng.h"

namespace erasmus::analysis {

double mc_detection_regular(sim::Duration dwell, sim::Duration tm,
                            size_t trials, uint64_t seed) {
  if (tm.is_zero() || trials == 0) {
    throw std::invalid_argument("mc_detection_regular: bad parameters");
  }
  sim::Rng rng(seed);
  size_t detected = 0;
  for (size_t i = 0; i < trials; ++i) {
    // Arrival phase within the period; the next measurement is at tm.
    const uint64_t phase = rng.next_below(tm.ns());
    if (phase + dwell.ns() >= tm.ns()) ++detected;
  }
  return static_cast<double>(detected) / static_cast<double>(trials);
}

double mc_detection_schedule_aware_irregular(sim::Duration dwell,
                                             sim::Duration lower,
                                             sim::Duration upper,
                                             size_t trials, uint64_t seed) {
  if (upper <= lower || trials == 0) {
    throw std::invalid_argument(
        "mc_detection_schedule_aware_irregular: bad parameters");
  }
  sim::Rng rng(seed);
  size_t detected = 0;
  for (size_t i = 0; i < trials; ++i) {
    const uint64_t interval =
        lower.ns() + rng.next_below((upper - lower).ns());
    if (interval <= dwell.ns()) ++detected;
  }
  return static_cast<double>(detected) / static_cast<double>(trials);
}

double mc_detection_random_phase_irregular(sim::Duration dwell,
                                           sim::Duration lower,
                                           sim::Duration upper,
                                           size_t trials, uint64_t seed) {
  if (upper <= lower || trials == 0) {
    throw std::invalid_argument(
        "mc_detection_random_phase_irregular: bad parameters");
  }
  sim::Rng rng(seed);

  // Build one long realised schedule, then drop dwell windows on it.
  const size_t kIntervals = 4096;
  std::vector<uint64_t> boundaries;  // measurement instants
  boundaries.reserve(kIntervals);
  uint64_t t = 0;
  for (size_t i = 0; i < kIntervals; ++i) {
    t += lower.ns() + rng.next_below((upper - lower).ns());
    boundaries.push_back(t);
  }
  const uint64_t span = boundaries.back() - dwell.ns();

  size_t detected = 0;
  for (size_t i = 0; i < trials; ++i) {
    const uint64_t a = rng.next_below(span);
    const uint64_t b = a + dwell.ns();
    // Binary search: is there a measurement instant in [a, b)?
    auto it = std::lower_bound(boundaries.begin(), boundaries.end(), a);
    if (it != boundaries.end() && *it < b) ++detected;
  }
  return static_cast<double>(detected) / static_cast<double>(trials);
}

}  // namespace erasmus::analysis
