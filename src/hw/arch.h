// Security architecture models: SMART+ and HYDRA.
//
// ERASMUS layers on top of a hybrid RA security architecture that must
// guarantee (paper §3.4):
//   (1) the measurement code has *exclusive* access to the key K,
//   (2) the measurement code is non-malleable and executes atomically
//       (uninterruptible, entered at the first instruction), and
//   (3) intermediate state is cleaned up after execution.
//
// SmartPlusArch models SMART+ [Brasser et al., DAC'16]: attestation code and
// K live in ROM; hard-wired MCU access-control rules gate K and enforce
// atomic execution (interrupts disabled on entry).
//
// HydraArch models HYDRA [ElDefrawy et al.]: a formally verified microkernel
// (seL4) enforces the same rules in software. K lives in writable memory
// owned exclusively by the attestation process PrAtt, which runs as the
// first user-space process at the highest priority; secure boot checks
// kernel + PrAtt integrity at initialisation.
//
// Both expose the same ProtectedContext interface so the ERASMUS core is
// architecture-agnostic (as the paper claims: "should be equally applicable
// to other on-demand RA techniques").
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "hw/memory.h"

namespace erasmus::hw {

/// Raised when software outside the protected environment touches K or
/// re-enters the atomic section.
class SecurityViolation : public std::runtime_error {
 public:
  explicit SecurityViolation(const std::string& what)
      : std::runtime_error(what) {}
};

class SecurityArch {
 public:
  /// Capability handle passed to code running inside the protected
  /// environment; the only legal way to reach K.
  class ProtectedContext {
   public:
    /// The device key K. Wiped conceptually at section exit; callers must
    /// not retain the view (enforced by the section-exit poisoning below).
    ByteView key() const;

    DeviceMemory& memory() const { return arch_.memory(); }

   private:
    friend class SecurityArch;
    explicit ProtectedContext(SecurityArch& arch) : arch_(arch) {}
    SecurityArch& arch_;
  };

  virtual ~SecurityArch() = default;

  /// Executes `fn` inside the protected environment: K becomes readable,
  /// memory accesses are privileged, and the section is atomic (re-entry
  /// throws). Models ROM-resident code in SMART+ / PrAtt in HYDRA.
  void run_protected(const std::function<void(ProtectedContext&)>& fn);

  /// True while executing inside run_protected.
  bool in_protected() const { return in_protected_; }

  /// Reads K; throws SecurityViolation unless called from inside
  /// run_protected. ProtectedContext::key() routes here.
  ByteView key_for(const ProtectedContext&) const;

  virtual const std::string& name() const = 0;
  /// Whether the architecture can service interrupts during attestation
  /// (SMART+: no -- interrupts disabled; HYDRA: seL4 may preempt but the
  /// attestation process still runs to completion at top priority).
  virtual bool interrupts_allowed_during_measurement() const = 0;
  virtual DeviceMemory& memory() = 0;
  virtual const DeviceMemory& memory() const = 0;

 protected:
  explicit SecurityArch(Bytes key) : key_(std::move(key)) {}

  /// Architecture-specific gate evaluated at protected-section entry
  /// (HYDRA requires a successful secure boot first).
  virtual void pre_protected_check() const {}

  Bytes key_;

 private:
  bool in_protected_ = false;
};

/// SMART+ on an OpenMSP430-class MCU.
class SmartPlusArch final : public SecurityArch {
 public:
  /// `app_ram_bytes`: size of the attested application memory.
  /// `store_bytes`: size of the (unprotected) measurement store region.
  SmartPlusArch(Bytes key, size_t rom_bytes, size_t app_ram_bytes,
                size_t store_bytes);

  const std::string& name() const override;
  bool interrupts_allowed_during_measurement() const override {
    return false;  // SMART: interrupts disabled upon entering ROM code
  }
  DeviceMemory& memory() override { return memory_; }
  const DeviceMemory& memory() const override { return memory_; }

  RegionId rom_region() const { return rom_; }
  RegionId key_region() const { return key_region_; }
  RegionId app_region() const { return app_; }
  RegionId store_region() const { return store_; }

 private:
  DeviceMemory memory_;
  RegionId rom_;
  RegionId key_region_;
  RegionId app_;
  RegionId store_;
};

/// HYDRA on an I.MX6-class board with an MMU and seL4.
class HydraArch final : public SecurityArch {
 public:
  struct Process {
    std::string name;
    int priority;       // seL4 scheduling priority (255 = highest)
    bool spawned_by_pratt;
  };

  HydraArch(Bytes key, size_t app_ram_bytes, size_t store_bytes);

  /// Models hardware-enforced secure boot: verifies the (simulated) kernel
  /// and PrAtt images against expected digests; throws SecurityViolation on
  /// mismatch. Must be called before run_protected.
  void secure_boot();
  bool booted() const { return booted_; }

  /// Tampers with the PrAtt image, so the next secure_boot fails -- used by
  /// tests to show boot-time integrity enforcement.
  void corrupt_pratt_image();

  /// Spawns an ordinary user process (always at lower priority than PrAtt,
  /// as HYDRA requires).
  void spawn_process(std::string name, int priority);
  const std::vector<Process>& processes() const { return processes_; }

  const std::string& name() const override;
  bool interrupts_allowed_during_measurement() const override {
    return true;  // seL4 CPU exception engine handles interrupts securely
  }
  DeviceMemory& memory() override { return memory_; }
  const DeviceMemory& memory() const override { return memory_; }

  RegionId kernel_region() const { return kernel_; }
  RegionId pratt_region() const { return pratt_; }
  RegionId app_region() const { return app_; }
  RegionId store_region() const { return store_; }

 protected:
  void pre_protected_check() const override;

 private:
  DeviceMemory memory_;
  RegionId kernel_;
  RegionId pratt_;
  RegionId key_region_;
  RegionId app_;
  RegionId store_;
  Bytes kernel_digest_;
  Bytes pratt_digest_;
  std::vector<Process> processes_;
  bool booted_ = false;
};

}  // namespace erasmus::hw
