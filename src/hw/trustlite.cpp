#include "hw/trustlite.h"

namespace erasmus::hw {

TrustLiteArch::TrustLiteArch(Bytes key, size_t app_ram_bytes,
                             size_t store_bytes)
    : SecurityArch(std::move(key)) {
  // Unlike SMART+'s ROM, TrustLite keeps the attestation trustlet in flash;
  // write access is governed by the EA-MPU rather than mask ROM. The
  // DeviceMemory policies below are the *hardware floor*; the EA-MPU rule
  // table refines what each trustlet may do and is checked at protected-
  // section entry.
  code_ = memory_.add_region("attestation_trustlet", 8 * 1024, policy::kRom);
  key_region_ = memory_.add_region("key", key_.size(), policy::kKey);
  app_ = memory_.add_region("app_ram", app_ram_bytes, policy::kAppRam);
  store_ = memory_.add_region("measurement_store", store_bytes,
                              policy::kMeasurementStore);
  memory_.provision(key_region_, 0, key_);

  // Boot-time default rules (what TyTAN's loader would install).
  program_rule(Trustlet::kAttestation, key_region_, Access::kRead);
  program_rule(Trustlet::kAttestation, app_, Access::kRead);
  program_rule(Trustlet::kAttestation, store_, Access::kReadWrite);
  program_rule(Trustlet::kApplication, key_region_, Access::kNone);
  program_rule(Trustlet::kApplication, app_, Access::kReadWrite);
  program_rule(Trustlet::kApplication, store_, Access::kReadWrite);
}

void TrustLiteArch::program_rule(Trustlet who, RegionId region,
                                 Access access) {
  if (locked_) {
    throw SecurityViolation(
        "EA-MPU: rule table is locked after secure boot (runtime "
        "reprogramming would let malware grant itself key access)");
  }
  rules_[{static_cast<uint8_t>(who), region}] = access;
}

void TrustLiteArch::lock_rules() { locked_ = true; }

Access TrustLiteArch::rule_for(Trustlet who, RegionId region) const {
  const auto it = rules_.find({static_cast<uint8_t>(who), region});
  return it == rules_.end() ? Access::kNone : it->second;
}

void TrustLiteArch::pre_protected_check() const {
  if (!locked_) {
    throw SecurityViolation(
        "EA-MPU: rules must be programmed and locked before the attestation "
        "trustlet may run");
  }
  if (rule_for(Trustlet::kAttestation, key_region_) == Access::kNone) {
    throw SecurityViolation(
        "EA-MPU: attestation trustlet lacks a key-access rule");
  }
}

const std::string& TrustLiteArch::name() const {
  static const std::string kName = "TrustLite";
  return kName;
}

}  // namespace erasmus::hw
