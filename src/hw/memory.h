// Simulated device memory with region-level access control.
//
// Models the memory organisation of Fig. 5 (SMART+) and Fig. 7 (HYDRA):
//   * ROM holding the attestation code (read/execute only),
//   * a key region holding K, readable ONLY from protected attestation code
//     (hard-wired MCU rules in SMART+, seL4 capabilities in HYDRA),
//   * application RAM/flash, freely writable by software -- including
//     malware, and
//   * the measurement store: a windowed buffer in *unprotected* memory
//     (paper §3.2 -- tampering is detectable, so no protection is needed).
//
// Every access carries a privilege flag (inside vs. outside protected
// attestation code); violating a region policy throws AccessViolation,
// modelling the hardware fault the real MCU rules would raise.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace erasmus::hw {

/// What a given privilege level may do with a region.
enum class Access : uint8_t {
  kNone,       // no access at all
  kRead,       // read-only
  kReadWrite,  // full access
};

/// Pair of policies: one for ordinary software (apps / malware), one for
/// code running inside the protected attestation environment.
struct RegionPolicy {
  Access unprivileged = Access::kNone;
  Access privileged = Access::kRead;
};

/// Raised when an access violates the region policy. In real hardware this
/// is a bus fault / MPU violation; HYDRA's seL4 would kill the process.
class AccessViolation : public std::runtime_error {
 public:
  explicit AccessViolation(const std::string& what)
      : std::runtime_error(what) {}
};

/// Opaque region handle.
using RegionId = size_t;

class DeviceMemory {
 public:
  /// Appends a region of `size` bytes (zero-initialised) and returns its id.
  RegionId add_region(std::string name, size_t size, RegionPolicy policy);

  /// Reads `len` bytes at `offset` within the region.
  Bytes read(RegionId region, size_t offset, size_t len,
             bool privileged) const;

  /// Writes `data` at `offset` within the region.
  void write(RegionId region, size_t offset, ByteView data, bool privileged);

  /// Manufacture-time write that bypasses the run-time policy. Used to burn
  /// ROM images and provision K; never called by simulated software.
  void provision(RegionId region, size_t offset, ByteView data);

  /// Zero-copy read-only view of a whole region (policy-checked).
  ByteView view(RegionId region, bool privileged) const;

  size_t region_size(RegionId region) const;
  const std::string& region_name(RegionId region) const;
  size_t region_count() const { return regions_.size(); }

  /// Total bytes across all regions.
  size_t total_size() const;

 private:
  struct Region {
    std::string name;
    Bytes data;
    RegionPolicy policy;
  };

  const Region& region_at(RegionId id) const;
  void check(const Region& r, bool privileged, bool write,
             size_t offset, size_t len) const;

  std::vector<Region> regions_;
};

/// Canonical region policies used throughout the library.
namespace policy {
/// ROM: everyone can read, nobody can write (immutable attestation code).
inline constexpr RegionPolicy kRom{Access::kRead, Access::kRead};
/// Key storage: invisible to ordinary software, read-only even for the
/// attestation code (K is provisioned at manufacture).
inline constexpr RegionPolicy kKey{Access::kNone, Access::kRead};
/// Application memory: fully accessible to ordinary software.
inline constexpr RegionPolicy kAppRam{Access::kReadWrite, Access::kReadWrite};
/// Measurement store: unprotected on purpose (paper §3.2).
inline constexpr RegionPolicy kMeasurementStore{Access::kReadWrite,
                                                Access::kReadWrite};
}  // namespace policy

}  // namespace erasmus::hw
