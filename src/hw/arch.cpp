#include "hw/arch.h"

#include "crypto/hash.h"

namespace erasmus::hw {

namespace {

// Fills a region with deterministic pseudo-content standing in for a binary
// image (kernel, PrAtt, ROM code). Content only matters for integrity
// digests, so a cheap LCG byte stream suffices.
void fill_image(DeviceMemory& mem, RegionId region, uint32_t tag) {
  const size_t size = mem.region_size(region);
  Bytes image(size);
  uint32_t x = 0x12345678u ^ tag;
  for (auto& b : image) {
    x = x * 1664525u + 1013904223u;
    b = static_cast<uint8_t>(x >> 24);
  }
  mem.provision(region, 0, image);
}

}  // namespace

ByteView SecurityArch::ProtectedContext::key() const {
  return arch_.key_for(*this);
}

void SecurityArch::run_protected(
    const std::function<void(ProtectedContext&)>& fn) {
  if (in_protected_) {
    throw SecurityViolation(
        "run_protected: atomic section re-entered (attestation code must "
        "run from first to last instruction)");
  }
  pre_protected_check();
  in_protected_ = true;
  ProtectedContext ctx(*this);
  try {
    fn(ctx);
  } catch (...) {
    // Models the architecture's cleanup-on-exit guarantee: the protected
    // flag (and thus key access) is revoked even on abnormal exit.
    in_protected_ = false;
    throw;
  }
  in_protected_ = false;
}

ByteView SecurityArch::key_for(const ProtectedContext&) const {
  if (!in_protected_) {
    throw SecurityViolation(
        "key access outside the protected attestation environment");
  }
  return key_;
}

// --- SMART+ ---------------------------------------------------------------

SmartPlusArch::SmartPlusArch(Bytes key, size_t rom_bytes, size_t app_ram_bytes,
                             size_t store_bytes)
    : SecurityArch(std::move(key)) {
  rom_ = memory_.add_region("rom", rom_bytes, policy::kRom);
  key_region_ = memory_.add_region("key", key_.size(), policy::kKey);
  app_ = memory_.add_region("app_ram", app_ram_bytes, policy::kAppRam);
  store_ = memory_.add_region("measurement_store", store_bytes,
                              policy::kMeasurementStore);
  // The ROM image and K are burned in at manufacture (provision bypasses the
  // run-time policy; kRom/kKey forbid even privileged writes afterwards).
  fill_image(memory_, rom_, /*tag=*/0x534d4152u);  // "SMAR"
  memory_.provision(key_region_, 0, key_);
}

const std::string& SmartPlusArch::name() const {
  static const std::string kName = "SMART+";
  return kName;
}

// --- HYDRA ------------------------------------------------------------------

HydraArch::HydraArch(Bytes key, size_t app_ram_bytes, size_t store_bytes)
    : SecurityArch(std::move(key)) {
  // Sizes follow the paper's Table 1 scale: the seL4 kernel plus PrAtt image
  // is a couple hundred KB.
  kernel_ = memory_.add_region("sel4_kernel", 160 * 1024,
                               RegionPolicy{Access::kRead, Access::kReadWrite});
  pratt_ = memory_.add_region("pratt", 72 * 1024,
                              RegionPolicy{Access::kRead, Access::kReadWrite});
  key_region_ = memory_.add_region("key", key_.size(), policy::kKey);
  app_ = memory_.add_region("app_ram", app_ram_bytes, policy::kAppRam);
  store_ = memory_.add_region("measurement_store", store_bytes,
                              policy::kMeasurementStore);

  fill_image(memory_, kernel_, /*tag=*/0x73654c34u);  // "seL4"
  fill_image(memory_, pratt_, /*tag=*/0x50724174u);   // "PrAt"
  memory_.provision(key_region_, 0, key_);
  kernel_digest_ = crypto::Hash::digest(
      crypto::HashAlgo::kSha256, memory_.view(kernel_, /*privileged=*/true));
  pratt_digest_ = crypto::Hash::digest(
      crypto::HashAlgo::kSha256, memory_.view(pratt_, /*privileged=*/true));

  // HYDRA: PrAtt is the initial user-space process at top priority; all
  // other processes are spawned by it at strictly lower priorities.
  processes_.push_back(Process{"pratt", 255, /*spawned_by_pratt=*/false});
}

void HydraArch::secure_boot() {
  const Bytes kd = crypto::Hash::digest(
      crypto::HashAlgo::kSha256, memory_.view(kernel_, /*privileged=*/true));
  const Bytes pd = crypto::Hash::digest(
      crypto::HashAlgo::kSha256, memory_.view(pratt_, /*privileged=*/true));
  if (!equal(kd, kernel_digest_)) {
    throw SecurityViolation("secure boot: seL4 kernel image digest mismatch");
  }
  if (!equal(pd, pratt_digest_)) {
    throw SecurityViolation("secure boot: PrAtt image digest mismatch");
  }
  booted_ = true;
}

void HydraArch::corrupt_pratt_image() {
  Bytes b = memory_.read(pratt_, 0, 1, /*privileged=*/true);
  b[0] ^= 0xff;
  memory_.write(pratt_, 0, b, /*privileged=*/true);
  booted_ = false;
}

void HydraArch::spawn_process(std::string name, int priority) {
  if (priority >= 255) {
    throw SecurityViolation(
        "HYDRA: user processes must run below PrAtt's priority");
  }
  processes_.push_back(Process{std::move(name), priority,
                               /*spawned_by_pratt=*/true});
}

const std::string& HydraArch::name() const {
  static const std::string kName = "HYDRA";
  return kName;
}

void HydraArch::pre_protected_check() const {
  if (!booted_) {
    throw SecurityViolation(
        "HYDRA: secure boot has not validated the kernel and PrAtt images");
  }
}

}  // namespace erasmus::hw
