#include "hw/memory.h"

namespace erasmus::hw {

RegionId DeviceMemory::add_region(std::string name, size_t size,
                                  RegionPolicy policy) {
  regions_.push_back(Region{std::move(name), Bytes(size, 0), policy});
  return regions_.size() - 1;
}

const DeviceMemory::Region& DeviceMemory::region_at(RegionId id) const {
  if (id >= regions_.size()) {
    throw std::out_of_range("DeviceMemory: bad region id");
  }
  return regions_[id];
}

void DeviceMemory::check(const Region& r, bool privileged, bool write,
                         size_t offset, size_t len) const {
  if (offset + len > r.data.size()) {
    throw AccessViolation("DeviceMemory: out-of-bounds access to region '" +
                          r.name + "'");
  }
  const Access granted = privileged ? r.policy.privileged
                                    : r.policy.unprivileged;
  const bool ok = write ? (granted == Access::kReadWrite)
                        : (granted != Access::kNone);
  if (!ok) {
    throw AccessViolation(std::string("DeviceMemory: ") +
                          (write ? "write" : "read") + " to region '" +
                          r.name + "' denied for " +
                          (privileged ? "privileged" : "unprivileged") +
                          " code");
  }
}

Bytes DeviceMemory::read(RegionId region, size_t offset, size_t len,
                         bool privileged) const {
  const Region& r = region_at(region);
  check(r, privileged, /*write=*/false, offset, len);
  return Bytes(r.data.begin() + offset, r.data.begin() + offset + len);
}

void DeviceMemory::write(RegionId region, size_t offset, ByteView data,
                         bool privileged) {
  if (region >= regions_.size()) {
    throw std::out_of_range("DeviceMemory: bad region id");
  }
  Region& r = regions_[region];
  check(r, privileged, /*write=*/true, offset, data.size());
  std::copy(data.begin(), data.end(), r.data.begin() + offset);
}

void DeviceMemory::provision(RegionId region, size_t offset, ByteView data) {
  if (region >= regions_.size()) {
    throw std::out_of_range("DeviceMemory: bad region id");
  }
  Region& r = regions_[region];
  if (offset + data.size() > r.data.size()) {
    throw AccessViolation("DeviceMemory: provision out of bounds in region '" +
                          r.name + "'");
  }
  std::copy(data.begin(), data.end(), r.data.begin() + offset);
}

ByteView DeviceMemory::view(RegionId region, bool privileged) const {
  const Region& r = region_at(region);
  check(r, privileged, /*write=*/false, 0, r.data.size());
  return ByteView(r.data);
}

size_t DeviceMemory::region_size(RegionId region) const {
  return region_at(region).data.size();
}

const std::string& DeviceMemory::region_name(RegionId region) const {
  return region_at(region).name;
}

size_t DeviceMemory::total_size() const {
  size_t total = 0;
  for (const auto& r : regions_) total += r.data.size();
  return total;
}

}  // namespace erasmus::hw
