// Attestation-executable size model (paper Table 1).
//
// The paper compiles its ROM-resident C code with msp430-gcc (SMART+) and
// builds PrAtt against the seL4 libraries (HYDRA), then reports executable
// sizes per MAC construction for on-demand attestation vs. ERASMUS. We
// cannot run msp430-gcc here, so the model is a component inventory
// calibrated to the paper's reported totals:
//
//   size = base + mac_code + (on-demand ? request_auth_code : timer_code)
//
// The inventory preserves every relationship the paper highlights:
//   * ERASMUS needs slightly LESS ROM than on-demand on SMART+ (verifier
//     authentication code is dropped; a small timer hook is added);
//   * ERASMUS is ~1% LARGER on HYDRA (the extra timer *driver* outweighs the
//     dropped auth code in the seL4 build);
//   * BLAKE2s code is much larger than SHA-256 code (unrolled G-function);
//   * the HYDRA image is dominated by the seL4 kernel + libraries.
#pragma once

#include <optional>
#include <string>

#include "crypto/mac.h"

namespace erasmus::hw {

enum class ArchKind { kSmartPlus, kHydra };
enum class AttestMode { kOnDemand, kErasmus };

std::string to_string(ArchKind arch);
std::string to_string(AttestMode mode);

/// Component inventory for one architecture, in KB.
struct CodeSizeModel {
  double base_kb = 0;          // protocol glue, measurement loop, (HYDRA: seL4)
  double request_auth_kb = 0;  // verifier-request MAC check + freshness
  double timer_kb = 0;         // scheduling hook (SMART+) / timer driver (HYDRA)
  double mac_sha1_kb = 0;      // 0 => not built for this architecture
  double mac_sha256_kb = 0;
  double mac_blake2s_kb = 0;

  /// KB of MAC code for `algo`; nullopt if the paper does not report it.
  std::optional<double> mac_kb(crypto::MacAlgo algo) const;

  /// Total executable size; nullopt when the (arch, algo) cell is "-" in
  /// Table 1 (HMAC-SHA1 on HYDRA).
  std::optional<double> executable_kb(AttestMode mode,
                                      crypto::MacAlgo algo) const;

  static const CodeSizeModel& for_arch(ArchKind arch);
};

}  // namespace erasmus::hw
