// Hardware timer peripheral.
//
// Models omsp_timerA (SMART+) / EPIT (HYDRA): a one-shot compare timer that
// raises an interrupt after a programmed delay. ERASMUS uses it to trigger
// self-measurements autonomously. For irregular scheduling (paper §3.5) the
// compare value must be *read-protected* so resident malware cannot learn
// when the next measurement fires; the model enforces that.
#pragma once

#include <functional>
#include <optional>
#include <stdexcept>

#include "sim/event_queue.h"

namespace erasmus::hw {

class HwTimer {
 public:
  /// `compare_readable`: whether ordinary software may read the remaining
  /// time. Must be false when irregular scheduling is in use (§3.5).
  explicit HwTimer(sim::EventQueue& queue, bool compare_readable = false)
      : queue_(queue), compare_readable_(compare_readable) {}

  ~HwTimer() { cancel(); }

  HwTimer(const HwTimer&) = delete;
  HwTimer& operator=(const HwTimer&) = delete;

  /// Programs the timer to fire `delay` from now, replacing any pending
  /// programming. The callback runs in interrupt context (event handler).
  void arm(sim::Duration delay, std::function<void()> isr) {
    cancel();
    deadline_ = queue_.now() + delay;
    pending_ = queue_.schedule_at(*deadline_, [this, isr = std::move(isr)] {
      pending_.reset();
      deadline_.reset();
      isr();
    });
  }

  /// Disarms the timer; a pending interrupt is dropped.
  void cancel() {
    if (pending_) {
      queue_.cancel(*pending_);
      pending_.reset();
      deadline_.reset();
    }
  }

  bool armed() const { return pending_.has_value(); }

  /// Remaining time until the interrupt, as ordinary software would read the
  /// compare register. Throws when the register is read-protected, which is
  /// exactly what stops schedule-probing malware (§3.5).
  sim::Duration remaining_unprivileged() const {
    if (!compare_readable_) {
      throw std::logic_error("HwTimer: compare register is read-protected");
    }
    return remaining_privileged();
  }

  /// Remaining time as seen from inside the protected attestation code.
  sim::Duration remaining_privileged() const {
    if (!deadline_) return sim::Duration(0);
    return *deadline_ - queue_.now();
  }

 private:
  sim::EventQueue& queue_;
  bool compare_readable_;
  std::optional<sim::EventId> pending_;
  std::optional<sim::Time> deadline_;
};

}  // namespace erasmus::hw
