#include "hw/synthesis.h"

namespace erasmus::hw {

SynthesisReport unmodified_msp430() { return SynthesisReport{579, 1731}; }

const std::vector<SynthesisComponent>& smartplus_additions() {
  // Component split of the +76 registers / +238 LUTs the paper measures.
  // The RROC dominates the register cost (a 64-bit counter register); the
  // memory-backbone access-control comparators dominate the LUT cost.
  static const std::vector<SynthesisComponent> kAdditions = {
      {"rroc_64bit_counter", {64, 70}},
      {"membackbone_access_control", {8, 130}},
      {"rom_atomic_exec_guard", {4, 38}},
  };
  return kAdditions;
}

SynthesisReport modified_msp430() {
  SynthesisReport total = unmodified_msp430();
  for (const auto& c : smartplus_additions()) {
    total.registers += c.cost.registers;
    total.luts += c.cost.luts;
  }
  return total;
}

double register_overhead_pct() {
  const auto base = unmodified_msp430();
  const auto mod = modified_msp430();
  return 100.0 * (mod.registers - base.registers) / base.registers;
}

double lut_overhead_pct() {
  const auto base = unmodified_msp430();
  const auto mod = modified_msp430();
  return 100.0 * (mod.luts - base.luts) / base.luts;
}

}  // namespace erasmus::hw
