#include "hw/code_size.h"

namespace erasmus::hw {

std::string to_string(ArchKind arch) {
  return arch == ArchKind::kSmartPlus ? "SMART+" : "HYDRA";
}

std::string to_string(AttestMode mode) {
  return mode == AttestMode::kOnDemand ? "On-Demand" : "ERASMUS";
}

std::optional<double> CodeSizeModel::mac_kb(crypto::MacAlgo algo) const {
  double v = 0;
  switch (algo) {
    case crypto::MacAlgo::kHmacSha1:
      v = mac_sha1_kb;
      break;
    case crypto::MacAlgo::kHmacSha256:
      v = mac_sha256_kb;
      break;
    case crypto::MacAlgo::kKeyedBlake2s:
      v = mac_blake2s_kb;
      break;
  }
  if (v == 0) return std::nullopt;
  return v;
}

std::optional<double> CodeSizeModel::executable_kb(
    AttestMode mode, crypto::MacAlgo algo) const {
  const auto mac = mac_kb(algo);
  if (!mac) return std::nullopt;
  const double variant =
      (mode == AttestMode::kOnDemand) ? request_auth_kb : timer_kb;
  return base_kb + *mac + variant;
}

const CodeSizeModel& CodeSizeModel::for_arch(ArchKind arch) {
  // Calibrated so the totals reproduce the paper's Table 1 exactly:
  //   SMART+ : HMAC-SHA1 4.9/4.7, HMAC-SHA256 5.1/4.9, BLAKE2S 28.9/28.7 KB
  //   HYDRA  : HMAC-SHA256 231.96/233.84, BLAKE2S 239.29/241.17 KB
  static const CodeSizeModel kSmartPlus{
      /*base_kb=*/1.20,
      /*request_auth_kb=*/0.45,
      /*timer_kb=*/0.25,
      /*mac_sha1_kb=*/3.25,
      /*mac_sha256_kb=*/3.45,
      /*mac_blake2s_kb=*/27.25,
  };
  static const CodeSizeModel kHydra{
      /*base_kb=*/227.54,  // seL4 kernel + seL4utils/vka/vspace/bench + glue
      /*request_auth_kb=*/0.82,
      /*timer_kb=*/2.70,   // EPIT timer driver (the "~1% overhead" source)
      /*mac_sha1_kb=*/0,   // "-" in Table 1
      /*mac_sha256_kb=*/3.60,
      /*mac_blake2s_kb=*/10.93,
  };
  return arch == ArchKind::kSmartPlus ? kSmartPlus : kHydra;
}

}  // namespace erasmus::hw
