#include "hw/factory.h"

#include <stdexcept>

#include "hw/trustlite.h"

namespace erasmus::hw {

const char* to_string(ArchKind kind) {
  switch (kind) {
    case ArchKind::kSmartPlus: return "smartplus";
    case ArchKind::kHydra: return "hydra";
    case ArchKind::kTrustLite: return "trustlite";
  }
  return "?";
}

ArchKind arch_kind_from_string(std::string_view name) {
  if (name == "smartplus" || name == "smart+") return ArchKind::kSmartPlus;
  if (name == "hydra") return ArchKind::kHydra;
  if (name == "trustlite" || name == "tytan") return ArchKind::kTrustLite;
  throw std::invalid_argument("unknown architecture '" + std::string(name) +
                              "' (expected smartplus, hydra or trustlite)");
}

BuiltArch make_arch(ArchKind kind, Bytes key, size_t app_ram_bytes,
                    size_t store_bytes, size_t rom_bytes) {
  BuiltArch built;
  switch (kind) {
    case ArchKind::kSmartPlus: {
      auto arch = std::make_unique<SmartPlusArch>(std::move(key), rom_bytes,
                                                  app_ram_bytes, store_bytes);
      built.app_region = arch->app_region();
      built.store_region = arch->store_region();
      built.arch = std::move(arch);
      break;
    }
    case ArchKind::kHydra: {
      auto arch = std::make_unique<HydraArch>(std::move(key), app_ram_bytes,
                                              store_bytes);
      arch->secure_boot();
      built.app_region = arch->app_region();
      built.store_region = arch->store_region();
      built.arch = std::move(arch);
      break;
    }
    case ArchKind::kTrustLite: {
      auto arch = std::make_unique<TrustLiteArch>(std::move(key),
                                                  app_ram_bytes, store_bytes);
      arch->lock_rules();
      built.app_region = arch->app_region();
      built.store_region = arch->store_region();
      built.arch = std::move(arch);
      break;
    }
  }
  return built;
}

}  // namespace erasmus::hw
