// TrustLite / TyTAN security-architecture model.
//
// The paper (§2): TrustLite "differs from SMART in two ways: (1) interrupts
// are allowed and handled securely by the CPU Exception Engine, and (2)
// access control rules can be programmed using an Execution-Aware Memory
// Protection Unit (EA-MPU)." TyTAN adds real-time guarantees and dynamic
// configuration. The paper claims ERASMUS "should be equally applicable" to
// these architectures -- this model substantiates the claim: it exposes the
// same SecurityArch interface the prover uses, so the entire ERASMUS stack
// runs unchanged on it (see tests/test_trustlite.cpp).
//
// Model specifics:
//   * The EA-MPU is a programmable rule table: (executing trustlet ->
//     region -> access). Rules are programmed at boot ("trustlet load
//     time") and then LOCKED -- runtime reprogramming throws, which is what
//     stops malware from granting itself key access.
//   * Interrupts during measurement are permitted (the exception engine
//     saves/clears state), so the architecture reports
//     interrupts_allowed_during_measurement() = true.
#pragma once

#include <map>

#include "hw/arch.h"

namespace erasmus::hw {

class TrustLiteArch final : public SecurityArch {
 public:
  /// Trustlet identifiers for the rule table.
  enum class Trustlet : uint8_t {
    kAttestation = 1,  // the ERASMUS measurement trustlet
    kApplication = 2,  // ordinary software (and malware)
  };

  TrustLiteArch(Bytes key, size_t app_ram_bytes, size_t store_bytes);

  /// Programs one EA-MPU rule. Only callable before lock_rules().
  void program_rule(Trustlet who, RegionId region, Access access);
  /// Locks the rule table (end of secure boot). Irreversible.
  void lock_rules();
  bool rules_locked() const { return locked_; }

  /// Access granted to `who` for `region` under the programmed rules.
  Access rule_for(Trustlet who, RegionId region) const;

  const std::string& name() const override;
  bool interrupts_allowed_during_measurement() const override {
    return true;  // CPU Exception Engine handles interrupts securely
  }
  DeviceMemory& memory() override { return memory_; }
  const DeviceMemory& memory() const override { return memory_; }

  RegionId code_region() const { return code_; }
  RegionId key_region() const { return key_region_; }
  RegionId app_region() const { return app_; }
  RegionId store_region() const { return store_; }

 protected:
  void pre_protected_check() const override;

 private:
  DeviceMemory memory_;
  RegionId code_;
  RegionId key_region_;
  RegionId app_;
  RegionId store_;
  std::map<std::pair<uint8_t, RegionId>, Access> rules_;
  bool locked_ = false;
};

}  // namespace erasmus::hw
