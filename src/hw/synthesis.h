// FPGA synthesis cost model (paper §4.1, "Hardware Cost").
//
// The paper synthesises its modified OpenMSP430 core with Xilinx ISE 14.7
// and reports that ERASMUS (like on-demand SMART+) needs ~13% more registers
// (655 vs 579) and ~14% more look-up tables (1969 vs 1731) than the
// unmodified core; ERASMUS and on-demand use the *same* amount of hardware.
// We reproduce the inventory with a component breakdown so ablations can ask
// "what does the RROC alone cost?".
#pragma once

#include <string>
#include <vector>

namespace erasmus::hw {

struct SynthesisReport {
  int registers = 0;
  int luts = 0;
};

struct SynthesisComponent {
  std::string name;
  SynthesisReport cost;
};

/// Unmodified OpenMSP430 core, per the paper: 579 registers, 1731 LUTs.
SynthesisReport unmodified_msp430();

/// Additional hardware for SMART+/ERASMUS, component by component:
/// memory-backbone access-control mods, 64-bit RROC register, ROM
/// atomic-execution guard. (Hardware timers are pre-existing, per the
/// paper: "hardware timers are not considered additional cost".)
const std::vector<SynthesisComponent>& smartplus_additions();

/// Full modified core (unmodified + all additions): 655 regs, 1969 LUTs.
/// Identical for ERASMUS and on-demand attestation, as the paper reports.
SynthesisReport modified_msp430();

/// Overheads relative to the unmodified core, in percent.
double register_overhead_pct();
double lut_overhead_pct();

}  // namespace erasmus::hw
