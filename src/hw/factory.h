// Architecture factory: build any supported security architecture behind
// the common SecurityArch interface.
//
// The paper evaluates ERASMUS on SMART+ (MSP430) and HYDRA (ARM/seL4) and
// claims applicability to TrustLite/TyTAN; the fleet layer must therefore
// provision *mixed* populations. ArchKind names a concrete architecture,
// make_arch() constructs it fully booted (HYDRA's secure boot run,
// TrustLite's EA-MPU rules locked) so a freshly built device is ready for
// its first protected-mode measurement, and BuiltArch carries the two
// region handles the ERASMUS core needs -- attested app memory and the
// unprotected measurement store -- which each architecture exposes under a
// different concrete type.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "hw/arch.h"

namespace erasmus::hw {

enum class ArchKind : uint8_t {
  kSmartPlus,  // SMART+ on OpenMSP430: ROM code + hard-wired access rules
  kHydra,      // HYDRA on I.MX6: seL4 + PrAtt, secure boot
  kTrustLite,  // TrustLite/TyTAN: EA-MPU rule table, locked at boot
};

/// Canonical lower-case name ("smartplus", "hydra", "trustlite").
const char* to_string(ArchKind kind);

/// Inverse of to_string; also accepts the paper spellings "smart+",
/// "tytan". Throws std::invalid_argument on anything else.
ArchKind arch_kind_from_string(std::string_view name);

/// A constructed architecture plus the region handles the ERASMUS stack
/// needs. The concrete type is erased behind SecurityArch.
struct BuiltArch {
  std::unique_ptr<SecurityArch> arch;
  RegionId app_region{};
  RegionId store_region{};
};

/// Builds a ready-to-measure architecture of `kind`: HYDRA is secure-booted
/// and TrustLite's rule table is locked before this returns. `rom_bytes`
/// only applies to SMART+ (HYDRA/TrustLite fix their own image sizes).
BuiltArch make_arch(ArchKind kind, Bytes key, size_t app_ram_bytes,
                    size_t store_bytes, size_t rom_bytes = 8 * 1024);

}  // namespace erasmus::hw
