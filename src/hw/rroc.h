// RROC: Reliable Read-Only Clock.
//
// SMART+ (and therefore ERASMUS) requires a clock that software cannot
// modify. On the OpenMSP430 implementation it is a 64-bit register
// incremented every cycle with the write-enable wire physically removed; on
// HYDRA it is the GPT counter plus clock code private to the attestation
// process. We model it as a tick counter derived from virtual time.
//
// §3.4 of the paper describes the attack enabled by a *writable* clock:
// malware skews the counter so its dwell interval is covered by a
// measurement taken before it arrived. To let tests and benches demonstrate
// that attack, the model can be built with the write line intact
// (kWritableForAttackDemo); production configuration rejects all writes.
#pragma once

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace erasmus::hw {

class Rroc {
 public:
  enum class WriteLine {
    kRemoved,             // production: hardware write-enable wire cut
    kWritableForAttackDemo,  // deliberately vulnerable, for §3.4 experiments
  };

  /// `tick` is the clock granularity; the paper's protocol timestamps are
  /// seconds (Fig. 3 shows a UNIX-time-like value).
  Rroc(const sim::EventQueue& clock, sim::Duration tick,
       WriteLine write_line = WriteLine::kRemoved)
      : clock_(clock), tick_(tick), write_line_(write_line) {}

  /// Current counter value (virtual time / tick, plus any attack skew).
  uint64_t read() const {
    const uint64_t raw = clock_.now().ns() / tick_.ns();
    return static_cast<uint64_t>(static_cast<int64_t>(raw) + skew_ticks_);
  }

  /// Attempts to overwrite the counter, as §3.4's malware would. Returns
  /// false (no effect) when the write line is removed; applies the skew and
  /// returns true on the deliberately vulnerable configuration.
  bool try_write(uint64_t new_value) {
    if (write_line_ == WriteLine::kRemoved) return false;
    const uint64_t raw = clock_.now().ns() / tick_.ns();
    skew_ticks_ = static_cast<int64_t>(new_value) - static_cast<int64_t>(raw);
    return true;
  }

  sim::Duration tick() const { return tick_; }
  bool write_protected() const {
    return write_line_ == WriteLine::kRemoved;
  }

  /// Converts a counter value back to virtual time (for verifier-side math).
  sim::Time tick_to_time(uint64_t ticks) const {
    return sim::Time(ticks * tick_.ns());
  }

 private:
  const sim::EventQueue& clock_;
  sim::Duration tick_;
  WriteLine write_line_;
  int64_t skew_ticks_ = 0;
};

}  // namespace erasmus::hw
