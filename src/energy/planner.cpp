#include "energy/planner.h"

#include <algorithm>
#include <cmath>

#include "attest/qoa.h"

namespace erasmus::energy {

namespace {

// Representative wire sizes (overlay/wire.h frames + attest protocol
// payloads). The model only needs them to be the right order of magnitude
// relative to each other; the runtime meter charges actual frame sizes.
constexpr double kFloodBytes = 32.0;
constexpr double kRequestBytes = 24.0;
constexpr double kScopedBytes = 48.0;

double report_bytes(const FleetModel& fleet, const Mission& mission,
                    sim::Duration tm) {
  // A report carries min(k, what the store holds) records: a long T_M
  // produces few measurements per collection interval, so its reports are
  // SHORT -- raising T_M shrinks the radio bill too, not just the CPU one.
  double records = static_cast<double>(fleet.k);
  if (!tm.is_zero()) {
    records = std::min(
        records, std::ceil(mission.round_interval.to_seconds() /
                           tm.to_seconds()));
  }
  records = std::max(1.0, records);
  return 20.0 + records * static_cast<double>(fleet.record_bytes);
}

/// Probability one report survives the round trip (request down the tree,
/// report back up) without any retry.
double single_trip_success(const Mission& mission, double mean_hops) {
  const double per_hop = std::clamp(1.0 - mission.loss, 0.0, 1.0);
  return std::pow(per_hop, 2.0 * (mean_hops + 1.0));
}

}  // namespace

const char* to_string(BackendChoice b) {
  switch (b) {
    case BackendChoice::kDirect: return "direct";
    case BackendChoice::kOverlay: return "overlay";
    case BackendChoice::kScoped: return "scoped";
  }
  return "?";
}

double predict_reach(const FleetModel& fleet, const Mission& mission,
                     BackendChoice backend) {
  if (backend == BackendChoice::kDirect) return 1.0;
  const double p1 = single_trip_success(mission, fleet.mean_hops);
  // One retry (the runner default): a session fails only when both the
  // flood attempt and its retry miss.
  return std::clamp(1.0 - (1.0 - p1) * (1.0 - p1), 0.0, 1.0);
}

sim::Energy predict_device_energy(const FleetModel& fleet,
                                  const Mission& mission, sim::Duration tm,
                                  BackendChoice backend) {
  const CostModel cost = CostModel::for_device(
      fleet.profile, profile_for(fleet.arch), fleet.algo,
      fleet.attested_bytes);
  const sim::Duration horizon =
      mission.round_interval * mission.rounds;
  const uint64_t measurements = tm.is_zero() ? 0 : horizon / tm;

  const double rpt = report_bytes(fleet, mission, tm);
  double tx_bytes_per_round = 0.0;
  double rx_bytes_per_round = 0.0;
  if (backend == BackendChoice::kDirect) {
    rx_bytes_per_round = kRequestBytes;
    tx_bytes_per_round = rpt;
  } else {
    // Flood discovery: re-broadcast once (the radio keys once per
    // broadcast), hear each neighbour's re-flood; reports cross
    // mean_hops relays, so the average device also forwards mean_hops
    // reports per round.
    tx_bytes_per_round = kFloodBytes + rpt * (1.0 + fleet.mean_hops);
    rx_bytes_per_round =
        kFloodBytes * fleet.mean_degree + rpt * fleet.mean_hops;
    const double p_fail =
        1.0 - single_trip_success(mission, fleet.mean_hops);
    if (backend == BackendChoice::kOverlay) {
      // A failed session re-floods: the whole per-round radio bill again,
      // for the failed fraction of the fleet.
      tx_bytes_per_round *= 1.0 + p_fail;
      rx_bytes_per_round *= 1.0 + p_fail;
    } else {
      // Scoped retry: a source-routed unicast down the cached path and
      // the report back up -- per-hop frames, no flood.
      const double hops = fleet.mean_hops + 1.0;
      tx_bytes_per_round += p_fail * hops * (kScopedBytes + rpt);
      rx_bytes_per_round += p_fail * hops * (kScopedBytes + rpt);
    }
  }

  sim::Energy total = from_nanojoules(cost.measurement_nj) *
                      static_cast<double>(measurements);
  total += from_nanojoules(cost.sleep_nj_per_s) * horizon.to_seconds();
  const double rounds = static_cast<double>(mission.rounds);
  total += from_nanojoules(cost.tx_nj_per_byte) *
           (tx_bytes_per_round * rounds);
  total += from_nanojoules(cost.rx_nj_per_byte) *
           (rx_bytes_per_round * rounds);
  return total;
}

double predict_qoa_per_joule(const FleetModel& fleet, const Mission& mission,
                             sim::Duration tm, BackendChoice backend) {
  const double joules =
      predict_device_energy(fleet, mission, tm, backend).joules();
  if (joules <= 0.0) return 0.0;
  const double p = attest::detection_prob_regular(mission.dwell, tm);
  const double qoa =
      static_cast<double>(mission.rounds) *
      predict_reach(fleet, mission, backend) * p;
  return qoa / joules;
}

Decision plan(const FleetModel& fleet, const Mission& mission,
              obs::TraceRecorder* trace) {
  Decision d;
  std::string reasons;
  const auto add_reason = [&reasons](const char* r) {
    if (!reasons.empty()) reasons += '|';
    reasons += r;
  };

  // Backend: infrastructure unlocks the direct backhaul; a lossy field
  // deployment wants retries that do not re-flood.
  if (mission.infrastructure) {
    d.backend = BackendChoice::kDirect;
    add_reason("backend_direct_infrastructure");
  } else if (mission.loss > 0.02) {
    d.backend = BackendChoice::kScoped;
    add_reason("backend_scoped_lossy");
  } else {
    d.backend = BackendChoice::kOverlay;
    add_reason("backend_overlay_field");
  }

  // Window: AIMD adaptation manages relay-queue CONGESTION, and congestion
  // needs a fleet big enough to swamp the store-and-forward buffers. It is
  // not free energy-wise -- a small adaptive window dispatches a round as
  // many batches, and every batch is another swarm-wide flood -- so a
  // small fleet keeps the single-flood default window even on a lossy
  // medium (loss is the retry machinery's job, not the window's).
  if (d.backend != BackendChoice::kDirect && fleet.devices > 64) {
    d.adaptive_window = true;
    add_reason("window_adaptive_fleet");
  } else {
    add_reason("window_default");
  }

  // T_M: QoA/J peaks at tm = dwell (see header). Clamp into the sane
  // range, then walk tm up geometrically while the mission budget is
  // exceeded -- fewer measurements is the only knob that scales the bill.
  const sim::Duration floor = sim::Duration::minutes(1);
  sim::Duration tm = mission.dwell;
  if (tm < floor) {
    tm = floor;
    add_reason("tm_clamped_floor");
  } else if (tm > mission.round_interval) {
    tm = mission.round_interval;
    add_reason("tm_clamped_interval");
  } else {
    add_reason("tm_matched_dwell");
  }

  const uint64_t budget_nj = to_nanojoules(mission.device_budget);
  if (budget_nj > 0) {
    bool raised = false;
    while (to_nanojoules(predict_device_energy(fleet, mission, tm,
                                               d.backend)) > budget_nj &&
           tm < mission.round_interval) {
      tm = std::min(mission.round_interval,
                    sim::Duration(tm.ns() + tm.ns() / 4));
      raised = true;
    }
    if (raised) add_reason("tm_raised_for_budget");
    if (to_nanojoules(predict_device_energy(fleet, mission, tm,
                                            d.backend)) > budget_nj) {
      add_reason("budget_infeasible");
    }
  }

  d.tm = tm;
  d.detection_prob = attest::detection_prob_regular(mission.dwell, tm);
  d.predicted_device_energy =
      predict_device_energy(fleet, mission, tm, d.backend);
  d.predicted_qoa_per_joule =
      predict_qoa_per_joule(fleet, mission, tm, d.backend);
  d.reasons = std::move(reasons);

  if (trace && trace->enabled(obs::Subsystem::kEnergy)) {
    trace->instant(
        obs::Subsystem::kEnergy, sim::Time::zero(), "planner_decision",
        {{"tm_s", tm.to_seconds()},
         {"backend", to_string(d.backend)},
         {"adaptive_window", static_cast<uint64_t>(d.adaptive_window)},
         {"detection_prob", d.detection_prob},
         {"device_mj", d.predicted_device_energy.millijoules()},
         {"qoa_per_joule", d.predicted_qoa_per_joule},
         {"reasons", d.reasons}});
  }
  return d;
}

}  // namespace erasmus::energy
