#include "energy/meter.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace erasmus::energy {

const sim::EnergyProfile& profile_for(hw::ArchKind kind) {
  static const sim::EnergyProfile smart = sim::EnergyProfile::msp430();
  static const sim::EnergyProfile hydra = sim::EnergyProfile::imx6();
  static const sim::EnergyProfile trustlite = sim::EnergyProfile::trustlite();
  switch (kind) {
    case hw::ArchKind::kSmartPlus: return smart;
    case hw::ArchKind::kHydra: return hydra;
    case hw::ArchKind::kTrustLite: return trustlite;
  }
  return smart;
}

uint64_t to_nanojoules(sim::Energy e) {
  const double nj = e.microjoules * 1e3;
  if (!(nj > 0.0)) return 0;  // negatives and NaN clamp to zero
  if (nj >= static_cast<double>(std::numeric_limits<uint64_t>::max())) {
    return std::numeric_limits<uint64_t>::max();
  }
  return static_cast<uint64_t>(std::llround(nj));
}

sim::Energy from_nanojoules(uint64_t nj) {
  return sim::Energy{static_cast<double>(nj) / 1e3};
}

CostModel CostModel::for_device(const sim::DeviceProfile& profile,
                                const sim::EnergyProfile& energy,
                                crypto::MacAlgo algo,
                                uint64_t attested_bytes) {
  CostModel m;
  m.measurement_nj = to_nanojoules(
      energy.active_energy(profile.measurement_time(algo, attested_bytes)));
  m.tx_nj_per_byte = to_nanojoules(energy.tx_energy_per_byte());
  m.rx_nj_per_byte = to_nanojoules(energy.rx_energy_per_byte());
  m.sleep_nj_per_s = to_nanojoules(
      energy.sleep_energy(sim::Duration::seconds(1)));
  return m;
}

namespace {
uint64_t sat_add(uint64_t a, uint64_t b) {
  const uint64_t sum = a + b;
  return sum < a ? std::numeric_limits<uint64_t>::max() : sum;
}
}  // namespace

bool DeviceMeter::charge(uint64_t nj, uint64_t& bucket, sim::Time at) {
  if (dark_) return false;
  bucket = sat_add(bucket, nj);
  if (capacity_nj_ != 0 && spent_nj() >= capacity_nj_) {
    dark_ = true;
    dark_at_ = at;
    return true;
  }
  return false;
}

bool DeviceMeter::charge_measurement(sim::Time at) {
  return charge(cost_.measurement_nj, cpu_nj_, at);
}

bool DeviceMeter::charge_cpu(uint64_t nj, sim::Time at) {
  return charge(nj, cpu_nj_, at);
}

bool DeviceMeter::charge_tx(size_t bytes, sim::Time at) {
  return charge(cost_.tx_nj_per_byte * static_cast<uint64_t>(bytes), tx_nj_,
                at);
}

bool DeviceMeter::charge_rx(size_t bytes, sim::Time at) {
  return charge(cost_.rx_nj_per_byte * static_cast<uint64_t>(bytes), rx_nj_,
                at);
}

bool DeviceMeter::charge_sleep(sim::Duration d, sim::Time at) {
  // Integer ns * nJ/s with the division folded in to keep sub-second
  // intervals exact enough (nJ resolution) without double round-trips.
  const uint64_t nj =
      static_cast<uint64_t>(static_cast<double>(cost_.sleep_nj_per_s) *
                            d.to_seconds());
  return charge(nj, sleep_nj_, at);
}

double DeviceMeter::remaining_fraction() const {
  if (capacity_nj_ == 0) return 1.0;
  if (spent_nj() >= capacity_nj_) return 0.0;
  return 1.0 - static_cast<double>(spent_nj()) /
                   static_cast<double>(capacity_nj_);
}

DeviceMeter& FleetMeter::device(size_t id) {
  if (id >= meters_.size()) {
    throw std::out_of_range("FleetMeter: device id " + std::to_string(id) +
                            " >= fleet size " +
                            std::to_string(meters_.size()));
  }
  return meters_[id];
}

const DeviceMeter& FleetMeter::device(size_t id) const {
  return const_cast<FleetMeter*>(this)->device(id);
}

size_t FleetMeter::dark_count() const {
  size_t n = 0;
  for (const auto& m : meters_) n += m.dark();
  return n;
}

FleetMeter::Totals FleetMeter::totals() const {
  // Sum the integer ledgers first; one float conversion per bucket keeps
  // the doubles a pure function of the integer state.
  uint64_t cpu = 0, tx = 0, rx = 0, sleep = 0;
  for (const auto& m : meters_) {
    cpu = sat_add(cpu, m.cpu_nj());
    tx = sat_add(tx, m.tx_nj());
    rx = sat_add(rx, m.rx_nj());
    sleep = sat_add(sleep, m.sleep_nj());
  }
  Totals t;
  t.cpu_mj = static_cast<double>(cpu) / 1e6;
  t.tx_mj = static_cast<double>(tx) / 1e6;
  t.rx_mj = static_cast<double>(rx) / 1e6;
  t.sleep_mj = static_cast<double>(sleep) / 1e6;
  return t;
}

sim::Energy FleetMeter::spent_total() const {
  const Totals t = totals();
  return sim::Energy{t.spent_mj() * 1e3};
}

}  // namespace erasmus::energy
