// QoA-per-joule planning: choose (T_M, window policy, collection backend)
// to maximize detection quality per joule under a fleet energy budget.
//
// analysis/qoa_planner.h answers "cheapest (T_M, T_C) meeting a detection
// GOAL"; this planner answers the field operator's dual question: "given
// the deployment I actually have (radio loss, relay depth, battery), which
// runtime configuration buys the most QoA per joule?" -- and its Decision
// plugs straight into ShardedFleetConfig, subsuming the static path.
//
// The shape of the optimum: per-mission energy is E(tm) = a/tm + b
// (measurements every tm cost a/tm; radio + sleep are ~tm-independent),
// and detection probability for a dwell D is p(tm) = min(1, D/tm). So
// QoA/J rises with tm while tm <= D (same detections, fewer joules) and
// falls for tm > D (p and the measurement term shrink together, the
// constant b keeps dividing) -- the maximum sits exactly at tm = D. A
// fixed grid that brackets the dwell loses on both sides, which is what
// bench_energy_qoa demonstrates.
#pragma once

#include <string>

#include "energy/meter.h"
#include "obs/trace.h"

namespace erasmus::energy {

/// What the fleet is made of (one representative class; heterogeneous
/// fleets plan per class).
struct FleetModel {
  size_t devices = 50;
  hw::ArchKind arch = hw::ArchKind::kSmartPlus;
  sim::DeviceProfile profile = sim::DeviceProfile::msp430_8mhz();
  crypto::MacAlgo algo = crypto::MacAlgo::kHmacSha256;
  uint64_t attested_bytes = 2 * 1024;
  size_t k = 8;             // records per collection
  size_t record_bytes = 73;
  /// Radio neighbourhood of the deployment: how many neighbours hear a
  /// transmission, and the expected relay depth to the collection root.
  double mean_degree = 8.0;
  double mean_hops = 3.0;
};

/// What the mission demands and what it pays with.
struct Mission {
  /// Dwell time of the malware that must be caught (sets the QoA term).
  sim::Duration dwell = sim::Duration::minutes(10);
  sim::Duration round_interval = sim::Duration::minutes(30);
  size_t rounds = 4;
  /// Per-hop datagram loss of the radio environment.
  double loss = 0.0;
  /// Direct backhaul to every device (kDirect is only an option when the
  /// deployment has infrastructure; a field swarm does not).
  bool infrastructure = false;
  /// Per-device energy for the whole mission; 0 microjoules = mains.
  sim::Energy device_budget{};
};

enum class BackendChoice : uint8_t { kDirect, kOverlay, kScoped };
const char* to_string(BackendChoice b);

struct Decision {
  sim::Duration tm = sim::Duration::minutes(10);
  BackendChoice backend = BackendChoice::kOverlay;
  bool adaptive_window = false;
  /// Model predictions for the chosen configuration.
  double detection_prob = 0.0;
  sim::Energy predicted_device_energy;  // whole mission, one device
  double predicted_qoa_per_joule = 0.0;
  /// '|'-separated reason codes ("tm_matched_dwell|backend_scoped_lossy").
  std::string reasons;
};

/// Predicted per-device mission energy for an explicit (tm, backend) --
/// the model the planner searches; exposed for tests and benches.
sim::Energy predict_device_energy(const FleetModel& fleet,
                                  const Mission& mission, sim::Duration tm,
                                  BackendChoice backend);

/// Predicted per-round collection reach (fraction of the fleet whose
/// report survives the radio) under `backend`.
double predict_reach(const FleetModel& fleet, const Mission& mission,
                     BackendChoice backend);

/// Predicted mission QoA (reach-weighted detection prob, summed over
/// rounds) divided by predicted per-device joules.
double predict_qoa_per_joule(const FleetModel& fleet, const Mission& mission,
                             sim::Duration tm, BackendChoice backend);

/// Picks backend, T_M and window policy maximizing predicted QoA/J subject
/// to the mission budget. When `trace` is non-null the decision is emitted
/// as a kEnergy "planner_decision" instant with its reason codes.
Decision plan(const FleetModel& fleet, const Mission& mission,
              obs::TraceRecorder* trace = nullptr);

}  // namespace erasmus::energy
