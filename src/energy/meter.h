// Live fleet energy metering: per-device battery budgets charged during
// simulation.
//
// The paper's pitch is attestation cheap enough for unattended,
// battery-bound swarms -- self-measurement exists precisely because energy,
// not CPU, is the binding constraint (§3.1). sim/energy.h quantifies that
// burden analytically for offline planning; this module charges it LIVE:
//
//  * CPU   -- one CostModel::measurement_nj per self-measurement, charged
//             from the prover's measurement observer (shard-side);
//  * radio -- tx/rx nanojoules per payload byte, charged from the
//             net::Network energy tap and the kDirect served-session
//             accounting (coordinator-side);
//  * sleep -- the idle floor, charged per round interval at barriers.
//
// A device whose DeviceMeter exhausts its capacity goes DARK: the runner
// stops its prover, the link filter mutes its radio, relays drop its
// queued reports -- a new failure mode that feeds back into the adaptive
// window, scoped-route repair and QoA.
//
// Determinism: a DeviceMeter is written by its own shard thread between
// barriers (measurement charges) and by the coordinator only while every
// shard is parked (radio, sleep, the dark sweep) -- the same alternating
// discipline as prover state, so fleet totals are byte-identical at any
// thread count. Accumulation is integer nanojoules with saturating adds:
// no float-order drift, no overflow UB.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/mac.h"
#include "hw/factory.h"
#include "sim/device_profile.h"
#include "sim/energy.h"
#include "sim/time.h"

namespace erasmus::energy {

/// The canonical per-architecture energy profile -- ONE table shared by
/// the analytical ledger (sim::attestation_energy callers) and the runtime
/// meter, so the two models cannot drift.
const sim::EnergyProfile& profile_for(hw::ArchKind kind);

/// Saturating sim::Energy -> integer nanojoules (negatives clamp to 0).
uint64_t to_nanojoules(sim::Energy e);
sim::Energy from_nanojoules(uint64_t nj);

/// Per-device charge table in nanojoules, derived from the device's cost
/// profile (cycles/byte) and its architecture's EnergyProfile -- the same
/// inputs the analytic ledger uses.
struct CostModel {
  uint64_t measurement_nj = 0;   // one full self-measurement (CPU)
  uint64_t tx_nj_per_byte = 0;   // radio transmit, per payload byte
  uint64_t rx_nj_per_byte = 0;   // radio receive, per payload byte
  uint64_t sleep_nj_per_s = 0;   // idle floor

  static CostModel for_device(const sim::DeviceProfile& profile,
                              const sim::EnergyProfile& energy,
                              crypto::MacAlgo algo, uint64_t attested_bytes);
};

/// One device's battery. capacity_nj == 0 means metered but unlimited
/// (mains powered): every charge is recorded, dark() never fires.
class DeviceMeter {
 public:
  DeviceMeter() = default;
  DeviceMeter(CostModel cost, uint64_t capacity_nj)
      : cost_(cost), capacity_nj_(capacity_nj) {}

  /// Charges return true exactly when this charge newly exhausted the
  /// budget (the go-dark transition). A dark meter absorbs nothing: the
  /// MCU has browned out, it neither hashes nor keys the radio.
  bool charge_measurement(sim::Time at);
  /// Arbitrary CPU work in nanojoules (e.g. a cluster head's combine:
  /// hashing absorbed evidence plus one MAC), in the cpu bucket.
  bool charge_cpu(uint64_t nj, sim::Time at);
  bool charge_tx(size_t bytes, sim::Time at);
  bool charge_rx(size_t bytes, sim::Time at);
  bool charge_sleep(sim::Duration d, sim::Time at);

  bool dark() const { return dark_; }
  /// The instant of the exhausting charge (valid once dark()).
  sim::Time dark_at() const { return dark_at_; }

  uint64_t capacity_nj() const { return capacity_nj_; }
  uint64_t spent_nj() const { return cpu_nj_ + tx_nj_ + rx_nj_ + sleep_nj_; }
  uint64_t cpu_nj() const { return cpu_nj_; }
  uint64_t tx_nj() const { return tx_nj_; }
  uint64_t rx_nj() const { return rx_nj_; }
  uint64_t sleep_nj() const { return sleep_nj_; }
  /// Battery left as a fraction; 1.0 when unlimited.
  double remaining_fraction() const;
  const CostModel& cost() const { return cost_; }

 private:
  bool charge(uint64_t nj, uint64_t& bucket, sim::Time at);

  CostModel cost_;
  uint64_t capacity_nj_ = 0;
  uint64_t cpu_nj_ = 0;
  uint64_t tx_nj_ = 0;
  uint64_t rx_nj_ = 0;
  uint64_t sleep_nj_ = 0;
  bool dark_ = false;
  sim::Time dark_at_;
};

/// The fleet's meters, indexed by device id. Owned by the runner; shard
/// threads only ever touch their own devices' meters (see file comment).
class FleetMeter {
 public:
  explicit FleetMeter(std::vector<DeviceMeter> meters)
      : meters_(std::move(meters)) {}

  size_t size() const { return meters_.size(); }
  /// Bounds-checked (throws std::out_of_range).
  DeviceMeter& device(size_t id);
  const DeviceMeter& device(size_t id) const;
  bool dark(size_t id) const { return device(id).dark(); }
  size_t dark_count() const;

  struct Totals {
    double cpu_mj = 0.0;
    double tx_mj = 0.0;
    double rx_mj = 0.0;
    double sleep_mj = 0.0;
    double spent_mj() const { return cpu_mj + tx_mj + rx_mj + sleep_mj; }
  };
  /// Fleet-wide totals, summed in device-id order from the integer
  /// per-device ledgers (deterministic at any thread count).
  Totals totals() const;
  sim::Energy spent_total() const;

 private:
  std::vector<DeviceMeter> meters_;
};

}  // namespace erasmus::energy
