// ShardedFleetRunner: a multi-threaded, deterministic large-fleet driver.
//
// swarm::Fleet runs every device on one EventQueue -- fine for 10 devices,
// hopeless for 1000+. This runner expands a swarm::FleetPlan (possibly
// heterogeneous: mixed architectures, mixed T_M, mixed policies) and
// partitions the fleet into `threads` shards, each with its OWN
// sim::EventQueue, advancing all shards in parallel between
// collection-round barriers.
//
// Determinism argument (asserted by tests at 1/2/8 threads):
//  * Between barriers devices are independent: a prover's events touch only
//    its own arch/store/timer, and its construction (spec, keys, schedule,
//    stagger offset) is a pure function of (plan, global id) -- never of
//    the shard layout. So any partition executes the same per-device event
//    sequence.
//  * Everything cross-device -- mobility queries (whose lazy trajectory
//    extension consumes a shared RNG and is therefore query-order
//    sensitive), collection, verification, churn, metrics -- happens
//    single-threaded on the coordinating thread at barrier instants, in
//    global device-id order.
// Hence metrics output is bit-for-bit identical for a fixed seed regardless
// of thread count, and `threads` is purely a wall-clock knob.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "attest/directory.h"
#include "attest/service.h"
#include "attest/transport.h"
#include "scenario/metrics.h"
#include "swarm/provision.h"

namespace erasmus::scenario {

struct ShardedFleetConfig {
  /// What to build: N per-device specs, mobility, stagger policy.
  swarm::FleetPlan plan;
  /// Shard/worker count. 1 runs everything on the calling thread.
  size_t threads = 1;
  size_t rounds = 6;
  sim::Duration round_interval = sim::Duration::minutes(30);
  /// Collection root: the verifier is co-located with this device.
  swarm::DeviceId root = 0;
  /// Records requested per device per collection.
  size_t k = 8;
};

struct FleetRoundResult {
  size_t round = 0;
  sim::Time at;
  size_t present = 0;    // devices currently part of the fleet (churn)
  size_t reachable = 0;  // present with a multi-hop path to root
  size_t healthy = 0;    // reachable, verified trustworthy and fresh
  size_t flagged = 0;    // reachable but NOT healthy: infection/tampering
};

class ShardedFleetRunner {
 public:
  explicit ShardedFleetRunner(ShardedFleetConfig config);

  size_t size() const { return stacks_.size(); }
  /// Bounds-checked: throws std::out_of_range naming the offending id.
  attest::Prover& prover(swarm::DeviceId id);
  /// The spec device `id` was built from (same bounds check).
  const swarm::DeviceSpec& spec(swarm::DeviceId id) const;
  /// The shared verifier-side state: one record per device, judged through
  /// the AttestationService at collection barriers.
  const attest::DeviceDirectory& directory() const { return directory_; }
  swarm::RandomWaypointMobility& mobility() { return mobility_; }

  /// Schedules `fn(prover)` at virtual time `at` on the owning shard's
  /// queue (e.g. malware injection). Call before run().
  void schedule_on_device(swarm::DeviceId id, sim::Time at,
                          std::function<void(attest::Prover&)> fn);

  /// Invoked single-threaded at each barrier, before that round's
  /// collection -- the hook for churn and other cross-device scripting.
  void set_round_hook(
      std::function<void(ShardedFleetRunner&, size_t round, sim::Time at)>
          hook) {
    round_hook_ = std::move(hook);
  }

  /// Churn control (only call before run() or from the round hook).
  /// Leaving stops the prover's measurement timer and removes the device
  /// from topology/collection; rejoining restarts its schedule.
  void set_present(swarm::DeviceId id, bool present);
  bool present(swarm::DeviceId id) const { return present_.at(id); }
  size_t present_count() const;

  /// Starts all provers, advances shard queues in parallel to each round
  /// barrier, collects single-threaded, and emits one "rounds" row per
  /// round into `sink` (begin_run/end_run are the caller's job).
  std::vector<FleetRoundResult> run(MetricsSink& sink);

 private:
  struct Shard {
    std::unique_ptr<sim::EventQueue> queue;
  };

  size_t shard_of(swarm::DeviceId id) const { return id % shards_.size(); }
  void advance_all(sim::Time barrier);
  FleetRoundResult collect_round(size_t round, sim::Time at);

  ShardedFleetConfig config_;
  std::vector<swarm::DeviceSpec> specs_;  // indexed by global DeviceId
  swarm::RandomWaypointMobility mobility_;
  std::vector<Shard> shards_;
  std::vector<swarm::DeviceStack> stacks_;  // indexed by global DeviceId
  std::vector<bool> present_;
  std::function<void(ShardedFleetRunner&, size_t, sim::Time)> round_hook_;
  bool started_ = false;

  // Verifier side: one shared service over the whole fleet. Collection at
  // barriers is single-threaded on the coordinator, whose own queue (the
  // timeout clock) is advanced to each barrier instant -- sessions over
  // the DirectTransport complete synchronously, so thread count never
  // enters the picture and metrics stay byte-identical.
  sim::EventQueue coordinator_queue_;
  attest::DeviceDirectory directory_;
  attest::DirectTransport transport_;
  std::unique_ptr<attest::AttestationService> service_;
};

}  // namespace erasmus::scenario
