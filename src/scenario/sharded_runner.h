// ShardedFleetRunner: a multi-threaded, deterministic large-fleet driver.
//
// swarm::Fleet runs every device on one EventQueue -- fine for 10 devices,
// hopeless for 1000+. This runner expands a swarm::FleetPlan (possibly
// heterogeneous: mixed architectures, mixed T_M, mixed policies) and
// partitions the fleet into `threads` shards, each with its OWN
// sim::EventQueue, advancing all shards in parallel between
// collection-round barriers.
//
// Determinism argument (asserted by tests at 1/2/8 threads; the full
// write-up is docs/DETERMINISM.md):
//  * Between barriers devices are independent: a prover's events touch only
//    its own arch/store/timer, and its construction (spec, keys, schedule,
//    stagger offset) is a pure function of (plan, global id) -- never of
//    the shard layout. So any partition executes the same per-device event
//    sequence.
//  * Everything cross-device -- mobility queries (whose lazy trajectory
//    extension consumes a shared RNG and is therefore query-order
//    sensitive), collection, verification, churn, metrics -- runs at
//    barrier instants under coordinator control, sequenced in global
//    device-id order.
//  * Barrier-phase work that IS parallel (the kDirect batch serve, the
//    batched report verify, mobility's adjacency rows) is restricted to
//    order-free shapes: pure functions into disjoint per-item slots, or
//    SPSC channels (net/shard_channels.h) whose drain order is a pure
//    function of (domain, sequence) -- with domain counts fixed by the
//    fleet, never by the thread count. Results are then folded back in
//    sequentially, in the exact order the serial code produced them.
// Hence metrics output is bit-for-bit identical for a fixed seed regardless
// of thread count, and `threads` is purely a wall-clock knob.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "adversary/adversary.h"
#include "attest/directory.h"
#include "attest/service.h"
#include "attest/transport.h"
#include "common/parallel.h"
#include "energy/meter.h"
#include "net/network.h"
#include "net/shard_channels.h"
#include "obs/phase.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "overlay/relay_node.h"
#include "overlay/relay_transport.h"
#include "scenario/metrics.h"
#include "swarm/provision.h"

namespace erasmus::scenario {

/// How collection rounds reach the fleet at barriers.
enum class CollectionBackend : uint8_t {
  /// In-process DirectTransport: every tree-reachable device is served
  /// synchronously at the barrier instant (reachability judged from a
  /// topology snapshot).
  kDirect,
  /// The packet-level multi-hop overlay: the AttestationService floods
  /// over a simulated radio network and reports hop back store-and-forward
  /// through overlay::RelayNodes; reachability is whatever the flood
  /// actually harvested before the round deadline (§6).
  kOverlay,
};

/// Knobs of the kOverlay backend (ignored under kDirect).
struct OverlayBackendConfig {
  uint8_t ttl = 8;                 // flood depth bound
  size_t queue_depth = 16;         // per-relay store-and-forward buffer
  sim::Duration forward_spacing = sim::Duration::millis(1);
  sim::Duration net_latency = sim::Duration::millis(2);
  double net_loss = 0.0;
  /// Per-attempt response timeout (floored by the service at twice the
  /// transport's multi-hop estimate) and per-session retry budget.
  sim::Duration response_timeout = sim::Duration::seconds(10);
  int max_retries = 1;
  /// Listening window per collection barrier; sessions still unresolved
  /// here are aborted (device unreached this round). Keep well under the
  /// round interval.
  sim::Duration collect_deadline = sim::Duration::seconds(30);
  /// Retry over the cached parent path of the device's last report (a
  /// source-routed unicast) instead of re-flooding, while the route is
  /// younger than route_ttl. Emits the per-round "scoped_retry" table.
  bool scoped_retries = false;
  sim::Duration route_ttl = sim::Duration::seconds(30);
  /// Hierarchical collection (src/aggregate): elect cluster heads per
  /// flood; heads absorb child reports and uplink ONE authenticated
  /// AggregateFrame (bitmap of healthy + hash-tree root). The runner
  /// verifies each head's MAC against the directory, closes healthy
  /// members' sessions and demand-fetches cleared ones; emits the
  /// per-round "aggregate" table. The combine_charge hook is installed
  /// by the runner (per-head meter); anything set here is overwritten.
  overlay::AggregationConfig aggregation;
};

/// The service's dispatch window at collection barriers: the backend
/// default (fleet-sized under both backends), a fixed size, or
/// AIMD-adaptive (attest/window.h). Parsed from the scenario knob
/// `window=default|fleet|adaptive|N`.
struct WindowSpec {
  enum class Mode : uint8_t { kBackendDefault, kFleet, kFixed, kAdaptive };
  Mode mode = Mode::kBackendDefault;
  size_t fixed = 64;  // kFixed only

  /// Throws std::invalid_argument on anything but the grammar above.
  static WindowSpec parse(const std::string& text);
  /// The service window config for a `fleet`-device deployment under
  /// `backend`.
  attest::WindowConfig resolve(CollectionBackend backend,
                               size_t fleet) const;
};

struct ShardedFleetConfig {
  /// What to build: N per-device specs, mobility, stagger policy.
  swarm::FleetPlan plan;
  /// Shard/worker count. 1 runs everything on the calling thread.
  size_t threads = 1;
  size_t rounds = 6;
  sim::Duration round_interval = sim::Duration::minutes(30);
  /// Collection root: the verifier is co-located with this device.
  swarm::DeviceId root = 0;
  /// Records requested per device per collection.
  size_t k = 8;
  CollectionBackend backend = CollectionBackend::kDirect;
  OverlayBackendConfig overlay;
  /// Dispatch window policy at collection barriers (both backends).
  WindowSpec window;
  /// Live energy metering (energy/meter.h). When metered, every device
  /// carries a DeviceMeter charged for CPU self-measurements (shard-side),
  /// radio bytes (coordinator-side, via the overlay network's energy tap or
  /// the kDirect served-session accounting) and the per-round sleep floor.
  /// A device that exhausts `battery` goes DARK: its prover stops, the
  /// link filter mutes its radio, its relay queue is purged, and it is
  /// excluded from kDirect topology -- it counts as present but
  /// unreachable. battery == 0 with metered == true means metered but
  /// unlimited (mains powered): full joule accounting, dark() never fires.
  struct EnergyBudgetConfig {
    bool metered = false;
    sim::Energy battery{};  // per-device capacity; 0 = unlimited
  } energy;
  /// Adversary engine (src/adversary): roaming malware itineraries,
  /// compromised relays, and scheduled partition/loss fault injection.
  /// Mode kOff with empty fault lists leaves every code path -- and every
  /// byte of output -- exactly as without the engine.
  adversary::EngineConfig adversary;
};

struct FleetRoundResult {
  size_t round = 0;
  sim::Time at;
  size_t present = 0;    // devices currently part of the fleet (churn)
  size_t reachable = 0;  // kDirect: multi-hop path to root exists;
                         // kOverlay: a report actually made it back
  size_t healthy = 0;    // reachable, verified trustworthy and fresh
  size_t flagged = 0;    // reachable but NOT healthy: infection/tampering
  size_t dark = 0;       // battery-exhausted devices to date (metered only)
};

class ShardedFleetRunner {
 public:
  explicit ShardedFleetRunner(ShardedFleetConfig config);

  size_t size() const { return stacks_.size(); }
  /// Bounds-checked: throws std::out_of_range naming the offending id.
  attest::Prover& prover(swarm::DeviceId id);
  /// The spec device `id` was built from (same bounds check).
  const swarm::DeviceSpec& spec(swarm::DeviceId id) const;
  /// The shared verifier-side state: one record per device, judged through
  /// the AttestationService at collection barriers.
  const attest::DeviceDirectory& directory() const { return directory_; }
  swarm::RandomWaypointMobility& mobility() { return mobility_; }

  /// Schedules `fn(prover)` at virtual time `at` on the owning shard's
  /// queue (e.g. malware injection). Call before run().
  void schedule_on_device(swarm::DeviceId id, sim::Time at,
                          std::function<void(attest::Prover&)> fn);

  /// Invoked single-threaded at each barrier, before that round's
  /// collection -- the hook for churn and other cross-device scripting.
  void set_round_hook(
      std::function<void(ShardedFleetRunner&, size_t round, sim::Time at)>
          hook) {
    round_hook_ = std::move(hook);
  }

  /// Churn control (only call before run() or from the round hook).
  /// Leaving stops the prover's measurement timer and removes the device
  /// from topology/collection; rejoining restarts its schedule.
  void set_present(swarm::DeviceId id, bool present);
  bool present(swarm::DeviceId id) const { return present_.at(id); }
  size_t present_count() const;

  /// Starts all provers, advances shard queues in parallel to each round
  /// barrier, collects single-threaded, and emits one "rounds" row per
  /// round into `sink` (begin_run/end_run are the caller's job).
  std::vector<FleetRoundResult> run(MetricsSink& sink);

  /// Cumulative overlay counters, summed over every relay node plus the
  /// transport (kOverlay only; per-round rows are emitted as deltas).
  struct OverlayTotals {
    uint64_t floods_seen = 0;
    uint64_t floods_forwarded = 0;
    uint64_t reports_relayed = 0;
    uint64_t reports_dropped = 0;
    uint64_t reports_orphaned = 0;
    uint64_t route_repairs = 0;
    uint64_t malformed_frames = 0;
    uint64_t duplicate_reports = 0;
    uint64_t stale_reports = 0;
    uint64_t scoped_sent = 0;       // transport: unicast retries launched
    uint64_t scoped_forwarded = 0;  // relays: scoped hops passed on
    uint64_t naks = 0;              // relays: broken-route notices raised
    // Hierarchical collection (zero with aggregation off):
    uint64_t heads_elected = 0;
    uint64_t reports_absorbed = 0;
    uint64_t aggregates_built = 0;
    uint64_t aggregates_relayed = 0;
    uint64_t aggregates_dark_purged = 0;
    uint64_t aggregates_received = 0;   // transport: accepted frames
    uint64_t duplicate_aggregates = 0;  // transport: dedup'd frames
    // Adversarial relay behaviour (zero without compromised relays):
    uint64_t dropped_adversarial = 0;    // relays: frames discarded on purpose
    uint64_t corrupted_adversarial = 0;  // relays: frames scribbled
    uint64_t sybil_injected = 0;         // relays: forged reports originated
    uint64_t spoofed_rejected = 0;       // transport: forged origins rejected
    std::vector<uint64_t> hops;  // transport hop histogram
  };
  OverlayTotals overlay_totals() const;
  const overlay::RelayTransport* relay_transport() const {
    return relay_transport_.get();
  }
  /// The overlay radio (kOverlay only, else nullptr) -- byte/drop
  /// accounting for benches.
  const net::Network* overlay_network() const { return overlay_net_.get(); }
  /// The verifier-side service (window trajectory, round stats).
  const attest::AttestationService& service() const { return *service_; }
  /// The runner's metrics registry: service/window/overlay instruments,
  /// snapshotted into the sink's "metrics"/"metrics_hist" tables per round.
  const obs::Registry& metrics() const { return metrics_; }
  /// The fleet's battery ledgers (nullptr when energy.metered is false) --
  /// joule totals and dark counts for scenarios and benches.
  const energy::FleetMeter* energy_meter() const {
    return energy_meter_.get();
  }
  /// The adversary engine (nullptr when adversary.mode is kOff and no
  /// fault events are scheduled) -- detection stats for scenarios/benches.
  const adversary::Engine* adversary_engine() const { return engine_.get(); }
  /// Wall-clock phase profile of run(): shard work vs barrier wait vs
  /// coordinator drain. Host-dependent -- report, never gate.
  const obs::PhaseProfiler& phases() const { return phases_; }

 private:
  struct Shard {
    std::unique_ptr<sim::EventQueue> queue;
  };

  /// Contiguous-block partition: device ids [0, n) split into
  /// shards_.size() nearly-equal runs (the first n % shards blocks get one
  /// extra device). Blocks, not modulo: per-device work correlates with id
  /// parity in mixed-T_M plans (cycle_tm alternates by id), so a modulo
  /// partition hands every shard the same heavy/light mix only by luck --
  /// blocks average it out. The partition is a pure function of (fleet
  /// size, shard count) and never leaks into any output: devices are built
  /// and collected in GLOBAL id order regardless of which shard owns them.
  size_t shard_of(swarm::DeviceId id) const;
  void advance_all(sim::Time barrier);
  FleetRoundResult collect_round(size_t round, sim::Time at);
  /// Per-round "window" row (both backends) and, with scoped retries on,
  /// the "scoped_retry" row -- emitted right after the round's collection.
  void emit_window_round(MetricsSink& sink, size_t round,
                         const overlay::RelayTransport::Stats& before);
  /// Connectivity predicate of the overlay radio at the coordinator's
  /// current instant (mobility + churn; the verifier rides on `root`).
  bool link_up(net::NodeId a, net::NodeId b);
  void build_overlay();
  void emit_overlay_round(MetricsSink& sink, size_t round,
                          const OverlayTotals& before);
  /// Verifier-side landing of one deduplicated aggregate frame: MAC
  /// verification against the HEAD's directory record (the transport is
  /// deliberately directory-free), then per-bit session resolution --
  /// healthy bits close sessions, cleared bits demand raw evidence.
  void on_aggregate(const aggregate::AggregateFrame& frame, uint8_t hops);
  /// Coordinator-side lifetime counters behind the per-round "aggregate"
  /// table (emitted as deltas, byte-identical at any thread count).
  struct AggregateCounters {
    uint64_t clusters = 0;       // authenticated frames accepted
    uint64_t members = 0;        // members those frames vouched for
    uint64_t healthy_bits = 0;   // sessions closed by a healthy bit
    uint64_t auth_failures = 0;  // bad head MAC (or out-of-range head)
  };
  void emit_aggregate_round(MetricsSink& sink, size_t round,
                            const AggregateCounters& before,
                            const overlay::RelayTransport::Stats&
                                transport_before);
  /// Snapshot of every registered instrument into the "metrics" table
  /// (histograms additionally into "metrics_hist", one row per bucket).
  void emit_metrics_round(MetricsSink& sink, size_t round);
  /// Mirrors the DirectTransport's channel drain counters into the
  /// "channels" obs counters (per-round deltas, kDirect batch serve only)
  /// and emits a kRunner "channel_drain" trace instant for the round.
  /// Domain count is fixed by the FLEET (never the thread count), so
  /// these values are byte-identical at 1/2/8 threads.
  void sync_channel_metrics(sim::Time at);
  /// Hooks each device's measurement observer: trace emission into its
  /// shard's buffer (kDevice category) and/or the meter's CPU charge. The
  /// observer runs shard-side and touches only shard-local state -- the
  /// lock-free discipline both TraceShard and DeviceMeter want.
  void attach_device_observers();
  /// Builds one DeviceMeter per device from its spec's cost profile
  /// (energy.metered only).
  void build_energy_meter();
  /// Is `id` an active collection participant? Present AND not dark.
  bool active(swarm::DeviceId id) const;
  /// Coordinator-side pass over the fleet: newly dark devices get their
  /// prover silenced (idempotent; shard-side transitions already stopped
  /// it) and a kEnergy "went_dark" trace instant at the exhausting
  /// charge's timestamp. Returns how many devices were newly swept.
  size_t sweep_dark();
  /// Per-round "energy" row (per-bucket mJ deltas, dark counts) plus the
  /// energy gauges/histogram snapshotted by emit_metrics_round.
  void emit_energy_round(MetricsSink& sink, size_t round);
  /// Builds the adversary engine (when configured) and schedules its
  /// itinerary legs on the owning shards plus fault events on the
  /// coordinator queue.
  void build_adversary();
  /// Per-round "adversary" row: campaign deltas (infections, migrations,
  /// evasions, captures, detections), current residency, the cumulative
  /// mean detection latency, and the round's adversarial relay losses.
  void emit_adversary_round(MetricsSink& sink, size_t round,
                            const OverlayTotals& before);

  ShardedFleetConfig config_;
  std::vector<swarm::DeviceSpec> specs_;  // indexed by global DeviceId
  swarm::RandomWaypointMobility mobility_;
  /// One persistent worker pool for EVERY parallel phase the runner owns:
  /// shard advances between barriers, the transport's domain-parallel
  /// collect serve, the service's batched verify and mobility's adjacency
  /// rows. Sized to the shard count (1 = all phases inline on the calling
  /// thread, same code path, zero synchronization).
  std::unique_ptr<common::ParallelExecutor> executor_;
  std::vector<Shard> shards_;
  std::vector<swarm::DeviceStack> stacks_;  // indexed by global DeviceId
  std::vector<bool> present_;
  /// Battery ledgers (energy.metered only). Shard threads write only their
  /// own devices' meters between barriers; the coordinator writes only
  /// while shards are parked (see energy/meter.h).
  std::unique_ptr<energy::FleetMeter> energy_meter_;
  std::vector<bool> swept_dark_;  // went-dark already traced/counted
  energy::FleetMeter::Totals last_energy_totals_;  // previous round's row
  size_t last_dark_ = 0;
  std::function<void(ShardedFleetRunner&, size_t, sim::Time)> round_hook_;
  bool started_ = false;
  /// Adversary engine (nullptr when inert). Planned at construction;
  /// shard-side hooks touch only per-device slots, coordinator hooks run
  /// at barriers -- see adversary/adversary.h for the determinism
  /// contract.
  std::unique_ptr<adversary::Engine> engine_;
  adversary::Engine::Snapshot last_adversary_;  // previous round's row

  // Verifier side: one shared service over the whole fleet. Collection at
  // barriers is single-threaded on the coordinator, whose own queue (the
  // timeout clock, and under kOverlay the radio network's clock) is
  // advanced while the shard queues are parked at the barrier -- so
  // thread count never enters the picture and metrics stay byte-identical.
  sim::EventQueue coordinator_queue_;
  attest::DeviceDirectory directory_;
  attest::DirectTransport direct_transport_;
  // kOverlay wiring: a radio network on the coordinator queue; node ids
  // are device ids, the verifier endpoint is node `fleet size`.
  std::unique_ptr<net::Network> overlay_net_;
  std::vector<std::unique_ptr<overlay::RelayNode>> relay_nodes_;
  std::unique_ptr<overlay::RelayTransport> relay_transport_;
  net::NodeId verifier_node_ = 0;
  AggregateCounters agg_counters_;
  std::unique_ptr<attest::AttestationService> service_;
  /// Sessions completed during the current overlay round (observer-fed;
  /// kDirect rounds use collect_now()'s synchronous return instead).
  std::vector<attest::AttestationService::SessionOutcome> round_outcomes_;

  /// Observability: the registry every subsystem registers into, the
  /// process-global flight recorder (nullptr = tracing off) and the
  /// wall-clock phase profile. All updates happen on the coordinator
  /// thread except shard-buffered kDevice events.
  obs::Registry metrics_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::PhaseProfiler phases_;

  /// Channel traffic instruments (kDirect batch serve only; all null
  /// otherwise) and the last mirrored cumulative counter values.
  struct {
    obs::Counter* frames_local = nullptr;
    obs::Counter* frames_cross = nullptr;
    obs::Counter* drains = nullptr;
  } channel_inst_;
  net::ShardChannels::Counters last_channel_;
};

}  // namespace erasmus::scenario
