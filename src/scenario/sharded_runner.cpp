#include "scenario/sharded_runner.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>

namespace erasmus::scenario {

using swarm::detail::throw_bad_device_id;

ShardedFleetRunner::ShardedFleetRunner(ShardedFleetConfig config)
    : config_(std::move(config)), specs_(config_.plan.expand()),
      mobility_([&] {
        swarm::MobilityConfig m = config_.plan.mobility;
        m.devices = config_.plan.devices();
        return m;
      }()) {
  if (config_.threads == 0) {
    throw std::invalid_argument("ShardedFleetRunner: threads must be >= 1");
  }
  if (specs_.empty()) {
    throw std::invalid_argument("ShardedFleetRunner: need >= 1 device");
  }
  if (config_.root >= specs_.size()) {
    throw std::invalid_argument("ShardedFleetRunner: root out of range");
  }
  shards_.resize(std::min(config_.threads, specs_.size()));
  for (auto& shard : shards_) {
    shard.queue = std::make_unique<sim::EventQueue>();
  }

  // Build in global id order: stack construction is partition-independent,
  // only the owning queue differs.
  stacks_.reserve(specs_.size());
  present_.assign(specs_.size(), true);
  for (swarm::DeviceId id = 0; id < specs_.size(); ++id) {
    stacks_.push_back(swarm::build_device_stack(*shards_[shard_of(id)].queue,
                                                specs_[id]));
    directory_.add(id, swarm::build_device_record(specs_[id], stacks_[id]));
    transport_.attach(id, *stacks_[id].prover);
  }
  attest::ServiceConfig sc;
  sc.keep_audit = false;  // million-device fleets aggregate via rows instead
  service_ = std::make_unique<attest::AttestationService>(
      coordinator_queue_, transport_, directory_, sc);
}

attest::Prover& ShardedFleetRunner::prover(swarm::DeviceId id) {
  if (id >= stacks_.size()) {
    throw_bad_device_id("ShardedFleetRunner::prover", id, stacks_.size());
  }
  return *stacks_[id].prover;
}

const swarm::DeviceSpec& ShardedFleetRunner::spec(swarm::DeviceId id) const {
  if (id >= specs_.size()) {
    throw_bad_device_id("ShardedFleetRunner::spec", id, specs_.size());
  }
  return specs_[id];
}

void ShardedFleetRunner::schedule_on_device(
    swarm::DeviceId id, sim::Time at,
    std::function<void(attest::Prover&)> fn) {
  attest::Prover& target = prover(id);
  shards_[shard_of(id)].queue->schedule_at(
      at, [&target, fn = std::move(fn)] { fn(target); });
}

void ShardedFleetRunner::set_present(swarm::DeviceId id, bool present) {
  if (id >= stacks_.size()) {
    throw_bad_device_id("ShardedFleetRunner::set_present", id, stacks_.size());
  }
  if (present_[id] == present) return;
  present_[id] = present;
  if (!started_) return;
  if (present) {
    // Rejoin: the schedule restarts one period from now, exactly as a
    // rebooted device's timer would.
    stacks_[id].prover->start();
  } else {
    stacks_[id].prover->stop();
  }
}

size_t ShardedFleetRunner::present_count() const {
  return static_cast<size_t>(
      std::count(present_.begin(), present_.end(), true));
}

void ShardedFleetRunner::advance_all(sim::Time barrier) {
  if (shards_.size() == 1) {
    shards_[0].queue->run_until(barrier);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(shards_.size() - 1);
  for (size_t s = 1; s < shards_.size(); ++s) {
    workers.emplace_back(
        [&shard = shards_[s], barrier] { shard.queue->run_until(barrier); });
  }
  shards_[0].queue->run_until(barrier);
  for (auto& w : workers) w.join();
}

FleetRoundResult ShardedFleetRunner::collect_round(size_t round,
                                                   sim::Time at) {
  // Single-threaded: mobility's lazy trajectory extension shares one RNG,
  // so it must only ever be queried here, in deterministic order.
  swarm::Topology topo = mobility_.snapshot(at);
  for (swarm::DeviceId id = 0; id < stacks_.size(); ++id) {
    if (present_[id]) continue;
    for (const swarm::DeviceId nb : topo.neighbors(id)) {
      topo.remove_edge(id, nb);
    }
  }
  const auto tree = topo.bfs_tree(config_.root);

  FleetRoundResult result;
  result.round = round;
  result.at = at;
  result.present = present_count();

  std::vector<attest::DeviceId> targets;
  targets.reserve(stacks_.size());
  for (swarm::DeviceId id = 0; id < stacks_.size(); ++id) {
    if (!present_[id] || !tree.parent[id].has_value()) continue;
    targets.push_back(id);
  }
  // The coordinator's own clock provides session timestamps/timeouts; over
  // the DirectTransport every session completes synchronously at `at`, in
  // global id order. run_until (not advance_to) so the cancelled timeout
  // entries the previous round left behind are reclaimed instead of
  // accumulating one per session per round for the runner's lifetime.
  coordinator_queue_.run_until(at);
  const auto outcomes =
      service_->collect_now(targets, static_cast<uint32_t>(config_.k));
  result.reachable = outcomes.size();
  for (const auto& outcome : outcomes) {
    const bool healthy = outcome.report.device_trustworthy() &&
                         outcome.report.freshness.has_value();
    if (healthy) {
      ++result.healthy;
    } else {
      ++result.flagged;
    }
  }
  return result;
}

std::vector<FleetRoundResult> ShardedFleetRunner::run(MetricsSink& sink) {
  if (started_) {
    throw std::logic_error("ShardedFleetRunner: run() called twice");
  }
  started_ = true;
  for (swarm::DeviceId id = 0; id < stacks_.size(); ++id) {
    if (!present_[id]) continue;
    if (config_.plan.staggered) {
      stacks_[id].prover->start(swarm::stagger_offset(
          swarm::nominal_tm(specs_[id]), id, stacks_.size()));
    } else {
      stacks_[id].prover->start();
    }
  }

  std::vector<FleetRoundResult> results;
  results.reserve(config_.rounds);
  for (size_t round = 1; round <= config_.rounds; ++round) {
    const sim::Time barrier =
        sim::Time::zero() + config_.round_interval * round;
    advance_all(barrier);
    if (round_hook_) round_hook_(*this, round, barrier);
    const FleetRoundResult r = collect_round(round, barrier);
    results.push_back(r);
    sink.row("rounds",
             {{"round", static_cast<uint64_t>(r.round)},
              {"t_min", static_cast<uint64_t>(r.at.ns() / 60'000'000'000ull)},
              {"present", static_cast<uint64_t>(r.present)},
              {"reachable", static_cast<uint64_t>(r.reachable)},
              {"healthy", static_cast<uint64_t>(r.healthy)},
              {"flagged", static_cast<uint64_t>(r.flagged)}});
  }
  return results;
}

}  // namespace erasmus::scenario
