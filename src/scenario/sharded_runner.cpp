#include "scenario/sharded_runner.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace erasmus::scenario {

using swarm::detail::throw_bad_device_id;

namespace {
// kDirect wire model: the direct backend bypasses the radio Network, so
// radio joules are charged from the served-session loop using the same
// per-message byte costs the energy::Planner's closed form assumes
// (request down, one k-record report up).
constexpr size_t kDirectRequestBytes = 24;
constexpr size_t kDirectReportHeaderBytes = 20;
constexpr size_t kDirectRecordBytes = 73;

// Virtual radio domains for the kDirect batch serve. A property of the
// FLEET, deliberately independent of the thread count: channel traffic
// counters must be byte-identical at 1/2/8 threads, so the partition can
// never follow the executor's width. 16 keeps the job pool wide enough
// for any shard count this runner targets.
constexpr size_t kVirtualDomains = 16;
}  // namespace

WindowSpec WindowSpec::parse(const std::string& text) {
  WindowSpec spec;
  if (text == "default") {
    spec.mode = Mode::kBackendDefault;
    return spec;
  }
  if (text == "fleet") {
    spec.mode = Mode::kFleet;
    return spec;
  }
  if (text == "adaptive") {
    spec.mode = Mode::kAdaptive;
    return spec;
  }
  // strtoull alone is too permissive: it sign-wraps "-5" and clamps
  // overflow to ULLONG_MAX, both of which must throw, not become an
  // effectively unbounded window.
  constexpr unsigned long long kMaxWindow = 1ull << 31;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() ||
      !std::isdigit(static_cast<unsigned char>(text.front())) ||
      end != text.c_str() + text.size() || parsed == 0 ||
      errno == ERANGE || parsed > kMaxWindow) {
    throw std::invalid_argument(
        "window: expected 'default', 'fleet', 'adaptive' or a positive "
        "integer (<= 2^31), got '" + text + "'");
  }
  spec.mode = Mode::kFixed;
  spec.fixed = static_cast<size_t>(parsed);
  return spec;
}

attest::WindowConfig WindowSpec::resolve(CollectionBackend backend,
                                         size_t fleet) const {
  attest::WindowConfig wc;
  switch (mode) {
    case Mode::kBackendDefault:
      // Both backends default to a fleet-sized window. Under kDirect every
      // session completes synchronously inside the dispatch loop, so the
      // window only bounds transient state -- and a fleet-wide batch lets
      // the batched serve/verify path fan the whole round out once instead
      // of in window-sized slices. kOverlay floods the whole swarm in one
      // batch as it always did.
      wc.fixed = fleet;
      break;
    case Mode::kFleet:
      wc.fixed = fleet;
      break;
    case Mode::kFixed:
      wc.fixed = fixed;
      break;
    case Mode::kAdaptive:
      wc.adaptive = true;
      // Let the controller discover up to a full-fleet window; the floor
      // keeps a loss burst from strangling the round.
      wc.ceiling = std::max<size_t>(fleet, wc.floor);
      break;
  }
  return wc;
}

ShardedFleetRunner::ShardedFleetRunner(ShardedFleetConfig config)
    : config_(std::move(config)), specs_(config_.plan.expand()),
      mobility_([&] {
        swarm::MobilityConfig m = config_.plan.mobility;
        m.devices = config_.plan.devices();
        return m;
      }()) {
  if (config_.threads == 0) {
    throw std::invalid_argument("ShardedFleetRunner: threads must be >= 1");
  }
  if (specs_.empty()) {
    throw std::invalid_argument("ShardedFleetRunner: need >= 1 device");
  }
  if (config_.root >= specs_.size()) {
    throw std::invalid_argument("ShardedFleetRunner: root out of range");
  }
  shards_.resize(std::min(config_.threads, specs_.size()));
  for (auto& shard : shards_) {
    shard.queue = std::make_unique<sim::EventQueue>();
  }
  // One pool for every parallel phase (shard advance, batch serve, batched
  // verify, adjacency rows). With one shard it degenerates to inline
  // execution on the calling thread.
  executor_ = std::make_unique<common::ParallelExecutor>(shards_.size());
  mobility_.set_executor(executor_.get());

  // Build in global id order: stack construction is partition-independent,
  // only the owning queue differs.
  stacks_.reserve(specs_.size());
  present_.assign(specs_.size(), true);
  for (swarm::DeviceId id = 0; id < specs_.size(); ++id) {
    stacks_.push_back(swarm::build_device_stack(*shards_[shard_of(id)].queue,
                                                specs_[id]));
    directory_.add(id, swarm::build_device_record(specs_[id], stacks_[id]));
    if (config_.backend == CollectionBackend::kDirect) {
      direct_transport_.attach(id, *stacks_[id].prover);
    }
  }

  if (config_.backend == CollectionBackend::kDirect) {
    // Shard-local radio domains: collect broadcasts are served
    // domain-parallel on the pool, responses crossing domains over SPSC
    // channels drained in deterministic (domain, sequence) order. The
    // domain count follows the fleet, never the thread count.
    direct_transport_.enable_batch_serve(
        *executor_, std::min(kVirtualDomains, specs_.size()), config_.root);
    channel_inst_.frames_local = &metrics_.counter("channels", "frames_local");
    channel_inst_.frames_cross = &metrics_.counter("channels", "frames_cross");
    channel_inst_.drains = &metrics_.counter("channels", "drains");
  }

  // The flight recorder is process-global (installed by the CLI's --trace
  // before the scenario runs) so scenario signatures stay unchanged.
  trace_ = obs::global_trace();
  if (trace_) trace_->attach_shards(shards_.size());
  build_adversary();
  if (config_.energy.metered) build_energy_meter();
  attach_device_observers();

  attest::ServiceConfig sc;
  sc.keep_audit = false;  // million-device fleets aggregate via rows instead
  sc.window = config_.window.resolve(config_.backend, specs_.size());
  sc.trace = trace_;
  sc.metrics = &metrics_;
  // Batched verifier-core crypto at collection barriers: responses a
  // broadcast loops back synchronously verify in one parallel pass
  // (grouped per MAC algorithm), byte-identical to inline verification.
  // Inert under kOverlay, whose responses arrive asynchronously.
  sc.verify_executor = executor_.get();
  attest::Transport* transport = &direct_transport_;
  if (config_.backend == CollectionBackend::kOverlay) {
    build_overlay();
    // Loss bursts ride the coordinator queue (the radio's clock): jump
    // the loss rate at burst start, restore the configured baseline at
    // burst end. The RNG stream is untouched, so the schedule is as
    // deterministic as a fixed rate.
    for (const adversary::LossBurst& burst : config_.adversary.loss_bursts) {
      coordinator_queue_.schedule_at(burst.at, [this, loss = burst.loss] {
        overlay_net_->set_loss_probability(loss);
      });
      coordinator_queue_.schedule_at(burst.at + burst.duration, [this] {
        overlay_net_->set_loss_probability(config_.overlay.net_loss);
      });
    }
    transport = relay_transport_.get();
    sc.response_timeout = config_.overlay.response_timeout;
    sc.max_retries = config_.overlay.max_retries;
  }
  service_ = std::make_unique<attest::AttestationService>(
      coordinator_queue_, *transport, directory_, sc);
  if (config_.backend == CollectionBackend::kOverlay) {
    service_->set_observer(
        [this](const attest::AttestationService::SessionOutcome& outcome) {
          round_outcomes_.push_back(outcome);
        });
  }
}

void ShardedFleetRunner::build_adversary() {
  const adversary::EngineConfig& ac = config_.adversary;
  if (ac.mode == adversary::Mode::kOff && ac.partitions.empty() &&
      ac.loss_bursts.empty()) {
    return;  // inert: no engine, no "adversary" rows, no extra code paths
  }
  const sim::Time horizon =
      sim::Time::zero() + config_.round_interval * config_.rounds;
  engine_ = std::make_unique<adversary::Engine>(
      ac, specs_, config_.plan.staggered, config_.root, horizon);
  engine_->set_trace(trace_);
  // Itinerary legs run on the owning device's shard queue -- the same
  // placement schedule_on_device uses -- so enter/leave interleave with
  // that device's measurements deterministically at any thread count.
  for (size_t i = 0; i < engine_->legs().size(); ++i) {
    const adversary::Leg& leg = engine_->legs()[i];
    attest::Prover* target = stacks_[leg.device].prover.get();
    sim::EventQueue& queue = *shards_[shard_of(leg.device)].queue;
    queue.schedule_at(leg.enter,
                      [this, i, target] { engine_->enter_leg(i, *target); });
    if (leg.leave <= horizon) {
      queue.schedule_at(
          leg.leave, [this, i, target] { engine_->leave_leg(i, *target); });
    }
  }
}

void ShardedFleetRunner::build_overlay() {
  overlay_net_ = std::make_unique<net::Network>(
      coordinator_queue_, config_.overlay.net_latency,
      config_.overlay.net_loss, config_.plan.key_seed());
  for (swarm::DeviceId id = 0; id < specs_.size(); ++id) {
    overlay_net_->add_node({});  // handler installed by the RelayNode
  }
  verifier_node_ = overlay_net_->add_node({});
  overlay_net_->set_link_filter(
      [this](net::NodeId a, net::NodeId b) { return link_up(a, b); });

  if (energy_meter_) {
    // Radio joules: tx once per physical transmission, rx per delivered
    // destination (Network's tap contract). The tap runs from coordinator
    // events only, while every shard queue is parked at the barrier. A
    // transition silences the device's prover on the spot -- shard queues
    // are parked, so touching the shard-owned prover is safe.
    overlay_net_->set_energy_tap(
        [this](net::NodeId node, size_t bytes, bool tx) {
          if (node == verifier_node_) return;  // mains-powered root
          energy::DeviceMeter& m = energy_meter_->device(node);
          const sim::Time now = coordinator_queue_.now();
          const bool out =
              tx ? m.charge_tx(bytes, now) : m.charge_rx(bytes, now);
          if (out) stacks_[node].prover->stop();
        });
  }

  overlay::RelayNodeConfig nc;
  nc.queue_depth = config_.overlay.queue_depth;
  nc.forward_spacing = config_.overlay.forward_spacing;
  nc.flood_memory = overlay::flood_memory_for(specs_.size());
  nc.trace = trace_;
  nc.metrics = &metrics_;
  nc.aggregation = config_.overlay.aggregation;
  relay_nodes_.reserve(specs_.size());
  for (swarm::DeviceId id = 0; id < specs_.size(); ++id) {
    if (energy_meter_) {
      nc.meter = &energy_meter_->device(id);
      if (nc.aggregation.enabled) {
        // Heads pay CPU for the combine: hashing the absorbed evidence
        // plus one MAC, costed as the device's self-measurement charge
        // scaled by bytes combined over bytes attested (same cycle/byte
        // model, different buffer). Floor of one nJ so a combine is
        // never free. Runs at flush time, coordinator-side.
        nc.aggregation.combine_charge = [this, id](uint64_t bytes,
                                                   sim::Time at) {
          energy::DeviceMeter& m = energy_meter_->device(id);
          const uint64_t attested =
              std::max<uint64_t>(1, stacks_[id].prover->attested_bytes());
          const uint64_t nj = std::max<uint64_t>(
              1, m.cost().measurement_nj * bytes / attested);
          if (m.charge_cpu(nj, at)) stacks_[id].prover->stop();
        };
      }
    }
    nc.compromise = {};
    if (engine_ && engine_->relay_compromised(id)) {
      if (config_.adversary.mode == adversary::Mode::kSybil) {
        nc.compromise.sybil_per_flood = config_.adversary.sybil_per_flood;
        // Forged origins live past the last real node id (fleet + verifier),
        // disjoint per compromised relay, so the transport rejects them by
        // range and the counts attribute cleanly.
        nc.compromise.sybil_origin_base = static_cast<net::NodeId>(
            specs_.size() + 1 + id * config_.adversary.sybil_per_flood);
      } else if (config_.adversary.corrupt_frames) {
        nc.compromise.corrupt_relayed = true;
      } else {
        nc.compromise.drop_relayed = true;
      }
    }
    relay_nodes_.push_back(std::make_unique<overlay::RelayNode>(
        coordinator_queue_, *overlay_net_, id, *stacks_[id].prover,
        specs_.size() + 1, nc));
    relay_nodes_.back()->set_link_probe(
        [this](net::NodeId a, net::NodeId b) { return link_up(a, b); });
  }

  overlay::RelayTransportConfig tc;
  tc.ttl = config_.overlay.ttl;
  tc.forward_spacing = config_.overlay.forward_spacing;
  tc.flood_memory = overlay::flood_memory_for(specs_.size());
  tc.scoped_retries = config_.overlay.scoped_retries;
  tc.route_ttl = config_.overlay.route_ttl;
  tc.trace = trace_;
  tc.metrics = &metrics_;
  tc.aggregate = config_.overlay.aggregation.enabled;
  relay_transport_ = std::make_unique<overlay::RelayTransport>(
      *overlay_net_, verifier_node_, specs_.size() + 1, tc);
  if (tc.aggregate) {
    relay_transport_->set_aggregate_receiver(
        [this](const aggregate::AggregateFrame& frame, uint8_t hops) {
          on_aggregate(frame, hops);
        });
  }
}

void ShardedFleetRunner::on_aggregate(const aggregate::AggregateFrame& frame,
                                      uint8_t hops) {
  // The transport deduplicated and parsed; authentication lands here,
  // where the directory lives. Node ids are device ids for the fleet,
  // and the verifier endpoint never heads a cluster.
  if (frame.head >= specs_.size()) {
    ++agg_counters_.auth_failures;
    return;
  }
  const attest::DeviceRecord& rec = directory_.record(frame.head);
  if (!aggregate::verify_aggregate(frame, rec.algo, rec.key)) {
    ++agg_counters_.auth_failures;
    if (trace_ && trace_->enabled(obs::Subsystem::kOverlay)) {
      trace_->instant(obs::Subsystem::kOverlay, coordinator_queue_.now(),
                      "aggregate_auth_fail",
                      {{"head", static_cast<uint64_t>(frame.head)},
                       {"flood", static_cast<uint64_t>(frame.flood)}});
    }
    return;
  }
  ++agg_counters_.clusters;
  agg_counters_.members += frame.members.size();
  for (size_t i = 0; i < frame.members.size(); ++i) {
    const net::NodeId member = frame.members[i];
    if (frame.healthy(i)) {
      // The head vouched for this member's digest: close its session
      // without its raw report ever crossing the field.
      if (service_->complete_aggregated(member)) {
        ++agg_counters_.healthy_bits;
      }
    } else {
      // Cleared bit: the head saw evidence it could not vouch for. Demand
      // the member's raw report over the per-device (scoped) path.
      service_->demand_fetch(member);
    }
  }
  (void)hops;  // already histogrammed by the transport
}

void ShardedFleetRunner::build_energy_meter() {
  const uint64_t capacity = energy::to_nanojoules(config_.energy.battery);
  std::vector<energy::DeviceMeter> meters;
  meters.reserve(specs_.size());
  for (swarm::DeviceId id = 0; id < specs_.size(); ++id) {
    meters.emplace_back(
        energy::CostModel::for_device(specs_[id].profile,
                                      energy::profile_for(specs_[id].arch),
                                      specs_[id].algo,
                                      stacks_[id].prover->attested_bytes()),
        capacity);
  }
  energy_meter_ = std::make_unique<energy::FleetMeter>(std::move(meters));
  swept_dark_.assign(specs_.size(), false);
}

void ShardedFleetRunner::attach_device_observers() {
  // shard(i) is nullptr when the kDevice category is filtered out: trace
  // emission is then never installed and the hot measurement path pays
  // nothing for it. A device's observer writes ONLY its own shard's trace
  // buffer and its own meter, from its own shard's thread -- the lock-free
  // discipline TraceShard and DeviceMeter both want.
  const bool tracing = trace_ && trace_->shard(0);
  if (!tracing && !energy_meter_ && !engine_) return;
  for (swarm::DeviceId id = 0; id < stacks_.size(); ++id) {
    obs::TraceShard* shard = tracing ? trace_->shard(shard_of(id)) : nullptr;
    energy::DeviceMeter* meter =
        energy_meter_ ? &energy_meter_->device(id) : nullptr;
    attest::Prover* prover = stacks_[id].prover.get();
    adversary::Engine* engine = engine_.get();
    const auto actor = static_cast<uint32_t>(id);
    prover->set_measurement_observer(
        [shard, meter, prover, engine, actor](sim::Time at,
                                              uint64_t t_ticks) {
          if (shard) {
            shard->emit({at, actor, obs::Subsystem::kDevice,
                         obs::TraceKind::kInstant, "measure",
                         {{"t", t_ticks}}});
          }
          // Resident malware is captured by this measurement (shard-side:
          // the engine only touches this device's slots).
          if (engine) engine->on_measurement(actor, at);
          // The measurement that empties the battery is the device's last:
          // stop the schedule shard-side, immediately. The coordinator's
          // barrier sweep handles the trace event and the dark count.
          if (meter && meter->charge_measurement(at)) prover->stop();
        });
  }
}

bool ShardedFleetRunner::active(swarm::DeviceId id) const {
  return present_[id] &&
         !(energy_meter_ && energy_meter_->device(id).dark());
}

size_t ShardedFleetRunner::sweep_dark() {
  if (!energy_meter_) return 0;
  size_t newly = 0;
  for (swarm::DeviceId id = 0; id < stacks_.size(); ++id) {
    const energy::DeviceMeter& m = energy_meter_->device(id);
    if (!m.dark() || swept_dark_[id]) continue;
    swept_dark_[id] = true;
    ++newly;
    stacks_[id].prover->stop();  // idempotent; shard side may have already
    if (trace_ && trace_->enabled(obs::Subsystem::kEnergy)) {
      // Timestamped with the exhausting charge's instant (possibly mid
      // shard phase); swept in device-id order at the barrier, so the
      // stream is deterministic at any thread count.
      trace_->instant(obs::Subsystem::kEnergy, m.dark_at(), "went_dark",
                      {{"device", static_cast<uint64_t>(id)},
                       {"spent_nj", m.spent_nj()}});
    }
  }
  return newly;
}

bool ShardedFleetRunner::link_up(net::NodeId a, net::NodeId b) {
  // Departed devices are radio-silent; the verifier is co-located with the
  // root device (same position, distance zero).
  const auto device = [this](net::NodeId n) {
    return n == verifier_node_ ? config_.root
                               : static_cast<swarm::DeviceId>(n);
  };
  // active() also mutes dark devices: a dead battery keys no radio. (An
  // in-flight frame addressed to a device that went dark after the send
  // admit is instead dropped by the RelayNode's dark gate.)
  if (a != verifier_node_ && !active(a)) return false;
  if (b != verifier_node_ && !active(b)) return false;
  const swarm::DeviceId da = device(a);
  const swarm::DeviceId db = device(b);
  if (da == db) return true;
  // Scheduled partitions veto the link before mobility is consulted. The
  // partition schedule is pure config, so the veto -- and therefore the
  // mobility RNG draw order -- stays deterministic at any thread count.
  if (engine_ && !engine_->link_allowed(da, db, coordinator_queue_.now())) {
    return false;
  }
  // Single-threaded invariant: the link filter only runs from coordinator
  // events (floods, relays), while every shard queue is parked at the
  // barrier -- so the shared mobility RNG is consumed in deterministic
  // order regardless of thread count.
  return mobility_.connected(da, db, coordinator_queue_.now());
}

attest::Prover& ShardedFleetRunner::prover(swarm::DeviceId id) {
  if (id >= stacks_.size()) {
    throw_bad_device_id("ShardedFleetRunner::prover", id, stacks_.size());
  }
  return *stacks_[id].prover;
}

const swarm::DeviceSpec& ShardedFleetRunner::spec(swarm::DeviceId id) const {
  if (id >= specs_.size()) {
    throw_bad_device_id("ShardedFleetRunner::spec", id, specs_.size());
  }
  return specs_[id];
}

void ShardedFleetRunner::schedule_on_device(
    swarm::DeviceId id, sim::Time at,
    std::function<void(attest::Prover&)> fn) {
  attest::Prover& target = prover(id);
  shards_[shard_of(id)].queue->schedule_at(
      at, [&target, fn = std::move(fn)] { fn(target); });
}

void ShardedFleetRunner::set_present(swarm::DeviceId id, bool present) {
  if (id >= stacks_.size()) {
    throw_bad_device_id("ShardedFleetRunner::set_present", id, stacks_.size());
  }
  if (present_[id] == present) return;
  present_[id] = present;
  if (trace_ && trace_->enabled(obs::Subsystem::kRunner)) {
    // Churn only happens at barriers (round hook) or before run(), both
    // coordinator-side, so direct emission keeps deterministic order.
    trace_->instant(obs::Subsystem::kRunner, coordinator_queue_.now(),
                    present ? "device_join" : "device_leave",
                    {{"device", static_cast<uint64_t>(id)}});
  }
  if (!started_) return;
  if (present) {
    // Rejoin: the schedule restarts one period from now, exactly as a
    // rebooted device's timer would. A rejoiner with a dead battery stays
    // dark -- back in the roster, but its prover never restarts.
    if (!(energy_meter_ && energy_meter_->device(id).dark())) {
      stacks_[id].prover->start();
    }
  } else {
    stacks_[id].prover->stop();
  }
}

size_t ShardedFleetRunner::present_count() const {
  return static_cast<size_t>(
      std::count(present_.begin(), present_.end(), true));
}

size_t ShardedFleetRunner::shard_of(swarm::DeviceId id) const {
  // First `rem` blocks carry base+1 devices, the rest carry base.
  const size_t n = specs_.size();
  const size_t s = shards_.size();
  const size_t base = n / s;
  const size_t rem = n % s;
  const size_t cut = rem * (base + 1);  // first device id of the base blocks
  if (id < cut) return id / (base + 1);
  return rem + (id - cut) / base;
}

void ShardedFleetRunner::advance_all(sim::Time barrier) {
  using clock = std::chrono::steady_clock;
  const auto wall_start = clock::now();
  // Per-shard busy clocks vs the advance's wall clock: their gap is the
  // barrier-wait the phase profile reports. Each worker writes only its
  // own slot.
  std::vector<double> busy_ms(shards_.size(), 0.0);
  const auto advance_shard = [&](size_t s) {
    const auto t0 = clock::now();
    shards_[s].queue->run_until(barrier);
    busy_ms[s] =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
  };
  // The persistent pool replaces a thread spawn/join per barrier: workers
  // park on a condition variable between phases, so a 10ms advance no
  // longer pays thread creation. Which worker runs which shard is
  // unspecified (job stealing) -- shard queues are independent between
  // barriers, so it cannot matter.
  executor_->run(shards_.size(), advance_shard);
  double busy_sum = 0.0;
  for (const double b : busy_ms) busy_sum += b;
  phases_.record_advance(
      shards_.size(), busy_sum,
      std::chrono::duration<double, std::milli>(clock::now() - wall_start)
          .count());
}

FleetRoundResult ShardedFleetRunner::collect_round(size_t round,
                                                   sim::Time at) {
  FleetRoundResult result;
  result.round = round;
  result.at = at;
  result.present = present_count();

  // The coordinator's own clock provides session timestamps/timeouts (and
  // drives the overlay radio). run_until (not advance_to) so cancelled
  // timeout entries from the previous round are reclaimed instead of
  // accumulating one per session per round for the runner's lifetime.
  coordinator_queue_.run_until(at);

  const auto judge = [this, &result](
      const attest::AttestationService::SessionOutcome& outcome) {
    // An aggregated outcome carries no per-measurement history: the
    // head's healthy bit stands in for freshness (the head judged the
    // member against its own latest digest this round).
    const bool healthy = outcome.report.device_trustworthy() &&
                         (outcome.report.freshness.has_value() ||
                          outcome.aggregated);
    if (healthy) {
      ++result.healthy;
    } else {
      ++result.flagged;
    }
    // The engine attributes failed verdicts to campaigns (detection
    // latency starts its clock at infection, stops here).
    if (engine_) engine_->on_verdict(outcome.device, healthy, outcome.at);
  };

  if (config_.backend == CollectionBackend::kDirect) {
    // Single-threaded: mobility's lazy trajectory extension shares one
    // RNG, so it must only ever be queried here, in deterministic order.
    swarm::Topology topo = mobility_.snapshot(at);
    for (swarm::DeviceId id = 0; id < stacks_.size(); ++id) {
      // Dark devices relay nothing either: prune them from the tree like
      // departed ones.
      if (active(id)) continue;
      for (const swarm::DeviceId nb : topo.neighbors(id)) {
        topo.remove_edge(id, nb);
      }
    }
    if (engine_) {
      // Scheduled partitions cut the direct backend's tree exactly like
      // the overlay's link filter: edges across the cut disappear.
      for (swarm::DeviceId id = 0; id < stacks_.size(); ++id) {
        for (const swarm::DeviceId nb : topo.neighbors(id)) {
          if (!engine_->link_allowed(id, nb, at)) topo.remove_edge(id, nb);
        }
      }
    }
    const auto tree = topo.bfs_tree(config_.root);

    std::vector<attest::DeviceId> targets;
    targets.reserve(stacks_.size());
    for (swarm::DeviceId id = 0; id < stacks_.size(); ++id) {
      if (!active(id) || !tree.parent[id].has_value()) continue;
      targets.push_back(id);
    }
    // Over the DirectTransport every session completes synchronously at
    // `at`, in global id order.
    const auto outcomes =
        service_->collect_now(targets, static_cast<uint32_t>(config_.k));
    result.reachable = outcomes.size();
    for (const auto& outcome : outcomes) judge(outcome);
    if (energy_meter_) {
      // No radio Network under kDirect, so charge the session's wire bytes
      // here: each served device heard one request and transmitted one
      // k-record report. A device this charge kills still answered THIS
      // round (the radio browned out transmitting the report).
      const size_t report_bytes =
          kDirectReportHeaderBytes + config_.k * kDirectRecordBytes;
      for (const attest::DeviceId id : targets) {
        energy::DeviceMeter& m = energy_meter_->device(id);
        bool out = m.charge_rx(kDirectRequestBytes, at);
        out = m.charge_tx(report_bytes, at) || out;
        if (out) stacks_[id].prover->stop();
      }
    }
    return result;
  }

  // kOverlay: flood the round over the radio and listen until the
  // deadline; who is "reachable" is decided by the packets, not a
  // topology oracle. Devices that left the fleet are radio-silent (the
  // link filter mutes them), so their sessions resolve as unreachable.
  std::vector<attest::DeviceId> targets;
  targets.reserve(stacks_.size());
  for (swarm::DeviceId id = 0; id < stacks_.size(); ++id) {
    if (present_[id]) targets.push_back(id);
  }
  round_outcomes_.clear();
  service_->collect_now(targets, static_cast<uint32_t>(config_.k));
  coordinator_queue_.run_until(at + config_.overlay.collect_deadline);
  // Sessions still unresolved at the deadline missed this round; late
  // reports surface as stale/stray datagrams and cannot disturb the next
  // round's floods.
  if (service_->round_in_progress()) service_->stop();
  for (const auto& outcome : round_outcomes_) {
    if (!outcome.reachable) continue;
    ++result.reachable;
    judge(outcome);
  }
  round_outcomes_.clear();
  return result;
}

std::vector<FleetRoundResult> ShardedFleetRunner::run(MetricsSink& sink) {
  if (started_) {
    throw std::logic_error("ShardedFleetRunner: run() called twice");
  }
  started_ = true;
  for (swarm::DeviceId id = 0; id < stacks_.size(); ++id) {
    if (!present_[id]) continue;
    if (config_.plan.staggered) {
      stacks_[id].prover->start(swarm::stagger_offset(
          swarm::nominal_tm(specs_[id]), id, stacks_.size()));
    } else {
      stacks_[id].prover->start();
    }
  }

  std::vector<FleetRoundResult> results;
  results.reserve(config_.rounds);
  const bool trace_runner =
      trace_ && trace_->enabled(obs::Subsystem::kRunner);
  for (size_t round = 1; round <= config_.rounds; ++round) {
    const sim::Time barrier =
        sim::Time::zero() + config_.round_interval * round;
    advance_all(barrier);
    // Barrier: drain the shards' device events BEFORE any coordinator
    // event of this round, so the merged order is partition-independent.
    if (trace_) trace_->merge_shards();
    // Adversary itinerary instants for the interval just simulated
    // (timestamps inside it, like the dark sweep's) -- after the shard
    // merge, before this round's coordinator events.
    if (engine_) engine_->emit_trace(barrier);
    const auto coord_start = std::chrono::steady_clock::now();
    if (trace_runner) {
      trace_->span_begin(obs::Subsystem::kRunner, barrier, "collect",
                         {{"round", static_cast<uint64_t>(round)}});
    }
    if (energy_meter_) {
      // The idle floor for the interval just simulated, then a sweep so
      // measurement- or sleep-exhausted devices are dark BEFORE this
      // round's topology/flood decisions see them.
      for (swarm::DeviceId id = 0; id < stacks_.size(); ++id) {
        if (present_[id]) {
          energy_meter_->device(id).charge_sleep(config_.round_interval,
                                                 barrier);
        }
      }
      sweep_dark();
    }
    if (round_hook_) round_hook_(*this, round, barrier);
    const OverlayTotals before = overlay_totals();
    const overlay::RelayTransport::Stats transport_before =
        relay_transport_ ? relay_transport_->stats()
                         : overlay::RelayTransport::Stats{};
    const AggregateCounters agg_before = agg_counters_;
    FleetRoundResult r = collect_round(round, barrier);
    if (energy_meter_) {
      sweep_dark();  // radio/direct transitions from this collection
      r.dark = energy_meter_->dark_count();
    }
    results.push_back(r);
    if (trace_runner) {
      trace_->span_end(obs::Subsystem::kRunner, coordinator_queue_.now(),
                       "collect",
                       {{"round", static_cast<uint64_t>(round)},
                        {"present", static_cast<uint64_t>(r.present)},
                        {"reachable", static_cast<uint64_t>(r.reachable)},
                        {"healthy", static_cast<uint64_t>(r.healthy)},
                        {"flagged", static_cast<uint64_t>(r.flagged)}});
    }
    // The "dark" column only exists on metered runs, so unmetered output
    // stays byte-for-byte what it was before energy metering existed.
    Row rounds_row = {
        {"round", static_cast<uint64_t>(r.round)},
        {"t_min", static_cast<uint64_t>(r.at.ns() / 60'000'000'000ull)},
        {"present", static_cast<uint64_t>(r.present)},
        {"reachable", static_cast<uint64_t>(r.reachable)},
        {"healthy", static_cast<uint64_t>(r.healthy)},
        {"flagged", static_cast<uint64_t>(r.flagged)}};
    if (energy_meter_) {
      rounds_row.push_back({"dark", static_cast<uint64_t>(r.dark)});
    }
    sink.row("rounds", rounds_row);
    emit_window_round(sink, round, transport_before);
    if (config_.backend == CollectionBackend::kOverlay) {
      emit_overlay_round(sink, round, before);
      if (config_.overlay.aggregation.enabled) {
        emit_aggregate_round(sink, round, agg_before, transport_before);
      }
    }
    emit_energy_round(sink, round);
    emit_adversary_round(sink, round, before);
    sync_channel_metrics(barrier);
    emit_metrics_round(sink, round);
    phases_.record_coordinator(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - coord_start)
            .count());
  }
  return results;
}

void ShardedFleetRunner::emit_window_round(
    MetricsSink& sink, size_t round,
    const overlay::RelayTransport::Stats& before) {
  // The service resets round stats at each round start, so these are the
  // collection we just ran -- the window trajectory the AIMD controller
  // took, and how deep the dispatch pipeline actually got.
  const attest::AttestationService::RoundStats& rs = service_->round_stats();
  sink.row("window",
           {{"round", static_cast<uint64_t>(round)},
            {"window_min", rs.window_min},
            {"window_max", rs.window_max},
            {"window_final", rs.window_final},
            {"max_in_flight", rs.max_in_flight},
            {"retries", rs.retries},
            {"loss_backoffs", rs.loss_backoffs},
            {"congestion_backoffs", rs.congestion_backoffs}});
  if (config_.backend != CollectionBackend::kOverlay ||
      !config_.overlay.scoped_retries) {
    return;
  }
  // Scoped-retry economy as per-round deltas: how many retries rode a
  // cached route, how many had to fall back, and how often a route broke
  // mid-unicast.
  const overlay::RelayTransport::Stats& now = relay_transport_->stats();
  sink.row("scoped_retry",
           {{"round", static_cast<uint64_t>(round)},
            {"scoped", now.scoped_sent - before.scoped_sent},
            {"fallback_floods",
             now.targeted_floods - before.targeted_floods},
            {"no_route", now.scoped_fallbacks - before.scoped_fallbacks},
            {"naks", now.naks_received - before.naks_received}});
}

ShardedFleetRunner::OverlayTotals ShardedFleetRunner::overlay_totals() const {
  OverlayTotals totals;
  if (config_.backend != CollectionBackend::kOverlay) return totals;
  for (const auto& node : relay_nodes_) {
    const overlay::RelayNode::Stats& s = node->stats();
    totals.floods_seen += s.floods_seen;
    totals.floods_forwarded += s.floods_forwarded;
    totals.reports_relayed += s.reports_relayed;
    totals.reports_dropped += s.reports_dropped;
    totals.reports_orphaned += s.reports_orphaned;
    totals.route_repairs += s.route_repairs;
    totals.malformed_frames += s.malformed_frames;
    totals.scoped_forwarded += s.scoped_forwarded;
    totals.naks += s.naks_sent;
    totals.heads_elected += s.heads_elected;
    totals.reports_absorbed += s.reports_absorbed;
    totals.aggregates_built += s.aggregates_built;
    totals.aggregates_relayed += s.aggregates_relayed;
    totals.aggregates_dark_purged += s.aggregates_dark_purged;
    totals.dropped_adversarial += s.dropped_adversarial;
    totals.corrupted_adversarial += s.corrupted_adversarial;
    totals.sybil_injected += s.sybil_injected;
  }
  const overlay::RelayTransport::Stats& t = relay_transport_->stats();
  totals.malformed_frames += t.malformed_frames;
  totals.duplicate_reports += t.duplicate_reports;
  totals.stale_reports += t.stale_reports;
  totals.spoofed_rejected += t.spoofed_rejected;
  totals.scoped_sent += t.scoped_sent;
  totals.aggregates_received += t.aggregates_received;
  totals.duplicate_aggregates += t.duplicate_aggregates;
  totals.hops = relay_transport_->hop_histogram();
  return totals;
}

void ShardedFleetRunner::emit_overlay_round(MetricsSink& sink, size_t round,
                                            const OverlayTotals& before) {
  // Per-round per-hop behaviour as deltas of the cumulative counters: one
  // "overlay" row per round, plus the round's hop-count distribution.
  const OverlayTotals now = overlay_totals();
  sink.row(
      "overlay",
      {{"round", static_cast<uint64_t>(round)},
       {"floods_seen", now.floods_seen - before.floods_seen},
       {"floods_forwarded", now.floods_forwarded - before.floods_forwarded},
       {"reports_relayed", now.reports_relayed - before.reports_relayed},
       {"reports_dropped", now.reports_dropped - before.reports_dropped},
       {"route_repairs", now.route_repairs - before.route_repairs},
       {"malformed_frames", now.malformed_frames - before.malformed_frames},
       {"duplicate_reports",
        now.duplicate_reports - before.duplicate_reports},
       {"stale_reports", now.stale_reports - before.stale_reports}});
  for (size_t h = 0; h < now.hops.size(); ++h) {
    const uint64_t prev = h < before.hops.size() ? before.hops[h] : 0;
    if (now.hops[h] == prev) continue;  // no reports at this depth
    sink.row("hops", {{"round", static_cast<uint64_t>(round)},
                      {"hops", static_cast<uint64_t>(h)},
                      {"reports", now.hops[h] - prev}});
  }
}

void ShardedFleetRunner::emit_aggregate_round(
    MetricsSink& sink, size_t round, const AggregateCounters& before,
    const overlay::RelayTransport::Stats& transport_before) {
  // The round's hierarchical-collection economy: how many clusters
  // reported, how many sessions their bitmaps closed, and what the
  // bitmap+root encoding saved over relaying every report raw.
  const AggregateCounters& now = agg_counters_;
  const overlay::RelayTransport::Stats& t = relay_transport_->stats();
  const attest::AttestationService::RoundStats& rs = service_->round_stats();
  const uint64_t wire = t.aggregate_wire_bytes -
                        transport_before.aggregate_wire_bytes;
  const uint64_t raw = t.aggregate_raw_bytes -
                       transport_before.aggregate_raw_bytes;
  sink.row("aggregate",
           {{"round", static_cast<uint64_t>(round)},
            {"clusters", now.clusters - before.clusters},
            {"members", now.members - before.members},
            {"healthy_bits", now.healthy_bits - before.healthy_bits},
            {"aggregated_sessions", rs.aggregated_sessions},
            {"demand_fetches", rs.demand_fetches},
            {"auth_failures", now.auth_failures - before.auth_failures},
            {"raw_bytes", raw},
            {"wire_bytes", wire},
            {"compression",
             wire > 0 ? static_cast<double>(raw) / static_cast<double>(wire)
                      : 0.0}});
}

void ShardedFleetRunner::emit_energy_round(MetricsSink& sink, size_t round) {
  if (!energy_meter_) return;
  const energy::FleetMeter::Totals now = energy_meter_->totals();
  const size_t dark = energy_meter_->dark_count();
  // Per-round joule economy as deltas: where did this round's energy go?
  sink.row("energy",
           {{"round", static_cast<uint64_t>(round)},
            {"cpu_mj", now.cpu_mj - last_energy_totals_.cpu_mj},
            {"tx_mj", now.tx_mj - last_energy_totals_.tx_mj},
            {"rx_mj", now.rx_mj - last_energy_totals_.rx_mj},
            {"sleep_mj", now.sleep_mj - last_energy_totals_.sleep_mj},
            {"dark", static_cast<uint64_t>(dark)},
            {"went_dark", static_cast<uint64_t>(dark - last_dark_)}});
  // Gauges ride the generic "metrics" snapshot (registration idempotent).
  metrics_.gauge("energy", "fleet_cpu_j").set(now.cpu_mj / 1e3);
  metrics_.gauge("energy", "fleet_tx_j").set(now.tx_mj / 1e3);
  metrics_.gauge("energy", "fleet_rx_j").set(now.rx_mj / 1e3);
  metrics_.gauge("energy", "fleet_sleep_j").set(now.sleep_mj / 1e3);
  metrics_.gauge("energy", "dark_devices").set(static_cast<double>(dark));
  if (energy_meter_->device(0).capacity_nj() > 0) {
    // Battery health distribution, one observation per present device per
    // round (cumulative, like every histogram in the registry).
    obs::Histogram& remaining = metrics_.histogram(
        "energy", "battery_remaining", {0.1, 0.25, 0.5, 0.75, 0.9, 1.0});
    for (swarm::DeviceId id = 0; id < stacks_.size(); ++id) {
      if (!present_[id]) continue;
      remaining.observe(energy_meter_->device(id).remaining_fraction());
    }
  }
  last_energy_totals_ = now;
  last_dark_ = dark;
}

void ShardedFleetRunner::emit_adversary_round(MetricsSink& sink, size_t round,
                                              const OverlayTotals& before) {
  if (!engine_) return;
  // Campaign progress as deltas of the engine's cumulative counters;
  // `active` is a gauge (legs resident right now) and the latency column
  // is the cumulative mean over detected chains. Columns are fixed --
  // zeros where a family is off -- so the table's shape never depends on
  // which attacks fired.
  const adversary::Engine::Snapshot now = engine_->snapshot();
  const OverlayTotals totals = overlay_totals();
  sink.row(
      "adversary",
      {{"round", static_cast<uint64_t>(round)},
       {"infections", now.infections - last_adversary_.infections},
       {"migrations", now.migrations - last_adversary_.migrations},
       {"evasions", now.evasions - last_adversary_.evasions},
       {"captures", now.captures - last_adversary_.captures},
       {"detections", now.detections - last_adversary_.detections},
       {"active", now.active},
       {"detection_latency_ms", now.mean_detection_latency_ms},
       {"dropped_adversarial",
        totals.dropped_adversarial - before.dropped_adversarial},
       {"corrupted_adversarial",
        totals.corrupted_adversarial - before.corrupted_adversarial},
       {"sybil_injected", totals.sybil_injected - before.sybil_injected},
       {"spoofed_rejected",
        totals.spoofed_rejected - before.spoofed_rejected}});
  last_adversary_ = now;
}

void ShardedFleetRunner::sync_channel_metrics(sim::Time at) {
  const net::ShardChannels* channels = direct_transport_.channels();
  if (channels == nullptr || channel_inst_.frames_local == nullptr) return;
  const net::ShardChannels::Counters& now = channels->counters();
  const uint64_t local = now.frames_local - last_channel_.frames_local;
  const uint64_t cross = now.frames_cross - last_channel_.frames_cross;
  const uint64_t drains = now.drains - last_channel_.drains;
  channel_inst_.frames_local->add(local);
  channel_inst_.frames_cross->add(cross);
  channel_inst_.drains->add(drains);
  last_channel_ = now;
  if (trace_ && trace_->enabled(obs::Subsystem::kRunner) &&
      (local + cross + drains) > 0) {
    trace_->instant(obs::Subsystem::kRunner, at, "channel_drain",
                    {{"frames_local", local},
                     {"frames_cross", cross},
                     {"drains", drains}});
  }
}

void ShardedFleetRunner::emit_metrics_round(MetricsSink& sink, size_t round) {
  // Cumulative-to-date values in registration order: differencing is the
  // analyst's job, determinism (same rows at any thread count) is ours.
  for (const obs::Registry::Sample& s : metrics_.snapshot()) {
    const char* kind = "counter";
    if (s.kind == obs::Registry::Kind::kGauge) kind = "gauge";
    if (s.kind == obs::Registry::Kind::kHistogram) kind = "histogram";
    sink.row("metrics", {{"round", static_cast<uint64_t>(round)},
                         {"subsystem", s.subsystem},
                         {"name", s.name},
                         {"kind", std::string(kind)},
                         {"value", s.value}});
    for (const auto& [le, count] : s.buckets) {
      sink.row("metrics_hist", {{"round", static_cast<uint64_t>(round)},
                                {"subsystem", s.subsystem},
                                {"name", s.name},
                                {"le", le},
                                {"count", count}});
    }
  }
}

}  // namespace erasmus::scenario
