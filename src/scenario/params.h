// Scenario parameters: string key=value pairs with typed accessors.
//
// Every scenario declares its knobs as ParamSpecs (name, default, help) so
// the erasmus_run CLI can print them and reject typos; at run time the
// parsed ParamMap hands back typed values with the spec defaults filling
// the gaps.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/energy.h"
#include "sim/time.h"

namespace erasmus::scenario {

/// Parses a human-friendly duration: a non-negative number with a required
/// unit suffix -- "10m", "90s", "1.5h", "250ms", "2d". Units: ms, s, m (or
/// min), h, d. Throws std::invalid_argument on a missing/unknown unit, a
/// negative or non-numeric value.
sim::Duration parse_duration(const std::string& text);

/// Comma-separated parse_duration list ("5m,10m,20m"); rejects empty lists
/// and empty entries.
std::vector<sim::Duration> parse_duration_list(const std::string& text);

/// Parses a human-friendly energy value: a non-negative number with a
/// required unit suffix -- "500mJ", "2J", "750uJ", "1.5kJ". Units: uJ, mJ,
/// J, kJ (case-insensitive). Throws std::invalid_argument on a missing or
/// unknown unit, a negative or non-numeric value -- same loud-rejection
/// convention as parse_duration, so `battery=40` never silently means
/// 40 of anything.
sim::Energy parse_energy(const std::string& text);

struct ParamSpec {
  std::string key;
  std::string default_value;
  std::string help;
};

class ParamMap {
 public:
  ParamMap() = default;

  /// Parses "key=value" tokens. Throws std::invalid_argument on a token
  /// without '=' or with an empty key.
  static ParamMap from_args(const std::vector<std::string>& args);

  void set(std::string key, std::string value);
  bool has(std::string_view key) const;

  /// Typed getters; `def` is returned when the key is absent. A present but
  /// unparsable value throws std::invalid_argument naming the key.
  std::string get_str(std::string_view key, std::string_view def) const;
  uint64_t get_u64(std::string_view key, uint64_t def) const;
  double get_double(std::string_view key, double def) const;
  bool get_bool(std::string_view key, bool def) const;
  /// Duration with a required unit ("10m", "90s", "2h" -- see
  /// parse_duration). Every T_M/T_C-style knob goes through this, so CLI
  /// users never guess whether a raw number means seconds or minutes.
  sim::Duration get_duration(std::string_view key, sim::Duration def) const;
  /// Energy with a required unit ("40mJ", "2J" -- see parse_energy).
  sim::Energy get_energy(std::string_view key, sim::Energy def) const;

  /// Sorted key -> value view (deterministic iteration for sinks).
  const std::map<std::string, std::string, std::less<>>& entries() const {
    return entries_;
  }

  /// Keys present here but not in `specs` (CLI typo detection).
  std::vector<std::string> unknown_keys(
      const std::vector<ParamSpec>& specs) const;

 private:
  std::map<std::string, std::string, std::less<>> entries_;
};

}  // namespace erasmus::scenario
