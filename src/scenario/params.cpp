#include "scenario/params.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace erasmus::scenario {

namespace {

[[noreturn]] void bad_value(std::string_view key, const std::string& value,
                            const char* expected) {
  throw std::invalid_argument("parameter '" + std::string(key) + "': '" +
                              value + "' is not a valid " + expected);
}

}  // namespace

sim::Duration parse_duration(const std::string& text) {
  size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  const std::string unit = text.substr(used);
  if (used == 0 || unit.empty() || value < 0.0 ||
      !(value == value) /* NaN */) {
    throw std::invalid_argument(
        "'" + text +
        "' is not a valid duration (expected <number><unit>, e.g. 10m, "
        "90s, 2h; units: ms, s, m/min, h, d)");
  }
  double ns_per_unit = 0.0;
  if (unit == "ms") {
    ns_per_unit = 1e6;
  } else if (unit == "s") {
    ns_per_unit = 1e9;
  } else if (unit == "m" || unit == "min") {
    ns_per_unit = 60e9;
  } else if (unit == "h") {
    ns_per_unit = 3600e9;
  } else if (unit == "d") {
    ns_per_unit = 86400e9;
  } else {
    throw std::invalid_argument("'" + text +
                                "' has an unknown duration unit '" + unit +
                                "' (units: ms, s, m/min, h, d)");
  }
  const double total_ns = value * ns_per_unit;
  if (total_ns > 9e18) {  // Duration is 64-bit nanoseconds (~584 years)
    throw std::invalid_argument("'" + text + "' overflows the virtual clock");
  }
  return sim::Duration(static_cast<uint64_t>(total_ns));
}

std::vector<sim::Duration> parse_duration_list(const std::string& text) {
  std::vector<sim::Duration> list;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t comma = std::min(text.find(',', pos), text.size());
    list.push_back(parse_duration(text.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return list;
}

sim::Energy parse_energy(const std::string& text) {
  size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  std::string unit = text.substr(used);
  for (char& c : unit) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  if (used == 0 || unit.empty() || value < 0.0 ||
      !(value == value) /* NaN */) {
    throw std::invalid_argument(
        "'" + text +
        "' is not a valid energy (expected <number><unit>, e.g. 40mJ, 2J; "
        "units: uJ, mJ, J, kJ)");
  }
  double uj_per_unit = 0.0;
  if (unit == "uj") {
    uj_per_unit = 1.0;
  } else if (unit == "mj") {
    uj_per_unit = 1e3;
  } else if (unit == "j") {
    uj_per_unit = 1e6;
  } else if (unit == "kj") {
    uj_per_unit = 1e9;
  } else {
    throw std::invalid_argument("'" + text +
                                "' has an unknown energy unit '" +
                                text.substr(used) +
                                "' (units: uJ, mJ, J, kJ)");
  }
  return sim::Energy{value * uj_per_unit};
}

ParamMap ParamMap::from_args(const std::vector<std::string>& args) {
  ParamMap map;
  for (const auto& arg : args) {
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("expected key=value, got '" + arg + "'");
    }
    map.set(arg.substr(0, eq), arg.substr(eq + 1));
  }
  return map;
}

void ParamMap::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool ParamMap::has(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

std::string ParamMap::get_str(std::string_view key,
                              std::string_view def) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? std::string(def) : it->second;
}

uint64_t ParamMap::get_u64(std::string_view key, uint64_t def) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  const std::string& v = it->second;
  // strtoull "helpfully" wraps negatives and clamps overflow; require pure
  // digits so devices=-1 fails loudly instead of becoming 2^64 - 1.
  if (v.empty() ||
      v.find_first_not_of("0123456789") != std::string::npos) {
    bad_value(key, v, "unsigned integer");
  }
  errno = 0;
  char* end = nullptr;
  const uint64_t parsed = std::strtoull(v.c_str(), &end, 10);
  if (errno == ERANGE || end != v.c_str() + v.size()) {
    bad_value(key, v, "unsigned integer");
  }
  return parsed;
}

double ParamMap::get_double(std::string_view key, double def) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  const std::string& v = it->second;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size()) {
    bad_value(key, v, "number");
  }
  return parsed;
}

bool ParamMap::get_bool(std::string_view key, bool def) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  bad_value(key, v, "boolean (1/0/true/false/yes/no/on/off)");
}

sim::Duration ParamMap::get_duration(std::string_view key,
                                     sim::Duration def) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  try {
    return parse_duration(it->second);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("parameter '" + std::string(key) +
                                "': " + e.what());
  }
}

sim::Energy ParamMap::get_energy(std::string_view key,
                                 sim::Energy def) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  try {
    return parse_energy(it->second);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("parameter '" + std::string(key) +
                                "': " + e.what());
  }
}

std::vector<std::string> ParamMap::unknown_keys(
    const std::vector<ParamSpec>& specs) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : entries_) {
    (void)value;
    bool found = false;
    for (const auto& spec : specs) {
      if (spec.key == key) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(key);
  }
  return unknown;
}

}  // namespace erasmus::scenario
