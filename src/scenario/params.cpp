#include "scenario/params.h"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace erasmus::scenario {

namespace {

[[noreturn]] void bad_value(std::string_view key, const std::string& value,
                            const char* expected) {
  throw std::invalid_argument("parameter '" + std::string(key) + "': '" +
                              value + "' is not a valid " + expected);
}

}  // namespace

ParamMap ParamMap::from_args(const std::vector<std::string>& args) {
  ParamMap map;
  for (const auto& arg : args) {
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("expected key=value, got '" + arg + "'");
    }
    map.set(arg.substr(0, eq), arg.substr(eq + 1));
  }
  return map;
}

void ParamMap::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool ParamMap::has(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

std::string ParamMap::get_str(std::string_view key,
                              std::string_view def) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? std::string(def) : it->second;
}

uint64_t ParamMap::get_u64(std::string_view key, uint64_t def) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  const std::string& v = it->second;
  // strtoull "helpfully" wraps negatives and clamps overflow; require pure
  // digits so devices=-1 fails loudly instead of becoming 2^64 - 1.
  if (v.empty() ||
      v.find_first_not_of("0123456789") != std::string::npos) {
    bad_value(key, v, "unsigned integer");
  }
  errno = 0;
  char* end = nullptr;
  const uint64_t parsed = std::strtoull(v.c_str(), &end, 10);
  if (errno == ERANGE || end != v.c_str() + v.size()) {
    bad_value(key, v, "unsigned integer");
  }
  return parsed;
}

double ParamMap::get_double(std::string_view key, double def) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  const std::string& v = it->second;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size()) {
    bad_value(key, v, "number");
  }
  return parsed;
}

bool ParamMap::get_bool(std::string_view key, bool def) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  bad_value(key, v, "boolean (1/0/true/false/yes/no/on/off)");
}

std::vector<std::string> ParamMap::unknown_keys(
    const std::vector<ParamSpec>& specs) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : entries_) {
    (void)value;
    bool found = false;
    for (const auto& spec : specs) {
      if (spec.key == key) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(key);
  }
  return unknown;
}

}  // namespace erasmus::scenario
