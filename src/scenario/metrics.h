// Metrics sinks: structured scenario output replacing ad-hoc printf.
//
// A scenario reports two kinds of data: scalar `note`s (configuration echoes
// and end-of-run summaries) and tabular `row`s grouped into named tables
// (one row per round, per device class, per defender configuration...).
// Sinks serialize them as CSV (streamed) or JSON (accumulated, written on
// end_run). Output is byte-deterministic: doubles print via shortest
// round-trip formatting, and ordering follows first-use order -- so two runs
// producing the same values produce identical bytes, which the sharded
// runner's determinism tests and the erasmus_run acceptance check rely on.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/strings.h"

namespace erasmus::scenario {

using erasmus::format_double;
using erasmus::json_escape;

/// A typed cell value. Kept deliberately small: everything a scenario
/// reports is an integer, a real, or a label.
class Value {
 public:
  Value(uint64_t v) : kind_(Kind::kU64), u64_(v) {}           // NOLINT
  Value(int v) : kind_(Kind::kI64), i64_(v) {}                // NOLINT
  Value(int64_t v) : kind_(Kind::kI64), i64_(v) {}            // NOLINT
  Value(double v) : kind_(Kind::kF64), f64_(v) {}             // NOLINT
  Value(std::string v) : kind_(Kind::kStr), str_(std::move(v)) {}  // NOLINT
  Value(const char* v) : kind_(Kind::kStr), str_(v) {}        // NOLINT
  Value(bool v) : kind_(Kind::kBool), u64_(v ? 1 : 0) {}      // NOLINT

  /// Deterministic plain rendering (CSV cell). Doubles use shortest
  /// round-trip formatting; bools render as true/false.
  std::string to_plain() const;
  /// Deterministic JSON rendering (strings quoted and escaped).
  std::string to_json() const;

 private:
  enum class Kind { kU64, kI64, kF64, kStr, kBool };
  Kind kind_;
  uint64_t u64_ = 0;
  int64_t i64_ = 0;
  double f64_ = 0.0;
  std::string str_;
};

using Row = std::vector<std::pair<std::string, Value>>;

class MetricsSink {
 public:
  virtual ~MetricsSink() = default;

  virtual void begin_run(std::string_view scenario) = 0;
  /// Scalar summary datum.
  virtual void note(std::string_view key, Value value) = 0;
  /// Appends a row to `table`. All rows of one table should share the same
  /// columns in the same order.
  virtual void row(std::string_view table, const Row& r) = 0;
  /// Finalizes output (JSON writes everything here).
  virtual void end_run() = 0;
};

/// Streams CSV: `# scenario=...` header, `# note key=value` lines as they
/// arrive, and per-table sections with a header row emitted on first use.
/// Rows carry their table name in the first column. Cells containing a
/// comma, quote, or newline are RFC-4180 quoted (inner quotes doubled);
/// all other cells are emitted raw, keeping the common numeric output
/// byte-identical to the historical unquoted form.
class CsvSink : public MetricsSink {
 public:
  explicit CsvSink(std::ostream& out) : out_(out) {}

  void begin_run(std::string_view scenario) override;
  void note(std::string_view key, Value value) override;
  void row(std::string_view table, const Row& r) override;
  void end_run() override;

 private:
  std::ostream& out_;
  std::vector<std::string> tables_seen_;
};

/// Accumulates everything and writes a single stable-format JSON document:
/// {"scenario": ..., "notes": {...}, "tables": {name: [{col: val}...]}}.
class JsonSink : public MetricsSink {
 public:
  explicit JsonSink(std::ostream& out) : out_(out) {}

  void begin_run(std::string_view scenario) override;
  void note(std::string_view key, Value value) override;
  void row(std::string_view table, const Row& r) override;
  void end_run() override;

 private:
  std::ostream& out_;
  std::string scenario_;
  std::vector<std::pair<std::string, Value>> notes_;
  std::vector<std::pair<std::string, std::vector<Row>>> tables_;
};

/// Swallows everything (for tests and dry runs).
class NullSink : public MetricsSink {
 public:
  void begin_run(std::string_view) override {}
  void note(std::string_view, Value) override {}
  void row(std::string_view, const Row&) override {}
  void end_run() override {}
};

}  // namespace erasmus::scenario
