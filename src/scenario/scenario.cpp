#include "scenario/scenario.h"

#include <stdexcept>

namespace erasmus::scenario {

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(std::unique_ptr<Scenario> scenario) {
  if (!scenario) {
    throw std::invalid_argument("ScenarioRegistry: null scenario");
  }
  const std::string name = scenario->name();
  if (name.empty()) {
    throw std::invalid_argument("ScenarioRegistry: empty scenario name");
  }
  const auto [it, inserted] = by_name_.emplace(name, std::move(scenario));
  (void)it;
  if (!inserted) {
    throw std::invalid_argument("ScenarioRegistry: duplicate scenario '" +
                                name + "'");
  }
}

const Scenario* ScenarioRegistry::find(std::string_view name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second.get();
}

std::vector<const Scenario*> ScenarioRegistry::list() const {
  std::vector<const Scenario*> out;
  out.reserve(by_name_.size());
  for (const auto& [name, scenario] : by_name_) {
    (void)name;
    out.push_back(scenario.get());
  }
  return out;  // std::map iteration is already name-sorted
}

namespace detail {

Registrar::Registrar(std::unique_ptr<Scenario> s) {
  ScenarioRegistry::instance().add(std::move(s));
}

}  // namespace detail

}  // namespace erasmus::scenario
