#include "scenario/metrics.h"

#include <algorithm>

namespace erasmus::scenario {

std::string Value::to_plain() const {
  switch (kind_) {
    case Kind::kU64: return std::to_string(u64_);
    case Kind::kI64: return std::to_string(i64_);
    case Kind::kF64: return format_double(f64_);
    case Kind::kStr: return str_;
    case Kind::kBool: return u64_ ? "true" : "false";
  }
  return {};
}

std::string Value::to_json() const {
  if (kind_ == Kind::kStr) return "\"" + json_escape(str_) + "\"";
  return to_plain();
}

// --- CsvSink -----------------------------------------------------------------

namespace {

// RFC 4180 quoting, applied only when needed so the common all-scalar
// output stays byte-identical to the unquoted form.
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

void CsvSink::begin_run(std::string_view scenario) {
  out_ << "# scenario=" << scenario << "\n";
}

void CsvSink::note(std::string_view key, Value value) {
  out_ << "# note " << key << "=" << csv_escape(value.to_plain()) << "\n";
}

void CsvSink::row(std::string_view table, const Row& r) {
  if (std::find(tables_seen_.begin(), tables_seen_.end(), table) ==
      tables_seen_.end()) {
    tables_seen_.emplace_back(table);
    out_ << "table";
    for (const auto& [col, value] : r) {
      (void)value;
      out_ << "," << col;
    }
    out_ << "\n";
  }
  out_ << table;
  for (const auto& [col, value] : r) {
    (void)col;
    out_ << "," << csv_escape(value.to_plain());
  }
  out_ << "\n";
}

void CsvSink::end_run() { out_.flush(); }

// --- JsonSink ----------------------------------------------------------------

void JsonSink::begin_run(std::string_view scenario) {
  scenario_ = std::string(scenario);
}

void JsonSink::note(std::string_view key, Value value) {
  notes_.emplace_back(std::string(key), std::move(value));
}

void JsonSink::row(std::string_view table, const Row& r) {
  for (auto& [name, rows] : tables_) {
    if (name == table) {
      rows.push_back(r);
      return;
    }
  }
  tables_.emplace_back(std::string(table), std::vector<Row>{r});
}

void JsonSink::end_run() {
  out_ << "{\n  \"scenario\": \"" << json_escape(scenario_) << "\",\n";
  out_ << "  \"notes\": {";
  for (size_t i = 0; i < notes_.size(); ++i) {
    out_ << (i ? ",\n    " : "\n    ");
    out_ << "\"" << json_escape(notes_[i].first)
         << "\": " << notes_[i].second.to_json();
  }
  out_ << (notes_.empty() ? "}" : "\n  }") << ",\n";
  out_ << "  \"tables\": {";
  for (size_t t = 0; t < tables_.size(); ++t) {
    out_ << (t ? ",\n    " : "\n    ");
    out_ << "\"" << json_escape(tables_[t].first) << "\": [";
    const auto& rows = tables_[t].second;
    for (size_t i = 0; i < rows.size(); ++i) {
      out_ << (i ? ",\n      " : "\n      ") << "{";
      for (size_t c = 0; c < rows[i].size(); ++c) {
        out_ << (c ? ", " : "") << "\"" << json_escape(rows[i][c].first)
             << "\": " << rows[i][c].second.to_json();
      }
      out_ << "}";
    }
    out_ << (rows.empty() ? "]" : "\n    ]");
  }
  out_ << (tables_.empty() ? "}" : "\n  }") << "\n}\n";
  out_.flush();
}

}  // namespace erasmus::scenario
