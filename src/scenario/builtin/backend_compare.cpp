// Scenario `backend_compare`: the same infected swarm collected three
// ways -- direct contact, multi-hop overlay, and overlay with hierarchical
// aggregation -- under slow/fast mobility with and without network churn.
//
// Every cell of the grid runs an identical roaming-malware campaign (same
// seed, same itinerary) so the `compare` table isolates what the
// collection backend and the network weather change: how much of the fleet
// each round reaches, and how quickly the verifier turns captured
// measurements into a detected campaign. Churn cells add a scheduled
// half-fleet partition plus (overlay only) a radio loss burst.
#include "adversary/adversary.h"
#include "scenario/scenario.h"
#include "scenario/sharded_runner.h"

namespace erasmus::scenario {
namespace {

using sim::Duration;
using sim::Time;

class BackendCompareScenario : public Scenario {
 public:
  std::string name() const override { return "backend_compare"; }
  std::string description() const override {
    return "infected swarm under direct vs overlay vs overlay+aggregate "
           "collection, across mobility speeds and network churn";
  }
  std::vector<ParamSpec> param_specs() const override {
    return {
        {"devices", "36", "fleet size per cell"},
        {"threads", "1", "shard/worker threads (wall-clock only; metrics "
                         "are thread-count independent)"},
        {"seed", "2024", "mobility + key + itinerary seed"},
        {"tm", "8m", "self-measurement period T_M"},
        {"adversary_dwell", "12m", "roaming-malware dwell (REQUIRED unit)"},
        {"adversary_chains", "3", "infection chains per cell"},
        {"rounds", "3", "collection rounds per cell"},
        {"interval", "30m", "time between collection rounds"},
    };
  }

  int run(const ParamMap& params, MetricsSink& sink) const override {
    const size_t devices =
        static_cast<size_t>(params.get_u64("devices", 36));
    const size_t rounds = static_cast<size_t>(params.get_u64("rounds", 3));
    const Duration interval =
        params.get_duration("interval", Duration::minutes(30));

    sink.note("devices", static_cast<uint64_t>(devices));
    sink.note("seed", params.get_u64("seed", 2024));
    sink.note("tm_min",
              params.get_duration("tm", Duration::minutes(8)).to_seconds() /
                  60.0);
    sink.note("rounds", static_cast<uint64_t>(rounds));

    struct Backend {
      const char* name;
      CollectionBackend kind;
      bool aggregate;
    };
    struct Mobility {
      const char* name;
      double speed_min, speed_max;
    };
    const Backend backends[] = {
        {"direct", CollectionBackend::kDirect, false},
        {"overlay", CollectionBackend::kOverlay, false},
        {"overlay_agg", CollectionBackend::kOverlay, true},
    };
    const Mobility mobilities[] = {{"slow", 2.0, 4.0}, {"fast", 10.0, 16.0}};
    const bool churns[] = {false, true};

    for (const Backend& backend : backends) {
      for (const Mobility& mobility : mobilities) {
        for (const bool churn : churns) {
          swarm::DeviceSpec base;
          base.profile = swarm::default_profile_for(base.arch);
          base.tm = params.get_duration("tm", Duration::minutes(8));
          base.app_ram_bytes = 2 * 1024;
          base.store_slots = 64;

          ShardedFleetConfig cfg;
          cfg.plan = swarm::FleetPlan::uniform(
              devices, params.get_u64("seed", 2024), base);
          cfg.plan.staggered = true;
          cfg.plan.mobility.field_size = 300.0;
          cfg.plan.mobility.radio_range = 60.0;
          cfg.plan.mobility.speed_min = mobility.speed_min;
          cfg.plan.mobility.speed_max = mobility.speed_max;
          cfg.plan.mobility.seed = params.get_u64("seed", 2024);
          cfg.threads =
              static_cast<size_t>(params.get_u64("threads", 1));
          cfg.rounds = rounds;
          cfg.round_interval = interval;

          cfg.backend = backend.kind;
          if (backend.kind == CollectionBackend::kOverlay) {
            cfg.overlay.ttl = 8;
            cfg.overlay.queue_depth = 16;
            cfg.overlay.forward_spacing = Duration::millis(1);
            cfg.overlay.net_latency = Duration::millis(2);
            cfg.overlay.collect_deadline = Duration::seconds(30);
            cfg.overlay.response_timeout = Duration::seconds(10);
            cfg.overlay.max_retries = 1;
            if (backend.aggregate) {
              cfg.overlay.aggregation.enabled = true;
              cfg.overlay.aggregation.election.mode =
                  aggregate::ElectionMode::kDepthBand;
            }
          }

          cfg.adversary.mode = adversary::Mode::kRoaming;
          cfg.adversary.migration = adversary::Migration::kAware;
          cfg.adversary.dwell =
              params.get_duration("adversary_dwell", Duration::minutes(12));
          cfg.adversary.chains = static_cast<size_t>(
              params.get_u64("adversary_chains", 3));
          cfg.adversary.seed = params.get_u64("seed", 2024);
          if (churn) {
            // Half-fleet split covering the round-2 collection barrier
            // (rounds land at interval multiples), healing before round
            // 3; the loss burst additionally bites the overlay radio
            // (direct contact has no datagrams to lose).
            cfg.adversary.partitions.push_back(
                {Time::zero() + interval * 2 - Duration::minutes(10),
                 Duration::minutes(15)});
            cfg.adversary.loss_bursts.push_back(
                {Time::zero() + interval * 2 - Duration::minutes(5),
                 Duration::minutes(10), 0.5});
          }

          NullSink quiet;
          ShardedFleetRunner runner(cfg);
          const auto round_results = runner.run(quiet);

          size_t reachable = 0;
          size_t flagged_rounds = 0;
          for (const auto& r : round_results) {
            reachable += r.reachable;
            flagged_rounds += r.flagged > 0;
          }
          const adversary::Engine* engine = runner.adversary_engine();
          sink.row(
              "compare",
              {{"backend", backend.name},
               {"mobility", mobility.name},
               {"churn", churn},
               {"reachable_frac",
                static_cast<double>(reachable) /
                    static_cast<double>(devices * rounds)},
               {"rounds_with_flagged",
                static_cast<uint64_t>(flagged_rounds)},
               {"detected",
                static_cast<uint64_t>(engine->detected_chains())},
               {"detection_probability", engine->detection_probability()},
               {"detection_latency_min",
                engine->mean_detection_latency().to_seconds() / 60.0},
               {"migrations", engine->migrations_total()},
               {"captures", engine->captures_total()}});
        }
      }
    }
    return 0;
  }
};

ERASMUS_SCENARIO(BackendCompareScenario)

}  // namespace
}  // namespace erasmus::scenario
