// Scenario `churn_fleet`: devices join and leave mid-run.
//
// Unattended fleets churn: devices power down, move out of the deployment,
// get swapped. At every collection barrier a deterministic coin decides,
// per device, whether a present device leaves (its measurement timer
// stops) or an absent one rejoins (its schedule restarts, like a reboot).
// The per-round table shows ERASMUS absorbing churn gracefully: returning
// devices need only their next T_M before they attest healthy again, and
// collection only ever sees momentarily-present devices.
#include "scenario/scenario.h"
#include "scenario/sharded_runner.h"
#include "sim/rng.h"

namespace erasmus::scenario {
namespace {

using sim::Duration;

class ChurnFleetScenario : public Scenario {
 public:
  std::string name() const override { return "churn_fleet"; }
  std::string description() const override {
    return "fleet with devices leaving/rejoining at collection barriers; "
           "per-round availability and health";
  }
  std::vector<ParamSpec> param_specs() const override {
    return {
        {"devices", "40", "fleet size"},
        {"threads", "1", "shard/worker threads"},
        {"seed", "11", "mobility + key + churn seed"},
        {"rounds", "10", "collection rounds"},
        {"interval", "20m", "time between collections"},
        {"k", "4", "records collected per device per round"},
        {"leave_prob", "0.15", "P(present device leaves) per round"},
        {"rejoin_prob", "0.5", "P(absent device rejoins) per round"},
        {"tm", "10m", "self-measurement period T_M"},
    };
  }

  int run(const ParamMap& params, MetricsSink& sink) const override {
    swarm::DeviceSpec base;
    base.tm = params.get_duration("tm", Duration::minutes(10));
    base.app_ram_bytes = 2 * 1024;
    base.store_slots = 32;

    ShardedFleetConfig cfg;
    cfg.plan = swarm::FleetPlan::uniform(
        static_cast<size_t>(params.get_u64("devices", 40)),
        params.get_u64("seed", 11), base);
    cfg.plan.mobility.field_size = 120.0;
    cfg.plan.mobility.radio_range = 50.0;
    cfg.plan.mobility.speed_min = 1.0;
    cfg.plan.mobility.speed_max = 4.0;
    cfg.plan.mobility.seed = params.get_u64("seed", 11);
    cfg.threads = static_cast<size_t>(params.get_u64("threads", 1));
    cfg.rounds = static_cast<size_t>(params.get_u64("rounds", 10));
    cfg.round_interval =
        params.get_duration("interval", Duration::minutes(20));
    cfg.k = static_cast<size_t>(params.get_u64("k", 4));

    const double leave_prob = params.get_double("leave_prob", 0.15);
    const double rejoin_prob = params.get_double("rejoin_prob", 0.5);

    sink.note("devices", static_cast<uint64_t>(cfg.plan.devices()));
    sink.note("seed", params.get_u64("seed", 11));
    sink.note("leave_prob", leave_prob);
    sink.note("rejoin_prob", rejoin_prob);

    ShardedFleetRunner runner(cfg);

    // Churn runs on the coordinator at barriers with its own RNG stream,
    // so it is deterministic regardless of thread count.
    auto churn_rng =
        std::make_shared<sim::Rng>(params.get_u64("seed", 11) ^ 0xC4u);
    uint64_t left_total = 0, rejoined_total = 0;
    const swarm::DeviceId root = cfg.root;
    runner.set_round_hook([churn_rng, leave_prob, rejoin_prob, root,
                           &left_total, &rejoined_total](
                              ShardedFleetRunner& r, size_t, sim::Time) {
      for (swarm::DeviceId id = 0; id < r.size(); ++id) {
        if (id == root) continue;  // the rover's own device never churns
        if (r.present(id)) {
          if (churn_rng->chance(leave_prob)) {
            r.set_present(id, false);
            ++left_total;
          }
        } else if (churn_rng->chance(rejoin_prob)) {
          r.set_present(id, true);
          ++rejoined_total;
        }
      }
    });

    runner.run(sink);
    sink.note("left_total", left_total);
    sink.note("rejoined_total", rejoined_total);
    return 0;
  }
};

ERASMUS_SCENARIO(ChurnFleetScenario)

}  // namespace
}  // namespace erasmus::scenario
