// Scenario `mixed_tm_fleet`: heterogeneous measurement periods in one fleet.
//
// Real deployments mix device classes: battery-starved sensors measuring
// every 40 min next to mains-powered gateways measuring every 5 min. The
// T_M classes come straight from FleetPlan::cycle_tm (device id mod class
// count, so classes spread uniformly over the field and the shards), the
// fleet runs under one collection schedule, and the final per-class table
// shows the QoA/energy trade the paper's §4 reasons about: short-T_M
// classes stay fresh, long-T_M classes save measurements at the cost of
// staleness.
#include "scenario/scenario.h"
#include "scenario/sharded_runner.h"

namespace erasmus::scenario {
namespace {

using sim::Duration;

class MixedTmFleetScenario : public Scenario {
 public:
  std::string name() const override { return "mixed_tm_fleet"; }
  std::string description() const override {
    return "fleet with per-device T_M classes from a FleetPlan cycle; "
           "per-class measurement/freshness trade-off table";
  }
  std::vector<ParamSpec> param_specs() const override {
    return {
        {"devices", "48", "fleet size"},
        {"threads", "1", "shard/worker threads"},
        {"seed", "7", "mobility + key seed"},
        {"rounds", "8", "collection rounds"},
        {"interval", "30m", "time between collections"},
        {"k", "12", "records collected per device per round"},
        {"field", "150", "field side (metres)"},
        {"range", "55", "radio range (metres)"},
        {"tm_classes", "5m,10m,20m,40m",
         "comma-separated T_M classes; device id picks class id mod count"},
    };
  }

  int run(const ParamMap& params, MetricsSink& sink) const override {
    const std::vector<Duration> classes =
        parse_duration_list(params.get_str("tm_classes", "5m,10m,20m,40m"));

    swarm::DeviceSpec base;
    base.app_ram_bytes = 2 * 1024;
    base.store_slots = 64;

    ShardedFleetConfig cfg;
    cfg.plan = swarm::FleetPlan::uniform(
        static_cast<size_t>(params.get_u64("devices", 48)),
        params.get_u64("seed", 7), base);
    cfg.plan.cycle_tm(classes);
    cfg.plan.mobility.field_size = params.get_double("field", 150.0);
    cfg.plan.mobility.radio_range = params.get_double("range", 55.0);
    cfg.plan.mobility.speed_min = 1.0;
    cfg.plan.mobility.speed_max = 3.0;
    cfg.plan.mobility.seed = params.get_u64("seed", 7);
    cfg.threads = static_cast<size_t>(params.get_u64("threads", 1));
    cfg.rounds = static_cast<size_t>(params.get_u64("rounds", 8));
    cfg.round_interval =
        params.get_duration("interval", Duration::minutes(30));
    cfg.k = static_cast<size_t>(params.get_u64("k", 12));

    sink.note("devices", static_cast<uint64_t>(cfg.plan.devices()));
    sink.note("seed", params.get_u64("seed", 7));
    sink.note("rounds", static_cast<uint64_t>(cfg.rounds));

    ShardedFleetRunner runner(cfg);
    runner.run(sink);

    const Duration horizon = cfg.round_interval * cfg.rounds;
    for (size_t c = 0; c < classes.size(); ++c) {
      uint64_t devices = 0, measurements = 0, collections = 0;
      for (swarm::DeviceId id = 0; id < runner.size(); ++id) {
        if (id % classes.size() != c) continue;
        ++devices;
        measurements += runner.prover(id).stats().measurements;
        collections += runner.prover(id).stats().collections;
      }
      const double tm_min = classes[c].to_seconds() / 60.0;
      sink.row("tm_classes",
               {{"tm_min", tm_min},
                {"devices", devices},
                {"measurements", measurements},
                {"collections", collections},
                {"measurements_per_device_h",
                 devices == 0
                     ? 0.0
                     : static_cast<double>(measurements) /
                           static_cast<double>(devices) /
                           (horizon.to_seconds() / 3600.0)},
                {"expected_freshness_min", tm_min / 2.0}});
    }
    return 0;
  }
};

ERASMUS_SCENARIO(MixedTmFleetScenario)

}  // namespace
}  // namespace erasmus::scenario
