// Scenario `mixed_tm_fleet`: heterogeneous measurement periods in one fleet.
//
// Real deployments mix device classes: battery-starved sensors measuring
// every 40 min next to mains-powered gateways measuring every 5 min. Each
// device's T_M is drawn from a small set by id, the fleet runs under one
// collection schedule, and the final per-class table shows the QoA/energy
// trade the paper's §4 reasons about: short-T_M classes stay fresh, long-
// T_M classes save measurements at the cost of staleness.
#include "scenario/scenario.h"
#include "scenario/sharded_runner.h"

namespace erasmus::scenario {
namespace {

using sim::Duration;

constexpr uint64_t kClassTmMin[] = {5, 10, 20, 40};
constexpr size_t kClasses = sizeof(kClassTmMin) / sizeof(kClassTmMin[0]);

class MixedTmFleetScenario : public Scenario {
 public:
  std::string name() const override { return "mixed_tm_fleet"; }
  std::string description() const override {
    return "fleet with per-device T_M drawn from {5,10,20,40} min; per-class "
           "measurement/freshness trade-off table";
  }
  std::vector<ParamSpec> param_specs() const override {
    return {
        {"devices", "48", "fleet size"},
        {"threads", "1", "shard/worker threads"},
        {"seed", "7", "mobility + key seed"},
        {"rounds", "8", "collection rounds"},
        {"interval_min", "30", "minutes between collections"},
        {"k", "12", "records collected per device per round"},
        {"field", "150", "field side (metres)"},
        {"range", "55", "radio range (metres)"},
    };
  }

  int run(const ParamMap& params, MetricsSink& sink) const override {
    ShardedFleetConfig cfg;
    cfg.fleet.devices = static_cast<size_t>(params.get_u64("devices", 48));
    cfg.fleet.app_ram_bytes = 2 * 1024;
    cfg.fleet.store_slots = 64;
    cfg.fleet.key_seed = params.get_u64("seed", 7);
    cfg.fleet.mobility.field_size = params.get_double("field", 150.0);
    cfg.fleet.mobility.radio_range = params.get_double("range", 55.0);
    cfg.fleet.mobility.speed_min = 1.0;
    cfg.fleet.mobility.speed_max = 3.0;
    cfg.fleet.mobility.seed = params.get_u64("seed", 7);
    cfg.threads = static_cast<size_t>(params.get_u64("threads", 1));
    cfg.rounds = static_cast<size_t>(params.get_u64("rounds", 8));
    cfg.round_interval =
        Duration::minutes(params.get_u64("interval_min", 30));
    cfg.k = static_cast<size_t>(params.get_u64("k", 12));
    // Device class = id mod 4, so classes are spread uniformly over the
    // field and over the shards.
    cfg.tm_for = [](swarm::DeviceId id) {
      return Duration::minutes(kClassTmMin[id % kClasses]);
    };

    sink.note("devices", static_cast<uint64_t>(cfg.fleet.devices));
    sink.note("seed", params.get_u64("seed", 7));
    sink.note("rounds", static_cast<uint64_t>(cfg.rounds));

    ShardedFleetRunner runner(cfg);
    runner.run(sink);

    const Duration horizon = cfg.round_interval * cfg.rounds;
    for (size_t c = 0; c < kClasses; ++c) {
      uint64_t devices = 0, measurements = 0, collections = 0;
      for (swarm::DeviceId id = 0; id < runner.size(); ++id) {
        if (id % kClasses != c) continue;
        ++devices;
        measurements += runner.prover(id).stats().measurements;
        collections += runner.prover(id).stats().collections;
      }
      const double expected_freshness_min =
          static_cast<double>(kClassTmMin[c]) / 2.0;
      sink.row("tm_classes",
               {{"tm_min", kClassTmMin[c]},
                {"devices", devices},
                {"measurements", measurements},
                {"collections", collections},
                {"measurements_per_device_h",
                 devices == 0
                     ? 0.0
                     : static_cast<double>(measurements) /
                           static_cast<double>(devices) /
                           (horizon.to_seconds() / 3600.0)},
                {"expected_freshness_min", expected_freshness_min}});
    }
    return 0;
  }
};

ERASMUS_SCENARIO(MixedTmFleetScenario)

}  // namespace
}  // namespace erasmus::scenario
