// Scenario `swarm_relay`: multi-hop overlay collection of a mobile swarm
// (§6, the packet-level version of swarm_patrol's rover).
//
// N devices self-measure while moving at vehicle speeds; at every round
// barrier the AttestationService floods a collect request through the
// overlay::RelayTransport and harvests whatever part of the swarm has a
// multi-hop path at that instant -- store-and-forward relays, bounded
// queues, TTL-bounded discovery and mobility-aware route repair included.
// One device picks up persistent malware mid-run and must be flagged
// through the relay path. Emits the standard per-round fleet rows plus
// per-round overlay counters and the hop-count distribution.
//
// `threads=8 devices=1000` uses all cores and produces byte-identical
// metrics to `threads=1`: provers advance on shard queues between
// barriers, while every packet of the overlay runs on the single-threaded
// coordinator clock.
#include "adversary/adversary.h"
#include "scenario/scenario.h"
#include "scenario/sharded_runner.h"

namespace erasmus::scenario {
namespace {

using sim::Duration;
using sim::Time;

class SwarmRelayScenario : public Scenario {
 public:
  std::string name() const override { return "swarm_relay"; }
  std::string description() const override {
    return "mobile swarm collected through the multi-hop overlay "
           "(flood discovery, store-and-forward relays, route repair); "
           "sharded multi-core fleet";
  }
  std::vector<ParamSpec> param_specs() const override {
    return {
        {"devices", "50", "fleet size"},
        {"threads", "1", "shard/worker threads (wall-clock only; metrics "
                         "are thread-count independent)"},
        {"seed", "2024", "mobility + key + loss seed"},
        {"arch", "smartplus", "security architecture (smartplus, hydra, "
                              "trustlite)"},
        {"tm", "10m", "self-measurement period T_M"},
        {"rounds", "4", "collection rounds"},
        {"interval", "30m", "time between collection rounds"},
        {"k", "8", "records collected per device per round"},
        {"ttl", "8", "flood TTL (reaches ttl+1 hops)"},
        {"queue_depth", "16", "per-relay store-and-forward buffer (reports)"},
        {"forward_spacing", "1ms", "relay serialization per report"},
        {"latency", "2ms", "per-hop radio latency"},
        {"loss", "0", "per-hop datagram loss probability"},
        {"deadline", "30s", "listening window per round"},
        {"timeout", "10s", "per-attempt response timeout"},
        {"retries", "1", "per-session retry budget (each retry re-floods "
                         "or, with scoped_retries=on, unicasts a cached "
                         "route)"},
        {"window", "default", "dispatch window: default|fleet|adaptive|N "
                              "(adaptive = AIMD with congestion damping)"},
        {"scoped_retries", "off", "retry over the cached parent path "
                                  "instead of re-flooding while the route "
                                  "is fresh (on|off)"},
        {"route_ttl", "30s", "how long a reported path stays usable for "
                             "scoped retries"},
        {"aggregate", "off", "hierarchical collection: off | on (depth-band "
                             "head election per flood) | planned (static "
                             "id-stride heads)"},
        {"aggregate_stride", "2", "head election stride: every stride-th "
                                  "flood depth (on) or device id (planned) "
                                  "heads a cluster"},
        {"aggregate_window", "200ms", "head hold-and-combine window before "
                                      "the aggregate frame is flushed"},
        {"field", "300", "field side (metres) -- topology density"},
        {"range", "60", "radio range (metres)"},
        {"speed_min", "6", "min speed (m/s)"},
        {"speed_max", "12", "max speed (m/s)"},
        {"infect_device", "13", "device infected mid-run (skipped when "
                                ">= devices)"},
        {"infect_at", "42m", "infection time into the run"},
        {"battery", "", "per-device battery with a REQUIRED unit (e.g. "
                        "500mJ, 2J); devices that exhaust it go dark. "
                        "Empty = unmetered; 0J = metered but unlimited "
                        "(joule accounting only)"},
        {"adversary", "off", "attacker family: off | roaming (mobile "
                             "malware hopping hosts) | relay (compromised "
                             "relays drop/corrupt relayed frames) | sybil "
                             "(compromised relays flood forged-origin "
                             "reports)"},
        {"adversary_dwell", "12m", "useful-work time the roaming malware "
                                   "needs on one host (REQUIRED unit; the "
                                   "paper's T_M-vs-dwell lever)"},
        {"migration", "aware", "roaming strategy: random | aware "
                               "(measurement-schedule aware) | dwell "
                               "(random host, randomized dwell)"},
        {"adversary_chains", "2", "independent roaming infection chains"},
        {"adversary_at", "5m", "earliest first-infection time into the run"},
        {"compromised", "0.15", "relay/sybil: fraction of relay nodes "
                                "compromised (at least one)"},
        {"sybil_reports", "4", "sybil: forged-origin reports injected per "
                               "first-sight flood"},
        {"relay_corrupt", "off", "relay: corrupt relayed frames instead of "
                                 "dropping them (on|off)"},
    };
  }

  int run(const ParamMap& params, MetricsSink& sink) const override {
    swarm::DeviceSpec base;
    base.arch = hw::arch_kind_from_string(
        params.get_str("arch", "smartplus"));
    base.profile = swarm::default_profile_for(base.arch);
    base.tm = params.get_duration("tm", Duration::minutes(10));
    base.app_ram_bytes = 2 * 1024;
    base.store_slots = 64;

    ShardedFleetConfig cfg;
    cfg.plan = swarm::FleetPlan::uniform(
        static_cast<size_t>(params.get_u64("devices", 50)),
        params.get_u64("seed", 2024), base);
    cfg.plan.staggered = true;
    cfg.plan.mobility.field_size = params.get_double("field", 300.0);
    cfg.plan.mobility.radio_range = params.get_double("range", 60.0);
    cfg.plan.mobility.speed_min = params.get_double("speed_min", 6.0);
    cfg.plan.mobility.speed_max = params.get_double("speed_max", 12.0);
    cfg.plan.mobility.seed = params.get_u64("seed", 2024);
    cfg.threads = static_cast<size_t>(params.get_u64("threads", 1));
    cfg.rounds = static_cast<size_t>(params.get_u64("rounds", 4));
    cfg.round_interval =
        params.get_duration("interval", Duration::minutes(30));
    cfg.k = static_cast<size_t>(params.get_u64("k", 8));

    cfg.backend = CollectionBackend::kOverlay;
    cfg.overlay.ttl =
        static_cast<uint8_t>(params.get_u64("ttl", 8));
    cfg.overlay.queue_depth =
        static_cast<size_t>(params.get_u64("queue_depth", 16));
    cfg.overlay.forward_spacing =
        params.get_duration("forward_spacing", Duration::millis(1));
    cfg.overlay.net_latency =
        params.get_duration("latency", Duration::millis(2));
    cfg.overlay.net_loss = params.get_double("loss", 0.0);
    cfg.overlay.collect_deadline =
        params.get_duration("deadline", Duration::seconds(30));
    cfg.overlay.response_timeout =
        params.get_duration("timeout", Duration::seconds(10));
    cfg.overlay.max_retries =
        static_cast<int>(params.get_u64("retries", 1));
    cfg.window = WindowSpec::parse(params.get_str("window", "default"));
    cfg.overlay.scoped_retries = params.get_bool("scoped_retries", false);
    cfg.overlay.route_ttl =
        params.get_duration("route_ttl", Duration::seconds(30));
    // Loud on anything but the three-valued grammar: a typo silently
    // falling back to per-device relaying would invalidate a 10k bench.
    const std::string agg = params.get_str("aggregate", "off");
    if (agg == "on") {
      cfg.overlay.aggregation.enabled = true;
      cfg.overlay.aggregation.election.mode =
          aggregate::ElectionMode::kDepthBand;
    } else if (agg == "planned") {
      cfg.overlay.aggregation.enabled = true;
      cfg.overlay.aggregation.election.mode = aggregate::ElectionMode::kPlanned;
    } else if (agg != "off") {
      throw std::invalid_argument(
          "aggregate: expected 'off', 'on' or 'planned', got '" + agg + "'");
    }
    cfg.overlay.aggregation.election.stride =
        static_cast<uint32_t>(params.get_u64("aggregate_stride", 2));
    cfg.overlay.aggregation.window =
        params.get_duration("aggregate_window", Duration::millis(200));
    if (params.has("battery")) {
      cfg.energy.metered = true;
      cfg.energy.battery = params.get_energy("battery", {});
    }
    // Adversary knobs go through the loud parsers: `adversary=banana` and
    // a unitless `adversary_dwell=12` both throw with the offending value.
    cfg.adversary.mode =
        adversary::parse_mode(params.get_str("adversary", "off"));
    cfg.adversary.migration =
        adversary::parse_migration(params.get_str("migration", "aware"));
    cfg.adversary.dwell =
        params.get_duration("adversary_dwell", Duration::minutes(12));
    cfg.adversary.chains =
        static_cast<size_t>(params.get_u64("adversary_chains", 2));
    cfg.adversary.first_infection =
        params.get_duration("adversary_at", Duration::minutes(5));
    cfg.adversary.seed = params.get_u64("seed", 2024);
    cfg.adversary.compromised_fraction =
        params.get_double("compromised", 0.15);
    cfg.adversary.sybil_per_flood =
        static_cast<uint32_t>(params.get_u64("sybil_reports", 4));
    cfg.adversary.corrupt_frames = params.get_bool("relay_corrupt", false);

    sink.note("devices", static_cast<uint64_t>(cfg.plan.devices()));
    sink.note("seed", params.get_u64("seed", 2024));
    sink.note("arch", hw::to_string(base.arch));
    sink.note("tm_min", base.tm.to_seconds() / 60.0);
    sink.note("rounds", static_cast<uint64_t>(cfg.rounds));
    sink.note("ttl", static_cast<uint64_t>(cfg.overlay.ttl));
    sink.note("queue_depth", static_cast<uint64_t>(cfg.overlay.queue_depth));
    sink.note("window", params.get_str("window", "default"));
    sink.note("scoped_retries", params.get_bool("scoped_retries", false));
    sink.note("aggregate", agg);
    sink.note("adversary", params.get_str("adversary", "off"));

    ShardedFleetRunner runner(cfg);

    // Range-check before narrowing: a 64-bit id must not wrap into range.
    const uint64_t infect_raw = params.get_u64("infect_device", 13);
    if (infect_raw < cfg.plan.devices()) {
      const auto infect = static_cast<swarm::DeviceId>(infect_raw);
      runner.schedule_on_device(
          infect,
          Time::zero() +
              params.get_duration("infect_at", Duration::minutes(42)),
          [](attest::Prover& p) {
            p.memory().write(p.attested_region(), 64, bytes_of("IMPLANT"),
                             false);
          });
    }

    const auto rounds = runner.run(sink);
    size_t flagged_rounds = 0;
    size_t collected = 0;
    for (const auto& r : rounds) {
      flagged_rounds += r.flagged > 0;
      collected += r.reachable;
    }
    sink.note("rounds_with_flagged_device",
              static_cast<uint64_t>(flagged_rounds));
    sink.note("device_collections", static_cast<uint64_t>(collected));

    if (const energy::FleetMeter* meter = runner.energy_meter()) {
      sink.note("fleet_spent_mj", meter->totals().spent_mj());
      sink.note("dark_devices_final",
                static_cast<uint64_t>(meter->dark_count()));
    }

    // End-of-run overlay totals: how the swarm was actually reached.
    const auto totals = runner.overlay_totals();
    sink.note("floods_forwarded_total", totals.floods_forwarded);
    sink.note("reports_relayed_total", totals.reports_relayed);
    sink.note("reports_dropped_total", totals.reports_dropped);
    sink.note("route_repairs_total", totals.route_repairs);
    if (cfg.overlay.scoped_retries) {
      sink.note("scoped_retries_total", totals.scoped_sent);
      sink.note("scoped_hops_total", totals.scoped_forwarded);
      sink.note("scoped_naks_total", totals.naks);
    }
    if (cfg.overlay.aggregation.enabled) {
      sink.note("heads_elected_total", totals.heads_elected);
      sink.note("reports_absorbed_total", totals.reports_absorbed);
      sink.note("aggregates_built_total", totals.aggregates_built);
      sink.note("aggregates_received_total", totals.aggregates_received);
      sink.note("aggregates_dark_purged_total",
                totals.aggregates_dark_purged);
      sink.note("demand_fetches_total", runner.service().stats().demand_fetches);
      sink.note("aggregated_sessions_total",
                runner.service().stats().aggregated_sessions);
    }
    // Campaign outcome: how the configured attacker actually fared.
    if (const adversary::Engine* engine = runner.adversary_engine()) {
      sink.note("chains_planned",
                static_cast<uint64_t>(engine->chain_count()));
      sink.note("chains_detected",
                static_cast<uint64_t>(engine->detected_chains()));
      sink.note("detection_probability", engine->detection_probability());
      sink.note("detection_latency_min",
                engine->mean_detection_latency().to_seconds() / 60.0);
      sink.note("migrations_total", engine->migrations_total());
      sink.note("evasions_total", engine->evasions_total());
      sink.note("captures_total", engine->captures_total());
      sink.note("dropped_adversarial_total", totals.dropped_adversarial);
      sink.note("corrupted_adversarial_total", totals.corrupted_adversarial);
      sink.note("sybil_injected_total", totals.sybil_injected);
      sink.note("spoofed_rejected_total", totals.spoofed_rejected);
    }
    uint64_t weighted = 0;
    uint64_t reports = 0;
    for (size_t h = 0; h < totals.hops.size(); ++h) {
      weighted += totals.hops[h] * h;
      reports += totals.hops[h];
    }
    sink.note("mean_relay_hops",
              reports == 0 ? 0.0
                           : static_cast<double>(weighted) /
                                 static_cast<double>(reports));
    return 0;
  }
};

ERASMUS_SCENARIO(SwarmRelayScenario)

}  // namespace
}  // namespace erasmus::scenario
