// Scenario `plant_sensor`: a safety-critical, time-sensitive industrial
// sensor (§5).
//
// A pressure controller on an 8 MHz MSP430-class MCU runs a hard-real-time
// control task every T_M, phased so nominal measurement instants land
// inside the control windows -- the worst case for a strict schedule. The
// three conflict policies run over a simulated week; a mid-week infection
// must still be caught. (Port of examples/unattended_plant_sensor.cpp.)
#include "attest/directory.h"
#include "attest/measurement.h"
#include "attest/prover.h"
#include "attest/service.h"
#include "attest/transport.h"
#include "malware/malware.h"
#include "scenario/scenario.h"

namespace erasmus::scenario {
namespace {

using sim::Duration;
using sim::Time;

struct PlantRun {
  uint64_t measurements = 0;
  uint64_t deferred = 0;
  uint64_t skipped = 0;
  double interference_s = 0.0;
  bool infection_detected = false;
};

PlantRun run_week(attest::ConflictPolicy policy, double window_factor,
                  Duration tm, Duration task_len, Duration horizon) {
  const size_t kRecordBytes =
      1 + attest::Measurement::wire_size(crypto::MacAlgo::kHmacSha256);
  const Bytes key = bytes_of("plant-sensor-key-0123456789abcde");

  sim::EventQueue sim;
  hw::SmartPlusArch device(key, 8 * 1024, 10 * 1024, 64 * kRecordBytes);

  attest::ProverConfig pc;
  pc.conflict_policy = policy;

  std::unique_ptr<attest::Scheduler> sched =
      std::make_unique<attest::RegularScheduler>(tm);
  if (policy == attest::ConflictPolicy::kAbortAndReschedule) {
    sched = std::make_unique<attest::LenientScheduler>(std::move(sched),
                                                       window_factor);
  }
  attest::Prover prover(sim, device, device.app_region(),
                        device.store_region(), std::move(sched), pc);

  // Verifier side: one directory record judged through the shared service
  // over the in-process transport.
  attest::DeviceRecord record;
  record.key = key;
  record.set_golden(crypto::Hash::digest(
      crypto::HashAlgo::kSha256,
      device.memory().view(device.app_region(), true)));
  attest::DeviceDirectory directory;
  const attest::DeviceId dev = directory.add(/*node=*/0, std::move(record));
  attest::DirectTransport transport;
  transport.attach(/*node=*/0, prover);
  attest::AttestationService service(sim, transport, directory,
                                     attest::ServiceConfig{});

  prover.start();

  // Control windows [tm - 1min, tm + 1min) around every nominal
  // measurement instant.
  for (Time at = Time::zero() + tm - Duration::minutes(1);
       at < Time::zero() + horizon; at = at + tm) {
    prover.add_critical_task(at, task_len);
  }

  // Mid-week infection: persistent for 90 minutes, then covers its tracks.
  malware::MobileMalware intruder(sim, prover);
  intruder.schedule(Time::zero() + Duration::hours(80),
                    Duration::minutes(90));

  PlantRun result;
  for (Time at = Time::zero() + Duration::hours(12);
       at <= Time::zero() + horizon; at = at + Duration::hours(12)) {
    sim.schedule_at(at, [&, dev] {
      const auto outcomes = service.collect_now({dev}, /*k=*/40);
      result.infection_detected |= outcomes.at(0).report.infection_detected;
    });
  }

  sim.run_until(Time::zero() + horizon);
  result.measurements = prover.stats().measurements;
  result.deferred = prover.stats().aborted;
  result.skipped = prover.stats().skipped;
  result.interference_s = prover.stats().task_interference.to_seconds();
  return result;
}

const char* policy_name(attest::ConflictPolicy p) {
  switch (p) {
    case attest::ConflictPolicy::kMeasureAnyway: return "strict";
    case attest::ConflictPolicy::kSkip: return "skip";
    case attest::ConflictPolicy::kAbortAndReschedule: return "lenient";
  }
  return "?";
}

class PlantSensorScenario : public Scenario {
 public:
  std::string name() const override { return "plant_sensor"; }
  std::string description() const override {
    return "hard-real-time sensor, one week: strict vs skip vs lenient "
           "conflict policy; mid-week infection must be caught";
  }
  std::vector<ParamSpec> param_specs() const override {
    return {
        {"tm_min", "20", "measurement period == control-task period (min)"},
        {"task_min", "2", "control-task length (minutes)"},
        {"days", "7", "simulated days"},
        {"window_factor", "2", "lenient w: retry window as multiple of T_M"},
    };
  }

  int run(const ParamMap& params, MetricsSink& sink) const override {
    const Duration tm = Duration::minutes(params.get_u64("tm_min", 20));
    const Duration task_len =
        Duration::minutes(params.get_u64("task_min", 2));
    const Duration horizon =
        Duration::hours(24 * params.get_u64("days", 7));
    const double w = params.get_double("window_factor", 2.0);

    sink.note("tm_min", params.get_u64("tm_min", 20));
    sink.note("days", params.get_u64("days", 7));

    bool lenient_clean = false, lenient_detected = false;
    for (const auto policy : {attest::ConflictPolicy::kMeasureAnyway,
                              attest::ConflictPolicy::kSkip,
                              attest::ConflictPolicy::kAbortAndReschedule}) {
      const PlantRun r = run_week(policy, w, tm, task_len, horizon);
      sink.row("policies",
               {{"policy", policy_name(policy)},
                {"measurements", r.measurements},
                {"deferred", r.deferred},
                {"skipped", r.skipped},
                {"interference_s", r.interference_s},
                {"infection_detected", r.infection_detected}});
      if (policy == attest::ConflictPolicy::kAbortAndReschedule) {
        lenient_clean = r.interference_s == 0.0;
        lenient_detected = r.infection_detected;
      }
    }
    // The paper's §5 takeaway must hold: lenient scheduling removes all
    // interference without losing the detection.
    return lenient_clean && lenient_detected ? 0 : 1;
  }
};

ERASMUS_SCENARIO(PlantSensorScenario)

}  // namespace
}  // namespace erasmus::scenario
