// Scenario `plant_sensor`: a safety-critical, time-sensitive industrial
// sensor (§5).
//
// A pressure controller on an 8 MHz MSP430-class MCU runs a hard-real-time
// control task every T_M, phased so nominal measurement instants land
// inside the control windows -- the worst case for a strict schedule. The
// three conflict policies are three DeviceSpecs differing only in
// `conflict_policy` (the lenient retry window comes with the policy); each
// runs over a simulated week and a mid-week infection must still be
// caught.
#include "attest/directory.h"
#include "attest/service.h"
#include "attest/transport.h"
#include "malware/malware.h"
#include "scenario/scenario.h"
#include "swarm/provision.h"

namespace erasmus::scenario {
namespace {

using sim::Duration;
using sim::Time;

struct PlantRun {
  uint64_t measurements = 0;
  uint64_t deferred = 0;
  uint64_t skipped = 0;
  double interference_s = 0.0;
  bool infection_detected = false;
};

PlantRun run_week(attest::ConflictPolicy policy, double window_factor,
                  Duration tm, Duration task_len, Duration horizon) {
  swarm::DeviceSpec spec;
  spec.tm = tm;
  spec.conflict_policy = policy;
  spec.lenient_window_factor = window_factor;
  spec.app_ram_bytes = 10 * 1024;
  spec.store_slots = 64;
  spec.key = bytes_of("plant-sensor-key-0123456789abcde");

  sim::EventQueue sim;
  swarm::DeviceStack device = swarm::build_device_stack(sim, spec);
  attest::Prover& prover = *device.prover;

  // Verifier side: one directory record judged through the shared service
  // over the in-process transport.
  attest::DeviceDirectory directory;
  const attest::DeviceId dev =
      directory.add(/*node=*/0, swarm::build_device_record(spec, device));
  attest::DirectTransport transport;
  transport.attach(/*node=*/0, prover);
  attest::AttestationService service(sim, transport, directory,
                                     attest::ServiceConfig{});

  prover.start();

  // Control windows [tm - 1min, tm + 1min) around every nominal
  // measurement instant.
  for (Time at = Time::zero() + tm - Duration::minutes(1);
       at < Time::zero() + horizon; at = at + tm) {
    prover.add_critical_task(at, task_len);
  }

  // Mid-week infection: persistent for 90 minutes, then covers its tracks.
  malware::MobileMalware intruder(sim, prover);
  intruder.schedule(Time::zero() + Duration::hours(80),
                    Duration::minutes(90));

  PlantRun result;
  for (Time at = Time::zero() + Duration::hours(12);
       at <= Time::zero() + horizon; at = at + Duration::hours(12)) {
    sim.schedule_at(at, [&, dev] {
      const auto outcomes = service.collect_now({dev}, /*k=*/40);
      result.infection_detected |= outcomes.at(0).report.infection_detected;
    });
  }

  sim.run_until(Time::zero() + horizon);
  result.measurements = prover.stats().measurements;
  result.deferred = prover.stats().aborted;
  result.skipped = prover.stats().skipped;
  result.interference_s = prover.stats().task_interference.to_seconds();
  return result;
}

const char* policy_name(attest::ConflictPolicy p) {
  switch (p) {
    case attest::ConflictPolicy::kMeasureAnyway: return "strict";
    case attest::ConflictPolicy::kSkip: return "skip";
    case attest::ConflictPolicy::kAbortAndReschedule: return "lenient";
  }
  return "?";
}

class PlantSensorScenario : public Scenario {
 public:
  std::string name() const override { return "plant_sensor"; }
  std::string description() const override {
    return "hard-real-time sensor, one week: strict vs skip vs lenient "
           "conflict policy; mid-week infection must be caught";
  }
  std::vector<ParamSpec> param_specs() const override {
    return {
        {"tm", "20m", "measurement period == control-task period"},
        {"task", "2m", "control-task length"},
        {"days", "7", "simulated days"},
        {"window_factor", "2", "lenient w: retry window as multiple of T_M"},
    };
  }

  int run(const ParamMap& params, MetricsSink& sink) const override {
    const Duration tm = params.get_duration("tm", Duration::minutes(20));
    const Duration task_len =
        params.get_duration("task", Duration::minutes(2));
    const Duration horizon =
        Duration::hours(24 * params.get_u64("days", 7));
    const double w = params.get_double("window_factor", 2.0);

    sink.note("tm_min", tm.to_seconds() / 60.0);
    sink.note("days", params.get_u64("days", 7));

    bool lenient_clean = false, lenient_detected = false;
    for (const auto policy : {attest::ConflictPolicy::kMeasureAnyway,
                              attest::ConflictPolicy::kSkip,
                              attest::ConflictPolicy::kAbortAndReschedule}) {
      const PlantRun r = run_week(policy, w, tm, task_len, horizon);
      sink.row("policies",
               {{"policy", policy_name(policy)},
                {"measurements", r.measurements},
                {"deferred", r.deferred},
                {"skipped", r.skipped},
                {"interference_s", r.interference_s},
                {"infection_detected", r.infection_detected}});
      if (policy == attest::ConflictPolicy::kAbortAndReschedule) {
        lenient_clean = r.interference_s == 0.0;
        lenient_detected = r.infection_detected;
      }
    }
    // The paper's §5 takeaway must hold: lenient scheduling removes all
    // interference without losing the detection.
    return lenient_clean && lenient_detected ? 0 : 1;
  }
};

ERASMUS_SCENARIO(PlantSensorScenario)

}  // namespace
}  // namespace erasmus::scenario
