// Scenario `swarm_patrol`: a mobile drone swarm patrolling a field (§6).
//
// N devices move at vehicle speeds; a maintenance rover (co-located with
// the root device) passes through every round and collects stored
// self-measurements from whatever part of the swarm is momentarily
// reachable. One device picks up persistent malware early in the patrol.
// Contrasts with an on-demand swarm attestation attempt over the same
// mobility and shows staggered scheduling keeping the swarm available.
//
// Provisioned through a uniform FleetPlan (the `arch` parameter selects
// the security architecture fleet-wide); `threads=8 devices=1000` uses all
// cores and produces byte-identical metrics to `threads=1`.
#include "scenario/scenario.h"
#include "scenario/sharded_runner.h"
#include "swarm/protocols.h"

namespace erasmus::scenario {
namespace {

using sim::Duration;
using sim::Time;

class SwarmPatrolScenario : public Scenario {
 public:
  std::string name() const override { return "swarm_patrol"; }
  std::string description() const override {
    return "mobile drone swarm with rover collection rounds; one device "
           "infected mid-patrol; sharded multi-core fleet";
  }
  std::vector<ParamSpec> param_specs() const override {
    return {
        {"devices", "20", "fleet size"},
        {"threads", "1", "shard/worker threads (wall-clock only; metrics "
                         "are thread-count independent)"},
        {"seed", "2024", "mobility + key seed"},
        {"arch", "smartplus", "security architecture (smartplus, hydra, "
                              "trustlite)"},
        {"tm", "10m", "self-measurement period T_M"},
        {"rounds", "6", "collection rounds"},
        {"interval", "30m", "time between rover passes"},
        {"k", "8", "records collected per device per round"},
        {"field", "200", "field side (metres)"},
        {"range", "60", "radio range (metres)"},
        {"speed_min", "6", "min speed (m/s)"},
        {"speed_max", "12", "max speed (m/s)"},
        {"infect_device", "13", "device infected mid-patrol (skipped when "
                                ">= devices)"},
        {"infect_at", "42m", "infection time into the patrol"},
        {"battery", "", "per-device battery with a REQUIRED unit (e.g. "
                        "500mJ, 2J); devices that exhaust it go dark. "
                        "Empty = unmetered; 0J = metered but unlimited "
                        "(joule accounting only)"},
    };
  }

  int run(const ParamMap& params, MetricsSink& sink) const override {
    swarm::DeviceSpec base;
    base.arch = hw::arch_kind_from_string(
        params.get_str("arch", "smartplus"));
    base.profile = swarm::default_profile_for(base.arch);
    base.tm = params.get_duration("tm", Duration::minutes(10));
    base.app_ram_bytes = 2 * 1024;
    base.store_slots = 64;

    ShardedFleetConfig cfg;
    cfg.plan = swarm::FleetPlan::uniform(
        static_cast<size_t>(params.get_u64("devices", 20)),
        params.get_u64("seed", 2024), base);
    cfg.plan.staggered = true;
    cfg.plan.mobility.field_size = params.get_double("field", 200.0);
    cfg.plan.mobility.radio_range = params.get_double("range", 60.0);
    cfg.plan.mobility.speed_min = params.get_double("speed_min", 6.0);
    cfg.plan.mobility.speed_max = params.get_double("speed_max", 12.0);
    cfg.plan.mobility.seed = params.get_u64("seed", 2024);
    cfg.threads = static_cast<size_t>(params.get_u64("threads", 1));
    cfg.rounds = static_cast<size_t>(params.get_u64("rounds", 6));
    cfg.round_interval =
        params.get_duration("interval", Duration::minutes(30));
    cfg.k = static_cast<size_t>(params.get_u64("k", 8));
    if (params.has("battery")) {
      cfg.energy.metered = true;
      cfg.energy.battery = params.get_energy("battery", {});
    }

    sink.note("devices", static_cast<uint64_t>(cfg.plan.devices()));
    sink.note("seed", params.get_u64("seed", 2024));
    sink.note("arch", hw::to_string(base.arch));
    sink.note("tm_min", base.tm.to_seconds() / 60.0);
    sink.note("rounds", static_cast<uint64_t>(cfg.rounds));

    ShardedFleetRunner runner(cfg);

    // Range-check before narrowing: a 64-bit id must not wrap into range.
    const uint64_t infect_raw = params.get_u64("infect_device", 13);
    if (infect_raw < cfg.plan.devices()) {
      const auto infect = static_cast<swarm::DeviceId>(infect_raw);
      runner.schedule_on_device(
          infect,
          Time::zero() +
              params.get_duration("infect_at", Duration::minutes(42)),
          [](attest::Prover& p) {
            p.memory().write(p.attested_region(), 64, bytes_of("IMPLANT"),
                             false);
          });
    }

    const auto rounds = runner.run(sink);
    size_t flagged_rounds = 0;
    for (const auto& r : rounds) flagged_rounds += r.flagged > 0;
    sink.note("rounds_with_flagged_device",
              static_cast<uint64_t>(flagged_rounds));

    if (const energy::FleetMeter* meter = runner.energy_meter()) {
      sink.note("fleet_spent_mj", meter->totals().spent_mj());
      sink.note("dark_devices_final",
                static_cast<uint64_t>(meter->dark_count()));
    }

    // Contrast: one SEDA-style on-demand round vs ERASMUS collection over
    // the swarm state at the end of the patrol.
    swarm::SwarmProtocolConfig pc;
    pc.measurement_time = Duration::seconds(7);
    const Time end =
        Time::zero() + cfg.round_interval * cfg.rounds;
    const auto od =
        swarm::run_ondemand_round(runner.mobility(), end, 0, pc);
    const auto er = swarm::run_erasmus_collection_round(runner.mobility(),
                                                        end, 0, pc);
    sink.note("ondemand_attested", static_cast<uint64_t>(od.attested));
    sink.note("ondemand_duration_s", od.duration.to_seconds());
    sink.note("collection_attested", static_cast<uint64_t>(er.attested));
    sink.note("collection_duration_s", er.duration.to_seconds());

    // Staggering keeps the swarm available (§6, last paragraph).
    sink.note("max_busy_aligned",
              static_cast<uint64_t>(swarm::max_concurrent_busy(
                  cfg.plan.devices(), base.tm, Duration::seconds(7),
                  false)));
    sink.note("max_busy_staggered",
              static_cast<uint64_t>(swarm::max_concurrent_busy(
                  cfg.plan.devices(), base.tm, Duration::seconds(7),
                  true)));
    return 0;
  }
};

ERASMUS_SCENARIO(SwarmPatrolScenario)

}  // namespace
}  // namespace erasmus::scenario
