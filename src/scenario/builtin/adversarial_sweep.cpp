// Scenario `adversarial_sweep`: the paper's T_M-vs-dwell detection curve,
// fleet edition (§3.5, §7).
//
// Sweeps the self-measurement period T_M across a roaming-malware campaign
// with a fixed useful-work dwell and emits one `sweep` row per T_M:
// detection probability, mean detection latency, and the migration/evasion
// counts behind them. Once T_M drops below the dwell, a measurement-aware
// adversary runs out of slack -- after its evasion budget it must sit
// through a measurement, and detection probability climbs toward 1. Each
// point is its own deterministic fleet run (same seed, fresh runner), so
// the curve is reproducible to the byte at any thread count.
#include "adversary/adversary.h"
#include "scenario/scenario.h"
#include "scenario/sharded_runner.h"

namespace erasmus::scenario {
namespace {

using sim::Duration;

class AdversarialSweepScenario : public Scenario {
 public:
  std::string name() const override { return "adversarial_sweep"; }
  std::string description() const override {
    return "T_M sweep vs a roaming-malware campaign: detection "
           "probability and latency per measurement period";
  }
  std::vector<ParamSpec> param_specs() const override {
    return {
        {"devices", "32", "fleet size"},
        {"threads", "1", "shard/worker threads (wall-clock only; metrics "
                         "are thread-count independent)"},
        {"seed", "2024", "mobility + key + itinerary seed"},
        {"tms", "30m,20m,15m,10m,6m,4m", "comma-separated T_M values to "
                                         "sweep (each REQUIRES a unit)"},
        {"adversary_dwell", "12m", "useful-work time the malware needs on "
                                   "one host (REQUIRED unit)"},
        {"migration", "aware", "roaming strategy: random | aware | dwell"},
        {"adversary_chains", "4", "independent infection chains per point"},
        {"rounds", "4", "collection rounds per point"},
        {"interval", "30m", "time between collection rounds"},
    };
  }

  int run(const ParamMap& params, MetricsSink& sink) const override {
    const std::vector<Duration> tms =
        parse_duration_list(params.get_str("tms", "30m,20m,15m,10m,6m,4m"));
    const Duration dwell =
        params.get_duration("adversary_dwell", Duration::minutes(12));
    const adversary::Migration migration =
        adversary::parse_migration(params.get_str("migration", "aware"));

    sink.note("devices", params.get_u64("devices", 32));
    sink.note("seed", params.get_u64("seed", 2024));
    sink.note("dwell_min", dwell.to_seconds() / 60.0);
    sink.note("migration", params.get_str("migration", "aware"));
    sink.note("points", static_cast<uint64_t>(tms.size()));

    for (const Duration tm : tms) {
      swarm::DeviceSpec base;
      base.profile = swarm::default_profile_for(base.arch);
      base.tm = tm;
      base.app_ram_bytes = 2 * 1024;
      base.store_slots = 64;

      ShardedFleetConfig cfg;
      cfg.plan = swarm::FleetPlan::uniform(
          static_cast<size_t>(params.get_u64("devices", 32)),
          params.get_u64("seed", 2024), base);
      cfg.plan.staggered = true;
      cfg.plan.mobility.seed = params.get_u64("seed", 2024);
      cfg.threads = static_cast<size_t>(params.get_u64("threads", 1));
      cfg.rounds = static_cast<size_t>(params.get_u64("rounds", 4));
      cfg.round_interval =
          params.get_duration("interval", Duration::minutes(30));
      cfg.adversary.mode = adversary::Mode::kRoaming;
      cfg.adversary.migration = migration;
      cfg.adversary.dwell = dwell;
      cfg.adversary.chains =
          static_cast<size_t>(params.get_u64("adversary_chains", 4));
      cfg.adversary.seed = params.get_u64("seed", 2024);

      // Per-point fleet rows would swamp the sweep table; the inner run
      // stays silent and only the campaign outcome is reported.
      NullSink quiet;
      ShardedFleetRunner runner(cfg);
      runner.run(quiet);

      const adversary::Engine* engine = runner.adversary_engine();
      sink.row("sweep",
               {{"tm_min", tm.to_seconds() / 60.0},
                {"chains", static_cast<uint64_t>(engine->chain_count())},
                {"detected",
                 static_cast<uint64_t>(engine->detected_chains())},
                {"detection_probability", engine->detection_probability()},
                {"detection_latency_min",
                 engine->mean_detection_latency().to_seconds() / 60.0},
                {"migrations", engine->migrations_total()},
                {"evasions", engine->evasions_total()},
                {"captures", engine->captures_total()}});
    }
    return 0;
  }
};

ERASMUS_SCENARIO(AdversarialSweepScenario)

}  // namespace
}  // namespace erasmus::scenario
