// Scenario `mixed_arch_fleet`: one fleet, several security architectures.
//
// The paper evaluates ERASMUS on SMART+ (8 MHz MSP430, Fig. 6) and HYDRA
// (1 GHz i.MX6, Fig. 8) and claims applicability to TrustLite/TyTAN; real
// deployments run all of them side by side. The `mix` parameter is the
// FleetPlan composition grammar ("smartplus:0.7,hydra:0.3"): slices
// interleave proportionally over device ids, each architecture gets its
// paper platform profile, and `tm_classes` layers heterogeneous
// measurement periods on top. Everything is collected through the one
// shared AttestationService; the per-architecture table contrasts
// measurement cost (an MSP430 measurement takes seconds, an i.MX6 one
// milliseconds) at identical protocol behaviour. One device is infected
// mid-run to show detection is architecture-independent.
#include <algorithm>

#include "scenario/scenario.h"
#include "scenario/sharded_runner.h"

namespace erasmus::scenario {
namespace {

using sim::Duration;
using sim::Time;

class MixedArchFleetScenario : public Scenario {
 public:
  std::string name() const override { return "mixed_arch_fleet"; }
  std::string description() const override {
    return "heterogeneous fleet from one FleetPlan: arch mix grammar + T_M "
           "classes, one shared verifier service, per-arch cost table";
  }
  std::vector<ParamSpec> param_specs() const override {
    return {
        {"devices", "60", "fleet size"},
        {"threads", "1", "shard/worker threads (wall-clock only; metrics "
                         "are thread-count independent)"},
        {"seed", "7", "mobility + key seed"},
        {"mix", "smartplus:0.7,hydra:0.3",
         "arch:weight[,arch:weight...] composition (smartplus, hydra, "
         "trustlite); slices interleave proportionally"},
        {"tm_classes", "5m,20m",
         "comma-separated T_M classes; device id picks class id mod count"},
        {"rounds", "6", "collection rounds"},
        {"interval", "30m", "time between collections"},
        {"k", "8", "records collected per device per round"},
        {"field", "160", "field side (metres)"},
        {"range", "55", "radio range (metres)"},
        {"infect_device", "17", "device infected mid-run (skipped when "
                                ">= devices)"},
        {"infect_at", "40m", "infection time into the run"},
    };
  }

  int run(const ParamMap& params, MetricsSink& sink) const override {
    const auto mix = swarm::parse_arch_mix(
        params.get_str("mix", "smartplus:0.7,hydra:0.3"));
    const std::vector<Duration> classes =
        parse_duration_list(params.get_str("tm_classes", "5m,20m"));

    ShardedFleetConfig cfg;
    cfg.plan = swarm::FleetPlan(
        static_cast<size_t>(params.get_u64("devices", 60)),
        params.get_u64("seed", 7));
    for (const auto& [kind, weight] : mix) {
      swarm::DeviceSpec spec;
      spec.arch = kind;
      spec.profile = swarm::default_profile_for(kind);
      spec.app_ram_bytes = 2 * 1024;
      spec.store_slots = 64;
      cfg.plan.add_mix(weight, spec);
    }
    cfg.plan.cycle_tm(classes);
    cfg.plan.mobility.field_size = params.get_double("field", 160.0);
    cfg.plan.mobility.radio_range = params.get_double("range", 55.0);
    cfg.plan.mobility.speed_min = 1.0;
    cfg.plan.mobility.speed_max = 3.0;
    cfg.plan.mobility.seed = params.get_u64("seed", 7);
    cfg.threads = static_cast<size_t>(params.get_u64("threads", 1));
    cfg.rounds = static_cast<size_t>(params.get_u64("rounds", 6));
    cfg.round_interval =
        params.get_duration("interval", Duration::minutes(30));
    cfg.k = static_cast<size_t>(params.get_u64("k", 8));

    sink.note("devices", static_cast<uint64_t>(cfg.plan.devices()));
    sink.note("seed", params.get_u64("seed", 7));
    sink.note("mix", params.get_str("mix", "smartplus:0.7,hydra:0.3"));
    sink.note("rounds", static_cast<uint64_t>(cfg.rounds));

    ShardedFleetRunner runner(cfg);

    const uint64_t infect_raw = params.get_u64("infect_device", 17);
    if (infect_raw < cfg.plan.devices()) {
      runner.schedule_on_device(
          static_cast<swarm::DeviceId>(infect_raw),
          Time::zero() +
              params.get_duration("infect_at", Duration::minutes(40)),
          [](attest::Prover& p) {
            p.memory().write(p.attested_region(), 32, bytes_of("IMPLANT"),
                             false);
          });
      sink.note("infected_arch",
                hw::to_string(runner.spec(
                    static_cast<swarm::DeviceId>(infect_raw)).arch));
    }

    const auto rounds = runner.run(sink);
    size_t flagged_rounds = 0;
    for (const auto& r : rounds) flagged_rounds += r.flagged > 0;
    sink.note("rounds_with_flagged_device",
              static_cast<uint64_t>(flagged_rounds));

    // Per-architecture cost/health table: same protocol, per-platform
    // measurement cost from the paper's Fig. 6 / Fig. 8 models.
    std::vector<hw::ArchKind> seen;
    for (const auto& [kind, weight] : mix) {
      (void)weight;
      if (std::find(seen.begin(), seen.end(), kind) != seen.end()) continue;
      seen.push_back(kind);
      uint64_t devices = 0, measurements = 0, collections = 0;
      double busy_s = 0.0;
      for (swarm::DeviceId id = 0; id < runner.size(); ++id) {
        if (runner.spec(id).arch != kind) continue;
        ++devices;
        measurements += runner.prover(id).stats().measurements;
        collections += runner.prover(id).stats().collections;
        busy_s +=
            runner.prover(id).stats().total_measurement_time.to_seconds();
      }
      sink.row("arch_classes",
               {{"arch", hw::to_string(kind)},
                {"devices", devices},
                {"measurements", measurements},
                {"collections", collections},
                {"mean_measurement_ms",
                 measurements == 0
                     ? 0.0
                     : busy_s * 1000.0 / static_cast<double>(measurements)}});
    }
    return 0;
  }
};

ERASMUS_SCENARIO(MixedArchFleetScenario)

}  // namespace
}  // namespace erasmus::scenario
