// Scenario `device_lifecycle`: the full lifecycle of an unattended device.
//
// Provisioning (HKDF per-device keys into a DeviceSpec), steady state (the
// AttestationService collecting over a lossy link into the device's audit
// log), software update (attest-before / install / attest-after with
// golden-digest rotation -- the directory links the live DeviceRecord, so
// the rotation is immediately visible to the service), incident
// (malware detected through the service path) and decommissioning
// (authenticated secure erasure + proof of erasure).
#include "attest/directory.h"
#include "attest/maintenance.h"
#include "attest/service.h"
#include "attest/transport.h"
#include "crypto/hkdf.h"
#include "scenario/scenario.h"
#include "swarm/provision.h"

namespace erasmus::scenario {
namespace {

using sim::Duration;
using sim::Time;

class DeviceLifecycleScenario : public Scenario {
 public:
  std::string name() const override { return "device_lifecycle"; }
  std::string description() const override {
    return "provision, collect over a lossy link, software update, "
           "incident, secure decommission -- one device end to end";
  }
  std::vector<ParamSpec> param_specs() const override {
    return {
        {"arch", "smartplus", "security architecture (smartplus, hydra, "
                              "trustlite)"},
        {"tm", "10m", "self-measurement period T_M"},
        {"tc", "60m", "collector period T_C"},
        {"loss", "0.15", "network packet-loss probability"},
        {"net_seed", "3", "network loss seed"},
        {"k", "8", "records per collection"},
    };
  }

  int run(const ParamMap& params, MetricsSink& sink) const override {
    // --- 1. Provisioning --------------------------------------------------
    const Bytes master = bytes_of("fleet master secret: keep in HSM!");
    const Bytes k_device = crypto::hkdf(master, bytes_of("device-0042"),
                                        bytes_of("erasmus/device-key"), 32);
    sink.note("provisioned_key_bytes", static_cast<uint64_t>(k_device.size()));

    swarm::DeviceSpec spec;
    spec.arch = hw::arch_kind_from_string(
        params.get_str("arch", "smartplus"));
    spec.profile = swarm::default_profile_for(spec.arch);
    spec.tm = params.get_duration("tm", Duration::minutes(10));
    spec.app_ram_bytes = 4 * 1024;
    spec.store_slots = 32;
    spec.key = k_device;

    sim::EventQueue sim;
    swarm::DeviceStack device = swarm::build_device_stack(sim, spec);
    attest::Prover& prover = *device.prover;

    attest::DeviceRecord record = swarm::build_device_record(spec, device);

    // --- 2. Steady state: AttestationService over a lossy link ------------
    net::Network network(sim, Duration::millis(20),
                         params.get_double("loss", 0.15),
                         params.get_u64("net_seed", 3));
    const net::NodeId hq = network.add_node({});
    const net::NodeId dev_node = network.add_node({});
    prover.bind(network, dev_node);

    attest::DeviceDirectory directory;
    // Linked, not copied: the software-update rotation below must stay
    // visible to the service.
    const attest::DeviceId dev = directory.link(dev_node, &record);
    attest::NetworkTransport transport(network, hq);
    attest::ServiceConfig sc;
    sc.tc = params.get_duration("tc", Duration::minutes(60));
    sc.k = static_cast<uint32_t>(params.get_u64("k", 8));
    sc.response_timeout = Duration::seconds(5);
    sc.max_retries = 3;
    attest::AttestationService service(sim, transport, directory, sc);

    prover.start();
    service.start();
    sim.run_until(Time::zero() + Duration::hours(24));
    // No caching of the log() reference: it binds to an empty sentinel
    // until the first round touches the device (e.g. under a huge tc).
    sink.note("arch", hw::to_string(spec.arch));
    sink.note("day1_rounds", service.stats().rounds);
    sink.note("day1_responses", service.stats().responses);
    sink.note("day1_retries", service.stats().retries);
    sink.note("day1_trustworthy_fraction",
              service.log(dev).trustworthy_fraction());

    // --- 3. Software update -----------------------------------------------
    attest::MaintenanceAuthority authority(record, sim);
    const auto update =
        authority.run_update(prover, bytes_of("firmware v2.0 image"));
    sink.note("update_pre_attestation_ok", update.pre_attestation_ok);
    sink.note("update_accepted", update.request_accepted);
    sink.note("update_post_attestation_ok", update.post_attestation_ok);

    // --- 4. Incident --------------------------------------------------------
    sim.schedule_at(sim.now() + Duration::hours(5), [&] {
      prover.memory().write(prover.attested_region(), 99,
                            bytes_of("IMPLANT"), false);
    });
    sim.run_until(sim.now() + Duration::hours(24));
    const auto first = service.log(dev).first_infection_seen();
    sink.note("infection_detected", first.has_value());
    if (first) {
      const auto qoa = service.log(dev).empirical_qoa();
      sink.note("infection_seen_at_h", first->to_seconds() / 3600.0);
      sink.note("empirical_mean_freshness_min",
                qoa.mean_freshness.to_seconds() / 60.0);
      sink.note("audit_rounds", static_cast<uint64_t>(qoa.rounds));
    }

    // --- 5. Decommissioning -------------------------------------------------
    // Updates require a healthy device (attest-before), but secure erasure
    // is exactly what you do to a COMPROMISED device -- it needs only an
    // authentic command, and the erased state is then proven fresh.
    service.stop();
    const auto blocked =
        authority.run_update(prover, bytes_of("recovery image"));
    const auto erase = authority.run_erase(prover);
    sink.note("infected_update_blocked", !blocked.pre_attestation_ok);
    sink.note("erase_accepted", erase.request_accepted);
    sink.note("erased_state_proven", erase.erased_state_proven);

    const bool ok = update.post_attestation_ok && first.has_value() &&
                    !blocked.pre_attestation_ok && erase.request_accepted &&
                    erase.erased_state_proven;
    return ok ? 0 : 1;
  }
};

ERASMUS_SCENARIO(DeviceLifecycleScenario)

}  // namespace
}  // namespace erasmus::scenario
