// Scenario `quickstart`: the smallest complete ERASMUS deployment.
//
// One device -- provisioned from a DeviceSpec, so `arch=hydra` swaps the
// whole security architecture under the unchanged stack -- self-measures
// every T_M; the verifier side (a one-entry DeviceDirectory behind an
// AttestationService) collects after an unattended stretch over the
// in-process DirectTransport, validates the history, and reports Quality
// of Attestation.
#include "attest/directory.h"
#include "attest/qoa.h"
#include "attest/service.h"
#include "attest/transport.h"
#include "scenario/scenario.h"
#include "swarm/provision.h"

namespace erasmus::scenario {
namespace {

using sim::Duration;
using sim::Time;

class QuickstartScenario : public Scenario {
 public:
  std::string name() const override { return "quickstart"; }
  std::string description() const override {
    return "one device, one verifier: self-measure every T_M, collect once "
           "after an unattended hour, report QoA";
  }
  std::vector<ParamSpec> param_specs() const override {
    return {
        {"arch", "smartplus", "security architecture (smartplus, hydra, "
                              "trustlite)"},
        {"tm", "10m", "self-measurement period T_M"},
        {"tc", "60m", "collection period T_C"},
        {"unattended", "61m", "unattended run before the collection"},
        {"app_ram_kb", "8", "attested application memory (KiB)"},
        {"store_slots", "16", "measurement store capacity (records)"},
    };
  }

  int run(const ParamMap& params, MetricsSink& sink) const override {
    const Duration tm = params.get_duration("tm", Duration::minutes(10));
    const Duration tc = params.get_duration("tc", Duration::minutes(60));
    const Duration unattended =
        params.get_duration("unattended", Duration::minutes(61));

    swarm::DeviceSpec spec;
    spec.arch = hw::arch_kind_from_string(
        params.get_str("arch", "smartplus"));
    spec.profile = swarm::default_profile_for(spec.arch);
    spec.tm = tm;
    spec.app_ram_bytes =
        static_cast<size_t>(params.get_u64("app_ram_kb", 8)) * 1024;
    spec.store_slots =
        static_cast<size_t>(params.get_u64("store_slots", 16));
    spec.key = bytes_of("quickstart-key-0123456789abcdef!");

    sim::EventQueue sim;
    swarm::DeviceStack device = swarm::build_device_stack(sim, spec);
    device.prover->start();

    attest::DeviceRecord record = swarm::build_device_record(spec, device);
    record.scheduler = &device.prover->scheduler();
    record.schedule_t0 = tm / Duration::seconds(1);

    attest::DeviceDirectory directory;
    const attest::DeviceId dev = directory.add(/*node=*/0, std::move(record));
    attest::DirectTransport transport;
    transport.attach(/*node=*/0, *device.prover);
    attest::AttestationService service(sim, transport, directory,
                                       attest::ServiceConfig{});

    sim.run_until(Time::zero() + unattended);
    sink.note("arch", hw::to_string(spec.arch));
    sink.note("measurements", device.prover->stats().measurements);
    sink.note("busy_s",
              device.prover->stats().total_measurement_time.to_seconds());

    const attest::QoAParams qoa{tm, tc};
    const size_t k = qoa.measurements_per_collection();
    const auto outcomes =
        service.collect_now({dev}, static_cast<uint32_t>(k));
    const attest::CollectionReport& report = outcomes.at(0).report;

    sink.note("k", static_cast<uint64_t>(k));
    sink.note("collect_processing_ms",
              transport.last_processing().to_millis());
    sink.note("trustworthy", report.device_trustworthy());
    sink.note("infection_detected", report.infection_detected);
    sink.note("tampering_detected", report.tampering_detected);
    sink.note("missing", static_cast<uint64_t>(report.missing));
    sink.note("expected_freshness_min",
              qoa.expected_freshness().to_seconds() / 60.0);
    sink.note("worst_case_detection_delay_min",
              qoa.worst_case_detection_delay().to_seconds() / 60.0);
    sink.note("min_buffer_slots", static_cast<uint64_t>(qoa.min_buffer_slots()));
    if (report.freshness) {
      sink.note("freshness_min", report.freshness->to_seconds() / 60.0);
    }
    return report.device_trustworthy() ? 0 : 1;
  }
};

ERASMUS_SCENARIO(QuickstartScenario)

}  // namespace
}  // namespace erasmus::scenario
