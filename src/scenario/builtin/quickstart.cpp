// Scenario `quickstart`: the smallest complete ERASMUS deployment.
//
// One SMART+ device self-measures every T_M; the verifier side -- a
// one-entry DeviceDirectory behind an AttestationService -- collects after
// an unattended stretch over the in-process DirectTransport, validates the
// history, and reports Quality of Attestation. (Port of the former
// examples/quickstart.cpp.)
#include "attest/directory.h"
#include "attest/measurement.h"
#include "attest/prover.h"
#include "attest/qoa.h"
#include "attest/service.h"
#include "attest/transport.h"
#include "scenario/scenario.h"

namespace erasmus::scenario {
namespace {

using sim::Duration;
using sim::Time;

class QuickstartScenario : public Scenario {
 public:
  std::string name() const override { return "quickstart"; }
  std::string description() const override {
    return "one device, one verifier: self-measure every T_M, collect once "
           "after an unattended hour, report QoA";
  }
  std::vector<ParamSpec> param_specs() const override {
    return {
        {"tm_min", "10", "self-measurement period T_M (minutes)"},
        {"tc_min", "60", "collection period T_C (minutes)"},
        {"unattended_min", "61", "unattended run before the collection"},
        {"app_ram_kb", "8", "attested application memory (KiB)"},
        {"store_slots", "16", "measurement store capacity (records)"},
    };
  }

  int run(const ParamMap& params, MetricsSink& sink) const override {
    const Duration tm = Duration::minutes(params.get_u64("tm_min", 10));
    const Duration tc = Duration::minutes(params.get_u64("tc_min", 60));
    const Duration unattended =
        Duration::minutes(params.get_u64("unattended_min", 61));
    const size_t app_ram =
        static_cast<size_t>(params.get_u64("app_ram_kb", 8)) * 1024;
    const size_t slots =
        static_cast<size_t>(params.get_u64("store_slots", 16));
    const size_t kRecordBytes =
        1 + attest::Measurement::wire_size(crypto::MacAlgo::kHmacSha256);

    const Bytes device_key = bytes_of("quickstart-key-0123456789abcdef!");
    sim::EventQueue sim;
    hw::SmartPlusArch device(device_key, /*rom=*/8 * 1024, app_ram,
                             slots * kRecordBytes);

    attest::Prover prover(sim, device, device.app_region(),
                          device.store_region(),
                          std::make_unique<attest::RegularScheduler>(tm),
                          attest::ProverConfig{});
    prover.start();

    attest::DeviceRecord record;
    record.key = device_key;
    record.set_golden(crypto::Hash::digest(
        crypto::HashAlgo::kSha256,
        device.memory().view(device.app_region(), /*privileged=*/true)));
    record.scheduler = &prover.scheduler();
    record.schedule_t0 = tm / Duration::seconds(1);

    attest::DeviceDirectory directory;
    const attest::DeviceId dev = directory.add(/*node=*/0, std::move(record));
    attest::DirectTransport transport;
    transport.attach(/*node=*/0, prover);
    attest::AttestationService service(sim, transport, directory,
                                       attest::ServiceConfig{});

    sim.run_until(Time::zero() + unattended);
    sink.note("measurements", prover.stats().measurements);
    sink.note("busy_s", prover.stats().total_measurement_time.to_seconds());

    const attest::QoAParams qoa{tm, tc};
    const size_t k = qoa.measurements_per_collection();
    const auto outcomes =
        service.collect_now({dev}, static_cast<uint32_t>(k));
    const attest::CollectionReport& report = outcomes.at(0).report;

    sink.note("k", static_cast<uint64_t>(k));
    sink.note("collect_processing_ms",
              transport.last_processing().to_millis());
    sink.note("trustworthy", report.device_trustworthy());
    sink.note("infection_detected", report.infection_detected);
    sink.note("tampering_detected", report.tampering_detected);
    sink.note("missing", static_cast<uint64_t>(report.missing));
    sink.note("expected_freshness_min",
              qoa.expected_freshness().to_seconds() / 60.0);
    sink.note("worst_case_detection_delay_min",
              qoa.worst_case_detection_delay().to_seconds() / 60.0);
    sink.note("min_buffer_slots", static_cast<uint64_t>(qoa.min_buffer_slots()));
    if (report.freshness) {
      sink.note("freshness_min", report.freshness->to_seconds() / 60.0);
    }
    return report.device_trustworthy() ? 0 : 1;
  }
};

ERASMUS_SCENARIO(QuickstartScenario)

}  // namespace
}  // namespace erasmus::scenario
