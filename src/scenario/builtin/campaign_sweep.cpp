// Scenario `campaign_sweep`: the scriptable QoA parameter explorer.
//
// One device (a DeviceSpec, so architecture and schedule are both knobs),
// a mobile-malware campaign, and the audit summary -- the quickest way to
// explore T_M/T_C/schedule choices without writing code.
#include "attest/qoa.h"
#include "malware/campaign.h"
#include "scenario/scenario.h"
#include "swarm/provision.h"

namespace erasmus::scenario {
namespace {

using sim::Duration;

class CampaignSweepScenario : public Scenario {
 public:
  std::string name() const override { return "campaign_sweep"; }
  std::string description() const override {
    return "one device vs a mobile-malware campaign: detection rate, "
           "latency and QoA facts for a T_M/T_C/schedule choice";
  }
  std::vector<ParamSpec> param_specs() const override {
    return {
        {"arch", "smartplus", "security architecture (smartplus, hydra, "
                              "trustlite)"},
        {"tm", "10m", "regular T_M"},
        {"tc", "60m", "collection period T_C"},
        {"horizon", "48h", "campaign length"},
        {"infections", "20", "mobile-malware infections"},
        {"dwell", "15m", "dwell per infection"},
        {"seed", "1", "arrival seed"},
        {"irregular", "0", "use irregular U[irr_lo,irr_hi] schedule"},
        {"irr_lo", "5m", "irregular lower bound"},
        {"irr_hi", "15m", "irregular upper bound"},
        {"slots", "64", "measurement store capacity (records)"},
    };
  }

  int run(const ParamMap& params, MetricsSink& sink) const override {
    const Duration tm = params.get_duration("tm", Duration::minutes(10));
    const Duration tc = params.get_duration("tc", Duration::minutes(60));
    const Duration horizon =
        params.get_duration("horizon", Duration::hours(48));
    const Duration dwell = params.get_duration("dwell", Duration::minutes(15));
    const bool irregular = params.get_bool("irregular", false);

    swarm::DeviceSpec spec;
    spec.arch = hw::arch_kind_from_string(
        params.get_str("arch", "smartplus"));
    spec.profile = swarm::default_profile_for(spec.arch);
    spec.tm = tm;
    spec.scheduler = irregular ? swarm::SchedulerKind::kIrregular
                               : swarm::SchedulerKind::kRegular;
    spec.irregular_lower = params.get_duration("irr_lo", Duration::minutes(5));
    spec.irregular_upper =
        params.get_duration("irr_hi", Duration::minutes(15));
    spec.store_slots = static_cast<size_t>(params.get_u64("slots", 64));
    spec.key = bytes_of("cli-device-key-0123456789abcdef!");

    sim::EventQueue sim;
    swarm::DeviceStack device = swarm::build_device_stack(sim, spec);

    const attest::DeviceRecord record =
        swarm::build_device_record(spec, device);
    device.prover->start();

    const attest::QoAParams qoa{tm, tc};
    sink.note("arch", hw::to_string(spec.arch));
    sink.note("tm_min", tm.to_seconds() / 60.0);
    sink.note("schedule", irregular ? "irregular" : "regular");
    sink.note("tc_min", tc.to_seconds() / 60.0);
    sink.note("horizon_hours", horizon.to_seconds() / 3600.0);
    sink.note("k_per_collection",
              static_cast<uint64_t>(qoa.measurements_per_collection()));
    sink.note("expected_freshness_min",
              qoa.expected_freshness().to_seconds() / 60.0);
    sink.note("min_buffer_slots",
              static_cast<uint64_t>(qoa.min_buffer_slots()));
    sink.note("buffer_safe", qoa.buffer_safe(spec.store_slots));

    malware::CampaignConfig cc;
    cc.horizon = horizon;
    cc.tc = tc;
    cc.infection_count =
        static_cast<size_t>(params.get_u64("infections", 20));
    cc.dwell = dwell;
    cc.seed = params.get_u64("seed", 1);
    const auto result = malware::run_mobile_campaign(sim, *device.prover,
                                                     record, cc);

    sink.note("measurements", device.prover->stats().measurements);
    sink.note("collections", static_cast<uint64_t>(result.collections));
    sink.note("infections_ground_truth",
              static_cast<uint64_t>(result.infections));
    sink.note("measured_while_present",
              static_cast<uint64_t>(result.measured));
    sink.note("detected", static_cast<uint64_t>(result.detected));
    sink.note("detection_rate", result.detection_rate());
    sink.note("mean_detection_latency_min",
              result.mean_detection_latency().to_seconds() / 60.0);
    const double analytic = attest::detection_prob_regular(dwell, tm);
    sink.note("analytic_detection_bound",
              analytic > 1.0 ? 1.0 : analytic);
    return 0;
  }
};

ERASMUS_SCENARIO(CampaignSweepScenario)

}  // namespace
}  // namespace erasmus::scenario
