// Scenario `campaign_sweep`: the scriptable QoA parameter explorer.
//
// One SMART+ device, a mobile-malware campaign, and the audit summary --
// the quickest way to explore T_M/T_C/schedule choices without writing
// code. (Port of the former examples/erasmus_sim_cli.cpp flag parser onto
// scenario parameters.)
#include "attest/measurement.h"
#include "attest/prover.h"
#include "attest/qoa.h"
#include "attest/verifier.h"
#include "malware/campaign.h"
#include "scenario/scenario.h"

namespace erasmus::scenario {
namespace {

using sim::Duration;

class CampaignSweepScenario : public Scenario {
 public:
  std::string name() const override { return "campaign_sweep"; }
  std::string description() const override {
    return "one device vs a mobile-malware campaign: detection rate, "
           "latency and QoA facts for a T_M/T_C/schedule choice";
  }
  std::vector<ParamSpec> param_specs() const override {
    return {
        {"tm_min", "10", "regular T_M (minutes)"},
        {"tc_min", "60", "collection period T_C (minutes)"},
        {"horizon_hours", "48", "campaign length (hours)"},
        {"infections", "20", "mobile-malware infections"},
        {"dwell_min", "15", "dwell per infection (minutes)"},
        {"seed", "1", "arrival seed"},
        {"irregular", "0", "use irregular U[irr_lo,irr_hi] schedule"},
        {"irr_lo_min", "5", "irregular lower bound (minutes)"},
        {"irr_hi_min", "15", "irregular upper bound (minutes)"},
        {"slots", "64", "measurement store capacity (records)"},
    };
  }

  int run(const ParamMap& params, MetricsSink& sink) const override {
    const uint64_t tm_min = params.get_u64("tm_min", 10);
    const uint64_t tc_min = params.get_u64("tc_min", 60);
    const uint64_t horizon_hours = params.get_u64("horizon_hours", 48);
    const size_t slots = static_cast<size_t>(params.get_u64("slots", 64));
    const bool irregular = params.get_bool("irregular", false);

    const size_t kRecordBytes =
        1 + attest::Measurement::wire_size(crypto::MacAlgo::kHmacSha256);
    const Bytes key = bytes_of("cli-device-key-0123456789abcdef!");

    sim::EventQueue sim;
    hw::SmartPlusArch device(key, 8 * 1024, 4 * 1024, slots * kRecordBytes);
    std::unique_ptr<attest::Scheduler> sched;
    if (irregular) {
      sched = std::make_unique<attest::IrregularScheduler>(
          key, Duration::minutes(params.get_u64("irr_lo_min", 5)),
          Duration::minutes(params.get_u64("irr_hi_min", 15)));
    } else {
      sched = std::make_unique<attest::RegularScheduler>(
          Duration::minutes(tm_min));
    }
    attest::Prover prover(sim, device, device.app_region(),
                          device.store_region(), std::move(sched),
                          attest::ProverConfig{});
    attest::VerifierConfig vc;
    vc.key = key;
    vc.golden_digest = crypto::Hash::digest(
        crypto::HashAlgo::kSha256,
        device.memory().view(device.app_region(), true));
    attest::Verifier verifier(std::move(vc));
    prover.start();

    const attest::QoAParams qoa{Duration::minutes(tm_min),
                                Duration::minutes(tc_min)};
    sink.note("tm_min", tm_min);
    sink.note("schedule", irregular ? "irregular" : "regular");
    sink.note("tc_min", tc_min);
    sink.note("horizon_hours", horizon_hours);
    sink.note("k_per_collection",
              static_cast<uint64_t>(qoa.measurements_per_collection()));
    sink.note("expected_freshness_min",
              qoa.expected_freshness().to_seconds() / 60.0);
    sink.note("min_buffer_slots",
              static_cast<uint64_t>(qoa.min_buffer_slots()));
    sink.note("buffer_safe", qoa.buffer_safe(slots));

    malware::CampaignConfig cc;
    cc.horizon = Duration::hours(horizon_hours);
    cc.tc = Duration::minutes(tc_min);
    cc.infection_count =
        static_cast<size_t>(params.get_u64("infections", 20));
    cc.dwell = Duration::minutes(params.get_u64("dwell_min", 15));
    cc.seed = params.get_u64("seed", 1);
    const auto result = malware::run_mobile_campaign(sim, prover, verifier,
                                                     cc);

    sink.note("measurements", prover.stats().measurements);
    sink.note("collections", static_cast<uint64_t>(result.collections));
    sink.note("infections_ground_truth",
              static_cast<uint64_t>(result.infections));
    sink.note("measured_while_present",
              static_cast<uint64_t>(result.measured));
    sink.note("detected", static_cast<uint64_t>(result.detected));
    sink.note("detection_rate", result.detection_rate());
    sink.note("mean_detection_latency_min",
              result.mean_detection_latency().to_seconds() / 60.0);
    const double analytic = attest::detection_prob_regular(
        Duration::minutes(params.get_u64("dwell_min", 15)),
        Duration::minutes(tm_min));
    sink.note("analytic_detection_bound",
              analytic > 1.0 ? 1.0 : analytic);
    return 0;
  }
};

ERASMUS_SCENARIO(CampaignSweepScenario)

}  // namespace
}  // namespace erasmus::scenario
