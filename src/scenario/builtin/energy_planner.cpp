// Scenario `energy_planner`: plan a mission for QoA-per-joule, then fly it.
//
// The operator states the mission (malware dwell to catch, radio loss,
// whether there is backhaul infrastructure, the per-device battery);
// energy::plan() picks T_M, the collection backend and the window policy
// maximizing predicted QoA per joule, and THIS scenario then runs the
// chosen configuration on the live metered fleet -- planner predictions
// and measured outcome land side by side in the notes, so the model can
// be audited against the simulation it steers.
//
// QoA here is the paper's detection-quality notion specialized to a dwell
// D: a device measuring every T_M catches an implant resident for D with
// probability min(1, D / T_M); a round's quality is that probability
// summed over devices whose report actually reached the verifier.
#include <algorithm>
#include <cmath>

#include "energy/planner.h"
#include "scenario/scenario.h"
#include "scenario/sharded_runner.h"

namespace erasmus::scenario {
namespace {

using sim::Duration;

class EnergyPlannerScenario : public Scenario {
 public:
  std::string name() const override { return "energy_planner"; }
  std::string description() const override {
    return "QoA-per-joule mission planning: energy::plan() picks T_M, "
           "backend and window policy, then the metered fleet flies the "
           "plan (predictions vs measurement in the notes)";
  }
  std::vector<ParamSpec> param_specs() const override {
    return {
        {"devices", "50", "fleet size"},
        {"threads", "1", "shard/worker threads (wall-clock only; metrics "
                         "are thread-count independent)"},
        {"seed", "2024", "mobility + key + loss seed"},
        {"arch", "smartplus", "security architecture (smartplus, hydra, "
                              "trustlite)"},
        {"dwell", "8m", "malware dwell time the mission must catch"},
        {"rounds", "4", "collection rounds"},
        {"interval", "30m", "time between collection rounds"},
        {"k", "8", "records collected per device per round"},
        {"loss", "0", "per-hop datagram loss probability"},
        {"infrastructure", "off", "direct backhaul to every device exists "
                                  "(on|off); off = field swarm, overlay "
                                  "only"},
        {"budget", "0J", "per-device energy for the WHOLE mission, with a "
                         "REQUIRED unit (e.g. 80mJ, 2J); 0J = mains "
                         "powered (joule accounting only)"},
        {"field", "300", "field side (metres)"},
        {"range", "60", "radio range (metres)"},
        {"speed_min", "6", "min speed (m/s)"},
        {"speed_max", "12", "max speed (m/s)"},
    };
  }

  int run(const ParamMap& params, MetricsSink& sink) const override {
    const size_t devices =
        static_cast<size_t>(params.get_u64("devices", 50));
    const double field = params.get_double("field", 300.0);
    const double range = params.get_double("range", 60.0);

    swarm::DeviceSpec base;
    base.arch = hw::arch_kind_from_string(
        params.get_str("arch", "smartplus"));
    base.profile = swarm::default_profile_for(base.arch);
    base.app_ram_bytes = 2 * 1024;
    base.store_slots = 64;

    // --- Plan ------------------------------------------------------------
    energy::FleetModel fleet;
    fleet.devices = devices;
    fleet.arch = base.arch;
    fleet.profile = base.profile;
    fleet.algo = base.algo;
    fleet.attested_bytes = base.app_ram_bytes;
    fleet.k = static_cast<size_t>(params.get_u64("k", 8));
    // Radio neighbourhood from the deployment geometry: expected neighbours
    // in a range-disc, expected relay depth across the field.
    fleet.mean_degree = std::max(
        1.0, static_cast<double>(devices) * 3.14159265358979 * range *
                     range / (field * field) -
                 1.0);
    fleet.mean_hops = std::max(1.0, field / (1.4142135624 * range));

    energy::Mission mission;
    mission.dwell = params.get_duration("dwell", Duration::minutes(8));
    mission.round_interval =
        params.get_duration("interval", Duration::minutes(30));
    mission.rounds = static_cast<size_t>(params.get_u64("rounds", 4));
    mission.loss = params.get_double("loss", 0.0);
    mission.infrastructure = params.get_bool("infrastructure", false);
    mission.device_budget = params.get_energy("budget", sim::Energy{});

    const energy::Decision d =
        energy::plan(fleet, mission, obs::global_trace());
    sink.note("planner_backend", std::string(energy::to_string(d.backend)));
    sink.note("planner_tm_s", d.tm.to_seconds());
    sink.note("planner_adaptive_window", d.adaptive_window);
    sink.note("planner_reasons", d.reasons);
    sink.note("predicted_detection_prob", d.detection_prob);
    sink.note("predicted_device_mj",
              d.predicted_device_energy.millijoules());
    sink.note("predicted_qoa_per_joule", d.predicted_qoa_per_joule);

    // --- Fly the plan ----------------------------------------------------
    base.tm = d.tm;
    ShardedFleetConfig cfg;
    cfg.plan = swarm::FleetPlan::uniform(devices,
                                         params.get_u64("seed", 2024), base);
    cfg.plan.staggered = true;
    cfg.plan.mobility.field_size = field;
    cfg.plan.mobility.radio_range = range;
    cfg.plan.mobility.speed_min = params.get_double("speed_min", 6.0);
    cfg.plan.mobility.speed_max = params.get_double("speed_max", 12.0);
    cfg.plan.mobility.seed = params.get_u64("seed", 2024);
    cfg.threads = static_cast<size_t>(params.get_u64("threads", 1));
    cfg.rounds = mission.rounds;
    cfg.round_interval = mission.round_interval;
    cfg.k = fleet.k;
    cfg.energy.metered = true;
    cfg.energy.battery = mission.device_budget;
    if (d.backend == energy::BackendChoice::kDirect) {
      cfg.backend = CollectionBackend::kDirect;
    } else {
      cfg.backend = CollectionBackend::kOverlay;
      cfg.overlay.net_loss = mission.loss;
      if (d.backend == energy::BackendChoice::kScoped) {
        cfg.overlay.scoped_retries = true;
        cfg.overlay.max_retries = 2;
      }
    }
    cfg.window = WindowSpec::parse(d.adaptive_window ? "adaptive"
                                                     : "default");

    ShardedFleetRunner runner(cfg);
    const auto rounds = runner.run(sink);

    // --- Measure what the plan bought ------------------------------------
    const double p_detect = std::min(
        1.0, mission.dwell.to_seconds() / std::max(1.0, d.tm.to_seconds()));
    double qoa = 0.0;
    size_t collected = 0;
    for (const auto& r : rounds) {
      qoa += static_cast<double>(r.healthy) * p_detect;
      collected += r.reachable;
    }
    const energy::FleetMeter& meter = *runner.energy_meter();
    const double spent_j = meter.totals().spent_mj() / 1e3;
    sink.note("device_collections", static_cast<uint64_t>(collected));
    sink.note("measured_qoa", qoa);
    sink.note("fleet_spent_mj", meter.totals().spent_mj());
    sink.note("measured_qoa_per_joule", spent_j > 0.0 ? qoa / spent_j : 0.0);
    sink.note("dark_devices_final",
              static_cast<uint64_t>(meter.dark_count()));
    return 0;
  }
};

ERASMUS_SCENARIO(EnergyPlannerScenario)

}  // namespace
}  // namespace erasmus::scenario
