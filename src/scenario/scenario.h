// The scenario engine: a named, parameterized, registerable experiment.
//
// Every workload this library can run -- from a single quickstart device to
// a 1000-device sharded fleet -- is a Scenario: it declares its parameters,
// then run() drives the simulation and reports through a MetricsSink. The
// process-wide ScenarioRegistry maps names to instances; scenario TUs
// self-register via ERASMUS_SCENARIO at static-init time, and the
// erasmus_run CLI is a thin shell over list()/find().
#pragma once

#include <memory>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/metrics.h"
#include "scenario/params.h"

namespace erasmus::scenario {

class Scenario {
 public:
  virtual ~Scenario() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  /// The knobs this scenario understands. The CLI rejects keys outside
  /// this list, so declare everything run() reads.
  virtual std::vector<ParamSpec> param_specs() const { return {}; }

  /// Runs to completion; returns a process exit code (0 = success).
  virtual int run(const ParamMap& params, MetricsSink& sink) const = 0;
};

class ScenarioRegistry {
 public:
  /// The process-wide registry (static self-registration target).
  static ScenarioRegistry& instance();

  /// Takes ownership. Throws std::invalid_argument on a duplicate or
  /// empty name; the registry is unchanged in that case.
  void add(std::unique_ptr<Scenario> scenario);

  /// nullptr when unknown.
  const Scenario* find(std::string_view name) const;

  /// All scenarios, sorted by name.
  std::vector<const Scenario*> list() const;

  size_t size() const { return by_name_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Scenario>, std::less<>> by_name_;
};

namespace detail {
struct Registrar {
  explicit Registrar(std::unique_ptr<Scenario> s);
};
}  // namespace detail

/// Registers `Class` (default-constructed) with the global registry at
/// static-initialization time. Use at namespace scope in the scenario's TU.
#define ERASMUS_SCENARIO(Class)                             \
  static const ::erasmus::scenario::detail::Registrar      \
      erasmus_scenario_registrar_##Class{std::make_unique<Class>()};

}  // namespace erasmus::scenario
