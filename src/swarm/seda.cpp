#include "swarm/seda.h"

#include "common/serde.h"

namespace erasmus::swarm {

namespace {

Bytes frame_seda(SedaMsg type, ByteView body) {
  ByteWriter w;
  w.u8(static_cast<uint8_t>(type));
  w.raw(body);
  return w.take();
}

std::optional<std::pair<SedaMsg, ByteView>> unframe_seda(ByteView data) {
  if (data.empty()) return std::nullopt;
  const uint8_t tag = data[0];
  if (tag < static_cast<uint8_t>(SedaMsg::kAttestFlood) ||
      tag > static_cast<uint8_t>(SedaMsg::kAggregate)) {
    return std::nullopt;
  }
  return std::make_pair(static_cast<SedaMsg>(tag), data.subspan(1));
}

Bytes encode_flood(uint32_t round, uint8_t ttl) {
  ByteWriter w;
  w.u32(round);
  w.u8(ttl);
  return w.take();
}

Bytes encode_ack(uint32_t round, uint32_t device) {
  ByteWriter w;
  w.u32(round);
  w.u32(device);
  return w.take();
}

Bytes encode_aggregate(uint32_t round,
                       const std::vector<std::pair<uint32_t, Bytes>>& entries,
                       uint32_t reporting_device) {
  ByteWriter w;
  w.u32(round);
  w.u32(reporting_device);
  w.u32(static_cast<uint32_t>(entries.size()));
  for (const auto& [device, wire] : entries) {
    w.u32(device);
    w.var_bytes(wire);
  }
  return w.take();
}

struct DecodedAggregate {
  uint32_t round = 0;
  uint32_t reporting_device = 0;
  std::vector<std::pair<uint32_t, Bytes>> entries;
};

std::optional<DecodedAggregate> decode_aggregate(ByteView body) {
  ByteReader r(body);
  DecodedAggregate agg;
  agg.round = r.u32();
  agg.reporting_device = r.u32();
  const uint32_t count = r.u32();
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t device = r.u32();
    Bytes wire = r.var_bytes();
    if (!r.ok()) return std::nullopt;
    agg.entries.emplace_back(device, std::move(wire));
  }
  if (!r.done()) return std::nullopt;
  return agg;
}

}  // namespace

// --- SedaAgent -----------------------------------------------------------------

SedaAgent::SedaAgent(sim::EventQueue& queue, net::Network& network,
                     net::NodeId self, uint32_t device_id,
                     attest::Prover& prover, size_t swarm_size,
                     SedaConfig config)
    : queue_(queue), network_(network), self_(self), device_id_(device_id),
      prover_(prover), swarm_size_(swarm_size), config_(config) {
  network_.set_handler(self_,
                       [this](const net::Datagram& d) { on_datagram(d); });
}

void SedaAgent::on_datagram(const net::Datagram& dgram) {
  const auto framed = unframe_seda(dgram.payload);
  if (!framed) return;
  switch (framed->first) {
    case SedaMsg::kAttestFlood: {
      ByteReader r(framed->second);
      const uint32_t round = r.u32();
      const uint8_t ttl = r.u8();
      if (r.done()) handle_flood(round, ttl, dgram.src);
      break;
    }
    case SedaMsg::kChildAck: {
      ByteReader r(framed->second);
      const uint32_t round = r.u32();
      const uint32_t child = r.u32();
      if (!r.done()) break;
      if (auto it = rounds_.find(round); it != rounds_.end()) {
        it->second.acked_children.insert(child);
      }
      break;
    }
    case SedaMsg::kAggregate: {
      const auto agg = decode_aggregate(framed->second);
      if (!agg) break;
      auto it = rounds_.find(agg->round);
      if (it == rounds_.end()) break;
      RoundState& state = it->second;
      if (state.reported) {
        // Our own aggregate already went up (child-timeout fired before
        // this straggler arrived). Pass the child's report through towards
        // the root unmerged, so a slow subtree is delayed, not lost.
        network_.send(self_, state.parent, dgram.payload);
        break;
      }
      state.reported_children.insert(agg->reporting_device);
      for (const auto& entry : agg->entries) {
        state.aggregate.push_back(entry);
      }
      maybe_report(agg->round);
      break;
    }
  }
}

void SedaAgent::handle_flood(uint32_t round, uint8_t ttl, net::NodeId from) {
  if (rounds_.contains(round)) return;  // already joined this round
  RoundState state;
  state.parent = from;
  rounds_[round] = std::move(state);
  ++stats_.rounds_joined;

  // Acknowledge to the parent so it knows to wait for us.
  network_.send(self_, from,
                frame_seda(SedaMsg::kChildAck,
                           encode_ack(round, device_id_)));

  // Re-flood.
  if (ttl > 0) {
    const Bytes payload =
        frame_seda(SedaMsg::kAttestFlood, encode_flood(round, ttl - 1));
    for (net::NodeId node = 0; node < swarm_size_ + 1; ++node) {
      if (node != self_ && node != from) {
        network_.send(self_, node, Bytes(payload));
      }
    }
  }

  // Compute the FRESH measurement -- the real-time cost that makes the
  // round long. The device is busy for the full measurement duration.
  const sim::Duration cost = prover_.config().profile.measurement_time(
      prover_.config().algo, prover_.attested_bytes());
  const uint64_t t = prover_.rroc().read();
  const attest::Measurement m = attest::compute_measurement_protected(
      prover_.arch(), prover_.config().algo, prover_.attested_region(), t);
  ++stats_.measurements_computed;
  queue_.schedule_after(cost, [this, round, wire = m.serialize()] {
    auto it = rounds_.find(round);
    if (it == rounds_.end()) return;
    it->second.aggregate.emplace_back(device_id_, wire);
    it->second.measurement_done = true;
    maybe_report(round);
  });

  // Child-wait deadline: report whatever arrived, even if children are
  // missing (they may have moved out of range mid-measurement).
  queue_.schedule_after(cost + config_.child_timeout, [this, round] {
    auto it = rounds_.find(round);
    if (it == rounds_.end() || it->second.reported) return;
    stats_.children_lost += it->second.acked_children.size() -
                            it->second.reported_children.size();
    send_report(round);
  });
}

void SedaAgent::maybe_report(uint32_t round) {
  auto it = rounds_.find(round);
  if (it == rounds_.end() || it->second.reported) return;
  const RoundState& state = it->second;
  if (!state.measurement_done) return;
  // All acknowledged children accounted for?
  for (uint32_t child : state.acked_children) {
    if (!state.reported_children.contains(child)) return;
  }
  send_report(round);
}

void SedaAgent::send_report(uint32_t round) {
  auto it = rounds_.find(round);
  if (it == rounds_.end() || it->second.reported) return;
  RoundState& state = it->second;
  state.reported = true;
  network_.send(self_, state.parent,
                frame_seda(SedaMsg::kAggregate,
                           encode_aggregate(round, state.aggregate,
                                            device_id_)));
}

// --- SedaCollector ---------------------------------------------------------------

SedaCollector::SedaCollector(sim::EventQueue& queue, net::Network& network,
                             net::NodeId self,
                             const attest::DeviceDirectory& directory,
                             size_t swarm_size, SedaConfig config)
    : queue_(queue), network_(network), self_(self), directory_(directory),
      swarm_size_(swarm_size), config_(config) {
  network_.set_handler(self_,
                       [this](const net::Datagram& d) { on_datagram(d); });
}

void SedaCollector::on_datagram(const net::Datagram& dgram) {
  const auto framed = unframe_seda(dgram.payload);
  if (!framed || framed->first != SedaMsg::kAggregate) return;
  const auto agg = decode_aggregate(framed->second);
  if (!agg || agg->round != active_round_) return;
  for (const auto& [device, wire] : agg->entries) {
    if (device < swarm_size_ && !received_.contains(device)) {
      received_[device] = wire;
      last_report_at_ = queue_.now();
    }
  }
}

SedaCollector::RoundResult SedaCollector::run_round(sim::Duration deadline) {
  active_round_ = next_round_++;
  received_.clear();
  round_start_ = queue_.now();
  last_report_at_ = round_start_;

  const Bytes payload = frame_seda(
      SedaMsg::kAttestFlood, encode_flood(active_round_, config_.ttl));
  for (net::NodeId node = 0; node < swarm_size_ + 1; ++node) {
    if (node != self_) network_.send(self_, node, Bytes(payload));
  }

  queue_.run_until(round_start_ + deadline);

  RoundResult result;
  result.fresh_measurements_received = received_.size();
  result.elapsed = last_report_at_ - round_start_;
  for (uint32_t device = 0; device < swarm_size_; ++device) {
    DeviceStatus status;
    status.device = device;
    const auto it = received_.find(device);
    status.attested = it != received_.end();
    if (status.attested && device < directory_.size()) {
      const attest::DeviceRecord& rec = directory_.record(device);
      const auto m = attest::Measurement::deserialize(it->second);
      status.healthy =
          m.has_value() &&
          attest::verify_measurement(rec.algo, rec.key, *m) &&
          equal(m->digest, rec.golden_at(m->timestamp));
    }
    result.statuses.push_back(status);
  }
  active_round_ = 0;
  return result;
}

}  // namespace erasmus::swarm
