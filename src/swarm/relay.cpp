#include "swarm/relay.h"

#include "common/serde.h"

namespace erasmus::swarm {

namespace {

Bytes frame_relay(RelayMsg type, ByteView body) {
  ByteWriter w;
  w.u8(static_cast<uint8_t>(type));
  w.raw(body);
  return w.take();
}

std::optional<std::pair<RelayMsg, ByteView>> unframe_relay(ByteView data) {
  if (data.empty()) return std::nullopt;
  const uint8_t tag = data[0];
  if (tag != static_cast<uint8_t>(RelayMsg::kCollectFlood) &&
      tag != static_cast<uint8_t>(RelayMsg::kReport)) {
    return std::nullopt;
  }
  return std::make_pair(static_cast<RelayMsg>(tag), data.subspan(1));
}

}  // namespace

Bytes CollectFlood::serialize() const {
  ByteWriter w;
  w.u32(round);
  w.u32(k);
  w.u8(ttl);
  return w.take();
}

std::optional<CollectFlood> CollectFlood::deserialize(ByteView data) {
  ByteReader r(data);
  CollectFlood f;
  f.round = r.u32();
  f.k = r.u32();
  f.ttl = r.u8();
  if (!r.done()) return std::nullopt;
  return f;
}

Bytes RelayReport::serialize() const {
  ByteWriter w;
  w.u32(round);
  w.u32(device);
  w.var_bytes(collect_response);
  return w.take();
}

std::optional<RelayReport> RelayReport::deserialize(ByteView data) {
  ByteReader r(data);
  RelayReport report;
  report.round = r.u32();
  report.device = r.u32();
  report.collect_response = r.var_bytes();
  if (!r.done()) return std::nullopt;
  return report;
}

// --- RelayAgent ---------------------------------------------------------------

RelayAgent::RelayAgent(sim::EventQueue& queue, net::Network& network,
                       net::NodeId self, uint32_t device_id,
                       attest::Prover& prover, size_t swarm_size)
    : queue_(queue), network_(network), self_(self), device_id_(device_id),
      prover_(prover), swarm_size_(swarm_size) {
  network_.set_handler(self_,
                       [this](const net::Datagram& d) { on_datagram(d); });
}

void RelayAgent::broadcast(ByteView payload, net::NodeId except) {
  // Physical broadcast: offer the datagram to every node; the network's
  // link filter delivers only to nodes in radio range right now.
  for (net::NodeId node = 0; node < swarm_size_ + 1; ++node) {
    if (node == self_ || node == except) continue;
    network_.send(self_, node, Bytes(payload.begin(), payload.end()));
  }
}

void RelayAgent::on_datagram(const net::Datagram& dgram) {
  const auto framed = unframe_relay(dgram.payload);
  if (!framed) return;
  switch (framed->first) {
    case RelayMsg::kCollectFlood: {
      if (const auto flood = CollectFlood::deserialize(framed->second)) {
        handle_flood(*flood, dgram.src);
      }
      break;
    }
    case RelayMsg::kReport: {
      if (const auto report = RelayReport::deserialize(framed->second)) {
        handle_report(*report, dgram.payload);
      }
      break;
    }
  }
}

void RelayAgent::handle_flood(const CollectFlood& flood, net::NodeId from) {
  ++stats_.floods_seen;
  if (parent_.contains(flood.round)) return;  // duplicate: already served
  parent_[flood.round] = from;

  // Serve our own stored measurements: a real collection -- buffer read,
  // no cryptography (the whole point of §6's mobility argument).
  const auto res = prover_.handle_collect(attest::CollectRequest{flood.k});
  RelayReport report;
  report.round = flood.round;
  report.device = device_id_;
  report.collect_response = res.response.serialize();
  const Bytes report_frame =
      frame_relay(RelayMsg::kReport, report.serialize());
  queue_.schedule_after(res.processing, [this, from, report_frame] {
    network_.send(self_, from, report_frame);
  });

  // Re-flood with decremented TTL.
  if (flood.ttl > 0) {
    CollectFlood next = flood;
    next.ttl = flood.ttl - 1;
    ++stats_.floods_forwarded;
    broadcast(frame_relay(RelayMsg::kCollectFlood, next.serialize()), from);
  }
}

void RelayAgent::handle_report(const RelayReport& report, ByteView raw) {
  // Pure relay: forward the untouched frame towards our parent for that
  // round. Unknown round (we never saw the flood) -> drop.
  const auto it = parent_.find(report.round);
  if (it == parent_.end()) return;
  ++stats_.reports_relayed;
  network_.send(self_, it->second, Bytes(raw.begin(), raw.end()));
}

// --- RelayCollector -------------------------------------------------------------

RelayCollector::RelayCollector(sim::EventQueue& queue, net::Network& network,
                               net::NodeId self,
                               std::vector<attest::Verifier*> verifiers,
                               size_t swarm_size)
    : queue_(queue), network_(network), self_(self),
      verifiers_(std::move(verifiers)), swarm_size_(swarm_size) {
  network_.set_handler(self_,
                       [this](const net::Datagram& d) { on_datagram(d); });
}

void RelayCollector::on_datagram(const net::Datagram& dgram) {
  const auto framed = unframe_relay(dgram.payload);
  if (!framed || framed->first != RelayMsg::kReport) return;
  const auto report = RelayReport::deserialize(framed->second);
  if (!report || report->round != active_round_) return;
  if (report->device >= swarm_size_) return;
  if (received_.contains(report->device)) return;  // duplicate path
  const auto resp =
      attest::CollectResponse::deserialize(report->collect_response);
  if (!resp) return;
  received_[report->device] = *resp;
  last_report_at_ = queue_.now();
}

RelayCollector::RoundResult RelayCollector::run_round(uint32_t k,
                                                      sim::Duration deadline,
                                                      uint8_t ttl) {
  active_round_ = next_round_++;
  received_.clear();
  round_start_ = queue_.now();
  last_report_at_ = round_start_;

  CollectFlood flood;
  flood.round = active_round_;
  flood.k = k;
  flood.ttl = ttl;
  const Bytes payload =
      frame_relay(RelayMsg::kCollectFlood, flood.serialize());
  for (net::NodeId node = 0; node < swarm_size_ + 1; ++node) {
    if (node == self_) continue;
    network_.send(self_, node, Bytes(payload));
  }

  queue_.run_until(round_start_ + deadline);

  RoundResult result;
  result.reports_received = received_.size();
  result.elapsed = last_report_at_ - round_start_;
  result.statuses.reserve(swarm_size_);
  for (uint32_t device = 0; device < swarm_size_; ++device) {
    DeviceStatus status;
    status.device = device;
    const auto it = received_.find(device);
    status.attested = it != received_.end();
    if (status.attested && device < verifiers_.size()) {
      const auto rep = verifiers_[device]->verify_collection(it->second,
                                                             queue_.now());
      status.healthy =
          rep.device_trustworthy() && rep.freshness.has_value();
    }
    result.statuses.push_back(status);
  }
  active_round_ = 0;
  return result;
}

}  // namespace erasmus::swarm
