#include "swarm/mobility.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace erasmus::swarm {

double distance(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

RandomWaypointMobility::RandomWaypointMobility(MobilityConfig config)
    : config_(config), rng_(config.seed), segments_(config.devices) {
  if (config_.devices == 0) {
    throw std::invalid_argument("RandomWaypointMobility: need >= 1 device");
  }
  if (config_.speed_max < config_.speed_min || config_.speed_min < 0.0) {
    throw std::invalid_argument("RandomWaypointMobility: bad speed range");
  }
  // Initial positions: uniform over the field; a zero-length first segment
  // anchors each trajectory at t = 0.
  for (auto& segs : segments_) {
    const Point p{rng_.next_double() * config_.field_size,
                  rng_.next_double() * config_.field_size};
    segs.push_back(Segment{sim::Time::zero(), sim::Time::zero(), p, p});
  }
}

void RandomWaypointMobility::extend(DeviceId node, sim::Time until) {
  auto& segs = segments_[node];
  while (segs.back().end < until) {
    const Segment& last = segs.back();
    const Point from = last.to;
    const Point to{rng_.next_double() * config_.field_size,
                   rng_.next_double() * config_.field_size};
    double speed = config_.speed_min +
                   rng_.next_double() * (config_.speed_max - config_.speed_min);
    const double dist = distance(from, to);
    sim::Duration travel;
    if (speed <= 1e-9) {
      // Stationary model: park at the current spot for a long "segment".
      travel = sim::Duration::hours(1000);
      segs.push_back(Segment{last.end, last.end + travel, from, from});
      continue;
    }
    travel = sim::Duration(
        static_cast<uint64_t>(std::max(dist / speed, 1e-3) * 1e9));
    segs.push_back(Segment{last.end, last.end + travel, from, to});
  }
}

Point RandomWaypointMobility::position(DeviceId node, sim::Time t) {
  if (node >= segments_.size()) {
    throw std::out_of_range("RandomWaypointMobility: bad device id");
  }
  extend(node, t);
  const auto& segs = segments_[node];
  // Binary search for the segment containing t.
  auto it = std::upper_bound(
      segs.begin(), segs.end(), t,
      [](sim::Time value, const Segment& s) { return value < s.end; });
  if (it == segs.end()) it = segs.end() - 1;
  const Segment& s = *it;
  if (s.end == s.start) return s.to;
  const double frac =
      static_cast<double>((t - s.start).ns()) /
      static_cast<double>((s.end - s.start).ns());
  const double f = std::clamp(frac, 0.0, 1.0);
  return Point{s.from.x + (s.to.x - s.from.x) * f,
               s.from.y + (s.to.y - s.from.y) * f};
}

bool RandomWaypointMobility::connected(DeviceId a, DeviceId b, sim::Time t) {
  return distance(position(a, t), position(b, t)) <= config_.radio_range;
}

Topology RandomWaypointMobility::snapshot(sim::Time t) {
  Topology topo(config_.devices);
  std::vector<Point> pos(config_.devices);
  // Positions are computed sequentially even with an executor: extend()
  // consumes the SHARED trajectory RNG lazily, and that consumption order
  // must be a pure function of the query sequence, never of threading.
  for (DeviceId v = 0; v < config_.devices; ++v) pos[v] = position(v, t);
  if (executor_ != nullptr && config_.devices > 1) {
    // Each row's neighbor list goes into its own slot; the merge below is
    // sequential in row order, so the adjacency bits are written in the
    // exact order the serial loop writes them. The range predicate is the
    // serial one verbatim (sqrt included): a squared-distance shortcut
    // would flip borderline edges and diverge every downstream result.
    const size_t n = config_.devices;
    std::vector<std::vector<DeviceId>> nbrs(n);
    executor_->run(n, [&](size_t a) {
      for (size_t b = a + 1; b < n; ++b) {
        if (distance(pos[a], pos[b]) <= config_.radio_range) {
          nbrs[a].push_back(static_cast<DeviceId>(b));
        }
      }
    });
    for (DeviceId a = 0; a < n; ++a) {
      for (const DeviceId b : nbrs[a]) topo.add_edge(a, b);
    }
    return topo;
  }
  for (DeviceId a = 0; a < config_.devices; ++a) {
    for (DeviceId b = a + 1; b < config_.devices; ++b) {
      if (distance(pos[a], pos[b]) <= config_.radio_range) {
        topo.add_edge(a, b);
      }
    }
  }
  return topo;
}

}  // namespace erasmus::swarm
