#include "swarm/qosa.h"

#include <algorithm>

namespace erasmus::swarm {

std::string to_string(QosaLevel level) {
  switch (level) {
    case QosaLevel::kBinary:
      return "binary";
    case QosaLevel::kList:
      return "list";
    case QosaLevel::kFull:
      return "full";
  }
  return "unknown";
}

SwarmReport make_report(QosaLevel level,
                        const std::vector<DeviceStatus>& statuses,
                        const Topology& topo) {
  SwarmReport report;
  report.level = level;
  report.all_healthy =
      !statuses.empty() &&
      std::all_of(statuses.begin(), statuses.end(), [](const DeviceStatus& s) {
        return s.attested && s.healthy;
      });
  if (level == QosaLevel::kBinary) return report;

  report.devices = statuses;
  if (level == QosaLevel::kList) return report;

  for (DeviceId a = 0; a < topo.size(); ++a) {
    for (DeviceId b = a + 1; b < topo.size(); ++b) {
      if (topo.connected(a, b)) report.edges.emplace_back(a, b);
    }
  }
  return report;
}

}  // namespace erasmus::swarm
