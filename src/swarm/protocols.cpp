#include "swarm/protocols.h"

#include <algorithm>
#include <vector>

namespace erasmus::swarm {

namespace {

/// Shared flood-down / aggregate-up engine; `per_device_time` is what each
/// device does between receiving the request and having its report ready.
SwarmRoundResult run_round(RandomWaypointMobility& mobility, sim::Time t0,
                           DeviceId root, sim::Duration hop_latency,
                           sim::Duration per_device_time) {
  const Topology topo = mobility.snapshot(t0);
  const auto tree = topo.bfs_tree(root);
  const size_t n = topo.size();

  SwarmRoundResult result;
  result.devices = n;

  // --- Flood the request down the tree -------------------------------------
  // received[v]: the request reached v (edges checked at crossing time).
  std::vector<bool> received(n, false);
  std::vector<sim::Time> arrival(n, sim::Time::zero());
  received[root] = true;
  arrival[root] = t0;

  // BFS order = increasing depth, so parents are settled before children.
  std::vector<DeviceId> order;
  order.reserve(n);
  for (DeviceId v = 0; v < n; ++v) {
    if (tree.parent[v]) order.push_back(v);
  }
  std::sort(order.begin(), order.end(), [&](DeviceId a, DeviceId b) {
    return tree.depth[a] < tree.depth[b];
  });

  for (DeviceId v : order) {
    if (v == root) continue;
    const DeviceId p = *tree.parent[v];
    if (!received[p]) continue;
    const sim::Time crossing = arrival[p] + hop_latency;
    if (mobility.connected(p, v, crossing)) {
      received[v] = true;
      arrival[v] = crossing;
    }
  }

  // --- Aggregate reports up the tree ----------------------------------------
  // Deepest first: a node forwards once its own work and every arriving
  // child report are in; the uplink edge must be alive at forward time.
  std::vector<size_t> gathered(n, 0);          // reports in v's aggregate
  std::vector<sim::Time> ready(n, sim::Time::zero());
  std::vector<bool> report_arrived(n, false);  // v's aggregate reached parent

  std::vector<DeviceId> up_order = order;
  std::sort(up_order.begin(), up_order.end(), [&](DeviceId a, DeviceId b) {
    return tree.depth[a] > tree.depth[b];
  });

  for (DeviceId v : up_order) {
    if (!received[v]) continue;
    gathered[v] = 1;  // own report
    ready[v] = arrival[v] + per_device_time;
    for (DeviceId c : tree.children(v)) {
      if (report_arrived[c]) {
        gathered[v] += gathered[c];
        const sim::Time child_arrival = ready[c] + hop_latency;
        ready[v] = std::max(ready[v], child_arrival);
      }
    }
    if (v == root) continue;
    const DeviceId p = *tree.parent[v];
    if (received[p] && mobility.connected(v, p, ready[v])) {
      report_arrived[v] = true;
    }
  }

  // Root is processed last in up_order (depth 0) and skips the uplink
  // check, so its aggregate is final here.
  result.attested = gathered[root];
  result.duration = ready[root] - t0;
  return result;
}

}  // namespace

SwarmRoundResult run_ondemand_round(RandomWaypointMobility& mobility,
                                    sim::Time t0, DeviceId root,
                                    const SwarmProtocolConfig& config) {
  return run_round(mobility, t0, root, config.hop_latency,
                   config.measurement_time);
}

SwarmRoundResult run_erasmus_collection_round(
    RandomWaypointMobility& mobility, sim::Time t0, DeviceId root,
    const SwarmProtocolConfig& config) {
  return run_round(mobility, t0, root, config.hop_latency,
                   config.collection_reply_time);
}

size_t max_concurrent_busy(size_t devices, sim::Duration tm,
                           sim::Duration measurement_time, bool staggered) {
  if (devices == 0 || tm.is_zero()) return 0;
  const uint64_t period = tm.ns();
  const uint64_t busy = std::min(measurement_time.ns(), period);

  // Sweep one full period; device i is busy while
  // (t - offset_i) mod period < busy.
  const size_t kSamples = 10'000;
  size_t max_busy = 0;
  for (size_t s = 0; s < kSamples; ++s) {
    const uint64_t t = period * s / kSamples;
    size_t count = 0;
    for (size_t i = 0; i < devices; ++i) {
      const uint64_t offset = staggered ? (period * i / devices) : 0;
      const uint64_t phase = (t + period - offset) % period;
      if (phase < busy) ++count;
    }
    max_busy = std::max(max_busy, count);
  }
  return max_busy;
}

}  // namespace erasmus::swarm
