// Packet-level swarm collection: a LISA-alpha-style relay protocol running
// over the simulated datagram network (paper §6).
//
// Where swarm/protocols.h evaluates round timing analytically, this module
// runs the actual message flow:
//
//   * the verifier floods a CollectFlood{round, k, ttl} datagram;
//   * each device, on first sight of a round id, remembers the sender as
//     its parent, answers with its OWN stored measurements (a real
//     Prover::handle_collect -- no cryptography), and re-floods;
//   * report datagrams hop parent-by-parent back to the verifier;
//   * connectivity is evaluated by the network's link filter AT EACH SEND,
//     so the protocol sees exactly the instantaneous topology ERASMUS
//     needs -- and nothing more.
//
// "Only relays reports and does not perform any computation" (LISA-alpha) is
// literal here: relays never parse, verify or re-MAC the payloads.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "attest/prover.h"
#include "attest/verifier.h"
#include "net/network.h"
#include "swarm/qosa.h"

namespace erasmus::swarm {

/// Wire tags, disjoint from attest::MsgType.
enum class RelayMsg : uint8_t {
  kCollectFlood = 0x20,
  kReport = 0x21,
};

struct CollectFlood {
  uint32_t round = 0;
  uint32_t k = 1;
  uint8_t ttl = 8;

  Bytes serialize() const;
  static std::optional<CollectFlood> deserialize(ByteView data);
};

struct RelayReport {
  uint32_t round = 0;
  uint32_t device = 0;  // DeviceId of the reporting prover
  Bytes collect_response;  // serialized attest::CollectResponse

  Bytes serialize() const;
  static std::optional<RelayReport> deserialize(ByteView data);
};

/// Per-device protocol agent. Owns the device's network handler; serves
/// collection requests from its co-located prover and relays everything
/// else.
class RelayAgent {
 public:
  RelayAgent(sim::EventQueue& queue, net::Network& network, net::NodeId self,
             uint32_t device_id, attest::Prover& prover, size_t swarm_size);

  struct Stats {
    uint64_t floods_seen = 0;
    uint64_t floods_forwarded = 0;
    uint64_t reports_relayed = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void on_datagram(const net::Datagram& dgram);
  void handle_flood(const CollectFlood& flood, net::NodeId from);
  void handle_report(const RelayReport& report, ByteView raw);
  void broadcast(ByteView payload, net::NodeId except);

  sim::EventQueue& queue_;
  net::Network& network_;
  net::NodeId self_;
  uint32_t device_id_;
  attest::Prover& prover_;
  size_t swarm_size_;
  std::map<uint32_t, net::NodeId> parent_;  // round -> uplink neighbour
  Stats stats_;
};

/// Verifier-side driver: floods one round and gathers reports until the
/// deadline; verifies each device's history with its own verifier.
class RelayCollector {
 public:
  /// `verifiers[i]` validates device i (per-device keys).
  RelayCollector(sim::EventQueue& queue, net::Network& network,
                 net::NodeId self,
                 std::vector<attest::Verifier*> verifiers,
                 size_t swarm_size);

  struct RoundResult {
    std::vector<DeviceStatus> statuses;  // indexed by device id
    size_t reports_received = 0;
    sim::Duration elapsed;  // flood to last report
  };

  /// Runs one round to completion (advances the event queue to deadline).
  RoundResult run_round(uint32_t k, sim::Duration deadline, uint8_t ttl = 8);

 private:
  void on_datagram(const net::Datagram& dgram);

  sim::EventQueue& queue_;
  net::Network& network_;
  net::NodeId self_;
  std::vector<attest::Verifier*> verifiers_;
  size_t swarm_size_;
  uint32_t next_round_ = 1;

  // Per-round capture state.
  uint32_t active_round_ = 0;
  sim::Time round_start_;
  sim::Time last_report_at_;
  std::map<uint32_t, attest::CollectResponse> received_;
};

}  // namespace erasmus::swarm
