// Heterogeneous device provisioning: per-device DeviceSpecs and the
// FleetPlan that composes them into a fleet.
//
// The paper evaluates ERASMUS across *heterogeneous* populations -- SMART+
// on MSP430 next to HYDRA on ARM (Figs. 6/8), regular next to irregular
// schedules, strict next to lenient conflict policies. A DeviceSpec is the
// complete recipe for ONE device: architecture kind, cost-model profile,
// scheduler, conflict policy, memory sizes and key. A FleetPlan
// deterministically expands (seed, N, composition rules) into N specs:
//
//   FleetPlan plan = FleetPlan::uniform(1000, /*key_seed=*/7);
//   plan.add_mix(0.7, smart_spec).add_mix(0.3, hydra_spec);   // 70/30 split
//   plan.cycle_tm({5min, 10min});                             // T_M classes
//   plan.override_range(0, 10, [](DeviceSpec& s) { ... });    // first ten
//
// Expansion is a pure function of the plan: spec construction never looks
// at wall clocks, RNG state or shard layout, which is what lets the
// sharded runner split a heterogeneous 1000-device fleet across any thread
// count and reproduce a single-queue run byte for byte. Mixed slices are
// interleaved proportionally (largest-deficit order), not concatenated, so
// every architecture class is spread uniformly over the field and over the
// shards.
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "attest/directory.h"
#include "attest/prover.h"
#include "hw/factory.h"
#include "sim/device_profile.h"
#include "swarm/mobility.h"
#include "swarm/topology.h"

namespace erasmus::swarm {

/// Which measurement-timing policy a device runs (paper §3.1/§3.5).
enum class SchedulerKind : uint8_t {
  kRegular,    // fixed T_M
  kIrregular,  // key-derived interval in [irregular_lower, irregular_upper)
};

/// The complete recipe for one prover device. Defaults describe the
/// paper's baseline: SMART+ on an 8 MHz MSP430, regular 10-minute T_M.
struct DeviceSpec {
  hw::ArchKind arch = hw::ArchKind::kSmartPlus;
  sim::DeviceProfile profile = sim::DeviceProfile::msp430_8mhz();
  crypto::MacAlgo algo = crypto::MacAlgo::kHmacSha256;

  SchedulerKind scheduler = SchedulerKind::kRegular;
  sim::Duration tm = sim::Duration::minutes(10);
  /// Irregular-schedule interval bounds (SchedulerKind::kIrregular only).
  sim::Duration irregular_lower = sim::Duration::minutes(5);
  sim::Duration irregular_upper = sim::Duration::minutes(15);

  attest::ConflictPolicy conflict_policy =
      attest::ConflictPolicy::kMeasureAnyway;
  /// Lenient retry window w (>= 1, §5); applies under kAbortAndReschedule.
  double lenient_window_factor = 2.0;

  size_t app_ram_bytes = 4 * 1024;
  size_t rom_bytes = 8 * 1024;  // SMART+ only
  size_t store_slots = 16;

  /// Device key K. Left empty in composition rules, it is derived from the
  /// plan's key seed at expansion; build_device_stack rejects empty keys.
  Bytes key;
};

/// Per-device key derived from the fleet seed; in reality each device is
/// provisioned with an independent K at manufacture.
Bytes fleet_device_key(uint64_t seed, DeviceId id);

namespace detail {
/// Shared out-of-range formatter for every bounds-checked fleet accessor
/// ("<who>: device id <id> >= fleet size <n>").
[[noreturn]] void throw_bad_device_id(const char* who, DeviceId id,
                                      size_t fleet_size);
}  // namespace detail

/// The nominal measurement period of a spec: T_M for regular schedules,
/// the midpoint of [L, U) for irregular ones. Drives stagger offsets and
/// QoA math.
sim::Duration nominal_tm(const DeviceSpec& spec);

/// The first-measurement offset device `id` of `n` uses under staggered
/// scheduling: (id + 1) * tm / n.
sim::Duration stagger_offset(sim::Duration tm, DeviceId id, size_t n);

/// One full device: a security architecture (by interface -- any ArchKind)
/// plus its prover. Construction depends only on the spec -- never on
/// which EventQueue the prover is wired to -- which is what lets the
/// sharded runner split a fleet across per-thread queues and still
/// reproduce a single-queue run bit for bit. The verifier side lives in a
/// shared DeviceDirectory, not on the device.
struct DeviceStack {
  std::unique_ptr<hw::SecurityArch> arch;
  hw::RegionId app_region{};
  hw::RegionId store_region{};
  std::unique_ptr<attest::Prover> prover;
};

/// Builds the device `spec` describes, scheduling on `queue`. Throws
/// std::invalid_argument on an empty key or zero-sized memory regions.
DeviceStack build_device_stack(sim::EventQueue& queue,
                               const DeviceSpec& spec);

/// The verifier-side record for a freshly built (known-good) stack: the
/// provisioned key and the golden digest of its attested memory.
attest::DeviceRecord build_device_record(const DeviceSpec& spec,
                                         const DeviceStack& stack);

/// A deterministic recipe for N devices. Composition rules apply in a
/// fixed order at expand() time:
///   1. the mix slice for the id (proportional interleaving; the base
///      spec when no slices were added),
///   2. cycle_tm (T_M class by id, round-robin),
///   3. override_range edits, in the order they were added,
///   4. key derivation from key_seed for specs with an empty key.
class FleetPlan {
 public:
  FleetPlan() = default;
  FleetPlan(size_t devices, uint64_t key_seed)
      : devices_(devices), key_seed_(key_seed) {}

  /// A homogeneous fleet of `base` devices (the old FleetConfig shape).
  static FleetPlan uniform(size_t devices, uint64_t key_seed,
                           DeviceSpec base = {});

  /// Replaces the base spec (used when no mix slices are added).
  FleetPlan& with_base(DeviceSpec base);

  /// Adds a mix slice: `weight` is the slice's share of the fleet relative
  /// to the other slices (weights need not sum to 1). Once any slice is
  /// added, ALL devices come from slices and the base spec is unused.
  /// Slices interleave proportionally over device ids. Throws on
  /// non-positive or non-finite weight.
  FleetPlan& add_mix(double weight, DeviceSpec variant);

  /// Assigns T_M classes round-robin: device id gets tms[id % tms.size()].
  /// An empty vector clears the rule.
  FleetPlan& cycle_tm(std::vector<sim::Duration> tms);

  /// Applies `edit` to devices [first, first + count). Overrides stack in
  /// the order added and may change anything, including the key.
  FleetPlan& override_range(DeviceId first, size_t count,
                            std::function<void(DeviceSpec&)> edit);

  /// The spec list, ids 0..devices-1. Pure function of the plan.
  std::vector<DeviceSpec> expand() const;
  /// One device's spec (same result as expand()[id]). Throws
  /// std::out_of_range past the fleet size. Costs a full expansion --
  /// call expand() once instead of spec() in a loop.
  DeviceSpec spec(DeviceId id) const;

  size_t devices() const { return devices_; }
  uint64_t key_seed() const { return key_seed_; }
  FleetPlan& set_devices(size_t n) { devices_ = n; return *this; }
  FleetPlan& set_key_seed(uint64_t s) { key_seed_ = s; return *this; }

  /// Stagger first measurements at (id + 1) * T_M / N (paper §6: bounds
  /// the fraction of the swarm busy at any instant).
  bool staggered = true;
  MobilityConfig mobility;

 private:
  struct Slice {
    double weight = 1.0;
    DeviceSpec spec;
  };
  struct RangeOverride {
    DeviceId first = 0;
    size_t count = 0;
    std::function<void(DeviceSpec&)> edit;
  };

  size_t devices_ = 10;
  uint64_t key_seed_ = 7;
  DeviceSpec base_;
  std::vector<Slice> mix_;
  std::vector<sim::Duration> tm_cycle_;
  std::vector<RangeOverride> overrides_;
};

/// Parses the CLI composition grammar "arch:weight[,arch:weight...]", e.g.
/// "smartplus:0.7,hydra:0.3". Each architecture gets its paper platform
/// profile (HYDRA -> 1 GHz i.MX6, SMART+/TrustLite -> 8 MHz MSP430).
/// Throws std::invalid_argument on malformed input.
std::vector<std::pair<hw::ArchKind, double>> parse_arch_mix(
    std::string_view text);

/// The paper's evaluation platform for an architecture.
sim::DeviceProfile default_profile_for(hw::ArchKind kind);

}  // namespace erasmus::swarm
