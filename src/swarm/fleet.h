// A fleet: N full ERASMUS prover devices plus per-device verifier state,
// wired to a shared event queue and a mobility model.
//
// Where protocols.h evaluates swarm *timing* analytically, Fleet runs the
// real device stack -- per-device SMART+ architecture, keys, schedules
// (staggered per §6), stores, malware -- and collects through the mobility
// model's connectivity. Used by the swarm example and the mobility bench's
// end-to-end mode.
#pragma once

#include <memory>
#include <vector>

#include "attest/prover.h"
#include "attest/verifier.h"
#include "swarm/mobility.h"
#include "swarm/qosa.h"

namespace erasmus::swarm {

struct FleetConfig {
  size_t devices = 10;
  /// Per-device attested memory; kept small so fleet sims stay fast.
  size_t app_ram_bytes = 4 * 1024;
  size_t store_slots = 16;
  crypto::MacAlgo algo = crypto::MacAlgo::kHmacSha256;
  sim::Duration tm = sim::Duration::minutes(10);
  /// Stagger first measurements at i * T_M / N (paper §6: bounds the
  /// fraction of the swarm busy at any instant).
  bool staggered = true;
  sim::DeviceProfile profile = sim::DeviceProfile::msp430_8mhz();
  MobilityConfig mobility;
  uint64_t key_seed = 7;
};

class Fleet {
 public:
  explicit Fleet(sim::EventQueue& queue, FleetConfig config);

  /// Starts all provers (staggered or aligned).
  void start();

  size_t size() const { return provers_.size(); }
  attest::Prover& prover(DeviceId id) { return *provers_[id]; }
  attest::Verifier& verifier(DeviceId id) { return *verifiers_[id]; }
  RandomWaypointMobility& mobility() { return mobility_; }

  /// One collection round at the current virtual time: the (mobile)
  /// verifier is co-located with device `root`; every device with a
  /// multi-hop path to root at this instant is collected (k records each)
  /// and verified. Reachability-at-an-instant is exactly what ERASMUS
  /// collection needs -- no sustained topology (paper §6).
  std::vector<DeviceStatus> collect_round(DeviceId root, size_t k);

 private:
  sim::EventQueue& queue_;
  FleetConfig config_;
  RandomWaypointMobility mobility_;
  std::vector<std::unique_ptr<hw::SmartPlusArch>> archs_;
  std::vector<std::unique_ptr<attest::Prover>> provers_;
  std::vector<std::unique_ptr<attest::Verifier>> verifiers_;
};

}  // namespace erasmus::swarm
