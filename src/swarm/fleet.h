// A fleet: N full ERASMUS prover devices plus one shared verifier side,
// wired to a shared event queue and a mobility model.
//
// Where protocols.h evaluates swarm *timing* analytically, Fleet runs the
// real device stacks a FleetPlan describes -- per-device architecture
// (SMART+/HYDRA/TrustLite, possibly mixed), keys, schedules (staggered per
// §6), stores, malware -- and collects through the mobility model's
// connectivity. The verifier side is ONE AttestationService over a
// DeviceDirectory (key + golden digest per device) and a DirectTransport:
// the in-process, zero-latency path that matches instant-reachability
// collection. Used by the swarm example and the mobility bench's
// end-to-end mode. For multi-threaded 1000+ device runs see
// scenario/sharded_runner.h, which shards the same per-device stacks
// across per-thread event queues.
#pragma once

#include <memory>
#include <vector>

#include "attest/directory.h"
#include "attest/prover.h"
#include "attest/service.h"
#include "attest/transport.h"
#include "swarm/mobility.h"
#include "swarm/provision.h"
#include "swarm/qosa.h"

namespace erasmus::swarm {

class Fleet {
 public:
  explicit Fleet(sim::EventQueue& queue, FleetPlan plan);

  /// Starts all provers (staggered or aligned, per the plan).
  void start();

  size_t size() const { return stacks_.size(); }
  /// Bounds-checked: throws std::out_of_range naming the offending id.
  attest::Prover& prover(DeviceId id);
  /// The spec device `id` was built from (same bounds check).
  const DeviceSpec& spec(DeviceId id) const;
  RandomWaypointMobility& mobility() { return mobility_; }

  /// The shared verifier-side state: one record per device, judged by the
  /// verifier core (attest::verify_collection and friends).
  const attest::DeviceDirectory& directory() const { return directory_; }
  /// The shared collection engine (per-device audit logs, stats).
  attest::AttestationService& service() { return *service_; }

  /// One collection round at the current virtual time: the (mobile)
  /// verifier is co-located with device `root`; every device with a
  /// multi-hop path to root at this instant is collected (k records each)
  /// and verified through the shared AttestationService over the
  /// in-process DirectTransport. Reachability-at-an-instant is exactly
  /// what ERASMUS collection needs -- no sustained topology (paper §6).
  std::vector<DeviceStatus> collect_round(DeviceId root, size_t k);

 private:
  sim::EventQueue& queue_;
  FleetPlan plan_;
  std::vector<DeviceSpec> specs_;
  RandomWaypointMobility mobility_;
  std::vector<DeviceStack> stacks_;
  attest::DeviceDirectory directory_;
  attest::DirectTransport transport_;
  std::unique_ptr<attest::AttestationService> service_;
};

}  // namespace erasmus::swarm
