// A fleet: N full ERASMUS prover devices plus one shared verifier side,
// wired to a shared event queue and a mobility model.
//
// Where protocols.h evaluates swarm *timing* analytically, Fleet runs the
// real device stack -- per-device SMART+ architecture, keys, schedules
// (staggered per §6), stores, malware -- and collects through the mobility
// model's connectivity. The verifier side is ONE AttestationService over a
// DeviceDirectory (key + golden digest per device) and a DirectTransport:
// the in-process, zero-latency path that matches instant-reachability
// collection. Used by the swarm example and the mobility bench's
// end-to-end mode. For multi-threaded 1000+ device runs see
// scenario/sharded_runner.h, which shards the same per-device stacks
// across per-thread event queues.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "attest/directory.h"
#include "attest/prover.h"
#include "attest/service.h"
#include "attest/transport.h"
#include "swarm/mobility.h"
#include "swarm/qosa.h"

namespace erasmus::swarm {

struct FleetConfig {
  size_t devices = 10;
  /// Per-device attested memory; kept small so fleet sims stay fast.
  size_t app_ram_bytes = 4 * 1024;
  size_t store_slots = 16;
  crypto::MacAlgo algo = crypto::MacAlgo::kHmacSha256;
  sim::Duration tm = sim::Duration::minutes(10);
  /// Stagger first measurements at i * T_M / N (paper §6: bounds the
  /// fraction of the swarm busy at any instant).
  bool staggered = true;
  sim::DeviceProfile profile = sim::DeviceProfile::msp430_8mhz();
  MobilityConfig mobility;
  uint64_t key_seed = 7;
};

/// Per-device key: derived from the fleet seed; in reality each device is
/// provisioned with an independent K at manufacture.
Bytes fleet_device_key(uint64_t seed, DeviceId id);

/// One full device: SMART+ architecture plus prover. The construction
/// depends only on (config, id) -- never on which EventQueue the prover is
/// wired to -- which is what lets the sharded runner split a fleet across
/// per-thread queues and still reproduce a single-queue run bit for bit.
/// The verifier side lives in a shared DeviceDirectory, not on the device.
struct DeviceStack {
  std::unique_ptr<hw::SmartPlusArch> arch;
  std::unique_ptr<attest::Prover> prover;
};

/// Builds device `id` of the fleet described by `config`, scheduling on
/// `queue`. `tm_override` replaces config.tm for this device (heterogeneous
/// fleets).
DeviceStack build_device_stack(
    sim::EventQueue& queue, const FleetConfig& config, DeviceId id,
    std::optional<sim::Duration> tm_override = std::nullopt);

/// The verifier-side record for device `id`: its provisioned key and the
/// golden digest of the freshly-built (known-good) attested memory.
attest::DeviceRecord build_device_record(const FleetConfig& config,
                                         DeviceId id,
                                         hw::SmartPlusArch& arch);

/// The first-measurement offset device `id` of `n` uses under staggered
/// scheduling: (id + 1) * tm / n.
sim::Duration stagger_offset(sim::Duration tm, DeviceId id, size_t n);

class Fleet {
 public:
  explicit Fleet(sim::EventQueue& queue, FleetConfig config);

  /// Starts all provers (staggered or aligned).
  void start();

  size_t size() const { return stacks_.size(); }
  attest::Prover& prover(DeviceId id) { return *stacks_[id].prover; }
  RandomWaypointMobility& mobility() { return mobility_; }

  /// The shared verifier-side state: one record per device, judged by the
  /// verifier core (attest::verify_collection and friends).
  const attest::DeviceDirectory& directory() const { return directory_; }
  /// The shared collection engine (per-device audit logs, stats).
  attest::AttestationService& service() { return *service_; }

  /// One collection round at the current virtual time: the (mobile)
  /// verifier is co-located with device `root`; every device with a
  /// multi-hop path to root at this instant is collected (k records each)
  /// and verified through the shared AttestationService over the
  /// in-process DirectTransport. Reachability-at-an-instant is exactly
  /// what ERASMUS collection needs -- no sustained topology (paper §6).
  std::vector<DeviceStatus> collect_round(DeviceId root, size_t k);

 private:
  sim::EventQueue& queue_;
  FleetConfig config_;
  RandomWaypointMobility mobility_;
  std::vector<DeviceStack> stacks_;
  attest::DeviceDirectory directory_;
  attest::DirectTransport transport_;
  std::unique_ptr<attest::AttestationService> service_;
};

}  // namespace erasmus::swarm
