#include "swarm/fleet.h"

#include "attest/measurement.h"
#include "common/serde.h"
#include "crypto/hmac_drbg.h"

namespace erasmus::swarm {

namespace {

// Per-device key: derived from the fleet seed; in reality each device is
// provisioned with an independent K at manufacture.
Bytes device_key(uint64_t seed, DeviceId id) {
  ByteWriter w;
  w.u64(seed);
  w.u32(id);
  crypto::HmacDrbg drbg(w.bytes(), bytes_of("erasmus-fleet-key"));
  return drbg.generate(32);
}

}  // namespace

Fleet::Fleet(sim::EventQueue& queue, FleetConfig config)
    : queue_(queue), config_(config), mobility_([&] {
        MobilityConfig m = config.mobility;
        m.devices = config.devices;
        return m;
      }()) {
  const size_t store_bytes =
      config_.store_slots *
      (1 + attest::Measurement::wire_size(config_.algo));  // flag + record

  for (DeviceId id = 0; id < config_.devices; ++id) {
    auto arch = std::make_unique<hw::SmartPlusArch>(
        device_key(config_.key_seed, id), /*rom_bytes=*/8 * 1024,
        config_.app_ram_bytes, store_bytes);

    attest::ProverConfig pc;
    pc.algo = config_.algo;
    pc.profile = config_.profile;
    auto prover = std::make_unique<attest::Prover>(
        queue_, *arch, arch->app_region(), arch->store_region(),
        std::make_unique<attest::RegularScheduler>(config_.tm), pc);

    attest::VerifierConfig vc;
    vc.algo = config_.algo;
    vc.key = device_key(config_.key_seed, id);
    vc.golden_digest = crypto::Hash::digest(
        attest::hash_for(config_.algo),
        arch->memory().view(arch->app_region(), /*privileged=*/true));
    auto verifier = std::make_unique<attest::Verifier>(std::move(vc));

    archs_.push_back(std::move(arch));
    provers_.push_back(std::move(prover));
    verifiers_.push_back(std::move(verifier));
  }
}

void Fleet::start() {
  for (DeviceId id = 0; id < provers_.size(); ++id) {
    if (config_.staggered) {
      const sim::Duration offset =
          config_.tm * (id + 1) / static_cast<uint64_t>(provers_.size());
      provers_[id]->start(offset);
    } else {
      provers_[id]->start();
    }
  }
}

std::vector<DeviceStatus> Fleet::collect_round(DeviceId root, size_t k) {
  const sim::Time now = queue_.now();
  const Topology topo = mobility_.snapshot(now);
  const auto tree = topo.bfs_tree(root);

  std::vector<DeviceStatus> statuses;
  statuses.reserve(provers_.size());
  for (DeviceId id = 0; id < provers_.size(); ++id) {
    DeviceStatus status;
    status.device = id;
    status.attested = tree.parent[id].has_value();
    if (status.attested) {
      attest::CollectRequest req{static_cast<uint32_t>(k)};
      const auto res = provers_[id]->handle_collect(req);
      const auto report =
          verifiers_[id]->verify_collection(res.response, now);
      status.healthy = report.device_trustworthy() &&
                       report.freshness.has_value();
    }
    statuses.push_back(status);
  }
  return statuses;
}

}  // namespace erasmus::swarm
