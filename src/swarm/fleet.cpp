#include "swarm/fleet.h"

#include "attest/measurement.h"
#include "common/serde.h"
#include "crypto/hmac_drbg.h"

namespace erasmus::swarm {

Bytes fleet_device_key(uint64_t seed, DeviceId id) {
  ByteWriter w;
  w.u64(seed);
  w.u32(id);
  crypto::HmacDrbg drbg(w.bytes(), bytes_of("erasmus-fleet-key"));
  return drbg.generate(32);
}

DeviceStack build_device_stack(sim::EventQueue& queue,
                               const FleetConfig& config, DeviceId id,
                               std::optional<sim::Duration> tm_override) {
  const size_t store_bytes =
      config.store_slots *
      (1 + attest::Measurement::wire_size(config.algo));  // flag + record

  DeviceStack stack;
  stack.arch = std::make_unique<hw::SmartPlusArch>(
      fleet_device_key(config.key_seed, id), /*rom_bytes=*/8 * 1024,
      config.app_ram_bytes, store_bytes);

  attest::ProverConfig pc;
  pc.algo = config.algo;
  pc.profile = config.profile;
  stack.prover = std::make_unique<attest::Prover>(
      queue, *stack.arch, stack.arch->app_region(),
      stack.arch->store_region(),
      std::make_unique<attest::RegularScheduler>(tm_override.value_or(
          config.tm)),
      pc);
  return stack;
}

attest::DeviceRecord build_device_record(const FleetConfig& config,
                                         DeviceId id,
                                         hw::SmartPlusArch& arch) {
  attest::DeviceRecord record;
  record.algo = config.algo;
  record.key = fleet_device_key(config.key_seed, id);
  record.set_golden(crypto::Hash::digest(
      attest::hash_for(config.algo),
      arch.memory().view(arch.app_region(), /*privileged=*/true)));
  return record;
}

sim::Duration stagger_offset(sim::Duration tm, DeviceId id, size_t n) {
  return tm * (id + 1) / static_cast<uint64_t>(n);
}

Fleet::Fleet(sim::EventQueue& queue, FleetConfig config)
    : queue_(queue), config_(config), mobility_([&] {
        MobilityConfig m = config.mobility;
        m.devices = config.devices;
        return m;
      }()) {
  stacks_.reserve(config_.devices);
  for (DeviceId id = 0; id < config_.devices; ++id) {
    stacks_.push_back(build_device_stack(queue_, config_, id));
    // Directory node id == global device id (the DirectTransport's address
    // space is its own attach table).
    directory_.add(id, build_device_record(config_, id, *stacks_[id].arch));
    transport_.attach(id, *stacks_[id].prover);
  }
  attest::ServiceConfig sc;
  // Callers consume rounds through the returned DeviceStatus rows; keeping
  // per-device audit logs would grow without bound over a long run.
  sc.keep_audit = false;
  service_ = std::make_unique<attest::AttestationService>(
      queue_, transport_, directory_, sc);
}

void Fleet::start() {
  for (DeviceId id = 0; id < stacks_.size(); ++id) {
    if (config_.staggered) {
      stacks_[id].prover->start(
          stagger_offset(config_.tm, id, stacks_.size()));
    } else {
      stacks_[id].prover->start();
    }
  }
}

std::vector<DeviceStatus> Fleet::collect_round(DeviceId root, size_t k) {
  const sim::Time now = queue_.now();
  const Topology topo = mobility_.snapshot(now);
  const auto tree = topo.bfs_tree(root);

  std::vector<attest::DeviceId> targets;
  targets.reserve(stacks_.size());
  for (DeviceId id = 0; id < stacks_.size(); ++id) {
    if (tree.parent[id].has_value()) targets.push_back(id);
  }
  // Every session completes synchronously over the DirectTransport, so the
  // outcomes cover exactly `targets`, in order.
  const auto outcomes =
      service_->collect_now(targets, static_cast<uint32_t>(k));

  std::vector<DeviceStatus> statuses(stacks_.size());
  for (DeviceId id = 0; id < stacks_.size(); ++id) statuses[id].device = id;
  for (const auto& outcome : outcomes) {
    DeviceStatus& status = statuses[outcome.device];
    status.attested = true;
    status.healthy = outcome.report.device_trustworthy() &&
                     outcome.report.freshness.has_value();
  }
  return statuses;
}

}  // namespace erasmus::swarm
