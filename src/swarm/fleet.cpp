#include "swarm/fleet.h"

#include <stdexcept>
#include <string>

namespace erasmus::swarm {

Fleet::Fleet(sim::EventQueue& queue, FleetPlan plan)
    : queue_(queue), plan_(std::move(plan)), specs_(plan_.expand()),
      mobility_([&] {
        MobilityConfig m = plan_.mobility;
        m.devices = plan_.devices();
        return m;
      }()) {
  stacks_.reserve(specs_.size());
  for (DeviceId id = 0; id < specs_.size(); ++id) {
    stacks_.push_back(build_device_stack(queue_, specs_[id]));
    // Directory node id == global device id (the DirectTransport's address
    // space is its own attach table).
    directory_.add(id, build_device_record(specs_[id], stacks_[id]));
    transport_.attach(id, *stacks_[id].prover);
  }
  attest::ServiceConfig sc;
  // Callers consume rounds through the returned DeviceStatus rows; keeping
  // per-device audit logs would grow without bound over a long run.
  sc.keep_audit = false;
  service_ = std::make_unique<attest::AttestationService>(
      queue_, transport_, directory_, sc);
}

attest::Prover& Fleet::prover(DeviceId id) {
  if (id >= stacks_.size()) {
    detail::throw_bad_device_id("Fleet::prover", id, stacks_.size());
  }
  return *stacks_[id].prover;
}

const DeviceSpec& Fleet::spec(DeviceId id) const {
  if (id >= specs_.size()) {
    detail::throw_bad_device_id("Fleet::spec", id, specs_.size());
  }
  return specs_[id];
}

void Fleet::start() {
  for (DeviceId id = 0; id < stacks_.size(); ++id) {
    if (plan_.staggered) {
      stacks_[id].prover->start(
          stagger_offset(nominal_tm(specs_[id]), id, stacks_.size()));
    } else {
      stacks_[id].prover->start();
    }
  }
}

std::vector<DeviceStatus> Fleet::collect_round(DeviceId root, size_t k) {
  const sim::Time now = queue_.now();
  const Topology topo = mobility_.snapshot(now);
  const auto tree = topo.bfs_tree(root);

  std::vector<attest::DeviceId> targets;
  targets.reserve(stacks_.size());
  for (DeviceId id = 0; id < stacks_.size(); ++id) {
    if (tree.parent[id].has_value()) targets.push_back(id);
  }
  // Every session completes synchronously over the DirectTransport, so the
  // outcomes cover exactly `targets`, in order.
  const auto outcomes =
      service_->collect_now(targets, static_cast<uint32_t>(k));

  std::vector<DeviceStatus> statuses(stacks_.size());
  for (DeviceId id = 0; id < stacks_.size(); ++id) statuses[id].device = id;
  for (const auto& outcome : outcomes) {
    DeviceStatus& status = statuses[outcome.device];
    status.attested = true;
    status.healthy = outcome.report.device_trustworthy() &&
                     outcome.report.freshness.has_value();
  }
  return statuses;
}

}  // namespace erasmus::swarm
