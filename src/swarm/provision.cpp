#include "swarm/provision.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "attest/measurement.h"
#include "common/serde.h"
#include "crypto/hmac_drbg.h"

namespace erasmus::swarm {

Bytes fleet_device_key(uint64_t seed, DeviceId id) {
  ByteWriter w;
  w.u64(seed);
  w.u32(id);
  crypto::HmacDrbg drbg(w.bytes(), bytes_of("erasmus-fleet-key"));
  return drbg.generate(32);
}

namespace detail {
void throw_bad_device_id(const char* who, DeviceId id, size_t fleet_size) {
  throw std::out_of_range(std::string(who) + ": device id " +
                          std::to_string(id) + " >= fleet size " +
                          std::to_string(fleet_size));
}
}  // namespace detail

sim::Duration nominal_tm(const DeviceSpec& spec) {
  if (spec.scheduler == SchedulerKind::kIrregular) {
    return (spec.irregular_lower + spec.irregular_upper) / 2;
  }
  return spec.tm;
}

sim::Duration stagger_offset(sim::Duration tm, DeviceId id, size_t n) {
  return tm * (id + 1) / static_cast<uint64_t>(n);
}

DeviceStack build_device_stack(sim::EventQueue& queue,
                               const DeviceSpec& spec) {
  if (spec.key.empty()) {
    throw std::invalid_argument(
        "build_device_stack: spec has no key (expand() a FleetPlan or set "
        "one explicitly)");
  }
  if (spec.app_ram_bytes == 0 || spec.store_slots == 0) {
    throw std::invalid_argument(
        "build_device_stack: app_ram_bytes and store_slots must be > 0");
  }
  const size_t store_bytes =
      spec.store_slots *
      (1 + attest::Measurement::wire_size(spec.algo));  // flag + record

  DeviceStack stack;
  hw::BuiltArch built = hw::make_arch(spec.arch, spec.key,
                                      spec.app_ram_bytes, store_bytes,
                                      spec.rom_bytes);
  stack.arch = std::move(built.arch);
  stack.app_region = built.app_region;
  stack.store_region = built.store_region;

  std::unique_ptr<attest::Scheduler> sched;
  switch (spec.scheduler) {
    case SchedulerKind::kRegular:
      sched = std::make_unique<attest::RegularScheduler>(spec.tm);
      break;
    case SchedulerKind::kIrregular:
      if (spec.irregular_lower >= spec.irregular_upper) {
        throw std::invalid_argument(
            "build_device_stack: irregular schedule needs lower < upper");
      }
      sched = std::make_unique<attest::IrregularScheduler>(
          spec.key, spec.irregular_lower, spec.irregular_upper);
      break;
  }
  if (spec.conflict_policy == attest::ConflictPolicy::kAbortAndReschedule) {
    sched = std::make_unique<attest::LenientScheduler>(
        std::move(sched), spec.lenient_window_factor);
  }

  attest::ProverConfig pc;
  pc.algo = spec.algo;
  pc.profile = spec.profile;
  pc.conflict_policy = spec.conflict_policy;
  stack.prover = std::make_unique<attest::Prover>(
      queue, *stack.arch, stack.app_region, stack.store_region,
      std::move(sched), pc);
  return stack;
}

attest::DeviceRecord build_device_record(const DeviceSpec& spec,
                                         const DeviceStack& stack) {
  attest::DeviceRecord record;
  record.algo = spec.algo;
  record.key = spec.key;
  record.set_golden(crypto::Hash::digest(
      attest::hash_for(spec.algo),
      stack.arch->memory().view(stack.app_region, /*privileged=*/true)));
  return record;
}

FleetPlan FleetPlan::uniform(size_t devices, uint64_t key_seed,
                             DeviceSpec base) {
  FleetPlan plan(devices, key_seed);
  plan.base_ = std::move(base);
  return plan;
}

FleetPlan& FleetPlan::with_base(DeviceSpec base) {
  base_ = std::move(base);
  return *this;
}

FleetPlan& FleetPlan::add_mix(double weight, DeviceSpec variant) {
  if (!(weight > 0.0) || !std::isfinite(weight)) {
    throw std::invalid_argument("FleetPlan::add_mix: weight must be > 0");
  }
  mix_.push_back(Slice{weight, std::move(variant)});
  return *this;
}

FleetPlan& FleetPlan::cycle_tm(std::vector<sim::Duration> tms) {
  tm_cycle_ = std::move(tms);
  return *this;
}

FleetPlan& FleetPlan::override_range(DeviceId first, size_t count,
                                     std::function<void(DeviceSpec&)> edit) {
  overrides_.push_back(RangeOverride{first, count, std::move(edit)});
  return *this;
}

std::vector<DeviceSpec> FleetPlan::expand() const {
  std::vector<DeviceSpec> specs;
  specs.reserve(devices_);

  // Proportional interleaving (Bresenham over slice quotas): device i goes
  // to the slice with the largest accumulated deficit w_s*(i+1) - n_s, so
  // a 30/70 mix reads ...BABBABB... instead of AAABBBBBBB and every class
  // spreads uniformly over the field and over the shards.
  double total_weight = 0.0;
  for (const Slice& s : mix_) total_weight += s.weight;
  std::vector<size_t> assigned(mix_.size(), 0);

  for (DeviceId id = 0; id < devices_; ++id) {
    const DeviceSpec* source = &base_;
    if (!mix_.empty()) {
      size_t best = 0;
      double best_deficit = -1.0;
      for (size_t s = 0; s < mix_.size(); ++s) {
        const double deficit =
            mix_[s].weight / total_weight * static_cast<double>(id + 1) -
            static_cast<double>(assigned[s]);
        if (deficit > best_deficit) {
          best_deficit = deficit;
          best = s;
        }
      }
      ++assigned[best];
      source = &mix_[best].spec;
    }
    DeviceSpec spec = *source;
    if (!tm_cycle_.empty()) spec.tm = tm_cycle_[id % tm_cycle_.size()];
    for (const RangeOverride& o : overrides_) {
      if (id >= o.first && id - o.first < o.count && o.edit) o.edit(spec);
    }
    if (spec.key.empty()) spec.key = fleet_device_key(key_seed_, id);
    specs.push_back(std::move(spec));
  }
  return specs;
}

DeviceSpec FleetPlan::spec(DeviceId id) const {
  if (id >= devices_) detail::throw_bad_device_id("FleetPlan::spec", id, devices_);
  return expand()[id];
}

sim::DeviceProfile default_profile_for(hw::ArchKind kind) {
  return kind == hw::ArchKind::kHydra ? sim::DeviceProfile::imx6_1ghz()
                                      : sim::DeviceProfile::msp430_8mhz();
}

std::vector<std::pair<hw::ArchKind, double>> parse_arch_mix(
    std::string_view text) {
  std::vector<std::pair<hw::ArchKind, double>> mix;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t comma = std::min(text.find(',', pos), text.size());
    const std::string_view entry = text.substr(pos, comma - pos);
    const size_t colon = entry.find(':');
    if (entry.empty() || colon == 0 || colon == std::string_view::npos ||
        colon + 1 == entry.size()) {
      throw std::invalid_argument(
          "arch mix: expected arch:weight[,arch:weight...], got '" +
          std::string(text) + "'");
    }
    const hw::ArchKind kind = hw::arch_kind_from_string(entry.substr(0, colon));
    const std::string weight_text(entry.substr(colon + 1));
    size_t used = 0;
    double weight = 0.0;
    try {
      weight = std::stod(weight_text, &used);
    } catch (const std::exception&) {
      used = std::string::npos;
    }
    if (used != weight_text.size() || !(weight > 0.0) ||
        !std::isfinite(weight)) {
      throw std::invalid_argument("arch mix: '" + weight_text +
                                  "' is not a positive weight");
    }
    mix.emplace_back(kind, weight);
    pos = comma + 1;
  }
  return mix;
}

}  // namespace erasmus::swarm
