#include "swarm/topology.h"

#include <queue>
#include <stdexcept>

namespace erasmus::swarm {

void Topology::add_edge(DeviceId a, DeviceId b) {
  if (a >= n_ || b >= n_) throw std::out_of_range("Topology: bad device id");
  if (a == b) return;
  adj_[idx(a, b)] = true;
  adj_[idx(b, a)] = true;
}

void Topology::remove_edge(DeviceId a, DeviceId b) {
  if (a >= n_ || b >= n_) throw std::out_of_range("Topology: bad device id");
  adj_[idx(a, b)] = false;
  adj_[idx(b, a)] = false;
}

bool Topology::connected(DeviceId a, DeviceId b) const {
  if (a >= n_ || b >= n_) throw std::out_of_range("Topology: bad device id");
  return adj_[idx(a, b)];
}

std::vector<DeviceId> Topology::neighbors(DeviceId v) const {
  std::vector<DeviceId> out;
  for (DeviceId u = 0; u < n_; ++u) {
    if (u != v && adj_[idx(v, u)]) out.push_back(u);
  }
  return out;
}

size_t Topology::edge_count() const {
  size_t count = 0;
  for (DeviceId a = 0; a < n_; ++a) {
    for (DeviceId b = a + 1; b < n_; ++b) {
      if (adj_[idx(a, b)]) ++count;
    }
  }
  return count;
}

uint32_t Topology::SpanningTree::max_depth() const {
  uint32_t d = 0;
  for (size_t v = 0; v < parent.size(); ++v) {
    if (parent[v]) d = std::max(d, depth[v]);
  }
  return d;
}

std::vector<DeviceId> Topology::SpanningTree::children(DeviceId v) const {
  std::vector<DeviceId> out;
  for (DeviceId u = 0; u < parent.size(); ++u) {
    if (u != root && parent[u] && *parent[u] == v) out.push_back(u);
  }
  return out;
}

Topology::SpanningTree Topology::bfs_tree(DeviceId root) const {
  if (root >= n_) throw std::out_of_range("Topology: bad root");
  SpanningTree tree;
  tree.root = root;
  tree.parent.assign(n_, std::nullopt);
  tree.depth.assign(n_, 0);
  tree.parent[root] = root;
  tree.reached = 1;

  std::queue<DeviceId> frontier;
  frontier.push(root);
  while (!frontier.empty()) {
    const DeviceId v = frontier.front();
    frontier.pop();
    for (DeviceId u : neighbors(v)) {
      if (!tree.parent[u]) {
        tree.parent[u] = v;
        tree.depth[u] = tree.depth[v] + 1;
        ++tree.reached;
        frontier.push(u);
      }
    }
  }
  return tree;
}

size_t Topology::reachable_from(DeviceId root) const {
  return bfs_tree(root).reached;
}

}  // namespace erasmus::swarm
