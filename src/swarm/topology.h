// Swarm topology: an undirected graph snapshot of device connectivity.
//
// On-demand swarm RA (SEDA/LISA-style) floods a request down a spanning
// tree and gathers reports back up; the tree is built on the topology at
// protocol start and silently breaks when edges churn mid-protocol -- the
// paper's core argument for ERASMUS in high-mobility swarms (§6).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace erasmus::swarm {

using DeviceId = uint32_t;

class Topology {
 public:
  explicit Topology(size_t n) : n_(n), adj_(n * n, false) {}

  size_t size() const { return n_; }

  void add_edge(DeviceId a, DeviceId b);
  void remove_edge(DeviceId a, DeviceId b);
  bool connected(DeviceId a, DeviceId b) const;

  std::vector<DeviceId> neighbors(DeviceId v) const;
  size_t edge_count() const;

  /// BFS spanning tree rooted at `root`.
  struct SpanningTree {
    DeviceId root = 0;
    /// parent[v]; parent[root] == root; nullopt when v is unreachable.
    std::vector<std::optional<DeviceId>> parent;
    std::vector<uint32_t> depth;  // valid when parent[v] is set
    size_t reached = 0;

    uint32_t max_depth() const;
    /// Children of v in the tree.
    std::vector<DeviceId> children(DeviceId v) const;
  };
  SpanningTree bfs_tree(DeviceId root) const;

  /// Number of devices reachable from `root` (including itself).
  size_t reachable_from(DeviceId root) const;

 private:
  size_t idx(DeviceId a, DeviceId b) const {
    return static_cast<size_t>(a) * n_ + b;
  }

  size_t n_;
  std::vector<bool> adj_;
};

}  // namespace erasmus::swarm
