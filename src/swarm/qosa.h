// Quality of Swarm Attestation (QoSA), from LISA [Carpent et al.,
// ASIACCS'17], referenced by the paper's §6: the level of information the
// verifier obtains from a swarm attestation round. QoSA is orthogonal to
// QoA (per-device temporal quality); the paper argues they compose.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "swarm/protocols.h"

namespace erasmus::swarm {

enum class QosaLevel : uint8_t {
  kBinary,  // "is the whole swarm healthy?" -- one bit
  kList,    // per-device health status
  kFull,    // per-device status + topology information
};

std::string to_string(QosaLevel level);

struct DeviceStatus {
  DeviceId device = 0;
  bool attested = false;  // report reached the verifier this round
  bool healthy = false;   // report verified and matched the golden digest
};

struct SwarmReport {
  QosaLevel level = QosaLevel::kBinary;
  /// Binary summary: every device attested AND healthy.
  bool all_healthy = false;
  /// Populated for kList and kFull.
  std::vector<DeviceStatus> devices;
  /// Populated for kFull: edges observed during the round.
  std::vector<std::pair<DeviceId, DeviceId>> edges;
};

/// Folds per-device outcomes into a report at the requested QoSA level
/// (information not covered by the level is dropped, as a real protocol
/// would never have transmitted it).
SwarmReport make_report(QosaLevel level,
                        const std::vector<DeviceStatus>& statuses,
                        const Topology& topo);

}  // namespace erasmus::swarm
