// Random-waypoint mobility model over a square field.
//
// Each device moves toward a random waypoint at a random speed, picks a new
// waypoint on arrival, and is connected to every device within radio range.
// Trajectories are generated lazily and kept, so position(node, t) is
// well-defined for any already-reached or future t and the model can be
// queried out of order within a protocol round (hops at different times).
//
// The `speed` knob is the mobility-rate axis of the paper's §6 argument:
// at speed 0 the topology is static and on-demand swarm RA works; as speed
// grows, tree edges break mid-protocol and coverage collapses -- while
// ERASMUS collection, needing only momentary per-hop connectivity, degrades
// far more slowly.
#pragma once

#include <vector>

#include "common/parallel.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "swarm/topology.h"

namespace erasmus::swarm {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double distance(Point a, Point b);

struct MobilityConfig {
  size_t devices = 20;
  double field_size = 100.0;   // square side, metres
  double radio_range = 30.0;   // connectivity radius, metres
  double speed_min = 0.5;      // metres/second
  double speed_max = 2.0;
  uint64_t seed = 42;
};

class RandomWaypointMobility {
 public:
  explicit RandomWaypointMobility(MobilityConfig config);

  Point position(DeviceId node, sim::Time t);

  bool connected(DeviceId a, DeviceId b, sim::Time t);

  /// Full adjacency snapshot at time t.
  Topology snapshot(sim::Time t);

  /// Parallelizes the O(n^2) range test inside snapshot() (positions and
  /// trajectory extension stay sequential -- they consume the shared RNG
  /// in device order). Each worker row computes into its own slot with
  /// the EXACT same floating-point predicate, and the edges are merged
  /// sequentially in row order, so the resulting Topology is bit-for-bit
  /// the serial one. nullptr (the default) keeps the serial loop.
  void set_executor(common::ParallelExecutor* executor) {
    executor_ = executor;
  }

  const MobilityConfig& config() const { return config_; }

 private:
  struct Segment {
    sim::Time start;
    sim::Time end;
    Point from;
    Point to;
  };

  void extend(DeviceId node, sim::Time until);

  MobilityConfig config_;
  sim::Rng rng_;
  common::ParallelExecutor* executor_ = nullptr;  // not owned
  std::vector<std::vector<Segment>> segments_;  // per node, time-ordered
};

}  // namespace erasmus::swarm
