// Packet-level on-demand swarm attestation (SEDA-style baseline, §2/§6).
//
// The counterpart of the collection overlay (src/overlay/) for the
// ON-DEMAND paradigm: the
// verifier's request floods down, every device computes a FRESH measurement
// in real time (the expensive step ERASMUS self-measurement amortises), and
// reports aggregate bottom-up -- a parent waits for its acknowledged
// children before reporting, so the protocol holds the whole tree hostage
// to connectivity for its full duration. Under mobility, edges break while
// devices are still hashing, and subtrees vanish from the aggregate: this
// module makes the paper's §6 argument measurable message-by-message
// against the ERASMUS relay protocol.
//
// Aggregation model: report lists (device, fresh measurement) pairs, merged
// up the tree (SANA-style report aggregation); the root verifies each entry
// with the device's key.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "attest/directory.h"
#include "attest/prover.h"
#include "net/network.h"
#include "swarm/qosa.h"

namespace erasmus::swarm {

/// Wire tags, disjoint from attest::MsgType and RelayMsg.
enum class SedaMsg : uint8_t {
  kAttestFlood = 0x30,
  kChildAck = 0x31,
  kAggregate = 0x32,
};

struct SedaConfig {
  /// How long a parent waits for acknowledged children past its own
  /// measurement before giving up on them.
  sim::Duration child_timeout = sim::Duration::seconds(2);
  uint8_t ttl = 8;
};

/// Per-device SEDA participant.
class SedaAgent {
 public:
  SedaAgent(sim::EventQueue& queue, net::Network& network, net::NodeId self,
            uint32_t device_id, attest::Prover& prover, size_t swarm_size,
            SedaConfig config);

  struct Stats {
    uint64_t rounds_joined = 0;
    uint64_t measurements_computed = 0;
    uint64_t children_lost = 0;  // acked children that never reported
  };
  const Stats& stats() const { return stats_; }

 private:
  struct RoundState {
    net::NodeId parent = 0;
    std::set<uint32_t> acked_children;
    std::set<uint32_t> reported_children;
    std::vector<std::pair<uint32_t, Bytes>> aggregate;  // (device, M wire)
    bool measurement_done = false;
    bool reported = false;
  };

  void on_datagram(const net::Datagram& dgram);
  void handle_flood(uint32_t round, uint8_t ttl, net::NodeId from);
  void maybe_report(uint32_t round);
  void send_report(uint32_t round);

  sim::EventQueue& queue_;
  net::Network& network_;
  net::NodeId self_;
  uint32_t device_id_;
  attest::Prover& prover_;
  size_t swarm_size_;
  SedaConfig config_;
  std::map<uint32_t, RoundState> rounds_;
  Stats stats_;
};

/// Verifier-side driver for one SEDA round. Device records (key, golden
/// epochs) come from the shared DeviceDirectory -- one verifier party, no
/// per-device Verifier instances.
class SedaCollector {
 public:
  /// `directory` maps device ids 0..swarm_size-1 to their records; it must
  /// outlive the collector.
  SedaCollector(sim::EventQueue& queue, net::Network& network,
                net::NodeId self, const attest::DeviceDirectory& directory,
                size_t swarm_size, SedaConfig config = {});

  struct RoundResult {
    std::vector<DeviceStatus> statuses;
    size_t fresh_measurements_received = 0;
    sim::Duration elapsed;
  };

  /// Floods one attestation round and waits out `deadline`.
  RoundResult run_round(sim::Duration deadline);

 private:
  void on_datagram(const net::Datagram& dgram);

  sim::EventQueue& queue_;
  net::Network& network_;
  net::NodeId self_;
  const attest::DeviceDirectory& directory_;
  size_t swarm_size_;
  SedaConfig config_;
  uint32_t next_round_ = 1;
  uint32_t active_round_ = 0;
  sim::Time round_start_;
  sim::Time last_report_at_;
  std::map<uint32_t, Bytes> received_;  // device -> measurement wire
};

}  // namespace erasmus::swarm
