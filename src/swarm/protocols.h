// Swarm attestation protocols (paper §6).
//
// Two protocol families over a mobile swarm:
//
//  * On-demand swarm RA (SEDA/LISA-style baseline): the verifier's request
//    floods down a spanning tree built at protocol start; every device
//    computes a FRESH measurement (expensive), then reports aggregate back
//    up the same tree. Every tree edge must still exist when a message
//    crosses it -- over the protocol's long lifetime (dominated by
//    per-device measurement time), mobility breaks edges and subtrees drop
//    out.
//
//  * ERASMUS + LISA-alpha-style collection: the same flood/report pattern,
//    but devices only read STORED self-measurements (microseconds), so the
//    protocol completes orders of magnitude faster and tolerates mobility.
//
// Both are evaluated edge-by-edge against the mobility model at the virtual
// time each message actually crosses each hop.
#pragma once

#include "sim/time.h"
#include "swarm/mobility.h"
#include "swarm/topology.h"

namespace erasmus::swarm {

struct SwarmProtocolConfig {
  sim::Duration hop_latency = sim::Duration::millis(5);
  /// Per-device fresh-measurement time (on-demand baseline). For a 10 MB
  /// HYDRA device with BLAKE2s this is ~286 ms (Table 2).
  sim::Duration measurement_time = sim::Duration::millis(286);
  /// Per-device stored-measurement read + packet time (ERASMUS collection,
  /// Table 2: ~0.015 ms).
  sim::Duration collection_reply_time = sim::Duration::micros(15);
};

struct SwarmRoundResult {
  size_t devices = 0;
  /// Devices whose report made it back to the verifier's root device.
  size_t attested = 0;
  /// Wall-clock duration until the last report arrived at the root.
  sim::Duration duration;

  double coverage() const {
    return devices == 0 ? 0.0
                        : static_cast<double>(attested) /
                              static_cast<double>(devices);
  }
};

/// Runs one on-demand (SEDA-style) swarm attestation round starting at t0,
/// rooted at device `root`.
SwarmRoundResult run_ondemand_round(RandomWaypointMobility& mobility,
                                    sim::Time t0, DeviceId root,
                                    const SwarmProtocolConfig& config);

/// Runs one ERASMUS collection round (LISA-alpha-style relay of stored
/// self-measurements) starting at t0, rooted at `root`.
SwarmRoundResult run_erasmus_collection_round(
    RandomWaypointMobility& mobility, sim::Time t0, DeviceId root,
    const SwarmProtocolConfig& config);

/// §6, last paragraph: with ERASMUS it is trivial to stagger measurement
/// schedules so only a bounded fraction of the swarm is busy at once.
/// Returns the max number of devices simultaneously measuring over one
/// full period, with offsets i*T_M/n (staggered) or all-zero (aligned).
size_t max_concurrent_busy(size_t devices, sim::Duration tm,
                           sim::Duration measurement_time, bool staggered);

}  // namespace erasmus::swarm
