#include "common/serde.h"

namespace erasmus {

void ByteWriter::u16(uint16_t v) {
  u8(static_cast<uint8_t>(v));
  u8(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::u32(uint32_t v) {
  u16(static_cast<uint16_t>(v));
  u16(static_cast<uint16_t>(v >> 16));
}

void ByteWriter::u64(uint64_t v) {
  u32(static_cast<uint32_t>(v));
  u32(static_cast<uint32_t>(v >> 32));
}

void ByteWriter::var_bytes(ByteView data) {
  u32(static_cast<uint32_t>(data.size()));
  raw(data);
}

bool ByteReader::ensure(size_t n) {
  if (!ok_ || remaining() < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t ByteReader::u8() {
  if (!ensure(1)) return 0;
  return data_[pos_++];
}

uint16_t ByteReader::u16() {
  if (!ensure(2)) return 0;
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

uint32_t ByteReader::u32() {
  if (!ensure(4)) return 0;
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

uint64_t ByteReader::u64() {
  if (!ensure(8)) return 0;
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

Bytes ByteReader::raw(size_t n) {
  if (!ensure(n)) return {};
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

Bytes ByteReader::var_bytes() {
  const uint32_t n = u32();
  return raw(n);
}

}  // namespace erasmus
