// Deterministic string rendering shared by the metrics sinks and the
// bench reporter.
#pragma once

#include <string>
#include <string_view>

namespace erasmus {

/// Shortest round-trip decimal rendering of a double (std::to_chars), with
/// a trailing ".0" kept on integral values so the real-ness stays visible.
/// NaN renders as "null", infinities as +/-"1e999" (JSON-parseable as a
/// number overflow). Byte-deterministic across runs.
std::string format_double(double v);

/// Escapes `s` for embedding in a JSON string literal (quotes not added).
std::string json_escape(std::string_view s);

}  // namespace erasmus
