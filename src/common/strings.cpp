#include "common/strings.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace erasmus {

std::string format_double(double v) {
  if (std::isnan(v)) return "null";
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  std::string s(buf, res.ptr);
  // Bare integers read as integers in JSON; keep the real-ness visible.
  if (s.find('.') == std::string::npos &&
      s.find('e') == std::string::npos) {
    s += ".0";
  }
  return s;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace erasmus
