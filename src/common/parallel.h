// ParallelExecutor: a persistent worker pool for barrier-phase fan-out.
//
// The sharded runner's determinism argument never depends on WHICH thread
// runs a job -- only on jobs being pure functions that write disjoint
// slots, with all cross-slot reading happening after run() returns (the
// join is the barrier). This pool exists so those fan-outs stop paying a
// thread spawn per phase: workers are created once and parked on a
// condition variable between phases.
//
// Contract:
//  * run(jobs, fn) invokes fn(0..jobs-1), each index exactly once, on the
//    calling thread and/or the workers, and returns only when every index
//    has finished. Job-to-thread assignment is load-stealing and
//    unspecified -- jobs must not care (disjoint slots, no shared RNG).
//  * threads == 1 builds no workers at all: run() is a plain loop on the
//    calling thread, so a single-threaded configuration executes the same
//    code with zero synchronization.
//  * The first exception a job throws is rethrown from run() after the
//    phase drains; remaining unclaimed jobs are abandoned.
//  * run() is not reentrant (a job must not call run() on its executor).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace erasmus::common {

class ParallelExecutor {
 public:
  /// `threads` >= 1: the calling thread plus threads-1 pooled workers.
  explicit ParallelExecutor(size_t threads);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  size_t threads() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, jobs), returning after all complete.
  void run(size_t jobs, const std::function<void(size_t)>& fn);

 private:
  void worker_loop();
  /// Claims and runs jobs of the current phase until none remain.
  void work_phase();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable phase_cv_;  // workers wait for a new phase
  std::condition_variable done_cv_;   // run() waits for workers to finish
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t jobs_ = 0;
  std::atomic<size_t> next_{0};
  size_t workers_done_ = 0;
  uint64_t phase_ = 0;
  bool stopping_ = false;
  std::exception_ptr error_;
};

}  // namespace erasmus::common
