#include "common/parallel.h"

#include <stdexcept>

namespace erasmus::common {

ParallelExecutor::ParallelExecutor(size_t threads) {
  if (threads == 0) {
    throw std::invalid_argument("ParallelExecutor: threads must be >= 1");
  }
  workers_.reserve(threads - 1);
  for (size_t i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  phase_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ParallelExecutor::run(size_t jobs, const std::function<void(size_t)>& fn) {
  if (jobs == 0) return;
  if (workers_.empty() || jobs == 1) {
    for (size_t i = 0; i < jobs; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    jobs_ = jobs;
    next_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    error_ = nullptr;
    ++phase_;
  }
  phase_cv_.notify_all();
  work_phase();  // the calling thread is a worker too
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return workers_done_ == workers_.size(); });
  fn_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ParallelExecutor::work_phase() {
  const std::function<void(size_t)>& fn = *fn_;
  const size_t jobs = jobs_;
  for (;;) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= jobs) return;
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
      // Abandon unclaimed jobs: the phase is already lost, and run() will
      // rethrow as soon as every in-flight job drains.
      next_.store(jobs, std::memory_order_relaxed);
    }
  }
}

void ParallelExecutor::worker_loop() {
  uint64_t seen_phase = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      phase_cv_.wait(lock, [this, seen_phase] {
        return stopping_ || phase_ != seen_phase;
      });
      if (stopping_) return;
      seen_phase = phase_;
    }
    work_phase();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace erasmus::common
