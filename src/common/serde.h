// Checked binary serialization used by the wire protocols.
//
// All multi-byte integers are little-endian on the wire (matching the MSP430
// and ARM targets the paper implements on). The reader never reads past the
// end of its input: every accessor reports failure through ok() so protocol
// parsers can reject truncated or malformed packets, which an adversarial
// network (or tampering malware) may produce.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"

namespace erasmus {

/// Appends fixed-width little-endian integers and raw buffers to a Bytes.
class ByteWriter {
 public:
  void u8(uint8_t v) { out_.push_back(v); }
  void u16(uint16_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  /// Raw bytes, no length prefix.
  void raw(ByteView data) { append(out_, data); }
  /// u32 length prefix followed by the bytes.
  void var_bytes(ByteView data);

  const Bytes& bytes() const { return out_; }
  Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

/// Bounds-checked reader over a byte view. After any failed read, ok() is
/// false and every subsequent read returns zero/empty.
class ByteReader {
 public:
  explicit ByteReader(ByteView data) : data_(data) {}

  uint8_t u8();
  uint16_t u16();
  uint32_t u32();
  uint64_t u64();
  /// Reads exactly n raw bytes.
  Bytes raw(size_t n);
  /// Reads a u32 length prefix then that many bytes.
  Bytes var_bytes();

  /// True while no read has run past the end of the buffer.
  bool ok() const { return ok_; }
  /// Number of unread bytes.
  size_t remaining() const { return data_.size() - pos_; }
  /// True when ok() and the whole input has been consumed.
  bool done() const { return ok_ && remaining() == 0; }

 private:
  bool ensure(size_t n);

  ByteView data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace erasmus
