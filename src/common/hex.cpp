#include "common/hex.h"

namespace erasmus {

namespace {

constexpr char kDigits[] = "0123456789abcdef";

int nibble_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

std::optional<Bytes> from_hex(std::string_view hex) {
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    hex.remove_prefix(2);
  }
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble_value(hex[i]);
    const int lo = nibble_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string hex_abbrev(ByteView data) {
  const std::string full = to_hex(data);
  if (full.size() <= 6) return "0x" + full;
  return "0x" + full.substr(0, 3) + "..." + full.substr(full.size() - 2);
}

}  // namespace erasmus
