// Byte-buffer primitives shared by every module.
//
// The whole code base manipulates raw octet strings (memory images, digests,
// MACs, packets). We standardise on std::vector<uint8_t> for owning buffers
// and std::span<const uint8_t> for views, and provide small helpers that the
// C++ standard library lacks.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace erasmus {

/// Owning byte buffer.
using Bytes = std::vector<uint8_t>;

/// Non-owning read-only view over bytes.
using ByteView = std::span<const uint8_t>;

/// Builds a Bytes buffer from a string literal / std::string payload.
inline Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Concatenates two byte ranges into a fresh buffer.
inline Bytes concat(ByteView a, ByteView b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

/// Appends `src` to `dst`.
inline void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Value-equality between a view and a buffer (non constant-time; use
/// crypto::ct_equal for secret-dependent comparisons).
inline bool equal(ByteView a, ByteView b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

}  // namespace erasmus
