// Hexadecimal encoding/decoding of byte buffers.
//
// Used by tests (known-answer vectors), by logging, and by the bench harness
// when printing digests in the same abbreviated form as the paper's Figure 3
// (e.g. "0xe4b...ce").
#pragma once

#include <optional>
#include <string>

#include "common/bytes.h"

namespace erasmus {

/// Lower-case hex encoding ("deadbeef").
std::string to_hex(ByteView data);

/// Decodes a hex string; returns std::nullopt on odd length or non-hex chars.
/// Accepts upper- and lower-case digits and an optional "0x" prefix.
std::optional<Bytes> from_hex(std::string_view hex);

/// Abbreviated rendering used in figures: "0xe4b...ce" (first 3 and last 2
/// nibbles). Buffers of 3 bytes or fewer are printed in full.
std::string hex_abbrev(ByteView data);

}  // namespace erasmus
