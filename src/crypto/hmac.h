// HMAC (RFC 2104 / FIPS 198-1), generic over any crypto::Hash.
#pragma once

#include <memory>

#include "crypto/hash.h"

namespace erasmus::crypto {

/// Streaming HMAC. The key may be any length; keys longer than the hash
/// block size are hashed first, per the RFC.
class Hmac {
 public:
  Hmac(HashAlgo algo, ByteView key);

  void update(ByteView data);
  /// Returns the tag and resets for a new message under the same key.
  Bytes finalize();
  void reset();

  size_t tag_size() const { return inner_->digest_size(); }

  /// One-shot convenience.
  static Bytes compute(HashAlgo algo, ByteView key, ByteView message);

 private:
  std::unique_ptr<Hash> inner_;
  std::unique_ptr<Hash> outer_;
  Bytes ipad_block_;
  Bytes opad_block_;
};

}  // namespace erasmus::crypto
