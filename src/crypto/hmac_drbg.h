// HMAC-DRBG (NIST SP 800-90A) over SHA-256.
//
// The paper's irregular-interval extension (§3.5) schedules the next
// measurement at map(CSPRNG_K(t_i)). We realise CSPRNG_K as an HMAC-DRBG
// instantiated with the device key K, so prover and verifier derive the same
// unpredictable-but-reproducible interval sequence while malware (which
// cannot read K) cannot predict it.
#pragma once

#include "common/bytes.h"
#include "crypto/hmac.h"

namespace erasmus::crypto {

class HmacDrbg {
 public:
  /// Instantiates with `seed` as entropy input (the paper seeds with K).
  /// `personalization` separates independent streams under the same key.
  explicit HmacDrbg(ByteView seed, ByteView personalization = {});

  /// Fills `out` with pseudo-random bytes.
  void generate(std::span<uint8_t> out);

  /// Convenience: next `n` bytes as a buffer.
  Bytes generate(size_t n);

  /// Next 64-bit value (little-endian from the stream).
  uint64_t next_u64();

  /// Uniform value in [0, bound) via rejection sampling (bound > 0).
  uint64_t next_below(uint64_t bound);

  /// Mixes additional entropy/state into the DRBG (SP 800-90A reseed).
  void reseed(ByteView input);

 private:
  void update(ByteView provided);

  Bytes key_;  // K in SP 800-90A terms (not the device key)
  Bytes v_;
};

}  // namespace erasmus::crypto
