#include "crypto/hmac.h"

namespace erasmus::crypto {

Hmac::Hmac(HashAlgo algo, ByteView key)
    : inner_(Hash::create(algo)), outer_(Hash::create(algo)) {
  const size_t block = inner_->block_size();
  Bytes k(key.begin(), key.end());
  if (k.size() > block) {
    k = Hash::digest(algo, k);
  }
  k.resize(block, 0x00);

  ipad_block_.resize(block);
  opad_block_.resize(block);
  for (size_t i = 0; i < block; ++i) {
    ipad_block_[i] = k[i] ^ 0x36;
    opad_block_[i] = k[i] ^ 0x5c;
  }
  reset();
}

void Hmac::reset() {
  inner_->reset();
  inner_->update(ipad_block_);
}

void Hmac::update(ByteView data) { inner_->update(data); }

Bytes Hmac::finalize() {
  const Bytes inner_digest = inner_->finalize();
  outer_->reset();
  outer_->update(opad_block_);
  outer_->update(inner_digest);
  Bytes tag = outer_->finalize();
  reset();
  return tag;
}

Bytes Hmac::compute(HashAlgo algo, ByteView key, ByteView message) {
  Hmac mac(algo, key);
  mac.update(message);
  return mac.finalize();
}

}  // namespace erasmus::crypto
