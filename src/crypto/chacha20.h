// ChaCha20 block function (RFC 8439) used as a fast deterministic CSPRNG.
//
// Alternative CSPRNG backend for irregular scheduling on devices where
// HMAC-DRBG's two HMAC passes per output are too slow. Also used by tests to
// produce large pseudo-random memory images cheaply and reproducibly.
#pragma once

#include <array>

#include "common/bytes.h"

namespace erasmus::crypto {

class ChaCha20Rng {
 public:
  static constexpr size_t kKeySize = 32;
  static constexpr size_t kNonceSize = 12;

  /// `key` must be 32 bytes; shorter keys are zero-padded, longer rejected.
  explicit ChaCha20Rng(ByteView key, ByteView nonce = {});

  void generate(std::span<uint8_t> out);
  Bytes generate(size_t n);
  uint64_t next_u64();
  uint64_t next_below(uint64_t bound);

 private:
  void refill();

  std::array<uint32_t, 16> state_{};
  std::array<uint8_t, 64> block_{};
  size_t block_pos_ = 64;  // forces refill on first use
};

}  // namespace erasmus::crypto
