// BLAKE2s (RFC 7693), with native keyed mode.
//
// The paper's third MAC option is "keyed BLAKE2S". BLAKE2s is the 32-bit
// flavour, a natural fit for the MSP430-class devices SMART+ targets; its
// keyed mode replaces HMAC (the key is absorbed as a padded first block), so
// a keyed-BLAKE2s MAC costs one hash pass instead of HMAC's two.
#pragma once

#include <array>

#include "crypto/hash.h"

namespace erasmus::crypto {

class Blake2s final : public Hash {
 public:
  static constexpr size_t kMaxDigestSize = 32;
  static constexpr size_t kBlockSize = 64;
  static constexpr size_t kMaxKeySize = 32;

  /// Unkeyed hash with `digest_size` output bytes (1..32, default 32).
  explicit Blake2s(size_t digest_size = kMaxDigestSize);
  /// Keyed mode (MAC). `key` must be 1..32 bytes.
  Blake2s(ByteView key, size_t digest_size);

  void update(ByteView data) override;
  Bytes finalize() override;
  void reset() override;

  size_t digest_size() const override { return digest_size_; }
  size_t block_size() const override { return kBlockSize; }
  HashAlgo algo() const override { return HashAlgo::kBlake2s; }

 private:
  void init_state();
  void process_block(const uint8_t* block, bool is_last);

  std::array<uint32_t, 8> h_{};
  std::array<uint8_t, kBlockSize> buffer_{};
  std::array<uint8_t, kMaxKeySize> key_{};
  uint64_t counter_ = 0;  // bytes compressed so far
  size_t buffer_len_ = 0;
  size_t digest_size_;
  size_t key_size_ = 0;
};

}  // namespace erasmus::crypto
