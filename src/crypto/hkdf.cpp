#include "crypto/hkdf.h"

#include <stdexcept>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace erasmus::crypto {

namespace {
constexpr size_t kHashLen = Sha256::kDigestSize;
}

Bytes hkdf_extract(ByteView salt, ByteView ikm) {
  // RFC 5869: empty salt means a string of HashLen zeros.
  const Bytes zero_salt(kHashLen, 0x00);
  return Hmac::compute(HashAlgo::kSha256, salt.empty() ? ByteView(zero_salt)
                                                       : salt,
                       ikm);
}

Bytes hkdf_expand(ByteView prk, ByteView info, size_t length) {
  if (length > 255 * kHashLen) {
    throw std::invalid_argument("hkdf_expand: length > 255 * HashLen");
  }
  if (prk.size() < kHashLen) {
    throw std::invalid_argument("hkdf_expand: PRK shorter than HashLen");
  }
  Bytes okm;
  okm.reserve(length);
  Bytes t;  // T(0) = empty
  uint8_t counter = 1;
  while (okm.size() < length) {
    Hmac mac(HashAlgo::kSha256, prk);
    mac.update(t);
    mac.update(info);
    mac.update(ByteView(&counter, 1));
    t = mac.finalize();
    const size_t take = std::min(kHashLen, length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + take);
    ++counter;
  }
  return okm;
}

Bytes hkdf(ByteView ikm, ByteView salt, ByteView info, size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

}  // namespace erasmus::crypto
