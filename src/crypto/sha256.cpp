#include "crypto/sha256.h"

#include <algorithm>
#include <bit>

namespace erasmus::crypto {

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t load_be32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) << 24 | static_cast<uint32_t>(p[1]) << 16 |
         static_cast<uint32_t>(p[2]) << 8 | static_cast<uint32_t>(p[3]);
}

inline void store_be32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

inline uint32_t big_sigma0(uint32_t x) {
  return std::rotr(x, 2) ^ std::rotr(x, 13) ^ std::rotr(x, 22);
}
inline uint32_t big_sigma1(uint32_t x) {
  return std::rotr(x, 6) ^ std::rotr(x, 11) ^ std::rotr(x, 25);
}
inline uint32_t small_sigma0(uint32_t x) {
  return std::rotr(x, 7) ^ std::rotr(x, 18) ^ (x >> 3);
}
inline uint32_t small_sigma1(uint32_t x) {
  return std::rotr(x, 17) ^ std::rotr(x, 19) ^ (x >> 10);
}

}  // namespace

void Sha256::reset() {
  state_ = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
            0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};
  total_bytes_ = 0;
  buffer_len_ = 0;
  buffer_.fill(0);
}

void Sha256::process_block(const uint8_t* block) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 64; ++i) {
    w[i] = small_sigma1(w[i - 2]) + w[i - 7] + small_sigma0(w[i - 15]) +
           w[i - 16];
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
           e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 64; ++i) {
    const uint32_t t1 = h + big_sigma1(e) + ((e & f) ^ (~e & g)) + kK[i] + w[i];
    const uint32_t t2 = big_sigma0(a) + ((a & b) ^ (a & c) ^ (b & c));
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(ByteView data) {
  total_bytes_ += data.size();
  size_t offset = 0;
  if (buffer_len_ > 0) {
    const size_t take = std::min(kBlockSize - buffer_len_, data.size());
    std::copy_n(data.data(), take, buffer_.data() + buffer_len_);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == kBlockSize) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + kBlockSize <= data.size()) {
    process_block(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::copy_n(data.data() + offset, buffer_len_, buffer_.data());
  }
}

Bytes Sha256::finalize() {
  const uint64_t bit_len = total_bytes_ * 8;
  uint8_t pad[kBlockSize * 2] = {0x80};
  const size_t rem = static_cast<size_t>(total_bytes_ % kBlockSize);
  const size_t pad_len = (rem < 56) ? (56 - rem) : (120 - rem);
  update(ByteView(pad, pad_len));
  uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(ByteView(len_be, 8));

  Bytes out(kDigestSize);
  for (int i = 0; i < 8; ++i) store_be32(out.data() + 4 * i, state_[i]);
  reset();
  return out;
}

}  // namespace erasmus::crypto
