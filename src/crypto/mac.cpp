#include "crypto/mac.h"

#include <stdexcept>

#include "crypto/blake2s.h"
#include "crypto/hmac.h"

namespace erasmus::crypto {

namespace {

class HmacMac final : public Mac {
 public:
  HmacMac(HashAlgo hash, MacAlgo algo, ByteView key)
      : hmac_(hash, key), algo_(algo) {}

  void update(ByteView data) override { hmac_.update(data); }
  Bytes finalize() override { return hmac_.finalize(); }
  void reset() override { hmac_.reset(); }
  size_t tag_size() const override { return hmac_.tag_size(); }
  MacAlgo algo() const override { return algo_; }

 private:
  Hmac hmac_;
  MacAlgo algo_;
};

class Blake2sMac final : public Mac {
 public:
  explicit Blake2sMac(ByteView key)
      : key_(key.begin(), key.end()), hash_(key, Blake2s::kMaxDigestSize) {}

  void update(ByteView data) override { hash_.update(data); }
  Bytes finalize() override { return hash_.finalize(); }
  void reset() override { hash_.reset(); }
  size_t tag_size() const override { return Blake2s::kMaxDigestSize; }
  MacAlgo algo() const override { return MacAlgo::kKeyedBlake2s; }

 private:
  Bytes key_;
  Blake2s hash_;
};

}  // namespace

std::string to_string(MacAlgo algo) {
  switch (algo) {
    case MacAlgo::kHmacSha1:
      return "HMAC-SHA1";
    case MacAlgo::kHmacSha256:
      return "HMAC-SHA256";
    case MacAlgo::kKeyedBlake2s:
      return "Keyed BLAKE2S";
  }
  return "unknown";
}

const std::vector<MacAlgo>& all_mac_algos() {
  static const std::vector<MacAlgo> algos = {
      MacAlgo::kHmacSha1, MacAlgo::kHmacSha256, MacAlgo::kKeyedBlake2s};
  return algos;
}

bool deprecated_for_deployment(MacAlgo algo) {
  return algo == MacAlgo::kHmacSha1;
}

std::unique_ptr<Mac> Mac::create(MacAlgo algo, ByteView key) {
  switch (algo) {
    case MacAlgo::kHmacSha1:
      return std::make_unique<HmacMac>(HashAlgo::kSha1, algo, key);
    case MacAlgo::kHmacSha256:
      return std::make_unique<HmacMac>(HashAlgo::kSha256, algo, key);
    case MacAlgo::kKeyedBlake2s:
      return std::make_unique<Blake2sMac>(key);
  }
  throw std::invalid_argument("Mac::create: unknown algorithm");
}

Bytes Mac::compute(MacAlgo algo, ByteView key, ByteView message) {
  auto mac = create(algo, key);
  mac->update(message);
  return mac->finalize();
}

bool Mac::verify(MacAlgo algo, ByteView key, ByteView message, ByteView tag) {
  const Bytes expected = compute(algo, key, message);
  return ct_equal(expected, tag);
}

bool ct_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace erasmus::crypto
