#include "crypto/sha1.h"

#include <algorithm>
#include <bit>

namespace erasmus::crypto {

namespace {

inline uint32_t load_be32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) << 24 | static_cast<uint32_t>(p[1]) << 16 |
         static_cast<uint32_t>(p[2]) << 8 | static_cast<uint32_t>(p[3]);
}

inline void store_be32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

}  // namespace

void Sha1::reset() {
  state_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  total_bytes_ = 0;
  buffer_len_ = 0;
  buffer_.fill(0);
}

void Sha1::process_block(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 80; ++i) {
    w[i] = std::rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
           e = state_[4];

  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const uint32_t tmp = std::rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = std::rotl(b, 30);
    b = a;
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(ByteView data) {
  total_bytes_ += data.size();
  size_t offset = 0;
  if (buffer_len_ > 0) {
    const size_t take = std::min(kBlockSize - buffer_len_, data.size());
    std::copy_n(data.data(), take, buffer_.data() + buffer_len_);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == kBlockSize) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + kBlockSize <= data.size()) {
    process_block(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::copy_n(data.data() + offset, buffer_len_, buffer_.data());
  }
}

Bytes Sha1::finalize() {
  const uint64_t bit_len = total_bytes_ * 8;
  // Padding: 0x80, zeros, 64-bit big-endian length.
  uint8_t pad[kBlockSize * 2] = {0x80};
  const size_t rem = static_cast<size_t>(total_bytes_ % kBlockSize);
  const size_t pad_len = (rem < 56) ? (56 - rem) : (120 - rem);
  update(ByteView(pad, pad_len));
  uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(ByteView(len_be, 8));

  Bytes out(kDigestSize);
  for (int i = 0; i < 5; ++i) store_be32(out.data() + 4 * i, state_[i]);
  reset();
  return out;
}

}  // namespace erasmus::crypto
