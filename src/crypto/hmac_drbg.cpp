#include "crypto/hmac_drbg.h"

#include <algorithm>

#include <stdexcept>

#include "crypto/sha256.h"

namespace erasmus::crypto {

namespace {
constexpr size_t kOutLen = Sha256::kDigestSize;
}

HmacDrbg::HmacDrbg(ByteView seed, ByteView personalization)
    : key_(kOutLen, 0x00), v_(kOutLen, 0x01) {
  Bytes material(seed.begin(), seed.end());
  append(material, personalization);
  update(material);
}

void HmacDrbg::update(ByteView provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  {
    Hmac mac(HashAlgo::kSha256, key_);
    mac.update(v_);
    const uint8_t zero = 0x00;
    mac.update(ByteView(&zero, 1));
    mac.update(provided);
    key_ = mac.finalize();
  }
  v_ = Hmac::compute(HashAlgo::kSha256, key_, v_);
  if (provided.empty()) return;
  {
    Hmac mac(HashAlgo::kSha256, key_);
    mac.update(v_);
    const uint8_t one = 0x01;
    mac.update(ByteView(&one, 1));
    mac.update(provided);
    key_ = mac.finalize();
  }
  v_ = Hmac::compute(HashAlgo::kSha256, key_, v_);
}

void HmacDrbg::generate(std::span<uint8_t> out) {
  size_t produced = 0;
  while (produced < out.size()) {
    v_ = Hmac::compute(HashAlgo::kSha256, key_, v_);
    const size_t take = std::min(kOutLen, out.size() - produced);
    std::copy_n(v_.data(), take, out.data() + produced);
    produced += take;
  }
  update({});
}

Bytes HmacDrbg::generate(size_t n) {
  Bytes out(n);
  generate(std::span<uint8_t>(out));
  return out;
}

uint64_t HmacDrbg::next_u64() {
  uint8_t buf[8];
  generate(std::span<uint8_t>(buf, 8));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | buf[i];
  return v;
}

uint64_t HmacDrbg::next_below(uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("next_below: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - (UINT64_MAX % bound);
  uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

void HmacDrbg::reseed(ByteView input) { update(input); }

}  // namespace erasmus::crypto
