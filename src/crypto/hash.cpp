#include "crypto/hash.h"

#include <stdexcept>

#include "crypto/blake2s.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace erasmus::crypto {

std::string to_string(HashAlgo algo) {
  switch (algo) {
    case HashAlgo::kSha1:
      return "SHA-1";
    case HashAlgo::kSha256:
      return "SHA-256";
    case HashAlgo::kBlake2s:
      return "BLAKE2s";
  }
  return "unknown";
}

std::unique_ptr<Hash> Hash::create(HashAlgo algo) {
  switch (algo) {
    case HashAlgo::kSha1:
      return std::make_unique<Sha1>();
    case HashAlgo::kSha256:
      return std::make_unique<Sha256>();
    case HashAlgo::kBlake2s:
      return std::make_unique<Blake2s>();
  }
  throw std::invalid_argument("Hash::create: unknown algorithm");
}

Bytes Hash::digest(HashAlgo algo, ByteView data) {
  auto h = create(algo);
  h->update(data);
  return h->finalize();
}

}  // namespace erasmus::crypto
