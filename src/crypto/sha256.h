// SHA-256 (FIPS 180-2).
//
// Primary hash for ERASMUS measurements (H(mem_t)) and for HMAC-SHA256, the
// default MAC in the paper's SMART+ and HYDRA implementations. Also backs
// the HMAC-DRBG CSPRNG used for irregular measurement intervals (paper §3.5).
#pragma once

#include <array>

#include "crypto/hash.h"

namespace erasmus::crypto {

class Sha256 final : public Hash {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256() { reset(); }

  void update(ByteView data) override;
  Bytes finalize() override;
  void reset() override;

  size_t digest_size() const override { return kDigestSize; }
  size_t block_size() const override { return kBlockSize; }
  HashAlgo algo() const override { return HashAlgo::kSha256; }

 private:
  void process_block(const uint8_t* block);

  std::array<uint32_t, 8> state_{};
  std::array<uint8_t, kBlockSize> buffer_{};
  uint64_t total_bytes_ = 0;
  size_t buffer_len_ = 0;
};

}  // namespace erasmus::crypto
