#include "crypto/blake2s.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace erasmus::crypto {

namespace {

constexpr uint32_t kIv[8] = {0x6A09E667u, 0xBB67AE85u, 0x3C6EF372u,
                             0xA54FF53Au, 0x510E527Fu, 0x9B05688Cu,
                             0x1F83D9ABu, 0x5BE0CD19u};

constexpr uint8_t kSigma[10][16] = {
    {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
    {14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3},
    {11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4},
    {7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8},
    {9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13},
    {2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9},
    {12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11},
    {13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10},
    {6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5},
    {10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0}};

inline uint32_t load_le32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

inline void store_le32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline void g(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d, uint32_t x,
              uint32_t y) {
  a = a + b + x;
  d = std::rotr(d ^ a, 16);
  c = c + d;
  b = std::rotr(b ^ c, 12);
  a = a + b + y;
  d = std::rotr(d ^ a, 8);
  c = c + d;
  b = std::rotr(b ^ c, 7);
}

}  // namespace

Blake2s::Blake2s(size_t digest_size) : digest_size_(digest_size) {
  if (digest_size_ == 0 || digest_size_ > kMaxDigestSize) {
    throw std::invalid_argument("Blake2s: digest size must be 1..32");
  }
  init_state();
}

Blake2s::Blake2s(ByteView key, size_t digest_size) : digest_size_(digest_size) {
  if (digest_size_ == 0 || digest_size_ > kMaxDigestSize) {
    throw std::invalid_argument("Blake2s: digest size must be 1..32");
  }
  if (key.empty() || key.size() > kMaxKeySize) {
    throw std::invalid_argument("Blake2s: key size must be 1..32");
  }
  key_size_ = key.size();
  std::copy(key.begin(), key.end(), key_.begin());
  init_state();
}

void Blake2s::init_state() {
  for (int i = 0; i < 8; ++i) h_[i] = kIv[i];
  // Parameter block word 0: digest_length | key_length << 8 | fanout << 16
  // | depth << 24, with fanout = depth = 1 (sequential mode).
  h_[0] ^= static_cast<uint32_t>(digest_size_) |
           static_cast<uint32_t>(key_size_) << 8 | 0x01010000u;
  counter_ = 0;
  buffer_len_ = 0;
  buffer_.fill(0);
  if (key_size_ > 0) {
    // Keyed mode: the key, zero-padded to a full block, is the first block.
    std::array<uint8_t, kBlockSize> key_block{};
    std::copy_n(key_.data(), key_size_, key_block.data());
    std::copy(key_block.begin(), key_block.end(), buffer_.begin());
    buffer_len_ = kBlockSize;
  }
}

void Blake2s::process_block(const uint8_t* block, bool is_last) {
  uint32_t m[16];
  for (int i = 0; i < 16; ++i) m[i] = load_le32(block + 4 * i);

  uint32_t v[16];
  for (int i = 0; i < 8; ++i) v[i] = h_[i];
  for (int i = 0; i < 8; ++i) v[8 + i] = kIv[i];
  v[12] ^= static_cast<uint32_t>(counter_);
  v[13] ^= static_cast<uint32_t>(counter_ >> 32);
  if (is_last) v[14] = ~v[14];

  for (int round = 0; round < 10; ++round) {
    const uint8_t* s = kSigma[round];
    g(v[0], v[4], v[8], v[12], m[s[0]], m[s[1]]);
    g(v[1], v[5], v[9], v[13], m[s[2]], m[s[3]]);
    g(v[2], v[6], v[10], v[14], m[s[4]], m[s[5]]);
    g(v[3], v[7], v[11], v[15], m[s[6]], m[s[7]]);
    g(v[0], v[5], v[10], v[15], m[s[8]], m[s[9]]);
    g(v[1], v[6], v[11], v[12], m[s[10]], m[s[11]]);
    g(v[2], v[7], v[8], v[13], m[s[12]], m[s[13]]);
    g(v[3], v[4], v[9], v[14], m[s[14]], m[s[15]]);
  }

  for (int i = 0; i < 8; ++i) h_[i] ^= v[i] ^ v[8 + i];
}

void Blake2s::update(ByteView data) {
  size_t offset = 0;
  while (offset < data.size()) {
    if (buffer_len_ == kBlockSize) {
      // Buffer full and more input follows: this cannot be the last block.
      counter_ += kBlockSize;
      process_block(buffer_.data(), /*is_last=*/false);
      buffer_len_ = 0;
    }
    const size_t take = std::min(kBlockSize - buffer_len_,
                                 data.size() - offset);
    std::copy_n(data.data() + offset, take, buffer_.data() + buffer_len_);
    buffer_len_ += take;
    offset += take;
  }
}

Bytes Blake2s::finalize() {
  // Pad the final (possibly empty) block with zeros.
  counter_ += buffer_len_;
  std::fill(buffer_.begin() + buffer_len_, buffer_.end(), 0);
  process_block(buffer_.data(), /*is_last=*/true);

  Bytes out(digest_size_);
  std::array<uint8_t, kMaxDigestSize> full{};
  for (int i = 0; i < 8; ++i) store_le32(full.data() + 4 * i, h_[i]);
  std::copy_n(full.data(), digest_size_, out.data());
  init_state();
  return out;
}

void Blake2s::reset() { init_state(); }

}  // namespace erasmus::crypto
