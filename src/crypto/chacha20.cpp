#include "crypto/chacha20.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace erasmus::crypto {

namespace {

inline uint32_t load_le32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

inline void store_le32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline void quarter_round(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d = std::rotl(d ^ a, 16);
  c += d;
  b = std::rotl(b ^ c, 12);
  a += b;
  d = std::rotl(d ^ a, 8);
  c += d;
  b = std::rotl(b ^ c, 7);
}

}  // namespace

ChaCha20Rng::ChaCha20Rng(ByteView key, ByteView nonce) {
  if (key.size() > kKeySize) {
    throw std::invalid_argument("ChaCha20Rng: key longer than 32 bytes");
  }
  if (nonce.size() > kNonceSize) {
    throw std::invalid_argument("ChaCha20Rng: nonce longer than 12 bytes");
  }
  std::array<uint8_t, kKeySize> k{};
  std::copy(key.begin(), key.end(), k.begin());
  std::array<uint8_t, kNonceSize> n{};
  std::copy(nonce.begin(), nonce.end(), n.begin());

  state_[0] = 0x61707865u;  // "expa"
  state_[1] = 0x3320646eu;  // "nd 3"
  state_[2] = 0x79622d32u;  // "2-by"
  state_[3] = 0x6b206574u;  // "te k"
  for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(k.data() + 4 * i);
  state_[12] = 0;  // block counter
  for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(n.data() + 4 * i);
}

void ChaCha20Rng::refill() {
  std::array<uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    store_le32(block_.data() + 4 * i, x[i] + state_[i]);
  }
  state_[12] += 1;  // 32-bit counter; 256 GiB per nonce is ample here
  block_pos_ = 0;
}

void ChaCha20Rng::generate(std::span<uint8_t> out) {
  size_t produced = 0;
  while (produced < out.size()) {
    if (block_pos_ == block_.size()) refill();
    const size_t take = std::min(block_.size() - block_pos_,
                                 out.size() - produced);
    std::copy_n(block_.data() + block_pos_, take, out.data() + produced);
    block_pos_ += take;
    produced += take;
  }
}

Bytes ChaCha20Rng::generate(size_t n) {
  Bytes out(n);
  generate(std::span<uint8_t>(out));
  return out;
}

uint64_t ChaCha20Rng::next_u64() {
  uint8_t buf[8];
  generate(std::span<uint8_t>(buf, 8));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | buf[i];
  return v;
}

uint64_t ChaCha20Rng::next_below(uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("next_below: bound must be > 0");
  const uint64_t limit = UINT64_MAX - (UINT64_MAX % bound);
  uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

}  // namespace erasmus::crypto
