// MAC abstraction over the three constructions evaluated in the paper
// (Table 1): HMAC-SHA1, HMAC-SHA256 and keyed BLAKE2s.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/hash.h"

namespace erasmus::crypto {

/// Identifies a MAC construction. Wire-stable values.
enum class MacAlgo : uint8_t {
  kHmacSha1 = 1,    // comparison only; deprecated (SHAttered)
  kHmacSha256 = 2,  // paper's default
  kKeyedBlake2s = 3,
};

std::string to_string(MacAlgo algo);

/// All supported algorithms, in Table 1 order.
const std::vector<MacAlgo>& all_mac_algos();

/// True for algorithms the paper excludes from real deployments
/// (HMAC-SHA1, due to the SHA-1 collision attack).
bool deprecated_for_deployment(MacAlgo algo);

/// Streaming MAC with a fixed key.
class Mac {
 public:
  virtual ~Mac() = default;

  virtual void update(ByteView data) = 0;
  /// Produces the tag and resets for a new message under the same key.
  virtual Bytes finalize() = 0;
  virtual void reset() = 0;

  virtual size_t tag_size() const = 0;
  virtual MacAlgo algo() const = 0;

  /// Factory. `key` is the device key K shared between Prv and Vrf.
  static std::unique_ptr<Mac> create(MacAlgo algo, ByteView key);

  /// One-shot convenience.
  static Bytes compute(MacAlgo algo, ByteView key, ByteView message);

  /// Constant-time verification of `tag` over `message`.
  static bool verify(MacAlgo algo, ByteView key, ByteView message,
                     ByteView tag);
};

/// Constant-time equality of two byte strings (length leak only).
bool ct_equal(ByteView a, ByteView b);

}  // namespace erasmus::crypto
