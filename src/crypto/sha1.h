// SHA-1 (FIPS 180-1, RFC 3174).
//
// Included because the paper's Table 1 reports HMAC-SHA1 ROM sizes "for
// comparison purposes only" (the authors exclude it from deployments due to
// the SHAttered collision). We do the same: it is available for the Table 1
// bench and for protocol tests, and MacAlgo::kHmacSha1 is flagged
// deprecated_for_deployment in the MAC registry.
#pragma once

#include <array>

#include "crypto/hash.h"

namespace erasmus::crypto {

class Sha1 final : public Hash {
 public:
  static constexpr size_t kDigestSize = 20;
  static constexpr size_t kBlockSize = 64;

  Sha1() { reset(); }

  void update(ByteView data) override;
  Bytes finalize() override;
  void reset() override;

  size_t digest_size() const override { return kDigestSize; }
  size_t block_size() const override { return kBlockSize; }
  HashAlgo algo() const override { return HashAlgo::kSha1; }

 private:
  void process_block(const uint8_t* block);

  std::array<uint32_t, 5> state_{};
  std::array<uint8_t, kBlockSize> buffer_{};
  uint64_t total_bytes_ = 0;
  size_t buffer_len_ = 0;
};

}  // namespace erasmus::crypto
