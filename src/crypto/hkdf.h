// HKDF (RFC 5869) over SHA-256.
//
// Key-derivation substrate: a deployment provisions each device's K from a
// fleet master secret (K_i = HKDF(master, salt=device_id)), and ERASMUS
// sub-keys (measurement MAC key vs. schedule CSPRNG seed) can be separated
// by `info` labels without new provisioning.
#pragma once

#include "common/bytes.h"

namespace erasmus::crypto {

/// HKDF-Extract: PRK = HMAC-SHA256(salt, ikm).
Bytes hkdf_extract(ByteView salt, ByteView ikm);

/// HKDF-Expand: `length` bytes of output keyed by PRK, separated by `info`.
/// length <= 255 * 32.
Bytes hkdf_expand(ByteView prk, ByteView info, size_t length);

/// Extract-then-expand convenience.
Bytes hkdf(ByteView ikm, ByteView salt, ByteView info, size_t length);

}  // namespace erasmus::crypto
