// Streaming hash-function interface.
//
// The paper evaluates three MAC constructions (HMAC-SHA1, HMAC-SHA256 and
// keyed BLAKE2s). HMAC is generic over a Merkle-Damgard hash, so we expose a
// classic init/update/final streaming interface that SHA-1 and SHA-256
// implement. BLAKE2s has native keying and implements crypto::Mac directly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.h"

namespace erasmus::crypto {

/// Identifies a concrete hash function.
enum class HashAlgo : uint8_t {
  kSha1 = 1,
  kSha256 = 2,
  kBlake2s = 3,
};

/// Human-readable algorithm name ("SHA-1", "SHA-256", "BLAKE2s").
std::string to_string(HashAlgo algo);

/// Streaming hash. Typical use:
///   auto h = Hash::create(HashAlgo::kSha256);
///   h->update(part1); h->update(part2);
///   Bytes digest = h->finalize();
/// finalize() resets the object so it can be reused for a new message.
class Hash {
 public:
  virtual ~Hash() = default;

  /// Absorbs `data` into the state.
  virtual void update(ByteView data) = 0;
  /// Produces the digest and resets to the initial state.
  virtual Bytes finalize() = 0;
  /// Resets to the initial state, discarding absorbed data.
  virtual void reset() = 0;

  /// Digest length in bytes (20 for SHA-1, 32 for SHA-256/BLAKE2s).
  virtual size_t digest_size() const = 0;
  /// Internal block length in bytes (64 for all three).
  virtual size_t block_size() const = 0;
  virtual HashAlgo algo() const = 0;

  /// Factory for any supported algorithm.
  static std::unique_ptr<Hash> create(HashAlgo algo);

  /// One-shot convenience: digest of a single buffer.
  static Bytes digest(HashAlgo algo, ByteView data);
};

}  // namespace erasmus::crypto
