#include "obs/phase.h"

#include <algorithm>

namespace erasmus::obs {

void PhaseProfiler::record_advance(size_t threads, double busy_ms_sum,
                                   double wall_ms) {
  ++rounds_;
  threads_ = std::max(threads_, threads);
  busy_ms_ += busy_ms_sum;
  advance_wall_ms_ += wall_ms;
}

void PhaseProfiler::record_coordinator(double wall_ms) {
  coordinator_ms_ += wall_ms;
}

PhaseProfiler::Report PhaseProfiler::report() const {
  Report r;
  r.rounds = rounds_;
  r.threads = threads_;
  r.shard_work_ms = busy_ms_;
  const double n = static_cast<double>(threads_);
  // Clamp at zero: per-thread clocks and the join's wall clock are sampled
  // independently, so tiny negative residues are measurement noise.
  r.barrier_wait_ms = std::max(0.0, n * advance_wall_ms_ - busy_ms_);
  r.coordinator_ms = coordinator_ms_;
  const double total = n * (advance_wall_ms_ + coordinator_ms_);
  if (total > 0.0) {
    r.barrier_wait_share =
        (r.barrier_wait_ms + (n - 1.0) * coordinator_ms_) / total;
  }
  return r;
}

}  // namespace erasmus::obs
