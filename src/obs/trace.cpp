#include "obs/trace.h"

#include <algorithm>
#include <stdexcept>

#include "common/strings.h"

namespace erasmus::obs {

const char* to_string(Subsystem s) {
  switch (s) {
    case Subsystem::kRunner: return "runner";
    case Subsystem::kService: return "service";
    case Subsystem::kWindow: return "window";
    case Subsystem::kOverlay: return "overlay";
    case Subsystem::kDevice: return "device";
    case Subsystem::kEnergy: return "energy";
    case Subsystem::kAdversary: return "adversary";
  }
  return "?";
}

uint32_t parse_subsystem_filter(const std::string& csv) {
  uint32_t mask = 0;
  size_t begin = 0;
  while (begin <= csv.size()) {
    const size_t comma = std::min(csv.find(',', begin), csv.size());
    const std::string name = csv.substr(begin, comma - begin);
    bool known = false;
    for (size_t i = 0; i < kSubsystemCount; ++i) {
      if (name == to_string(static_cast<Subsystem>(i))) {
        mask |= 1u << i;
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::invalid_argument(
          "trace filter: unknown subsystem '" + name +
          "' (expected a comma-separated subset of "
          "runner,service,window,overlay,device,energy,adversary)");
    }
    begin = comma + 1;
  }
  return mask;
}

std::string TraceValue::to_json() const {
  switch (kind_) {
    case Kind::kU64: return std::to_string(u64_);
    case Kind::kI64: return std::to_string(i64_);
    case Kind::kF64: return format_double(f64_);
    case Kind::kStr: return "\"" + json_escape(str_) + "\"";
  }
  return "null";
}

// --- TraceShard --------------------------------------------------------------

void TraceShard::emit(TraceEvent event) {
  uint32_t& count = emitted_[event.actor];
  if (count >= quota_) {
    ++dropped_;
    return;
  }
  ++count;
  events_.push_back(std::move(event));
}

// --- TraceRecorder -----------------------------------------------------------

TraceRecorder::TraceRecorder(TraceConfig config) : config_(config) {}

void TraceRecorder::append(TraceEvent event) {
  if (events_.size() >= config_.max_events) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceRecorder::emit(TraceEvent event) {
  if (!enabled(event.sub)) return;
  append(std::move(event));
}

void TraceRecorder::span_begin(Subsystem sub, sim::Time at, std::string name,
                               TraceArgs args, uint32_t actor) {
  emit({at, actor, sub, TraceKind::kSpanBegin, std::move(name),
        std::move(args)});
}

void TraceRecorder::span_end(Subsystem sub, sim::Time at, std::string name,
                             TraceArgs args, uint32_t actor) {
  emit({at, actor, sub, TraceKind::kSpanEnd, std::move(name),
        std::move(args)});
}

void TraceRecorder::instant(Subsystem sub, sim::Time at, std::string name,
                            TraceArgs args, uint32_t actor) {
  emit({at, actor, sub, TraceKind::kInstant, std::move(name),
        std::move(args)});
}

void TraceRecorder::attach_shards(size_t n) {
  merge_shards();
  shards_.clear();
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.emplace_back(new TraceShard(config_.per_actor_quota));
  }
}

TraceShard* TraceRecorder::shard(size_t i) {
  if (!enabled(Subsystem::kDevice)) return nullptr;
  return i < shards_.size() ? shards_[i].get() : nullptr;
}

void TraceRecorder::merge_shards() {
  std::vector<TraceEvent> drained;
  for (const auto& shard : shards_) {
    drained.insert(drained.end(),
                   std::make_move_iterator(shard->events_.begin()),
                   std::make_move_iterator(shard->events_.end()));
    shard->events_.clear();
    shard->emitted_.clear();  // fresh per-actor quota for the next interval
    dropped_ += shard->dropped_;
    shard->dropped_ = 0;
  }
  if (drained.empty()) return;
  // Ties in (time, actor) can only come from one shard (an actor's events
  // all live where its device lives), so stable sort preserves per-actor
  // emission order and the result is partition-independent.
  std::stable_sort(drained.begin(), drained.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.actor < b.actor;
                   });
  for (auto& event : drained) append(std::move(event));
}

uint64_t TraceRecorder::dropped() const {
  uint64_t total = dropped_;
  for (const auto& shard : shards_) total += shard->dropped_;
  return total;
}

namespace {

/// Chrome timestamps are microseconds; keep sub-microsecond precision as a
/// decimal fraction. Integral up to 2^53 ns, so exact for any sim run.
std::string chrome_ts(sim::Time at) {
  return format_double(static_cast<double>(at.ns()) / 1e3);
}

const char* chrome_phase(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSpanBegin: return "B";
    case TraceKind::kSpanEnd: return "E";
    case TraceKind::kInstant: return "i";
  }
  return "i";
}

/// Coordinator renders as tid 0, device actors as id + 1.
uint64_t chrome_tid(uint32_t actor) {
  return actor == kCoordinatorActor ? 0 : static_cast<uint64_t>(actor) + 1;
}

void write_args_object(std::ostream& out, const TraceArgs& args) {
  out << "{";
  for (size_t i = 0; i < args.size(); ++i) {
    out << (i ? "," : "") << "\"" << json_escape(args[i].first)
        << "\":" << args[i].second.to_json();
  }
  out << "}";
}

}  // namespace

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  out << "{\"traceEvents\":[\n";
  out << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
         "\"args\":{\"name\":\"coordinator\"}}";
  for (const TraceEvent& e : events_) {
    out << ",\n{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
        << to_string(e.sub) << "\",\"ph\":\"" << chrome_phase(e.kind)
        << "\",\"ts\":" << chrome_ts(e.at) << ",\"pid\":0,\"tid\":"
        << chrome_tid(e.actor);
    if (e.kind == TraceKind::kInstant) out << ",\"s\":\"t\"";
    if (!e.args.empty()) {
      out << ",\"args\":";
      write_args_object(out, e.args);
    }
    out << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\""
         "sim_ns\",\"dropped_events\":"
      << dropped() << "}}\n";
  out.flush();
}

void TraceRecorder::write_jsonl(std::ostream& out) const {
  for (const TraceEvent& e : events_) {
    out << "{\"at_ns\":" << e.at.ns() << ",\"actor\":";
    if (e.actor == kCoordinatorActor) {
      out << "\"coordinator\"";
    } else {
      out << e.actor;
    }
    out << ",\"sub\":\"" << to_string(e.sub) << "\",\"kind\":\"";
    switch (e.kind) {
      case TraceKind::kSpanBegin: out << "span_begin"; break;
      case TraceKind::kSpanEnd: out << "span_end"; break;
      case TraceKind::kInstant: out << "instant"; break;
    }
    out << "\",\"name\":\"" << json_escape(e.name) << "\",\"args\":";
    write_args_object(out, e.args);
    out << "}\n";
  }
  out.flush();
}

namespace {
TraceRecorder* g_trace = nullptr;
}  // namespace

TraceRecorder* global_trace() { return g_trace; }
void set_global_trace(TraceRecorder* recorder) { g_trace = recorder; }

}  // namespace erasmus::obs
