// Wall-clock phase profiling for barrier-style runners.
//
// The sharded runner alternates two phases: a parallel advance (every shard
// thread runs its own event queue to the barrier) and a single-threaded
// coordinator drain (collection, verification, metrics). The profiler
// accumulates, in real wall-clock time, where the worker threads' time
// actually goes:
//
//   shard_work    -- sum of per-shard busy time during advances
//   barrier_wait  -- thread-time parked at the join while siblings finish
//                    (threads x advance wall - shard busy)
//   coordinator   -- wall time of the single-threaded barrier work, during
//                    which threads-1 workers have nothing to do
//
// barrier_wait_share() is the headline: the fraction of available worker
// thread-time NOT spent advancing shards. Flat thread scaling with a high
// share is the coordinator bottleneck made into a number. Wall-clock
// figures are host-dependent, so they are reported (bench tables, BENCH
// JSON) but never gated and never enter sim-derived metrics output.
#pragma once

#include <cstddef>
#include <cstdint>

namespace erasmus::obs {

class PhaseProfiler {
 public:
  /// One parallel advance: `threads` workers, `busy_ms_sum` the sum of
  /// their individual busy times, `wall_ms` the advance's wall time (the
  /// slowest worker).
  void record_advance(size_t threads, double busy_ms_sum, double wall_ms);
  /// One single-threaded coordinator drain of `wall_ms`.
  void record_coordinator(double wall_ms);

  struct Report {
    uint64_t rounds = 0;
    size_t threads = 0;
    double shard_work_ms = 0.0;
    double barrier_wait_ms = 0.0;
    double coordinator_ms = 0.0;
    /// (barrier_wait + (threads-1) x coordinator) / total thread-time;
    /// 0 when nothing was recorded.
    double barrier_wait_share = 0.0;
  };
  Report report() const;

 private:
  uint64_t rounds_ = 0;
  size_t threads_ = 0;
  double busy_ms_ = 0.0;
  double advance_wall_ms_ = 0.0;
  double coordinator_ms_ = 0.0;
};

}  // namespace erasmus::obs
