// obs::Registry -- counters, gauges and fixed-bucket histograms registered
// by subsystem.
//
// Subsystems register their instruments once (registration is idempotent:
// the same (subsystem, name) returns the same instrument, which is how a
// thousand RelayNodes share one "relay_drops" counter) and update them
// inline on the hot path. The owner -- typically the ShardedFleetRunner --
// snapshots the registry once per collection round and renders the samples
// into its MetricsSink tables. Everything is deterministic: instruments
// iterate in registration order, all updates happen on the coordinator
// thread (shard threads never touch the registry -- that discipline, not a
// lock, is the thread-safety story), and histogram buckets are fixed at
// registration so two runs bucket identically.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace erasmus::obs {

/// Monotonically increasing count.
class Counter {
 public:
  void add(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// A point-in-time level (last write wins).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds in strictly
/// increasing order; one implicit overflow bucket catches everything above
/// the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<uint64_t>& counts() const { return counts_; }
  uint64_t total() const { return total_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  double sum_ = 0.0;
};

class Registry {
 public:
  /// Idempotent: re-registering (subsystem, name) returns the existing
  /// instrument. Registering the same name as a DIFFERENT kind throws
  /// std::logic_error (two subsystems fighting over one name is a bug).
  /// For histograms the first registration's bounds win.
  Counter& counter(const std::string& subsystem, const std::string& name);
  Gauge& gauge(const std::string& subsystem, const std::string& name);
  Histogram& histogram(const std::string& subsystem, const std::string& name,
                       std::vector<double> bounds);

  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  /// One registered instrument's current state.
  struct Sample {
    std::string subsystem;
    std::string name;
    Kind kind = Kind::kCounter;
    /// Counter: count. Gauge: level. Histogram: total observations.
    double value = 0.0;
    /// Histogram only: (upper bound, count) per bucket; the overflow
    /// bucket's bound is +infinity.
    std::vector<std::pair<double, uint64_t>> buckets;
  };
  /// All instruments in registration order (deterministic).
  std::vector<Sample> snapshot() const;

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string subsystem;
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry* find(const std::string& subsystem, const std::string& name,
              Kind kind);

  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace erasmus::obs
