#include "obs/registry.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace erasmus::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: bucket bounds must be strictly increasing");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
  ++total_;
  sum_ += v;
}

Registry::Entry* Registry::find(const std::string& subsystem,
                                const std::string& name, Kind kind) {
  for (const auto& entry : entries_) {
    if (entry->subsystem != subsystem || entry->name != name) continue;
    if (entry->kind != kind) {
      throw std::logic_error("obs::Registry: '" + subsystem + "/" + name +
                             "' re-registered as a different kind");
    }
    return entry.get();
  }
  return nullptr;
}

Counter& Registry::counter(const std::string& subsystem,
                           const std::string& name) {
  if (Entry* e = find(subsystem, name, Kind::kCounter)) return *e->counter;
  auto entry = std::make_unique<Entry>();
  entry->subsystem = subsystem;
  entry->name = name;
  entry->kind = Kind::kCounter;
  entry->counter = std::make_unique<Counter>();
  entries_.push_back(std::move(entry));
  return *entries_.back()->counter;
}

Gauge& Registry::gauge(const std::string& subsystem, const std::string& name) {
  if (Entry* e = find(subsystem, name, Kind::kGauge)) return *e->gauge;
  auto entry = std::make_unique<Entry>();
  entry->subsystem = subsystem;
  entry->name = name;
  entry->kind = Kind::kGauge;
  entry->gauge = std::make_unique<Gauge>();
  entries_.push_back(std::move(entry));
  return *entries_.back()->gauge;
}

Histogram& Registry::histogram(const std::string& subsystem,
                               const std::string& name,
                               std::vector<double> bounds) {
  if (Entry* e = find(subsystem, name, Kind::kHistogram)) {
    return *e->histogram;
  }
  auto entry = std::make_unique<Entry>();
  entry->subsystem = subsystem;
  entry->name = name;
  entry->kind = Kind::kHistogram;
  entry->histogram = std::make_unique<Histogram>(std::move(bounds));
  entries_.push_back(std::move(entry));
  return *entries_.back()->histogram;
}

std::vector<Registry::Sample> Registry::snapshot() const {
  std::vector<Sample> samples;
  samples.reserve(entries_.size());
  for (const auto& entry : entries_) {
    Sample s;
    s.subsystem = entry->subsystem;
    s.name = entry->name;
    s.kind = entry->kind;
    switch (entry->kind) {
      case Kind::kCounter:
        s.value = static_cast<double>(entry->counter->value());
        break;
      case Kind::kGauge:
        s.value = entry->gauge->value();
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        s.value = static_cast<double>(h.total());
        s.buckets.reserve(h.counts().size());
        for (size_t i = 0; i < h.counts().size(); ++i) {
          const double bound = i < h.bounds().size()
                                   ? h.bounds()[i]
                                   : std::numeric_limits<double>::infinity();
          s.buckets.emplace_back(bound, h.counts()[i]);
        }
        break;
      }
    }
    samples.push_back(std::move(s));
  }
  return samples;
}

}  // namespace erasmus::obs
