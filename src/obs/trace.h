// Deterministic flight recorder: sim-time-stamped structured trace events.
//
// The runner's byte-identity invariant (metrics identical at 1/2/8 threads)
// extends to traces: a trace taken at any thread count is byte-for-byte the
// same file. Two event sources make that non-trivial:
//
//  * Coordinator events (service rounds, window decisions, overlay packet
//    lifecycle, churn) run single-threaded at barrier instants in an order
//    the sharded runner already keeps thread-count independent. They append
//    straight to the recorder's ordered event list.
//  * Shard events (device state transitions, self-measurements) run in
//    parallel between barriers. Each shard writes its own TraceShard buffer
//    with no locking; at the barrier the coordinator drains every shard and
//    stable-sorts the drained events by (time, actor). A device's events
//    all live in one shard and actors never span shards, so ties in that
//    key preserve per-device emission order -- the merged sequence is a
//    pure function of (plan, seed), never of the partition.
//
// Bounding is deterministic too: a shard buffer admits at most
// `per_actor_quota` events per actor per barrier interval (dropping the
// excess and counting it). A per-SHARD cap would make drops depend on how
// many devices share a shard, i.e. on thread count; the per-actor quota is
// partition-independent by construction, and the buffer's total footprint
// stays bounded by quota x devices-in-shard.
//
// Exporters: Chrome trace-event JSON (load in Perfetto / chrome://tracing)
// and one-object-per-line JSONL for ad-hoc digestion (tools/trace_summary.py
// reads both).
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace erasmus::obs {

/// Trace category, also the --trace-filter vocabulary. One bit each.
enum class Subsystem : uint8_t {
  kRunner = 0,   // barriers, collection rounds, churn
  kService = 1,  // session dispatch, retries, round lifecycle
  kWindow = 2,   // AIMD grow/cut/recovery-epoch decisions
  kOverlay = 3,  // floods, scoped retries, relay queues, NAKs
  kDevice = 4,   // shard-side device state transitions
  kEnergy = 5,   // budget-exhausted (went_dark) instants, planner decisions
  kAdversary = 6,  // infect/migrate/evade/detected instants (src/adversary)
};
inline constexpr size_t kSubsystemCount = 7;

const char* to_string(Subsystem s);
/// Bitmask with every subsystem enabled.
constexpr uint32_t all_subsystems() { return (1u << kSubsystemCount) - 1; }
/// Parses a comma-separated subsystem list ("service,window") into a
/// bitmask. Throws std::invalid_argument on an unknown or empty name.
uint32_t parse_subsystem_filter(const std::string& csv);

enum class TraceKind : uint8_t { kSpanBegin, kSpanEnd, kInstant };

/// A typed argument value (the small subset traces need).
class TraceValue {
 public:
  TraceValue(uint64_t v) : kind_(Kind::kU64), u64_(v) {}          // NOLINT
  TraceValue(int v) : kind_(Kind::kI64), i64_(v) {}               // NOLINT
  TraceValue(int64_t v) : kind_(Kind::kI64), i64_(v) {}           // NOLINT
  TraceValue(double v) : kind_(Kind::kF64), f64_(v) {}            // NOLINT
  TraceValue(const char* v) : kind_(Kind::kStr), str_(v) {}       // NOLINT
  TraceValue(std::string v) : kind_(Kind::kStr), str_(std::move(v)) {}  // NOLINT

  /// JSON rendering (deterministic; strings quoted and escaped).
  std::string to_json() const;

 private:
  enum class Kind : uint8_t { kU64, kI64, kF64, kStr };
  Kind kind_;
  uint64_t u64_ = 0;
  int64_t i64_ = 0;
  double f64_ = 0.0;
  std::string str_;
};

using TraceArgs = std::vector<std::pair<std::string, TraceValue>>;

/// Actor id of coordinator-side events (rendered as tid 0; device actors
/// render as tid = id + 1).
inline constexpr uint32_t kCoordinatorActor = UINT32_MAX;

struct TraceEvent {
  sim::Time at;
  uint32_t actor = kCoordinatorActor;
  Subsystem sub = Subsystem::kRunner;
  TraceKind kind = TraceKind::kInstant;
  std::string name;
  TraceArgs args;
};

class TraceRecorder;

/// One shard's lock-free event buffer. Written only by the owning shard
/// thread between barriers; drained only by the coordinator at barriers.
class TraceShard {
 public:
  /// Appends unless the actor exhausted its per-interval quota (then the
  /// event is dropped and counted).
  void emit(TraceEvent event);

 private:
  friend class TraceRecorder;
  explicit TraceShard(uint32_t quota) : quota_(quota) {}

  uint32_t quota_;
  std::vector<TraceEvent> events_;
  std::unordered_map<uint32_t, uint32_t> emitted_;  // actor -> this interval
  uint64_t dropped_ = 0;
};

struct TraceConfig {
  /// Bitmask of enabled Subsystems (see parse_subsystem_filter).
  uint32_t subsystems = all_subsystems();
  /// Shard-side events admitted per actor per barrier interval. Deliberately
  /// per-actor, not per-shard: see the file comment.
  uint32_t per_actor_quota = 256;
  /// Total events kept; once reached, further events are dropped (counted).
  /// Applied in deterministic append order, so the cut point is identical
  /// at every thread count.
  size_t max_events = 1u << 20;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig config = {});

  /// Cheap pre-check so call sites can skip arg construction entirely.
  bool enabled(Subsystem s) const {
    return (config_.subsystems & (1u << static_cast<uint8_t>(s))) != 0;
  }

  /// Coordinator-side emission: appends in call order (single-threaded by
  /// the runner's barrier discipline). Events of a disabled subsystem are
  /// discarded.
  void emit(TraceEvent event);
  void span_begin(Subsystem sub, sim::Time at, std::string name,
                  TraceArgs args = {}, uint32_t actor = kCoordinatorActor);
  void span_end(Subsystem sub, sim::Time at, std::string name,
                TraceArgs args = {}, uint32_t actor = kCoordinatorActor);
  void instant(Subsystem sub, sim::Time at, std::string name,
               TraceArgs args = {}, uint32_t actor = kCoordinatorActor);

  /// (Re)creates `n` shard buffers, merging any unmerged leftovers first.
  void attach_shards(size_t n);
  size_t shard_count() const { return shards_.size(); }
  /// The shard buffer for shard `i`; nullptr when the whole recorder or
  /// device tracing is disabled (callers then skip instrumentation).
  TraceShard* shard(size_t i);
  /// Coordinator-side: drains every shard buffer, stable-sorts the drained
  /// events by (time, actor) and appends them. Call at each barrier BEFORE
  /// emitting that barrier's coordinator events.
  void merge_shards();

  size_t size() const { return events_.size(); }
  uint64_t dropped() const;
  const std::vector<TraceEvent>& events() const { return events_; }
  const TraceConfig& config() const { return config_; }

  /// Chrome trace-event JSON ({"traceEvents": [...]}); open in Perfetto or
  /// chrome://tracing. Byte-deterministic.
  void write_chrome_trace(std::ostream& out) const;
  /// One event object per line. Byte-deterministic.
  void write_jsonl(std::ostream& out) const;

 private:
  void append(TraceEvent event);

  TraceConfig config_;
  std::vector<std::unique_ptr<TraceShard>> shards_;
  std::vector<TraceEvent> events_;
  uint64_t dropped_ = 0;
};

/// Process-global recorder (nullptr when tracing is off). The erasmus_run
/// CLI installs one for --trace; the sharded runner picks it up so scenario
/// signatures stay unchanged. Not owned through this pointer.
TraceRecorder* global_trace();
void set_global_trace(TraceRecorder* recorder);

}  // namespace erasmus::obs
